// libsvm-style C-SVC solver — the paper's baseline. This is a from-scratch
// port of libsvm 3.18's Solver for C-SVC (equal class weights):
//  - second-order working-set selection (WSS2, Fan et al. 2005),
//  - libsvm's shrinking with G_bar-based gradient reconstruction,
//  - an LRU kernel-row cache with a megabyte budget,
//  - optional OpenMP parallelism over kernel-row computation, which is the
//    "libsvm-enhanced" modification the paper contributes (§V-A).
//
// Conventions follow libsvm: minimize 0.5 a'Qa - e'a with Q_ij = y_i y_j
// K_ij; G = Qa - e; rho is the threshold. y_i * G_i equals the paper's
// gamma_i, and rho equals the paper's beta, so results are directly
// comparable with svmcore solvers.
#pragma once

#include <cstdint>

#include "core/types.hpp"
#include "data/sparse.hpp"
#include "kernel/kernel.hpp"
#include "kernel/row_store.hpp"

namespace svmbaseline {

struct BaselineOptions {
  double C = 1.0;
  /// Per-class cost weights (libsvm's -wi); the box constraint of a sample
  /// with label y is C * (y > 0 ? weight_positive : weight_negative).
  double weight_positive = 1.0;
  double weight_negative = 1.0;
  svmkernel::KernelParams kernel{};

  [[nodiscard]] double C_of(double y) const noexcept {
    return C * (y > 0.0 ? weight_positive : weight_negative);
  }
  double eps = 1e-3;
  std::size_t cache_mb = 256;      ///< kernel-row cache budget
  /// Storage flavor for cached Q rows. f64/f32 keep the historical float
  /// rows (bit-identical solves); f16/i8 compress the cache 2x/4x at the
  /// cost of quantized Q values — accuracy-gated, see DESIGN.md.
  svmkernel::RowFlavor q_flavor = svmkernel::RowFlavor::f64;
  bool use_shrinking = true;       ///< libsvm -h 1
  bool use_openmp = true;          ///< the paper's multicore enhancement
  std::uint64_t max_iterations = 100'000'000;
};

struct BaselineResult {
  std::vector<double> alpha;
  double rho = 0.0;  ///< threshold; equals the paper's beta
  std::uint64_t iterations = 0;
  std::uint64_t kernel_evaluations = 0;
  double cache_hit_rate = 0.0;
  double solve_seconds = 0.0;
  bool converged = false;
};

[[nodiscard]] BaselineResult solve_libsvm_like(const svmdata::Dataset& dataset,
                                               const BaselineOptions& options);

}  // namespace svmbaseline
