// nu-SVC (Schölkopf et al. 2000), libsvm's NU_SVC on the Solver_NU variant
// of the generic SMO: classification where `nu` replaces C, directly
// controlling the solution's shape — nu upper-bounds the fraction of margin
// errors and lower-bounds the fraction of support vectors. Internally the
// dual is solved with per-class sum constraints and the result is rescaled
// by r so prediction takes the familiar f(x) = sum coef_i K(x_i, x) - rho
// form (coefficients bounded by 1/r instead of C).
#pragma once

#include <cstdint>
#include <vector>

#include "core/model.hpp"
#include "data/sparse.hpp"
#include "kernel/kernel.hpp"
#include "kernel/row_store.hpp"

namespace svmbaseline {

struct NuSvcOptions {
  double nu = 0.3;  ///< in (0, 2*min(n+, n-)/n]
  double eps = 1e-3;
  svmkernel::KernelParams kernel{};
  std::size_t cache_mb = 256;
  /// Cached Q-row storage flavor; f64/f32 = historical float rows
  /// (bit-identical), f16/i8 = compressed accuracy-gated cache.
  svmkernel::RowFlavor q_flavor = svmkernel::RowFlavor::f64;
  bool use_shrinking = true;
  bool use_openmp = true;
  std::uint64_t max_iterations = 100'000'000;
};

struct NuSvcResult {
  std::vector<double> coef;  ///< alpha_i * y_i / r per sample (sv_coef)
  double rho = 0.0;
  std::uint64_t iterations = 0;
  std::uint64_t kernel_evaluations = 0;
  bool converged = false;
  double solve_seconds = 0.0;

  [[nodiscard]] svmcore::SvmModel to_model(const svmdata::CsrMatrix& X,
                                           const svmkernel::KernelParams& kernel) const;
};

/// Trains nu-SVC. Throws std::invalid_argument when nu is infeasible for the
/// class balance (nu > 2*min(n+, n-)/n), out of (0,1], or on bad input.
[[nodiscard]] NuSvcResult solve_nu_svc(const svmdata::Dataset& dataset,
                                       const NuSvcOptions& options);

}  // namespace svmbaseline
