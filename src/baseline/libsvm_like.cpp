#include "baseline/libsvm_like.hpp"

#include <stdexcept>
#include <vector>

#include "baseline/generic_smo.hpp"
#include "kernel/kernel_engine.hpp"
#include "util/timer.hpp"

namespace svmbaseline {

BaselineResult solve_libsvm_like(const svmdata::Dataset& dataset,
                                 const BaselineOptions& options) {
  dataset.validate();
  const std::size_t n = dataset.size();
  if (n < 2) throw std::invalid_argument("solve_libsvm_like: need at least two samples");

  svmutil::Timer timer;
  const svmkernel::Kernel kernel(options.kernel);
  // Cached engine backend: k_row_floats computes Q_ij = y_i y_j K_ij rows
  // (set_row_scale bakes the labels in) through the dense scatter path and
  // serves repeats from the LRU row cache. The paper's OpenMP enhancement
  // parallelizes exactly this row computation.
  svmkernel::KernelEngine engine(kernel, dataset.X, svmkernel::EngineBackend::cached,
                                 options.cache_mb * (std::size_t{1} << 20),
                                 options.q_flavor);
  engine.set_row_scale(dataset.y);

  std::vector<double> q_diag(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double sq_i = engine.sq_norm(i);
    q_diag[i] = engine.eval_one(dataset.X.row(i), dataset.X.row(i), sq_i, sq_i);
  }

  auto q_row = [&](std::size_t i) -> std::span<const float> {
    return engine.k_row_floats(i, n, options.use_openmp);
  };

  const std::vector<double> linear(n, -1.0);  // p = -e for C-SVC

  detail::GenericProblem problem;
  problem.size = n;
  problem.y = dataset.y;
  problem.linear = linear;
  problem.q_diag = q_diag;
  problem.q_row = q_row;
  problem.C_of = [&](std::size_t i) { return options.C_of(dataset.y[i]); };

  detail::GenericOptions solver_options;
  solver_options.eps = options.eps;
  solver_options.use_shrinking = options.use_shrinking;
  solver_options.max_iterations = options.max_iterations;

  detail::GenericResult generic = detail::solve_generic_smo(problem, solver_options);

  BaselineResult result;
  result.alpha = std::move(generic.alpha);
  result.rho = generic.rho;
  result.iterations = generic.iterations;
  result.converged = generic.converged;
  result.kernel_evaluations = kernel.evaluations();
  result.cache_hit_rate = engine.cache_hit_rate();
  result.solve_seconds = timer.seconds();
  return result;
}

}  // namespace svmbaseline
