#include "baseline/libsvm_like.hpp"

#include <stdexcept>
#include <vector>

#include "baseline/generic_smo.hpp"
#include "kernel/kernel_cache.hpp"
#include "util/timer.hpp"

namespace svmbaseline {

BaselineResult solve_libsvm_like(const svmdata::Dataset& dataset,
                                 const BaselineOptions& options) {
  dataset.validate();
  const std::size_t n = dataset.size();
  if (n < 2) throw std::invalid_argument("solve_libsvm_like: need at least two samples");

  svmutil::Timer timer;
  const svmkernel::Kernel kernel(options.kernel);
  svmkernel::KernelRowCache cache(options.cache_mb * (1 << 20));
  const std::vector<double> sq = dataset.X.row_squared_norms();

  std::vector<double> q_diag(n);
  for (std::size_t i = 0; i < n; ++i)
    q_diag[i] = kernel.eval(dataset.X.row(i), dataset.X.row(i), sq[i], sq[i]);

  // Q row provider with LRU caching; rows hold Q_ij = y_i y_j K_ij as float.
  // The paper's OpenMP enhancement parallelizes exactly this row loop.
  std::vector<float> row_buffer(n);
  auto q_row = [&](std::size_t i) -> std::span<const float> {
    const std::span<const float> cached = cache.lookup(i);
    if (!cached.empty()) return cached;
    const auto row_i = dataset.X.row(i);
    const double sq_i = sq[i];
    const double y_i = dataset.y[i];
    const auto count = static_cast<std::ptrdiff_t>(n);
#pragma omp parallel for schedule(static) if (options.use_openmp)
    for (std::ptrdiff_t t = 0; t < count; ++t) {
      const auto j = static_cast<std::size_t>(t);
      row_buffer[j] = static_cast<float>(
          y_i * dataset.y[j] * kernel.eval(row_i, dataset.X.row(j), sq_i, sq[j]));
    }
    cache.insert(i, row_buffer);
    const std::span<const float> inserted = cache.lookup(i);
    return inserted.empty() ? std::span<const float>(row_buffer) : inserted;
  };

  const std::vector<double> linear(n, -1.0);  // p = -e for C-SVC

  detail::GenericProblem problem;
  problem.size = n;
  problem.y = dataset.y;
  problem.linear = linear;
  problem.q_diag = q_diag;
  problem.q_row = q_row;
  problem.C_of = [&](std::size_t i) { return options.C_of(dataset.y[i]); };

  detail::GenericOptions solver_options;
  solver_options.eps = options.eps;
  solver_options.use_shrinking = options.use_shrinking;
  solver_options.max_iterations = options.max_iterations;

  detail::GenericResult generic = detail::solve_generic_smo(problem, solver_options);

  BaselineResult result;
  result.alpha = std::move(generic.alpha);
  result.rho = generic.rho;
  result.iterations = generic.iterations;
  result.converged = generic.converged;
  result.kernel_evaluations = kernel.evaluations();
  result.cache_hit_rate = cache.hit_rate();
  result.solve_seconds = timer.seconds();
  return result;
}

}  // namespace svmbaseline
