#include "baseline/nu_svc.hpp"

#include <algorithm>
#include <stdexcept>

#include "baseline/generic_smo.hpp"
#include "kernel/kernel_engine.hpp"
#include "util/timer.hpp"

namespace svmbaseline {

svmcore::SvmModel NuSvcResult::to_model(const svmdata::CsrMatrix& X,
                                        const svmkernel::KernelParams& kernel) const {
  svmdata::CsrMatrix support_vectors;
  std::vector<double> sv_coef;
  for (std::size_t i = 0; i < coef.size(); ++i) {
    if (coef[i] != 0.0) {
      support_vectors.add_row(X.row(i));
      sv_coef.push_back(coef[i]);
    }
  }
  return svmcore::SvmModel(kernel, std::move(support_vectors), std::move(sv_coef), rho);
}

NuSvcResult solve_nu_svc(const svmdata::Dataset& dataset, const NuSvcOptions& options) {
  dataset.validate();
  const std::size_t n = dataset.size();
  if (n < 2) throw std::invalid_argument("solve_nu_svc: need at least two samples");
  if (options.nu <= 0.0 || options.nu > 1.0)
    throw std::invalid_argument("solve_nu_svc: nu must be in (0, 1]");

  std::size_t n_pos = 0;
  for (const double y : dataset.y)
    if (y > 0) ++n_pos;
  const std::size_t n_neg = n - n_pos;
  if (n_pos == 0 || n_neg == 0)
    throw std::invalid_argument("solve_nu_svc: dataset must contain both classes");
  const double nu_max =
      2.0 * static_cast<double>(std::min(n_pos, n_neg)) / static_cast<double>(n);
  if (options.nu > nu_max)
    throw std::invalid_argument("solve_nu_svc: nu infeasible for class balance (max " +
                                std::to_string(nu_max) + ")");

  svmutil::Timer timer;
  const svmkernel::Kernel kernel(options.kernel);
  // Label-scaled Q rows (Q_ij = y_i y_j K_ij) via the cached engine backend.
  svmkernel::KernelEngine engine(kernel, dataset.X, svmkernel::EngineBackend::cached,
                                 options.cache_mb * (std::size_t{1} << 20),
                                 options.q_flavor);
  engine.set_row_scale(dataset.y);

  std::vector<double> q_diag(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double sq_i = engine.sq_norm(i);
    q_diag[i] = engine.eval_one(dataset.X.row(i), dataset.X.row(i), sq_i, sq_i);
  }

  auto q_row = [&](std::size_t i) -> std::span<const float> {
    return engine.k_row_floats(i, n, options.use_openmp);
  };

  // libsvm's nu-SVC warm start: nu*l/2 alpha mass per class, box C = 1.
  double sum_pos = options.nu * static_cast<double>(n) / 2.0;
  double sum_neg = sum_pos;
  std::vector<double> initial(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    if (dataset.y[i] > 0) {
      initial[i] = std::min(1.0, sum_pos);
      sum_pos -= initial[i];
    } else {
      initial[i] = std::min(1.0, sum_neg);
      sum_neg -= initial[i];
    }
  }

  const std::vector<double> linear(n, 0.0);

  detail::GenericProblem problem;
  problem.size = n;
  problem.y = dataset.y;
  problem.linear = linear;
  problem.q_diag = q_diag;
  problem.q_row = q_row;
  problem.C_of = [](std::size_t) { return 1.0; };
  problem.initial_alpha = initial;

  detail::GenericOptions solver_options;
  solver_options.eps = options.eps;
  solver_options.use_shrinking = options.use_shrinking;
  solver_options.max_iterations = options.max_iterations;
  solver_options.nu_variant = true;

  const detail::GenericResult generic = detail::solve_generic_smo(problem, solver_options);
  const double r = generic.r;
  if (r <= 0.0)
    throw std::runtime_error("solve_nu_svc: degenerate solution (r <= 0); nu too large?");

  NuSvcResult result;
  result.coef.resize(n);
  for (std::size_t i = 0; i < n; ++i) result.coef[i] = generic.alpha[i] * dataset.y[i] / r;
  result.rho = generic.rho / r;
  result.iterations = generic.iterations;
  result.converged = generic.converged;
  result.kernel_evaluations = kernel.evaluations();
  result.solve_seconds = timer.seconds();
  return result;
}

}  // namespace svmbaseline
