#include "baseline/generic_smo.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace svmbaseline::detail {

namespace {

constexpr double kTau = 1e-12;
constexpr double kInf = std::numeric_limits<double>::infinity();

class Solver {
 public:
  Solver(const GenericProblem& problem, const GenericOptions& options)
      : problem_(problem), options_(options), l_(problem.size) {
    G_.assign(problem.linear.begin(), problem.linear.end());
    G_bar_.assign(l_, 0.0);
    if (problem.initial_alpha.empty()) {
      alpha_.assign(l_, 0.0);  // G = p already correct
    } else {
      alpha_.assign(problem.initial_alpha.begin(), problem.initial_alpha.end());
      // G = p + Q*alpha0; G_bar collects the upper-bound part.
      for (std::size_t j = 0; j < l_; ++j) {
        if (alpha_[j] == 0.0) continue;
        const std::span<const float> Q_j = problem_.q_row(j);
        for (std::size_t t = 0; t < l_; ++t) G_[t] += alpha_[j] * Q_j[t];
        if (alpha_[j] >= problem_.C_of(j))
          for (std::size_t t = 0; t < l_; ++t) G_bar_[t] += problem_.C_of(j) * Q_j[t];
      }
    }
    active_.resize(l_);
    for (std::size_t t = 0; t < l_; ++t) active_[t] = t;
  }

  GenericResult solve();

 private:
  [[nodiscard]] double C_of(std::size_t t) const { return problem_.C_of(t); }
  [[nodiscard]] bool is_upper_bound(std::size_t t) const { return alpha_[t] >= C_of(t); }
  [[nodiscard]] bool is_lower_bound(std::size_t t) const { return alpha_[t] <= 0.0; }
  [[nodiscard]] bool is_free(std::size_t t) const {
    return !is_upper_bound(t) && !is_lower_bound(t);
  }
  [[nodiscard]] double y(std::size_t t) const { return problem_.y[t]; }
  [[nodiscard]] double QD(std::size_t t) const { return problem_.q_diag[t]; }

  [[nodiscard]] bool select_working_set(std::size_t& out_i, std::size_t& out_j);
  [[nodiscard]] bool select_working_set_nu(std::size_t& out_i, std::size_t& out_j);
  void update_pair(std::size_t i, std::size_t j);
  void do_shrinking();
  void do_shrinking_nu();
  void reconstruct_gradient();
  [[nodiscard]] bool be_shrunk(std::size_t t, double Gmax1, double Gmax2) const;
  [[nodiscard]] bool be_shrunk_nu(std::size_t t, double Gmax1, double Gmax2, double Gmax3,
                                  double Gmax4) const;
  [[nodiscard]] double calculate_rho() const;
  [[nodiscard]] double calculate_rho_nu(double& r_out) const;

  const GenericProblem& problem_;
  const GenericOptions& options_;
  std::size_t l_;
  std::vector<double> alpha_;
  std::vector<double> G_;
  std::vector<double> G_bar_;
  std::vector<std::size_t> active_;
  bool unshrink_done_ = false;
  std::uint64_t iterations_ = 0;
};

bool Solver::select_working_set(std::size_t& out_i, std::size_t& out_j) {
  double Gmax = -kInf;
  double Gmax2 = -kInf;
  std::size_t Gmax_idx = l_;

  for (const std::size_t t : active_) {
    if (y(t) > 0.0) {
      if (!is_upper_bound(t) && -G_[t] >= Gmax) {
        Gmax = -G_[t];
        Gmax_idx = t;
      }
    } else {
      if (!is_lower_bound(t) && G_[t] >= Gmax) {
        Gmax = G_[t];
        Gmax_idx = t;
      }
    }
  }

  const std::size_t i = Gmax_idx;
  std::span<const float> Q_i;
  if (i != l_) Q_i = problem_.q_row(i);

  double obj_diff_min = kInf;
  std::size_t Gmin_idx = l_;
  for (const std::size_t j : active_) {
    if (y(j) > 0.0) {
      if (!is_lower_bound(j)) {
        const double grad_diff = Gmax + G_[j];
        if (G_[j] >= Gmax2) Gmax2 = G_[j];
        if (grad_diff > 0.0) {
          double quad_coef = QD(i) + QD(j) - 2.0 * y(i) * Q_i[j];
          if (quad_coef <= 0.0) quad_coef = kTau;
          const double obj_diff = -(grad_diff * grad_diff) / quad_coef;
          if (obj_diff <= obj_diff_min) {
            Gmin_idx = j;
            obj_diff_min = obj_diff;
          }
        }
      }
    } else {
      if (!is_upper_bound(j)) {
        const double grad_diff = Gmax - G_[j];
        if (-G_[j] >= Gmax2) Gmax2 = -G_[j];
        if (grad_diff > 0.0) {
          double quad_coef = QD(i) + QD(j) + 2.0 * y(i) * Q_i[j];
          if (quad_coef <= 0.0) quad_coef = kTau;
          const double obj_diff = -(grad_diff * grad_diff) / quad_coef;
          if (obj_diff <= obj_diff_min) {
            Gmin_idx = j;
            obj_diff_min = obj_diff;
          }
        }
      }
    }
  }

  if (Gmax + Gmax2 < options_.eps || Gmin_idx == l_) return false;
  out_i = i;
  out_j = Gmin_idx;
  return true;
}

void Solver::update_pair(std::size_t i, std::size_t j) {
  // Copy row i: fetching row j may invalidate the provider's buffer/cache.
  const std::span<const float> Q_i_view = problem_.q_row(i);
  const std::vector<float> Q_i_copy(Q_i_view.begin(), Q_i_view.end());
  const std::span<const float> Q_i(Q_i_copy);
  const std::span<const float> Q_j = problem_.q_row(j);
  const double C_i = C_of(i);
  const double C_j = C_of(j);
  const double old_alpha_i = alpha_[i];
  const double old_alpha_j = alpha_[j];

  if (y(i) != y(j)) {
    double quad_coef = QD(i) + QD(j) + 2.0 * Q_i[j];
    if (quad_coef <= 0.0) quad_coef = kTau;
    const double delta = (-G_[i] - G_[j]) / quad_coef;
    const double diff = alpha_[i] - alpha_[j];
    alpha_[i] += delta;
    alpha_[j] += delta;
    if (diff > 0.0) {
      if (alpha_[j] < 0.0) {
        alpha_[j] = 0.0;
        alpha_[i] = diff;
      }
    } else {
      if (alpha_[i] < 0.0) {
        alpha_[i] = 0.0;
        alpha_[j] = -diff;
      }
    }
    if (diff > C_i - C_j) {
      if (alpha_[i] > C_i) {
        alpha_[i] = C_i;
        alpha_[j] = C_i - diff;
      }
    } else {
      if (alpha_[j] > C_j) {
        alpha_[j] = C_j;
        alpha_[i] = C_j + diff;
      }
    }
  } else {
    double quad_coef = QD(i) + QD(j) - 2.0 * Q_i[j];
    if (quad_coef <= 0.0) quad_coef = kTau;
    const double delta = (G_[i] - G_[j]) / quad_coef;
    const double sum = alpha_[i] + alpha_[j];
    alpha_[i] -= delta;
    alpha_[j] += delta;
    if (sum > C_i) {
      if (alpha_[i] > C_i) {
        alpha_[i] = C_i;
        alpha_[j] = sum - C_i;
      }
    } else {
      if (alpha_[j] < 0.0) {
        alpha_[j] = 0.0;
        alpha_[i] = sum;
      }
    }
    if (sum > C_j) {
      if (alpha_[j] > C_j) {
        alpha_[j] = C_j;
        alpha_[i] = sum - C_j;
      }
    } else {
      if (alpha_[i] < 0.0) {
        alpha_[i] = 0.0;
        alpha_[j] = sum;
      }
    }
  }

  const double delta_alpha_i = alpha_[i] - old_alpha_i;
  const double delta_alpha_j = alpha_[j] - old_alpha_j;
  for (const std::size_t t : active_)
    G_[t] += Q_i[t] * delta_alpha_i + Q_j[t] * delta_alpha_j;

  // Maintain G_bar across upper-bound transitions (full-length rows).
  const bool ui_before = old_alpha_i >= C_i;
  const bool uj_before = old_alpha_j >= C_j;
  if (ui_before != is_upper_bound(i)) {
    const double sign = ui_before ? -1.0 : 1.0;
    for (std::size_t t = 0; t < l_; ++t) G_bar_[t] += sign * C_i * Q_i[t];
  }
  if (uj_before != is_upper_bound(j)) {
    const double sign = uj_before ? -1.0 : 1.0;
    for (std::size_t t = 0; t < l_; ++t) G_bar_[t] += sign * C_j * Q_j[t];
  }
}

bool Solver::be_shrunk(std::size_t t, double Gmax1, double Gmax2) const {
  if (is_upper_bound(t)) return y(t) > 0.0 ? -G_[t] > Gmax1 : -G_[t] > Gmax2;
  if (is_lower_bound(t)) return y(t) > 0.0 ? G_[t] > Gmax2 : G_[t] > Gmax1;
  return false;
}

void Solver::reconstruct_gradient() {
  std::vector<std::uint8_t> is_active(l_, 0);
  for (const std::size_t t : active_) is_active[t] = 1;

  std::vector<std::size_t> inactive;
  for (std::size_t t = 0; t < l_; ++t)
    if (!is_active[t]) {
      G_[t] = G_bar_[t] + problem_.linear[t];
      inactive.push_back(t);
    }
  if (inactive.empty()) return;

  for (const std::size_t j : active_) {
    if (!is_free(j)) continue;
    const std::span<const float> Q_j = problem_.q_row(j);
    for (const std::size_t t : inactive) G_[t] += alpha_[j] * Q_j[t];
  }
}

void Solver::do_shrinking() {
  double Gmax1 = -kInf;
  double Gmax2 = -kInf;
  for (const std::size_t t : active_) {
    if (y(t) > 0.0) {
      if (!is_upper_bound(t)) Gmax1 = std::max(Gmax1, -G_[t]);
      if (!is_lower_bound(t)) Gmax2 = std::max(Gmax2, G_[t]);
    } else {
      if (!is_upper_bound(t)) Gmax2 = std::max(Gmax2, -G_[t]);
      if (!is_lower_bound(t)) Gmax1 = std::max(Gmax1, G_[t]);
    }
  }

  if (!unshrink_done_ && Gmax1 + Gmax2 <= options_.eps * 10.0) {
    unshrink_done_ = true;
    reconstruct_gradient();
    active_.resize(l_);
    for (std::size_t t = 0; t < l_; ++t) active_[t] = t;
  }

  std::size_t kept = 0;
  for (std::size_t a = 0; a < active_.size(); ++a)
    if (!be_shrunk(active_[a], Gmax1, Gmax2)) active_[kept++] = active_[a];
  active_.resize(kept);
}

// Solver_NU working-set selection (Fan et al. WSS2 restricted to same-label
// pairs, since nu problems carry one equality constraint per label).
bool Solver::select_working_set_nu(std::size_t& out_i, std::size_t& out_j) {
  double Gmaxp = -kInf;
  double Gmaxp2 = -kInf;
  std::size_t Gmaxp_idx = l_;
  double Gmaxn = -kInf;
  double Gmaxn2 = -kInf;
  std::size_t Gmaxn_idx = l_;

  for (const std::size_t t : active_) {
    if (y(t) > 0.0) {
      if (!is_upper_bound(t) && -G_[t] >= Gmaxp) {
        Gmaxp = -G_[t];
        Gmaxp_idx = t;
      }
    } else {
      if (!is_lower_bound(t) && G_[t] >= Gmaxn) {
        Gmaxn = G_[t];
        Gmaxn_idx = t;
      }
    }
  }

  const std::size_t ip = Gmaxp_idx;
  const std::size_t in = Gmaxn_idx;
  // Row pointers: fetch lazily; the provider's buffer may alias, so cache
  // copies of both candidate rows.
  std::vector<float> Q_ip;
  std::vector<float> Q_in;
  if (ip != l_) {
    const auto row = problem_.q_row(ip);
    Q_ip.assign(row.begin(), row.end());
  }
  if (in != l_) {
    const auto row = problem_.q_row(in);
    Q_in.assign(row.begin(), row.end());
  }

  double obj_diff_min = kInf;
  std::size_t Gmin_idx = l_;
  for (const std::size_t j : active_) {
    if (y(j) > 0.0) {
      if (!is_lower_bound(j)) {
        const double grad_diff = Gmaxp + G_[j];
        if (G_[j] >= Gmaxp2) Gmaxp2 = G_[j];
        if (grad_diff > 0.0 && ip != l_) {
          double quad_coef = QD(ip) + QD(j) - 2.0 * Q_ip[j];
          if (quad_coef <= 0.0) quad_coef = kTau;
          const double obj_diff = -(grad_diff * grad_diff) / quad_coef;
          if (obj_diff <= obj_diff_min) {
            Gmin_idx = j;
            obj_diff_min = obj_diff;
          }
        }
      }
    } else {
      if (!is_upper_bound(j)) {
        const double grad_diff = Gmaxn - G_[j];
        if (-G_[j] >= Gmaxn2) Gmaxn2 = -G_[j];
        if (grad_diff > 0.0 && in != l_) {
          double quad_coef = QD(in) + QD(j) - 2.0 * Q_in[j];
          if (quad_coef <= 0.0) quad_coef = kTau;
          const double obj_diff = -(grad_diff * grad_diff) / quad_coef;
          if (obj_diff <= obj_diff_min) {
            Gmin_idx = j;
            obj_diff_min = obj_diff;
          }
        }
      }
    }
  }

  if (std::max(Gmaxp + Gmaxp2, Gmaxn + Gmaxn2) < options_.eps || Gmin_idx == l_) return false;
  out_i = y(Gmin_idx) > 0.0 ? Gmaxp_idx : Gmaxn_idx;
  out_j = Gmin_idx;
  return true;
}

bool Solver::be_shrunk_nu(std::size_t t, double Gmax1, double Gmax2, double Gmax3,
                          double Gmax4) const {
  if (is_upper_bound(t)) return y(t) > 0.0 ? -G_[t] > Gmax1 : -G_[t] > Gmax4;
  if (is_lower_bound(t)) return y(t) > 0.0 ? G_[t] > Gmax2 : G_[t] > Gmax3;
  return false;
}

void Solver::do_shrinking_nu() {
  double Gmax1 = -kInf;  // max { -G | y = +1, not upper bound }
  double Gmax2 = -kInf;  // max {  G | y = +1, not lower bound }
  double Gmax3 = -kInf;  // max {  G | y = -1, not lower bound }
  double Gmax4 = -kInf;  // max { -G | y = -1, not upper bound }
  for (const std::size_t t : active_) {
    if (!is_upper_bound(t)) {
      if (y(t) > 0.0)
        Gmax1 = std::max(Gmax1, -G_[t]);
      else
        Gmax4 = std::max(Gmax4, -G_[t]);
    }
    if (!is_lower_bound(t)) {
      if (y(t) > 0.0)
        Gmax2 = std::max(Gmax2, G_[t]);
      else
        Gmax3 = std::max(Gmax3, G_[t]);
    }
  }

  if (!unshrink_done_ && std::max(Gmax1 + Gmax2, Gmax3 + Gmax4) <= options_.eps * 10.0) {
    unshrink_done_ = true;
    reconstruct_gradient();
    active_.resize(l_);
    for (std::size_t t = 0; t < l_; ++t) active_[t] = t;
  }

  std::size_t kept = 0;
  for (std::size_t a = 0; a < active_.size(); ++a)
    if (!be_shrunk_nu(active_[a], Gmax1, Gmax2, Gmax3, Gmax4)) active_[kept++] = active_[a];
  active_.resize(kept);
}

double Solver::calculate_rho_nu(double& r_out) const {
  std::size_t nr_free1 = 0;
  std::size_t nr_free2 = 0;
  double ub1 = kInf;
  double ub2 = kInf;
  double lb1 = -kInf;
  double lb2 = -kInf;
  double sum_free1 = 0.0;
  double sum_free2 = 0.0;
  for (std::size_t t = 0; t < l_; ++t) {
    if (y(t) > 0.0) {
      if (is_upper_bound(t))
        lb1 = std::max(lb1, G_[t]);
      else if (is_lower_bound(t))
        ub1 = std::min(ub1, G_[t]);
      else {
        ++nr_free1;
        sum_free1 += G_[t];
      }
    } else {
      if (is_upper_bound(t))
        lb2 = std::max(lb2, G_[t]);
      else if (is_lower_bound(t))
        ub2 = std::min(ub2, G_[t]);
      else {
        ++nr_free2;
        sum_free2 += G_[t];
      }
    }
  }
  const double r1 = nr_free1 > 0 ? sum_free1 / static_cast<double>(nr_free1) : (ub1 + lb1) / 2;
  const double r2 = nr_free2 > 0 ? sum_free2 / static_cast<double>(nr_free2) : (ub2 + lb2) / 2;
  r_out = (r1 + r2) / 2.0;
  return (r1 - r2) / 2.0;
}

double Solver::calculate_rho() const {
  double upper = kInf;
  double lower = -kInf;
  double sum_free = 0.0;
  std::size_t free_count = 0;
  for (const std::size_t t : active_) {
    const double yG = y(t) * G_[t];
    if (is_upper_bound(t)) {
      if (y(t) < 0.0)
        upper = std::min(upper, yG);
      else
        lower = std::max(lower, yG);
    } else if (is_lower_bound(t)) {
      if (y(t) > 0.0)
        upper = std::min(upper, yG);
      else
        lower = std::max(lower, yG);
    } else {
      sum_free += yG;
      ++free_count;
    }
  }
  if (free_count > 0) return sum_free / static_cast<double>(free_count);
  return (upper + lower) / 2.0;
}

GenericResult Solver::solve() {
  GenericResult result;
  std::uint64_t shrink_counter = std::min<std::uint64_t>(l_, 1000) + 1;
  bool converged = false;
  const bool nu = options_.nu_variant;

  auto select = [&](std::size_t& i, std::size_t& j) {
    return nu ? select_working_set_nu(i, j) : select_working_set(i, j);
  };

  while (iterations_ < options_.max_iterations) {
    if (options_.use_shrinking && --shrink_counter == 0) {
      shrink_counter = std::min<std::uint64_t>(l_, 1000);
      nu ? do_shrinking_nu() : do_shrinking();
    }

    std::size_t i = 0;
    std::size_t j = 0;
    if (!select(i, j)) {
      if (!options_.use_shrinking || (unshrink_done_ && active_.size() == l_)) {
        converged = true;
        break;
      }
      reconstruct_gradient();
      active_.resize(l_);
      for (std::size_t t = 0; t < l_; ++t) active_[t] = t;
      unshrink_done_ = true;
      shrink_counter = std::min<std::uint64_t>(l_, 1000);
      if (!select(i, j)) {
        converged = true;
        break;
      }
    }

    update_pair(i, j);
    ++iterations_;
  }

  if (!converged && options_.use_shrinking) reconstruct_gradient();

  // Rho reads alpha_ via the bound predicates: must precede the move.
  result.rho = nu ? calculate_rho_nu(result.r) : calculate_rho();
  result.alpha = std::move(alpha_);
  result.iterations = iterations_;
  result.converged = converged;
  return result;
}

}  // namespace

GenericResult solve_generic_smo(const GenericProblem& problem, const GenericOptions& options) {
  Solver solver(problem, options);
  return solver.solve();
}

}  // namespace svmbaseline::detail
