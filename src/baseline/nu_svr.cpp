#include "baseline/nu_svr.hpp"

#include <algorithm>
#include <stdexcept>

#include "baseline/generic_smo.hpp"
#include "kernel/kernel_engine.hpp"
#include "util/timer.hpp"

namespace svmbaseline {

svmcore::SvmModel NuSvrResult::to_model(const svmdata::CsrMatrix& X,
                                        const svmkernel::KernelParams& kernel) const {
  svmdata::CsrMatrix support_vectors;
  std::vector<double> sv_coef;
  for (std::size_t i = 0; i < coef.size(); ++i) {
    if (coef[i] != 0.0) {
      support_vectors.add_row(X.row(i));
      sv_coef.push_back(coef[i]);
    }
  }
  return svmcore::SvmModel(kernel, std::move(support_vectors), std::move(sv_coef), rho);
}

NuSvrResult solve_nu_svr(const svmdata::CsrMatrix& X, std::span<const double> targets,
                         const NuSvrOptions& options) {
  const std::size_t n = X.rows();
  if (n != targets.size())
    throw std::invalid_argument("solve_nu_svr: row/target count mismatch");
  if (n < 2) throw std::invalid_argument("solve_nu_svr: need at least two samples");
  if (options.nu <= 0.0 || options.nu > 1.0)
    throw std::invalid_argument("solve_nu_svr: nu must be in (0, 1]");

  svmutil::Timer timer;
  const std::size_t l = 2 * n;
  const svmkernel::Kernel kernel(options.kernel);
  // Raw K rows per real sample via the cached engine backend; Q rows are
  // materialized locally with the sign pattern (as in epsilon-SVR).
  svmkernel::KernelEngine engine(kernel, X, svmkernel::EngineBackend::cached,
                                 options.cache_mb * (std::size_t{1} << 20),
                                 options.q_flavor);

  std::vector<double> y(l);
  std::vector<double> linear(l);
  for (std::size_t i = 0; i < n; ++i) {
    y[i] = 1.0;
    y[i + n] = -1.0;
    linear[i] = -targets[i];
    linear[i + n] = targets[i];
  }

  // Warm start (libsvm solve_nu_svr): distribute C*nu*l/2 alpha mass over
  // both tube sides symmetrically.
  double sum = options.C * options.nu * static_cast<double>(n) / 2.0;
  std::vector<double> initial(l, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    initial[i] = initial[i + n] = std::min(sum, options.C);
    sum -= initial[i];
  }

  std::vector<double> k_diag(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double sq_i = engine.sq_norm(i);
    k_diag[i] = engine.eval_one(X.row(i), X.row(i), sq_i, sq_i);
  }
  std::vector<double> q_diag(l);
  for (std::size_t k = 0; k < l; ++k) q_diag[k] = k_diag[k % n];

  std::vector<float> q_buffer(l);
  auto q_row = [&](std::size_t k) -> std::span<const float> {
    const std::span<const float> base = engine.k_row_floats(k % n, n, options.use_openmp);
    const float sign_k = k < n ? 1.0f : -1.0f;
    for (std::size_t j = 0; j < n; ++j) {
      q_buffer[j] = sign_k * base[j];
      q_buffer[j + n] = -sign_k * base[j];
    }
    return q_buffer;
  };

  detail::GenericProblem problem;
  problem.size = l;
  problem.y = y;
  problem.linear = linear;
  problem.q_diag = q_diag;
  problem.q_row = q_row;
  problem.C_of = [&](std::size_t) { return options.C; };
  problem.initial_alpha = initial;

  detail::GenericOptions solver_options;
  solver_options.eps = options.eps;
  solver_options.use_shrinking = options.use_shrinking;
  solver_options.max_iterations = options.max_iterations;
  solver_options.nu_variant = true;

  const detail::GenericResult generic = detail::solve_generic_smo(problem, solver_options);

  NuSvrResult result;
  result.coef.resize(n);
  for (std::size_t i = 0; i < n; ++i)
    result.coef[i] = generic.alpha[i] - generic.alpha[i + n];
  result.rho = generic.rho;
  result.epsilon_tube = -generic.r;  // libsvm: "epsilon = -r"
  result.iterations = generic.iterations;
  result.converged = generic.converged;
  result.kernel_evaluations = kernel.evaluations();
  result.solve_seconds = timer.seconds();
  return result;
}

}  // namespace svmbaseline
