#include "baseline/one_class.hpp"

#include <cmath>
#include <stdexcept>

#include "baseline/generic_smo.hpp"
#include "kernel/kernel_engine.hpp"
#include "util/timer.hpp"

namespace svmbaseline {

svmcore::SvmModel OneClassResult::to_model(const svmdata::CsrMatrix& X,
                                           const svmkernel::KernelParams& kernel) const {
  svmdata::CsrMatrix support_vectors;
  std::vector<double> sv_coef;
  for (std::size_t i = 0; i < alpha.size(); ++i) {
    if (alpha[i] > 0.0) {
      support_vectors.add_row(X.row(i));
      sv_coef.push_back(alpha[i]);
    }
  }
  return svmcore::SvmModel(kernel, std::move(support_vectors), std::move(sv_coef), rho);
}

OneClassResult solve_one_class(const svmdata::CsrMatrix& X, const OneClassOptions& options) {
  const std::size_t n = X.rows();
  if (n < 2) throw std::invalid_argument("solve_one_class: need at least two samples");
  if (options.nu <= 0.0 || options.nu > 1.0)
    throw std::invalid_argument("solve_one_class: nu must be in (0, 1]");

  svmutil::Timer timer;
  const svmkernel::Kernel kernel(options.kernel);
  // Unscaled Q = K for one-class: cached engine rows, no row scale.
  svmkernel::KernelEngine engine(kernel, X, svmkernel::EngineBackend::cached,
                                 options.cache_mb * (std::size_t{1} << 20),
                                 options.q_flavor);

  std::vector<double> q_diag(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double sq_i = engine.sq_norm(i);
    q_diag[i] = engine.eval_one(X.row(i), X.row(i), sq_i, sq_i);
  }

  auto q_row = [&](std::size_t i) -> std::span<const float> {
    return engine.k_row_floats(i, n, options.use_openmp);
  };

  // libsvm's warm start: nu*l mass spread over the first ceil(nu*l) alphas.
  const double upper = 1.0;  // variables scaled by nu*l: C = 1, sum = nu*l
  // libsvm uses alpha in [0,1] with sum = nu*l (equivalent scaling of the
  // standard 1/(nu l) box).
  const double total = options.nu * static_cast<double>(n);
  const auto full = static_cast<std::size_t>(total);
  std::vector<double> initial(n, 0.0);
  for (std::size_t i = 0; i < full && i < n; ++i) initial[i] = 1.0;
  if (full < n) initial[full] = total - static_cast<double>(full);

  const std::vector<double> y(n, 1.0);
  const std::vector<double> linear(n, 0.0);

  detail::GenericProblem problem;
  problem.size = n;
  problem.y = y;
  problem.linear = linear;
  problem.q_diag = q_diag;
  problem.q_row = q_row;
  problem.C_of = [upper](std::size_t) { return upper; };
  problem.initial_alpha = initial;

  detail::GenericOptions solver_options;
  solver_options.eps = options.eps;
  solver_options.use_shrinking = options.use_shrinking;
  solver_options.max_iterations = options.max_iterations;

  detail::GenericResult generic = detail::solve_generic_smo(problem, solver_options);

  OneClassResult result;
  // Rescale alphas so the decision uses sum alpha = 1 (divide by nu*l).
  result.alpha = std::move(generic.alpha);
  for (double& a : result.alpha) a /= total;
  result.rho = generic.rho / total;
  result.iterations = generic.iterations;
  result.converged = generic.converged;
  result.kernel_evaluations = kernel.evaluations();
  result.solve_seconds = timer.seconds();
  return result;
}

}  // namespace svmbaseline
