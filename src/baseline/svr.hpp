// Epsilon support-vector regression, libsvm's EPSILON_SVR on the generic SMO
// solver. The dual has 2n variables (alpha for the upper tube side, alpha*
// for the lower):
//   minimize 0.5 b'Qb + p'b,  b = [alpha; alpha*],  y = [+1...; -1...],
//   Q(k, j) = s_k s_j K(k mod n, j mod n),
//   p_k = epsilon - y_k (k < n),  p_k = epsilon + y_{k-n} (k >= n),
// and the regressor is f(x) = sum_i (alpha_i - alpha*_i) K(x_i, x) - rho.
// The paper's conclusion positions the system for "classification and
// regression"; this module supplies the regression half.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/model.hpp"
#include "data/sparse.hpp"
#include "kernel/kernel.hpp"
#include "kernel/row_store.hpp"

namespace svmbaseline {

struct SvrOptions {
  double C = 1.0;
  double epsilon_tube = 0.1;  ///< insensitive-loss half-width (libsvm -p)
  double eps = 1e-3;          ///< optimizer tolerance (libsvm -e)
  svmkernel::KernelParams kernel{};
  std::size_t cache_mb = 256;
  /// Cached Q-row storage flavor; f64/f32 = historical float rows
  /// (bit-identical), f16/i8 = compressed accuracy-gated cache.
  svmkernel::RowFlavor q_flavor = svmkernel::RowFlavor::f64;
  bool use_shrinking = true;
  bool use_openmp = true;
  std::uint64_t max_iterations = 100'000'000;
};

struct SvrResult {
  std::vector<double> coef;  ///< alpha_i - alpha*_i per training sample
  double rho = 0.0;          ///< f(x) = sum coef_i K(x_i, x) - rho
  std::uint64_t iterations = 0;
  std::uint64_t kernel_evaluations = 0;
  bool converged = false;
  double solve_seconds = 0.0;

  /// Builds the prediction model (an SvmModel whose decision_value IS the
  /// regression output) from the support vectors (coef != 0).
  [[nodiscard]] svmcore::SvmModel to_model(const svmdata::CsrMatrix& X,
                                           const svmkernel::KernelParams& kernel) const;
};

/// Trains epsilon-SVR on rows of X against real-valued `targets`.
/// Throws std::invalid_argument on size mismatch or fewer than two samples.
[[nodiscard]] SvrResult solve_svr(const svmdata::CsrMatrix& X, std::span<const double> targets,
                                  const SvrOptions& options);

}  // namespace svmbaseline
