// nu-SVR, libsvm's NU_SVR on the Solver_NU variant: regression where `nu`
// replaces the epsilon tube width — the tube adapts so that at most a nu
// fraction of samples lie outside it and at least a nu fraction are support
// vectors. The solved dual is the 2n-variable SVR problem with linear term
// -y / +y (no epsilon), per-class sum constraints supplied by the warm
// start, and the effective tube half-width recovered as -r.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/model.hpp"
#include "data/sparse.hpp"
#include "kernel/kernel.hpp"
#include "kernel/row_store.hpp"

namespace svmbaseline {

struct NuSvrOptions {
  double C = 1.0;
  double nu = 0.5;  ///< in (0, 1]
  double eps = 1e-3;
  svmkernel::KernelParams kernel{};
  std::size_t cache_mb = 256;
  /// Cached Q-row storage flavor; f64/f32 = historical float rows
  /// (bit-identical), f16/i8 = compressed accuracy-gated cache.
  svmkernel::RowFlavor q_flavor = svmkernel::RowFlavor::f64;
  bool use_shrinking = true;
  bool use_openmp = true;
  std::uint64_t max_iterations = 100'000'000;
};

struct NuSvrResult {
  std::vector<double> coef;   ///< alpha_i - alpha*_i per sample
  double rho = 0.0;           ///< f(x) = sum coef_i K(x_i, x) - rho
  double epsilon_tube = 0.0;  ///< the tube width nu induced (-r)
  std::uint64_t iterations = 0;
  std::uint64_t kernel_evaluations = 0;
  bool converged = false;
  double solve_seconds = 0.0;

  [[nodiscard]] svmcore::SvmModel to_model(const svmdata::CsrMatrix& X,
                                           const svmkernel::KernelParams& kernel) const;
};

/// Trains nu-SVR on rows of X against real-valued targets.
[[nodiscard]] NuSvrResult solve_nu_svr(const svmdata::CsrMatrix& X,
                                       std::span<const double> targets,
                                       const NuSvrOptions& options);

}  // namespace svmbaseline
