// One-class SVM (Schölkopf et al. 2001), libsvm's ONE_CLASS, on the generic
// SMO solver: novelty detection by separating the data from the origin in
// feature space. Dual:
//   minimize 0.5 a'Ka   s.t. 0 <= a_i <= 1/(nu*l), sum a_i = 1
// solved with all labels +1, p = 0 and the libsvm warm start (the first
// floor(nu*l) variables at the upper bound, one fractional). The decision
// function f(x) = sum a_i K(x_i, x) - rho is >= 0 for inliers; `nu` upper-
// bounds the fraction of training outliers and lower-bounds the fraction of
// support vectors.
#pragma once

#include <cstdint>
#include <vector>

#include "core/model.hpp"
#include "data/sparse.hpp"
#include "kernel/kernel.hpp"
#include "kernel/row_store.hpp"

namespace svmbaseline {

struct OneClassOptions {
  double nu = 0.1;  ///< in (0, 1]
  double eps = 1e-3;
  svmkernel::KernelParams kernel{};
  std::size_t cache_mb = 256;
  /// Cached Q-row storage flavor; f64/f32 = historical float rows
  /// (bit-identical), f16/i8 = compressed accuracy-gated cache.
  svmkernel::RowFlavor q_flavor = svmkernel::RowFlavor::f64;
  bool use_shrinking = true;
  bool use_openmp = true;
  std::uint64_t max_iterations = 100'000'000;
};

struct OneClassResult {
  std::vector<double> alpha;
  double rho = 0.0;
  std::uint64_t iterations = 0;
  std::uint64_t kernel_evaluations = 0;
  bool converged = false;
  double solve_seconds = 0.0;

  /// f(x) >= 0 classifies x as an inlier. (SvmModel's decision_value.)
  [[nodiscard]] svmcore::SvmModel to_model(const svmdata::CsrMatrix& X,
                                           const svmkernel::KernelParams& kernel) const;
};

/// Trains on unlabeled rows of X. Throws std::invalid_argument for nu
/// outside (0, 1] or fewer than two samples.
[[nodiscard]] OneClassResult solve_one_class(const svmdata::CsrMatrix& X,
                                             const OneClassOptions& options);

}  // namespace svmbaseline
