// Generic SMO solver over an abstract quadratic problem, libsvm's Solver:
//   minimize 0.5 a'Qa + p'a   s.t. y'a = 0, 0 <= a_t <= C_t
// with y_t in {+1,-1}. Both C-SVC (l = n variables, p = -e) and epsilon-SVR
// (l = 2n variables, p from the tube/targets) instantiate it. Features:
// WSS2 second-order working-set selection, libsvm shrinking with G_bar
// reconstruction, rho estimation.
//
// The Q matrix is supplied by a row provider so problem types control their
// own caching; rows are float (libsvm's Qfloat).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

namespace svmbaseline::detail {

struct GenericProblem {
  std::size_t size = 0;                ///< number of variables l
  std::span<const double> y;           ///< ±1 per variable
  std::span<const double> linear;      ///< p vector
  std::span<const double> q_diag;      ///< Q(t, t)
  /// Returns Q row t at full length l. The span must stay valid until the
  /// next q_row call and no longer — the solver copies the first row of a
  /// pair before fetching the second. KernelEngine::k_row_floats satisfies
  /// this exactly: the cache pins the most recently returned row, so a later
  /// insert can never evict (and dangle) it before the next call.
  std::function<std::span<const float>(std::size_t)> q_row;
  /// Per-variable box constraint.
  std::function<double(std::size_t)> C_of;
  /// Optional warm start (e.g. one-class SVM's sum-to-one initial point).
  /// Empty means alpha = 0. When set, the solver computes the initial
  /// gradient G = p + Q * alpha0 from the nonzero entries.
  std::span<const double> initial_alpha;
};

struct GenericOptions {
  double eps = 1e-3;
  bool use_shrinking = true;
  std::uint64_t max_iterations = 100'000'000;
  /// Solver_NU variant: the working set is restricted to same-label pairs
  /// (two equality constraints), used by nu-SVC/nu-SVR. Changes selection,
  /// shrinking and the rho computation; the result's `r` becomes meaningful.
  bool nu_variant = false;
};

struct GenericResult {
  std::vector<double> alpha;
  double rho = 0.0;
  double r = 0.0;  ///< Solver_NU only: (r1 + r2)/2, the alpha rescaling factor
  std::uint64_t iterations = 0;
  bool converged = false;
};

[[nodiscard]] GenericResult solve_generic_smo(const GenericProblem& problem,
                                              const GenericOptions& options);

}  // namespace svmbaseline::detail
