#include "baseline/svr.hpp"

#include <stdexcept>

#include "baseline/generic_smo.hpp"
#include "kernel/kernel_engine.hpp"
#include "util/timer.hpp"

namespace svmbaseline {

svmcore::SvmModel SvrResult::to_model(const svmdata::CsrMatrix& X,
                                      const svmkernel::KernelParams& kernel) const {
  svmdata::CsrMatrix support_vectors;
  std::vector<double> sv_coef;
  for (std::size_t i = 0; i < coef.size(); ++i) {
    if (coef[i] != 0.0) {
      support_vectors.add_row(X.row(i));
      sv_coef.push_back(coef[i]);
    }
  }
  return svmcore::SvmModel(kernel, std::move(support_vectors), std::move(sv_coef), rho);
}

SvrResult solve_svr(const svmdata::CsrMatrix& X, std::span<const double> targets,
                    const SvrOptions& options) {
  const std::size_t n = X.rows();
  if (n != targets.size()) throw std::invalid_argument("solve_svr: row/target count mismatch");
  if (n < 2) throw std::invalid_argument("solve_svr: need at least two samples");
  if (options.epsilon_tube < 0.0)
    throw std::invalid_argument("solve_svr: epsilon_tube must be non-negative");

  svmutil::Timer timer;
  const std::size_t l = 2 * n;
  const svmkernel::Kernel kernel(options.kernel);
  // Raw (unscaled) K rows per real sample, via the cached engine backend;
  // the 2n-length Q rows are materialized locally with the sign pattern.
  svmkernel::KernelEngine engine(kernel, X, svmkernel::EngineBackend::cached,
                                 options.cache_mb * (std::size_t{1} << 20),
                                 options.q_flavor);

  // Signs and linear term of the 2n-variable dual.
  std::vector<double> y(l);
  std::vector<double> linear(l);
  for (std::size_t i = 0; i < n; ++i) {
    y[i] = 1.0;
    y[i + n] = -1.0;
    linear[i] = options.epsilon_tube - targets[i];
    linear[i + n] = options.epsilon_tube + targets[i];
  }

  std::vector<double> k_diag(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double sq_i = engine.sq_norm(i);
    k_diag[i] = engine.eval_one(X.row(i), X.row(i), sq_i, sq_i);
  }
  std::vector<double> q_diag(l);
  for (std::size_t k = 0; k < l; ++k) q_diag[k] = k_diag[k % n];  // s_k^2 = 1

  // K rows are cached per real sample; the 2n-length Q row is materialized
  // from the cached K row with the sign pattern of variable k.
  std::vector<float> q_buffer(l);
  auto q_row = [&](std::size_t k) -> std::span<const float> {
    const std::span<const float> base = engine.k_row_floats(k % n, n, options.use_openmp);
    const float sign_k = k < n ? 1.0f : -1.0f;
    for (std::size_t j = 0; j < n; ++j) {
      q_buffer[j] = sign_k * base[j];
      q_buffer[j + n] = -sign_k * base[j];
    }
    return q_buffer;
  };

  detail::GenericProblem problem;
  problem.size = l;
  problem.y = y;
  problem.linear = linear;
  problem.q_diag = q_diag;
  problem.q_row = q_row;
  problem.C_of = [&](std::size_t) { return options.C; };

  detail::GenericOptions solver_options;
  solver_options.eps = options.eps;
  solver_options.use_shrinking = options.use_shrinking;
  solver_options.max_iterations = options.max_iterations;

  const detail::GenericResult generic = detail::solve_generic_smo(problem, solver_options);

  SvrResult result;
  result.coef.resize(n);
  for (std::size_t i = 0; i < n; ++i) result.coef[i] = generic.alpha[i] - generic.alpha[i + n];
  result.rho = generic.rho;
  result.iterations = generic.iterations;
  result.converged = generic.converged;
  result.kernel_evaluations = kernel.evaluations();
  result.solve_seconds = timer.seconds();
  return result;
}

}  // namespace svmbaseline
