// Multi-tenant scheduler job model. A JobSpec is one binary SVM training
// request submitted to the shared rank pool: which tenant owns it, how many
// ranks its gang wants, the dataset/solver configuration, the synthetic
// arrival time, and its fault-handling budget (watchdog deadline, retry cap,
// recovery policy). Grid-search cells and one-vs-one pairs both lower to
// JobSpecs (see workload.hpp), so the scheduler only ever reasons about one
// job shape. A JobRecord is the scheduler's ledger entry for a submitted
// job: its terminal state, the trained model (completed jobs), and the
// fault/latency accounting the benchmarks report.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/heuristics.hpp"
#include "core/model.hpp"
#include "core/trainer.hpp"
#include "core/types.hpp"
#include "data/sparse.hpp"

namespace svmsched {

struct JobSpec {
  int id = -1;                 ///< assigned by the workload generator / caller
  std::string name;            ///< human-readable ("grid C=1 g=0.25", "pair 3v7")
  std::string tenant = "default";
  int priority = 0;            ///< higher dispatches first
  int ranks = 2;               ///< requested gang size (see SchedulerOptions)
  std::shared_ptr<const svmdata::Dataset> dataset;
  svmcore::SolverParams params{};
  svmcore::Heuristic heuristic{};
  /// Arrival offset from scheduler start (synthetic trace time). Jobs are
  /// invisible to admission until the scheduler clock passes this.
  double arrival_s = 0.0;
  /// Hang-watchdog deadline per attempt; once a dispatched attempt has run
  /// this long the dispatcher cancels the gang's communicator context and
  /// requeues the job (counted against max_retries). 0 disables.
  double timeout_s = 0.0;
  /// Additional attempts after the first before the job is declared lost.
  int max_retries = 2;
  /// Checkpoint cadence in solver iterations; 0 disables checkpointing
  /// (an in-job shrink then resumes from scratch on the survivors).
  std::uint64_t checkpoint_interval = 32;
  /// How the job responds to a permanent rank loss mid-attempt:
  /// shrink_world continues in-job on the survivors (buddy-replica
  /// repartition); restart_world abandons the attempt and requeues;
  /// shrink_then_restart shrinks while a consistent cut is reachable and
  /// requeues otherwise.
  svmcore::RecoveryPolicy policy = svmcore::RecoveryPolicy::shrink_world;
};

enum class JobState : std::uint8_t {
  queued,     ///< admitted, waiting for ranks (or for its retry backoff)
  running,    ///< an attempt is dispatched on a gang
  completed,  ///< terminal: model trained
  rejected,   ///< terminal: bounced at admission (queue full)
  lost,       ///< terminal: retry budget exhausted
};

[[nodiscard]] const char* to_string(JobState state) noexcept;

/// The scheduler's ledger entry for one submitted job.
struct JobRecord {
  JobSpec spec;
  JobState state = JobState::queued;

  // Result of the successful attempt (state == completed).
  svmcore::SvmModel model;
  double beta = 0.0;
  std::uint64_t iterations = 0;
  bool converged = false;
  int gang_size = 0;  ///< ranks the successful attempt STARTED with

  // Fault accounting.
  int attempts = 0;                ///< gangs dispatched for this job
  int requeues = 0;                ///< failed/timed-out attempts requeued
  int timeouts = 0;                ///< attempts the watchdog cancelled
  int shrinks = 0;                 ///< in-job shrink recoveries (all attempts)
  std::vector<int> ranks_lost;     ///< pool ranks permanently lost in this job
  std::string error;               ///< last failure description

  // Latency accounting (scheduler-clock seconds).
  double queue_wait_s = 0.0;  ///< admission -> first dispatch
  double latency_s = 0.0;     ///< admission -> terminal state
  double backoff_s = 0.0;     ///< retry throttle spent waiting to redispatch
};

}  // namespace svmsched
