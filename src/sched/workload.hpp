// Workload generators: lower the two natural many-job SVM workloads onto
// scheduler JobSpecs, and stamp a bursty synthetic arrival trace onto a job
// list. Grid search (one job per (C, gamma) cell) and one-vs-one multiclass
// (one job per class pair) are exactly the embarrassingly-parallel outer
// loops a training service multiplexes over a shared cluster — each inner
// training is the paper's distributed solver, unchanged.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sched/job.hpp"

namespace svmsched {

/// Spec fields shared by every job a generator emits.
struct JobDefaults {
  std::string tenant = "default";
  int priority = 0;
  int ranks = 2;
  double timeout_s = 0.0;
  int max_retries = 2;
  std::uint64_t checkpoint_interval = 32;
  svmcore::RecoveryPolicy policy = svmcore::RecoveryPolicy::shrink_world;
  svmcore::Heuristic heuristic{};
};

/// One job per (C, gamma) grid cell, row-major over (C, gamma), ids starting
/// at `first_id`. All jobs share `dataset` (the service holds one copy).
[[nodiscard]] std::vector<JobSpec> grid_search_jobs(
    std::shared_ptr<const svmdata::Dataset> dataset, const std::vector<double>& c_values,
    const std::vector<double>& gamma_values, svmcore::SolverParams base,
    const JobDefaults& defaults = {}, int first_id = 0);

/// One job per unordered class pair (k classes -> k(k-1)/2 jobs): each job
/// trains on the two classes' rows with the smaller label mapped to +1.
/// Pair datasets are materialized here (owned by the specs).
[[nodiscard]] std::vector<JobSpec> one_vs_one_jobs(const svmdata::MultiClassData& dataset,
                                                   svmcore::SolverParams params,
                                                   const JobDefaults& defaults = {},
                                                   int first_id = 0);

/// Bursty arrival process for a synthetic trace: walking the list in order,
/// each job arrives either simultaneously with its predecessor (probability
/// `burst_fraction` — a tenant submitting a sweep all at once) or after an
/// exponential gap with mean `mean_gap_s`. Deterministic in the seed.
struct BurstyTrace {
  std::uint64_t seed = 1;
  double mean_gap_s = 0.005;
  double burst_fraction = 0.5;
};
void assign_bursty_arrivals(std::vector<JobSpec>& jobs, const BurstyTrace& trace);

}  // namespace svmsched
