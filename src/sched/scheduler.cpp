#include "sched/scheduler.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <numeric>
#include <optional>
#include <set>
#include <span>
#include <stdexcept>
#include <thread>
#include <utility>

#include "core/checkpoint.hpp"
#include "core/distributed_solver.hpp"
#include "mpisim/spmd.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "util/logging.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace svmsched {

namespace {

constexpr int kNoContext = -1;

/// State shared by one dispatched attempt's gang members and the
/// dispatcher's watchdog. The generation machinery mirrors train_elastic's
/// leader-publishes/survivors-wait dance, scoped to this attempt.
struct AttemptShared {
  std::uint64_t uid = 0;           ///< unique per dispatch, 1-based
  std::vector<int> members;        ///< sorted world ranks of the gang
  int initial_context = kNoContext;

  /// Watchdog target: the gang's LIVE communicator context. Each shrink
  /// generation's leader retargets it so a cancel always reaches the
  /// context the survivors are actually blocked on.
  std::atomic<int> live_context{kNoContext};

  struct Generation {
    svmcore::CheckpointStore* store = nullptr;
    bool escalate = false;  ///< abandon the attempt (no reachable cut)
  };
  std::mutex mutex;
  std::condition_variable cv;
  std::vector<Generation> published;
  /// Repartitioned stores must outlive the solvers reading them; the chain
  /// also keeps superseded generations alive for stragglers mid-recovery.
  std::vector<std::unique_ptr<svmcore::CheckpointStore>> chain;
  std::unique_ptr<svmcore::CheckpointStore> store;  ///< generation 0

  // Leader-written attempt accounting (under mutex); the dispatcher reads
  // it only at finalization, after every member has reported.
  int shrinks = 0;
  std::vector<int> ranks_lost;
};

struct Directive {
  enum class Kind : std::uint8_t { run, exit };
  Kind kind = Kind::exit;
  int job = -1;
  std::shared_ptr<AttemptShared> shared;
};

/// One gang member's verdict on its attempt, reported to the dispatcher.
struct MemberReport {
  enum class Kind : std::uint8_t {
    success,    ///< solve + model assembly completed
    crashed,    ///< this member hit a TRANSIENT RankFailed; rank reusable
    died,       ///< this member hit a PERMANENT RankFailed; rank is gone
    cancelled,  ///< unwound by context cancellation (watchdog / fast-fail)
    failed,     ///< unrecoverable attempt failure (escalation, timeout, ...)
  };
  std::uint64_t attempt = 0;
  int job = -1;
  int world_rank = -1;
  Kind kind = Kind::failed;
  std::string error;

  // Carried by the member that assembled the model (job leader at finish).
  bool has_model = false;
  svmcore::SvmModel model;
  double beta = 0.0;
  std::uint64_t iterations = 0;
  bool converged = false;
  int started_ranks = 0;  ///< gang size the attempt STARTED with
};

/// Pool plumbing between the dispatcher thread and the rank threads.
struct Pool {
  std::mutex mutex;
  std::condition_variable worker_cv;      ///< workers wait for directives
  std::condition_variable dispatcher_cv;  ///< dispatcher waits for reports
  svmmpi::World* world = nullptr;         ///< published by rank 0's thread
  /// Rank threads whose body has not returned yet. The World lives on
  /// run_spmd_elastic's stack and is destroyed once every rank thread
  /// joins, so the dispatcher may touch `world` ONLY while holding `mutex`
  /// with alive > 0: a worker's exit decrements alive under this mutex, so
  /// alive > 0 under the lock proves some body is still running, the
  /// launcher is still blocked joining it, and the World is still alive —
  /// and stays alive until the lock is released.
  int alive = 0;
  std::vector<std::deque<Directive>> inbox;  ///< per world rank
  std::deque<MemberReport> reports;
};

/// Per-attempt-per-generation context salt: uid is unique per dispatch and
/// generations are small, so no two (attempt, generation) pairs — across
/// all jobs and tenants — can ever share a shrink-derived context.
[[nodiscard]] std::uint64_t shrink_salt(std::uint64_t uid, std::size_t generation) {
  return (uid << 16) + static_cast<std::uint64_t>(generation);
}

/// Runs one attempt on this gang member: split off the job communicator,
/// solve (shrinking in-job on permanent losses per the job's policy), and
/// assemble the model at the job leader. RankFailed propagates to the
/// caller — the worker loop translates it (crashed/died) and, for permanent
/// deaths, rethrows so the elastic launcher marks the world rank dead.
[[nodiscard]] MemberReport run_member(svmmpi::Comm& world_comm, const Directive& directive,
                                      const JobSpec& spec) {
  AttemptShared& at = *directive.shared;
  MemberReport out;
  out.attempt = at.uid;
  out.job = directive.job;
  out.world_rank = world_comm.rank();
  out.started_ranks = static_cast<int>(at.members.size());

  svmmpi::Comm comm = world_comm.split_subset(at.members, at.initial_context);
  svmcore::CheckpointStore* gen_store = at.store.get();
  std::size_t my_gen = 0;

  svmobs::TraceSpan span("job", "sched");
  try {
    for (;;) {
      try {
        svmcore::DistributedConfig cfg;
        cfg.params = spec.params;
        cfg.heuristic = spec.heuristic;
        cfg.checkpoint_interval = spec.checkpoint_interval;
        cfg.checkpoint_store = spec.checkpoint_interval > 0 ? gen_store : nullptr;
        svmcore::DistributedSolver solver(comm, *spec.dataset, cfg);
        svmcore::RankResult result = solver.solve();

        // Model assembly: every member contributes [begin, end, alpha...];
        // the job leader stitches the global alpha and builds the model.
        std::vector<double> packed;
        packed.reserve(2 + result.alpha.size());
        packed.push_back(static_cast<double>(result.range.begin));
        packed.push_back(static_cast<double>(result.range.end));
        packed.insert(packed.end(), result.alpha.begin(), result.alpha.end());
        const auto parts = comm.allgatherv(std::span<const double>(packed));

        out.kind = MemberReport::Kind::success;
        if (comm.rank() == 0) {
          std::vector<double> alpha(spec.dataset->size(), 0.0);
          for (const auto& part : parts) {
            const auto begin = static_cast<std::size_t>(part[0]);
            std::copy(part.begin() + 2, part.end(), alpha.begin() + begin);
          }
          out.model = svmcore::build_model(*spec.dataset, alpha, result.beta, spec.params.kernel);
          out.has_model = true;
          out.beta = result.beta;
          out.iterations = result.stats.iterations;
          out.converged = result.stats.converged;
        }
        return out;
      } catch (const svmmpi::RankLost& lost) {
        if (spec.policy == svmcore::RecoveryPolicy::restart_world) {
          // Job-level restart: abandon the attempt; the dispatcher requeues
          // it onto a fresh gang from scratch.
          out.kind = MemberReport::Kind::failed;
          out.error = lost.what();
          return out;
        }
        // ULFM in-job shrink, salted so the survivors' fresh context can
        // never be one another tenant abandoned mid-collective.
        svmmpi::Comm next = comm.shrink(shrink_salt(at.uid, my_gen + 1));
        if (next.rank() == 0) {
          std::lock_guard lock(at.mutex);
          AttemptShared::Generation gen;
          for (const int dead : comm.dead_members())
            if (std::find(at.ranks_lost.begin(), at.ranks_lost.end(), dead) ==
                at.ranks_lost.end())
              at.ranks_lost.push_back(dead);
          if (gen_store != nullptr) {
            // The dead ranks' memory is gone: erase their primary copies
            // (and the buddy replicas they held), then migrate the newest
            // cut still reachable through surviving replicas.
            for (const int dead : comm.dead_members()) {
              const int old_rank = comm.comm_rank_of_world(dead);
              if (old_rank >= 0) gen_store->mark_rank_lost(old_rank);
            }
            auto fresh = std::make_unique<svmcore::CheckpointStore>(next.size());
            const std::optional<std::uint64_t> epoch =
                repartition_from_checkpoints(*gen_store, spec.dataset->size(), *fresh);
            if (epoch) {
              (void)fresh->begin_restart();
              gen.store = fresh.get();
              at.chain.push_back(std::move(fresh));
            } else if (spec.policy == svmcore::RecoveryPolicy::shrink_then_restart) {
              gen.escalate = true;
            } else {
              // No reachable cut under shrink_world: the survivors restart
              // the job from scratch, shrunken.
              gen.store = fresh.get();
              at.chain.push_back(std::move(fresh));
            }
          }
          if (!gen.escalate) {
            ++at.shrinks;
            at.live_context.store(next.context_id());
          }
          at.published.push_back(gen);
          at.cv.notify_all();
        }
        AttemptShared::Generation gen;
        {
          std::unique_lock lock(at.mutex);
          at.cv.wait(lock, [&] { return at.published.size() > my_gen; });
          gen = at.published[my_gen];
        }
        if (gen.escalate) {
          out.kind = MemberReport::Kind::failed;
          out.error = lost.what();
          return out;
        }
        svmobs::trace_instant("job_shrink", "sched");
        comm = next;
        gen_store = gen.store;
        ++my_gen;
      }
    }
  } catch (const svmmpi::ContextCancelled& cancelled) {
    out.kind = MemberReport::Kind::cancelled;
    out.error = cancelled.what();
    return out;
  } catch (const svmmpi::TimeoutError& timeout) {
    // Unexplained stall (no member death, no cancellation): give the rank
    // back and let the dispatcher's retry budget decide the job's fate.
    out.kind = MemberReport::Kind::failed;
    out.error = timeout.what();
    return out;
  }
}

/// Everything the dispatcher decides, kept off the pool mutex (the
/// dispatcher is the only writer; workers never touch it).
class Dispatcher {
 public:
  Dispatcher(std::vector<JobRecord>& records, const SchedulerOptions& options, Pool& pool)
      : records_(records), options_(options), pool_(pool) {}

  double makespan_s = 0.0;
  int timeouts = 0;

  void run() {
    {
      std::unique_lock lock(pool_.mutex);
      pool_.dispatcher_cv.wait(lock, [&] { return pool_.world != nullptr; });
      world_ = pool_.world;
    }
    free_.resize(static_cast<std::size_t>(options_.pool_ranks));
    std::iota(free_.begin(), free_.end(), 0);
    arrival_order_.resize(records_.size());
    std::iota(arrival_order_.begin(), arrival_order_.end(), 0);
    std::stable_sort(arrival_order_.begin(), arrival_order_.end(), [&](int a, int b) {
      return records_[a].spec.arrival_s < records_[b].spec.arrival_s;
    });
    admit_time_.assign(records_.size(), 0.0);
    eligible_at_.assign(records_.size(), 0.0);

    const auto tick = std::chrono::duration<double>(options_.watchdog_tick_s);
    for (;;) {
      std::deque<MemberReport> drained;
      {
        std::unique_lock lock(pool_.mutex);
        pool_.dispatcher_cv.wait_for(lock, tick, [&] { return !pool_.reports.empty(); });
        drained.swap(pool_.reports);
      }
      const double now = clock_.seconds();
      process_arrivals(now);
      for (MemberReport& report : drained) process_report(std::move(report), now);
      run_watchdog(now);
      bool aborted = false;
      if (!with_world([&](svmmpi::World& world) { aborted = world.aborted(); })) {
        abandon("scheduler pool died (all rank threads exited)");
        return;  // no shutdown: there is nobody left to receive it
      }
      if (aborted) {
        abandon("scheduler pool aborted");
        break;
      }
      if (live_ranks() == 0) {
        abandon("every pool rank was permanently lost");
        break;
      }
      schedule(now);
      if (all_terminal() && running_.empty()) break;
    }
    makespan_s = clock_.seconds();
    shutdown();
  }

 private:
  struct RunningAttempt {
    int job = -1;
    std::shared_ptr<AttemptShared> shared;
    double started_s = 0.0;
    bool cancelled = false;            ///< a cancel was issued for this attempt
    bool watchdog_fired = false;       ///< ... because the deadline expired
    int cancelled_context = kNoContext;  ///< context the cancel targeted
    std::set<int> waiting;             ///< members that have not reported yet
    bool success = false;              ///< some member delivered the model
    std::string error;                 ///< first failure description seen
  };

  [[nodiscard]] int live_ranks() const {
    return options_.pool_ranks - static_cast<int>(dead_.size());
  }

  /// World lease (see Pool::alive): runs `f(world)` under the pool mutex
  /// iff some rank thread is still alive — which pins the World. Returns
  /// false (f not run) once the pool is gone.
  template <typename F>
  [[nodiscard]] bool with_world(F&& f) {
    std::lock_guard lock(pool_.mutex);
    if (pool_.alive == 0) return false;
    f(*world_);
    return true;
  }

  [[nodiscard]] bool all_terminal() const {
    if (next_arrival_ < arrival_order_.size()) return false;
    if (!queue_.empty()) return false;
    for (const JobRecord& rec : records_)
      if (rec.state == JobState::queued || rec.state == JobState::running) return false;
    return true;
  }

  void process_arrivals(double now) {
    while (next_arrival_ < arrival_order_.size() &&
           records_[arrival_order_[next_arrival_]].spec.arrival_s <= now) {
      const int job = arrival_order_[next_arrival_++];
      JobRecord& rec = records_[job];
      if (static_cast<int>(queue_.size()) >= options_.queue_capacity) {
        rec.state = JobState::rejected;
        rec.error = "admission queue full";
        svmobs::trace_instant("job_reject", "sched");
      } else {
        rec.state = JobState::queued;
        admit_time_[job] = now;
        queue_.push_back(job);
        svmobs::trace_instant("job_admit", "sched");
      }
    }
    svmobs::trace_counter("sched_queue_depth", static_cast<double>(queue_.size()));
  }

  void process_report(MemberReport report, double now) {
    const auto it = running_.find(report.attempt);
    if (it == running_.end()) return;  // stale report of an abandoned run
    RunningAttempt& attempt = it->second;
    attempt.waiting.erase(report.world_rank);
    if (attempt.error.empty() && !report.error.empty()) attempt.error = report.error;
    switch (report.kind) {
      case MemberReport::Kind::success:
        if (report.has_model) {
          JobRecord& rec = records_[attempt.job];
          rec.model = std::move(report.model);
          rec.beta = report.beta;
          rec.iterations = report.iterations;
          rec.converged = report.converged;
          rec.gang_size = report.started_ranks;
          attempt.success = true;
        }
        release_rank(report.world_rank);
        break;
      case MemberReport::Kind::crashed:
        // Transient crash: the rank's "process" relaunches into the pool.
        // Fast-fail the blocked siblings so the gang drains promptly
        // instead of waiting out the network deadline.
        release_rank(report.world_rank);
        cancel_attempt(attempt, /*watchdog=*/false);
        break;
      case MemberReport::Kind::died:
        dead_.insert(report.world_rank);
        break;
      case MemberReport::Kind::cancelled:
      case MemberReport::Kind::failed:
        release_rank(report.world_rank);
        break;
    }
    if (attempt.waiting.empty()) finalize(it->first, now);
  }

  void cancel_attempt(RunningAttempt& attempt, bool watchdog) {
    const int target = attempt.shared->live_context.load();
    if (attempt.cancelled && attempt.cancelled_context == target) return;
    attempt.cancelled = true;
    attempt.watchdog_fired = attempt.watchdog_fired || watchdog;
    attempt.cancelled_context = target;
    (void)with_world([&](svmmpi::World& world) { world.cancel_context(target); });
  }

  void run_watchdog(double now) {
    for (auto& [uid, attempt] : running_) {
      const double deadline = records_[attempt.job].spec.timeout_s;
      if (deadline > 0.0 && now - attempt.started_s > deadline) {
        // cancel_attempt re-fires when a concurrent in-job shrink retargeted
        // live_context after the first cancel — the survivors moved to a
        // fresh context the original cancel never reached.
        if (!attempt.cancelled) svmobs::trace_instant("job_timeout", "sched");
        cancel_attempt(attempt, /*watchdog=*/true);
      }
    }
  }

  void finalize(std::uint64_t uid, double now) {
    const auto it = running_.find(uid);
    RunningAttempt attempt = std::move(it->second);
    running_.erase(it);
    JobRecord& rec = records_[attempt.job];
    {
      std::lock_guard lock(attempt.shared->mutex);
      rec.shrinks += attempt.shared->shrinks;
      for (const int lost : attempt.shared->ranks_lost)
        if (std::find(rec.ranks_lost.begin(), rec.ranks_lost.end(), lost) ==
            rec.ranks_lost.end())
          rec.ranks_lost.push_back(lost);
    }
    const double gang = static_cast<double>(attempt.shared->members.size());
    tenant_usage_[rec.spec.tenant] += gang * (now - attempt.started_s);
    if (attempt.success) {
      rec.state = JobState::completed;
      rec.latency_s = now - admit_time_[attempt.job];
      svmobs::trace_instant("job_complete", "sched");
      return;
    }
    if (!attempt.error.empty()) rec.error = attempt.error;
    if (attempt.watchdog_fired) {
      ++rec.timeouts;
      ++timeouts;
    }
    if (rec.attempts > rec.spec.max_retries) {
      rec.state = JobState::lost;
      rec.latency_s = now - admit_time_[attempt.job];
      svmobs::trace_instant("job_lost", "sched");
      return;
    }
    // Requeue with capped exponential backoff; bypasses the admission bound
    // (the job was already accepted).
    rec.state = JobState::queued;
    ++rec.requeues;
    double backoff = 0.0;
    if (options_.backoff_base_s > 0.0)
      backoff = std::min(options_.backoff_base_s * std::ldexp(1.0, rec.requeues - 1),
                         options_.backoff_cap_s);
    rec.backoff_s += backoff;
    eligible_at_[attempt.job] = now + backoff;
    queue_.push_back(attempt.job);
    svmobs::trace_instant("job_requeue", "sched");
  }

  void release_rank(int world_rank) {
    if (dead_.count(world_rank) != 0) return;
    const auto it = std::lower_bound(free_.begin(), free_.end(), world_rank);
    if (it == free_.end() || *it != world_rank) free_.insert(it, world_rank);
  }

  /// Dispatch order: priority desc, then tenant fair-share (lowest accrued
  /// rank-seconds first), then submit order. Smaller jobs may backfill past
  /// a queued job that does not fit yet.
  void schedule(double now) {
    for (;;) {
      if (free_.empty() || queue_.empty()) break;
      int best = -1;
      std::size_t best_pos = 0;
      for (std::size_t pos = 0; pos < queue_.size(); ++pos) {
        const int job = queue_[pos];
        if (eligible_at_[job] > now) continue;
        if (gang_size_for(job) > static_cast<int>(free_.size())) continue;
        if (best < 0 || dispatches_before(job, best)) {
          best = job;
          best_pos = pos;
        }
      }
      if (best < 0) break;
      queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(best_pos));
      if (!dispatch(best, now)) {
        queue_.insert(queue_.begin() + static_cast<std::ptrdiff_t>(best_pos), best);
        break;  // pool gone; the main loop abandons on its next pass
      }
    }
    svmobs::trace_counter("sched_free_ranks", static_cast<double>(free_.size()));
    svmobs::trace_counter("sched_running_jobs", static_cast<double>(running_.size()));
  }

  [[nodiscard]] bool dispatches_before(int a, int b) {
    const JobSpec& sa = records_[a].spec;
    const JobSpec& sb = records_[b].spec;
    if (sa.priority != sb.priority) return sa.priority > sb.priority;
    const double ua = tenant_usage_[sa.tenant];
    const double ub = tenant_usage_[sb.tenant];
    if (ua != ub) return ua < ub;
    return a < b;
  }

  /// Requested gang size, degraded only when the request exceeds the whole
  /// live pool (a shrunken pool still runs every job, just smaller).
  [[nodiscard]] int gang_size_for(int job) const {
    const int want = records_[job].spec.ranks;
    return std::min(want, live_ranks());
  }

  [[nodiscard]] bool dispatch(int job, double now) {
    JobRecord& rec = records_[job];
    const int gang = gang_size_for(job);
    auto shared = std::make_shared<AttemptShared>();
    shared->uid = ++attempt_counter_;
    shared->members.assign(free_.begin(), free_.begin() + gang);
    shared->store = std::make_unique<svmcore::CheckpointStore>(gang);
    {
      // One locked section: context creation needs the world lease, and
      // pushing the directives under the same hold means no member can see
      // a half-built attempt.
      std::lock_guard lock(pool_.mutex);
      if (pool_.alive == 0) return false;
      shared->initial_context = world_->create_context(gang);
      shared->live_context.store(shared->initial_context);
      for (const int member : shared->members) {
        Directive directive;
        directive.kind = Directive::Kind::run;
        directive.job = job;
        directive.shared = shared;
        pool_.inbox[static_cast<std::size_t>(member)].push_back(std::move(directive));
      }
      pool_.worker_cv.notify_all();
    }
    free_.erase(free_.begin(), free_.begin() + gang);

    RunningAttempt attempt;
    attempt.job = job;
    attempt.shared = shared;
    attempt.started_s = now;
    attempt.waiting.insert(shared->members.begin(), shared->members.end());
    running_.emplace(shared->uid, std::move(attempt));

    if (rec.attempts == 0) rec.queue_wait_s = now - admit_time_[job];
    ++rec.attempts;
    rec.state = JobState::running;
    svmobs::trace_instant("job_dispatch", "sched");
    return true;
  }

  /// Terminal cleanup when the pool can make no further progress (world
  /// aborted, or every rank died): every non-terminal job is marked lost.
  void abandon(const std::string& why) {
    for (JobRecord& rec : records_) {
      if (rec.state == JobState::queued || rec.state == JobState::running) {
        rec.state = JobState::lost;
        rec.error = why;
      }
    }
    // Unarrived jobs never got admitted at all.
    while (next_arrival_ < arrival_order_.size()) {
      JobRecord& rec = records_[arrival_order_[next_arrival_++]];
      rec.state = JobState::lost;
      rec.error = why;
    }
    queue_.clear();
    running_.clear();
  }

  void shutdown() {
    std::lock_guard lock(pool_.mutex);
    for (auto& inbox : pool_.inbox) inbox.push_back(Directive{});
    pool_.worker_cv.notify_all();
  }

  std::vector<JobRecord>& records_;
  const SchedulerOptions& options_;
  Pool& pool_;
  svmmpi::World* world_ = nullptr;
  svmutil::Timer clock_;

  std::vector<int> free_;  ///< sorted free world ranks
  std::set<int> dead_;     ///< permanently lost world ranks
  std::vector<int> arrival_order_;
  std::size_t next_arrival_ = 0;
  std::vector<double> admit_time_;
  std::vector<double> eligible_at_;  ///< retry-backoff gate per job
  std::vector<int> queue_;           ///< admitted jobs waiting for ranks
  std::map<std::uint64_t, RunningAttempt> running_;
  std::map<std::string, double> tenant_usage_;  ///< accrued rank-seconds
  std::uint64_t attempt_counter_ = 0;
};

/// Scoped trace recording for one scheduler run (same discipline as
/// train()'s TraceSession: flush on EVERY exit so a failing run still
/// leaves a balanced, viewable trace).
class ObsSession {
 public:
  explicit ObsSession(const std::string& path) : path_(path), active_(!path.empty()) {
    if (!active_) return;
    svmobs::trace_reset();
    svmobs::trace_enable();
  }
  ~ObsSession() {
    if (!active_) return;
    svmobs::trace_disable();
    try {
      svmobs::trace_write(path_);
    } catch (const std::exception& e) {
      SVM_LOG_WARN << "scheduler trace flush failed: " << e.what();
    }
  }
  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

 private:
  std::string path_;
  bool active_;
};

void validate(const std::vector<JobSpec>& jobs, const SchedulerOptions& options) {
  if (options.pool_ranks <= 0)
    throw std::invalid_argument("run_scheduler: pool_ranks must be positive");
  if (options.queue_capacity <= 0)
    throw std::invalid_argument("run_scheduler: queue_capacity must be positive");
  if (options.net_model.timeout_s <= 0.0)
    throw std::invalid_argument(
        "run_scheduler: net_model.timeout_s must be > 0 (deadline-driven failure detection)");
  if (options.watchdog_tick_s <= 0.0)
    throw std::invalid_argument("run_scheduler: watchdog_tick_s must be positive");
  for (const JobSpec& spec : jobs) {
    if (spec.dataset == nullptr || spec.dataset->size() == 0)
      throw std::invalid_argument("run_scheduler: job without a dataset");
    if (spec.ranks < 1) throw std::invalid_argument("run_scheduler: job needs >= 1 rank");
    if (spec.max_retries < 0)
      throw std::invalid_argument("run_scheduler: max_retries must be non-negative");
  }
}

void fill_report(SchedulerReport& report, double makespan_s, int timeouts,
                 const std::vector<int>& pool_ranks_lost) {
  report.makespan_s = makespan_s;
  report.timeouts = timeouts;
  report.pool_ranks_lost = pool_ranks_lost;
  std::vector<double> latencies;
  std::vector<double> waits;
  for (const JobRecord& rec : report.jobs) {
    switch (rec.state) {
      case JobState::completed:
        ++report.completed;
        latencies.push_back(rec.latency_s);
        waits.push_back(rec.queue_wait_s);
        break;
      case JobState::rejected: ++report.rejected; break;
      case JobState::lost: ++report.lost; break;
      case JobState::queued:
      case JobState::running: break;  // unreachable after run()
    }
    report.requeues += rec.requeues;
    report.shrinks += rec.shrinks;
  }
  report.latency_p50_s = svmutil::percentile(latencies, 50.0);
  report.latency_p99_s = svmutil::percentile(latencies, 99.0);
  report.queue_wait_p50_s = svmutil::percentile(waits, 50.0);

  auto& m = report.metrics;
  m.counter("sched.jobs_submitted").add(static_cast<std::uint64_t>(report.jobs.size()));
  m.counter("sched.jobs_completed").add(static_cast<std::uint64_t>(report.completed));
  m.counter("sched.jobs_rejected").add(static_cast<std::uint64_t>(report.rejected));
  m.counter("sched.jobs_lost").add(static_cast<std::uint64_t>(report.lost));
  m.counter("sched.requeues").add(static_cast<std::uint64_t>(report.requeues));
  m.counter("sched.timeouts").add(static_cast<std::uint64_t>(report.timeouts));
  m.counter("sched.shrinks").add(static_cast<std::uint64_t>(report.shrinks));
  m.counter("sched.ranks_lost").add(static_cast<std::uint64_t>(pool_ranks_lost.size()));
  m.gauge("sched.makespan_s").set(report.makespan_s);
  m.gauge("sched.latency_p50_s").set(report.latency_p50_s);
  m.gauge("sched.latency_p99_s").set(report.latency_p99_s);
  m.gauge("sched.queue_wait_p50_s").set(report.queue_wait_p50_s);
}

void maybe_write_metrics(const SchedulerReport& report, const SchedulerOptions& options) {
  if (options.metrics_path.empty()) return;
  svmobs::RunReport run;
  run.name = "scheduler";
  run.info.emplace_back("pool_ranks", std::to_string(options.pool_ranks));
  run.info.emplace_back("jobs", std::to_string(report.jobs.size()));
  run.info.emplace_back("queue_capacity", std::to_string(options.queue_capacity));
  run.aggregate = report.metrics;
  svmobs::write_reports(options.metrics_path, {run});
}

}  // namespace

SchedulerReport run_scheduler(std::vector<JobSpec> jobs, const SchedulerOptions& options) {
  validate(jobs, options);

  SchedulerReport report;
  report.jobs.reserve(jobs.size());
  for (JobSpec& spec : jobs) {
    JobRecord rec;
    rec.spec = std::move(spec);
    report.jobs.push_back(std::move(rec));
  }

  ObsSession obs(options.trace_path);
  svmmpi::FaultInjector injector(options.fault_plan);
  Pool pool;
  pool.alive = options.pool_ranks;
  pool.inbox.resize(static_cast<std::size_t>(options.pool_ranks));

  Dispatcher dispatcher(report.jobs, options, pool);
  std::thread dispatch_thread([&] { dispatcher.run(); });

  svmmpi::ElasticReport elastic;
  try {
    elastic = svmmpi::run_spmd_elastic(
        options.pool_ranks,
        [&](svmmpi::Comm& world_comm) {
          const int me = world_comm.rank();
          // On EVERY exit (normal, death, abort) mark this rank thread gone
          // so the dispatcher's world lease (Pool::alive) stays accurate.
          struct ExitGuard {
            Pool& pool;
            ~ExitGuard() {
              std::lock_guard lock(pool.mutex);
              --pool.alive;
              pool.dispatcher_cv.notify_all();
            }
          } exit_guard{pool};
          if (me == 0) {
            std::lock_guard lock(pool.mutex);
            pool.world = &world_comm.world();
            pool.dispatcher_cv.notify_all();
          }
          for (;;) {
            Directive directive;
            {
              std::unique_lock lock(pool.mutex);
              pool.worker_cv.wait(lock,
                                  [&] { return !pool.inbox[static_cast<std::size_t>(me)].empty(); });
              directive = std::move(pool.inbox[static_cast<std::size_t>(me)].front());
              pool.inbox[static_cast<std::size_t>(me)].pop_front();
            }
            if (directive.kind == Directive::Kind::exit) return;
            const JobSpec& spec = report.jobs[static_cast<std::size_t>(directive.job)].spec;
            try {
              MemberReport member = run_member(world_comm, directive, spec);
              std::lock_guard lock(pool.mutex);
              pool.reports.push_back(std::move(member));
              pool.dispatcher_cv.notify_all();
            } catch (const svmmpi::RankFailed& failure) {
              MemberReport member;
              member.attempt = directive.shared->uid;
              member.job = directive.job;
              member.world_rank = me;
              member.kind = failure.permanent ? MemberReport::Kind::died
                                              : MemberReport::Kind::crashed;
              member.error = failure.what();
              {
                std::lock_guard lock(pool.mutex);
                pool.reports.push_back(std::move(member));
                pool.dispatcher_cv.notify_all();
              }
              // A permanent loss must reach the elastic launcher so the
              // world marks this rank dead and the job's survivors observe
              // RankLost; a transient crash models a process relaunch —
              // the rank simply rejoins the pool.
              if (failure.permanent) throw;
            }
          }
        },
        options.net_model, nullptr, &injector);
  } catch (...) {
    dispatch_thread.join();
    throw;
  }
  dispatch_thread.join();

  fill_report(report, dispatcher.makespan_s, dispatcher.timeouts, elastic.failed_ranks);
  maybe_write_metrics(report, options);
  return report;
}

}  // namespace svmsched
