#include "sched/workload.hpp"

#include <algorithm>
#include <cmath>
#include <random>
#include <set>
#include <stdexcept>
#include <string>

namespace svmsched {

namespace {

void apply_defaults(JobSpec& spec, const JobDefaults& defaults) {
  spec.tenant = defaults.tenant;
  spec.priority = defaults.priority;
  spec.ranks = defaults.ranks;
  spec.timeout_s = defaults.timeout_s;
  spec.max_retries = defaults.max_retries;
  spec.checkpoint_interval = defaults.checkpoint_interval;
  spec.policy = defaults.policy;
  spec.heuristic = defaults.heuristic;
}

[[nodiscard]] std::string trim_number(double v) {
  std::string s = std::to_string(v);
  s.erase(s.find_last_not_of('0') + 1);
  if (!s.empty() && s.back() == '.') s.pop_back();
  return s;
}

}  // namespace

const char* to_string(JobState state) noexcept {
  switch (state) {
    case JobState::queued: return "queued";
    case JobState::running: return "running";
    case JobState::completed: return "completed";
    case JobState::rejected: return "rejected";
    case JobState::lost: return "lost";
  }
  return "unknown";
}

std::vector<JobSpec> grid_search_jobs(std::shared_ptr<const svmdata::Dataset> dataset,
                                      const std::vector<double>& c_values,
                                      const std::vector<double>& gamma_values,
                                      svmcore::SolverParams base, const JobDefaults& defaults,
                                      int first_id) {
  if (dataset == nullptr) throw std::invalid_argument("grid_search_jobs: null dataset");
  if (c_values.empty() || gamma_values.empty())
    throw std::invalid_argument("grid_search_jobs: empty grid");
  std::vector<JobSpec> jobs;
  jobs.reserve(c_values.size() * gamma_values.size());
  int id = first_id;
  for (const double c : c_values) {
    for (const double gamma : gamma_values) {
      JobSpec spec;
      apply_defaults(spec, defaults);
      spec.id = id++;
      spec.name = "grid C=" + trim_number(c) + " g=" + trim_number(gamma);
      spec.dataset = dataset;
      spec.params = base;
      spec.params.C = c;
      spec.params.kernel.gamma = gamma;
      jobs.push_back(std::move(spec));
    }
  }
  return jobs;
}

std::vector<JobSpec> one_vs_one_jobs(const svmdata::MultiClassData& dataset,
                                     svmcore::SolverParams params, const JobDefaults& defaults,
                                     int first_id) {
  const std::set<double> class_set(dataset.labels.begin(), dataset.labels.end());
  if (class_set.size() < 2)
    throw std::invalid_argument("one_vs_one_jobs: need at least two classes");
  const std::vector<double> classes(class_set.begin(), class_set.end());

  std::vector<JobSpec> jobs;
  jobs.reserve(classes.size() * (classes.size() - 1) / 2);
  int id = first_id;
  for (std::size_t a = 0; a < classes.size(); ++a) {
    for (std::size_t b = a + 1; b < classes.size(); ++b) {
      auto pair = std::make_shared<svmdata::Dataset>();
      for (std::size_t i = 0; i < dataset.size(); ++i) {
        if (dataset.labels[i] == classes[a] || dataset.labels[i] == classes[b]) {
          pair->X.add_row(dataset.X.row(i));
          pair->y.push_back(dataset.labels[i] == classes[a] ? 1.0 : -1.0);
        }
      }
      JobSpec spec;
      apply_defaults(spec, defaults);
      spec.id = id++;
      spec.name = "pair " + trim_number(classes[a]) + "v" + trim_number(classes[b]);
      spec.dataset = std::move(pair);
      spec.params = params;
      jobs.push_back(std::move(spec));
    }
  }
  return jobs;
}

void assign_bursty_arrivals(std::vector<JobSpec>& jobs, const BurstyTrace& trace) {
  if (trace.mean_gap_s < 0.0)
    throw std::invalid_argument("assign_bursty_arrivals: negative mean gap");
  std::mt19937_64 rng(trace.seed);
  // Hand-rolled inverse-CDF draws (not std::*_distribution) so the trace is
  // bit-identical across standard libraries.
  const auto uniform = [&rng] {
    return (static_cast<double>(rng() >> 11) + 0.5) * 0x1.0p-53;
  };
  double clock = 0.0;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (i > 0 && uniform() >= trace.burst_fraction)
      clock += -trace.mean_gap_s * std::log(uniform());
    jobs[i].arrival_s = clock;
  }
}

}  // namespace svmsched
