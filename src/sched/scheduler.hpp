// svmsched: a multi-tenant training-as-a-service scheduler over the
// simulated MPI substrate. One shared pool of `pool_ranks` rank threads
// (one elastic SPMD region) executes many concurrent training jobs; a
// dispatcher thread admits jobs from a synthetic arrival trace into a
// bounded queue, allocates gangs of free ranks (priority, then tenant
// fair-share), and reallocates ranks the moment a job releases them.
//
// Fault isolation is the point of the design: each job attempt runs on its
// own communicator built by Comm::split_subset over a FRESH collective
// context, so (a) a rank death interrupts only the communicators whose
// group contains the dead rank — concurrent jobs on disjoint gangs never
// observe it — and (b) no attempt can ever receive a stale message or an
// abandoned collective round from a previous attempt or another tenant.
// A permanent rank loss shrinks only the affected job (ULFM-style in-job
// shrink with buddy-replica checkpoint repartition, per the job's
// RecoveryPolicy); a transient crash returns the rank to the pool and
// requeues the job with capped exponential backoff; a hung job is detected
// by the dispatcher's watchdog, which cancels the gang's live context
// (World::cancel_context) so every member unwinds and the job is requeued.
#pragma once

#include <string>
#include <vector>

#include "mpisim/fault.hpp"
#include "mpisim/netmodel.hpp"
#include "obs/metrics.hpp"
#include "sched/job.hpp"

namespace svmsched {

struct SchedulerOptions {
  /// Size of the shared rank pool (the elastic SPMD region).
  int pool_ranks = 8;
  /// Admission bound: jobs ARRIVING while this many are queued are rejected
  /// (graceful degradation under overload). Requeues of already-admitted
  /// jobs bypass the bound — it throttles new work, never drops accepted
  /// work (the requeue population is bounded by the running-job count).
  int queue_capacity = 64;
  /// Dispatcher poll cadence: admission, watchdog and scheduling run at
  /// least this often (reports wake the dispatcher immediately).
  double watchdog_tick_s = 0.005;
  /// Capped exponential retry backoff: a job's k-th requeue (1-based) waits
  /// min(backoff_base_s * 2^(k-1), backoff_cap_s) before redispatch.
  /// 0 disables (immediate redispatch).
  double backoff_base_s = 0.0;
  double backoff_cap_s = 0.25;
  /// Network model for the pool's world; timeout_s must be > 0 (the elastic
  /// substrate's deadline-driven failure detection).
  svmmpi::NetModel net_model{};
  /// Faults to inject, keyed by (world rank, rank-local op count). Idle pool
  /// ranks issue no communication ops, so op counts advance only inside
  /// jobs — a plan targets a specific job deterministically.
  svmmpi::FaultPlan fault_plan{};
  /// Chrome trace-event JSON of the whole scheduler run (empty = disabled):
  /// per-job "job" spans on the member ranks' tracks, dispatcher decisions
  /// as instants on the driver track, pool gauges as counters.
  std::string trace_path;
  /// svmobs run-report JSON (schema svmobs.run_report.v1; empty = disabled).
  std::string metrics_path;
};

struct SchedulerReport {
  std::vector<JobRecord> jobs;  ///< submit order
  double makespan_s = 0.0;      ///< start -> last job terminal

  int completed = 0;
  int rejected = 0;
  int lost = 0;       ///< retry budget exhausted (or pool died)
  int requeues = 0;   ///< attempts requeued (faults + watchdog)
  int timeouts = 0;   ///< attempts cancelled by the watchdog
  int shrinks = 0;    ///< in-job shrink recoveries across all jobs
  std::vector<int> pool_ranks_lost;  ///< world ranks permanently lost

  // Completed-job latency distribution (admission -> completion).
  double latency_p50_s = 0.0;
  double latency_p99_s = 0.0;
  double queue_wait_p50_s = 0.0;

  /// Scheduler-level registry (the metrics_path report's aggregate).
  svmobs::MetricsRegistry metrics;
};

/// Runs every job to a terminal state and returns the ledger. Throws
/// std::invalid_argument on bad options (non-positive pool/queue/timeout,
/// null datasets, gang requests below 1).
[[nodiscard]] SchedulerReport run_scheduler(std::vector<JobSpec> jobs,
                                            const SchedulerOptions& options);

}  // namespace svmsched
