#include "obs/validate.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>

#include "obs/json.hpp"

namespace svmobs {

namespace {

std::string describe_track(std::int64_t pid, std::int64_t tid) {
  return "track(pid=" + std::to_string(pid) + ",tid=" + std::to_string(tid) + ")";
}

const JsonValue* get(const JsonValue& object, const char* key) {
  return object.is(JsonType::object) ? object.find(key) : nullptr;
}

}  // namespace

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) throw std::runtime_error("failed reading " + path);
  return buffer.str();
}

ValidationResult validate_trace(const std::string& json,
                                const std::vector<std::string>& required_spans,
                                std::size_t min_counter_tracks, bool strict_flows) {
  ValidationResult result;
  JsonValue root;
  try {
    root = parse_json(json);
  } catch (const std::exception& e) {
    result.errors.emplace_back(e.what());
    return result;
  }
  if (!root.is(JsonType::object)) {
    result.errors.emplace_back("top level is not an object");
    return result;
  }
  const JsonValue* other = get(root, "otherData");
  const JsonValue* schema = other != nullptr ? get(*other, "schema") : nullptr;
  if (schema == nullptr || !schema->is(JsonType::string) || schema->string != "svmobs.trace.v1")
    result.errors.emplace_back("otherData.schema is not \"svmobs.trace.v1\"");
  // Ring overflow evicts oldest events, which can orphan one side of a flow
  // through no fault of the emitter; a trace that admits to dropped events
  // is therefore exempt from the strict dangling-flow gate (uniqueness of
  // the surviving start ids still holds — ids are never reused).
  const JsonValue* dropped = other != nullptr ? get(*other, "dropped_events") : nullptr;
  if (dropped != nullptr && dropped->is(JsonType::number) && dropped->number > 0)
    strict_flows = false;
  const JsonValue* events = get(root, "traceEvents");
  if (events == nullptr || !events->is(JsonType::array)) {
    result.errors.emplace_back("traceEvents missing or not an array");
    return result;
  }

  struct TrackState {
    double last_ts = -1.0;
    std::vector<std::string> open;  ///< names of open B spans, in nest order
  };
  std::map<std::pair<std::int64_t, std::int64_t>, TrackState> tracks;
  std::set<std::string> counter_names;
  std::set<std::string> span_names;

  // Flow bookkeeping: starts/finishes are matched AFTER the event loop —
  // the exporter orders events by rank, so a finish can legitimately appear
  // in the file before its start.
  struct FlowState {
    std::size_t starts = 0;  ///< duplicate-id detection
    std::int64_t start_pid = 0;
    std::vector<std::int64_t> finish_pids;
  };
  std::map<std::int64_t, FlowState> flow_by_id;

  for (const JsonValue& e : events->array) {
    if (!e.is(JsonType::object)) {
      result.errors.emplace_back("traceEvents entry is not an object");
      continue;
    }
    const JsonValue* ph = get(e, "ph");
    const JsonValue* name = get(e, "name");
    const JsonValue* pid = get(e, "pid");
    const JsonValue* tid = get(e, "tid");
    if (ph == nullptr || !ph->is(JsonType::string) || name == nullptr ||
        !name->is(JsonType::string) || pid == nullptr || !pid->is(JsonType::number) ||
        tid == nullptr || !tid->is(JsonType::number)) {
      result.errors.emplace_back("event missing ph/name/pid/tid");
      continue;
    }
    if (ph->string == "M") continue;  // metadata events carry no ts

    ++result.events;
    const auto track_key = std::make_pair(static_cast<std::int64_t>(pid->number),
                                          static_cast<std::int64_t>(tid->number));
    TrackState& track = tracks[track_key];

    const JsonValue* ts = get(e, "ts");
    if (ts == nullptr || !ts->is(JsonType::number)) {
      result.errors.emplace_back("event \"" + name->string + "\" has no numeric ts");
      continue;
    }
    if (ts->number < track.last_ts && result.errors.size() < 32)
      result.errors.emplace_back(describe_track(track_key.first, track_key.second) +
                                 ": timestamps not monotonic at event \"" + name->string + "\"");
    track.last_ts = std::max(track.last_ts, ts->number);

    if (ph->string == "B") {
      track.open.push_back(name->string);
      span_names.insert(name->string);
    } else if (ph->string == "E") {
      if (track.open.empty()) {
        if (result.errors.size() < 32)
          result.errors.emplace_back(describe_track(track_key.first, track_key.second) +
                                     ": end \"" + name->string + "\" with no open span");
      } else {
        if (track.open.back() != name->string && result.errors.size() < 32)
          result.errors.emplace_back(describe_track(track_key.first, track_key.second) +
                                     ": end \"" + name->string + "\" does not match open span \"" +
                                     track.open.back() + "\"");
        track.open.pop_back();
        ++result.spans;
      }
    } else if (ph->string == "C") {
      const JsonValue* args = get(e, "args");
      const JsonValue* value = args != nullptr ? get(*args, "value") : nullptr;
      if (value == nullptr || !value->is(JsonType::number)) {
        if (result.errors.size() < 32)
          result.errors.emplace_back("counter \"" + name->string + "\" has no args.value");
      }
      counter_names.insert(name->string);
    } else if (ph->string == "s" || ph->string == "f") {
      const JsonValue* id = get(e, "id");
      if (id == nullptr || !id->is(JsonType::number)) {
        if (result.errors.size() < 32)
          result.errors.emplace_back("flow event \"" + name->string + "\" has no numeric id");
        continue;
      }
      FlowState& flow = flow_by_id[static_cast<std::int64_t>(id->number)];
      if (ph->string == "s") {
        if (flow.starts > 0 && result.errors.size() < 32)
          result.errors.emplace_back("flow id " +
                                     std::to_string(static_cast<std::int64_t>(id->number)) +
                                     " started more than once (ids must be unique per run)");
        ++flow.starts;
        flow.start_pid = track_key.first;
      } else {
        flow.finish_pids.push_back(track_key.first);
      }
    } else if (ph->string != "i") {
      if (result.errors.size() < 32)
        result.errors.emplace_back("unknown phase \"" + ph->string + "\"");
    }
  }

  for (const auto& [key, track] : tracks)
    for (const std::string& name : track.open)
      result.errors.emplace_back(describe_track(key.first, key.second) +
                                 ": span \"" + name + "\" never ends");

  // Flow integrity, judged with the full picture (starts and finishes land
  // on different tracks, hence in arbitrary file order).
  for (const auto& [id, flow] : flow_by_id) {
    if (flow.starts > 0) {
      ++result.flows;
      if (flow.finish_pids.empty()) ++result.dangling_flows;
    }
    if (!strict_flows) continue;
    if (flow.starts == 0) {
      if (result.errors.size() < 48)
        result.errors.emplace_back("flow id " + std::to_string(id) +
                                   " finished but never started");
      continue;
    }
    if (flow.finish_pids.empty()) {
      if (result.errors.size() < 48)
        result.errors.emplace_back("flow id " + std::to_string(id) +
                                   " dangles: started on pid " +
                                   std::to_string(flow.start_pid) + " but never finished");
      continue;
    }
    bool crossed = false;
    for (const std::int64_t pid : flow.finish_pids) crossed = crossed || pid != flow.start_pid;
    if (!crossed && result.errors.size() < 48)
      result.errors.emplace_back("flow id " + std::to_string(id) +
                                 " never leaves its own rank (pid " +
                                 std::to_string(flow.start_pid) + ")");
  }

  for (const std::string& required : required_spans)
    if (span_names.count(required) == 0)
      result.errors.emplace_back("required span \"" + required + "\" not found");

  result.tracks = tracks.size();
  result.counter_tracks = counter_names.size();
  if (counter_names.size() < min_counter_tracks)
    result.errors.emplace_back("expected >= " + std::to_string(min_counter_tracks) +
                               " counter tracks, found " + std::to_string(counter_names.size()));
  return result;
}

namespace {

void check_registry(const JsonValue& metrics, const std::string& where,
                    ValidationResult& result) {
  for (const char* section : {"counters", "gauges", "histograms"}) {
    const JsonValue* v = get(metrics, section);
    if (v == nullptr || !v->is(JsonType::object)) {
      result.errors.emplace_back(where + ": metrics." + section + " missing or not an object");
      return;
    }
    for (const auto& [name, entry] : v->object) {
      if (std::string(section) == "histograms") {
        const JsonValue* bounds = get(entry, "bounds");
        const JsonValue* counts = get(entry, "counts");
        if (bounds == nullptr || !bounds->is(JsonType::array) || counts == nullptr ||
            !counts->is(JsonType::array) || counts->array.size() != bounds->array.size() + 1)
          result.errors.emplace_back(where + ": histogram \"" + name +
                                     "\" bounds/counts malformed");
      } else if (!entry.is(JsonType::number)) {
        result.errors.emplace_back(where + ": " + section + " \"" + name + "\" is not a number");
      }
    }
  }
}

}  // namespace

ValidationResult validate_metrics(const std::string& json) {
  ValidationResult result;
  JsonValue root;
  try {
    root = parse_json(json);
  } catch (const std::exception& e) {
    result.errors.emplace_back(e.what());
    return result;
  }
  const JsonValue* schema = get(root, "schema");
  if (schema == nullptr || !schema->is(JsonType::string) ||
      schema->string != "svmobs.run_report.v1")
    result.errors.emplace_back("schema is not \"svmobs.run_report.v1\"");
  const JsonValue* runs = get(root, "runs");
  if (runs == nullptr || !runs->is(JsonType::array)) {
    result.errors.emplace_back("runs missing or not an array");
    return result;
  }
  for (const JsonValue& run : runs->array) {
    ++result.runs;
    const JsonValue* name = get(run, "name");
    const std::string run_name =
        (name != nullptr && name->is(JsonType::string)) ? name->string : "";
    if (run_name.empty()) {
      result.errors.emplace_back("run entry has no name");
      continue;
    }
    const JsonValue* ranks = get(run, "ranks");
    if (ranks == nullptr || !ranks->is(JsonType::array)) {
      result.errors.emplace_back("run \"" + run_name + "\": ranks missing or not an array");
      continue;
    }
    for (const JsonValue& rank : ranks->array) {
      const JsonValue* rank_id = get(rank, "rank");
      const JsonValue* metrics = get(rank, "metrics");
      if (rank_id == nullptr || !rank_id->is(JsonType::number) || metrics == nullptr) {
        result.errors.emplace_back("run \"" + run_name + "\": malformed rank entry");
        continue;
      }
      check_registry(*metrics, "run \"" + run_name + "\" rank " +
                                   std::to_string(static_cast<int>(rank_id->number)),
                     result);
    }
    const JsonValue* aggregate = get(run, "aggregate");
    if (aggregate == nullptr)
      result.errors.emplace_back("run \"" + run_name + "\": aggregate missing");
    else
      check_registry(*aggregate, "run \"" + run_name + "\" aggregate", result);
  }
  return result;
}

}  // namespace svmobs
