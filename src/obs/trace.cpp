#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <stdexcept>

#include "obs/json.hpp"

namespace svmobs {

namespace detail {

std::atomic<bool> g_trace_enabled{false};

namespace {

using Clock = std::chrono::steady_clock;

constexpr int kDriverRank = 1 << 20;  ///< track id for unlabeled (main) threads

/// One thread's ring. Owned by the registry so it outlives the thread; the
/// owning thread is the only writer, and readers only run after the writer
/// has joined (or from the writer itself).
struct ThreadBuffer {
  explicit ThreadBuffer(std::size_t capacity) : events(capacity) {}

  std::vector<TraceEvent> events;  ///< ring storage, fixed capacity
  std::size_t next = 0;            ///< ring write cursor
  std::uint64_t appended = 0;      ///< total appends (>= capacity => wrapped)
  int rank = kDriverRank;
  std::uint64_t registration = 0;  ///< export ordering for same-rank buffers

  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return appended > events.size() ? appended - events.size() : 0;
  }

  void push(const TraceEvent& e) noexcept {
    events[next] = e;
    next = (next + 1) % events.size();
    ++appended;
  }

  /// Oldest-to-newest iteration bounds.
  [[nodiscard]] std::size_t size() const noexcept {
    return std::min<std::uint64_t>(appended, events.size());
  }
  [[nodiscard]] const TraceEvent& at(std::size_t i) const noexcept {
    const std::size_t start = appended > events.size() ? next : 0;
    return events[(start + i) % events.size()];
  }
};

/// Bumped by trace_reset to invalidate cached thread-local buffer pointers.
/// trace_reset must not race emission (the trainer resets between runs,
/// after SPMD threads have joined).
std::atomic<std::uint64_t> g_generation{0};

struct Registry {
  std::mutex mutex;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;
  std::size_t capacity = 1u << 16;
  Clock::time_point epoch = Clock::now();
  std::uint64_t registrations = 0;
};

Registry& registry() {
  static Registry* r = new Registry;  // leaked: emission may outlive statics
  return *r;
}

struct ThreadSlot {
  ThreadBuffer* buffer = nullptr;
  std::uint64_t generation = ~0ULL;
};
thread_local ThreadSlot t_slot;

ThreadBuffer* register_thread_buffer() {
  Registry& r = registry();
  std::lock_guard lock(r.mutex);
  r.buffers.push_back(std::make_unique<ThreadBuffer>(std::max<std::size_t>(r.capacity, 16)));
  r.buffers.back()->registration = r.registrations++;
  t_slot.buffer = r.buffers.back().get();
  t_slot.generation = g_generation.load(std::memory_order_relaxed);
  return t_slot.buffer;
}

/// Fast path is lock-free: one relaxed load + pointer compare. The mutex is
/// only taken on a thread's FIRST emission (per reset generation).
inline ThreadBuffer* this_thread_buffer() {
  if (t_slot.buffer != nullptr &&
      t_slot.generation == g_generation.load(std::memory_order_relaxed))
    return t_slot.buffer;
  return register_thread_buffer();
}

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - registry().epoch)
          .count());
}

}  // namespace

void emit(EventType type, const char* name, const char* category, double value) noexcept {
  // Double-check under no lock: trace_disable between the caller's check and
  // here only risks recording one extra event, never a fault.
  if (!g_trace_enabled.load(std::memory_order_relaxed)) return;
  try {
    ThreadBuffer* buffer = this_thread_buffer();
    TraceEvent e;
    e.name = name;
    e.category = category;
    e.value = value;
    e.ts_ns = now_ns();
    e.type = type;
    buffer->push(e);
  } catch (...) {
    // Allocation failure during registration: drop the event, never throw
    // into a noexcept hot path.
  }
}

std::uint64_t next_round_seq() noexcept {
  // Generation-checked like the buffer slot: a trace_reset between runs
  // restarts every thread's round numbering at 0, so round N in run 2 is
  // never confused with round N of run 1.
  thread_local std::uint64_t seq = 0;
  thread_local std::uint64_t generation = ~0ULL;
  const std::uint64_t current = g_generation.load(std::memory_order_relaxed);
  if (generation != current) {
    generation = current;
    seq = 0;
  }
  return seq++;
}

}  // namespace detail

using detail::EventType;
using detail::TraceEvent;

void trace_enable(std::size_t events_per_thread) {
  auto& r = detail::registry();
  {
    std::lock_guard lock(r.mutex);
    r.capacity = std::max<std::size_t>(events_per_thread, 16);
    if (!detail::g_trace_enabled.load(std::memory_order_relaxed) && r.buffers.empty())
      r.epoch = std::chrono::steady_clock::now();
  }
  detail::g_trace_enabled.store(true, std::memory_order_relaxed);
}

void trace_disable() { detail::g_trace_enabled.store(false, std::memory_order_relaxed); }

void trace_reset() {
  auto& r = detail::registry();
  std::lock_guard lock(r.mutex);
  r.buffers.clear();
  detail::g_generation.fetch_add(1, std::memory_order_relaxed);
  r.epoch = std::chrono::steady_clock::now();
}

void trace_set_thread_rank(int rank) {
  if (!trace_enabled()) return;
  detail::this_thread_buffer()->rank = rank;
}

std::uint64_t trace_dropped_events() {
  auto& r = detail::registry();
  std::lock_guard lock(r.mutex);
  std::uint64_t dropped = 0;
  for (const auto& b : r.buffers) dropped += b->dropped();
  return dropped;
}

namespace {

struct ExportEvent {
  TraceEvent event;
  int rank = 0;
  std::uint64_t order = 0;  ///< stable tiebreak: (registration, index)
};

void write_event(JsonWriter& w, const ExportEvent& e) {
  w.begin_object();
  w.key("name");
  w.value(std::string_view(e.event.name != nullptr ? e.event.name : ""));
  const char* ph = "i";
  switch (e.event.type) {
    case EventType::begin: ph = "B"; break;
    case EventType::end: ph = "E"; break;
    case EventType::counter: ph = "C"; break;
    case EventType::instant: ph = "i"; break;
    case EventType::flow_start: ph = "s"; break;
    case EventType::flow_finish: ph = "f"; break;
  }
  w.key("ph");
  w.value(std::string_view(ph));
  if (e.event.category != nullptr && e.event.type != EventType::counter) {
    w.key("cat");
    w.value(std::string_view(e.event.category));
  }
  w.key("ts");  // Chrome trace timestamps are microseconds
  w.value(static_cast<double>(e.event.ts_ns) / 1000.0);
  w.key("pid");
  w.value(static_cast<std::int64_t>(e.rank));
  w.key("tid");
  w.value(static_cast<std::int64_t>(e.rank));
  if (e.event.type == EventType::counter) {
    w.key("args");
    w.begin_object();
    w.key("value");
    w.value(e.event.value);
    w.end_object();
  } else if (e.event.type == EventType::instant) {
    w.key("s");
    w.value(std::string_view("t"));
  } else if (e.event.type == EventType::flow_start || e.event.type == EventType::flow_finish) {
    // Legacy Chrome flow events: the finish binds to the ENCLOSING slice
    // (bp:"e"), which is exactly the receiver's recv/wait span.
    w.key("id");
    w.value(static_cast<std::int64_t>(e.event.value));
    if (e.event.type == EventType::flow_finish) {
      w.key("bp");
      w.value(std::string_view("e"));
    }
  }
  w.end_object();
}

}  // namespace

std::string trace_json() {
  auto& r = detail::registry();
  std::lock_guard lock(r.mutex);

  // Gather per-buffer events, repairing what ring eviction truncated: an
  // `end` with no live `begin` (depth would go negative) gets a synthetic
  // begin at the buffer's oldest timestamp; a `begin` never closed (the
  // thread was stopped outside an unwind — cannot happen with TraceSpan, but
  // raw trace_begin users can) gets a synthetic end at the newest timestamp.
  std::vector<ExportEvent> events;
  std::uint64_t dropped = 0;
  std::uint64_t order = 0;
  for (const auto& buffer : r.buffers) {
    dropped += buffer->dropped();
    const std::size_t n = buffer->size();
    if (n == 0) continue;
    const std::uint64_t oldest_ts = buffer->at(0).ts_ns;
    std::uint64_t newest_ts = oldest_ts;
    std::vector<const TraceEvent*> open;
    std::vector<ExportEvent> local;
    local.reserve(n + 8);
    for (std::size_t i = 0; i < n; ++i) {
      const TraceEvent& e = buffer->at(i);
      newest_ts = std::max(newest_ts, e.ts_ns);
      if (e.type == EventType::begin) {
        open.push_back(&e);
      } else if (e.type == EventType::end) {
        if (!open.empty() && std::strcmp(open.back()->name, e.name) == 0) {
          open.pop_back();
        } else if (!open.empty()) {
          // Mismatched end (raw begin/end misuse, not eviction — eviction
          // only drops a prefix): pair it with a synthetic begin at its own
          // timestamp so it nests as a zero-length span inside the open one.
          TraceEvent b = e;
          b.type = EventType::begin;
          local.push_back(ExportEvent{b, buffer->rank, 0});
        } else {
          // Truncated-left span: synthesize its begin at the oldest ts.
          TraceEvent b = e;
          b.type = EventType::begin;
          b.ts_ns = oldest_ts;
          // Must precede everything already collected to nest correctly.
          local.insert(local.begin(), ExportEvent{b, buffer->rank, 0});
        }
      }
      local.push_back(ExportEvent{e, buffer->rank, 0});
    }
    // Still-open spans (no unwind ran): close them at the newest timestamp,
    // innermost first.
    for (auto it = open.rbegin(); it != open.rend(); ++it) {
      TraceEvent e = **it;
      e.type = EventType::end;
      e.ts_ns = newest_ts;
      local.push_back(ExportEvent{e, buffer->rank, 0});
    }
    for (ExportEvent& e : local) {
      e.order = (buffer->registration << 32) | (order++ & 0xFFFFFFFFu);
      events.push_back(e);
    }
  }

  // Per-track (pid/tid = rank) monotonic order. Buffers from successive SPMD
  // generations share ranks; the (ts, registration order) sort interleaves
  // them correctly because all share one epoch.
  std::stable_sort(events.begin(), events.end(), [](const ExportEvent& a, const ExportEvent& b) {
    if (a.rank != b.rank) return a.rank < b.rank;
    if (a.event.ts_ns != b.event.ts_ns) return a.event.ts_ns < b.event.ts_ns;
    return a.order < b.order;
  });

  JsonWriter w;
  w.begin_object();
  w.key("traceEvents");
  w.begin_array();
  // Track-name metadata so Perfetto shows "rank N" / "driver" rows.
  std::vector<int> ranks_seen;
  for (const ExportEvent& e : events)
    if (std::find(ranks_seen.begin(), ranks_seen.end(), e.rank) == ranks_seen.end())
      ranks_seen.push_back(e.rank);
  for (const int rank : ranks_seen) {
    w.begin_object();
    w.key("name");
    w.value(std::string_view("process_name"));
    w.key("ph");
    w.value(std::string_view("M"));
    w.key("pid");
    w.value(static_cast<std::int64_t>(rank));
    w.key("tid");
    w.value(static_cast<std::int64_t>(rank));
    w.key("args");
    w.begin_object();
    w.key("name");
    w.value(rank == (1 << 20) ? std::string("driver") : "rank " + std::to_string(rank));
    w.end_object();
    w.end_object();
  }
  for (const ExportEvent& e : events) write_event(w, e);
  w.end_array();
  w.key("displayTimeUnit");
  w.value(std::string_view("ms"));
  w.key("otherData");
  w.begin_object();
  w.key("schema");
  w.value(std::string_view("svmobs.trace.v1"));
  w.key("dropped_events");
  w.value(dropped);
  w.end_object();
  w.end_object();
  return w.str();
}

void trace_write(const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("svmobs: cannot open trace output file " + path);
  const std::string json = trace_json();
  out.write(json.data(), static_cast<std::streamsize>(json.size()));
  if (!out) throw std::runtime_error("svmobs: failed writing trace to " + path);
}

}  // namespace svmobs
