// Structural validation for the artifacts svmobs emits. Shared by the
// tools/trace_validate CLI and the obs test suite so both enforce the same
// contract:
//
//  trace:   parses as JSON, schema tag matches, per-track (pid,tid)
//           timestamps are monotonic non-decreasing, every track's B/E spans
//           balance and nest properly, all required span names are present,
//           at least `min_counter_tracks` distinct counter tracks exist, and
//           flow events (ph "s"/"f") carry numeric ids that are unique per
//           start. With `strict_flows`, every flow-start must additionally
//           be finished on a DIFFERENT rank and no finish may lack its start
//           — crash-chaos traces (flows into dead ranks) and overflow-
//           truncated rings legitimately dangle, so strictness is opt-in and
//           auto-relaxed when the trace reports dropped events.
//  metrics: parses as JSON, schema tag matches, every run has a name, every
//           rank entry carries counters/gauges/histograms objects, histogram
//           counts arrays are bounds.size()+1 long.
#pragma once

#include <string>
#include <vector>

namespace svmobs {

struct ValidationResult {
  std::vector<std::string> errors;
  // Summary facts for reporting / assertions.
  std::size_t events = 0;          ///< trace: total events seen
  std::size_t tracks = 0;          ///< trace: distinct (pid,tid) tracks
  std::size_t counter_tracks = 0;  ///< trace: distinct counter names
  std::size_t spans = 0;           ///< trace: matched begin/end pairs
  std::size_t runs = 0;            ///< metrics: run entries
  std::size_t flows = 0;           ///< trace: flow-start events
  std::size_t dangling_flows = 0;  ///< trace: starts without any finish

  [[nodiscard]] bool ok() const noexcept { return errors.empty(); }
};

/// Validates Chrome trace-event JSON produced by trace_json().
/// `required_spans`: names that must appear as at least one B/E span
/// somewhere in the trace (e.g. the four layer-coverage spans).
/// `min_counter_tracks`: minimum number of distinct counter-track names.
/// `strict_flows`: fail on dangling flow-starts, orphan finishes and flows
/// that never leave their own rank (see file comment for when NOT to use).
[[nodiscard]] ValidationResult validate_trace(const std::string& json,
                                              const std::vector<std::string>& required_spans = {},
                                              std::size_t min_counter_tracks = 0,
                                              bool strict_flows = false);

/// Validates a run-report JSON document produced by reports_json().
[[nodiscard]] ValidationResult validate_metrics(const std::string& json);

/// Reads a whole file; throws std::runtime_error when unreadable.
[[nodiscard]] std::string read_file(const std::string& path);

}  // namespace svmobs
