// Structural validation for the artifacts svmobs emits. Shared by the
// tools/trace_validate CLI and the obs test suite so both enforce the same
// contract:
//
//  trace:   parses as JSON, schema tag matches, per-track (pid,tid)
//           timestamps are monotonic non-decreasing, every track's B/E spans
//           balance and nest properly, all required span names are present,
//           and at least `min_counter_tracks` distinct counter tracks exist.
//  metrics: parses as JSON, schema tag matches, every run has a name, every
//           rank entry carries counters/gauges/histograms objects, histogram
//           counts arrays are bounds.size()+1 long.
#pragma once

#include <string>
#include <vector>

namespace svmobs {

struct ValidationResult {
  std::vector<std::string> errors;
  // Summary facts for reporting / assertions.
  std::size_t events = 0;          ///< trace: total events seen
  std::size_t tracks = 0;          ///< trace: distinct (pid,tid) tracks
  std::size_t counter_tracks = 0;  ///< trace: distinct counter names
  std::size_t spans = 0;           ///< trace: matched begin/end pairs
  std::size_t runs = 0;            ///< metrics: run entries

  [[nodiscard]] bool ok() const noexcept { return errors.empty(); }
};

/// Validates Chrome trace-event JSON produced by trace_json().
/// `required_spans`: names that must appear as at least one B/E span
/// somewhere in the trace (e.g. the four layer-coverage spans).
/// `min_counter_tracks`: minimum number of distinct counter-track names.
[[nodiscard]] ValidationResult validate_trace(const std::string& json,
                                              const std::vector<std::string>& required_spans = {},
                                              std::size_t min_counter_tracks = 0);

/// Validates a run-report JSON document produced by reports_json().
[[nodiscard]] ValidationResult validate_metrics(const std::string& json);

/// Reads a whole file; throws std::runtime_error when unreadable.
[[nodiscard]] std::string read_file(const std::string& path);

}  // namespace svmobs
