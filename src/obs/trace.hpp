// Trace recorder: per-thread (per-rank) event ring buffers with Chrome
// trace-event JSON export, viewable in Perfetto (ui.perfetto.dev) or
// chrome://tracing.
//
// Design constraints, in priority order:
//
//  1. ~ns no-op when disabled. Every emission entry point is an inline
//     function whose first instruction is a relaxed atomic load of the
//     global enable flag; solver hot loops can therefore be instrumented
//     unconditionally. The micro-bench guard in bench_micro_mpisim asserts
//     the disabled-path overhead on an SMO-shaped hot loop stays < 2%.
//
//  2. Lock-free append. Each thread writes only its own ring buffer
//     (registered once under a mutex on first emission); an append is a
//     plain array store plus an index increment — no atomics, no locks, no
//     allocation. Buffers are owned by the global recorder and outlive
//     their threads, so export after an SPMD join reads them race-free
//     (thread join provides the happens-before edge).
//
//  3. Bounded memory. Buffers are fixed-capacity rings: overflow drops the
//     OLDEST events (per-thread drop counters are reported in the export).
//     The exporter repairs spans the eviction truncated — an end event
//     whose begin was dropped gets a synthetic begin at the buffer's oldest
//     timestamp — so the emitted JSON always has balanced, properly nested
//     begin/end pairs and monotonic per-track timestamps, which
//     tools/trace_validate enforces.
//
//  4. Crash-safe flush. Faults in this codebase surface as C++ exceptions,
//     so TraceSpan unwinds close open spans, and the recorder can always
//     export a well-formed partial trace after a failed run (the trainer
//     flushes from a scope guard).
//
// Event taxonomy (category / name) is documented in DESIGN.md
// "Observability". Names and categories MUST be string literals (or
// otherwise outlive the recorder): events store the pointers.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace svmobs {

namespace detail {

extern std::atomic<bool> g_trace_enabled;

enum class EventType : std::uint8_t { begin, end, counter, instant, flow_start, flow_finish };

struct TraceEvent {
  const char* name = nullptr;
  const char* category = nullptr;
  double value = 0.0;       ///< counter value, or the flow id (exact <= 2^53)
  std::uint64_t ts_ns = 0;  ///< since the recorder epoch
  EventType type = EventType::instant;
};

void emit(EventType type, const char* name, const char* category, double value) noexcept;

/// Per-thread round sequence counter for TraceRound; resets with the
/// recorder generation so successive traced runs restart at 0.
[[nodiscard]] std::uint64_t next_round_seq() noexcept;

}  // namespace detail

/// True when emission is active (relaxed; emission itself re-checks).
[[nodiscard]] inline bool trace_enabled() noexcept {
  return detail::g_trace_enabled.load(std::memory_order_relaxed);
}

/// Enables tracing. `events_per_thread` bounds each thread's ring buffer
/// (drop-oldest on overflow); the epoch (t=0 of the exported timeline) is
/// set on the transition from disabled to enabled. Safe to call repeatedly.
void trace_enable(std::size_t events_per_thread = 1u << 16);

/// Stops emission. Recorded events remain available for export.
void trace_disable();

/// Drops all recorded events and thread buffers (threads re-register on
/// their next emission). Call between independent traced runs.
void trace_reset();

/// Labels the calling thread's track with an MPI-style rank; the exporter
/// uses it as the Chrome pid/tid so each rank renders as its own process
/// row. Unlabeled threads export under the "driver" track. Cheap no-op when
/// tracing is disabled.
void trace_set_thread_rank(int rank);

// --- emission (all ~ns no-ops while disabled) ------------------------------

inline void trace_begin(const char* name, const char* category) noexcept {
  if (!trace_enabled()) return;
  detail::emit(detail::EventType::begin, name, category, 0.0);
}

inline void trace_end(const char* name, const char* category) noexcept {
  if (!trace_enabled()) return;
  detail::emit(detail::EventType::end, name, category, 0.0);
}

/// One sample on the counter track `name` (per-rank tracks; Perfetto plots
/// the value over time). Used for active-set size, the beta_low - beta_up
/// gap, kernel-cache hit rate and modeled/overlapped network seconds.
inline void trace_counter(const char* name, double value) noexcept {
  if (!trace_enabled()) return;
  detail::emit(detail::EventType::counter, name, "counter", value);
}

/// A zero-duration marker (recovery events: restarts, world shrinks).
inline void trace_instant(const char* name, const char* category) noexcept {
  if (!trace_enabled()) return;
  detail::emit(detail::EventType::instant, name, category, 0.0);
}

// --- causal flow events ----------------------------------------------------
//
// A flow binds two slices on DIFFERENT tracks: the start event is emitted
// inside the producing span (e.g. a sender's isend), the finish inside the
// consuming span (the receiver's recv / collective wait). The exporter maps
// them to legacy Chrome flow phases `ph:"s"` / `ph:"f","bp":"e"` keyed on
// `id`, which Perfetto renders as cross-rank arrows. Flow ids come from
// svmmpi::acquire_flow_id() — process-globally unique, monotone, and <= 2^53
// so storing them in the event's double `value` slot is exact.

inline void trace_flow_start(const char* name, const char* category, std::uint64_t id) noexcept {
  if (!trace_enabled()) return;
  detail::emit(detail::EventType::flow_start, name, category, static_cast<double>(id));
}

inline void trace_flow_finish(const char* name, const char* category, std::uint64_t id) noexcept {
  if (!trace_enabled()) return;
  detail::emit(detail::EventType::flow_finish, name, category, static_cast<double>(id));
}

/// RAII span. `name`/`category` must be string literals.
class TraceSpan {
 public:
  TraceSpan(const char* name, const char* category) noexcept
      : name_(name), category_(category) {
    trace_begin(name_, category_);
  }
  ~TraceSpan() { trace_end(name_, category_); }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  const char* category_;
};

/// RAII marker for one synchronization round. Emits a uniform span named
/// "round" in the given category plus a "round_seq" counter carrying the
/// per-thread sequence number, so traces from the SMO solver, PBM, gradient
/// reconstruction and serving all segment identically for trace_analyze.
/// In SPMD workloads every rank's thread counts rounds in lockstep, so equal
/// sequence numbers across ranks name the same logical round.
class TraceRound {
 public:
  explicit TraceRound(const char* category) noexcept : category_(category) {
    if (!trace_enabled()) return;
    seq_ = detail::next_round_seq();
    trace_begin("round", category_);
    trace_counter("round_seq", static_cast<double>(seq_));
  }
  ~TraceRound() { trace_end("round", category_); }
  TraceRound(const TraceRound&) = delete;
  TraceRound& operator=(const TraceRound&) = delete;

  [[nodiscard]] std::uint64_t seq() const noexcept { return seq_; }

 private:
  const char* category_;
  std::uint64_t seq_ = 0;
};

// --- export ----------------------------------------------------------------

/// Total events dropped to ring-buffer overflow since the last reset.
[[nodiscard]] std::uint64_t trace_dropped_events();

/// Renders everything recorded since the last reset as Chrome trace-event
/// JSON (object form: {"traceEvents":[...]}). Call after the traced threads
/// have joined — concurrent emission during export is a data race.
[[nodiscard]] std::string trace_json();

/// trace_json() to a file; throws std::runtime_error on I/O failure.
void trace_write(const std::string& path);

}  // namespace svmobs
