// Metrics registry: named counters, gauges and histograms with optional
// labels. One registry per owner (a rank's solver, a bench run) — no atomics
// and no locks; instruments are plain fields and handles are stable
// references (std::map nodes never move), so a hot loop binds a Counter&
// once and increments a single machine word.
//
// The solver layer replaces its hand-threaded counter plumbing with a
// registry: DistributedSolver's counters/timers live here, and the legacy
// SolverStats struct is SNAPSHOTTED from the registry at the end of a solve
// (see DistributedSolver::solve), keeping every existing consumer working.
// Run reports (obs/report.hpp) serialize registries to JSON.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace svmobs {

class JsonWriter;

/// Monotonic event count. set() exists solely for checkpoint restore, which
/// rewinds a replayed rank's counters to the restored epoch.
class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept { value_ += delta; }
  void set(std::uint64_t value) noexcept { value_ = value; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-written value, with accumulate/min/max conveniences for timers and
/// watermarks.
class Gauge {
 public:
  void set(double value) noexcept { value_ = value; }
  void add(double delta) noexcept { value_ += delta; }
  void min_with(double value) noexcept { value_ = value < value_ ? value : value_; }
  void max_with(double value) noexcept { value_ = value_ < value ? value : value_; }
  [[nodiscard]] double value() const noexcept { return value_; }

 private:
  double value_ = 0.0;
};

/// Fixed-bound bucket histogram (+inf overflow bucket implied); observe()
/// is a linear scan over the (few) bounds.
class Histogram {
 public:
  Histogram() = default;
  explicit Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)), counts_(bounds_.size() + 1, 0) {}

  void observe(double value) noexcept {
    std::size_t b = 0;
    while (b < bounds_.size() && value > bounds_[b]) ++b;
    ++counts_[b];
    sum_ += value;
    ++count_;
  }

  [[nodiscard]] const std::vector<double>& bounds() const noexcept { return bounds_; }
  [[nodiscard]] const std::vector<std::uint64_t>& counts() const noexcept { return counts_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }

  /// Bucket-wise merge; bounds must match (or this histogram be empty).
  void merge(const Histogram& other);

  /// Estimates the p-th percentile (p in [0,100]) by linear interpolation
  /// within the bucket holding the target rank. The overflow bucket has no
  /// upper edge, so percentiles landing there report the highest finite
  /// bound (a known underestimate — size the bounds to cover the tail).
  /// Returns 0 for an empty histogram.
  [[nodiscard]] double percentile(double p) const noexcept;

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_{0};
  double sum_ = 0.0;
  std::uint64_t count_ = 0;
};

/// Label set, e.g. {{"exit","converged"}}. Kept sorted for a canonical key.
using Labels = std::vector<std::pair<std::string, std::string>>;

class MetricsRegistry {
 public:
  /// Handles are stable for the registry's lifetime (map nodes don't move);
  /// bind once, increment forever.
  [[nodiscard]] Counter& counter(const std::string& name, const Labels& labels = {});
  [[nodiscard]] Gauge& gauge(const std::string& name, const Labels& labels = {});
  /// `bounds` applies on first creation only.
  [[nodiscard]] Histogram& histogram(const std::string& name, std::vector<double> bounds,
                                     const Labels& labels = {});

  /// Read-only views over everything registered, keyed by the canonical
  /// "name{k=v,...}" string.
  [[nodiscard]] const std::map<std::string, Counter>& counters() const noexcept {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, Gauge>& gauges() const noexcept { return gauges_; }
  [[nodiscard]] const std::map<std::string, Histogram>& histograms() const noexcept {
    return histograms_;
  }

  [[nodiscard]] bool empty() const noexcept {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  /// Cross-rank aggregation: counters sum, gauges take the max (wall times —
  /// the slowest rank paces the run), histograms merge bucket-wise.
  void aggregate_from(const MetricsRegistry& rank);

  /// Serializes as {"counters":{...},"gauges":{...},"histograms":{...}}.
  void to_json(JsonWriter& w) const;
  [[nodiscard]] std::string json() const;

  [[nodiscard]] static std::string canonical_key(const std::string& name, const Labels& labels);

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace svmobs
