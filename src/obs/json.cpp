#include "obs/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace svmobs {

// --- writer ----------------------------------------------------------------

void JsonWriter::comma() {
  if (first_.empty()) return;
  if (first_.back())
    first_.back() = false;
  else
    out_ += ',';
}

void JsonWriter::begin_object() {
  comma();
  out_ += '{';
  first_.push_back(true);
}

void JsonWriter::end_object() {
  out_ += '}';
  first_.pop_back();
}

void JsonWriter::begin_array() {
  comma();
  out_ += '[';
  first_.push_back(true);
}

void JsonWriter::end_array() {
  out_ += ']';
  first_.pop_back();
}

void JsonWriter::key(std::string_view name) {
  comma();
  out_ += '"';
  escape_into(out_, name);
  out_ += "\":";
  // The upcoming value must not emit a comma of its own.
  first_.push_back(true);
  // end of value is implicit: pop happens in value()/begin_*; to keep the
  // stack balanced we instead mark this level consumed immediately.
  first_.pop_back();
  if (!first_.empty()) first_.back() = true;
}

void JsonWriter::value(std::string_view text) {
  comma();
  out_ += '"';
  escape_into(out_, text);
  out_ += '"';
}

void JsonWriter::value(double number) {
  comma();
  if (!std::isfinite(number)) {  // JSON has no Inf/NaN; clamp to null
    out_ += "null";
    return;
  }
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", number);
  out_ += buffer;
}

void JsonWriter::value(std::uint64_t number) {
  comma();
  out_ += std::to_string(number);
}

void JsonWriter::value(std::int64_t number) {
  comma();
  out_ += std::to_string(number);
}

void JsonWriter::value(bool flag) {
  comma();
  out_ += flag ? "true" : "false";
}

void JsonWriter::null() {
  comma();
  out_ += "null";
}

void JsonWriter::raw(std::string_view json) {
  comma();
  out_ += json;
}

void JsonWriter::escape_into(std::string& out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
}

// --- parser ----------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = parse_value();
    skip_ws();
    if (at_ != text_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw std::runtime_error("json parse error at byte " + std::to_string(at_) + ": " + message);
  }

  void skip_ws() {
    while (at_ < text_.size() && (text_[at_] == ' ' || text_[at_] == '\t' ||
                                  text_[at_] == '\n' || text_[at_] == '\r'))
      ++at_;
  }

  char peek() {
    if (at_ >= text_.size()) fail("unexpected end of input");
    return text_[at_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++at_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(at_, lit.size()) != lit) return false;
    at_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      JsonValue v;
      v.type = JsonType::string;
      v.string = parse_string();
      return v;
    }
    if (c == 't' || c == 'f') {
      JsonValue v;
      v.type = JsonType::boolean;
      if (consume_literal("true"))
        v.boolean = true;
      else if (consume_literal("false"))
        v.boolean = false;
      else
        fail("bad literal");
      return v;
    }
    if (c == 'n') {
      if (!consume_literal("null")) fail("bad literal");
      return JsonValue{};
    }
    return parse_number();
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.type = JsonType::object;
    skip_ws();
    if (peek() == '}') {
      ++at_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string k = parse_string();
      skip_ws();
      expect(':');
      v.object[std::move(k)] = parse_value();
      skip_ws();
      if (peek() == ',') {
        ++at_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.type = JsonType::array;
    skip_ws();
    if (peek() == ']') {
      ++at_;
      return v;
    }
    for (;;) {
      v.array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++at_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (at_ >= text_.size()) fail("unterminated string");
      const char c = text_[at_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (at_ >= text_.size()) fail("unterminated escape");
      const char e = text_[at_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (at_ + 4 > text_.size()) fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[at_++];
            code <<= 4;
            if (h >= '0' && h <= '9')
              code += h - '0';
            else if (h >= 'a' && h <= 'f')
              code += 10 + h - 'a';
            else if (h >= 'A' && h <= 'F')
              code += 10 + h - 'A';
            else
              fail("bad \\u escape digit");
          }
          // Minimal UTF-8 encoding; surrogate pairs not needed for our data.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = at_;
    if (peek() == '-') ++at_;
    while (at_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[at_])) || text_[at_] == '.' ||
            text_[at_] == 'e' || text_[at_] == 'E' || text_[at_] == '+' || text_[at_] == '-'))
      ++at_;
    if (at_ == start) fail("expected a value");
    JsonValue v;
    v.type = JsonType::number;
    const auto [ptr, ec] =
        std::from_chars(text_.data() + start, text_.data() + at_, v.number);
    if (ec != std::errc{} || ptr != text_.data() + at_) fail("malformed number");
    return v;
  }

  std::string_view text_;
  std::size_t at_ = 0;
};

}  // namespace

JsonValue parse_json(std::string_view text) { return Parser(text).parse(); }

}  // namespace svmobs
