#include "obs/metrics.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/json.hpp"

namespace svmobs {

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0 && other.bounds_.empty()) return;
  if (bounds_.empty() && count_ == 0) {
    *this = other;
    return;
  }
  if (bounds_ != other.bounds_)
    throw std::runtime_error("svmobs: merging histograms with different bucket bounds");
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  sum_ += other.sum_;
  count_ += other.count_;
}

double Histogram::percentile(double p) const noexcept {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const double target = p / 100.0 * static_cast<double>(count_);
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    if (counts_[b] == 0) continue;
    const double before = static_cast<double>(cumulative);
    cumulative += counts_[b];
    if (static_cast<double>(cumulative) < target) continue;
    if (b >= bounds_.size())  // overflow bucket: no upper edge
      return bounds_.empty() ? 0.0 : bounds_.back();
    const double lower = b == 0 ? std::min(0.0, bounds_[0]) : bounds_[b - 1];
    const double upper = bounds_[b];
    const double fraction =
        std::clamp((target - before) / static_cast<double>(counts_[b]), 0.0, 1.0);
    return lower + fraction * (upper - lower);
  }
  return bounds_.empty() ? 0.0 : bounds_.back();
}

std::string MetricsRegistry::canonical_key(const std::string& name, const Labels& labels) {
  if (labels.empty()) return name;
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string key = name;
  key += '{';
  bool first = true;
  for (const auto& [k, v] : sorted) {
    if (!first) key += ',';
    first = false;
    key += k;
    key += '=';
    key += v;
  }
  key += '}';
  return key;
}

Counter& MetricsRegistry::counter(const std::string& name, const Labels& labels) {
  return counters_[canonical_key(name, labels)];
}

Gauge& MetricsRegistry::gauge(const std::string& name, const Labels& labels) {
  return gauges_[canonical_key(name, labels)];
}

Histogram& MetricsRegistry::histogram(const std::string& name, std::vector<double> bounds,
                                      const Labels& labels) {
  auto [it, inserted] = histograms_.try_emplace(canonical_key(name, labels));
  if (inserted) it->second = Histogram(std::move(bounds));
  return it->second;
}

void MetricsRegistry::aggregate_from(const MetricsRegistry& rank) {
  for (const auto& [key, c] : rank.counters_) counters_[key].add(c.value());
  for (const auto& [key, g] : rank.gauges_) {
    auto [it, inserted] = gauges_.try_emplace(key);
    if (inserted)
      it->second.set(g.value());
    else
      it->second.max_with(g.value());
  }
  for (const auto& [key, h] : rank.histograms_) histograms_[key].merge(h);
}

void MetricsRegistry::to_json(JsonWriter& w) const {
  w.begin_object();
  w.key("counters");
  w.begin_object();
  for (const auto& [key, c] : counters_) {
    w.key(key);
    w.value(c.value());
  }
  w.end_object();
  w.key("gauges");
  w.begin_object();
  for (const auto& [key, g] : gauges_) {
    w.key(key);
    w.value(g.value());
  }
  w.end_object();
  w.key("histograms");
  w.begin_object();
  for (const auto& [key, h] : histograms_) {
    w.key(key);
    w.begin_object();
    w.key("bounds");
    w.begin_array();
    for (const double b : h.bounds()) w.value(b);
    w.end_array();
    w.key("counts");
    w.begin_array();
    for (const std::uint64_t c : h.counts()) w.value(c);
    w.end_array();
    w.key("sum");
    w.value(h.sum());
    w.key("count");
    w.value(h.count());
    w.key("p50");
    w.value(h.percentile(50.0));
    w.key("p95");
    w.value(h.percentile(95.0));
    w.key("p99");
    w.value(h.percentile(99.0));
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

std::string MetricsRegistry::json() const {
  JsonWriter w;
  to_json(w);
  return w.str();
}

}  // namespace svmobs
