#include "obs/analyze.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.hpp"
#include "util/table.hpp"

namespace svmobs {

namespace {

constexpr double kMicro = 1e-6;  ///< trace ts are microseconds

const JsonValue* get(const JsonValue& object, const char* key) {
  return object.is(JsonType::object) ? object.find(key) : nullptr;
}

/// A closed span interval on one rank's track (trace microseconds).
struct Interval {
  double begin = 0.0;
  double end = 0.0;
};

/// One "round" span instance with its bound sequence number.
struct RoundInstance {
  double begin = 0.0;
  double end = 0.0;
  std::string category;
  std::uint64_t seq = 0;
  bool has_seq = false;
};

/// A flow event (start or finish) observed on a rank's track.
struct FlowPoint {
  double ts = 0.0;
  std::int64_t id = 0;
};

/// All events sharing one flow id: the happens-before building block.
struct FlowGroup {
  std::string name;  ///< "msg" (pt2pt) or "collective_round"
  int start_rank = -1;
  double start_ts = 0.0;
  bool has_start = false;
  std::vector<std::pair<int, double>> arrivals;  ///< (rank, ts), start included
};

/// True for spans whose duration is time spent in communication (blocking
/// waits and rendezvous). Collectives are wait-shaped by category; pt2pt and
/// ring waits by name.
bool is_wait_span(const std::string& name, const std::string& category) {
  if (category == "collective") return true;
  if (category == "net") return name == "recv" || name == "recv_deadline";
  return name == "ring_wait" || name == "ring_exchange" || name == "pbm_ring_wait";
}

/// Ready time of a flow group from a given rank's perspective: the moment
/// the blocking peer unblocked it, and which peer that was.
struct ReadyInfo {
  double ts = 0.0;
  int peer = -1;
  bool valid = false;
};

ReadyInfo ready_of(const FlowGroup& group, int rank) {
  ReadyInfo info;
  if (group.name == "msg") {
    // pt2pt: the receiver was unblocked when the sender pushed the message.
    if (!group.has_start || group.start_rank == rank) return info;
    info.ts = group.start_ts;
    info.peer = group.start_rank;
    info.valid = true;
    return info;
  }
  // Collective: the round completes at the LAST member's arrival; the member
  // who arrives last is the gate. A rank that is itself the last arriver was
  // not blocked on anyone.
  for (const auto& [r, ts] : group.arrivals) {
    if (!info.valid || ts > info.ts) {
      info.ts = ts;
      info.peer = r;
      info.valid = true;
    }
  }
  if (info.valid && info.peer == rank) info.valid = false;
  return info;
}

struct RankEvents {
  std::vector<RoundInstance> rounds;
  std::vector<Interval> waits;      ///< all wait spans, later de-nested
  std::vector<FlowPoint> flows;     ///< sorted by ts after collection
};

}  // namespace

TraceAnalysis analyze_trace(const std::string& json) {
  TraceAnalysis out;
  JsonValue root;
  try {
    root = parse_json(json);
  } catch (const std::exception& e) {
    out.errors.emplace_back(e.what());
    return out;
  }
  const JsonValue* other = get(root, "otherData");
  const JsonValue* schema = other != nullptr ? get(*other, "schema") : nullptr;
  if (schema == nullptr || !schema->is(JsonType::string) || schema->string != "svmobs.trace.v1") {
    out.errors.emplace_back("otherData.schema is not \"svmobs.trace.v1\"");
    return out;
  }
  const JsonValue* events = get(root, "traceEvents");
  if (events == nullptr || !events->is(JsonType::array)) {
    out.errors.emplace_back("traceEvents missing or not an array");
    return out;
  }

  // --- pass 1: rebuild spans, rounds and flow groups per rank -------------
  struct OpenSpan {
    std::string name;
    std::string category;
    double ts = 0.0;
    std::uint64_t seq = 0;
    bool has_seq = false;  ///< for "round" spans awaiting their counter
  };
  std::map<int, RankEvents> per_rank;
  std::map<int, std::vector<OpenSpan>> open_by_rank;
  std::map<std::int64_t, FlowGroup> flow_groups;

  for (const JsonValue& e : events->array) {
    const JsonValue* ph = get(e, "ph");
    const JsonValue* name = get(e, "name");
    const JsonValue* pid = get(e, "pid");
    const JsonValue* ts = get(e, "ts");
    if (ph == nullptr || !ph->is(JsonType::string) || name == nullptr ||
        !name->is(JsonType::string) || pid == nullptr || !pid->is(JsonType::number))
      continue;  // structural problems are trace_validate's department
    if (ph->string == "M") continue;
    if (ts == nullptr || !ts->is(JsonType::number)) continue;
    const int rank = static_cast<int>(pid->number);

    if (ph->string == "B") {
      open_by_rank[rank].push_back(OpenSpan{name->string, "", ts->number, 0, false});
      const JsonValue* cat = get(e, "cat");
      if (cat != nullptr && cat->is(JsonType::string)) open_by_rank[rank].back().category =
          cat->string;
    } else if (ph->string == "E") {
      auto& open = open_by_rank[rank];
      if (open.empty() || open.back().name != name->string) continue;  // malformed; skip
      const OpenSpan span = open.back();
      open.pop_back();
      RankEvents& re = per_rank[rank];
      if (span.name == "round") {
        RoundInstance r;
        r.begin = span.ts;
        r.end = ts->number;
        r.category = span.category;
        r.seq = span.seq;
        r.has_seq = span.has_seq;
        re.rounds.push_back(std::move(r));
      } else if (is_wait_span(span.name, span.category)) {
        re.waits.push_back(Interval{span.ts, ts->number});
      }
    } else if (ph->string == "C" && name->string == "round_seq") {
      // Binds to the innermost open "round" span still awaiting its number.
      auto& open = open_by_rank[rank];
      const JsonValue* args = get(e, "args");
      const JsonValue* value = args != nullptr ? get(*args, "value") : nullptr;
      if (value == nullptr || !value->is(JsonType::number)) continue;
      for (auto it = open.rbegin(); it != open.rend(); ++it) {
        if (it->name == "round" && !it->has_seq) {
          it->seq = static_cast<std::uint64_t>(value->number);
          it->has_seq = true;
          break;
        }
      }
    } else if (ph->string == "s" || ph->string == "f") {
      const JsonValue* id = get(e, "id");
      if (id == nullptr || !id->is(JsonType::number)) continue;
      const auto flow_id = static_cast<std::int64_t>(id->number);
      FlowGroup& group = flow_groups[flow_id];
      if (group.name.empty()) group.name = name->string;
      group.arrivals.emplace_back(rank, ts->number);
      if (ph->string == "s") {
        group.has_start = true;
        group.start_rank = rank;
        group.start_ts = ts->number;
      }
      per_rank[rank].flows.push_back(FlowPoint{ts->number, flow_id});
    }
  }
  for (auto& [id, group] : flow_groups)
    if (group.arrivals.size() > 1 || group.name == "collective_round") ++out.flow_edges;

  // --- pass 2: group round instances by sequence number -------------------
  // The per-thread round counter is shared by every TraceRound site, so in an
  // SPMD trace equal seq => the same logical round on every rank. A rank
  // restarted mid-trace restarts its numbering; keep the LAST instance per
  // (seq, rank) so a clean trailing generation analyzes correctly.
  struct RoundGroup {
    std::string category;
    std::map<int, RoundInstance> by_rank;
  };
  std::map<std::uint64_t, RoundGroup> rounds;
  for (auto& [rank, re] : per_rank) {
    std::sort(re.waits.begin(), re.waits.end(),
              [](const Interval& a, const Interval& b) {
                return a.begin != b.begin ? a.begin < b.begin : a.end > b.end;
              });
    std::sort(re.flows.begin(), re.flows.end(),
              [](const FlowPoint& a, const FlowPoint& b) { return a.ts < b.ts; });
    for (RoundInstance& r : re.rounds) {
      if (!r.has_seq) continue;  // counter evicted by ring overflow; skip
      RoundGroup& g = rounds[r.seq];
      if (g.category.empty()) g.category = r.category;
      g.by_rank[rank] = r;  // last instance wins
    }
  }

  // --- pass 3: per-round attribution --------------------------------------
  std::map<int, double> blocked_on_total;
  for (auto& [seq, group] : rounds) {
    RoundAnalysis round;
    round.seq = seq;
    round.category = group.category;
    double global_begin = 0.0;
    double global_end = 0.0;
    bool first = true;
    for (const auto& [rank, inst] : group.by_rank) {
      global_begin = first ? inst.begin : std::min(global_begin, inst.begin);
      global_end = first ? inst.end : std::max(global_end, inst.end);
      first = false;
    }
    const double round_wall = std::max(0.0, global_end - global_begin);
    round.begin_s = global_begin * kMicro;
    round.wall_s = round_wall * kMicro;

    std::map<int, double> blocked_on_this_round;
    for (const auto& [rank, inst] : group.by_rank) {
      const RankEvents& re = per_rank[rank];
      RankAttribution a;
      a.rank = rank;
      const double wall = std::max(0.0, inst.end - inst.begin);
      a.wall_s = wall * kMicro;
      a.imbalance_s = (round_wall - wall) * kMicro;

      // Maximal (outermost) wait intervals inside this round span: waits are
      // properly nested per track, so after the (begin asc, end desc) sort an
      // interval starting before the previous maximal end is contained in it.
      double wait_total = 0.0;
      double blocked_total = 0.0;
      std::map<int, double> blocked_by_peer;
      double last_end = -1.0;
      for (const Interval& w : re.waits) {
        if (w.end <= inst.begin || w.begin >= inst.end) continue;
        if (w.begin < last_end) continue;  // nested inside the previous wait
        const double b = std::max(w.begin, inst.begin);
        const double e = std::min(w.end, inst.end);
        last_end = w.end;
        if (e <= b) continue;
        wait_total += e - b;

        // The blocking peer: the flow event inside this wait whose group
        // became ready LAST. Everything before that ready time is blocked-on
        // -peer; the rest of the wait is transfer/rendezvous mechanics.
        ReadyInfo latest;
        const auto lo = std::lower_bound(
            re.flows.begin(), re.flows.end(), b,
            [](const FlowPoint& f, double t) { return f.ts < t; });
        for (auto it = lo; it != re.flows.end() && it->ts <= e; ++it) {
          const auto git = flow_groups.find(it->id);
          if (git == flow_groups.end()) continue;
          const ReadyInfo info = ready_of(git->second, rank);
          if (info.valid && (!latest.valid || info.ts > latest.ts)) latest = info;
        }
        if (latest.valid) {
          const double blocked = std::clamp(latest.ts - b, 0.0, e - b);
          if (blocked > 0.0) {
            blocked_total += blocked;
            blocked_by_peer[latest.peer] += blocked;
          }
        }
      }
      a.blocked_s = blocked_total * kMicro;
      a.comm_s = (wait_total - blocked_total) * kMicro;
      a.compute_s = (wall - wait_total) * kMicro;
      for (const auto& [peer, blocked] : blocked_by_peer) {
        blocked_on_this_round[peer] += blocked;
        blocked_on_total[peer] += blocked;
        if (a.blocked_on < 0 || blocked > blocked_by_peer[a.blocked_on]) a.blocked_on = peer;
      }
      round.ranks.push_back(a);
    }

    // Per-round means: the per-rank identity compute+comm+blocked+imbalance
    // == round_wall survives averaging.
    const double n = static_cast<double>(round.ranks.size());
    for (const RankAttribution& a : round.ranks) {
      round.compute_s += a.compute_s / n;
      round.comm_s += a.comm_s / n;
      round.blocked_s += a.blocked_s / n;
      round.imbalance_s += a.imbalance_s / n;
    }
    const double attributed =
        round.compute_s + round.comm_s + round.blocked_s + round.imbalance_s;
    round.closure = round.wall_s > 0.0 ? attributed / round.wall_s : 1.0;
    for (const auto& [peer, blocked] : blocked_on_this_round)
      if (round.straggler < 0 || blocked > blocked_on_this_round[round.straggler])
        round.straggler = peer;

    // Critical path: walk backward from the latest-finishing participant,
    // jumping to the blocking peer at each blocked wait.
    int cur_rank = -1;
    double cur_ts = 0.0;
    for (const auto& [rank, inst] : group.by_rank)
      if (cur_rank < 0 || inst.end > cur_ts) {
        cur_rank = rank;
        cur_ts = inst.end;
      }
    constexpr int kMaxHops = 128;
    for (int hop = 0; cur_rank >= 0 && hop < kMaxHops; ++hop) {
      const auto inst_it = group.by_rank.find(cur_rank);
      if (inst_it == group.by_rank.end()) break;
      const RoundInstance& inst = inst_it->second;
      const RankEvents& re = per_rank[cur_rank];
      // Latest blocked wait ending at or before cur_ts on this rank.
      ReadyInfo jump;
      double segment_start = inst.begin;
      for (const Interval& w : re.waits) {
        if (w.begin < inst.begin || w.begin >= cur_ts) continue;
        const double e = std::min({w.end, inst.end, cur_ts});
        if (e <= w.begin) continue;
        ReadyInfo latest;
        const auto lo = std::lower_bound(
            re.flows.begin(), re.flows.end(), w.begin,
            [](const FlowPoint& f, double t) { return f.ts < t; });
        for (auto it = lo; it != re.flows.end() && it->ts <= e; ++it) {
          const auto git = flow_groups.find(it->id);
          if (git == flow_groups.end()) continue;
          const ReadyInfo info = ready_of(git->second, cur_rank);
          if (info.valid && (!latest.valid || info.ts > latest.ts)) latest = info;
        }
        if (latest.valid && latest.ts > w.begin && latest.ts < cur_ts &&
            (!jump.valid || latest.ts > jump.ts)) {
          jump = latest;
          segment_start = latest.ts;
        }
      }
      round.critical_path.push_back(
          CriticalSegment{cur_rank, segment_start * kMicro, cur_ts * kMicro});
      if (!jump.valid) break;
      cur_rank = jump.peer;
      cur_ts = jump.ts;
    }
    std::reverse(round.critical_path.begin(), round.critical_path.end());

    out.total_wall_s += round.wall_s;
    out.total_compute_s += round.compute_s;
    out.total_comm_s += round.comm_s;
    out.total_blocked_s += round.blocked_s;
    out.total_imbalance_s += round.imbalance_s;
    out.rounds.push_back(std::move(round));
  }

  for (const auto& [rank, blocked] : blocked_on_total)
    out.stragglers.push_back(StragglerEntry{rank, blocked * kMicro});
  std::sort(out.stragglers.begin(), out.stragglers.end(),
            [](const StragglerEntry& a, const StragglerEntry& b) {
              return a.blocked_on_s != b.blocked_on_s ? a.blocked_on_s > b.blocked_on_s
                                                      : a.rank < b.rank;
            });
  return out;
}

std::string analysis_json(const TraceAnalysis& analysis) {
  JsonWriter w;
  w.begin_object();
  w.key("schema");
  w.value(std::string_view("svmobs.analysis.v1"));
  w.key("rounds");
  w.begin_array();
  for (const RoundAnalysis& round : analysis.rounds) {
    w.begin_object();
    w.key("seq");
    w.value(static_cast<std::uint64_t>(round.seq));
    w.key("category");
    w.value(std::string_view(round.category));
    w.key("begin_s");
    w.value(round.begin_s);
    w.key("wall_s");
    w.value(round.wall_s);
    w.key("compute_s");
    w.value(round.compute_s);
    w.key("comm_s");
    w.value(round.comm_s);
    w.key("blocked_s");
    w.value(round.blocked_s);
    w.key("imbalance_s");
    w.value(round.imbalance_s);
    w.key("closure");
    w.value(round.closure);
    w.key("straggler");
    w.value(round.straggler);
    w.key("ranks");
    w.begin_array();
    for (const RankAttribution& a : round.ranks) {
      w.begin_object();
      w.key("rank");
      w.value(a.rank);
      w.key("wall_s");
      w.value(a.wall_s);
      w.key("compute_s");
      w.value(a.compute_s);
      w.key("comm_s");
      w.value(a.comm_s);
      w.key("blocked_s");
      w.value(a.blocked_s);
      w.key("imbalance_s");
      w.value(a.imbalance_s);
      w.key("blocked_on");
      w.value(a.blocked_on);
      w.end_object();
    }
    w.end_array();
    w.key("critical_path");
    w.begin_array();
    for (const CriticalSegment& seg : round.critical_path) {
      w.begin_object();
      w.key("rank");
      w.value(seg.rank);
      w.key("from_s");
      w.value(seg.from_s);
      w.key("to_s");
      w.value(seg.to_s);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.key("stragglers");
  w.begin_array();
  for (const StragglerEntry& s : analysis.stragglers) {
    w.begin_object();
    w.key("rank");
    w.value(s.rank);
    w.key("blocked_on_s");
    w.value(s.blocked_on_s);
    w.end_object();
  }
  w.end_array();
  w.key("totals");
  w.begin_object();
  w.key("wall_s");
  w.value(analysis.total_wall_s);
  w.key("compute_s");
  w.value(analysis.total_compute_s);
  w.key("comm_s");
  w.value(analysis.total_comm_s);
  w.key("blocked_s");
  w.value(analysis.total_blocked_s);
  w.key("imbalance_s");
  w.value(analysis.total_imbalance_s);
  w.key("compute_fraction");
  w.value(analysis.compute_fraction());
  w.key("flow_edges");
  w.value(static_cast<std::uint64_t>(analysis.flow_edges));
  w.end_object();
  w.end_object();
  return w.str();
}

std::string analysis_table(const TraceAnalysis& analysis) {
  std::string out;
  svmutil::TextTable table({"round", "cat", "ranks", "wall_ms", "compute_ms", "comm_ms",
                            "blocked_ms", "imbal_ms", "closure", "straggler"});
  constexpr std::size_t kMaxRows = 40;
  for (std::size_t i = 0; i < analysis.rounds.size() && i < kMaxRows; ++i) {
    const RoundAnalysis& r = analysis.rounds[i];
    table.add_row({svmutil::TextTable::integer(static_cast<long long>(r.seq)), r.category,
                   svmutil::TextTable::integer(static_cast<long long>(r.ranks.size())),
                   svmutil::TextTable::num(r.wall_s * 1e3, 3),
                   svmutil::TextTable::num(r.compute_s * 1e3, 3),
                   svmutil::TextTable::num(r.comm_s * 1e3, 3),
                   svmutil::TextTable::num(r.blocked_s * 1e3, 3),
                   svmutil::TextTable::num(r.imbalance_s * 1e3, 3),
                   svmutil::TextTable::num(r.closure, 3),
                   r.straggler >= 0 ? svmutil::TextTable::integer(r.straggler)
                                    : std::string("-")});
  }
  out += table.str();
  if (analysis.rounds.size() > kMaxRows)
    out += "  ... " + std::to_string(analysis.rounds.size() - kMaxRows) + " more round(s)\n";
  if (!analysis.stragglers.empty()) {
    out += "\nstragglers (by total blocked-on-them time):\n";
    svmutil::TextTable stragglers({"rank", "blocked_on_ms"});
    for (const StragglerEntry& s : analysis.stragglers)
      stragglers.add_row({svmutil::TextTable::integer(s.rank),
                          svmutil::TextTable::num(s.blocked_on_s * 1e3, 3)});
    out += stragglers.str();
  }
  return out;
}

}  // namespace svmobs
