// Machine-readable run reports: one JSON document per run (or per batch of
// runs, for benches) containing per-rank metric registries plus a
// cross-rank aggregate. Written next to the trace when TrainOptions /
// --metrics-out asks for it; scripts/check.sh --obs validates the schema.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace svmobs {

/// One logical run: a training solve, a bench configuration, a CV fold.
struct RunReport {
  std::string name;
  /// Free-form run descriptors ("ranks" -> "4", "kernel" -> "gaussian", ...).
  std::vector<std::pair<std::string, std::string>> info;
  /// Per-rank registries, index == rank. May be empty for single-process runs.
  std::vector<MetricsRegistry> ranks;
  /// Cross-rank aggregate (counters summed, gauges maxed). Fill directly or
  /// via finalize_aggregate().
  MetricsRegistry aggregate;

  /// Rebuilds `aggregate` from `ranks` (no-op if `ranks` is empty).
  void finalize_aggregate();
};

/// Renders {"schema":"svmobs.run_report.v1","runs":[...]} .
[[nodiscard]] std::string reports_json(const std::vector<RunReport>& runs);

/// reports_json() to a file; throws std::runtime_error on I/O failure.
void write_reports(const std::string& path, const std::vector<RunReport>& runs);

}  // namespace svmobs
