#include "obs/report.hpp"

#include <fstream>
#include <stdexcept>

#include "obs/json.hpp"

namespace svmobs {

void RunReport::finalize_aggregate() {
  if (ranks.empty()) return;
  aggregate = MetricsRegistry();
  for (const MetricsRegistry& rank : ranks) aggregate.aggregate_from(rank);
}

std::string reports_json(const std::vector<RunReport>& runs) {
  JsonWriter w;
  w.begin_object();
  w.key("schema");
  w.value(std::string_view("svmobs.run_report.v1"));
  w.key("runs");
  w.begin_array();
  for (const RunReport& run : runs) {
    w.begin_object();
    w.key("name");
    w.value(std::string_view(run.name));
    w.key("info");
    w.begin_object();
    for (const auto& [k, v] : run.info) {
      w.key(k);
      w.value(std::string_view(v));
    }
    w.end_object();
    w.key("ranks");
    w.begin_array();
    for (std::size_t rank = 0; rank < run.ranks.size(); ++rank) {
      w.begin_object();
      w.key("rank");
      w.value(static_cast<std::uint64_t>(rank));
      w.key("metrics");
      run.ranks[rank].to_json(w);
      w.end_object();
    }
    w.end_array();
    w.key("aggregate");
    run.aggregate.to_json(w);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

void write_reports(const std::string& path, const std::vector<RunReport>& runs) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("svmobs: cannot open metrics output file " + path);
  const std::string json = reports_json(runs);
  out.write(json.data(), static_cast<std::streamsize>(json.size()));
  if (!out) throw std::runtime_error("svmobs: failed writing metrics to " + path);
}

}  // namespace svmobs
