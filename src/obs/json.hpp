// Minimal JSON support for the observability subsystem: a streaming writer
// (used by the trace exporter, the metrics registry and the run-report
// emitter) and a small recursive-descent parser (used by trace/metrics
// validation — tools/trace_validate and the obs tests). Deliberately tiny:
// no external dependency, no allocation tricks, just enough JSON.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace svmobs {

// --- writer ----------------------------------------------------------------

/// Streaming JSON writer with automatic comma placement. Usage:
///   JsonWriter w;
///   w.begin_object();
///   w.key("name"); w.value("solve");
///   w.key("ts");   w.value(12.5);
///   w.end_object();
///   std::string out = w.str();
class JsonWriter {
 public:
  void begin_object();
  void end_object();
  void begin_array();
  void end_array();
  /// Writes an object key (must be inside an object, before its value).
  void key(std::string_view name);
  void value(std::string_view text);
  void value(const char* text) { value(std::string_view(text)); }
  void value(double number);
  void value(std::uint64_t number);
  void value(std::int64_t number);
  void value(int number) { value(static_cast<std::int64_t>(number)); }
  void value(bool flag);
  void null();
  /// Splices pre-rendered JSON (trusted) as one value.
  void raw(std::string_view json);

  [[nodiscard]] const std::string& str() const noexcept { return out_; }

  static void escape_into(std::string& out, std::string_view text);

 private:
  void comma();
  std::string out_;
  std::vector<bool> first_;  ///< per nesting level: no element written yet
};

// --- parsed value ----------------------------------------------------------

enum class JsonType : std::uint8_t { null, boolean, number, string, array, object };

/// Owned JSON tree. Object keys keep insertion order is NOT guaranteed
/// (std::map); validation never depends on order.
struct JsonValue {
  JsonType type = JsonType::null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  [[nodiscard]] bool is(JsonType t) const noexcept { return type == t; }
  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(const std::string& k) const {
    if (type != JsonType::object) return nullptr;
    const auto it = object.find(k);
    return it == object.end() ? nullptr : &it->second;
  }
};

/// Parses `text`; throws std::runtime_error with a byte offset on malformed
/// input (trailing non-whitespace is an error).
[[nodiscard]] JsonValue parse_json(std::string_view text);

}  // namespace svmobs
