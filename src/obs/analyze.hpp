// Causal trace analysis: rebuilds the cross-rank happens-before DAG from the
// flow events svmobs/mpisim emit (ph "s"/"f", see trace.hpp), segments the
// timeline on the uniform "round" spans (TraceRound), and attributes each
// round's wall time to compute / comm / blocked-on-peer / imbalance.
//
// Attribution model, per round and per participating rank:
//
//   round_wall = max(round end over ranks) - min(round begin over ranks)
//   wait       = union of the rank's wait spans inside its round span
//                (recv / recv_deadline / every collective / ring waits)
//   blocked    = the part of each wait interval spent before the blocking
//                peer was ready. For a pt2pt flow, ready = the sender's
//                flow-start timestamp; for a collective round, ready = the
//                LAST member's arrival (each member's deposit emits a flow
//                event at its arrival time). Clamped to the wait interval,
//                attributed to that peer.
//   comm       = wait - blocked   (transfer/rendezvous mechanics)
//   compute    = rank's own round span - wait
//   imbalance  = round_wall - rank's own round span
//
// compute + comm + blocked + imbalance == round_wall holds exactly by
// construction per rank; the reported per-round numbers are means over the
// participating ranks, so the identity survives aggregation. The critical
// path walks backward from the latest-finishing rank, jumping to the
// blocking peer at each blocked wait. Stragglers are ranked by total
// blocked-on-them time across the whole trace.
//
// Shares the JSON layer (obs/json.hpp) with src/obs/validate; consumed by
// tools/trace_analyze and the obs tests.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace svmobs {

/// One rank's share of one round.
struct RankAttribution {
  int rank = -1;
  double wall_s = 0.0;       ///< this rank's own round-span duration
  double compute_s = 0.0;
  double comm_s = 0.0;
  double blocked_s = 0.0;
  double imbalance_s = 0.0;  ///< round_wall - wall_s (idle before/after)
  int blocked_on = -1;       ///< peer charged with most blocked time, -1 none
};

/// One hop of the critical path: [from_s, to_s] on `rank`'s track.
struct CriticalSegment {
  int rank = -1;
  double from_s = 0.0;
  double to_s = 0.0;
};

struct RoundAnalysis {
  std::uint64_t seq = 0;
  std::string category;      ///< TraceRound category ("pbm", "solver", ...)
  double begin_s = 0.0;      ///< earliest participant begin (trace seconds)
  double wall_s = 0.0;       ///< round_wall (see file comment)
  double compute_s = 0.0;    ///< mean over participating ranks
  double comm_s = 0.0;
  double blocked_s = 0.0;
  double imbalance_s = 0.0;
  double closure = 1.0;      ///< (compute+comm+blocked+imbalance)/wall
  int straggler = -1;        ///< rank charged with most blocked time, -1 none
  std::vector<RankAttribution> ranks;          ///< ascending by rank
  std::vector<CriticalSegment> critical_path;  ///< chronological order
};

struct StragglerEntry {
  int rank = -1;
  double blocked_on_s = 0.0;  ///< total time other ranks spent blocked on it
};

struct TraceAnalysis {
  std::vector<std::string> errors;  ///< non-empty => analysis unusable
  std::vector<RoundAnalysis> rounds;       ///< ascending by seq
  std::vector<StragglerEntry> stragglers;  ///< descending by blocked_on_s
  // Whole-trace totals (sums of the per-round means).
  double total_wall_s = 0.0;
  double total_compute_s = 0.0;
  double total_comm_s = 0.0;
  double total_blocked_s = 0.0;
  double total_imbalance_s = 0.0;
  std::size_t flow_edges = 0;  ///< matched happens-before edges

  [[nodiscard]] bool ok() const noexcept { return errors.empty(); }
  [[nodiscard]] double compute_fraction() const noexcept {
    return total_wall_s > 0.0 ? total_compute_s / total_wall_s : 1.0;
  }
};

/// Analyzes Chrome trace-event JSON produced by trace_json(). Traces without
/// round markers yield zero rounds (not an error); malformed JSON or schema
/// mismatch lands in `errors`.
[[nodiscard]] TraceAnalysis analyze_trace(const std::string& json);

/// Renders the analysis as a `svmobs.analysis.v1` JSON document.
[[nodiscard]] std::string analysis_json(const TraceAnalysis& analysis);

/// Renders the human-readable per-round table plus the straggler ranking.
[[nodiscard]] std::string analysis_table(const TraceAnalysis& analysis);

}  // namespace svmobs
