// Platt scaling: fits a sigmoid P(y=1|x) = 1/(1+exp(A*f(x)+B)) to a trained
// model's decision values, turning margins into calibrated probabilities —
// libsvm's -b 1. The fit follows Lin, Lin & Weng (2007), "A note on Platt's
// probabilistic outputs for support vector machines": Newton iterations with
// backtracking on the regularized maximum-likelihood objective.
#pragma once

#include <span>

#include "core/model.hpp"
#include "data/sparse.hpp"

namespace svmcore {

struct PlattScaling {
  double A = 0.0;
  double B = 0.0;

  /// P(y=+1 | decision value f).
  [[nodiscard]] double probability(double decision_value) const noexcept;
};

/// Fits A, B from decision values and ±1 labels (typically on a held-out or
/// cross-validation set). Throws std::invalid_argument on size mismatch or
/// fewer than two samples.
[[nodiscard]] PlattScaling fit_platt(std::span<const double> decision_values,
                                     std::span<const double> labels);

/// Convenience: computes the model's decision values on `calibration` and
/// fits the sigmoid against its labels.
[[nodiscard]] PlattScaling fit_platt(const SvmModel& model,
                                     const svmdata::Dataset& calibration);

}  // namespace svmcore
