#include "core/trainer.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>

#include "mpisim/spmd.hpp"
#include "obs/trace.hpp"
#include "solver/pbm_solver.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"

namespace svmcore {

SvmModel build_model(const svmdata::Dataset& dataset, std::span<const double> alpha, double beta,
                     const svmkernel::KernelParams& kernel) {
  svmdata::CsrMatrix support_vectors;
  std::vector<double> coefficients;
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    if (alpha[i] > 0.0) {
      support_vectors.add_row(dataset.X.row(i));
      coefficients.push_back(alpha[i] * dataset.y[i]);
    }
  }
  return SvmModel(kernel, std::move(support_vectors), std::move(coefficients), beta);
}

namespace {

/// Stitches per-rank results into the TrainResult (model assembly, scalar
/// plucking, counter aggregation). `results` is indexed by world rank; after
/// an elastic shrink a dead rank's slot is a default RankResult (empty alpha)
/// and is skipped — scalars then come from the first completed rank, and the
/// surviving ranks' post-shrink block ranges cover every sample.
void finish_result(const svmdata::Dataset& dataset, const DistributedConfig& config,
                   const std::vector<RankResult>& results, TrainResult& out) {
  const RankResult* first = nullptr;
  for (const RankResult& r : results)
    if (!r.alpha.empty()) {
      first = &r;
      break;
    }
  if (first == nullptr) throw std::logic_error("train: no rank produced a result");

  // Stitch the block alphas back into one global vector for model assembly.
  std::vector<double> alpha(dataset.size(), 0.0);
  for (const RankResult& r : results)
    for (std::size_t i = 0; i < r.alpha.size(); ++i) alpha[r.range.begin + i] = r.alpha[i];

  out.beta = first->beta;
  out.iterations = first->stats.iterations;
  out.converged = first->stats.converged;
  out.rank_stats.reserve(results.size());
  for (std::size_t r = 0; r < results.size(); ++r) {
    const SolverStats& s = results[r].stats;
    out.rank_stats.push_back(s);
    out.total_kernel_evaluations += s.kernel_evaluations;
    out.max_rank_kernel_evaluations =
        std::max(out.max_rank_kernel_evaluations, s.kernel_evaluations);
    out.samples_shrunk += s.samples_shrunk;
    out.recon_kernel_evaluations += s.recon_kernel_evaluations;
    out.engine_pair_evals += s.engine_pair_evals;
    out.engine_scatter_builds += s.engine_scatter_builds;
    out.engine_bytes_streamed += s.engine_bytes_streamed;
    out.recon_comm_seconds = std::max(out.recon_comm_seconds, s.recon_comm_seconds);
    out.recon_overlapped_seconds =
        std::max(out.recon_overlapped_seconds, s.recon_overlapped_seconds);
    out.recon_scatter_builds += s.recon_scatter_builds;
    out.recon_bytes_streamed += s.recon_bytes_streamed;
    out.recon_scatter_builds_saved += s.recon_scatter_builds_saved;
    out.solve_seconds = std::max(out.solve_seconds, s.solve_seconds);
    out.reconstruction_seconds =
        std::max(out.reconstruction_seconds, s.reconstruction_seconds);
  }
  out.reconstructions = first->stats.reconstructions;
  out.recon_ring_steps = first->stats.recon_ring_steps;
  out.recon_overlapped_steps = first->stats.recon_overlapped_steps;
  out.active_trace = first->stats.active_trace;

  // Per-rank metric registries: the solver's registry completed with the
  // rank's communication traffic, then folded into the cross-rank aggregate.
  out.rank_metrics.reserve(results.size());
  for (std::size_t r = 0; r < results.size(); ++r) {
    svmobs::MetricsRegistry m = results[r].metrics;
    if (r < out.rank_traffic.size()) {
      const svmmpi::TrafficStats& t = out.rank_traffic[r];
      m.counter("net.sends").set(t.sends);
      m.counter("net.recvs").set(t.recvs);
      m.counter("net.bytes_sent").set(t.bytes_sent);
      m.counter("net.bytes_received").set(t.bytes_received);
      m.counter("net.collectives").set(t.collectives);
      m.counter("net.bytes_collective").set(t.bytes_collective);
      m.gauge("net.modeled_s").set(t.modeled_seconds);
      m.gauge("net.overlapped_s").set(t.overlapped_seconds);
    }
    out.rank_metrics.push_back(std::move(m));
  }
  out.metrics = svmobs::MetricsRegistry();
  for (const svmobs::MetricsRegistry& m : out.rank_metrics) out.metrics.aggregate_from(m);

  // Modeled time on the paper's testbed: per-rank kernel work (lambda per
  // evaluation) plus the rank's modeled network time; take the slowest rank.
  constexpr double kLambdaSeconds = 50e-9;  // ~50ns per sparse kernel eval
  for (std::size_t r = 0; r < results.size(); ++r) {
    const double modeled =
        static_cast<double>(results[r].stats.kernel_evaluations) * kLambdaSeconds +
        out.rank_traffic[r].modeled_seconds;
    out.modeled_seconds = std::max(out.modeled_seconds, modeled);
  }

  // Provenance: which engine configuration produced this result. Mirrored
  // into run reports and (when tracing) the trace timeline, so artifacts
  // record the backend/flavor that made them. Labels are string literals —
  // the trace recorder keeps pointers, not copies.
  out.engine_backend = svmkernel::to_string(config.params.engine_backend);
  out.engine_flavor = svmkernel::to_string(config.params.engine_flavor);
  out.solver_algo = to_string(config.params.algo);
  svmobs::trace_instant(svmkernel::trace_label(config.params.engine_backend), "meta");
  svmobs::trace_instant(svmkernel::trace_label(config.params.engine_flavor), "meta");

  out.model = build_model(dataset, alpha, out.beta, config.params.kernel);
  out.alpha = std::move(alpha);
}

void validate_train_inputs(const svmdata::Dataset& dataset, const TrainOptions& options) {
  if (options.num_ranks <= 0) throw std::invalid_argument("train: num_ranks must be positive");
  if (static_cast<std::size_t>(options.num_ranks) > dataset.size())
    throw std::invalid_argument("train: more ranks than samples");
  dataset.validate();
}

/// Solver dispatch on SolverParams::algo. Runs inside the SPMD lambda, so
/// both entry points (plain and elastic) pick the algorithm per launch with
/// the same configuration object.
void run_solver(svmmpi::Comm& comm, const svmdata::Dataset& dataset,
                const DistributedConfig& config, RankResult& out) {
  if (config.params.algo == SolverAlgo::pbm) {
    PbmSolver solver(comm, dataset, config);
    out = solver.solve();
  } else {
    DistributedSolver solver(comm, dataset, config);
    out = solver.solve();
  }
}

/// PBM's block count must be fixed at LAUNCH rank count (not the current,
/// possibly shrunken, world size) so the optimization trajectory survives
/// elastic recovery unchanged. Resolved once here, before any SPMD region.
void resolve_pbm_blocks(DistributedConfig& config, const TrainOptions& options) {
  if (config.params.algo != SolverAlgo::pbm) return;
  if (config.params.pbm_blocks == 0) config.params.pbm_blocks = options.num_ranks;
  if (config.params.pbm_blocks < options.num_ranks)
    throw std::invalid_argument("train: pbm_blocks must be >= num_ranks");
}

/// Shared SPMD launch + result assembly used by both entry points. `config`
/// carries the optional checkpoint wiring and `injector` the optional fault
/// schedule; both may be null/disabled for a plain run.
TrainResult train_impl(const svmdata::Dataset& dataset, const TrainOptions& options,
                       const DistributedConfig& config, svmmpi::FaultInjector* injector) {
  validate_train_inputs(dataset, options);

  std::vector<RankResult> results(options.num_ranks);

  TrainResult out;
  svmutil::Timer wall;
  svmmpi::TrafficStats total = svmmpi::run_spmd(
      options.num_ranks,
      [&](svmmpi::Comm& comm) { run_solver(comm, dataset, config, results[comm.rank()]); },
      options.net_model,
      [&](const svmmpi::World& world) {
        out.rank_traffic.reserve(options.num_ranks);
        for (int r = 0; r < options.num_ranks; ++r) out.rank_traffic.push_back(world.stats(r));
      },
      injector);
  out.wall_seconds = wall.seconds();
  out.traffic = total;
  finish_result(dataset, config, results, out);
  return out;
}

/// shrink_then_restart found no reachable consistent cut: thrown by every
/// survivor to tear the elastic region down so the driver can relaunch the
/// full world instead.
struct EscalateToRestart : std::runtime_error {
  EscalateToRestart()
      : std::runtime_error(
            "elastic recovery: no consistent cut reachable; escalating to a full restart") {}
};

/// Elastic shrink-world training: one SPMD region that survives permanent
/// rank losses. Each rank's body is a retry loop: on the RankLost verdict the
/// survivors shrink the communicator; the new leader models the memory loss
/// in the generation's store, repartitions the reachable cut into a fresh
/// store sized for the survivors and publishes it, and every survivor
/// re-enters the solve on the shrunken communicator.
TrainResult train_elastic(const svmdata::Dataset& dataset, const TrainOptions& options,
                          const DistributedConfig& config, svmmpi::FaultInjector* injector,
                          bool escalate_when_unrecoverable, int max_shrinks,
                          RecoveryReport& rep) {
  validate_train_inputs(dataset, options);

  std::vector<RankResult> results(options.num_ranks);

  // Shrink-generation state, published by each generation's new leader.
  struct Generation {
    CheckpointStore* store = nullptr;  ///< store for the shrunken world
    bool escalate = false;             ///< no reachable cut: abandon the region
  };
  std::mutex mutex;
  std::condition_variable published_cv;
  std::vector<Generation> published;
  // Repartitioned stores must outlive the solvers reading them; the chain
  // also keeps superseded generations alive for stragglers mid-recovery.
  std::vector<std::unique_ptr<CheckpointStore>> chain;

  TrainResult out;
  svmutil::Timer wall;
  svmmpi::ElasticReport elastic = svmmpi::run_spmd_elastic(
      options.num_ranks,
      [&](svmmpi::Comm& world_comm) {
        svmmpi::Comm comm = world_comm;
        CheckpointStore* gen_store = config.checkpoint_store;
        std::size_t my_gen = 0;
        for (;;) {
          try {
            DistributedConfig cfg = config;
            cfg.checkpoint_store = gen_store;
            run_solver(comm, dataset, cfg, results[world_comm.rank()]);
            return;
          } catch (const svmmpi::RankLost& lost) {
            svmmpi::Comm next = comm.shrink();
            if (next.rank() == 0) {
              // This generation's new leader performs the repartition and
              // publishes the outcome; survivors of the agree are guaranteed
              // to reach this same generation, so the publish slot is unique.
              std::lock_guard lock(mutex);
              Generation gen;
              for (const int world_rank : comm.dead_members())
                if (std::find(rep.ranks_lost.begin(), rep.ranks_lost.end(), world_rank) ==
                    rep.ranks_lost.end())
                  rep.ranks_lost.push_back(world_rank);
              rep.failures.push_back(lost.what());
              if (max_shrinks >= 0 && static_cast<int>(my_gen) >= max_shrinks) {
                // The shrink budget for this attempt is spent: tear the
                // region down so the driver relaunches the full world.
                gen.escalate = true;
              } else if (gen_store != nullptr) {
                // The dead ranks' process memory is gone: erase their primary
                // copies (and the buddy replicas they held), then reach the
                // newest consistent cut through the surviving replicas.
                for (const int world_rank : comm.dead_members()) {
                  const int old_rank = comm.comm_rank_of_world(world_rank);
                  if (old_rank >= 0) gen_store->mark_rank_lost(old_rank);
                }
                auto fresh = std::make_unique<CheckpointStore>(next.size());
                const std::optional<std::uint64_t> epoch =
                    repartition_from_checkpoints(*gen_store, dataset.size(), *fresh);
                if (epoch) {
                  (void)fresh->begin_restart();
                  gen.store = fresh.get();
                  chain.push_back(std::move(fresh));
                  ++rep.shrinks;
                  rep.restore_epochs.push_back(*epoch);
                } else if (escalate_when_unrecoverable) {
                  gen.escalate = true;
                } else {
                  // No reachable cut: the shrunken world restarts from
                  // scratch with a fresh (empty) store.
                  gen.store = fresh.get();
                  chain.push_back(std::move(fresh));
                  ++rep.shrinks;
                  rep.restore_epochs.push_back(0);
                }
              } else {
                // Checkpointing disabled: resume from scratch, shrunken.
                ++rep.shrinks;
                rep.restore_epochs.push_back(0);
              }
              published.push_back(gen);
              published_cv.notify_all();
            }
            Generation gen;
            {
              std::unique_lock lock(mutex);
              published_cv.wait(lock, [&] { return published.size() > my_gen; });
              gen = published[my_gen];
            }
            if (gen.escalate) throw EscalateToRestart{};
            // Marks the start of the next recovery generation on this
            // survivor's trace track.
            svmobs::trace_instant("world_shrink", "fault");
            comm = next;
            gen_store = gen.store;
            ++my_gen;
          }
        }
      },
      options.net_model,
      [&](const svmmpi::World& world) {
        out.rank_traffic.reserve(options.num_ranks);
        for (int r = 0; r < options.num_ranks; ++r) out.rank_traffic.push_back(world.stats(r));
      },
      injector);
  out.wall_seconds = wall.seconds();
  out.traffic = elastic.stats;
  for (const auto& store : chain) rep.checkpoints_saved += store->saves();
  finish_result(dataset, config, results, out);
  return out;
}

/// Scoped trace recording for one train() call: reset + enable on entry,
/// disable + flush-to-file on EVERY exit — a failing run unwinds through
/// here with its rank threads already joined (the SPMD launcher joins before
/// rethrowing), so the partial trace is complete and race-free.
class TraceSession {
 public:
  explicit TraceSession(const TrainOptions& options)
      : path_(options.trace_path), active_(!options.trace_path.empty()) {
    if (!active_) return;
    svmobs::trace_reset();
    svmobs::trace_enable(options.trace_buffer_events);
  }
  ~TraceSession() {
    if (!active_) return;
    svmobs::trace_disable();
    try {
      svmobs::trace_write(path_);
    } catch (const std::exception& e) {
      SVM_LOG_WARN << "trace flush failed: " << e.what();
    }
  }
  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

 private:
  std::string path_;
  bool active_;
};

void maybe_write_metrics(const TrainResult& result, const TrainOptions& options) {
  if (options.metrics_path.empty()) return;
  svmobs::write_reports(options.metrics_path, {run_report(result, options)});
}

}  // namespace

svmobs::RunReport run_report(const TrainResult& result, const TrainOptions& options,
                             std::string name) {
  svmobs::RunReport report;
  report.name = std::move(name);
  report.info.emplace_back("ranks", std::to_string(options.num_ranks));
  report.info.emplace_back("heuristic", options.heuristic.name());
  report.info.emplace_back("iterations", std::to_string(result.iterations));
  report.info.emplace_back("support_vectors", std::to_string(result.num_support_vectors()));
  report.info.emplace_back("converged", result.converged ? "true" : "false");
  if (!result.engine_backend.empty())
    report.info.emplace_back("engine_backend", result.engine_backend);
  if (!result.engine_flavor.empty())
    report.info.emplace_back("engine_flavor", result.engine_flavor);
  if (!result.solver_algo.empty()) report.info.emplace_back("solver", result.solver_algo);
  report.ranks = result.rank_metrics;
  report.aggregate = result.metrics;
  report.aggregate.gauge("wall_s").set(result.wall_seconds);
  report.aggregate.gauge("modeled_s").set(result.modeled_seconds);
  return report;
}

TrainResult train(const svmdata::Dataset& dataset, const SolverParams& params,
                  const TrainOptions& options) {
  DistributedConfig config{params,
                           options.heuristic,
                           options.permanent_shrink,
                           options.openmp_gamma,
                           options.trace_active_interval,
                           options.pipelined_reconstruction};
  resolve_pbm_blocks(config, options);
  TraceSession trace(options);
  TrainResult out = train_impl(dataset, options, config, /*injector=*/nullptr);
  maybe_write_metrics(out, options);
  return out;
}

TrainResult train_with_recovery(const svmdata::Dataset& dataset, const SolverParams& params,
                                const TrainOptions& options, const RecoveryOptions& recovery,
                                RecoveryReport* report) {
  if (recovery.max_restarts < 0)
    throw std::invalid_argument("train_with_recovery: max_restarts must be non-negative");
  if (recovery.policy != RecoveryPolicy::restart_world && options.net_model.timeout_s <= 0.0)
    throw std::invalid_argument(
        "train_with_recovery: shrink policies need net_model.timeout_s > 0 (deadline-driven "
        "failure detection)");

  // One injector across all attempts: a fault already fired stays consumed,
  // so a crash event kills exactly one launch instead of every retry.
  svmmpi::FaultInjector injector(recovery.fault_plan);
  std::optional<CheckpointStore> owned_store;
  CheckpointStore* store = recovery.store;
  if (store == nullptr) {
    owned_store.emplace(options.num_ranks);
    store = &*owned_store;
  } else if (store->num_ranks() != options.num_ranks) {
    throw std::invalid_argument("train_with_recovery: store num_ranks mismatch");
  }

  DistributedConfig config{params,
                           options.heuristic,
                           options.permanent_shrink,
                           options.openmp_gamma,
                           options.trace_active_interval,
                           options.pipelined_reconstruction};
  config.checkpoint_interval = recovery.checkpoint_interval;
  config.checkpoint_store = recovery.checkpoint_interval > 0 ? store : nullptr;
  resolve_pbm_blocks(config, options);

  RecoveryReport local_report;
  RecoveryReport& rep = report != nullptr ? *report : local_report;
  rep = RecoveryReport{};

  // One trace session across every attempt, so restarts and recovery
  // generations land on one timeline (marked by the instants below).
  TraceSession trace(options);

  // The elastic policies recover in-world; the driver loop only sees their
  // unrecoverable outcomes (escalation, unexplained timeout) and relaunches
  // the FULL world — by then any permanent losses are already modeled in the
  // store, so a memory-only store restarts from whatever is still reachable
  // by a cold process (nothing), and a file-backed one from its disk spills.
  for (int attempt = 0;; ++attempt) {
    try {
      ++rep.attempts;
      TrainResult out =
          recovery.policy == RecoveryPolicy::restart_world
              ? train_impl(dataset, options, config, &injector)
              : train_elastic(dataset, options, config, &injector,
                              recovery.policy == RecoveryPolicy::shrink_then_restart,
                              recovery.max_shrinks, rep);
      rep.checkpoints_saved += store->saves();
      for (const std::uint64_t epoch : rep.restore_epochs)
        rep.iterations_replayed += out.iterations - std::min(epoch, out.iterations);
      maybe_write_metrics(out, options);
      return out;
    } catch (const svmmpi::RankFailed& failure) {
      rep.failures.push_back(failure.what());
      if (failure.permanent) {
        // Permanent loss under restart_world: the rank's process memory is
        // gone. Its disk spills (if any) survive; its in-memory checkpoints
        // and the buddy replicas it held do not.
        if (std::find(rep.ranks_lost.begin(), rep.ranks_lost.end(), failure.rank) ==
            rep.ranks_lost.end())
          rep.ranks_lost.push_back(failure.rank);
        if (config.checkpoint_store != nullptr) store->mark_rank_lost(failure.rank);
      }
      if (attempt == recovery.max_restarts) throw;
    } catch (const svmmpi::TimeoutError& failure) {
      rep.failures.push_back(failure.what());
      if (attempt == recovery.max_restarts) throw;
    } catch (const EscalateToRestart& escalation) {
      rep.failures.push_back(escalation.what());
      if (attempt == recovery.max_restarts)
        throw std::runtime_error(std::string("train_with_recovery: out of restarts after: ") +
                                 escalation.what());
    }
    if (recovery.backoff_base_s > 0.0) {
      // Restart throttle: capped exponential backoff before the relaunch.
      const double delay_s =
          std::min(recovery.backoff_base_s * std::ldexp(1.0, attempt), recovery.backoff_cap_s);
      rep.backoff_seconds += delay_s;
      std::this_thread::sleep_for(std::chrono::duration<double>(delay_s));
    }
    // Pin the newest consistent cut (single-threaded: the failed world has
    // been fully joined by the launcher before its exception reached us).
    const std::optional<std::uint64_t> epoch =
        config.checkpoint_store != nullptr ? store->begin_restart() : std::nullopt;
    rep.restore_epochs.push_back(epoch.value_or(0));
    ++rep.restarts;
    svmobs::trace_instant("world_restart", "fault");
  }
}

}  // namespace svmcore
