#include "core/trainer.hpp"

#include <stdexcept>

#include "mpisim/spmd.hpp"
#include "util/timer.hpp"

namespace svmcore {

SvmModel build_model(const svmdata::Dataset& dataset, std::span<const double> alpha, double beta,
                     const svmkernel::KernelParams& kernel) {
  svmdata::CsrMatrix support_vectors;
  std::vector<double> coefficients;
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    if (alpha[i] > 0.0) {
      support_vectors.add_row(dataset.X.row(i));
      coefficients.push_back(alpha[i] * dataset.y[i]);
    }
  }
  return SvmModel(kernel, std::move(support_vectors), std::move(coefficients), beta);
}

TrainResult train(const svmdata::Dataset& dataset, const SolverParams& params,
                  const TrainOptions& options) {
  if (options.num_ranks <= 0) throw std::invalid_argument("train: num_ranks must be positive");
  if (static_cast<std::size_t>(options.num_ranks) > dataset.size())
    throw std::invalid_argument("train: more ranks than samples");
  dataset.validate();

  const DistributedConfig config{params, options.heuristic, options.permanent_shrink,
                                 options.openmp_gamma, options.trace_active_interval};
  std::vector<RankResult> results(options.num_ranks);

  TrainResult out;
  svmutil::Timer wall;
  svmmpi::TrafficStats total = svmmpi::run_spmd(
      options.num_ranks,
      [&](svmmpi::Comm& comm) {
        DistributedSolver solver(comm, dataset, config);
        results[comm.rank()] = solver.solve();
      },
      options.net_model,
      [&](const svmmpi::World& world) {
        out.rank_traffic.reserve(options.num_ranks);
        for (int r = 0; r < options.num_ranks; ++r) out.rank_traffic.push_back(world.stats(r));
      });
  out.wall_seconds = wall.seconds();
  out.traffic = total;

  // Stitch the block alphas back into one global vector for model assembly.
  std::vector<double> alpha(dataset.size(), 0.0);
  for (const RankResult& r : results)
    for (std::size_t i = 0; i < r.alpha.size(); ++i) alpha[r.range.begin + i] = r.alpha[i];

  out.beta = results[0].beta;
  out.iterations = results[0].stats.iterations;
  out.converged = results[0].stats.converged;
  out.rank_stats.reserve(results.size());
  for (std::size_t r = 0; r < results.size(); ++r) {
    const SolverStats& s = results[r].stats;
    out.rank_stats.push_back(s);
    out.total_kernel_evaluations += s.kernel_evaluations;
    out.max_rank_kernel_evaluations =
        std::max(out.max_rank_kernel_evaluations, s.kernel_evaluations);
    out.samples_shrunk += s.samples_shrunk;
    out.recon_kernel_evaluations += s.recon_kernel_evaluations;
    out.solve_seconds = std::max(out.solve_seconds, s.solve_seconds);
    out.reconstruction_seconds =
        std::max(out.reconstruction_seconds, s.reconstruction_seconds);
  }
  out.reconstructions = results[0].stats.reconstructions;
  out.active_trace = results[0].stats.active_trace;

  // Modeled time on the paper's testbed: per-rank kernel work (lambda per
  // evaluation) plus the rank's modeled network time; take the slowest rank.
  constexpr double kLambdaSeconds = 50e-9;  // ~50ns per sparse kernel eval
  for (std::size_t r = 0; r < results.size(); ++r) {
    const double modeled =
        static_cast<double>(results[r].stats.kernel_evaluations) * kLambdaSeconds +
        out.rank_traffic[r].modeled_seconds;
    out.modeled_seconds = std::max(out.modeled_seconds, modeled);
  }

  out.model = build_model(dataset, alpha, out.beta, params.kernel);
  return out;
}

}  // namespace svmcore
