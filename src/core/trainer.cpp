#include "core/trainer.hpp"

#include <optional>
#include <stdexcept>

#include "mpisim/spmd.hpp"
#include "util/timer.hpp"

namespace svmcore {

SvmModel build_model(const svmdata::Dataset& dataset, std::span<const double> alpha, double beta,
                     const svmkernel::KernelParams& kernel) {
  svmdata::CsrMatrix support_vectors;
  std::vector<double> coefficients;
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    if (alpha[i] > 0.0) {
      support_vectors.add_row(dataset.X.row(i));
      coefficients.push_back(alpha[i] * dataset.y[i]);
    }
  }
  return SvmModel(kernel, std::move(support_vectors), std::move(coefficients), beta);
}

namespace {

/// Shared SPMD launch + result assembly used by both entry points. `config`
/// carries the optional checkpoint wiring and `injector` the optional fault
/// schedule; both may be null/disabled for a plain run.
TrainResult train_impl(const svmdata::Dataset& dataset, const TrainOptions& options,
                       const DistributedConfig& config, svmmpi::FaultInjector* injector) {
  if (options.num_ranks <= 0) throw std::invalid_argument("train: num_ranks must be positive");
  if (static_cast<std::size_t>(options.num_ranks) > dataset.size())
    throw std::invalid_argument("train: more ranks than samples");
  dataset.validate();

  std::vector<RankResult> results(options.num_ranks);

  TrainResult out;
  svmutil::Timer wall;
  svmmpi::TrafficStats total = svmmpi::run_spmd(
      options.num_ranks,
      [&](svmmpi::Comm& comm) {
        DistributedSolver solver(comm, dataset, config);
        results[comm.rank()] = solver.solve();
      },
      options.net_model,
      [&](const svmmpi::World& world) {
        out.rank_traffic.reserve(options.num_ranks);
        for (int r = 0; r < options.num_ranks; ++r) out.rank_traffic.push_back(world.stats(r));
      },
      injector);
  out.wall_seconds = wall.seconds();
  out.traffic = total;

  // Stitch the block alphas back into one global vector for model assembly.
  std::vector<double> alpha(dataset.size(), 0.0);
  for (const RankResult& r : results)
    for (std::size_t i = 0; i < r.alpha.size(); ++i) alpha[r.range.begin + i] = r.alpha[i];

  out.beta = results[0].beta;
  out.iterations = results[0].stats.iterations;
  out.converged = results[0].stats.converged;
  out.rank_stats.reserve(results.size());
  for (std::size_t r = 0; r < results.size(); ++r) {
    const SolverStats& s = results[r].stats;
    out.rank_stats.push_back(s);
    out.total_kernel_evaluations += s.kernel_evaluations;
    out.max_rank_kernel_evaluations =
        std::max(out.max_rank_kernel_evaluations, s.kernel_evaluations);
    out.samples_shrunk += s.samples_shrunk;
    out.recon_kernel_evaluations += s.recon_kernel_evaluations;
    out.engine_pair_evals += s.engine_pair_evals;
    out.engine_scatter_builds += s.engine_scatter_builds;
    out.engine_bytes_streamed += s.engine_bytes_streamed;
    out.solve_seconds = std::max(out.solve_seconds, s.solve_seconds);
    out.reconstruction_seconds =
        std::max(out.reconstruction_seconds, s.reconstruction_seconds);
  }
  out.reconstructions = results[0].stats.reconstructions;
  out.active_trace = results[0].stats.active_trace;

  // Modeled time on the paper's testbed: per-rank kernel work (lambda per
  // evaluation) plus the rank's modeled network time; take the slowest rank.
  constexpr double kLambdaSeconds = 50e-9;  // ~50ns per sparse kernel eval
  for (std::size_t r = 0; r < results.size(); ++r) {
    const double modeled =
        static_cast<double>(results[r].stats.kernel_evaluations) * kLambdaSeconds +
        out.rank_traffic[r].modeled_seconds;
    out.modeled_seconds = std::max(out.modeled_seconds, modeled);
  }

  out.model = build_model(dataset, alpha, out.beta, config.params.kernel);
  return out;
}

}  // namespace

TrainResult train(const svmdata::Dataset& dataset, const SolverParams& params,
                  const TrainOptions& options) {
  const DistributedConfig config{params, options.heuristic, options.permanent_shrink,
                                 options.openmp_gamma, options.trace_active_interval};
  return train_impl(dataset, options, config, /*injector=*/nullptr);
}

TrainResult train_with_recovery(const svmdata::Dataset& dataset, const SolverParams& params,
                                const TrainOptions& options, const RecoveryOptions& recovery,
                                RecoveryReport* report) {
  if (recovery.max_restarts < 0)
    throw std::invalid_argument("train_with_recovery: max_restarts must be non-negative");

  // One injector across all attempts: a fault already fired stays consumed,
  // so a crash event kills exactly one launch instead of every retry.
  svmmpi::FaultInjector injector(recovery.fault_plan);
  std::optional<CheckpointStore> owned_store;
  CheckpointStore* store = recovery.store;
  if (store == nullptr) {
    owned_store.emplace(options.num_ranks);
    store = &*owned_store;
  } else if (store->num_ranks() != options.num_ranks) {
    throw std::invalid_argument("train_with_recovery: store num_ranks mismatch");
  }

  DistributedConfig config{params, options.heuristic, options.permanent_shrink,
                           options.openmp_gamma, options.trace_active_interval};
  config.checkpoint_interval = recovery.checkpoint_interval;
  config.checkpoint_store = recovery.checkpoint_interval > 0 ? store : nullptr;

  RecoveryReport local_report;
  RecoveryReport& rep = report != nullptr ? *report : local_report;
  rep = RecoveryReport{};

  for (int attempt = 0;; ++attempt) {
    try {
      TrainResult out = train_impl(dataset, options, config, &injector);
      rep.checkpoints_saved = store->saves();
      return out;
    } catch (const svmmpi::RankFailed& failure) {
      rep.failures.push_back(failure.what());
      if (attempt == recovery.max_restarts) throw;
    } catch (const svmmpi::TimeoutError& failure) {
      rep.failures.push_back(failure.what());
      if (attempt == recovery.max_restarts) throw;
    }
    // Pin the newest consistent cut (single-threaded: the failed world has
    // been fully joined by run_spmd before its exception reached us).
    const std::optional<std::uint64_t> epoch =
        config.checkpoint_store != nullptr ? store->begin_restart() : std::nullopt;
    rep.restore_epochs.push_back(epoch.value_or(0));
    ++rep.restarts;
  }
}

}  // namespace svmcore
