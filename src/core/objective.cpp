#include "core/objective.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

namespace svmcore {

double dual_objective(const svmdata::Dataset& dataset, std::span<const double> alpha,
                      const svmkernel::KernelParams& kernel_params) {
  const svmkernel::Kernel kernel(kernel_params);
  const std::vector<double> sq = dataset.X.row_squared_norms();

  // Only samples with alpha != 0 contribute to either term.
  std::vector<std::size_t> active;
  for (std::size_t i = 0; i < alpha.size(); ++i)
    if (alpha[i] != 0.0) active.push_back(i);

  double linear = 0.0;
  for (const std::size_t i : active) linear += alpha[i];

  double quadratic = 0.0;
  for (std::size_t a = 0; a < active.size(); ++a) {
    const std::size_t i = active[a];
    quadratic += alpha[i] * alpha[i] * kernel.eval(dataset.X.row(i), dataset.X.row(i), sq[i], sq[i]);
    for (std::size_t b = a + 1; b < active.size(); ++b) {
      const std::size_t j = active[b];
      quadratic += 2.0 * alpha[i] * alpha[j] * dataset.y[i] * dataset.y[j] *
                   kernel.eval(dataset.X.row(i), dataset.X.row(j), sq[i], sq[j]);
    }
  }
  return linear - 0.5 * quadratic;
}

KktReport kkt_report(const svmdata::Dataset& dataset, std::span<const double> alpha,
                     const SolverParams& params) {
  const svmkernel::Kernel kernel(params.kernel);
  const std::vector<double> sq = dataset.X.row_squared_norms();
  const std::size_t n = dataset.size();

  KktReport report;
  report.beta_up = std::numeric_limits<double>::infinity();
  report.beta_low = -std::numeric_limits<double>::infinity();

  for (std::size_t i = 0; i < n; ++i) {
    double gamma = -dataset.y[i];
    for (std::size_t j = 0; j < n; ++j) {
      if (alpha[j] == 0.0) continue;
      gamma += alpha[j] * dataset.y[j] *
               kernel.eval(dataset.X.row(j), dataset.X.row(i), sq[j], sq[i]);
    }
    const IndexSet set = classify(dataset.y[i], alpha[i], params.C_of(dataset.y[i]));
    if (in_up_set(set)) report.beta_up = std::min(report.beta_up, gamma);
    if (in_low_set(set)) report.beta_low = std::max(report.beta_low, gamma);
  }
  report.gap = report.beta_low - report.beta_up;

  double residual = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    residual += alpha[i] * dataset.y[i];
    const double below = -alpha[i];
    const double above = alpha[i] - params.C_of(dataset.y[i]);
    report.max_alpha_bound_violation =
        std::max({report.max_alpha_bound_violation, below, above});
  }
  report.equality_residual = std::abs(residual);
  return report;
}

}  // namespace svmcore
