#include "core/distributed_solver.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "core/pair_update.hpp"
#include "obs/trace.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"

namespace svmcore {

namespace {
constexpr int kTagSampleToRoot = 11;  ///< owner -> rank 0 (Algorithm 2 lines 4-9)
constexpr double kInf = std::numeric_limits<double>::infinity();
// One "smo_batch" trace span per this many SMO iterations: batches keep the
// timeline readable (and the ring buffer roomy) where per-iteration spans
// would drown it.
constexpr std::uint64_t kIterationsPerBatchSpan = 256;
}  // namespace

DistributedSolver::DistributedSolver(svmmpi::Comm& comm, const svmdata::Dataset& dataset,
                                     const DistributedConfig& config)
    : comm_(comm),
      data_(dataset),
      config_(config),
      range_(svmdata::block_range(dataset.size(), comm.size(), comm.rank())),
      kernel_(config.params.kernel),
      engine_(kernel_, dataset.X, config.params.engine_backend, range_.begin, range_.end,
              /*cache_budget_bytes=*/0, config.params.engine_flavor),
      iterations_(metrics_.counter("solver.iterations")),
      shrink_passes_(metrics_.counter("solver.shrink_passes")),
      samples_shrunk_(metrics_.counter("solver.samples_shrunk")),
      reconstructions_(metrics_.counter("recon.reconstructions")),
      recon_ring_steps_(metrics_.counter("recon.ring_steps")),
      recon_overlapped_steps_(metrics_.counter("recon.overlapped_steps")) {
  if (comm.rank() == 0) dataset.validate();
  // Training stays bit-exact double: reduced-precision row flavors are a
  // prediction/Q-cache feature and would silently perturb the optimization.
  if (config.params.engine_flavor != svmkernel::RowFlavor::f64)
    throw std::invalid_argument(
        "DistributedSolver: training requires engine_flavor f64 (got '" +
        svmkernel::to_string(config.params.engine_flavor) +
        "'); reduced-precision flavors apply to prediction and cached Q rows only");
  if (config_.checkpoint_store != nullptr &&
      config_.checkpoint_store->num_ranks() != comm.size())
    throw std::invalid_argument(
        "DistributedSolver: checkpoint store sized for a different communicator (after an "
        "elastic shrink, repartition into a store matching the surviving ranks)");
  const std::size_t local_n = range_.size();
  alpha_.assign(local_n, 0.0);
  gamma_.resize(local_n);
  shrunk_.assign(local_n, 0);
  active_.resize(local_n);
  for (std::size_t i = 0; i < local_n; ++i) {
    const std::size_t g = range_.begin + i;
    gamma_[i] = -data_.y[g];  // alpha = 0 => gamma = -y (Algorithm 2 line 1)
    active_[i] = static_cast<std::uint32_t>(i);
  }
  stats_.min_active = local_n;
  maybe_restore();
}

void DistributedSolver::maybe_restore() {
  if (config_.checkpoint_store == nullptr) return;
  const std::optional<RankCheckpoint> c = config_.checkpoint_store->restore(comm_.rank());
  if (!c) return;
  if (c->alpha.size() != range_.size())
    throw std::runtime_error("DistributedSolver: checkpoint does not match this rank's block");
  alpha_ = c->alpha;
  gamma_ = c->gamma;
  shrunk_ = c->shrunk;
  active_ = c->active;
  beta_up_ = c->beta_up;
  beta_low_ = c->beta_low;
  i_up_ = c->i_up;
  i_low_ = c->i_low;
  delta_counter_ = c->delta_counter;
  iterations_.set(c->iterations);
  shrink_passes_.set(c->shrink_passes);
  samples_shrunk_.set(c->samples_shrunk);
  reconstructions_.set(c->reconstructions);
  stats_.min_active = c->min_active;
  resume_stage_ = c->stage;
  resume_stalls_ = c->stalls;
  restored_ = true;
  svmobs::trace_instant("checkpoint_restore", "ckpt");
  // The restore epoch is a boundary the replay will hit again; skip the
  // redundant (byte-identical) re-save there.
  last_checkpoint_iteration_ = c->iterations;
}

void DistributedSolver::maybe_checkpoint() {
  if (config_.checkpoint_store == nullptr || config_.checkpoint_interval == 0) return;
  if (iterations_.value() % config_.checkpoint_interval != 0 ||
      iterations_.value() == last_checkpoint_iteration_)
    return;
  svmobs::TraceSpan span("checkpoint_save", "ckpt");
  RankCheckpoint c;
  c.stage = stage_;
  c.stalls = stage_stalls_;
  c.iterations = iterations_.value();
  c.delta_counter = delta_counter_;
  c.beta_up = beta_up_;
  c.beta_low = beta_low_;
  c.i_up = i_up_;
  c.i_low = i_low_;
  c.shrink_passes = shrink_passes_.value();
  c.samples_shrunk = samples_shrunk_.value();
  c.reconstructions = reconstructions_.value();
  c.min_active = stats_.min_active;
  c.alpha = alpha_;
  c.gamma = gamma_;
  c.shrunk = shrunk_;
  c.active = active_;
  config_.checkpoint_store->save(comm_.rank(), iterations_.value(), c);
  last_checkpoint_iteration_ = iterations_.value();
  metrics_.counter("ckpt.saves").add();
}

void DistributedSolver::select_violators() {
  svmmpi::DoubleInt up{kInf, std::numeric_limits<std::int64_t>::max()};
  svmmpi::DoubleInt low{-kInf, std::numeric_limits<std::int64_t>::max()};
  for (const std::uint32_t i : active_) {
    const std::size_t g = range_.begin + i;
    const IndexSet set = classify(data_.y[g], alpha_[i], config_.params.C_of(data_.y[g]));
    if (in_up_set(set) && gamma_[i] < up.value)
      up = svmmpi::DoubleInt{gamma_[i], static_cast<std::int64_t>(g)};
    if (in_low_set(set) && gamma_[i] > low.value)
      low = svmmpi::DoubleInt{gamma_[i], static_cast<std::int64_t>(g)};
  }
  const svmmpi::DoubleInt global_up = comm_.allreduce_minloc(up);
  const svmmpi::DoubleInt global_low = comm_.allreduce_maxloc(low);
  beta_up_ = global_up.value;
  beta_low_ = global_low.value;
  i_up_ = global_up.index;
  i_low_ = global_low.index;
  stats_.final_beta_up = beta_up_;
  stats_.final_beta_low = beta_low_;
  // The convergence gap as a counter track: rank 0 only, since the value is
  // identical on every rank after the Allreduce pair.
  if (comm_.rank() == 0) svmobs::trace_counter("gap", beta_low_ - beta_up_);
}

void DistributedSolver::pack_local_sample(PackedSamples& out, std::int64_t global) {
  const std::size_t i = local_of(global);
  const auto g = static_cast<std::size_t>(global);
  out.add(global, data_.y[g], alpha_[i], engine_.sq_norm(g), data_.X.row(g));
}

PackedSamples DistributedSolver::fetch_sample(std::int64_t global_index) {
  const int owner = svmdata::owner_of(data_.size(), comm_.size(), global_index);
  std::vector<std::byte> bytes;
  if (owner == 0) {
    if (comm_.rank() == 0) {
      PackedSamples one;
      pack_local_sample(one, global_index);
      bytes = one.pack();
    }
  } else {
    // Owner sends the sample to rank 0 first (Algorithm 2 lines 4-9)...
    if (comm_.rank() == owner) {
      PackedSamples one;
      pack_local_sample(one, global_index);
      comm_.send<std::byte>(one.pack(), 0, kTagSampleToRoot);
    }
    if (comm_.rank() == 0) bytes = comm_.recv<std::byte>(owner, kTagSampleToRoot);
  }
  // ...then rank 0 broadcasts it to everyone (line 10).
  comm_.bcast(bytes, 0);
  return PackedSamples::unpack(bytes);
}

PackedSamples DistributedSolver::fetch_pair(std::int64_t g_up, std::int64_t g_low) {
  const int owner_up = svmdata::owner_of(data_.size(), comm_.size(), g_up);
  const int owner_low = svmdata::owner_of(data_.size(), comm_.size(), g_low);
  const int rank = comm_.rank();

  // Owners ship their contribution(s) to rank 0 — one message per owning
  // rank, both samples in one message when a single rank owns the pair.
  if (rank != 0) {
    if (rank == owner_up && rank == owner_low) {
      PackedSamples both;
      pack_local_sample(both, g_up);
      pack_local_sample(both, g_low);
      comm_.send<std::byte>(both.pack(), 0, kTagSampleToRoot);
    } else if (rank == owner_up || rank == owner_low) {
      PackedSamples one;
      pack_local_sample(one, rank == owner_up ? g_up : g_low);
      comm_.send<std::byte>(one.pack(), 0, kTagSampleToRoot);
    }
  }

  // Rank 0 merges in fixed (up, low) order, then ONE Bcast replaces the two
  // broadcasts of the unbatched protocol.
  std::vector<std::byte> bytes;
  if (rank == 0) {
    PackedSamples pair;
    if (owner_up == owner_low) {
      if (owner_up == 0) {
        pack_local_sample(pair, g_up);
        pack_local_sample(pair, g_low);
      } else {
        pair = PackedSamples::unpack(comm_.recv<std::byte>(owner_up, kTagSampleToRoot));
      }
    } else {
      auto append_from = [&](std::int64_t g, int owner) {
        if (owner == 0) {
          pack_local_sample(pair, g);
        } else {
          const PackedSamples one =
              PackedSamples::unpack(comm_.recv<std::byte>(owner, kTagSampleToRoot));
          pair.add(one.global_index(0), one.y(0), one.alpha(0), one.sq_norm(0), one.row(0));
        }
      };
      append_from(g_up, owner_up);
      append_from(g_low, owner_low);
    }
    bytes = pair.pack();
  }
  comm_.bcast(bytes, 0);
  return PackedSamples::unpack(bytes);
}

DistributedSolver::PhaseExit DistributedSolver::phase_exit(PhaseExit exit) noexcept {
  // min_active is tracked at shrink passes, but a phase can also end between
  // passes (converged/stalled/capped) or without ever shrinking; sample the
  // exit-time active-set size so the reported minimum covers every boundary.
  stats_.min_active = std::min(stats_.min_active, active_.size());
  return exit;
}

DistributedSolver::PhaseExit DistributedSolver::run_phase(double tolerance, bool shrinking) {
  // Uniform round marker (one solver phase = one round for trace_analyze)
  // nested inside the human-facing "phase" span.
  svmobs::TraceRound round_marker("solver");
  svmobs::TraceSpan phase_span("phase", "solver");
  // Local round time split, published on every exit path (including faults):
  // wait_s is real wall time inside the phase's communication ops
  // (select_violators' reductions, fetch_pair's send + Bcast), compute_s the
  // remainder. Proxies only — exact per-peer blocking comes from the trace
  // flow events via tools/trace_analyze, with no extra communication here.
  struct PhaseObs {
    explicit PhaseObs(svmobs::MetricsRegistry& m) : metrics(m) {}
    svmobs::MetricsRegistry& metrics;
    svmutil::Timer wall;
    double wait_s = 0.0;
    ~PhaseObs() {
      const double wall_s = wall.seconds();
      const double compute_s = std::max(0.0, wall_s - wait_s);
      metrics.gauge("obs.round_compute_s").add(compute_s);
      metrics.gauge("obs.round_wait_s").add(wait_s);
      if (wall_s > 0.0) {
        const double ratio = wait_s / wall_s;
        metrics.gauge("obs.imbalance_ratio").set(ratio);
        if (ratio > 0.5) metrics.counter("obs.straggler_suspects").add();
      }
    }
  } obs(metrics_);
  // SMO iterations are spanned in batches of kIterationsPerBatchSpan; the
  // RAII guard closes the open batch on every exit path (returns, faults).
  struct BatchGuard {
    bool open = false;
    ~BatchGuard() {
      if (open) svmobs::trace_end("smo_batch", "solver");
    }
  } batch;
  while (true) {
    if (svmobs::trace_enabled() && iterations_.value() % kIterationsPerBatchSpan == 0) {
      if (batch.open) svmobs::trace_end("smo_batch", "solver");
      svmobs::trace_begin("smo_batch", "solver");
      batch.open = true;
    }
    // Loop tops are the checkpoint boundaries: state is replica-consistent
    // here and a replay from any saved boundary is deterministic.
    maybe_checkpoint();
    {
      svmutil::Timer wait_timer;
      select_violators();
      obs.wait_s += wait_timer.seconds();
    }
    if (i_up_ == std::numeric_limits<std::int64_t>::max() ||
        i_low_ == std::numeric_limits<std::int64_t>::max()) {
      // Active set lost one side entirely; only reconstruction can help.
      return phase_exit(PhaseExit::converged);
    }
    if (beta_up_ + tolerance >= beta_low_) return phase_exit(PhaseExit::converged);
    if (iterations_.value() >= config_.params.max_iterations)
      return phase_exit(PhaseExit::iteration_cap);

    // Both violators arrive in one message + one Bcast (sample 0 = up,
    // sample 1 = low).
    svmutil::Timer fetch_timer;
    const PackedSamples pair = fetch_pair(i_up_, i_low_);
    obs.wait_s += fetch_timer.seconds();
    const auto x_up = pair.row(0);
    const auto x_low = pair.row(1);
    const double sq_up = pair.sq_norm(0);
    const double sq_low = pair.sq_norm(1);

    // The pair update (Eq. 6) is computed redundantly on every rank from the
    // broadcast state, so all replicas agree bit-for-bit.
    const PairState state{pair.y(0),
                          pair.y(1),
                          pair.alpha(0),
                          pair.alpha(1),
                          beta_up_,
                          beta_low_,
                          engine_.eval_one(x_up, x_up, sq_up, sq_up),
                          engine_.eval_one(x_low, x_low, sq_low, sq_low),
                          engine_.eval_one(x_up, x_low, sq_up, sq_low),
                          config_.params.C_of(pair.y(0)),
                          config_.params.C_of(pair.y(1))};
    const PairResult updated = solve_pair(state);
    if (!updated.progress) {
      SVM_LOG_WARN << "distributed solver: stalled pair at gap "
                   << (beta_low_ - beta_up_) << "; ending phase";
      return phase_exit(PhaseExit::stalled);
    }
    const double delta_up = updated.alpha_up - pair.alpha(0);
    const double delta_low = updated.alpha_low - pair.alpha(1);
    if (owns(i_up_)) alpha_[local_of(i_up_)] = updated.alpha_up;
    if (owns(i_low_)) alpha_[local_of(i_low_)] = updated.alpha_low;

    // Shrink pass scheduling (Algorithm 4 lines 9-11): when the counter
    // expires, this iteration's gamma loop also applies the Eq. (9) test.
    bool shrink_now = false;
    if (shrinking && delta_counter_ != ~0ULL) {
      --delta_counter_;
      if (delta_counter_ == 0) shrink_now = true;
    }

    // Gradient update over active samples (Eq. 2): one fused engine call
    // computes K(x_up, i) and K(x_low, i) for the whole active set — the
    // former serial and OpenMP branches collapse here, and the OpenMP knob
    // now also accelerates shrink iterations (the kernel batch is
    // order-independent; only the compaction below is sequential).
    const double coef_up = pair.y(0) * delta_up;
    const double coef_low = pair.y(1) * delta_low;
    k_up_.resize(active_.size());
    k_low_.resize(active_.size());
    engine_.eval_pair_rows(x_up, sq_up, x_low, sq_low, active_, range_.begin, k_up_, k_low_,
                           config_.openmp_gamma);
    if (!shrink_now) {
      for (std::size_t a = 0; a < active_.size(); ++a)
        gamma_[active_[a]] += coef_up * k_up_[a] + coef_low * k_low_[a];
    } else {
      std::size_t kept = 0;
      for (std::size_t a = 0; a < active_.size(); ++a) {
        const std::uint32_t i = active_[a];
        const std::size_t g = range_.begin + i;
        gamma_[i] += coef_up * k_up_[a] + coef_low * k_low_[a];
        if (static_cast<std::int64_t>(g) == i_up_ ||
            static_cast<std::int64_t>(g) == i_low_) {
          active_[kept++] = i;  // the pair is never shrunk this iteration
          continue;
        }
        const IndexSet set = classify(data_.y[g], alpha_[i], config_.params.C_of(data_.y[g]));
        const bool at_bound_up = set == IndexSet::I3 || set == IndexSet::I4;
        const bool at_bound_low = set == IndexSet::I1 || set == IndexSet::I2;
        if ((at_bound_up && gamma_[i] < beta_up_) || (at_bound_low && gamma_[i] > beta_low_)) {
          shrunk_[i] = 1;  // eliminated (Eq. 9); gamma/alpha frozen from here
          samples_shrunk_.add();
          continue;
        }
        active_[kept++] = i;
      }
      active_.resize(kept);
    }

    if (shrink_now) {
      shrink_passes_.add();
      stats_.min_active = std::min(stats_.min_active, active_.size());
      svmobs::trace_counter("active_local", static_cast<double>(active_.size()));
      // Subsequent threshold (§IV-A.2): the global active-set size, or the
      // initial threshold again under the fixed-threshold ablation.
      const auto local_active = static_cast<std::int64_t>(active_.size());
      const std::int64_t global_active =
          comm_.allreduce(local_active, svmmpi::ReduceOp::sum);
      delta_counter_ = config_.heuristic.fixed_subsequent_threshold
                           ? config_.heuristic.initial_threshold(data_.size())
                           : static_cast<std::uint64_t>(global_active);
      if (delta_counter_ == 0) delta_counter_ = 1;
    }

    iterations_.add();
    maybe_trace_active();
  }
}

void DistributedSolver::maybe_trace_active() {
  if (config_.trace_active_interval == 0 ||
      iterations_.value() % config_.trace_active_interval != 0)
    return;
  const auto local_active = static_cast<std::int64_t>(active_.size());
  const std::int64_t global_active = comm_.allreduce(local_active, svmmpi::ReduceOp::sum);
  if (comm_.rank() == 0) {
    stats_.active_trace.emplace_back(iterations_.value(),
                                     static_cast<std::uint64_t>(global_active));
    // The same sample lands on a trace counter track (satellite of the
    // field, not a replacement: bench_trace_active reads the vector).
    svmobs::trace_counter("active_set", static_cast<double>(global_active));
  }
}

void DistributedSolver::refresh_bounds_all_samples() {
  svmmpi::DoubleInt up{kInf, std::numeric_limits<std::int64_t>::max()};
  svmmpi::DoubleInt low{-kInf, std::numeric_limits<std::int64_t>::max()};
  for (std::size_t i = 0; i < range_.size(); ++i) {
    const std::size_t g = range_.begin + i;
    const IndexSet set = classify(data_.y[g], alpha_[i], config_.params.C_of(data_.y[g]));
    if (in_up_set(set) && gamma_[i] < up.value)
      up = svmmpi::DoubleInt{gamma_[i], static_cast<std::int64_t>(g)};
    if (in_low_set(set) && gamma_[i] > low.value)
      low = svmmpi::DoubleInt{gamma_[i], static_cast<std::int64_t>(g)};
  }
  const svmmpi::DoubleInt global_up = comm_.allreduce_minloc(up);
  const svmmpi::DoubleInt global_low = comm_.allreduce_maxloc(low);
  beta_up_ = global_up.value;
  beta_low_ = global_low.value;
  i_up_ = global_up.index;
  i_low_ = global_low.index;
  stats_.final_beta_up = beta_up_;
  stats_.final_beta_low = beta_low_;
}

void DistributedSolver::snapshot_stats() {
  stats_.iterations = iterations_.value();
  stats_.shrink_passes = shrink_passes_.value();
  stats_.samples_shrunk = samples_shrunk_.value();
  stats_.reconstructions = reconstructions_.value();
  stats_.recon_ring_steps = recon_ring_steps_.value();
  stats_.recon_overlapped_steps = recon_overlapped_steps_.value();
  stats_.recon_kernel_evaluations = metrics_.counter("recon.kernel_evaluations").value();
  stats_.recon_scatter_builds = metrics_.counter("recon.scatter_builds").value();
  stats_.recon_bytes_streamed = metrics_.counter("recon.bytes_streamed").value();
  stats_.recon_scatter_builds_saved = metrics_.counter("recon.scatter_builds_saved").value();
  stats_.recon_comm_seconds = metrics_.gauge("recon.comm_s").value();
  stats_.recon_overlapped_seconds = metrics_.gauge("recon.overlapped_s").value();
  stats_.reconstruction_seconds = metrics_.gauge("recon.total_s").value();

  // Engine- and kernel-level totals flow through the registry too, so a run
  // report carries the full picture without touching SolverStats.
  metrics_.counter("kernel.evaluations").set(kernel_.evaluations());
  metrics_.counter("engine.pair_evals").set(engine_.stats().pair_evals);
  metrics_.counter("engine.single_evals").set(engine_.stats().single_evals);
  metrics_.counter("engine.scatter_builds").set(engine_.stats().scatter_builds);
  metrics_.counter("engine.bytes_streamed").set(engine_.stats().bytes_streamed);
  metrics_.counter("engine.panel_dots").set(engine_.stats().panel_dots);
  // Resident bytes of the flavored structures: the simd backend's RowStore
  // and (for cached engines) the encoded Q-row cache. Zero when unused.
  metrics_.gauge("engine.store_bytes").set(static_cast<double>(engine_.store_bytes()));
  metrics_.gauge("cache.bytes_resident")
      .set(static_cast<double>(engine_.cache_bytes_resident()));
  metrics_.gauge("solver.final_gap").set(beta_low_ - beta_up_);
  metrics_.gauge("solver.active_at_end").set(static_cast<double>(active_.size()));
  metrics_.gauge("solver.min_active").set(static_cast<double>(stats_.min_active));
  metrics_.counter("solver.converged").set(stats_.converged ? 1 : 0);
  stats_.kernel_evaluations = kernel_.evaluations();
  stats_.engine_pair_evals = engine_.stats().pair_evals;
  stats_.engine_scatter_builds = engine_.stats().scatter_builds;
  stats_.engine_bytes_streamed = engine_.stats().bytes_streamed;
}

RankResult DistributedSolver::solve() {
  svmobs::TraceSpan span("solve", "solver");
  svmutil::Timer total;
  const double two_eps = 2.0 * config_.params.eps;
  const bool shrinking = config_.heuristic.shrinking_enabled();
  if (!restored_) delta_counter_ = config_.heuristic.initial_threshold(data_.size());

  // Both classes must be present globally or no violating pair exists.
  std::int64_t class_counts[2] = {0, 0};
  for (std::size_t i = 0; i < range_.size(); ++i)
    ++class_counts[data_.y[range_.begin + i] > 0.0 ? 0 : 1];
  const std::vector<std::int64_t> totals =
      comm_.allreduce(std::span<const std::int64_t>(class_counts, 2), svmmpi::ReduceOp::sum);
  if (totals[0] == 0 || totals[1] == 0)
    throw std::invalid_argument("DistributedSolver: dataset must contain both classes");

  // When resuming from a checkpoint, completed run_phase calls (index <
  // resume_stage_) are skipped: the restored state already reflects them,
  // and the recorded stage pins where the replay re-enters the driver.
  PhaseExit exit = PhaseExit::converged;
  if (!shrinking) {
    begin_stage(0, 0);
    exit = run_phase(two_eps, /*shrinking=*/false);  // Algorithm 2 (Original)
  } else if (config_.permanent_shrink) {
    // CA-SVM-style ablation: shrink and never repair. Accuracy not guaranteed.
    begin_stage(0, 0);
    exit = run_phase(two_eps, /*shrinking=*/true);
  } else if (!config_.heuristic.multi_reconstruction) {
    // Algorithm 4: single gradient reconstruction.
    if (resume_stage_ == 0) {
      begin_stage(0, 0);
      exit = run_phase(two_eps, /*shrinking=*/true);
      if (exit != PhaseExit::iteration_cap) {
        reconstruct_gradients();
        if (beta_up_ + two_eps < beta_low_) {
          delta_counter_ = ~0ULL;  // "should not shrink samples again" (line 32)
          begin_stage(1, 0);
          exit = run_phase(two_eps, /*shrinking=*/false);
        }
      }
    } else {
      // Resuming inside the post-reconstruction sweep (delta_counter_ was
      // restored as "never shrink again").
      begin_stage(1, 0);
      exit = run_phase(two_eps, /*shrinking=*/false);
    }
  } else {
    // Algorithm 5: first converge loosely (20*eps), then alternate
    // reconstruction and tight phases until reconstruction confirms 2*eps.
    std::uint32_t stage = resume_stage_;
    int consecutive_stalls = static_cast<int>(resume_stalls_);
    if (stage == 0) {
      begin_stage(0, 0);
      exit = run_phase(20.0 * config_.params.eps, /*shrinking=*/true);
      consecutive_stalls = exit == PhaseExit::stalled ? 1 : 0;
      stage = 1;
    } else {
      // Resuming inside tight phase `stage`; its preceding reconstruction
      // completed before the checkpoint was taken.
      begin_stage(stage, static_cast<std::uint32_t>(consecutive_stalls));
      exit = run_phase(two_eps, /*shrinking=*/true);
      consecutive_stalls = exit == PhaseExit::stalled ? consecutive_stalls + 1 : 0;
      ++stage;
    }
    while (exit != PhaseExit::iteration_cap && consecutive_stalls < 2) {
      reconstruct_gradients();
      if (beta_up_ + two_eps >= beta_low_) break;
      begin_stage(stage, static_cast<std::uint32_t>(consecutive_stalls));
      exit = run_phase(two_eps, /*shrinking=*/true);
      consecutive_stalls = exit == PhaseExit::stalled ? consecutive_stalls + 1 : 0;
      ++stage;
    }
  }

  stats_.converged = exit != PhaseExit::iteration_cap;
  stats_.active_at_end = active_.size();

  // Hyperplane threshold over global I0 (Section III).
  double local_sum = 0.0;
  std::int64_t local_count = 0;
  for (std::size_t i = 0; i < range_.size(); ++i) {
    const std::size_t g = range_.begin + i;
    if (classify(data_.y[g], alpha_[i], config_.params.C_of(data_.y[g])) == IndexSet::I0) {
      local_sum += gamma_[i];
      ++local_count;
    }
  }
  const double global_sum = comm_.allreduce(local_sum, svmmpi::ReduceOp::sum);
  const std::int64_t global_count = comm_.allreduce(local_count, svmmpi::ReduceOp::sum);
  const double beta = global_count > 0 ? global_sum / static_cast<double>(global_count)
                                       : 0.5 * (beta_low_ + beta_up_);

  stats_.solve_seconds = total.seconds();
  metrics_.gauge("solver.solve_s").set(stats_.solve_seconds);
  snapshot_stats();

  RankResult result;
  result.range = range_;
  result.alpha = alpha_;
  result.beta = beta;
  result.stats = stats_;
  result.metrics = metrics_;
  return result;
}

}  // namespace svmcore
