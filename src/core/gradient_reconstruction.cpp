// Algorithm 3: distributed gradient reconstruction. Every rank's samples
// with alpha > 0 circulate the ring (MPI_Isend/Irecv/Waitall of CSR data in
// the paper; the sendrecv building block here); each rank accumulates the
// kernel contributions into the gamma of its previously shrunk samples. The
// paper cannot use MPI_Allgatherv because the collective would need a buffer
// holding the whole dataset — the ring keeps the footprint at one block.
#include "core/distributed_solver.hpp"
#include "util/timer.hpp"

namespace svmcore {

void DistributedSolver::reconstruct_gradients() {
  svmutil::Timer timer;
  const std::uint64_t kernel_evals_before = kernel_.evaluations();
  ++stats_.reconstructions;

  // omega_q: local samples whose gamma went stale when they were shrunk.
  std::vector<std::uint32_t> omega;
  for (std::size_t i = 0; i < range_.size(); ++i)
    if (shrunk_[i]) omega.push_back(static_cast<std::uint32_t>(i));

  // Globally skip the ring when no rank shrank anything (e.g. the heuristic
  // threshold exceeded the iteration count, the paper's MNIST Single50pc
  // case); the bounds refresh below is still required.
  const auto local_stale = static_cast<std::int64_t>(omega.size());
  const std::int64_t global_stale = comm_.allreduce(local_stale, svmmpi::ReduceOp::sum);

  if (global_stale > 0) {
    // Contribution block: every local sample with alpha > 0 — including
    // shrunk ones at the upper bound, whose alpha still shapes the gradient.
    PackedSamples mine;
    for (std::size_t i = 0; i < range_.size(); ++i) {
      if (alpha_[i] > 0.0) {
        const std::size_t g = range_.begin + i;
        mine.add(static_cast<std::int64_t>(g), data_.y[g], alpha_[i], engine_.sq_norm(g),
                 data_.X.row(g));
      }
    }

    std::vector<double> gamma_accum(omega.size(), 0.0);
    const int p = comm_.size();
    const int to = (comm_.rank() + 1) % p;
    const int from = (comm_.rank() - 1 + p) % p;

    std::vector<std::byte> circulating = mine.pack();
    for (int step = 0; step < p; ++step) {
      const PackedSamples block =
          step == 0 ? std::move(mine) : PackedSamples::unpack(circulating);
      for (std::size_t w = 0; w < omega.size(); ++w) {
        const std::uint32_t i = omega[w];
        const std::size_t g = range_.begin + i;
        // Engine query scope: the stale row is scattered once, then the
        // whole circulating block streams against it.
        engine_.begin_query(data_.X.row(g), engine_.sq_norm(g));
        double sum = 0.0;
        for (std::size_t j = 0; j < block.size(); ++j)
          sum += block.alpha(j) * block.y(j) *
                 engine_.query_row(block.row(j), block.sq_norm(j));
        engine_.end_query();
        gamma_accum[w] += sum;
      }
      // After p-1 exchanges every block has visited every rank.
      if (step + 1 < p)
        circulating = comm_.sendrecv(std::span<const std::byte>(circulating), to, from);
    }

    for (std::size_t w = 0; w < omega.size(); ++w) {
      const std::uint32_t i = omega[w];
      gamma_[i] = gamma_accum[w] - data_.y[range_.begin + i];  // line 6
    }
  }

  // Re-introduce every sample (shrunk ones now carry exact gradients).
  std::fill(shrunk_.begin(), shrunk_.end(), 0);
  active_.resize(range_.size());
  for (std::size_t i = 0; i < range_.size(); ++i) active_[i] = static_cast<std::uint32_t>(i);

  // Lines 7-12: recompute the global bounds over the full sample set.
  refresh_bounds_all_samples();

  stats_.reconstruction_seconds += timer.seconds();
  stats_.recon_kernel_evaluations += kernel_.evaluations() - kernel_evals_before;
}

}  // namespace svmcore
