// Algorithm 3: distributed gradient reconstruction. Every rank's samples
// with alpha > 0 circulate the ring (MPI_Isend/Irecv/Waitall of CSR data in
// the paper); each rank accumulates the kernel contributions into the gamma
// of its previously shrunk samples. The paper cannot use MPI_Allgatherv
// because the collective would need a buffer holding the whole dataset — the
// ring keeps the footprint at one block.
//
// The default path is the double-buffered pipelined ring: step k posts the
// Isend of the current block and the Irecv of block k+1 BEFORE computing on
// block k, then Waitalls at the step boundary. The exchange rides behind the
// compute, so the overlap accounting charges the step max(compute, comm)
// modeled seconds instead of their sum (Comm::credit_overlap moves the
// hidden min(compute, comm) into TrafficStats::overlapped_seconds). The
// compute itself is one KernelEngine::eval_block_rows call per step —
// min(|omega|, |block|) query scatters via the adaptive orientation instead
// of one per stale sample — and is bit-identical to the serial per-sample
// query loop, so pipelined and serial reconstruction produce byte-equal
// models.
//
// Crash safety: gamma_ is only written after the full ring completes;
// gamma_accum and the circulating buffers are locals. A rank failure at any
// point of the pipeline (post, compute, wait) unwinds without touching
// solver state, so checkpoint replay re-enters reconstruction from the last
// run_phase boundary and reproduces it deterministically.
#include <algorithm>

#include "core/distributed_solver.hpp"
#include "obs/trace.hpp"
#include "util/timer.hpp"

namespace svmcore {

namespace {
constexpr int kTagRing = 13;  ///< reconstruction ring exchanges
}  // namespace

void DistributedSolver::reconstruct_gradients() {
  svmobs::TraceSpan reconstruction_span("reconstruction", "recon");
  svmutil::Timer timer;
  const std::uint64_t kernel_evals_before = kernel_.evaluations();
  const std::uint64_t scatter_before = engine_.stats().scatter_builds;
  const std::uint64_t bytes_before = engine_.stats().bytes_streamed;
  reconstructions_.add();
  svmobs::Gauge& comm_s_gauge = metrics_.gauge("recon.comm_s");
  svmobs::Gauge& overlapped_s_gauge = metrics_.gauge("recon.overlapped_s");

  // omega_q: local samples whose gamma went stale when they were shrunk.
  std::vector<std::uint32_t> omega;
  for (std::size_t i = 0; i < range_.size(); ++i)
    if (shrunk_[i]) omega.push_back(static_cast<std::uint32_t>(i));

  // Globally skip the ring when no rank shrank anything (e.g. the heuristic
  // threshold exceeded the iteration count, the paper's MNIST Single50pc
  // case); the bounds refresh below is still required.
  const auto local_stale = static_cast<std::int64_t>(omega.size());
  const std::int64_t global_stale = comm_.allreduce(local_stale, svmmpi::ReduceOp::sum);

  if (global_stale > 0) {
    // Contribution block: every local sample with alpha > 0 — including
    // shrunk ones at the upper bound, whose alpha still shapes the gradient.
    PackedSamples mine;
    for (std::size_t i = 0; i < range_.size(); ++i) {
      if (alpha_[i] > 0.0) {
        const std::size_t g = range_.begin + i;
        mine.add(static_cast<std::int64_t>(g), data_.y[g], alpha_[i], engine_.sq_norm(g),
                 data_.X.row(g));
      }
    }

    std::vector<double> gamma_accum(omega.size(), 0.0);
    const int p = comm_.size();
    const int to = (comm_.rank() + 1) % p;
    const int from = (comm_.rank() - 1 + p) % p;

    // Double buffers + one unpacked block, reused across every ring step:
    // once payload sizes stabilize, the steady state allocates nothing.
    std::vector<std::byte> circulating;
    std::vector<std::byte> incoming;
    mine.pack_into(circulating);
    PackedSamples block;
    const auto current_block = [&](int step) -> const PackedSamples& {
      if (step == 0) return mine;
      PackedSamples::unpack_into(circulating, block);
      return block;
    };

    if (config_.pipelined_reconstruction) {
      // eval_block_rows argument scratch, reused across steps.
      std::vector<std::span<const svmdata::Feature>> rows;
      std::vector<double> sq_norms;
      std::vector<double> coeffs;

      for (int step = 0; step < p; ++step) {
        svmobs::TraceRound round_marker("recon");
        svmobs::TraceSpan step_span("ring_step", "recon");
        recon_ring_steps_.add();
        // Post block k+1's exchange before computing on block k. isend is
        // buffered-eager (it snapshots `circulating`), and the Irecv defers
        // its blocking pop to the wait, so posting order is deadlock-free.
        const bool exchanging = step + 1 < p;
        svmmpi::Request recv_req;
        svmmpi::Request send_req;
        double comm_before = 0.0;
        if (exchanging) {
          svmobs::TraceSpan post_span("ring_post", "recon");
          comm_before = comm_.traffic().modeled_seconds;
          recv_req = comm_.irecv_into(incoming, from, kTagRing);
          send_req = comm_.isend(std::span<const std::byte>(circulating), to, kTagRing);
        }

        const PackedSamples& b = current_block(step);
        svmutil::Timer compute_timer;
        rows.clear();
        sq_norms.clear();
        coeffs.clear();
        rows.reserve(b.size());
        sq_norms.reserve(b.size());
        coeffs.reserve(b.size());
        for (std::size_t j = 0; j < b.size(); ++j) {
          rows.push_back(b.row(j));
          sq_norms.push_back(b.sq_norm(j));
          coeffs.push_back(b.alpha(j) * b.y(j));
        }
        engine_.eval_block_rows(rows, sq_norms, coeffs, omega, range_.begin, gamma_accum,
                                config_.openmp_gamma);
        if (engine_.backend() != svmkernel::EngineBackend::reference)
          metrics_.counter("recon.scatter_builds_saved")
              .add(omega.size() - std::min(omega.size(), b.size()));
        const double compute_s = compute_timer.seconds();

        if (exchanging) {
          // Waitall at the step boundary, then swap the double buffers. The
          // wait span is what the overlap looks like on the timeline: the
          // posted Isend/Irecv rode behind the engine_block_batch span above,
          // so a short ring_wait means the exchange was fully hidden.
          svmobs::TraceSpan wait_span("ring_wait", "recon");
          recv_req.wait();
          send_req.wait();
          const double comm_s = comm_.traffic().modeled_seconds - comm_before;
          comm_s_gauge.add(comm_s);
          overlapped_s_gauge.add(comm_.credit_overlap(compute_s, comm_s));
          recon_overlapped_steps_.add();
          circulating.swap(incoming);
        }
      }
    } else {
      // Serial reference ring: blocking exchange strictly after the compute,
      // one engine query scope per stale sample. Kept for before/after
      // benchmarking; byte-equal results to the pipelined path.
      for (int step = 0; step < p; ++step) {
        svmobs::TraceRound round_marker("recon");
        svmobs::TraceSpan step_span("ring_step", "recon");
        recon_ring_steps_.add();
        const PackedSamples& b = current_block(step);
        for (std::size_t w = 0; w < omega.size(); ++w) {
          const std::uint32_t i = omega[w];
          const std::size_t g = range_.begin + i;
          // Engine query scope: the stale row is scattered once, then the
          // whole circulating block streams against it.
          engine_.begin_query(data_.X.row(g), engine_.sq_norm(g));
          double sum = 0.0;
          for (std::size_t j = 0; j < b.size(); ++j)
            sum += b.alpha(j) * b.y(j) * engine_.query_row(b.row(j), b.sq_norm(j));
          engine_.end_query();
          gamma_accum[w] += sum;
        }
        // After p-1 exchanges every block has visited every rank.
        if (step + 1 < p) {
          svmobs::TraceSpan exchange_span("ring_exchange", "recon");
          const double comm_before = comm_.traffic().modeled_seconds;
          comm_.sendrecv_into(std::span<const std::byte>(circulating), incoming, to, from,
                              kTagRing);
          comm_s_gauge.add(comm_.traffic().modeled_seconds - comm_before);
          circulating.swap(incoming);
        }
      }
    }

    for (std::size_t w = 0; w < omega.size(); ++w) {
      const std::uint32_t i = omega[w];
      gamma_[i] = gamma_accum[w] - data_.y[range_.begin + i];  // line 6
    }
  }

  // Re-introduce every sample (shrunk ones now carry exact gradients).
  std::fill(shrunk_.begin(), shrunk_.end(), 0);
  active_.resize(range_.size());
  for (std::size_t i = 0; i < range_.size(); ++i) active_[i] = static_cast<std::uint32_t>(i);

  // Lines 7-12: recompute the global bounds over the full sample set.
  refresh_bounds_all_samples();

  metrics_.gauge("recon.total_s").add(timer.seconds());
  metrics_.counter("recon.kernel_evaluations").add(kernel_.evaluations() - kernel_evals_before);
  metrics_.counter("recon.scatter_builds").add(engine_.stats().scatter_builds - scatter_before);
  metrics_.counter("recon.bytes_streamed").add(engine_.stats().bytes_streamed - bytes_before);
}

}  // namespace svmcore
