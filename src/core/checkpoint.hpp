// Checkpoint/restart support for the distributed solver. Each rank
// periodically serializes its complete solver state (multipliers, gradients,
// shrink flags, active set, global bounds, shrink counter, iteration cursor
// and the solve driver's phase cursor) into a CheckpointStore. Because every
// rank checkpoints at the same deterministic iteration boundaries, the
// per-rank snapshots with a common epoch form a globally consistent cut; the
// retry driver (solve_with_recovery) restores the newest epoch present on
// ALL ranks and replays from there. The solver is deterministic given a
// loop-top state, so a fault-free replay from any consistent cut converges
// to the bit-identical model a failure-free run would produce.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace svmcore {

/// One rank's complete solver state at a checkpoint boundary (a run_phase
/// loop top). Serialization is a versioned flat binary layout; deserialize()
/// validates every length field against the buffer before copying.
struct RankCheckpoint {
  // Solve-driver cursor: index of the phase being executed (number of
  // completed run_phase calls before it) and the consecutive-stall count at
  // that phase's entry (Algorithm 5 driver state).
  std::uint32_t stage = 0;
  std::uint32_t stalls = 0;

  // Iteration cursor and shrink scheduling.
  std::uint64_t iterations = 0;
  std::uint64_t delta_counter = ~0ULL;

  // Global selection state (replica-consistent at a loop top).
  double beta_up = 0.0;
  double beta_low = 0.0;
  std::int64_t i_up = -1;
  std::int64_t i_low = -1;

  // Work counters restored so post-recovery statistics stay meaningful.
  std::uint64_t shrink_passes = 0;
  std::uint64_t samples_shrunk = 0;
  std::uint64_t reconstructions = 0;
  std::uint64_t min_active = 0;

  // Per-local-sample state.
  std::vector<double> alpha;
  std::vector<double> gamma;
  std::vector<std::uint8_t> shrunk;
  std::vector<std::uint32_t> active;

  [[nodiscard]] std::vector<std::byte> serialize() const;
  /// Throws std::runtime_error on a corrupt or truncated buffer.
  [[nodiscard]] static RankCheckpoint deserialize(const std::vector<std::byte>& bytes);

  [[nodiscard]] bool operator==(const RankCheckpoint& other) const = default;
};

/// Thread-safe store of per-(rank, epoch) checkpoints. In-memory by default;
/// when constructed with a directory, every save is also spilled to
/// `<dir>/ckpt_r<rank>_e<epoch>.bin` and `open()` can reload a store from
/// disk — surviving not just rank failures but whole-process restarts.
///
/// Protocol: the retry driver calls begin_restart() once (single-threaded)
/// before each SPMD launch; it pins the newest epoch present on all ranks
/// and discards everything else. Rank threads then call restore() during
/// solver construction and save() at checkpoint boundaries.
class CheckpointStore {
 public:
  explicit CheckpointStore(int num_ranks, std::string directory = {});

  /// Reloads a file-backed store's contents from `directory`.
  [[nodiscard]] static CheckpointStore open(int num_ranks, const std::string& directory);

  /// Saves rank `rank`'s checkpoint for `epoch`, pruning epochs older than
  /// the previous one (two epochs per rank are retained — enough to cover
  /// ranks straddling a boundary when a failure hits).
  void save(int rank, std::uint64_t epoch, const RankCheckpoint& state);

  /// Pins the restore epoch: the newest epoch every rank has a checkpoint
  /// for. Returns it, or nullopt when no consistent cut exists (fresh
  /// start). Checkpoints from other epochs are discarded.
  std::optional<std::uint64_t> begin_restart();

  /// The checkpoint pinned by the last begin_restart() for this rank, or
  /// nullopt for a fresh start. Thread-safe (read-only after pinning).
  [[nodiscard]] std::optional<RankCheckpoint> restore(int rank) const;

  [[nodiscard]] int num_ranks() const noexcept { return num_ranks_; }
  /// Total save() calls, across all ranks and epochs.
  [[nodiscard]] std::uint64_t saves() const;
  /// Epochs currently retained for `rank` (newest last).
  [[nodiscard]] std::vector<std::uint64_t> epochs(int rank) const;

 private:
  struct LoadFromDisk {};
  CheckpointStore(int num_ranks, std::string directory, LoadFromDisk);

  [[nodiscard]] std::string file_path(int rank, std::uint64_t epoch) const;

  int num_ranks_;
  std::string directory_;  ///< empty = in-memory only
  mutable std::mutex mutex_;
  /// checkpoints_[rank]: epoch -> serialized state, at most 2 entries.
  std::vector<std::map<std::uint64_t, std::vector<std::byte>>> checkpoints_;
  std::optional<std::uint64_t> restore_epoch_;
  std::uint64_t saves_ = 0;
};

}  // namespace svmcore
