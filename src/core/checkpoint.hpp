// Checkpoint/restart support for the distributed solver. Each rank
// periodically serializes its complete solver state (multipliers, gradients,
// shrink flags, active set, global bounds, shrink counter, iteration cursor
// and the solve driver's phase cursor) into a CheckpointStore. Because every
// rank checkpoints at the same deterministic iteration boundaries, the
// per-rank snapshots with a common epoch form a globally consistent cut; the
// retry driver (solve_with_recovery) restores the newest epoch present on
// ALL ranks and replays from there. The solver is deterministic given a
// loop-top state, so a fault-free replay from any consistent cut converges
// to the bit-identical model a failure-free run would produce.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace svmcore {

/// One rank's complete solver state at a checkpoint boundary (a run_phase
/// loop top). Serialization is a versioned flat binary layout; deserialize()
/// validates every length field against the buffer before copying.
struct RankCheckpoint {
  // Solve-driver cursor: index of the phase being executed (number of
  // completed run_phase calls before it) and the consecutive-stall count at
  // that phase's entry (Algorithm 5 driver state).
  std::uint32_t stage = 0;
  std::uint32_t stalls = 0;

  // Iteration cursor and shrink scheduling.
  std::uint64_t iterations = 0;
  std::uint64_t delta_counter = ~0ULL;

  // Global selection state (replica-consistent at a loop top).
  double beta_up = 0.0;
  double beta_low = 0.0;
  std::int64_t i_up = -1;
  std::int64_t i_low = -1;

  // Work counters restored so post-recovery statistics stay meaningful.
  std::uint64_t shrink_passes = 0;
  std::uint64_t samples_shrunk = 0;
  std::uint64_t reconstructions = 0;
  std::uint64_t min_active = 0;

  // Per-local-sample state.
  std::vector<double> alpha;
  std::vector<double> gamma;
  std::vector<std::uint8_t> shrunk;
  std::vector<std::uint32_t> active;

  [[nodiscard]] std::vector<std::byte> serialize() const;
  /// Throws std::runtime_error on a corrupt or truncated buffer.
  [[nodiscard]] static RankCheckpoint deserialize(const std::vector<std::byte>& bytes);

  [[nodiscard]] bool operator==(const RankCheckpoint& other) const = default;
};

/// Thread-safe store of per-(rank, epoch) checkpoints. In-memory by default;
/// when constructed with a directory, every save is also spilled to
/// `<dir>/ckpt_r<rank>_e<epoch>.bin` and `open()` can reload a store from
/// disk — surviving not just rank failures but whole-process restarts.
///
/// Protocol: the retry driver calls begin_restart() once (single-threaded)
/// before each SPMD launch; it pins the newest epoch present on all ranks
/// and discards everything else. Rank threads then call restore() during
/// solver construction and save() at checkpoint boundaries.
class CheckpointStore {
 public:
  /// `buddy_replication` (on by default, no-op at num_ranks == 1) mirrors
  /// every save of rank r into rank (r+1) mod p's memory as a buddy replica.
  /// Replicas model survivor RAM: they are invisible to begin_restart()/
  /// restore()/epochs()/saves(), are never spilled to disk, and are consumed
  /// only by repartition_from_checkpoints() during an elastic shrink — the
  /// one path that can reach another live rank's memory.
  explicit CheckpointStore(int num_ranks, std::string directory = {},
                           bool buddy_replication = true);

  /// Reloads a file-backed store's contents from `directory`. A truncated or
  /// corrupt checkpoint file (failed validation) is skipped — logged through
  /// svmutil at warn level and counted (corrupt_skipped(), plus the
  /// `ckpt_skipped_files` trace counter track) rather than poisoning the
  /// store — the restart then falls back to an older epoch or a fresh start.
  [[nodiscard]] static CheckpointStore open(int num_ranks, const std::string& directory);

  /// Spilled checkpoint files skipped by open() because they were truncated,
  /// corrupt or unreadable; recovery drivers surface this in their reports.
  [[nodiscard]] std::uint64_t corrupt_skipped() const noexcept { return corrupt_skipped_; }

  /// Saves rank `rank`'s checkpoint for `epoch`, pruning epochs older than
  /// the previous one (two epochs per rank are retained — enough to cover
  /// ranks straddling a boundary when a failure hits).
  void save(int rank, std::uint64_t epoch, const RankCheckpoint& state);

  /// Pins the restore epoch: the newest epoch every rank has a checkpoint
  /// for. Returns it, or nullopt when no consistent cut exists (fresh
  /// start). Checkpoints from other epochs are discarded.
  std::optional<std::uint64_t> begin_restart();

  /// The checkpoint pinned by the last begin_restart() for this rank, or
  /// nullopt for a fresh start. Thread-safe (read-only after pinning).
  [[nodiscard]] std::optional<RankCheckpoint> restore(int rank) const;

  /// Models the permanent loss of `rank`'s process memory: its in-memory
  /// checkpoints are erased, as are the buddy replicas it was holding for
  /// rank (rank-1) mod p. Disk spills survive (they are durable storage, not
  /// process memory) and are re-read for a file-backed store — a cold
  /// replacement process can read the dead rank's disk, but never its RAM.
  /// The replica of `rank` held by its own buddy is untouched: that is what
  /// keeps a memory-only store recoverable through an elastic shrink.
  void mark_rank_lost(int rank);

  [[nodiscard]] int num_ranks() const noexcept { return num_ranks_; }
  /// Total save() calls, across all ranks and epochs.
  [[nodiscard]] std::uint64_t saves() const;
  /// Epochs currently retained for `rank` (newest last).
  [[nodiscard]] std::vector<std::uint64_t> epochs(int rank) const;

 private:
  friend std::optional<std::uint64_t> repartition_from_checkpoints(const CheckpointStore& source,
                                                                   std::size_t num_samples,
                                                                   CheckpointStore& target);

  struct LoadFromDisk {};
  CheckpointStore(int num_ranks, std::string directory, LoadFromDisk);

  [[nodiscard]] std::string file_path(int rank, std::uint64_t epoch) const;
  /// Reads and validates one spilled checkpoint file; false (logged at warn
  /// level and counted) on a truncated/corrupt/unreadable file.
  [[nodiscard]] bool read_validated(const std::string& path, std::vector<std::byte>& out);

  int num_ranks_;
  std::string directory_;  ///< empty = in-memory only
  bool buddy_ = true;
  mutable std::mutex mutex_;
  /// checkpoints_[rank]: epoch -> serialized state, at most 2 entries.
  std::vector<std::map<std::uint64_t, std::vector<std::byte>>> checkpoints_;
  /// buddy_replicas_[rank]: rank's state mirrored in (rank+1) mod p's memory.
  std::vector<std::map<std::uint64_t, std::vector<std::byte>>> buddy_replicas_;
  std::optional<std::uint64_t> restore_epoch_;
  std::uint64_t saves_ = 0;
  std::uint64_t corrupt_skipped_ = 0;  ///< open()-time skips; see corrupt_skipped()
};

/// Elastic-shrink state migration: finds the newest epoch for which EVERY
/// source rank's checkpoint is reachable (primary copy, or the buddy replica
/// when the primary was lost via mark_rank_lost), stitches the per-sample
/// state back into global arrays using the source partition of `num_samples`,
/// re-slices it along `target.num_ranks()`'s partition and save()s one
/// checkpoint per target rank at that epoch. Global scalars (stage, stalls,
/// iteration cursor, shrink counter, beta bounds, i_up/i_low) carry over
/// verbatim — they are replica-consistent at a checkpoint boundary. Returns
/// the migrated epoch (caller then calls target.begin_restart()), or nullopt
/// when no fully-reachable consistent cut exists.
std::optional<std::uint64_t> repartition_from_checkpoints(const CheckpointStore& source,
                                                          std::size_t num_samples,
                                                          CheckpointStore& target);

}  // namespace svmcore
