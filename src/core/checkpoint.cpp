#include "core/checkpoint.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "data/split.hpp"
#include "obs/trace.hpp"
#include "util/logging.hpp"

namespace svmcore {

namespace {

constexpr std::uint32_t kMagic = 0x53564b43;  // "CKVS"
constexpr std::uint32_t kVersion = 1;

template <typename T>
void append_pod(std::vector<std::byte>& out, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  const std::size_t offset = out.size();
  out.resize(offset + sizeof(T));
  std::memcpy(out.data() + offset, &value, sizeof(T));
}

template <typename T>
void append_vector(std::vector<std::byte>& out, const std::vector<T>& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  append_pod(out, static_cast<std::uint64_t>(v.size()));
  const std::size_t offset = out.size();
  out.resize(offset + v.size() * sizeof(T));
  if (!v.empty()) std::memcpy(out.data() + offset, v.data(), v.size() * sizeof(T));
}

class Reader {
 public:
  explicit Reader(const std::vector<std::byte>& bytes) : bytes_(bytes) {}

  template <typename T>
  [[nodiscard]] T pod() {
    static_assert(std::is_trivially_copyable_v<T>);
    require(sizeof(T));
    T value;
    std::memcpy(&value, bytes_.data() + offset_, sizeof(T));
    offset_ += sizeof(T);
    return value;
  }

  template <typename T>
  [[nodiscard]] std::vector<T> vector() {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto count = pod<std::uint64_t>();
    if (count > (bytes_.size() - offset_) / sizeof(T))
      throw std::runtime_error("checkpoint: truncated array");
    std::vector<T> v(count);
    if (count > 0) std::memcpy(v.data(), bytes_.data() + offset_, count * sizeof(T));
    offset_ += count * sizeof(T);
    return v;
  }

  [[nodiscard]] bool exhausted() const noexcept { return offset_ == bytes_.size(); }

 private:
  void require(std::size_t n) const {
    if (n > bytes_.size() - offset_) throw std::runtime_error("checkpoint: truncated buffer");
  }

  const std::vector<std::byte>& bytes_;
  std::size_t offset_ = 0;
};

}  // namespace

std::vector<std::byte> RankCheckpoint::serialize() const {
  std::vector<std::byte> out;
  out.reserve(64 + alpha.size() * 17 + active.size() * 4);
  append_pod(out, kMagic);
  append_pod(out, kVersion);
  append_pod(out, stage);
  append_pod(out, stalls);
  append_pod(out, iterations);
  append_pod(out, delta_counter);
  append_pod(out, beta_up);
  append_pod(out, beta_low);
  append_pod(out, i_up);
  append_pod(out, i_low);
  append_pod(out, shrink_passes);
  append_pod(out, samples_shrunk);
  append_pod(out, reconstructions);
  append_pod(out, min_active);
  append_vector(out, alpha);
  append_vector(out, gamma);
  append_vector(out, shrunk);
  append_vector(out, active);
  return out;
}

RankCheckpoint RankCheckpoint::deserialize(const std::vector<std::byte>& bytes) {
  Reader reader(bytes);
  if (reader.pod<std::uint32_t>() != kMagic)
    throw std::runtime_error("checkpoint: bad magic (not a checkpoint buffer)");
  if (reader.pod<std::uint32_t>() != kVersion)
    throw std::runtime_error("checkpoint: unsupported version");
  RankCheckpoint c;
  c.stage = reader.pod<std::uint32_t>();
  c.stalls = reader.pod<std::uint32_t>();
  c.iterations = reader.pod<std::uint64_t>();
  c.delta_counter = reader.pod<std::uint64_t>();
  c.beta_up = reader.pod<double>();
  c.beta_low = reader.pod<double>();
  c.i_up = reader.pod<std::int64_t>();
  c.i_low = reader.pod<std::int64_t>();
  c.shrink_passes = reader.pod<std::uint64_t>();
  c.samples_shrunk = reader.pod<std::uint64_t>();
  c.reconstructions = reader.pod<std::uint64_t>();
  c.min_active = reader.pod<std::uint64_t>();
  c.alpha = reader.vector<double>();
  c.gamma = reader.vector<double>();
  c.shrunk = reader.vector<std::uint8_t>();
  c.active = reader.vector<std::uint32_t>();
  if (!reader.exhausted()) throw std::runtime_error("checkpoint: trailing bytes");
  if (c.gamma.size() != c.alpha.size() || c.shrunk.size() != c.alpha.size() ||
      c.active.size() > c.alpha.size())
    throw std::runtime_error("checkpoint: inconsistent array lengths");
  return c;
}

CheckpointStore::CheckpointStore(int num_ranks, std::string directory, bool buddy_replication)
    : num_ranks_(num_ranks),
      directory_(std::move(directory)),
      buddy_(buddy_replication && num_ranks > 1),
      checkpoints_(num_ranks),
      buddy_replicas_(num_ranks) {
  if (num_ranks <= 0) throw std::invalid_argument("CheckpointStore: num_ranks must be positive");
  if (!directory_.empty()) std::filesystem::create_directories(directory_);
}

std::string CheckpointStore::file_path(int rank, std::uint64_t epoch) const {
  return directory_ + "/ckpt_r" + std::to_string(rank) + "_e" + std::to_string(epoch) + ".bin";
}

bool CheckpointStore::read_validated(const std::string& path, std::vector<std::byte>& out) {
  // A skip is an operational event, not a programming error: route it
  // through the leveled logger (so services can silence or capture it) and
  // count it, so recovery drivers and the obs layer can alert on corrupt
  // spills instead of grepping stderr.
  const auto skip = [&](const char* why, const char* detail) {
    ++corrupt_skipped_;
    SVM_LOG_WARN << "CheckpointStore: skipping " << why << " checkpoint " << path
                 << (detail[0] != '\0' ? " (" : "") << detail << (detail[0] != '\0' ? ")" : "");
    svmobs::trace_counter("ckpt_skipped_files", static_cast<double>(corrupt_skipped_));
    return false;
  };
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  if (ec) return skip("unreadable", ec.message().c_str());
  std::ifstream in(path, std::ios::binary);
  std::vector<std::byte> bytes(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(bytes.data()), static_cast<std::streamsize>(bytes.size()));
  if (!in) return skip("unreadable", "");
  try {
    (void)RankCheckpoint::deserialize(bytes);
  } catch (const std::exception& error) {
    return skip("corrupt", error.what());
  }
  out = std::move(bytes);
  return true;
}

CheckpointStore::CheckpointStore(int num_ranks, std::string directory, LoadFromDisk)
    : CheckpointStore(num_ranks, std::move(directory)) {
  for (const auto& entry : std::filesystem::directory_iterator(directory_)) {
    const std::string name = entry.path().filename().string();
    int rank = -1;
    unsigned long long epoch = 0;
    if (std::sscanf(name.c_str(), "ckpt_r%d_e%llu.bin", &rank, &epoch) != 2) continue;
    if (rank < 0 || rank >= num_ranks) continue;
    // Truncated/corrupt/unreadable files are skipped (logged), not loaded:
    // begin_restart() then falls back to an older epoch or a fresh start.
    std::vector<std::byte> bytes;
    if (!read_validated(entry.path().string(), bytes)) continue;
    checkpoints_[rank][epoch] = std::move(bytes);
  }
}

CheckpointStore CheckpointStore::open(int num_ranks, const std::string& directory) {
  // Prvalue return: CheckpointStore owns a mutex and is neither movable nor
  // copyable, so the object must be constructed in place.
  return CheckpointStore(num_ranks, directory, LoadFromDisk{});
}

void CheckpointStore::save(int rank, std::uint64_t epoch, const RankCheckpoint& state) {
  std::vector<std::byte> bytes = state.serialize();
  if (!directory_.empty()) {
    // Write-then-rename so a crash mid-write never leaves a torn file.
    const std::string final_path = file_path(rank, epoch);
    const std::string tmp_path = final_path + ".tmp";
    {
      std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
      out.write(reinterpret_cast<const char*>(bytes.data()),
                static_cast<std::streamsize>(bytes.size()));
      if (!out) throw std::runtime_error("CheckpointStore: cannot write " + tmp_path);
    }
    std::filesystem::rename(tmp_path, final_path);
  }
  std::lock_guard lock(mutex_);
  auto& mine = checkpoints_[rank];
  if (buddy_) {
    auto& replica = buddy_replicas_[rank];
    replica[epoch] = bytes;  // mirrored into rank (rank+1) mod p's memory
    while (replica.size() > 2) replica.erase(replica.begin());
  }
  mine[epoch] = std::move(bytes);
  ++saves_;
  while (mine.size() > 2) {
    if (!directory_.empty()) {
      std::error_code ec;
      std::filesystem::remove(file_path(rank, mine.begin()->first), ec);
    }
    mine.erase(mine.begin());
  }
}

void CheckpointStore::mark_rank_lost(int rank) {
  if (rank < 0 || rank >= num_ranks_)
    throw std::out_of_range("CheckpointStore: rank out of range");
  std::lock_guard lock(mutex_);
  checkpoints_[rank].clear();
  // The dead rank held the buddy replica of its predecessor; that memory is
  // gone too. (If the predecessor later dies as well, its state is therefore
  // unreachable and repartition_from_checkpoints reports no consistent cut.)
  buddy_replicas_[(rank - 1 + num_ranks_) % num_ranks_].clear();
  if (directory_.empty()) return;
  // Disk spills are durable: a replacement process can re-read them.
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(directory_, ec)) {
    const std::string name = entry.path().filename().string();
    int file_rank = -1;
    unsigned long long epoch = 0;
    if (std::sscanf(name.c_str(), "ckpt_r%d_e%llu.bin", &file_rank, &epoch) != 2) continue;
    if (file_rank != rank) continue;
    std::vector<std::byte> bytes;
    if (!read_validated(entry.path().string(), bytes)) continue;
    checkpoints_[rank][epoch] = std::move(bytes);
  }
}

std::optional<std::uint64_t> CheckpointStore::begin_restart() {
  std::lock_guard lock(mutex_);
  restore_epoch_.reset();
  std::optional<std::uint64_t> epoch;
  for (const auto& mine : checkpoints_) {
    if (mine.empty()) return std::nullopt;  // a rank never checkpointed: fresh start
    const std::uint64_t newest = mine.rbegin()->first;
    epoch = epoch ? std::min(*epoch, newest) : newest;
  }
  if (!epoch) return std::nullopt;
  // The pinned epoch must actually be present on every rank (retention keeps
  // two epochs, which covers the one-boundary straggle a failure can cause).
  for (const auto& mine : checkpoints_)
    if (!mine.contains(*epoch)) return std::nullopt;
  for (auto& mine : checkpoints_) {
    for (auto it = mine.begin(); it != mine.end();) {
      if (it->first != *epoch) {
        if (!directory_.empty()) {
          std::error_code ec;
          std::filesystem::remove(
              file_path(static_cast<int>(&mine - checkpoints_.data()), it->first), ec);
        }
        it = mine.erase(it);
      } else {
        ++it;
      }
    }
  }
  restore_epoch_ = epoch;
  return epoch;
}

std::optional<RankCheckpoint> CheckpointStore::restore(int rank) const {
  std::lock_guard lock(mutex_);
  if (!restore_epoch_) return std::nullopt;
  const auto& mine = checkpoints_[rank];
  const auto it = mine.find(*restore_epoch_);
  if (it == mine.end()) return std::nullopt;
  return RankCheckpoint::deserialize(it->second);
}

std::uint64_t CheckpointStore::saves() const {
  std::lock_guard lock(mutex_);
  return saves_;
}

std::vector<std::uint64_t> CheckpointStore::epochs(int rank) const {
  std::lock_guard lock(mutex_);
  std::vector<std::uint64_t> out;
  for (const auto& [epoch, bytes] : checkpoints_[rank]) out.push_back(epoch);
  return out;
}

std::optional<std::uint64_t> repartition_from_checkpoints(const CheckpointStore& source,
                                                          std::size_t num_samples,
                                                          CheckpointStore& target) {
  if (&source == &target)
    throw std::invalid_argument("repartition_from_checkpoints: source and target must differ");
  const int p = source.num_ranks();
  const int s = target.num_ranks();

  // Reachable epochs per source rank: the primary copy when the rank's
  // memory survives, with the buddy replica filling the holes mark_rank_lost
  // punched. Snapshot the candidate byte buffers under the source lock.
  std::vector<std::map<std::uint64_t, std::vector<std::byte>>> reachable(p);
  {
    std::lock_guard lock(source.mutex_);
    for (int r = 0; r < p; ++r) {
      reachable[r] = source.checkpoints_[r];
      for (const auto& [epoch, bytes] : source.buddy_replicas_[r])
        reachable[r].emplace(epoch, bytes);  // primary wins when both exist
      if (reachable[r].empty()) return std::nullopt;
    }
  }

  // Candidate cuts: epochs present on every source rank, newest first.
  std::vector<std::uint64_t> candidates;
  for (auto it = reachable[0].rbegin(); it != reachable[0].rend(); ++it)
    candidates.push_back(it->first);
  for (int r = 1; r < p; ++r)
    std::erase_if(candidates,
                  [&](std::uint64_t e) { return !reachable[r].contains(e); });
  for (const std::uint64_t epoch : candidates) {
    std::vector<RankCheckpoint> olds;
    olds.reserve(p);
    bool usable = true;
    for (int r = 0; r < p && usable; ++r) {
      try {
        olds.push_back(RankCheckpoint::deserialize(reachable[r].at(epoch)));
      } catch (const std::exception&) {
        usable = false;  // corrupt buffer: fall back to an older cut
      }
      if (usable && olds[r].alpha.size() != svmdata::block_range(num_samples, p, r).size())
        usable = false;
      if (usable && r > 0 && olds[r].iterations != olds[0].iterations)
        usable = false;  // not actually a consistent cut
    }
    if (!usable) continue;

    // Stitch the per-sample state back into global arrays...
    std::vector<double> alpha(num_samples), gamma(num_samples);
    std::vector<std::uint8_t> shrunk(num_samples), is_active(num_samples, 0);
    for (int r = 0; r < p; ++r) {
      const svmdata::BlockRange range = svmdata::block_range(num_samples, p, r);
      std::copy(olds[r].alpha.begin(), olds[r].alpha.end(), alpha.begin() + range.begin);
      std::copy(olds[r].gamma.begin(), olds[r].gamma.end(), gamma.begin() + range.begin);
      std::copy(olds[r].shrunk.begin(), olds[r].shrunk.end(), shrunk.begin() + range.begin);
      for (const std::uint32_t a : olds[r].active) is_active[range.begin + a] = 1;
    }
    // ...and re-slice along the target partition. Global scalars carry over
    // verbatim; per-rank work counters are recomputed for the new block
    // (samples_shrunk, min_active) or carried from rank 0 (pass counts).
    for (int nr = 0; nr < s; ++nr) {
      const svmdata::BlockRange range = svmdata::block_range(num_samples, s, nr);
      RankCheckpoint c;
      c.stage = olds[0].stage;
      c.stalls = olds[0].stalls;
      c.iterations = olds[0].iterations;
      c.delta_counter = olds[0].delta_counter;
      c.beta_up = olds[0].beta_up;
      c.beta_low = olds[0].beta_low;
      c.i_up = olds[0].i_up;
      c.i_low = olds[0].i_low;
      c.shrink_passes = olds[0].shrink_passes;
      c.reconstructions = olds[0].reconstructions;
      c.alpha.assign(alpha.begin() + range.begin, alpha.begin() + range.end);
      c.gamma.assign(gamma.begin() + range.begin, gamma.begin() + range.end);
      c.shrunk.assign(shrunk.begin() + range.begin, shrunk.begin() + range.end);
      for (std::size_t i = 0; i < range.size(); ++i)
        if (is_active[range.begin + i]) c.active.push_back(static_cast<std::uint32_t>(i));
      c.samples_shrunk = static_cast<std::uint64_t>(
          std::count_if(c.shrunk.begin(), c.shrunk.end(), [](std::uint8_t f) { return f != 0; }));
      c.min_active = c.active.size();
      target.save(nr, epoch, c);
    }
    return epoch;
  }
  return std::nullopt;
}

}  // namespace svmcore
