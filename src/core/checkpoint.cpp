#include "core/checkpoint.hpp"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>

namespace svmcore {

namespace {

constexpr std::uint32_t kMagic = 0x53564b43;  // "CKVS"
constexpr std::uint32_t kVersion = 1;

template <typename T>
void append_pod(std::vector<std::byte>& out, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  const std::size_t offset = out.size();
  out.resize(offset + sizeof(T));
  std::memcpy(out.data() + offset, &value, sizeof(T));
}

template <typename T>
void append_vector(std::vector<std::byte>& out, const std::vector<T>& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  append_pod(out, static_cast<std::uint64_t>(v.size()));
  const std::size_t offset = out.size();
  out.resize(offset + v.size() * sizeof(T));
  if (!v.empty()) std::memcpy(out.data() + offset, v.data(), v.size() * sizeof(T));
}

class Reader {
 public:
  explicit Reader(const std::vector<std::byte>& bytes) : bytes_(bytes) {}

  template <typename T>
  [[nodiscard]] T pod() {
    static_assert(std::is_trivially_copyable_v<T>);
    require(sizeof(T));
    T value;
    std::memcpy(&value, bytes_.data() + offset_, sizeof(T));
    offset_ += sizeof(T);
    return value;
  }

  template <typename T>
  [[nodiscard]] std::vector<T> vector() {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto count = pod<std::uint64_t>();
    if (count > (bytes_.size() - offset_) / sizeof(T))
      throw std::runtime_error("checkpoint: truncated array");
    std::vector<T> v(count);
    if (count > 0) std::memcpy(v.data(), bytes_.data() + offset_, count * sizeof(T));
    offset_ += count * sizeof(T);
    return v;
  }

  [[nodiscard]] bool exhausted() const noexcept { return offset_ == bytes_.size(); }

 private:
  void require(std::size_t n) const {
    if (n > bytes_.size() - offset_) throw std::runtime_error("checkpoint: truncated buffer");
  }

  const std::vector<std::byte>& bytes_;
  std::size_t offset_ = 0;
};

}  // namespace

std::vector<std::byte> RankCheckpoint::serialize() const {
  std::vector<std::byte> out;
  out.reserve(64 + alpha.size() * 17 + active.size() * 4);
  append_pod(out, kMagic);
  append_pod(out, kVersion);
  append_pod(out, stage);
  append_pod(out, stalls);
  append_pod(out, iterations);
  append_pod(out, delta_counter);
  append_pod(out, beta_up);
  append_pod(out, beta_low);
  append_pod(out, i_up);
  append_pod(out, i_low);
  append_pod(out, shrink_passes);
  append_pod(out, samples_shrunk);
  append_pod(out, reconstructions);
  append_pod(out, min_active);
  append_vector(out, alpha);
  append_vector(out, gamma);
  append_vector(out, shrunk);
  append_vector(out, active);
  return out;
}

RankCheckpoint RankCheckpoint::deserialize(const std::vector<std::byte>& bytes) {
  Reader reader(bytes);
  if (reader.pod<std::uint32_t>() != kMagic)
    throw std::runtime_error("checkpoint: bad magic (not a checkpoint buffer)");
  if (reader.pod<std::uint32_t>() != kVersion)
    throw std::runtime_error("checkpoint: unsupported version");
  RankCheckpoint c;
  c.stage = reader.pod<std::uint32_t>();
  c.stalls = reader.pod<std::uint32_t>();
  c.iterations = reader.pod<std::uint64_t>();
  c.delta_counter = reader.pod<std::uint64_t>();
  c.beta_up = reader.pod<double>();
  c.beta_low = reader.pod<double>();
  c.i_up = reader.pod<std::int64_t>();
  c.i_low = reader.pod<std::int64_t>();
  c.shrink_passes = reader.pod<std::uint64_t>();
  c.samples_shrunk = reader.pod<std::uint64_t>();
  c.reconstructions = reader.pod<std::uint64_t>();
  c.min_active = reader.pod<std::uint64_t>();
  c.alpha = reader.vector<double>();
  c.gamma = reader.vector<double>();
  c.shrunk = reader.vector<std::uint8_t>();
  c.active = reader.vector<std::uint32_t>();
  if (!reader.exhausted()) throw std::runtime_error("checkpoint: trailing bytes");
  if (c.gamma.size() != c.alpha.size() || c.shrunk.size() != c.alpha.size() ||
      c.active.size() > c.alpha.size())
    throw std::runtime_error("checkpoint: inconsistent array lengths");
  return c;
}

CheckpointStore::CheckpointStore(int num_ranks, std::string directory)
    : num_ranks_(num_ranks), directory_(std::move(directory)), checkpoints_(num_ranks) {
  if (num_ranks <= 0) throw std::invalid_argument("CheckpointStore: num_ranks must be positive");
  if (!directory_.empty()) std::filesystem::create_directories(directory_);
}

std::string CheckpointStore::file_path(int rank, std::uint64_t epoch) const {
  return directory_ + "/ckpt_r" + std::to_string(rank) + "_e" + std::to_string(epoch) + ".bin";
}

CheckpointStore::CheckpointStore(int num_ranks, std::string directory, LoadFromDisk)
    : CheckpointStore(num_ranks, std::move(directory)) {
  for (const auto& entry : std::filesystem::directory_iterator(directory_)) {
    const std::string name = entry.path().filename().string();
    int rank = -1;
    unsigned long long epoch = 0;
    if (std::sscanf(name.c_str(), "ckpt_r%d_e%llu.bin", &rank, &epoch) != 2) continue;
    if (rank < 0 || rank >= num_ranks) continue;
    std::ifstream in(entry.path(), std::ios::binary);
    std::vector<std::byte> bytes(static_cast<std::size_t>(entry.file_size()));
    in.read(reinterpret_cast<char*>(bytes.data()), static_cast<std::streamsize>(bytes.size()));
    if (!in) continue;  // unreadable/torn file: treat as absent
    checkpoints_[rank][epoch] = std::move(bytes);
  }
}

CheckpointStore CheckpointStore::open(int num_ranks, const std::string& directory) {
  // Prvalue return: CheckpointStore owns a mutex and is neither movable nor
  // copyable, so the object must be constructed in place.
  return CheckpointStore(num_ranks, directory, LoadFromDisk{});
}

void CheckpointStore::save(int rank, std::uint64_t epoch, const RankCheckpoint& state) {
  std::vector<std::byte> bytes = state.serialize();
  if (!directory_.empty()) {
    // Write-then-rename so a crash mid-write never leaves a torn file.
    const std::string final_path = file_path(rank, epoch);
    const std::string tmp_path = final_path + ".tmp";
    {
      std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
      out.write(reinterpret_cast<const char*>(bytes.data()),
                static_cast<std::streamsize>(bytes.size()));
      if (!out) throw std::runtime_error("CheckpointStore: cannot write " + tmp_path);
    }
    std::filesystem::rename(tmp_path, final_path);
  }
  std::lock_guard lock(mutex_);
  auto& mine = checkpoints_[rank];
  mine[epoch] = std::move(bytes);
  ++saves_;
  while (mine.size() > 2) {
    if (!directory_.empty()) {
      std::error_code ec;
      std::filesystem::remove(file_path(rank, mine.begin()->first), ec);
    }
    mine.erase(mine.begin());
  }
}

std::optional<std::uint64_t> CheckpointStore::begin_restart() {
  std::lock_guard lock(mutex_);
  restore_epoch_.reset();
  std::optional<std::uint64_t> epoch;
  for (const auto& mine : checkpoints_) {
    if (mine.empty()) return std::nullopt;  // a rank never checkpointed: fresh start
    const std::uint64_t newest = mine.rbegin()->first;
    epoch = epoch ? std::min(*epoch, newest) : newest;
  }
  if (!epoch) return std::nullopt;
  // The pinned epoch must actually be present on every rank (retention keeps
  // two epochs, which covers the one-boundary straggle a failure can cause).
  for (const auto& mine : checkpoints_)
    if (!mine.contains(*epoch)) return std::nullopt;
  for (auto& mine : checkpoints_) {
    for (auto it = mine.begin(); it != mine.end();) {
      if (it->first != *epoch) {
        if (!directory_.empty()) {
          std::error_code ec;
          std::filesystem::remove(
              file_path(static_cast<int>(&mine - checkpoints_.data()), it->first), ec);
        }
        it = mine.erase(it);
      } else {
        ++it;
      }
    }
  }
  restore_epoch_ = epoch;
  return epoch;
}

std::optional<RankCheckpoint> CheckpointStore::restore(int rank) const {
  std::lock_guard lock(mutex_);
  if (!restore_epoch_) return std::nullopt;
  const auto& mine = checkpoints_[rank];
  const auto it = mine.find(*restore_epoch_);
  if (it == mine.end()) return std::nullopt;
  return RankCheckpoint::deserialize(it->second);
}

std::uint64_t CheckpointStore::saves() const {
  std::lock_guard lock(mutex_);
  return saves_;
}

std::vector<std::uint64_t> CheckpointStore::epochs(int rank) const {
  std::lock_guard lock(mutex_);
  std::vector<std::uint64_t> out;
  for (const auto& [epoch, bytes] : checkpoints_[rank]) out.push_back(epoch);
  return out;
}

}  // namespace svmcore
