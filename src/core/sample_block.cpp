#include "core/sample_block.hpp"

#include <cstring>
#include <stdexcept>

namespace svmcore {

namespace {

template <typename T>
void append(std::vector<std::byte>& out, std::span<const T> data) {
  const std::size_t at = out.size();
  out.resize(at + data.size_bytes());
  if (!data.empty()) std::memcpy(out.data() + at, data.data(), data.size_bytes());
}

template <typename T>
std::vector<T> consume(std::span<const std::byte>& bytes, std::size_t count) {
  const std::size_t want = count * sizeof(T);
  if (bytes.size() < want) throw std::runtime_error("PackedSamples: truncated buffer");
  std::vector<T> data(count);
  if (want != 0) std::memcpy(data.data(), bytes.data(), want);
  bytes = bytes.subspan(want);
  return data;
}

/// consume() into an existing vector, reusing its capacity.
template <typename T>
void consume_into(std::span<const std::byte>& bytes, std::size_t count, std::vector<T>& out) {
  const std::size_t want = count * sizeof(T);
  if (bytes.size() < want) throw std::runtime_error("PackedSamples: truncated buffer");
  out.resize(count);
  if (want != 0) std::memcpy(out.data(), bytes.data(), want);
  bytes = bytes.subspan(want);
}

}  // namespace

void PackedSamples::clear() noexcept {
  index_.clear();
  y_.clear();
  alpha_.clear();
  sq_norm_.clear();
  offsets_.clear();
  offsets_.push_back(0);
  features_.clear();
}

void PackedSamples::reserve(std::size_t samples, std::size_t features) {
  index_.reserve(samples);
  y_.reserve(samples);
  alpha_.reserve(samples);
  sq_norm_.reserve(samples);
  offsets_.reserve(samples + 1);
  features_.reserve(features);
}

void PackedSamples::add(std::int64_t global_index, double y, double alpha, double sq_norm,
                        std::span<const svmdata::Feature> features) {
  index_.push_back(global_index);
  y_.push_back(y);
  alpha_.push_back(alpha);
  sq_norm_.push_back(sq_norm);
  features_.insert(features_.end(), features.begin(), features.end());
  offsets_.push_back(features_.size());
}

std::size_t PackedSamples::packed_bytes() const noexcept {
  return 2 * sizeof(std::uint64_t) + index_.size() * sizeof(std::int64_t) +
         3 * y_.size() * sizeof(double) + offsets_.size() * sizeof(std::uint64_t) +
         features_.size() * sizeof(svmdata::Feature);
}

std::vector<std::byte> PackedSamples::pack() const {
  std::vector<std::byte> out;
  pack_into(out);
  return out;
}

void PackedSamples::pack_into(std::vector<std::byte>& out) const {
  out.clear();
  out.reserve(packed_bytes());
  const std::uint64_t header[2] = {index_.size(), features_.size()};
  append(out, std::span<const std::uint64_t>(header, 2));
  append(out, std::span<const std::int64_t>(index_));
  append(out, std::span<const double>(y_));
  append(out, std::span<const double>(alpha_));
  append(out, std::span<const double>(sq_norm_));
  append(out, std::span<const std::uint64_t>(offsets_));
  append(out, std::span<const svmdata::Feature>(features_));
}

PackedSamples PackedSamples::unpack(std::span<const std::byte> bytes) {
  PackedSamples out;
  unpack_into(bytes, out);
  return out;
}

void PackedSamples::unpack_into(std::span<const std::byte> bytes, PackedSamples& out) {
  try {
    const auto header = consume<std::uint64_t>(bytes, 2);
    const std::size_t samples = header[0];
    const std::size_t features = header[1];
    consume_into(bytes, samples, out.index_);
    consume_into(bytes, samples, out.y_);
    consume_into(bytes, samples, out.alpha_);
    consume_into(bytes, samples, out.sq_norm_);
    consume_into(bytes, samples + 1, out.offsets_);
    consume_into(bytes, features, out.features_);
    if (!bytes.empty()) throw std::runtime_error("PackedSamples: trailing bytes");
    if (out.offsets_.front() != 0 || out.offsets_.back() != features)
      throw std::runtime_error("PackedSamples: corrupt offsets");
  } catch (...) {
    out.clear();  // never leave a half-written block behind
    throw;
  }
}

}  // namespace svmcore
