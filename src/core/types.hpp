// Shared solver types: parameters, per-sample index-set classification
// (Eq. 4), termination statistics. Used by the sequential solver, the
// parallel "Original" solver (Algorithm 2) and the shrinking solvers
// (Algorithms 4 and 5).
#pragma once

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "kernel/kernel.hpp"
#include "kernel/kernel_engine.hpp"

namespace svmcore {

/// Which distributed training algorithm drives the dual optimization.
/// `smo` is the paper's shrinking-SMO (one working-set broadcast per
/// iteration); `pbm` is Parallel Block Minimization (Hsieh, Si, Dhillon —
/// arXiv:1608.02010): per-block subproblem re-solves with one delta
/// allreduce per outer round, trading iterations for communication.
enum class SolverAlgo : std::uint8_t { smo, pbm };

[[nodiscard]] inline const char* to_string(SolverAlgo algo) noexcept {
  return algo == SolverAlgo::pbm ? "pbm" : "smo";
}

[[nodiscard]] inline SolverAlgo solver_algo_from_string(const std::string& name) {
  if (name == "smo") return SolverAlgo::smo;
  if (name == "pbm") return SolverAlgo::pbm;
  throw std::invalid_argument("unknown solver algorithm '" + name + "' (expected smo|pbm)");
}

/// Wire encoding of a PBM round's alpha delta. `dense` allreduces the full
/// n-vector (one tree collective, partition-independent arithmetic —
/// required for bit-identical shrink-world recovery); `sparse` circulates
/// only the changed samples on the pipelined ring from PR 4 (cheaper when
/// few alphas move, but the regrouping is partition-dependent);
/// `auto_select` picks per round from the globally agreed nnz count using
/// the alpha-beta model.
enum class PbmDeltaEncoding : std::uint8_t { auto_select, dense, sparse };

[[nodiscard]] inline const char* to_string(PbmDeltaEncoding encoding) noexcept {
  switch (encoding) {
    case PbmDeltaEncoding::dense: return "dense";
    case PbmDeltaEncoding::sparse: return "sparse";
    case PbmDeltaEncoding::auto_select: break;
  }
  return "auto";
}

struct SolverParams {
  double C = 1.0;  ///< box constraint
  svmkernel::KernelParams kernel{};
  double eps = 1e-3;  ///< user tolerance; terminate when beta_up + 2*eps >= beta_low
  std::uint64_t max_iterations = 100'000'000;  ///< safety valve, not a tuning knob

  /// Kernel-evaluation strategy for the solver hot paths. `dense_scatter`
  /// (default) is bit-identical to `reference` — see kernel_engine.hpp — and
  /// so is `simd` at flavor f64, so this is a performance knob, never a
  /// results knob.
  svmkernel::EngineBackend engine_backend = svmkernel::EngineBackend::dense_scatter;

  /// Resident row precision of the engine (row_store.hpp). TRAINING REQUIRES
  /// f64: the solvers throw on any reduced-precision flavor so optimization
  /// stays bit-exact double. f32/f16/i8 are for the prediction path and the
  /// baselines' cached Q rows, where they are accuracy-gated.
  svmkernel::RowFlavor engine_flavor = svmkernel::RowFlavor::f64;

  /// Per-class cost weights (libsvm's -wi): the box constraint of a sample
  /// with label y is C * (y > 0 ? weight_positive : weight_negative). Used
  /// for imbalanced datasets; 1.0/1.0 is the paper's (unweighted) setting.
  double weight_positive = 1.0;
  double weight_negative = 1.0;

  /// Distributed training algorithm (see SolverAlgo). Ignored by the
  /// sequential solver and the baselines.
  SolverAlgo algo = SolverAlgo::smo;

  /// PBM: number of dual blocks. 0 means "one block per launch rank",
  /// resolved by the trainer before the SPMD region so the block count —
  /// and with it the optimization trajectory — stays fixed across
  /// shrink-world recoveries and restarts.
  int pbm_blocks = 0;

  /// PBM: cap on inner SMO iterations per block per round. 0 picks a
  /// heuristic from the block size. Small caps communicate more rounds;
  /// large caps over-solve stale subproblems.
  std::uint64_t pbm_inner_iterations = 0;

  /// PBM: safety valve on outer rounds (like max_iterations for SMO).
  std::uint64_t pbm_max_rounds = 10'000;

  /// PBM: delta wire encoding (see PbmDeltaEncoding).
  PbmDeltaEncoding pbm_delta = PbmDeltaEncoding::dense;

  [[nodiscard]] double C_of(double y) const noexcept {
    return C * (y > 0.0 ? weight_positive : weight_negative);
  }
};

/// Index-set membership from Eq. (4). A sample is in exactly one of the five
/// sets given (y, alpha); alpha hits the bounds {0, C} exactly because the
/// pair update clips with assignment, so exact comparisons are sound.
enum class IndexSet : std::uint8_t { I0, I1, I2, I3, I4 };

[[nodiscard]] inline IndexSet classify(double y, double alpha, double C) noexcept {
  if (alpha > 0.0 && alpha < C) return IndexSet::I0;
  if (y > 0.0) return alpha == 0.0 ? IndexSet::I1 : IndexSet::I3;
  return alpha == 0.0 ? IndexSet::I4 : IndexSet::I2;
}

/// I_up = I0 u I1 u I2: samples eligible to define beta_up = min gamma.
[[nodiscard]] inline bool in_up_set(IndexSet s) noexcept {
  return s == IndexSet::I0 || s == IndexSet::I1 || s == IndexSet::I2;
}

/// I_low = I0 u I3 u I4: samples eligible to define beta_low = max gamma.
[[nodiscard]] inline bool in_low_set(IndexSet s) noexcept {
  return s == IndexSet::I0 || s == IndexSet::I3 || s == IndexSet::I4;
}

/// Execution statistics; in the distributed solvers, counter fields are this
/// rank's share and the times are this rank's wall clock.
struct SolverStats {
  std::uint64_t iterations = 0;
  std::uint64_t kernel_evaluations = 0;
  std::uint64_t shrink_passes = 0;       ///< number of times the shrink test ran
  std::uint64_t samples_shrunk = 0;      ///< cumulative samples removed
  std::uint64_t reconstructions = 0;     ///< gradient-reconstruction rounds
  double solve_seconds = 0.0;            ///< total wall time in the solver
  double reconstruction_seconds = 0.0;   ///< wall time inside Algorithm 3
  std::uint64_t recon_kernel_evaluations = 0;  ///< kernel evals inside Algorithm 3
  // Pipelined-reconstruction accounting (see gradient_reconstruction.cpp):
  // ring steps executed, how many overlapped an exchange with compute, the
  // modeled comm seconds of the ring exchanges (gross, before crediting),
  // the portion hidden behind compute (max(compute, comm) charging), the
  // engine counters attributable to reconstruction, and how many query-row
  // scatters the adaptive orientation avoided versus the one-per-stale-
  // sample streaming path.
  std::uint64_t recon_ring_steps = 0;
  std::uint64_t recon_overlapped_steps = 0;
  double recon_comm_seconds = 0.0;
  double recon_overlapped_seconds = 0.0;
  std::uint64_t recon_scatter_builds = 0;
  std::uint64_t recon_bytes_streamed = 0;
  std::uint64_t recon_scatter_builds_saved = 0;
  double final_beta_up = std::numeric_limits<double>::quiet_NaN();
  double final_beta_low = std::numeric_limits<double>::quiet_NaN();
  std::size_t active_at_end = 0;         ///< active (non-shrunk) samples at exit
  std::size_t min_active = 0;            ///< smallest active-set size seen (this rank)
  bool converged = false;                ///< false only if max_iterations hit
  // KernelEngine counters (see EngineStats): samples through the fused
  // up/low pair path, query-row scatters (dense backends only), and CSR
  // bytes the batched ops streamed.
  std::uint64_t engine_pair_evals = 0;
  std::uint64_t engine_scatter_builds = 0;
  std::uint64_t engine_bytes_streamed = 0;
  /// (iteration, global active samples) samples; filled on rank 0 when
  /// DistributedConfig::trace_active_interval > 0.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> active_trace;
};

}  // namespace svmcore
