#include "core/model.hpp"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace svmcore {

SvmModel::SvmModel(svmkernel::KernelParams kernel, svmdata::CsrMatrix support_vectors,
                   std::vector<double> coefficients, double beta)
    : kernel_(kernel),
      support_vectors_(std::move(support_vectors)),
      coefficients_(std::move(coefficients)),
      beta_(beta) {
  if (support_vectors_.rows() != coefficients_.size())
    throw std::invalid_argument("SvmModel: support vector / coefficient count mismatch");
  sv_sq_norms_ = support_vectors_.row_squared_norms();
}

double SvmModel::decision_value(std::span<const svmdata::Feature> x) const {
  const svmkernel::Kernel kernel(kernel_);
  const double sq_x = svmdata::CsrMatrix::squared_norm(x);
  double sum = 0.0;
  for (std::size_t j = 0; j < coefficients_.size(); ++j)
    sum += coefficients_[j] * kernel.eval(support_vectors_.row(j), x, sv_sq_norms_[j], sq_x);
  return sum - beta_;
}

svmkernel::KernelEngine SvmModel::make_engine(svmkernel::EngineBackend backend,
                                              svmkernel::RowFlavor flavor) const {
  return svmkernel::KernelEngine(kernel_, support_vectors_, backend, sv_sq_norms_, flavor);
}

double SvmModel::decision_value(std::span<const svmdata::Feature> x,
                                svmkernel::KernelEngine& engine) const {
  const double sq_x = svmdata::CsrMatrix::squared_norm(x);
  // accumulate_rows reproduces the historical begin_query/query_row loop
  // term by term on the scalar backends and sweeps the RowStore panels in
  // the same ascending order under simd — bit-identical at f64.
  return engine.accumulate_rows(x, sq_x, coefficients_) - beta_;
}

std::vector<double> SvmModel::predict_all(const svmdata::CsrMatrix& X, bool parallel) const {
  std::vector<double> out(X.rows());
  const auto n = static_cast<std::ptrdiff_t>(X.rows());
#pragma omp parallel for schedule(static) if (parallel)
  for (std::ptrdiff_t i = 0; i < n; ++i)
    out[static_cast<std::size_t>(i)] = predict(X.row(static_cast<std::size_t>(i)));
  return out;
}

double SvmModel::accuracy(const svmdata::Dataset& test, bool parallel) const {
  if (test.size() == 0) return 0.0;
  const std::vector<double> predicted = predict_all(test.X, parallel);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < test.size(); ++i)
    if (predicted[i] == test.y[i]) ++correct;
  return static_cast<double>(correct) / static_cast<double>(test.size());
}

namespace {
constexpr char kMagic[] = "shrinksvm-model-v1";
}

void SvmModel::save(std::ostream& out) const {
  out << kMagic << '\n';
  out << "kernel " << svmkernel::to_string(kernel_.type) << '\n';
  char buffer[96];
  std::snprintf(buffer, sizeof(buffer), "gamma %.17g\ncoef0 %.17g\ndegree %d\nbeta %.17g\n", kernel_.gamma,
                kernel_.coef0, kernel_.degree, beta_);
  out << buffer;
  out << "nsv " << coefficients_.size() << '\n';
  for (std::size_t j = 0; j < coefficients_.size(); ++j) {
    std::snprintf(buffer, sizeof(buffer), "%.17g", coefficients_[j]);
    out << buffer;
    for (const svmdata::Feature& f : support_vectors_.row(j)) {
      std::snprintf(buffer, sizeof(buffer), " %d:%.17g", f.index, f.value);
      out << buffer;
    }
    out << '\n';
  }
}

void SvmModel::save_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("SvmModel::save_file: cannot open " + path);
  save(out);
}

SvmModel SvmModel::load(std::istream& in) {
  std::string line;
  if (!std::getline(in, line) || line != kMagic)
    throw std::runtime_error("SvmModel::load: bad magic (not a shrinksvm model)");

  svmkernel::KernelParams params;
  double beta = 0.0;
  std::size_t nsv = 0;
  std::string key;
  for (int field = 0; field < 6; ++field) {
    if (!(in >> key)) throw std::runtime_error("SvmModel::load: truncated header");
    if (key == "kernel") {
      std::string name;
      in >> name;
      params.type = svmkernel::kernel_type_from_string(name);
    } else if (key == "gamma") {
      in >> params.gamma;
    } else if (key == "coef0") {
      in >> params.coef0;
    } else if (key == "degree") {
      in >> params.degree;
    } else if (key == "beta") {
      in >> beta;
    } else if (key == "nsv") {
      in >> nsv;
    } else {
      throw std::runtime_error("SvmModel::load: unknown header field '" + key + "'");
    }
  }
  std::getline(in, line);  // consume end of header line

  svmdata::CsrMatrix sv;
  std::vector<double> coef;
  coef.reserve(nsv);
  std::vector<svmdata::Feature> row;
  for (std::size_t j = 0; j < nsv; ++j) {
    if (!std::getline(in, line))
      throw std::runtime_error("SvmModel::load: truncated support vector list");
    std::istringstream fields(line);
    double c = 0.0;
    if (!(fields >> c)) throw std::runtime_error("SvmModel::load: bad coefficient");
    coef.push_back(c);
    row.clear();
    std::string token;
    while (fields >> token) {
      const auto colon = token.find(':');
      if (colon == std::string::npos)
        throw std::runtime_error("SvmModel::load: bad feature token '" + token + "'");
      row.push_back(svmdata::Feature{std::stoi(token.substr(0, colon)),
                                     std::stod(token.substr(colon + 1))});
    }
    sv.add_row(row);
  }
  return SvmModel(params, std::move(sv), std::move(coef), beta);
}

SvmModel SvmModel::load_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("SvmModel::load_file: cannot open " + path);
  return load(in);
}

}  // namespace svmcore
