// One-vs-one multiclass classification on top of the binary solvers —
// libsvm's multiclass strategy. The paper evaluates binary problems (MNIST
// and USPS are binarized), but the public datasets are natively multiclass;
// a release-quality SVM library must handle them. For k classes, k(k-1)/2
// binary machines are trained (each on the subset of two classes) and
// prediction is by majority vote with decision-value tie-breaking.
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "core/heuristics.hpp"
#include "core/model.hpp"
#include "core/types.hpp"
#include "data/sparse.hpp"

namespace svmcore {

/// A labelled dataset with arbitrary (not necessarily ±1) class labels.
using MulticlassDataset = svmdata::MultiClassData;

struct MulticlassTrainOptions {
  Heuristic heuristic{};
  int num_ranks = 1;
};

class MulticlassModel {
 public:
  MulticlassModel() = default;
  /// `pairwise[k]` separates classes (pair_first[k], pair_second[k]), with
  /// +1 meaning the first class of the pair.
  MulticlassModel(std::vector<double> classes, std::vector<SvmModel> pairwise);

  [[nodiscard]] std::size_t num_classes() const noexcept { return classes_.size(); }
  [[nodiscard]] const std::vector<double>& classes() const noexcept { return classes_; }
  [[nodiscard]] const std::vector<SvmModel>& machines() const noexcept { return pairwise_; }

  /// Majority vote over the k(k-1)/2 machines; ties break toward the class
  /// with the larger summed |decision value| margin.
  [[nodiscard]] double predict(std::span<const svmdata::Feature> x) const;

  [[nodiscard]] std::vector<double> predict_all(const svmdata::CsrMatrix& X) const;

  [[nodiscard]] double accuracy(const MulticlassDataset& test) const;

  // Versioned text container wrapping the binary model format.
  void save(std::ostream& out) const;
  void save_file(const std::string& path) const;
  [[nodiscard]] static MulticlassModel load(std::istream& in);
  [[nodiscard]] static MulticlassModel load_file(const std::string& path);

 private:
  std::vector<double> classes_;     ///< distinct labels, ascending
  std::vector<SvmModel> pairwise_;  ///< index (a,b), a<b: a*(k)-... row-major upper triangle
};

/// Trains the one-vs-one ensemble. Throws std::invalid_argument if fewer
/// than two classes are present.
[[nodiscard]] MulticlassModel train_one_vs_one(const MulticlassDataset& dataset,
                                               const SolverParams& params,
                                               const MulticlassTrainOptions& options = {});

}  // namespace svmcore
