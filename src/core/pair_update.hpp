// The analytic two-variable optimization step shared by every SMO variant
// (Eq. 6/7 and Platt's clipping). Pure function of the pair's state, so the
// sequential and distributed solvers compute bit-identical updates.
#pragma once

namespace svmcore {

struct PairState {
  double y_up, y_low;
  double alpha_up, alpha_low;
  double gamma_up, gamma_low;  ///< current gradients (F values) of the pair
  double k_uu, k_ll, k_ul;     ///< kernel values K(up,up), K(low,low), K(up,low)
  double C_up, C_low;          ///< per-sample box constraints (class-weighted C)
};

struct PairResult {
  double alpha_up;   ///< updated, clipped value
  double alpha_low;  ///< updated, clipped value
  bool progress;     ///< false if the pair could not move (degenerate)
};

/// Solves the two-variable subproblem for the worst-violating pair with
/// per-sample box constraints C_up/C_low (equal in the unweighted case).
/// rho = 2*K_ul - K_uu - K_ll (Eq. 7) is <= 0 for PSD kernels; the degenerate
/// rho >= 0 case (duplicate samples / indefinite kernels) is regularized to a
/// tiny negative curvature, libsvm's TAU approach to Platt's "eta >= 0" case.
[[nodiscard]] inline PairResult solve_pair(const PairState& s) noexcept {
  constexpr double kTau = 1e-12;
  double eta = s.k_uu + s.k_ll - 2.0 * s.k_ul;  // -rho
  if (eta <= 0.0) eta = kTau;

  // Unconstrained step along alpha_low (Platt's alpha_2), Eq. (6):
  // gamma_up is the minimum (F_1 = E_1), gamma_low the maximum (F_2 = E_2).
  double alpha_low_new = s.alpha_low + s.y_low * (s.gamma_up - s.gamma_low) / eta;

  // Clip to the feasible segment of the equality constraint, honouring the
  // two samples' (possibly different, class-weighted) box constraints.
  double low_bound;
  double high_bound;
  if (s.y_up != s.y_low) {
    const double diff = s.alpha_low - s.alpha_up;  // conserved quantity
    low_bound = diff > 0.0 ? diff : 0.0;
    high_bound = s.C_up + diff < s.C_low ? s.C_up + diff : s.C_low;
  } else {
    const double sum = s.alpha_low + s.alpha_up;  // conserved quantity
    low_bound = sum - s.C_up > 0.0 ? sum - s.C_up : 0.0;
    high_bound = sum < s.C_low ? sum : s.C_low;
  }
  if (alpha_low_new < low_bound)
    alpha_low_new = low_bound;
  else if (alpha_low_new > high_bound)
    alpha_low_new = high_bound;

  // Second line of Eq. (6): alpha_up moves to preserve sum alpha_i y_i = 0.
  double alpha_up_new = s.alpha_up + s.y_up * s.y_low * (s.alpha_low - alpha_low_new);

  // Snap to the exact bounds so the I0..I4 classification (exact comparisons
  // against 0 and C) is immune to the last-ulp rounding of the clip.
  const double snap_low = 1e-12 * s.C_low;
  if (alpha_low_new < snap_low) alpha_low_new = 0.0;
  if (alpha_low_new > s.C_low - snap_low) alpha_low_new = s.C_low;
  const double snap_up = 1e-12 * s.C_up;
  if (alpha_up_new < snap_up) alpha_up_new = 0.0;
  if (alpha_up_new > s.C_up - snap_up) alpha_up_new = s.C_up;

  const bool progress = alpha_low_new != s.alpha_low || alpha_up_new != s.alpha_up;
  return PairResult{alpha_up_new, alpha_low_new, progress};
}

}  // namespace svmcore
