#include "core/sequential_smo.hpp"

#include <limits>
#include <stdexcept>

#include "core/pair_update.hpp"
#include "kernel/kernel_engine.hpp"
#include "util/timer.hpp"

namespace svmcore {

SequentialResult solve_sequential(const svmdata::Dataset& dataset, const SolverParams& params) {
  dataset.validate();
  const std::size_t n = dataset.size();
  if (n < 2) throw std::invalid_argument("solve_sequential: need at least two samples");

  // Training stays bit-exact double (see SolverParams::engine_flavor).
  if (params.engine_flavor != svmkernel::RowFlavor::f64)
    throw std::invalid_argument(
        "solve_sequential: training requires engine_flavor f64 (got '" +
        svmkernel::to_string(params.engine_flavor) + "')");
  const svmkernel::Kernel kernel(params.kernel);
  svmkernel::KernelEngine engine(kernel, dataset.X, params.engine_backend);
  const auto& X = dataset.X;
  const std::vector<double>& y = dataset.y;
  std::vector<double> k_up(n);
  std::vector<double> k_low(n);

  SequentialResult result;
  result.alpha.assign(n, 0.0);
  std::vector<double>& alpha = result.alpha;
  std::vector<double> gamma(n);
  for (std::size_t i = 0; i < n; ++i) gamma[i] = -y[i];  // alpha = 0 => gamma = -y

  svmutil::Timer total;
  const double two_eps = 2.0 * params.eps;

  while (true) {
    // Worst-violator selection over the index sets (Eq. 3): first index
    // achieving the extremum wins, matching the MINLOC/MAXLOC tie-break of
    // the distributed solver.
    double beta_up = std::numeric_limits<double>::infinity();
    double beta_low = -std::numeric_limits<double>::infinity();
    std::size_t i_up = n;
    std::size_t i_low = n;
    for (std::size_t i = 0; i < n; ++i) {
      const IndexSet set = classify(y[i], alpha[i], params.C_of(y[i]));
      if (in_up_set(set) && gamma[i] < beta_up) {
        beta_up = gamma[i];
        i_up = i;
      }
      if (in_low_set(set) && gamma[i] > beta_low) {
        beta_low = gamma[i];
        i_low = i;
      }
    }
    result.stats.final_beta_up = beta_up;
    result.stats.final_beta_low = beta_low;

    if (i_up == n || i_low == n)
      throw std::invalid_argument("solve_sequential: dataset must contain both classes");
    if (beta_up + two_eps >= beta_low) {
      result.stats.converged = true;
      break;
    }
    if (result.stats.iterations >= params.max_iterations) break;

    const auto row_up = X.row(i_up);
    const auto row_low = X.row(i_low);
    const double sq_up = engine.sq_norm(i_up);
    const double sq_low = engine.sq_norm(i_low);
    const PairState state{
        y[i_up],       y[i_low],      alpha[i_up],
        alpha[i_low],  gamma[i_up],   gamma[i_low],
        engine.eval_one(row_up, row_up, sq_up, sq_up),
        engine.eval_one(row_low, row_low, sq_low, sq_low),
        engine.eval_one(row_up, row_low, sq_up, sq_low),
        params.C_of(y[i_up]),
        params.C_of(y[i_low])};
    const PairResult update = solve_pair(state);
    if (!update.progress) break;  // degenerate pair; cannot move further

    const double delta_up = update.alpha_up - alpha[i_up];
    const double delta_low = update.alpha_low - alpha[i_low];
    alpha[i_up] = update.alpha_up;
    alpha[i_low] = update.alpha_low;

    // Gradient update, Eq. (2), for every sample: one fused engine pass
    // computes both kernel columns, then the same expression shape as the
    // distributed gamma loop (bitwise parity with it is test-enforced).
    const double coef_up = y[i_up] * delta_up;
    const double coef_low = y[i_low] * delta_low;
    engine.eval_pair_range(row_up, sq_up, row_low, sq_low, 0, n, k_up, k_low);
    for (std::size_t i = 0; i < n; ++i)
      gamma[i] += coef_up * k_up[i] + coef_low * k_low[i];
    ++result.stats.iterations;
  }

  // Threshold beta (Section III): average gamma over I0, else the midpoint.
  double sum_i0 = 0.0;
  std::size_t count_i0 = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (classify(y[i], alpha[i], params.C_of(y[i])) == IndexSet::I0) {
      sum_i0 += gamma[i];
      ++count_i0;
    }
  }
  result.beta = count_i0 > 0
                    ? sum_i0 / static_cast<double>(count_i0)
                    : 0.5 * (result.stats.final_beta_low + result.stats.final_beta_up);

  result.stats.kernel_evaluations = kernel.evaluations();
  result.stats.solve_seconds = total.seconds();
  result.stats.active_at_end = n;
  return result;
}

BlockSolveResult solve_sequential_block(const svmdata::Dataset& dataset,
                                        const SolverParams& params,
                                        svmkernel::KernelEngine& engine, std::size_t begin,
                                        std::size_t end, std::span<double> alpha,
                                        std::span<double> gamma, double tolerance,
                                        std::uint64_t max_iterations) {
  const std::size_t m = end - begin;
  if (alpha.size() != m || gamma.size() != m)
    throw std::invalid_argument("solve_sequential_block: alpha/gamma must match the block");
  const auto& X = dataset.X;
  const std::vector<double>& y = dataset.y;
  std::vector<double> k_up(m);
  std::vector<double> k_low(m);

  BlockSolveResult result;
  while (true) {
    // Same first-index-wins worst-violator scan as solve_sequential,
    // restricted to the block's own samples.
    double beta_up = std::numeric_limits<double>::infinity();
    double beta_low = -std::numeric_limits<double>::infinity();
    std::size_t i_up = m;
    std::size_t i_low = m;
    for (std::size_t i = 0; i < m; ++i) {
      const std::size_t g = begin + i;
      const IndexSet set = classify(y[g], alpha[i], params.C_of(y[g]));
      if (in_up_set(set) && gamma[i] < beta_up) {
        beta_up = gamma[i];
        i_up = i;
      }
      if (in_low_set(set) && gamma[i] > beta_low) {
        beta_low = gamma[i];
        i_low = i;
      }
    }
    result.beta_up = beta_up;
    result.beta_low = beta_low;

    // One-class (or empty-side) block: no movable pair exists. Not an error
    // here — PBM's cross-block polishing handles the violating pairs that
    // span blocks.
    if (i_up == m || i_low == m) {
      result.reached_tolerance = true;
      break;
    }
    if (beta_up + tolerance >= beta_low) {
      result.reached_tolerance = true;
      break;
    }
    if (result.iterations >= max_iterations) break;

    const std::size_t g_up = begin + i_up;
    const std::size_t g_low = begin + i_low;
    const auto row_up = X.row(g_up);
    const auto row_low = X.row(g_low);
    const double sq_up = engine.sq_norm(g_up);
    const double sq_low = engine.sq_norm(g_low);
    const PairState state{
        y[g_up],      y[g_low],    alpha[i_up],
        alpha[i_low], gamma[i_up], gamma[i_low],
        engine.eval_one(row_up, row_up, sq_up, sq_up),
        engine.eval_one(row_low, row_low, sq_low, sq_low),
        engine.eval_one(row_up, row_low, sq_up, sq_low),
        params.C_of(y[g_up]),
        params.C_of(y[g_low])};
    const PairResult update = solve_pair(state);
    if (!update.progress) break;

    const double delta_up = update.alpha_up - alpha[i_up];
    const double delta_low = update.alpha_low - alpha[i_low];
    alpha[i_up] = update.alpha_up;
    alpha[i_low] = update.alpha_low;
    result.progress = true;

    // Block-local gradient refresh; the same fused-pair expression shape as
    // solve_sequential, so a block covering [0, n) reproduces it bitwise.
    const double coef_up = y[g_up] * delta_up;
    const double coef_low = y[g_low] * delta_low;
    engine.eval_pair_range(row_up, sq_up, row_low, sq_low, begin, end, k_up, k_low);
    for (std::size_t i = 0; i < m; ++i)
      gamma[i] += coef_up * k_up[i] + coef_low * k_low[i];
    ++result.iterations;
  }
  return result;
}

}  // namespace svmcore
