// Dual objective and KKT diagnostics. O(n^2) in the number of samples with
// nonzero alpha — used by tests and the accuracy/ablation benches to verify
// that different solvers reached the same optimum, not by the solvers.
#pragma once

#include <span>

#include "core/types.hpp"
#include "data/sparse.hpp"

namespace svmcore {

/// L_D(alpha) = sum_i alpha_i - 1/2 sum_ij alpha_i alpha_j y_i y_j K_ij.
[[nodiscard]] double dual_objective(const svmdata::Dataset& dataset,
                                    std::span<const double> alpha,
                                    const svmkernel::KernelParams& kernel);

/// Maximum KKT violation at tolerance semantics of Eq. (3)/(5): recomputes
/// every gamma_i from scratch and returns beta_low - beta_up. At an
/// eps-accurate solution this is <= 2*eps.
struct KktReport {
  double beta_up = 0.0;
  double beta_low = 0.0;
  double gap = 0.0;  ///< beta_low - beta_up
  double max_alpha_bound_violation = 0.0;  ///< distance of any alpha outside [0, C]
  double equality_residual = 0.0;          ///< |sum alpha_i y_i|
};

[[nodiscard]] KktReport kkt_report(const svmdata::Dataset& dataset, std::span<const double> alpha,
                                   const SolverParams& params);

}  // namespace svmcore
