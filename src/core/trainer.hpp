// High-level training API. `train()` runs the requested solver SPMD over an
// in-process world of `num_ranks` ranks, assembles the SvmModel from the
// per-rank alpha blocks and reports per-rank statistics plus communication
// traffic. SPMD users embedding the solver in their own communicator (see
// examples/parallel_training.cpp) can construct DistributedSolver directly.
#pragma once

#include <string>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/distributed_solver.hpp"
#include "core/heuristics.hpp"
#include "core/model.hpp"
#include "core/types.hpp"
#include "data/sparse.hpp"
#include "mpisim/fault.hpp"
#include "mpisim/netmodel.hpp"
#include "obs/report.hpp"

namespace svmcore {

struct TrainOptions {
  Heuristic heuristic{};  ///< default = Original (no shrinking)
  int num_ranks = 1;
  svmmpi::NetModel net_model{};
  bool permanent_shrink = false;  ///< CA-SVM ablation; see DistributedConfig
  bool openmp_gamma = false;      ///< hybrid MPI+OpenMP gamma updates
  std::uint64_t trace_active_interval = 0;  ///< see DistributedConfig
  /// Double-buffered compute-overlapped reconstruction ring; bit-identical
  /// results either way — see DistributedConfig::pipelined_reconstruction.
  bool pipelined_reconstruction = true;

  // --- observability (src/obs) ---------------------------------------------
  /// When non-empty, the trace recorder is enabled for this run and Chrome
  /// trace-event JSON is written here when the run ends — INCLUDING failed
  /// runs: faults unwind as exceptions, so the partial trace flushes with
  /// balanced spans (view at ui.perfetto.dev). Empty (the default) keeps the
  /// recorder fully disabled: results are bit-identical and the per-event
  /// cost is a single relaxed load.
  std::string trace_path;
  /// When non-empty, a machine-readable run report (schema
  /// svmobs.run_report.v1: per-rank metric registries + cross-rank
  /// aggregate) is written here after a successful run.
  std::string metrics_path;
  /// Per-thread trace ring capacity in events; overflow drops the oldest.
  std::size_t trace_buffer_events = 1u << 16;
};

struct TrainResult {
  SvmModel model;
  double beta = 0.0;
  /// The full stitched multiplier vector (one entry per training sample);
  /// what the model's support vectors were assembled from. Feeds post-hoc
  /// optimality checks (kkt_report) without re-deriving alpha from the model.
  std::vector<double> alpha;
  std::uint64_t iterations = 0;  ///< global iteration count (rank-invariant)

  std::vector<SolverStats> rank_stats;           ///< indexed by rank
  /// (iteration, global active samples) trace from rank 0 when enabled.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> active_trace;
  std::vector<svmmpi::TrafficStats> rank_traffic;
  svmmpi::TrafficStats traffic;                  ///< totals over ranks
  /// Per-rank metric registries (solver counters + net.* traffic), indexed
  /// by rank, plus the cross-rank aggregate; feeds run_report().
  std::vector<svmobs::MetricsRegistry> rank_metrics;
  svmobs::MetricsRegistry metrics;

  /// Aggregates across ranks: summed work counters, max wall times.
  std::uint64_t total_kernel_evaluations = 0;
  std::uint64_t max_rank_kernel_evaluations = 0;
  std::uint64_t samples_shrunk = 0;
  std::uint64_t reconstructions = 0;
  std::uint64_t recon_kernel_evaluations = 0;  ///< summed over ranks
  std::uint64_t engine_pair_evals = 0;         ///< summed over ranks
  std::uint64_t engine_scatter_builds = 0;     ///< summed over ranks
  std::uint64_t engine_bytes_streamed = 0;     ///< summed over ranks
  // Reconstruction-pipeline aggregates (see SolverStats): ring steps and
  // overlapped steps are rank-invariant counts from the first completed
  // rank; seconds are max over ranks (the slowest rank paces the ring);
  // engine counters and scatter savings are summed over ranks.
  std::uint64_t recon_ring_steps = 0;
  std::uint64_t recon_overlapped_steps = 0;
  double recon_comm_seconds = 0.0;
  double recon_overlapped_seconds = 0.0;
  std::uint64_t recon_scatter_builds = 0;      ///< summed over ranks
  std::uint64_t recon_bytes_streamed = 0;      ///< summed over ranks
  std::uint64_t recon_scatter_builds_saved = 0;  ///< summed over ranks
  double solve_seconds = 0.0;           ///< max over ranks
  double reconstruction_seconds = 0.0;  ///< max over ranks
  double wall_seconds = 0.0;            ///< around the whole SPMD region
  double modeled_seconds = 0.0;         ///< max per-rank compute+network model
  bool converged = false;
  /// Engine configuration that produced this result, mirrored into the run
  /// report / trace metadata so artifacts record their provenance.
  std::string engine_backend;
  std::string engine_flavor;
  /// Training algorithm that produced this result ("smo" or "pbm").
  std::string solver_algo;

  [[nodiscard]] std::size_t num_support_vectors() const {
    return model.num_support_vectors();
  }
};

[[nodiscard]] TrainResult train(const svmdata::Dataset& dataset, const SolverParams& params,
                                const TrainOptions& options = {});

/// How train_with_recovery responds to a rank failure.
enum class RecoveryPolicy {
  /// Tear the world down and relaunch all `num_ranks` ranks from the last
  /// consistent checkpoint cut. A PERMANENT loss (FaultPlan::die) erases the
  /// dead rank's process memory first (CheckpointStore::mark_rank_lost): the
  /// cold replacement can read disk spills but never the dead RAM, so a
  /// memory-only store replays from scratch.
  restart_world,
  /// ULFM-style in-world recovery: survivors agree on the dead set, shrink
  /// to a compacted communicator, the new leader repartitions the dead
  /// rank's state onto the survivors (reaching it through the buddy replica
  /// held in a survivor's memory) and training resumes on p-1 ranks from the
  /// newest reachable cut. Requires net_model.timeout_s > 0. When no cut is
  /// reachable (e.g. adjacent double failure) the shrunken world restarts
  /// from scratch.
  shrink_world,
  /// shrink_world while a reachable cut exists; otherwise escalate to a full
  /// restart_world attempt at the original rank count.
  shrink_then_restart,
};

/// Fault-tolerant training: inject the given fault plan, checkpoint every
/// `checkpoint_interval` iterations, and on a rank failure or timeout recover
/// per `policy` (restart the world, or shrink it and continue).
struct RecoveryOptions {
  svmmpi::FaultPlan fault_plan{};  ///< faults to inject (empty = none)
  RecoveryPolicy policy = RecoveryPolicy::restart_world;
  /// Checkpoint cadence in solver iterations; 0 disables checkpointing (every
  /// restart then replays from scratch).
  std::uint64_t checkpoint_interval = 64;
  /// Maximum SPMD relaunches after the initial attempt before giving up and
  /// rethrowing the last failure.
  int max_restarts = 8;
  /// Capped exponential backoff between relaunches: before retry k (0-based)
  /// the driver sleeps min(backoff_base_s * 2^k, backoff_cap_s) wall-clock
  /// seconds, modelling a real scheduler's restart throttle so a flapping
  /// node does not hot-loop the cluster. 0 (the default) disables the sleep.
  double backoff_base_s = 0.0;
  double backoff_cap_s = 1.0;
  /// Maximum in-world shrink generations per elastic attempt; one more loss
  /// escalates to a full-world relaunch (counted against max_restarts) even
  /// under shrink_world, bounding how far a cascade of permanent losses can
  /// erode a single attempt's rank count. Negative (the default) = unlimited.
  int max_shrinks = -1;
  /// Optional external store (e.g. file-backed via CheckpointStore's
  /// directory constructor, or one reloaded with CheckpointStore::open).
  /// When null an in-memory store scoped to this call is used.
  CheckpointStore* store = nullptr;
};

struct RecoveryReport {
  int attempts = 0;                   ///< SPMD launches performed (1 = fault-free)
  int restarts = 0;                   ///< full-world relaunches performed
  int shrinks = 0;                    ///< in-world shrink recoveries performed
  double backoff_seconds = 0.0;       ///< total restart-throttle sleep
  std::vector<std::string> failures;  ///< what() of each failure survived
  std::vector<int> ranks_lost;        ///< world ranks whose memory was lost
  std::uint64_t checkpoints_saved = 0;
  /// Epoch (iteration count) each recovery resumed from; 0 = from scratch.
  std::vector<std::uint64_t> restore_epochs;
  /// Recovery cost: sum over recoveries of (final iteration count - resume
  /// epoch), i.e. iterations the run had to execute again past each resume
  /// point. Smaller = cheaper recovery; 0 = no failures.
  std::uint64_t iterations_replayed = 0;
};

/// Runs train() under the fault plan in `recovery`, transparently recovering
/// per `recovery.policy` until the solve completes or `max_restarts` is
/// exhausted (then the last failure is rethrown). With a crash-only fault
/// plan under restart_world the returned model is bit-identical to a
/// fault-free train() with the same options; the shrink policies resume the
/// identical solver trajectory on the surviving ranks (same support-vector
/// set, objective equal to ~1e-10 — the only float differences come from
/// re-grouped ring/assembly summations).
[[nodiscard]] TrainResult train_with_recovery(const svmdata::Dataset& dataset,
                                              const SolverParams& params,
                                              const TrainOptions& options,
                                              const RecoveryOptions& recovery,
                                              RecoveryReport* report = nullptr);

/// Builds a model from a full alpha vector (e.g. the sequential solver's).
[[nodiscard]] SvmModel build_model(const svmdata::Dataset& dataset,
                                   std::span<const double> alpha, double beta,
                                   const svmkernel::KernelParams& kernel);

/// Packages a finished run as an svmobs run report (per-rank registries +
/// aggregate + run descriptors). Callers append reports from several runs
/// and hand them to svmobs::write_reports.
[[nodiscard]] svmobs::RunReport run_report(const TrainResult& result,
                                           const TrainOptions& options,
                                           std::string name = "train");

}  // namespace svmcore
