// High-level training API. `train()` runs the requested solver SPMD over an
// in-process world of `num_ranks` ranks, assembles the SvmModel from the
// per-rank alpha blocks and reports per-rank statistics plus communication
// traffic. SPMD users embedding the solver in their own communicator (see
// examples/parallel_training.cpp) can construct DistributedSolver directly.
#pragma once

#include <vector>

#include "core/distributed_solver.hpp"
#include "core/heuristics.hpp"
#include "core/model.hpp"
#include "core/types.hpp"
#include "data/sparse.hpp"
#include "mpisim/netmodel.hpp"

namespace svmcore {

struct TrainOptions {
  Heuristic heuristic{};  ///< default = Original (no shrinking)
  int num_ranks = 1;
  svmmpi::NetModel net_model{};
  bool permanent_shrink = false;  ///< CA-SVM ablation; see DistributedConfig
  bool openmp_gamma = false;      ///< hybrid MPI+OpenMP gamma updates
  std::uint64_t trace_active_interval = 0;  ///< see DistributedConfig
};

struct TrainResult {
  SvmModel model;
  double beta = 0.0;
  std::uint64_t iterations = 0;  ///< global iteration count (rank-invariant)

  std::vector<SolverStats> rank_stats;           ///< indexed by rank
  /// (iteration, global active samples) trace from rank 0 when enabled.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> active_trace;
  std::vector<svmmpi::TrafficStats> rank_traffic;
  svmmpi::TrafficStats traffic;                  ///< totals over ranks

  /// Aggregates across ranks: summed work counters, max wall times.
  std::uint64_t total_kernel_evaluations = 0;
  std::uint64_t max_rank_kernel_evaluations = 0;
  std::uint64_t samples_shrunk = 0;
  std::uint64_t reconstructions = 0;
  std::uint64_t recon_kernel_evaluations = 0;  ///< summed over ranks
  double solve_seconds = 0.0;           ///< max over ranks
  double reconstruction_seconds = 0.0;  ///< max over ranks
  double wall_seconds = 0.0;            ///< around the whole SPMD region
  double modeled_seconds = 0.0;         ///< max per-rank compute+network model
  bool converged = false;

  [[nodiscard]] std::size_t num_support_vectors() const {
    return model.num_support_vectors();
  }
};

[[nodiscard]] TrainResult train(const svmdata::Dataset& dataset, const SolverParams& params,
                                const TrainOptions& options = {});

/// Builds a model from a full alpha vector (e.g. the sequential solver's).
[[nodiscard]] SvmModel build_model(const svmdata::Dataset& dataset,
                                   std::span<const double> alpha, double beta,
                                   const svmkernel::KernelParams& kernel);

}  // namespace svmcore
