#include "core/heuristics.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace svmcore {

std::string to_string(ShrinkClass c) {
  switch (c) {
    case ShrinkClass::none: return "n/a";
    case ShrinkClass::aggressive: return "aggressive";
    case ShrinkClass::average: return "average";
    case ShrinkClass::conservative: return "conservative";
  }
  return "?";
}

std::uint64_t Heuristic::initial_threshold(std::size_t num_samples) const {
  switch (kind) {
    case Kind::none: return ~0ULL;
    case Kind::random: return static_cast<std::uint64_t>(value);
    case Kind::numsamples: {
      const auto t =
          static_cast<std::uint64_t>(std::llround(value * static_cast<double>(num_samples)));
      return t == 0 ? 1 : t;
    }
  }
  return ~0ULL;
}

std::string Heuristic::name() const {
  if (kind == Kind::none) return "Original";
  std::ostringstream out;
  out << (multi_reconstruction ? "Multi" : "Single");
  if (kind == Kind::random)
    out << static_cast<std::uint64_t>(value);
  else
    out << static_cast<int>(std::llround(value * 100.0)) << "pc";
  return out.str();
}

ShrinkClass Heuristic::shrink_class() const {
  // Table II classification: random 2/500 and numsamples 5% are aggressive,
  // random 1000 and numsamples 10% average, numsamples 50% conservative.
  switch (kind) {
    case Kind::none: return ShrinkClass::none;
    case Kind::random:
      return value <= 500.0 ? ShrinkClass::aggressive : ShrinkClass::average;
    case Kind::numsamples:
      if (value <= 0.05) return ShrinkClass::aggressive;
      return value <= 0.10 ? ShrinkClass::average : ShrinkClass::conservative;
  }
  return ShrinkClass::none;
}

Heuristic Heuristic::parse(const std::string& raw) {
  std::string name = raw;
  std::transform(name.begin(), name.end(), name.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (name == "original" || name == "none" || name == "default") return Heuristic{};

  Heuristic h;
  std::string rest;
  if (name.rfind("single", 0) == 0) {
    h.multi_reconstruction = false;
    rest = name.substr(6);
  } else if (name.rfind("multi", 0) == 0) {
    h.multi_reconstruction = true;
    rest = name.substr(5);
  } else {
    throw std::invalid_argument(
        "unknown heuristic '" + raw +
        "' (expected Original, Single<N>, Single<P>pc, Multi<N> or Multi<P>pc)");
  }
  if (rest.empty()) throw std::invalid_argument("heuristic '" + raw + "' is missing a threshold");
  if (rest.size() > 2 && rest.substr(rest.size() - 2) == "pc") {
    h.kind = Kind::numsamples;
    h.value = std::stod(rest.substr(0, rest.size() - 2)) / 100.0;
    if (h.value <= 0.0 || h.value > 1.0)
      throw std::invalid_argument("heuristic '" + raw + "': percentage must be in (0, 100]");
  } else {
    h.kind = Kind::random;
    h.value = std::stod(rest);
    if (h.value < 1.0)
      throw std::invalid_argument("heuristic '" + raw + "': iteration count must be >= 1");
  }
  return h;
}

const std::vector<Heuristic>& Heuristic::table2() {
  static const std::vector<Heuristic> rows = [] {
    std::vector<Heuristic> t;
    t.push_back(Heuristic{});  // 1) Original
    for (const bool multi : {false, true}) {
      for (const double iters : {2.0, 500.0, 1000.0})
        t.push_back(Heuristic{Kind::random, iters, multi, false});
      for (const double frac : {0.05, 0.10, 0.50})
        t.push_back(Heuristic{Kind::numsamples, frac, multi, false});
    }
    return t;
  }();
  return rows;
}

Heuristic Heuristic::best() { return Heuristic{Kind::numsamples, 0.05, true, false}; }

Heuristic Heuristic::worst() { return Heuristic{Kind::numsamples, 0.50, false, false}; }

}  // namespace svmcore
