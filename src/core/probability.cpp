#include "core/probability.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

namespace svmcore {

double PlattScaling::probability(double decision_value) const noexcept {
  const double fApB = decision_value * A + B;
  // Numerically stable logistic (Lin et al. 2007, eq. 10).
  if (fApB >= 0.0) return std::exp(-fApB) / (1.0 + std::exp(-fApB));
  return 1.0 / (1.0 + std::exp(fApB));
}

PlattScaling fit_platt(std::span<const double> decision_values,
                       std::span<const double> labels) {
  if (decision_values.size() != labels.size())
    throw std::invalid_argument("fit_platt: decision/label count mismatch");
  const std::size_t n = decision_values.size();
  if (n < 2) throw std::invalid_argument("fit_platt: need at least two samples");

  // Regularized targets (Platt 1999): t = (N+ + 1)/(N+ + 2) for positives,
  // 1/(N- + 2) for negatives.
  double prior1 = 0.0;
  for (const double y : labels)
    if (y > 0) prior1 += 1.0;
  const double prior0 = static_cast<double>(n) - prior1;
  const double high_target = (prior1 + 1.0) / (prior1 + 2.0);
  const double low_target = 1.0 / (prior0 + 2.0);

  std::vector<double> t(n);
  for (std::size_t i = 0; i < n; ++i) t[i] = labels[i] > 0 ? high_target : low_target;

  double A = 0.0;
  double B = std::log((prior0 + 1.0) / (prior1 + 1.0));

  auto objective = [&](double a, double b) {
    double value = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double fApB = decision_values[i] * a + b;
      if (fApB >= 0.0)
        value += t[i] * fApB + std::log1p(std::exp(-fApB));
      else
        value += (t[i] - 1.0) * fApB + std::log1p(std::exp(fApB));
    }
    return value;
  };

  constexpr int kMaxIterations = 100;
  constexpr double kMinStep = 1e-10;
  constexpr double kSigma = 1e-12;  // Hessian ridge
  double fval = objective(A, B);

  for (int iteration = 0; iteration < kMaxIterations; ++iteration) {
    // Gradient and Hessian of the negative log-likelihood.
    double h11 = kSigma;
    double h22 = kSigma;
    double h21 = 0.0;
    double g1 = 0.0;
    double g2 = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double fApB = decision_values[i] * A + B;
      double p;
      double q;
      if (fApB >= 0.0) {
        p = std::exp(-fApB) / (1.0 + std::exp(-fApB));
        q = 1.0 / (1.0 + std::exp(-fApB));
      } else {
        p = 1.0 / (1.0 + std::exp(fApB));
        q = std::exp(fApB) / (1.0 + std::exp(fApB));
      }
      const double d2 = p * q;
      h11 += decision_values[i] * decision_values[i] * d2;
      h22 += d2;
      h21 += decision_values[i] * d2;
      const double d1 = t[i] - p;
      g1 += decision_values[i] * d1;
      g2 += d1;
    }
    if (std::abs(g1) < 1e-5 && std::abs(g2) < 1e-5) break;  // converged

    // Newton direction.
    const double det = h11 * h22 - h21 * h21;
    const double dA = -(h22 * g1 - h21 * g2) / det;
    const double dB = -(-h21 * g1 + h11 * g2) / det;
    const double gd = g1 * dA + g2 * dB;

    // Backtracking line search.
    double step = 1.0;
    while (step >= kMinStep) {
      const double new_a = A + step * dA;
      const double new_b = B + step * dB;
      const double new_f = objective(new_a, new_b);
      if (new_f < fval + 1e-4 * step * gd) {
        A = new_a;
        B = new_b;
        fval = new_f;
        break;
      }
      step /= 2.0;
    }
    if (step < kMinStep) break;  // line search failed; accept current point
  }
  return PlattScaling{A, B};
}

PlattScaling fit_platt(const SvmModel& model, const svmdata::Dataset& calibration) {
  std::vector<double> decisions(calibration.size());
  for (std::size_t i = 0; i < calibration.size(); ++i)
    decisions[i] = model.decision_value(calibration.X.row(i));
  return fit_platt(decisions, calibration.y);
}

}  // namespace svmcore
