#include "core/distributed_predict.hpp"

#include <array>

#include "data/split.hpp"

namespace svmcore {

ConfusionMatrix distributed_evaluate(svmmpi::Comm& comm, const SvmModel& model,
                                     const svmdata::Dataset& dataset,
                                     svmkernel::EngineBackend backend,
                                     svmkernel::RowFlavor flavor) {
  const svmdata::BlockRange range =
      svmdata::block_range(dataset.size(), comm.size(), comm.rank());

  // One engine per rank: each query row scatters once and streams the
  // support vectors in a single fused pass (bit-identical to model.predict
  // at f64; flavored engines serve the compressed accuracy-gated mode).
  svmkernel::KernelEngine engine = model.make_engine(backend, flavor);
  ConfusionMatrix local;
  for (std::size_t i = range.begin; i < range.end; ++i) {
    const bool predicted_positive = model.decision_value(dataset.X.row(i), engine) >= 0.0;
    const bool actually_positive = dataset.y[i] > 0.0;
    if (predicted_positive && actually_positive)
      ++local.true_positive;
    else if (!predicted_positive && !actually_positive)
      ++local.true_negative;
    else if (predicted_positive)
      ++local.false_positive;
    else
      ++local.false_negative;
  }

  const std::array<std::int64_t, 4> mine{
      static_cast<std::int64_t>(local.true_positive),
      static_cast<std::int64_t>(local.true_negative),
      static_cast<std::int64_t>(local.false_positive),
      static_cast<std::int64_t>(local.false_negative)};
  const auto totals =
      comm.allreduce(std::span<const std::int64_t>(mine), svmmpi::ReduceOp::sum);

  ConfusionMatrix global;
  global.true_positive = static_cast<std::size_t>(totals[0]);
  global.true_negative = static_cast<std::size_t>(totals[1]);
  global.false_positive = static_cast<std::size_t>(totals[2]);
  global.false_negative = static_cast<std::size_t>(totals[3]);
  return global;
}

double distributed_accuracy(svmmpi::Comm& comm, const SvmModel& model,
                            const svmdata::Dataset& dataset,
                            svmkernel::EngineBackend backend, svmkernel::RowFlavor flavor) {
  return distributed_evaluate(comm, model, dataset, backend, flavor).accuracy();
}

}  // namespace svmcore
