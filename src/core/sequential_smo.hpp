// Algorithm 1: sequential SMO with Keerthi's modification-2 working-set
// selection (the worst-violating pair beta_up/beta_low). This is the
// reference implementation: the parallel Original solver (Algorithm 2) is
// proven against it bit-for-bit in tests.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/types.hpp"
#include "data/sparse.hpp"

namespace svmkernel {
class KernelEngine;
}

namespace svmcore {

struct SequentialResult {
  std::vector<double> alpha;  ///< Lagrange multipliers, one per sample
  double beta = 0.0;          ///< hyperplane threshold (Section III)
  SolverStats stats;
};

/// Trains on the full dataset. Throws std::invalid_argument on malformed
/// input (labels not ±1, fewer than two classes).
[[nodiscard]] SequentialResult solve_sequential(const svmdata::Dataset& dataset,
                                                const SolverParams& params);

/// Outcome of one warm-started block re-solve (the PBM inner solver).
struct BlockSolveResult {
  std::uint64_t iterations = 0;  ///< pair updates applied this call
  double beta_up = 0.0;          ///< block-local bound at exit (+inf if no up-set sample)
  double beta_low = 0.0;         ///< block-local bound at exit (-inf if no low-set sample)
  bool progress = false;         ///< any alpha moved
  bool reached_tolerance = false;  ///< block-local beta_up + tolerance >= beta_low at exit
};

/// Warm-started SMO restricted to the contiguous sample block [begin, end):
/// the PBM inner solver. `alpha`/`gamma` are the block's slices (local index
/// i - begin) of the caller's state and are updated in place; gamma must be
/// consistent with alpha on entry (gamma_i = sum_j alpha_j y_j K(i,j) - y_i
/// over the FULL sample set — the cross-block terms are frozen constants
/// during the block solve, exactly the PBM subproblem). The engine's norm
/// range must cover [begin, end). Unlike solve_sequential this never throws
/// on a one-class block: a block whose up or low set is empty simply cannot
/// move and returns immediately. Deterministic: same inputs, same trajectory.
[[nodiscard]] BlockSolveResult solve_sequential_block(
    const svmdata::Dataset& dataset, const SolverParams& params,
    svmkernel::KernelEngine& engine, std::size_t begin, std::size_t end,
    std::span<double> alpha, std::span<double> gamma, double tolerance,
    std::uint64_t max_iterations);

}  // namespace svmcore
