// Algorithm 1: sequential SMO with Keerthi's modification-2 working-set
// selection (the worst-violating pair beta_up/beta_low). This is the
// reference implementation: the parallel Original solver (Algorithm 2) is
// proven against it bit-for-bit in tests.
#pragma once

#include <vector>

#include "core/types.hpp"
#include "data/sparse.hpp"

namespace svmcore {

struct SequentialResult {
  std::vector<double> alpha;  ///< Lagrange multipliers, one per sample
  double beta = 0.0;          ///< hyperplane threshold (Section III)
  SolverStats stats;
};

/// Trains on the full dataset. Throws std::invalid_argument on malformed
/// input (labels not ±1, fewer than two classes).
[[nodiscard]] SequentialResult solve_sequential(const svmdata::Dataset& dataset,
                                                const SolverParams& params);

}  // namespace svmcore
