// Wire format for moving sample subsets between ranks: the x_up/x_low
// broadcast in Algorithm 2 and the CSR ring exchange in Algorithm 3. A
// PackedSamples block carries, per sample: global index, label, alpha,
// squared norm and the sparse feature row. pack()/unpack() round-trip
// through a flat byte buffer transported by the message-passing substrate.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "data/sparse.hpp"

namespace svmcore {

class PackedSamples {
 public:
  PackedSamples() = default;

  void reserve(std::size_t samples, std::size_t features);

  /// Empties the block but keeps every internal buffer's capacity, so a
  /// block reused across ring steps stops allocating once sizes stabilize.
  void clear() noexcept;

  void add(std::int64_t global_index, double y, double alpha, double sq_norm,
           std::span<const svmdata::Feature> features);

  [[nodiscard]] std::size_t size() const noexcept { return index_.size(); }
  [[nodiscard]] bool empty() const noexcept { return index_.empty(); }

  [[nodiscard]] std::int64_t global_index(std::size_t i) const noexcept { return index_[i]; }
  [[nodiscard]] double y(std::size_t i) const noexcept { return y_[i]; }
  [[nodiscard]] double alpha(std::size_t i) const noexcept { return alpha_[i]; }
  [[nodiscard]] double sq_norm(std::size_t i) const noexcept { return sq_norm_[i]; }
  [[nodiscard]] std::span<const svmdata::Feature> row(std::size_t i) const noexcept {
    return std::span<const svmdata::Feature>(features_.data() + offsets_[i],
                                             offsets_[i + 1] - offsets_[i]);
  }

  /// Total bytes pack() will produce; the quantity the network model charges.
  [[nodiscard]] std::size_t packed_bytes() const noexcept;

  [[nodiscard]] std::vector<std::byte> pack() const;

  /// pack() into a caller-owned buffer, reusing its capacity; `out` is
  /// resized to exactly packed_bytes(). The reconstruction ring packs into
  /// the same circulating buffer every round instead of allocating.
  void pack_into(std::vector<std::byte>& out) const;

  /// Inverse of pack(); throws std::runtime_error on malformed buffers.
  [[nodiscard]] static PackedSamples unpack(std::span<const std::byte> bytes);

  /// unpack() into a caller-owned block, reusing its vectors' capacity.
  /// `out` is fully overwritten; on a malformed buffer it is left cleared.
  static void unpack_into(std::span<const std::byte> bytes, PackedSamples& out);

 private:
  std::vector<std::int64_t> index_;
  std::vector<double> y_;
  std::vector<double> alpha_;
  std::vector<double> sq_norm_;
  std::vector<std::uint64_t> offsets_{0};  ///< CSR offsets into features_
  std::vector<svmdata::Feature> features_;
};

}  // namespace svmcore
