// Classification quality metrics beyond plain accuracy: confusion matrix,
// precision/recall/F1 and a text classification report. Used by examples and
// the accuracy benches; the paper reports accuracy only (Table V), but a
// release-quality library owes its users the full set.
#pragma once

#include <span>
#include <string>

namespace svmcore {

/// Binary confusion counts for ±1 labels; +1 is the positive class.
struct ConfusionMatrix {
  std::size_t true_positive = 0;
  std::size_t true_negative = 0;
  std::size_t false_positive = 0;
  std::size_t false_negative = 0;

  [[nodiscard]] std::size_t total() const noexcept {
    return true_positive + true_negative + false_positive + false_negative;
  }
  [[nodiscard]] double accuracy() const noexcept;
  [[nodiscard]] double precision() const noexcept;  ///< TP / (TP + FP); 0 when undefined
  [[nodiscard]] double recall() const noexcept;     ///< TP / (TP + FN); 0 when undefined
  [[nodiscard]] double f1() const noexcept;         ///< harmonic mean; 0 when undefined
  /// Matthews correlation coefficient in [-1, 1]; 0 when undefined.
  [[nodiscard]] double matthews() const noexcept;
};

/// Tallies predictions against labels; both must be ±1 and equal length.
/// Throws std::invalid_argument on length mismatch.
[[nodiscard]] ConfusionMatrix confusion(std::span<const double> predicted,
                                        std::span<const double> actual);

/// Multi-line human-readable report (accuracy, per-class P/R/F1, MCC).
[[nodiscard]] std::string classification_report(const ConfusionMatrix& matrix);

}  // namespace svmcore
