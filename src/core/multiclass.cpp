#include "core/multiclass.hpp"

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

#include "core/trainer.hpp"

namespace svmcore {

MulticlassModel::MulticlassModel(std::vector<double> classes, std::vector<SvmModel> pairwise)
    : classes_(std::move(classes)), pairwise_(std::move(pairwise)) {
  const std::size_t k = classes_.size();
  if (pairwise_.size() != k * (k - 1) / 2)
    throw std::invalid_argument("MulticlassModel: need k(k-1)/2 pairwise machines");
}

double MulticlassModel::predict(std::span<const svmdata::Feature> x) const {
  const std::size_t k = classes_.size();
  std::vector<int> votes(k, 0);
  std::vector<double> margin(k, 0.0);
  std::size_t machine = 0;
  for (std::size_t a = 0; a < k; ++a) {
    for (std::size_t b = a + 1; b < k; ++b, ++machine) {
      const double decision = pairwise_[machine].decision_value(x);
      const std::size_t winner = decision >= 0.0 ? a : b;
      ++votes[winner];
      margin[winner] += std::abs(decision);
    }
  }
  std::size_t best = 0;
  for (std::size_t c = 1; c < k; ++c) {
    if (votes[c] > votes[best] || (votes[c] == votes[best] && margin[c] > margin[best]))
      best = c;
  }
  return classes_[best];
}

std::vector<double> MulticlassModel::predict_all(const svmdata::CsrMatrix& X) const {
  std::vector<double> out(X.rows());
  const auto n = static_cast<std::ptrdiff_t>(X.rows());
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t i = 0; i < n; ++i)
    out[static_cast<std::size_t>(i)] = predict(X.row(static_cast<std::size_t>(i)));
  return out;
}

double MulticlassModel::accuracy(const MulticlassDataset& test) const {
  if (test.size() == 0) return 0.0;
  const auto predicted = predict_all(test.X);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < test.size(); ++i)
    if (predicted[i] == test.labels[i]) ++correct;
  return static_cast<double>(correct) / static_cast<double>(test.size());
}

namespace {
constexpr char kMagic[] = "shrinksvm-multiclass-v1";
}

void MulticlassModel::save(std::ostream& out) const {
  out << kMagic << '\n';
  out << "classes " << classes_.size();
  char buffer[32];
  for (const double c : classes_) {
    std::snprintf(buffer, sizeof(buffer), " %.17g", c);
    out << buffer;
  }
  out << '\n';
  for (const SvmModel& model : pairwise_) model.save(out);
}

void MulticlassModel::save_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("MulticlassModel::save_file: cannot open " + path);
  save(out);
}

MulticlassModel MulticlassModel::load(std::istream& in) {
  std::string line;
  if (!std::getline(in, line) || line != kMagic)
    throw std::runtime_error("MulticlassModel::load: bad magic");
  std::string key;
  std::size_t k = 0;
  if (!(in >> key >> k) || key != "classes")
    throw std::runtime_error("MulticlassModel::load: missing class list");
  std::vector<double> classes(k);
  for (double& c : classes)
    if (!(in >> c)) throw std::runtime_error("MulticlassModel::load: truncated class list");
  std::getline(in, line);
  std::vector<SvmModel> pairwise;
  pairwise.reserve(k * (k - 1) / 2);
  for (std::size_t m = 0; m < k * (k - 1) / 2; ++m) pairwise.push_back(SvmModel::load(in));
  return MulticlassModel(std::move(classes), std::move(pairwise));
}

MulticlassModel MulticlassModel::load_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("MulticlassModel::load_file: cannot open " + path);
  return load(in);
}

MulticlassModel train_one_vs_one(const MulticlassDataset& dataset, const SolverParams& params,
                                 const MulticlassTrainOptions& options) {
  if (dataset.X.rows() != dataset.labels.size())
    throw std::invalid_argument("train_one_vs_one: row/label count mismatch");

  const std::set<double> distinct(dataset.labels.begin(), dataset.labels.end());
  if (distinct.size() < 2)
    throw std::invalid_argument("train_one_vs_one: need at least two classes");
  const std::vector<double> classes(distinct.begin(), distinct.end());

  // Row indices per class, preserving dataset order.
  std::vector<std::vector<std::size_t>> rows_of_class(classes.size());
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    const auto at = std::lower_bound(classes.begin(), classes.end(), dataset.labels[i]);
    rows_of_class[static_cast<std::size_t>(at - classes.begin())].push_back(i);
  }

  std::vector<SvmModel> pairwise;
  pairwise.reserve(classes.size() * (classes.size() - 1) / 2);
  for (std::size_t a = 0; a < classes.size(); ++a) {
    for (std::size_t b = a + 1; b < classes.size(); ++b) {
      // Binary subproblem: class a -> +1, class b -> -1.
      svmdata::Dataset binary;
      for (const std::size_t i : rows_of_class[a]) {
        binary.X.add_row(dataset.X.row(i));
        binary.y.push_back(1.0);
      }
      for (const std::size_t i : rows_of_class[b]) {
        binary.X.add_row(dataset.X.row(i));
        binary.y.push_back(-1.0);
      }
      TrainOptions train_options;
      train_options.heuristic = options.heuristic;
      // A pair subset can be smaller than the rank count; clamp.
      train_options.num_ranks =
          std::min<int>(options.num_ranks, static_cast<int>(binary.size()));
      pairwise.push_back(train(binary, params, train_options).model);
    }
  }
  return MulticlassModel(classes, std::move(pairwise));
}

}  // namespace svmcore
