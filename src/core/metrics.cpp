#include "core/metrics.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace svmcore {

double ConfusionMatrix::accuracy() const noexcept {
  const std::size_t n = total();
  return n == 0 ? 0.0
               : static_cast<double>(true_positive + true_negative) / static_cast<double>(n);
}

double ConfusionMatrix::precision() const noexcept {
  const std::size_t denom = true_positive + false_positive;
  return denom == 0 ? 0.0 : static_cast<double>(true_positive) / static_cast<double>(denom);
}

double ConfusionMatrix::recall() const noexcept {
  const std::size_t denom = true_positive + false_negative;
  return denom == 0 ? 0.0 : static_cast<double>(true_positive) / static_cast<double>(denom);
}

double ConfusionMatrix::f1() const noexcept {
  const double p = precision();
  const double r = recall();
  return p + r == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

double ConfusionMatrix::matthews() const noexcept {
  const double tp = static_cast<double>(true_positive);
  const double tn = static_cast<double>(true_negative);
  const double fp = static_cast<double>(false_positive);
  const double fn = static_cast<double>(false_negative);
  const double denom = std::sqrt((tp + fp) * (tp + fn) * (tn + fp) * (tn + fn));
  return denom == 0.0 ? 0.0 : (tp * tn - fp * fn) / denom;
}

ConfusionMatrix confusion(std::span<const double> predicted, std::span<const double> actual) {
  if (predicted.size() != actual.size())
    throw std::invalid_argument("confusion: prediction/label count mismatch");
  ConfusionMatrix m;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    const bool predicted_positive = predicted[i] > 0.0;
    const bool actually_positive = actual[i] > 0.0;
    if (predicted_positive && actually_positive)
      ++m.true_positive;
    else if (!predicted_positive && !actually_positive)
      ++m.true_negative;
    else if (predicted_positive)
      ++m.false_positive;
    else
      ++m.false_negative;
  }
  return m;
}

std::string classification_report(const ConfusionMatrix& m) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(4);
  out << "samples   : " << m.total() << '\n';
  out << "confusion : TP=" << m.true_positive << " FP=" << m.false_positive
      << " FN=" << m.false_negative << " TN=" << m.true_negative << '\n';
  out << "accuracy  : " << m.accuracy() << '\n';
  out << "precision : " << m.precision() << '\n';
  out << "recall    : " << m.recall() << '\n';
  out << "f1        : " << m.f1() << '\n';
  out << "mcc       : " << m.matthews() << '\n';
  return out.str();
}

}  // namespace svmcore
