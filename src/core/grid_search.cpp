#include "core/grid_search.hpp"

#include <stdexcept>

#include "core/trainer.hpp"
#include "data/split.hpp"

namespace svmcore {

GridSearchResult grid_search(const svmdata::Dataset& dataset,
                             const GridSearchOptions& options) {
  if (options.c_values.empty() || options.gamma_values.empty())
    throw std::invalid_argument("grid_search: empty parameter grid");
  dataset.validate();

  const auto folds = svmdata::kfold_indices(dataset.size(), options.folds, options.seed);

  // Materialize the fold datasets once; each cell reuses them.
  std::vector<svmdata::Dataset> validation_sets;
  std::vector<svmdata::Dataset> training_sets;
  validation_sets.reserve(folds.size());
  training_sets.reserve(folds.size());
  for (std::size_t fold = 0; fold < folds.size(); ++fold) {
    std::vector<std::size_t> train_idx;
    for (std::size_t other = 0; other < folds.size(); ++other)
      if (other != fold) train_idx.insert(train_idx.end(), folds[other].begin(),
                                          folds[other].end());
    training_sets.push_back(dataset.subset(train_idx));
    validation_sets.push_back(dataset.subset(folds[fold]));
  }

  GridSearchResult result;
  for (const double C : options.c_values) {
    for (const double gamma : options.gamma_values) {
      GridCell cell;
      cell.C = C;
      cell.gamma = gamma;
      for (std::size_t fold = 0; fold < folds.size(); ++fold) {
        SolverParams params;
        params.C = C;
        params.eps = options.eps;
        params.kernel = svmkernel::KernelParams{options.kernel, gamma, 0.0, 3};
        TrainOptions train_options;
        train_options.num_ranks = options.num_ranks;
        train_options.heuristic = options.heuristic;
        const TrainResult trained = train(training_sets[fold], params, train_options);
        cell.mean_accuracy += trained.model.accuracy(validation_sets[fold]);
        cell.mean_support_vectors += static_cast<double>(trained.num_support_vectors());
      }
      cell.mean_accuracy /= static_cast<double>(folds.size());
      cell.mean_support_vectors /= static_cast<double>(folds.size());
      if (result.cells.empty() || cell.mean_accuracy > result.best.mean_accuracy)
        result.best = cell;
      result.cells.push_back(cell);
    }
  }
  return result;
}

}  // namespace svmcore
