// Distributed prediction: each rank classifies its block of a (row-
// partitioned) evaluation set against a replicated model and the counts are
// combined with an Allreduce — the natural way to evaluate test accuracy at
// scale without funnelling predictions through one rank.
#pragma once

#include "core/metrics.hpp"
#include "core/model.hpp"
#include "data/sparse.hpp"
#include "mpisim/comm.hpp"

namespace svmcore {

/// Predicts this rank's block of `dataset` (by block_range of comm size/rank)
/// and Allreduces the confusion counts; every rank returns the global matrix.
/// `backend`/`flavor` select each rank's scoring engine: any backend at f64
/// is bit-identical to model.predict; reduced flavors (simd backend) score
/// against compressed support vectors — the accuracy-gated serving mode.
[[nodiscard]] ConfusionMatrix distributed_evaluate(
    svmmpi::Comm& comm, const SvmModel& model, const svmdata::Dataset& dataset,
    svmkernel::EngineBackend backend = svmkernel::EngineBackend::dense_scatter,
    svmkernel::RowFlavor flavor = svmkernel::RowFlavor::f64);

/// Convenience: global accuracy via distributed_evaluate.
[[nodiscard]] double distributed_accuracy(
    svmmpi::Comm& comm, const SvmModel& model, const svmdata::Dataset& dataset,
    svmkernel::EngineBackend backend = svmkernel::EngineBackend::dense_scatter,
    svmkernel::RowFlavor flavor = svmkernel::RowFlavor::f64);

}  // namespace svmcore
