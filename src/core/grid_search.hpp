// Hyper-parameter selection by k-fold cross-validation over a (C, gamma)
// grid — the procedure behind the paper's Table III settings ("we conducted
// a ten-fold cross validation for selecting hyper-parameter settings",
// §V-C). Each grid cell trains on k-1 folds and validates on the held-out
// fold; the cell with the best mean validation accuracy wins.
#pragma once

#include <cstdint>
#include <vector>

#include "core/heuristics.hpp"
#include "core/types.hpp"
#include "data/sparse.hpp"

namespace svmcore {

struct GridSearchOptions {
  std::vector<double> c_values{1.0, 10.0, 32.0};
  /// Gamma candidates; remember gamma = 1/sigma^2 in the paper's notation.
  std::vector<double> gamma_values{1.0 / 64.0, 0.25, 1.0};
  svmkernel::KernelType kernel = svmkernel::KernelType::rbf;
  std::size_t folds = 10;
  double eps = 1e-3;
  std::uint64_t seed = 1;  ///< fold assignment seed
  Heuristic heuristic{};   ///< solver used for each fold (default Original)
  int num_ranks = 1;
};

struct GridCell {
  double C = 0.0;
  double gamma = 0.0;
  double mean_accuracy = 0.0;
  double mean_support_vectors = 0.0;
};

struct GridSearchResult {
  std::vector<GridCell> cells;  ///< row-major over (C, gamma)
  GridCell best;                ///< highest mean accuracy (ties: first seen)

  [[nodiscard]] double best_sigma_sq() const noexcept { return 1.0 / best.gamma; }
};

/// Exhaustive sweep. Throws std::invalid_argument on an empty grid or
/// invalid fold count.
[[nodiscard]] GridSearchResult grid_search(const svmdata::Dataset& dataset,
                                           const GridSearchOptions& options);

}  // namespace svmcore
