// Trained SVM model: support vectors, their coefficients alpha_j * y_j, the
// threshold beta and the kernel. Prediction computes
//   f(x) = sum_j coef_j * K(sv_j, x) - beta,  label = sign(f(x)).
// Serialization is a versioned text format that round-trips exactly
// (hex-float values).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "data/sparse.hpp"
#include "kernel/kernel.hpp"
#include "kernel/kernel_engine.hpp"

namespace svmcore {

class SvmModel {
 public:
  SvmModel() = default;
  SvmModel(svmkernel::KernelParams kernel, svmdata::CsrMatrix support_vectors,
           std::vector<double> coefficients, double beta);

  [[nodiscard]] std::size_t num_support_vectors() const noexcept { return coefficients_.size(); }
  [[nodiscard]] double beta() const noexcept { return beta_; }
  [[nodiscard]] const svmkernel::KernelParams& kernel_params() const noexcept { return kernel_; }
  [[nodiscard]] const svmdata::CsrMatrix& support_vectors() const noexcept {
    return support_vectors_;
  }
  [[nodiscard]] const std::vector<double>& coefficients() const noexcept { return coefficients_; }

  /// Signed decision value f(x); positive ⇒ class +1.
  [[nodiscard]] double decision_value(std::span<const svmdata::Feature> x) const;

  /// A KernelEngine over this model's support vectors, for batched scoring
  /// of many queries (decision_value(x, engine)). The engine references the
  /// model — the model must outlive it. One engine per thread: the engine
  /// carries mutable scatter state. `flavor` selects the resident precision
  /// of the support-vector rows under the simd backend (f32/f16/i8 trade
  /// exactness for footprint/bandwidth; see row_store.hpp) — reduced
  /// flavors require `backend == simd`.
  [[nodiscard]] svmkernel::KernelEngine make_engine(
      svmkernel::EngineBackend backend = svmkernel::EngineBackend::dense_scatter,
      svmkernel::RowFlavor flavor = svmkernel::RowFlavor::f64) const;

  /// Engine-accelerated scoring; `engine` must come from make_engine() on
  /// this model. Bit-identical to the plain decision_value overload for f64
  /// engines of any backend; flavored engines score against the compressed
  /// support vectors (the accuracy-gated serving path).
  [[nodiscard]] double decision_value(std::span<const svmdata::Feature> x,
                                      svmkernel::KernelEngine& engine) const;

  [[nodiscard]] double predict(std::span<const svmdata::Feature> x) const {
    return decision_value(x) >= 0.0 ? 1.0 : -1.0;
  }

  /// Predicts every row; OpenMP-parallel across rows when `parallel`.
  [[nodiscard]] std::vector<double> predict_all(const svmdata::CsrMatrix& X,
                                                bool parallel = true) const;

  /// Fraction of rows whose prediction matches `labels`.
  [[nodiscard]] double accuracy(const svmdata::Dataset& test, bool parallel = true) const;

  // --- serialization -----------------------------------------------------
  void save(std::ostream& out) const;
  void save_file(const std::string& path) const;
  [[nodiscard]] static SvmModel load(std::istream& in);
  [[nodiscard]] static SvmModel load_file(const std::string& path);

 private:
  svmkernel::KernelParams kernel_{};
  svmdata::CsrMatrix support_vectors_;
  std::vector<double> coefficients_;  ///< alpha_j * y_j per support vector
  std::vector<double> sv_sq_norms_;   ///< cached ||sv_j||^2 for rbf
  double beta_ = 0.0;
};

}  // namespace svmcore
