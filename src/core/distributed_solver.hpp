// Distributed SMO solvers, executed SPMD by every rank of a communicator:
//
//  - Heuristic "Original" (no shrinking)      -> Algorithm 2
//  - Single gradient reconstruction            -> Algorithm 4
//  - Multiple gradient reconstruction          -> Algorithm 5
//  - Ring gradient reconstruction              -> Algorithm 3
//
// Data layout: every rank owns the contiguous block of samples given by
// block_range(n, p, rank) and touches only those rows of the shared dataset
// directly; remote samples arrive exclusively through messages (the
// x_up/x_low broadcast and the reconstruction ring), preserving the paper's
// communication pattern exactly. All ranks compute the pair update
// redundantly from broadcast state, so solver state stays replica-consistent
// without further synchronization.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/heuristics.hpp"
#include "core/sample_block.hpp"
#include "core/types.hpp"
#include "data/split.hpp"
#include "data/sparse.hpp"
#include "kernel/kernel_engine.hpp"
#include "mpisim/comm.hpp"
#include "obs/metrics.hpp"

namespace svmcore {

struct DistributedConfig {
  SolverParams params{};
  Heuristic heuristic{};
  /// CA-SVM-style ablation (§IV, design choice the paper rejects): shrink
  /// permanently and never reconstruct gradients. Faster, loses accuracy.
  bool permanent_shrink = false;
  /// Hybrid MPI+OpenMP: parallelize the per-iteration gamma update across
  /// the rank's cores (the paper's Cascade nodes have 16). Off by default —
  /// with many simulated ranks on few cores it oversubscribes.
  bool openmp_gamma = false;
  /// When > 0, record (iteration, global active-set size) every this many
  /// iterations into SolverStats::active_trace (rank 0 only). Costs one
  /// Allreduce per sample point; used by the figure benches.
  std::uint64_t trace_active_interval = 0;
  /// Double-buffered pipelined reconstruction ring (the tentpole of
  /// Algorithm 3's fast path): each ring step posts the Isend/Irecv of the
  /// next block before computing on the current one and Waitalls at the step
  /// boundary, so the exchange is charged max(compute, comm) modeled seconds
  /// instead of their sum (Comm::credit_overlap). The compute itself goes
  /// through KernelEngine::eval_block_rows with adaptive orientation.
  /// Bit-identical to the serial ring — a performance knob, never a results
  /// knob; `false` keeps the blocking exchange-after-compute path for
  /// before/after benchmarking.
  bool pipelined_reconstruction = true;
  /// Checkpoint/restart: when both are set, every rank serializes its solver
  /// state into `checkpoint_store` at iteration multiples of
  /// `checkpoint_interval` (purely local — no extra communication), and a
  /// freshly constructed solver restores the store's pinned epoch (see
  /// CheckpointStore::begin_restart) before solving. Used by
  /// solve_with_recovery to survive injected rank failures.
  std::uint64_t checkpoint_interval = 0;
  CheckpointStore* checkpoint_store = nullptr;
};

/// Per-rank output of a distributed solve. Alphas cover this rank's block.
struct RankResult {
  svmdata::BlockRange range{};
  std::vector<double> alpha;  ///< local block's multipliers
  double beta = 0.0;          ///< hyperplane threshold (identical on all ranks)
  SolverStats stats;          ///< this rank's counters and timings (snapshot)
  /// The registry the solver's counters live in; `stats` is derived from it
  /// at solve() end. Feeds run reports (obs/report.hpp).
  svmobs::MetricsRegistry metrics;
};

class DistributedSolver {
 public:
  /// `dataset` is the full training set; the solver derives this rank's
  /// block from comm.rank()/comm.size().
  DistributedSolver(svmmpi::Comm& comm, const svmdata::Dataset& dataset,
                    const DistributedConfig& config);

  [[nodiscard]] RankResult solve();

 private:
  enum class PhaseExit { converged, stalled, iteration_cap };

  /// One SMO phase: iterate until beta_up + tolerance >= beta_low over the
  /// active set. `shrinking` enables the Eq. (9) elimination logic.
  PhaseExit run_phase(double tolerance, bool shrinking);

  /// Samples stats_.min_active at a phase's exit (not only at shrink passes,
  /// which a phase can end without reaching) and forwards the verdict.
  PhaseExit phase_exit(PhaseExit exit) noexcept;

  /// Algorithm 3 (gradient_reconstruction.cpp): repairs gamma of shrunk
  /// samples via the ring exchange, reactivates all samples and refreshes
  /// the global bounds. No-op (except bounds refresh) when nothing shrunk.
  void reconstruct_gradients();

  /// Worst-violator selection over active samples + MINLOC/MAXLOC reduce.
  void select_violators();

  /// Owner -> rank 0 -> Bcast of one sample (Algorithm 2 lines 3-9).
  [[nodiscard]] PackedSamples fetch_sample(std::int64_t global_index);

  /// Batched violator fetch: both pair samples travel in ONE PackedSamples
  /// message and ONE Bcast (sample 0 = up, sample 1 = low), halving the
  /// per-iteration broadcast count of the two fetch_sample round trips.
  [[nodiscard]] PackedSamples fetch_pair(std::int64_t g_up, std::int64_t g_low);

  /// Appends the locally-owned sample `global` to `out`.
  void pack_local_sample(PackedSamples& out, std::int64_t global);

  /// Recomputes local extrema over ALL local samples and Allreduces them;
  /// used after reconstruction.
  void refresh_bounds_all_samples();

  /// Records the global active-set size when tracing is enabled.
  void maybe_trace_active();

  /// Derives the legacy SolverStats snapshot from the metrics registry (the
  /// counters live there now; every pre-registry consumer keeps working).
  void snapshot_stats();

  /// Restores solver state from the store's pinned epoch, if any.
  void maybe_restore();

  /// Saves a checkpoint at run_phase loop tops on the configured iteration
  /// cadence. Purely local; all ranks hit the same boundaries because the
  /// iteration counter advances in lockstep.
  void maybe_checkpoint();

  /// Marks the solve driver's position for checkpoints: the index of the
  /// run_phase call about to execute and the Algorithm 5 stall count at its
  /// entry.
  void begin_stage(std::uint32_t stage, std::uint32_t stalls) noexcept {
    stage_ = stage;
    stage_stalls_ = stalls;
  }

  [[nodiscard]] std::size_t local_of(std::int64_t global) const noexcept {
    return static_cast<std::size_t>(global) - range_.begin;
  }
  [[nodiscard]] bool owns(std::int64_t global) const noexcept {
    return range_.contains(static_cast<std::size_t>(global));
  }

  svmmpi::Comm& comm_;
  const svmdata::Dataset& data_;
  DistributedConfig config_;
  svmdata::BlockRange range_;
  svmkernel::Kernel kernel_;
  /// Batched kernel evaluation over this rank's block; owns the block's row
  /// squared norms and the dense scatter state (see kernel_engine.hpp).
  svmkernel::KernelEngine engine_;

  // Per-local-sample state (index = global - range_.begin).
  std::vector<double> alpha_;
  std::vector<double> gamma_;
  std::vector<std::uint8_t> shrunk_;
  std::vector<std::uint32_t> active_;  ///< local indices still in play
  std::vector<double> k_up_;   ///< per-iteration K(x_up, i) over active_
  std::vector<double> k_low_;  ///< per-iteration K(x_low, i) over active_

  // Global selection state, identical on every rank after each Allreduce.
  double beta_up_ = 0.0;
  double beta_low_ = 0.0;
  std::int64_t i_up_ = -1;
  std::int64_t i_low_ = -1;

  // Shrinking counters (Algorithm 4): delta_counter_ iterations remain until
  // the next shrink pass; ~0ULL disables.
  std::uint64_t delta_counter_ = ~0ULL;

  // Checkpoint cursor: current solve-driver stage, the stall count at its
  // entry, the restored stage/stalls to resume from, and the iteration of
  // the last save (suppresses duplicate saves when phases change without
  // advancing the iteration counter — a mixed-stage epoch would break the
  // consistent-cut property).
  std::uint32_t stage_ = 0;
  std::uint32_t stage_stalls_ = 0;
  std::uint32_t resume_stage_ = 0;
  std::uint32_t resume_stalls_ = 0;
  bool restored_ = false;
  std::uint64_t last_checkpoint_iteration_ = ~0ULL;

  // The solver's counters live in the metrics registry; the hot ones are
  // bound once as references (map nodes are stable) so the SMO loop pays a
  // single add on a plain word, same as the struct fields they replace.
  // `stats_` keeps only what the registry does not model (exit flags,
  // bounds, the active-set trace) and is completed by snapshot_stats().
  svmobs::MetricsRegistry metrics_;
  svmobs::Counter& iterations_;
  svmobs::Counter& shrink_passes_;
  svmobs::Counter& samples_shrunk_;
  svmobs::Counter& reconstructions_;
  svmobs::Counter& recon_ring_steps_;
  svmobs::Counter& recon_overlapped_steps_;

  SolverStats stats_;
};

}  // namespace svmcore
