// Shrinking heuristics — the paper's Table II. A heuristic decides (a) the
// iteration at which shrinking is first attempted (the initial shrinking
// threshold delta), derived either from a fixed iteration count ("random")
// or from a fraction of the sample count ("numsamples"), and (b) whether the
// solver performs a single gradient reconstruction (Algorithm 4) or multiple
// ones (Algorithm 5). The subsequent shrinking threshold is the global
// active-set size, Allreduced at each shrink pass (§IV-A.2).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace svmcore {

enum class ShrinkClass : std::uint8_t { none, aggressive, average, conservative };

[[nodiscard]] std::string to_string(ShrinkClass c);

struct Heuristic {
  enum class Kind : std::uint8_t {
    none,        ///< never shrink — the "Original" algorithm
    random,      ///< first shrink after a fixed number of iterations
    numsamples,  ///< first shrink after fraction * N iterations
  };

  Kind kind = Kind::none;
  double value = 0.0;  ///< random: iteration count; numsamples: fraction in (0,1]
  bool multi_reconstruction = false;
  /// Ablation switch (§IV-A.2): reuse the initial threshold as the subsequent
  /// threshold instead of the adaptive active-set-size rule.
  bool fixed_subsequent_threshold = false;

  /// Iterations before the first shrink attempt; ~0ULL ("infinity") disables.
  [[nodiscard]] std::uint64_t initial_threshold(std::size_t num_samples) const;

  [[nodiscard]] bool shrinking_enabled() const noexcept { return kind != Kind::none; }

  /// Paper's Table II name: "Original", "Single2", "Multi5pc", ...
  [[nodiscard]] std::string name() const;

  /// Table II class: aggressive (*), average (diamond) or conservative (dot).
  [[nodiscard]] ShrinkClass shrink_class() const;

  /// Parses a Table II name (case-insensitive). Throws std::invalid_argument
  /// with the valid names on failure.
  [[nodiscard]] static Heuristic parse(const std::string& name);

  /// All 13 rows of Table II, in order (Original first).
  [[nodiscard]] static const std::vector<Heuristic>& table2();

  /// The paper's overall best (Multi5pc) and worst (Single50pc) heuristics.
  [[nodiscard]] static Heuristic best();
  [[nodiscard]] static Heuristic worst();

  [[nodiscard]] bool operator==(const Heuristic& other) const = default;
};

}  // namespace svmcore
