#include "solver/pbm_solver.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "core/pair_update.hpp"
#include "core/sequential_smo.hpp"
#include "obs/trace.hpp"
#include "util/timer.hpp"

namespace svmcore {

namespace {

constexpr int kTagPbmRing = 21;    ///< sparse delta-ring exchanges
constexpr int kTagPbmSliver = 22;  ///< checkpoint-time gamma sliver hand-off

/// Squared norm of an arbitrary dataset row, computed with the exact same
/// helper the engine's norm table uses, so a row's norm is bitwise identical
/// whether it is read in-span from the engine or recomputed off-span here
/// (partition independence of the cross-block kernel values depends on it).
double row_sq_norm(const svmdata::CsrMatrix& X, std::size_t g) {
  return svmdata::CsrMatrix::squared_norm(X.row(g));
}

}  // namespace

PbmSolver::PbmSolver(svmmpi::Comm& comm, const svmdata::Dataset& dataset,
                     const DistributedConfig& config)
    : comm_(comm),
      data_(dataset),
      config_(config),
      n_(dataset.size()),
      blocks_(config.params.pbm_blocks),
      range_(svmdata::block_range(dataset.size(), comm.size(), comm.rank())),
      first_block_(0),
      last_block_(0),
      kernel_(config.params.kernel),
      engine_([&]() -> svmkernel::KernelEngine {
        if (config.params.engine_flavor != svmkernel::RowFlavor::f64)
          throw std::invalid_argument(
              "PbmSolver: training requires engine_flavor f64 (got '" +
              std::string(svmkernel::to_string(config.params.engine_flavor)) + "')");
        if (config.params.pbm_blocks < comm.size())
          throw std::invalid_argument(
              "PbmSolver: pbm_blocks must be >= the rank count (the trainer resolves 0 to "
              "the launch rank count)");
        if (static_cast<std::size_t>(config.params.pbm_blocks) > dataset.size())
          throw std::invalid_argument("PbmSolver: pbm_blocks must not exceed the sample count");
        // Assigned blocks: the contiguous run of blocks whose first sample
        // falls inside this rank's partition slice. Fixed B >= p guarantees
        // at least one per rank (both partitions front-load their remainder).
        const std::size_t n = dataset.size();
        const int B = config.params.pbm_blocks;
        int first = -1;
        int last = -1;
        for (int b = 0; b < B; ++b) {
          if (svmdata::owner_of(n, comm.size(), svmdata::block_range(n, B, b).begin) ==
              comm.rank()) {
            if (first < 0) first = b;
            last = b + 1;
          }
        }
        if (first < 0)
          throw std::logic_error("PbmSolver: rank received no blocks (partition anomaly)");
        const svmdata::BlockRange span{svmdata::block_range(n, B, first).begin,
                                       svmdata::block_range(n, B, last - 1).end};
        return svmkernel::KernelEngine(kernel_, dataset.X, config.params.engine_backend,
                                       span.begin, span.end, /*cache_budget_bytes=*/0,
                                       config.params.engine_flavor);
      }()),
      metrics_(),
      rounds_(metrics_.counter("pbm.rounds")),
      inner_iterations_(metrics_.counter("pbm.inner_iterations")),
      polish_iterations_(metrics_.counter("pbm.polish_iterations")),
      delta_nnz_(metrics_.counter("pbm.delta_nnz")),
      sync_payload_bytes_(metrics_.counter("pbm.sync_payload_bytes")),
      dense_rounds_(metrics_.counter("pbm.dense_rounds")),
      sparse_rounds_(metrics_.counter("pbm.sparse_rounds")) {
  // Recompute the assignment for the members (the engine lambda cannot
  // write them before the member is initialized).
  for (int b = 0; b < blocks_; ++b) {
    if (svmdata::owner_of(n_, comm_.size(), block_of(b).begin) == comm_.rank()) {
      if (last_block_ == first_block_) first_block_ = b;
      last_block_ = b + 1;
    }
  }
  span_ = svmdata::BlockRange{block_of(first_block_).begin, block_of(last_block_ - 1).end};

  alpha_.assign(n_, 0.0);
  gamma_.resize(span_.size());
  for (std::size_t i = 0; i < span_.size(); ++i)
    gamma_[i] = -data_.y[span_.begin + i];  // alpha = 0 => gamma = -y
  k_up_.resize(span_.size());
  k_low_.resize(span_.size());
  metrics_.gauge("pbm.blocks").set(static_cast<double>(blocks_));
}

void PbmSolver::maybe_restore() {
  // The config is SPMD-shared, so a null store short-circuits uniformly —
  // plain training pays zero restore-path collectives.
  if (config_.checkpoint_store == nullptr) return;
  const std::optional<RankCheckpoint> c = config_.checkpoint_store->restore(comm_.rank());
  // The pinned epoch is all-or-nothing across ranks, but the restore path
  // below is collective — agree explicitly so a disagreement surfaces as a
  // clean fresh start instead of a deadlocked allgatherv.
  if (comm_.allreduce(c.has_value() ? 1 : 0, svmmpi::ReduceOp::min) != 1) return;
  if (c->alpha.size() != range_.size())
    throw std::runtime_error("PbmSolver: checkpoint does not match this rank's partition");

  // Rebuild the replicated global state from the per-rank partition slices;
  // every rank then re-slices its assigned span. The checkpointed gamma is
  // the block owners' authoritative values (see maybe_checkpoint's sliver
  // hand-off), so the rebuilt trajectory is bitwise the pre-failure one.
  const auto alpha_parts = comm_.allgatherv(std::span<const double>(c->alpha));
  const auto gamma_parts = comm_.allgatherv(std::span<const double>(c->gamma));
  std::vector<double> global_gamma(n_);
  for (int r = 0; r < comm_.size(); ++r) {
    const svmdata::BlockRange slice = svmdata::block_range(n_, comm_.size(), r);
    if (alpha_parts[r].size() != slice.size() || gamma_parts[r].size() != slice.size())
      throw std::runtime_error("PbmSolver: checkpoint slice size mismatch");
    std::copy(alpha_parts[r].begin(), alpha_parts[r].end(), alpha_.begin() + slice.begin);
    std::copy(gamma_parts[r].begin(), gamma_parts[r].end(), global_gamma.begin() + slice.begin);
  }
  std::copy(global_gamma.begin() + span_.begin, global_gamma.begin() + span_.end,
            gamma_.begin());
  round_ = c->iterations;
  beta_up_ = c->beta_up;
  beta_low_ = c->beta_low;
  last_checkpoint_round_ = round_;
  restored_ = true;
  svmobs::trace_instant("checkpoint_restore", "ckpt");
}

void PbmSolver::maybe_checkpoint() {
  if (config_.checkpoint_store == nullptr || config_.checkpoint_interval == 0) return;
  if (round_ % config_.checkpoint_interval != 0 || round_ == last_checkpoint_round_) return;
  svmobs::TraceSpan span("checkpoint_save", "ckpt");

  RankCheckpoint c;
  c.iterations = round_;  // PBM epochs are outer-round boundaries
  c.beta_up = beta_up_;
  c.beta_low = beta_low_;
  c.i_up = i_up_;
  c.i_low = i_low_;
  c.min_active = range_.size();
  c.alpha.assign(alpha_.begin() + range_.begin, alpha_.begin() + range_.end);

  // gamma over the PARTITION slice. The assigned span starts at or after the
  // slice (blocks are owned by the rank holding their first sample), so the
  // head [range.begin, span.begin) is maintained by the previous rank — and
  // symmetrically this rank's span tail [range.end, span.end) is the next
  // rank's head. When B == p the partitions coincide and nothing moves.
  const std::size_t head = span_.begin - range_.begin;
  const std::size_t tail = span_.end - range_.end;
  if (tail > 0)  // eager/buffered: safe to send before the matching recv
    comm_.send(std::span<const double>(gamma_.data() + (range_.end - span_.begin), tail),
               comm_.rank() + 1, kTagPbmSliver);
  c.gamma.resize(range_.size());
  if (head > 0) {
    const std::vector<double> sliver = comm_.recv<double>(comm_.rank() - 1, kTagPbmSliver);
    if (sliver.size() != head)
      throw std::runtime_error("PbmSolver: gamma sliver size mismatch at checkpoint");
    std::copy(sliver.begin(), sliver.end(), c.gamma.begin());
  }
  std::copy(gamma_.begin(), gamma_.begin() + (range_.end - span_.begin),
            c.gamma.begin() + head);

  // PBM never shrinks samples; identity active set keeps the checkpoint
  // compatible with repartition_from_checkpoints.
  c.shrunk.assign(range_.size(), 0);
  c.active.resize(range_.size());
  for (std::size_t i = 0; i < range_.size(); ++i) c.active[i] = static_cast<std::uint32_t>(i);

  config_.checkpoint_store->save(comm_.rank(), round_, c);
  metrics_.counter("ckpt.saves").add();
  last_checkpoint_round_ = round_;
}

void PbmSolver::refresh_bounds() {
  double bu = std::numeric_limits<double>::infinity();
  double bl = -std::numeric_limits<double>::infinity();
  std::int64_t iu = std::numeric_limits<std::int64_t>::max();
  std::int64_t il = std::numeric_limits<std::int64_t>::max();
  for (std::size_t i = 0; i < span_.size(); ++i) {
    const std::size_t g = span_.begin + i;
    const IndexSet set = classify(data_.y[g], alpha_[g], config_.params.C_of(data_.y[g]));
    if (in_up_set(set) && gamma_[i] < bu) {
      bu = gamma_[i];
      iu = static_cast<std::int64_t>(g);
    }
    if (in_low_set(set) && gamma_[i] > bl) {
      bl = gamma_[i];
      il = static_cast<std::int64_t>(g);
    }
  }
  // MINLOC/MAXLOC with the global sample index: value first, smaller index
  // on ties — the winning pair is independent of how samples are grouped
  // into ranks, which keeps every downstream decision partition-independent.
  const svmmpi::DoubleInt up = comm_.allreduce_minloc({bu, iu});
  const svmmpi::DoubleInt low = comm_.allreduce_maxloc({bl, il});
  beta_up_ = up.value;
  beta_low_ = low.value;
  i_up_ = up.index;
  i_low_ = low.index;
}

void PbmSolver::apply_cross_block_deltas(const std::vector<std::uint32_t>& changed,
                                         const std::vector<double>& delta) {
  if (changed.empty()) return;
  // Shared scratch across blocks: the rows/norms/coeffs of every changed
  // sample, ascending global index. Norms are recomputed with the engine's
  // own helper so in-span and off-span rows agree bitwise.
  std::vector<std::span<const svmdata::Feature>> rows;
  std::vector<double> sq_norms;
  std::vector<double> coeffs;
  rows.reserve(changed.size());
  sq_norms.reserve(changed.size());
  coeffs.reserve(changed.size());
  std::vector<std::uint32_t> targets;

  for (int b = first_block_; b < last_block_; ++b) {
    const svmdata::BlockRange blk = block_of(b);
    rows.clear();
    sq_norms.clear();
    coeffs.clear();
    // Ascending-j exclusion of the block's OWN rows: the inner solver
    // already applied those pair-by-pair. The surviving set depends only on
    // the block partition (fixed B), never on the rank partition, and
    // eval_block_rows accumulates it into a fresh partial in ascending j —
    // so gamma's bits are the same no matter how many ranks compute them.
    for (const std::uint32_t g : changed) {
      if (blk.contains(g)) continue;
      rows.push_back(data_.X.row(g));
      sq_norms.push_back(row_sq_norm(data_.X, g));
      coeffs.push_back(data_.y[g] * delta[g]);
    }
    if (rows.empty()) continue;
    targets.resize(blk.size());
    for (std::size_t i = 0; i < blk.size(); ++i) targets[i] = static_cast<std::uint32_t>(i);
    engine_.eval_block_rows(rows, sq_norms, coeffs, targets, blk.begin,
                            std::span<double>(dgamma_.data() + (blk.begin - span_.begin),
                                              blk.size()),
                            config_.openmp_gamma);
  }
}

void PbmSolver::sync_dense(const std::vector<double>& previous_alpha) {
  // The inner solver only writes this rank's assigned span, and spans tile
  // [0, n) contiguously in rank order (blocks are owned by the rank that
  // owns their start index), so the round's new global alpha is exactly the
  // rank-ordered concatenation of the owned slices. An allgatherv of the
  // spans reconstructs it bit-for-bit while each rank injects only its
  // 8*|span| contribution bytes — 1/p-th of the old sum-allreduce of a
  // mostly-zero full vector, whose padding zeros were an IEEE identity but
  // still billed (and shipped) on the wire.
  const auto slices = comm_.allgatherv(
      std::span<const double>(alpha_.data() + span_.begin, span_.size()));
  std::size_t at = 0;
  for (const std::vector<double>& slice : slices) {
    std::copy(slice.begin(), slice.end(), alpha_.begin() + static_cast<std::ptrdiff_t>(at));
    at += slice.size();
  }
  if (at != n_) throw std::runtime_error("PbmSolver: dense sync slices do not tile alpha");

  changed_.clear();
  delta_.assign(n_, 0.0);
  for (std::size_t g = 0; g < n_; ++g) {
    if (alpha_[g] != previous_alpha[g]) {
      changed_.push_back(static_cast<std::uint32_t>(g));
      delta_[g] = alpha_[g] - previous_alpha[g];
    }
  }
  apply_cross_block_deltas(changed_, delta_);
}

void PbmSolver::sync_sparse(const std::vector<double>& previous_alpha) {
  // The changed samples circulate the ring exactly like PR 4's pipelined
  // reconstruction: step k posts the next exchange before computing on the
  // current block, and the overlap is credited max(compute, comm). Each
  // step's samples update gamma via one eval_block_rows per assigned block;
  // grouping by source rank makes this path partition-DEPENDENT (like the
  // SMO reconstruction ring) — dense is the mode recovery tests pin.
  PackedSamples mine;
  for (std::size_t g = span_.begin; g < span_.end; ++g)
    if (alpha_[g] != previous_alpha[g])
      mine.add(static_cast<std::int64_t>(g), data_.y[g], alpha_[g], engine_.sq_norm(g),
               data_.X.row(g));

  const int p = comm_.size();
  const int to = (comm_.rank() + 1) % p;
  const int from = (comm_.rank() - 1 + p) % p;
  svmobs::Gauge& comm_s_gauge = metrics_.gauge("pbm.ring_comm_s");
  svmobs::Gauge& overlapped_s_gauge = metrics_.gauge("pbm.ring_overlapped_s");

  std::vector<std::byte> circulating;
  std::vector<std::byte> incoming;
  mine.pack_into(circulating);
  PackedSamples block;

  std::vector<std::span<const svmdata::Feature>> rows;
  std::vector<double> sq_norms;
  std::vector<double> coeffs;
  std::vector<std::uint32_t> targets;

  for (int step = 0; step < p; ++step) {
    svmobs::TraceSpan step_span("pbm_ring_step", "pbm");
    const bool exchanging = step + 1 < p;
    svmmpi::Request recv_req;
    svmmpi::Request send_req;
    double comm_before = 0.0;
    if (exchanging) {
      comm_before = comm_.traffic().modeled_seconds;
      recv_req = comm_.irecv_into(incoming, from, kTagPbmRing);
      send_req = comm_.isend(std::span<const std::byte>(circulating), to, kTagPbmRing);
    }

    const PackedSamples* b = &mine;
    if (step != 0) {
      PackedSamples::unpack_into(circulating, block);
      b = &block;
    }
    svmutil::Timer compute_timer;
    for (int ab = first_block_; ab < last_block_; ++ab) {
      const svmdata::BlockRange blk = block_of(ab);
      rows.clear();
      sq_norms.clear();
      coeffs.clear();
      for (std::size_t j = 0; j < b->size(); ++j) {
        const auto g = static_cast<std::size_t>(b->global_index(j));
        if (blk.contains(g)) continue;  // inner solver already applied these
        rows.push_back(b->row(j));
        sq_norms.push_back(b->sq_norm(j));
        coeffs.push_back(b->y(j) * (b->alpha(j) - previous_alpha[g]));
      }
      if (rows.empty()) continue;
      targets.resize(blk.size());
      for (std::size_t i = 0; i < blk.size(); ++i) targets[i] = static_cast<std::uint32_t>(i);
      engine_.eval_block_rows(rows, sq_norms, coeffs, targets, blk.begin,
                              std::span<double>(dgamma_.data() + (blk.begin - span_.begin),
                                                blk.size()),
                              config_.openmp_gamma);
    }
    // Adopt the circulated alphas into the replica (own block already holds
    // them; remote blocks carry the sender's authoritative new values).
    if (step != 0)
      for (std::size_t j = 0; j < b->size(); ++j)
        alpha_[static_cast<std::size_t>(b->global_index(j))] = b->alpha(j);
    const double compute_s = compute_timer.seconds();

    if (exchanging) {
      svmobs::TraceSpan wait_span("pbm_ring_wait", "pbm");
      recv_req.wait();
      send_req.wait();
      const double comm_s = comm_.traffic().modeled_seconds - comm_before;
      comm_s_gauge.add(comm_s);
      overlapped_s_gauge.add(comm_.credit_overlap(compute_s, comm_s));
      circulating.swap(incoming);
    }
  }
}

void PbmSolver::record_round_obs(double wall_s, double compute_s, double wait_s) {
  // Live skew signal for benches/scheduler without post-processing the trace.
  // These are LOCAL proxies: wait_s is this rank's wall time inside the
  // round's collectives/sync (which includes blocking on the slowest peer),
  // and imbalance_ratio is wait/wall — a rank whose peers straggle sees a
  // high ratio. Exact per-peer attribution needs the cross-rank flow events
  // and lives in tools/trace_analyze.
  metrics_.gauge("obs.round_compute_s").add(compute_s);
  metrics_.gauge("obs.round_wait_s").add(wait_s);
  if (wall_s > 0.0) {
    const double ratio = wait_s / wall_s;
    metrics_.gauge("obs.imbalance_ratio").set(ratio);
    if (ratio > 0.5) metrics_.counter("obs.straggler_suspects").add();
  }
}

bool PbmSolver::run_round() {
  // Uniform round marker + the PBM-specific span: trace_analyze segments on
  // the former, humans reading Perfetto keep the latter.
  svmobs::TraceRound round_marker("pbm");
  svmobs::TraceSpan round_span("pbm_round", "pbm");
  svmutil::Timer round_timer;
  double compute_s = 0.0;
  double wait_s = 0.0;
  const std::vector<double> previous_alpha = alpha_;
  gamma_prev_.assign(gamma_.begin(), gamma_.end());
  dgamma_.assign(span_.size(), 0.0);
  const double tolerance = 2.0 * config_.params.eps;
  const std::uint64_t inner_cap = config_.params.pbm_inner_iterations > 0
                                      ? config_.params.pbm_inner_iterations
                                      : config_.params.max_iterations;

  {
    svmobs::TraceSpan solve_span("pbm_block_solve", "pbm");
    svmutil::Timer compute_timer;
    for (int b = first_block_; b < last_block_; ++b) {
      const svmdata::BlockRange blk = block_of(b);
      const BlockSolveResult r = solve_sequential_block(
          data_, config_.params, engine_, blk.begin, blk.end,
          std::span<double>(alpha_.data() + blk.begin, blk.size()),
          std::span<double>(gamma_.data() + (blk.begin - span_.begin), blk.size()), tolerance,
          inner_cap);
      inner_iterations_.add(r.iterations);
    }
    compute_s = compute_timer.seconds();
  }

  // Delta census: one small control allreduce carries the global changed
  // count, the estimated sparse payload and the changed-BLOCK count, so
  // every rank picks the same wire encoding (and knows whether anything
  // moved at all, and whether a line search is needed) deterministically.
  std::int64_t census[3] = {0, 0, 0};
  for (int b = first_block_; b < last_block_; ++b) {
    const svmdata::BlockRange blk = block_of(b);
    bool block_changed = false;
    for (std::size_t g = blk.begin; g < blk.end; ++g) {
      if (alpha_[g] != previous_alpha[g]) {
        block_changed = true;
        ++census[0];
        census[1] += static_cast<std::int64_t>(
            4 * sizeof(double) + data_.X.row(g).size() * sizeof(svmdata::Feature));
      }
    }
    if (block_changed) ++census[2];
  }
  svmutil::Timer census_timer;
  const std::vector<std::int64_t> global =
      comm_.allreduce(std::span<const std::int64_t>(census, 3), svmmpi::ReduceOp::sum);
  wait_s += census_timer.seconds();
  delta_nnz_.add(static_cast<std::uint64_t>(global[0]));
  if (global[0] == 0) {  // nothing moved: caller escalates to polishing
    record_round_obs(round_timer.seconds(), compute_s, wait_s);
    return false;
  }

  PbmDeltaEncoding encoding = config_.params.pbm_delta;
  if (encoding == PbmDeltaEncoding::auto_select) {
    // Dense is an allgatherv of the owned spans: ~8n/p injected bytes per
    // rank. The ring forwards every changed sample's packet once per rank,
    // ~global[1] bytes per rank. Both estimates are built from globals, so
    // the choice is replica-consistent.
    encoding = static_cast<std::uint64_t>(global[1]) <
                       8 * n_ / static_cast<std::size_t>(comm_.size())
                   ? PbmDeltaEncoding::sparse
                   : PbmDeltaEncoding::dense;
  }
  {
    svmobs::TraceSpan sync_span("pbm_sync", "pbm");
    svmutil::Timer sync_timer;
    const double sync_before = comm_.traffic().modeled_seconds;
    if (encoding == PbmDeltaEncoding::sparse) {
      sparse_rounds_.add();
      sync_payload_bytes_.add(static_cast<std::uint64_t>(global[1]));
      sync_sparse(previous_alpha);
    } else {
      dense_rounds_.add();
      sync_payload_bytes_.add(8 * n_);
      sync_dense(previous_alpha);
    }
    metrics_.gauge("pbm.sync_s").add(comm_.traffic().modeled_seconds - sync_before);
    wait_s += sync_timer.seconds();
  }

  // Commit alpha_prev + t*D. Simultaneous block solves are a Jacobi step:
  // each block's delta is an ascent direction alone, but their sum can
  // overshoot through the cross-block quadratic terms and oscillate forever.
  // A single changed block cannot overshoot (t* = 1 by construction), and
  // skipping the search there keeps the B = 1 trajectory bitwise the
  // sequential solver's.
  double t = 1.0;
  if (global[2] > 1) {
    svmutil::Timer search_timer;
    t = line_search(previous_alpha);
    wait_s += search_timer.seconds();
    metrics_.counter("pbm.line_search_rounds").add();
    metrics_.gauge("pbm.step_t").set(t);
  }
  if (t < 1.0) {
    for (std::size_t g = 0; g < n_; ++g) {
      const double d = alpha_[g] - previous_alpha[g];
      if (d != 0.0) alpha_[g] = previous_alpha[g] + t * d;
    }
    // gamma is linear in alpha, so the gradient at the committed point is
    // exactly the blend of the round-entry gradient with the full-step
    // direction (own-block part from the inner solves + cross-block part).
    for (std::size_t i = 0; i < span_.size(); ++i)
      gamma_[i] = gamma_prev_[i] + t * ((gamma_[i] - gamma_prev_[i]) + dgamma_[i]);
  } else {
    // Full step: the inner solves' gamma already carries the own-block
    // direction; fold in the accumulated cross-block part. The != 0 guard
    // preserves gamma's bit patterns on untouched entries (B = 1 parity).
    for (std::size_t i = 0; i < span_.size(); ++i)
      if (dgamma_[i] != 0.0) gamma_[i] += dgamma_[i];
  }
  record_round_obs(round_timer.seconds(), compute_s, wait_s);
  return true;
}

double PbmSolver::line_search(const std::vector<double>& previous_alpha) {
  // W(alpha_prev + t*D) = W + a*t - b*t^2/2 exactly (the dual is quadratic):
  //   a = sum_i D_i dW/dalpha_i(prev) = -sum_i y_i D_i gamma_prev_i
  //   b = D^T Q D = sum_i y_i D_i * sum_j y_j D_j K_ij
  // where the inner sum is the full-step gamma direction this rank already
  // holds for its span (own-block from the inner solves, cross-block in
  // dgamma_). Per-block partial sums folded in ascending order through an
  // exact allreduce (one contributor per slot) keep t* — and the whole
  // trajectory — partition-independent.
  std::vector<double> slots(2 * static_cast<std::size_t>(blocks_), 0.0);
  for (int b = first_block_; b < last_block_; ++b) {
    const svmdata::BlockRange blk = block_of(b);
    double ascent = 0.0;
    double curvature = 0.0;
    for (std::size_t g = blk.begin; g < blk.end; ++g) {
      const double d = alpha_[g] - previous_alpha[g];
      if (d == 0.0) continue;
      const std::size_t i = g - span_.begin;
      const double yd = data_.y[g] * d;
      ascent -= yd * gamma_prev_[i];
      curvature += yd * ((gamma_[i] - gamma_prev_[i]) + dgamma_[i]);
    }
    slots[2 * static_cast<std::size_t>(b)] = ascent;
    slots[2 * static_cast<std::size_t>(b) + 1] = curvature;
  }
  const std::vector<double> total =
      comm_.allreduce(std::span<const double>(slots), svmmpi::ReduceOp::sum);
  double ascent = 0.0;
  double curvature = 0.0;
  for (int b = 0; b < blocks_; ++b) {
    ascent += total[2 * static_cast<std::size_t>(b)];
    curvature += total[2 * static_cast<std::size_t>(b) + 1];
  }
  // Each block delta strictly increases the dual, so D is an ascent
  // direction (a > 0) and Q is PSD (b >= 0); the guards only absorb
  // floating-point dust. t is clamped to 1: every coordinate of
  // prev + t*D then stays a convex combination inside [0, C].
  if (curvature <= 0.0) return 1.0;
  const double t = ascent / curvature;
  if (!(t > 0.0)) return 1.0;
  return std::min(1.0, t);
}

void PbmSolver::polish() {
  svmobs::TraceSpan polish_span("pbm_polish", "pbm");
  const double two_eps = 2.0 * config_.params.eps;
  while (true) {
    refresh_bounds();
    if (beta_up_ + two_eps >= beta_low_) {
      converged_ = true;
      return;
    }
    if (polish_iterations_.value() >= config_.params.max_iterations) return;

    // Every rank computes the identical pair update from replicated state:
    // the violator rows come from the shared dataset, their alphas from the
    // replicated vector, their gammas from the MINLOC/MAXLOC values. No
    // sample moves; the only traffic was the two 16-byte collectives above.
    const auto g_up = static_cast<std::size_t>(i_up_);
    const auto g_low = static_cast<std::size_t>(i_low_);
    const auto row_up = data_.X.row(g_up);
    const auto row_low = data_.X.row(g_low);
    const double sq_up = row_sq_norm(data_.X, g_up);
    const double sq_low = row_sq_norm(data_.X, g_low);
    const PairState state{data_.y[g_up],
                          data_.y[g_low],
                          alpha_[g_up],
                          alpha_[g_low],
                          beta_up_,
                          beta_low_,
                          engine_.eval_one(row_up, row_up, sq_up, sq_up),
                          engine_.eval_one(row_low, row_low, sq_low, sq_low),
                          engine_.eval_one(row_up, row_low, sq_up, sq_low),
                          config_.params.C_of(data_.y[g_up]),
                          config_.params.C_of(data_.y[g_low])};
    const PairResult update = solve_pair(state);
    if (!update.progress) return;  // degenerate pair; same verdict on every rank

    const double delta_up = update.alpha_up - alpha_[g_up];
    const double delta_low = update.alpha_low - alpha_[g_low];
    alpha_[g_up] = update.alpha_up;
    alpha_[g_low] = update.alpha_low;

    const double coef_up = data_.y[g_up] * delta_up;
    const double coef_low = data_.y[g_low] * delta_low;
    engine_.eval_pair_range(row_up, sq_up, row_low, sq_low, span_.begin, span_.end, k_up_,
                            k_low_, config_.openmp_gamma);
    for (std::size_t i = 0; i < span_.size(); ++i)
      gamma_[i] += coef_up * k_up_[i] + coef_low * k_low_[i];
    polish_iterations_.add();
  }
}

double PbmSolver::assemble_beta() {
  // Per-block I0 (sum, count) slots: the allreduce is exact (one contributor
  // per slot), and every rank folds the blocks in ascending order — the
  // threshold's bits do not depend on the rank partition.
  std::vector<double> slots(2 * static_cast<std::size_t>(blocks_), 0.0);
  for (int b = first_block_; b < last_block_; ++b) {
    const svmdata::BlockRange blk = block_of(b);
    double sum = 0.0;
    double count = 0.0;
    for (std::size_t g = blk.begin; g < blk.end; ++g) {
      if (classify(data_.y[g], alpha_[g], config_.params.C_of(data_.y[g])) == IndexSet::I0) {
        sum += gamma_[g - span_.begin];
        count += 1.0;
      }
    }
    slots[2 * static_cast<std::size_t>(b)] = sum;
    slots[2 * static_cast<std::size_t>(b) + 1] = count;
  }
  const std::vector<double> total =
      comm_.allreduce(std::span<const double>(slots), svmmpi::ReduceOp::sum);
  double sum = 0.0;
  double count = 0.0;
  for (int b = 0; b < blocks_; ++b) {
    sum += total[2 * static_cast<std::size_t>(b)];
    count += total[2 * static_cast<std::size_t>(b) + 1];
  }
  return count > 0.0 ? sum / count : 0.5 * (beta_low_ + beta_up_);
}

void PbmSolver::snapshot_stats() {
  stats_.iterations = round_;  // PBM reports OUTER ROUNDS as its iterations
  stats_.kernel_evaluations = kernel_.evaluations();
  stats_.final_beta_up = beta_up_;
  stats_.final_beta_low = beta_low_;
  stats_.converged = converged_;
  stats_.active_at_end = span_.size();
  stats_.min_active = span_.size();
  stats_.engine_pair_evals = engine_.stats().pair_evals;
  stats_.engine_scatter_builds = engine_.stats().scatter_builds;
  stats_.engine_bytes_streamed = engine_.stats().bytes_streamed;

  metrics_.counter("solver.iterations").set(round_);
  metrics_.counter("kernel.evaluations").set(kernel_.evaluations());
  metrics_.counter("engine.pair_evals").set(engine_.stats().pair_evals);
  metrics_.counter("engine.single_evals").set(engine_.stats().single_evals);
  metrics_.counter("engine.scatter_builds").set(engine_.stats().scatter_builds);
  metrics_.counter("engine.bytes_streamed").set(engine_.stats().bytes_streamed);
  metrics_.counter("engine.panel_dots").set(engine_.stats().panel_dots);
  metrics_.gauge("solver.final_gap").set(beta_low_ - beta_up_);
  metrics_.gauge("solver.active_at_end").set(static_cast<double>(span_.size()));
  metrics_.counter("solver.converged").set(converged_ ? 1 : 0);
}

RankResult PbmSolver::solve() {
  svmobs::TraceSpan span("solve", "solver");
  svmutil::Timer total;

  // Both classes must exist globally (the assigned spans tile the dataset).
  std::int64_t class_counts[2] = {0, 0};
  for (std::size_t g = span_.begin; g < span_.end; ++g)
    ++class_counts[data_.y[g] > 0.0 ? 0 : 1];
  const std::vector<std::int64_t> classes =
      comm_.allreduce(std::span<const std::int64_t>(class_counts, 2), svmmpi::ReduceOp::sum);
  if (classes[0] == 0 || classes[1] == 0)
    throw std::invalid_argument("PbmSolver: dataset must contain both classes");

  maybe_restore();

  const double two_eps = 2.0 * config_.params.eps;
  for (;;) {
    refresh_bounds();
    if (beta_up_ + two_eps >= beta_low_) {
      converged_ = true;
      break;
    }
    if (round_ >= config_.params.pbm_max_rounds) break;
    maybe_checkpoint();

    const bool moved = run_round();
    ++round_;
    rounds_.add();
    if (!moved) {
      // Every block is internally optimal but the global gap is open: the
      // violating pair spans blocks. Polish it away with cross-block pair
      // updates; if even polishing cannot move, the solve has stalled.
      const std::uint64_t polish_before = polish_iterations_.value();
      polish();
      if (converged_) break;
      if (polish_iterations_.value() == polish_before) break;  // stalled
    }
  }

  const double beta = assemble_beta();
  stats_.solve_seconds = total.seconds();
  metrics_.gauge("solver.solve_s").set(stats_.solve_seconds);
  snapshot_stats();

  RankResult result;
  result.range = range_;
  result.alpha.assign(alpha_.begin() + range_.begin, alpha_.begin() + range_.end);
  result.beta = beta;
  result.stats = stats_;
  result.metrics = metrics_;
  return result;
}

}  // namespace svmcore
