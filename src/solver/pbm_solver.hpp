// Parallel Block Minimization (PBM) solver — the communication-efficient
// second training algorithm beside shrinking-SMO (Hsieh, Si, Dhillon,
// arXiv:1608.02010, with Glasmachers-style warm starts, arXiv:2207.01016).
//
// Where the distributed SMO broadcasts a working-set pair every iteration
// (O(iterations) small messages), PBM partitions the dual variables into B
// fixed blocks, re-solves each block's subproblem locally with the
// sequential SMO as the inner solver (warm-started from the previous
// round's alpha), and synchronizes ONE compressed alpha-delta per outer
// round. Per-round communication is a single allgatherv of the owned alpha
// slices (dense encoding, ~8n/p injected bytes per rank) or one pipelined
// ring pass of the changed samples (sparse encoding) — the paper's
// per-iteration broadcast pattern disappears entirely.
//
// State layout: the full alpha vector is REPLICATED on every rank (the
// dense sync keeps the replicas exactly equal: the inner solver only writes
// its own span, and the spans tile [0, n) in rank order, so concatenating
// the gathered slices reconstructs the identical vector everywhere). The
// gradient gamma is partitioned: each rank maintains it over the contiguous
// union of its ASSIGNED BLOCKS. The block count B is fixed at launch
// (decoupled from the current world size), so the optimization trajectory —
// every inner-solve decision, every cross-block gamma update, the final
// model — is independent of how many ranks execute it. That is what makes
// shrink-world recovery bit-identical: after a permanent rank death the
// survivors repartition the round-boundary checkpoints, re-assign the same
// B blocks among p-1 ranks and replay the identical arithmetic.
//
// Cross-block stalls: block minimization alone cannot fix a violating pair
// that spans two blocks (each block can be internally optimal while the
// global gap stays open). When a round moves no alpha at all, the solver
// switches to cross-block pair polishing: Keerthi pair updates on the
// global worst violators, computed redundantly on every rank from the
// replicated alpha and the shared dataset — two 16-byte MINLOC/MAXLOC
// collectives per polish step, no sample broadcast, terminating with
// exactly SMO's beta_up + 2*eps >= beta_low criterion.
#pragma once

#include <cstdint>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/distributed_solver.hpp"
#include "core/sample_block.hpp"
#include "core/types.hpp"
#include "data/split.hpp"
#include "data/sparse.hpp"
#include "kernel/kernel_engine.hpp"
#include "mpisim/comm.hpp"
#include "obs/metrics.hpp"

namespace svmcore {

class PbmSolver {
 public:
  /// `dataset` is the full training set. `config.params.pbm_blocks` must be
  /// resolved (> 0) and >= comm.size(); the trainer pins it to the LAUNCH
  /// rank count before the SPMD region so it survives shrinks unchanged.
  PbmSolver(svmmpi::Comm& comm, const svmdata::Dataset& dataset,
            const DistributedConfig& config);

  [[nodiscard]] RankResult solve();

 private:
  /// Re-solves every assigned block (warm-started), synchronizes the
  /// round's combined alpha direction D, and commits alpha + t*D where t is
  /// the exact line-search step (see line_search) — the paper's guard
  /// against simultaneous-block-update overshoot. Returns true when any
  /// alpha moved; a false return escalates to cross-block polishing.
  bool run_round();

  /// Dense delta sync: one allgatherv of each rank's owned alpha slice,
  /// concatenated in rank order (spans tile [0, n)).
  /// Accumulates the cross-block gamma direction into dgamma_.
  void sync_dense(const std::vector<double>& previous_alpha);

  /// Sparse delta sync: the changed samples circulate the pipelined
  /// Isend/Irecv ring (the PR 4 pattern), each step feeding one
  /// eval_block_rows call per assigned block into dgamma_.
  void sync_sparse(const std::vector<double>& previous_alpha);

  /// Accumulates Sum_j y_j*delta_j*K(j, i) into dgamma_ over every assigned
  /// block, excluding each block's own rows (the inner solver's own-block
  /// effect is already captured as gamma_ - gamma_prev_). `changed` holds
  /// global indices of non-zero deltas, ascending.
  void apply_cross_block_deltas(const std::vector<std::uint32_t>& changed,
                                const std::vector<double>& delta);

  /// Exact line search along the combined direction D = alpha* - alpha_prev:
  /// the dual is quadratic, so the ascent-optimal step is
  ///   t* = clamp(a / b, 0, 1),  a = -Sum_i y_i D_i gamma_prev_i,
  ///                             b = D^T Q D = Sum_i y_i D_i dgamma_i.
  /// a and b are folded from per-block partial sums via one exact allreduce
  /// (one contributor per slot, ascending-block combine), so t* — and with
  /// it the whole trajectory — is partition-independent. Returns t*.
  [[nodiscard]] double line_search(const std::vector<double>& previous_alpha);

  /// Cross-block pair polishing (see file comment). Returns when the global
  /// gap closes or the round/iteration caps hit.
  void polish();

  /// Global worst-violator bounds over the assigned span via MINLOC/MAXLOC;
  /// grouping-independent (value then smaller-global-index tie-break).
  void refresh_bounds();

  void maybe_restore();
  void maybe_checkpoint();

  /// Publishes one outer round's local time split through MetricsRegistry
  /// (obs.round_compute_s / obs.round_wait_s / obs.imbalance_ratio plus the
  /// obs.straggler_suspects counter). Local wall-clock proxies only — no
  /// extra communication, so the solver's message/byte counts are untouched.
  void record_round_obs(double wall_s, double compute_s, double wait_s);

  /// Partition-independent threshold: per-block I0 (sum, count) slots
  /// allreduced exactly (one contributor per slot), combined in ascending
  /// block order on every rank.
  [[nodiscard]] double assemble_beta();

  void snapshot_stats();

  [[nodiscard]] svmdata::BlockRange block_of(int b) const {
    return svmdata::block_range(n_, blocks_, b);
  }
  [[nodiscard]] std::size_t local_of(std::size_t global) const noexcept {
    return global - span_.begin;
  }

  svmmpi::Comm& comm_;
  const svmdata::Dataset& data_;
  DistributedConfig config_;
  std::size_t n_ = 0;
  int blocks_ = 0;                     ///< B, fixed at launch
  svmdata::BlockRange range_;          ///< this rank's checkpoint partition slice
  int first_block_ = 0;                ///< assigned blocks [first_block_, last_block_)
  int last_block_ = 0;
  svmdata::BlockRange span_;           ///< contiguous union of assigned blocks
  svmkernel::Kernel kernel_;
  svmkernel::KernelEngine engine_;     ///< norm range = span_

  std::vector<double> alpha_;          ///< FULL replicated alpha (n entries)
  std::vector<double> gamma_;          ///< gamma over span_ (index = global - span_.begin)

  double beta_up_ = 0.0;
  double beta_low_ = 0.0;
  std::int64_t i_up_ = -1;
  std::int64_t i_low_ = -1;
  bool converged_ = false;

  std::uint64_t round_ = 0;
  std::uint64_t last_checkpoint_round_ = ~0ULL;
  bool restored_ = false;

  // Round scratch, reused so the steady state allocates nothing.
  std::vector<std::uint32_t> changed_;
  std::vector<double> delta_;
  std::vector<double> gamma_prev_;  ///< span gamma at round entry
  std::vector<double> dgamma_;      ///< span CROSS-block gamma direction (own
                                    ///< direction is gamma_ - gamma_prev_)
  std::vector<double> k_up_;
  std::vector<double> k_low_;

  svmobs::MetricsRegistry metrics_;
  svmobs::Counter& rounds_;
  svmobs::Counter& inner_iterations_;
  svmobs::Counter& polish_iterations_;
  svmobs::Counter& delta_nnz_;
  svmobs::Counter& sync_payload_bytes_;
  svmobs::Counter& dense_rounds_;
  svmobs::Counter& sparse_rounds_;

  SolverStats stats_;
};

}  // namespace svmcore
