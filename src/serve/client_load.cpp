#include "serve/client_load.hpp"

#include <random>
#include <stdexcept>

namespace svmserve {

std::vector<double> poisson_arrivals(std::size_t n, double qps, std::uint64_t seed) {
  std::vector<double> arrivals(n, 0.0);
  if (qps <= 0.0) return arrivals;
  // mt19937_64 + exponential_distribution: both are pinned by the standard's
  // algorithm for integer outputs and by libstdc++'s for the exponential
  // transform, and the schedule only needs to be reproducible within one
  // build anyway (a run is always compared against a run of the same
  // binary).
  std::mt19937_64 rng(seed * 0x9e3779b97f4a7c15ULL + 1);
  std::exponential_distribution<double> gap(qps);
  double t = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    t += gap(rng);
    arrivals[i] = t;
  }
  return arrivals;
}

std::vector<std::uint32_t> assign_query_rows(std::size_t n, std::size_t num_rows,
                                             std::uint64_t seed) {
  if (num_rows == 0) throw std::invalid_argument("assign_query_rows: empty query matrix");
  std::mt19937_64 rng(seed * 0x2545f4914f6cdd1dULL + 7);
  std::uniform_int_distribution<std::uint32_t> pick(0, static_cast<std::uint32_t>(num_rows - 1));
  std::vector<std::uint32_t> rows(n);
  for (std::uint32_t& r : rows) r = pick(rng);
  return rows;
}

}  // namespace svmserve
