#include "serve/serving.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <limits>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>

#include "kernel/kernel.hpp"
#include "mpisim/comm.hpp"
#include "mpisim/spmd.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"

namespace svmserve {

namespace {

using svmdata::Feature;
using svmmpi::Comm;

// --- wire protocol ---------------------------------------------------------
// Frontend -> worker on kWorkTag: BatchHeader, then `count` queries, each a
// QueryHeader followed by its features. Worker -> frontend: `count` doubles
// (the shard's partial sums) on the batch's unique reply tag — so a late or
// duplicated reply from an abandoned attempt can never match a later batch's
// receive, it just sits in the mailbox until the stale-reply drain pops it.

constexpr int kReadyTag = 1;
constexpr int kWorkTag = 2;
constexpr int kReplyTagBase = 100;
// Reply tags cycle far below the runtime's reserved tag space (1 << 28).
constexpr std::uint32_t kReplyTagWindow = 1u << 20;

constexpr std::uint32_t kOpExit = 0;
constexpr std::uint32_t kOpWork = 1;

struct BatchHeader {
  std::uint32_t opcode = kOpWork;
  std::uint32_t reply_tag = 0;
  std::uint32_t count = 0;
  std::uint32_t degraded = 0;
};
static_assert(std::is_trivially_copyable_v<BatchHeader>);

struct QueryHeader {
  std::uint64_t nfeat = 0;
  double sq_norm = 0.0;
};
static_assert(std::is_trivially_copyable_v<QueryHeader>);

template <typename T>
void append_pod(std::vector<std::byte>& out, const T& value) {
  const std::size_t offset = out.size();
  out.resize(offset + sizeof(T));
  std::memcpy(out.data() + offset, &value, sizeof(T));
}

template <typename T>
[[nodiscard]] T read_pod(std::span<const std::byte> bytes, std::size_t& offset) {
  if (bytes.size() - offset < sizeof(T))
    throw std::runtime_error("svmserve: truncated batch payload");
  T value;
  std::memcpy(&value, bytes.data() + offset, sizeof(T));
  offset += sizeof(T);
  return value;
}

[[nodiscard]] std::vector<std::byte> encode_batch(std::uint32_t reply_tag, bool degraded,
                                                  const svmdata::CsrMatrix& queries,
                                                  std::span<const double> query_sq_norms,
                                                  std::span<const std::uint32_t> rows) {
  std::vector<std::byte> out;
  BatchHeader header;
  header.reply_tag = reply_tag;
  header.count = static_cast<std::uint32_t>(rows.size());
  header.degraded = degraded ? 1 : 0;
  append_pod(out, header);
  for (const std::uint32_t r : rows) {
    const auto row = queries.row(r);
    QueryHeader qh{row.size(), query_sq_norms[r]};
    append_pod(out, qh);
    const std::size_t offset = out.size();
    out.resize(offset + row.size_bytes());
    if (!row.empty()) std::memcpy(out.data() + offset, row.data(), row.size_bytes());
  }
  return out;
}

[[nodiscard]] std::vector<std::byte> encode_exit() {
  std::vector<std::byte> out;
  BatchHeader header;
  header.opcode = kOpExit;
  append_pod(out, header);
  return out;
}

/// Worker-side scratch for a decoded batch; buffers reused across batches.
struct DecodedBatch {
  BatchHeader header;
  std::vector<Feature> features;       ///< all queries, concatenated
  std::vector<std::size_t> offsets;    ///< count+1 bounds into features
  std::vector<double> sq_norms;
  std::vector<std::span<const Feature>> spans;
};

void decode_batch(std::span<const std::byte> bytes, DecodedBatch& batch) {
  std::size_t offset = 0;
  batch.header = read_pod<BatchHeader>(bytes, offset);
  const std::size_t count = batch.header.count;
  batch.features.clear();
  batch.offsets.assign(1, 0);
  batch.sq_norms.clear();
  for (std::size_t q = 0; q < count; ++q) {
    const auto qh = read_pod<QueryHeader>(bytes, offset);
    const std::size_t nbytes = static_cast<std::size_t>(qh.nfeat) * sizeof(Feature);
    if (bytes.size() - offset < nbytes)
      throw std::runtime_error("svmserve: truncated query features");
    const std::size_t first = batch.features.size();
    batch.features.resize(first + qh.nfeat);
    if (qh.nfeat > 0)
      std::memcpy(batch.features.data() + first, bytes.data() + offset, nbytes);
    offset += nbytes;
    batch.offsets.push_back(batch.features.size());
    batch.sq_norms.push_back(qh.sq_norm);
  }
  // Spans are rebuilt AFTER all features landed (resize invalidates).
  batch.spans.clear();
  for (std::size_t q = 0; q < count; ++q)
    batch.spans.push_back(std::span<const Feature>(batch.features)
                              .subspan(batch.offsets[q], batch.offsets[q + 1] - batch.offsets[q]));
}

// --- shared client/frontend state ------------------------------------------

struct Shared {
  std::mutex mutex;
  std::condition_variable arrived;    ///< wakes the frontend batcher
  std::condition_variable completed;  ///< wakes closed-loop clients + run exit
  std::deque<std::uint32_t> queue;    ///< accepted request ids, FIFO
  bool service_up = false;    ///< workers ready; clients may submit
  bool service_down = false;  ///< frontend exited; submits fail fast
  bool producers_done = false;

  std::vector<RequestRecord>* records = nullptr;
  svmutil::Timer clock;  ///< the service clock; reset when service_up flips

  std::atomic<double> service_rate{0.0};  ///< completed requests/s, EWMA
  std::atomic<std::uint32_t> inflight{0};

  std::uint64_t submitted = 0;
  std::uint64_t accepted = 0;
  std::uint64_t shed_queue_full = 0;
  std::uint64_t shed_predicted_wait = 0;
  std::size_t max_queue_depth = 0;
};

enum class SubmitVerdict { accepted, shed, down };

/// Deadline-aware admission, called on client threads. Shedding here is the
/// FIRST line of graceful degradation: the queue never exceeds
/// queue_capacity, and a request predicted to wait past its deadline is
/// refused immediately instead of being accepted and then missed.
SubmitVerdict submit(Shared& sh, std::uint32_t id, const ServeOptions& opt) {
  std::unique_lock lock(sh.mutex);
  ++sh.submitted;
  RequestRecord& rec = (*sh.records)[id];
  const double now = sh.clock.seconds();
  rec.arrival_s = now;
  if (sh.service_down) {
    rec.status = RequestStatus::failed;
    rec.done_s = now;
    return SubmitVerdict::down;
  }
  const std::size_t depth = sh.queue.size();
  if (depth >= opt.queue_capacity) {
    ++sh.shed_queue_full;
    rec.status = RequestStatus::shed;
    rec.done_s = now;
    return SubmitVerdict::shed;
  }
  const double rate = sh.service_rate.load(std::memory_order_relaxed);
  if (rate > 0.0) {
    const double backlog =
        static_cast<double>(depth) + static_cast<double>(sh.inflight.load(std::memory_order_relaxed));
    if (backlog / rate > opt.admission_margin * opt.deadline_s) {
      ++sh.shed_predicted_wait;
      rec.status = RequestStatus::shed;
      rec.done_s = now;
      return SubmitVerdict::shed;
    }
  }
  ++sh.accepted;
  sh.queue.push_back(id);
  sh.max_queue_depth = std::max(sh.max_queue_depth, sh.queue.size());
  lock.unlock();
  sh.arrived.notify_one();
  return SubmitVerdict::accepted;
}

// --- worker ----------------------------------------------------------------

void worker_body(Comm& comm, const svmcore::SvmModel& model, const ServeOptions& opt) {
  const int me = comm.rank();
  const int shard = (me - 1) % opt.shards;
  const std::size_t nsv = model.num_support_vectors();
  const std::size_t begin = (nsv * static_cast<std::size_t>(shard)) /
                            static_cast<std::size_t>(opt.shards);
  const std::size_t end = (nsv * static_cast<std::size_t>(shard + 1)) /
                          static_cast<std::size_t>(opt.shards);

  const svmkernel::Kernel kernel(model.kernel_params());
  svmkernel::KernelEngine engine(kernel, model.support_vectors(), opt.backend, begin, end, 0,
                                 opt.flavor);
  // Overload shedding to reduced precision gets its own flavored store; the
  // exact engine stays resident so un-degraded batches keep bit-exactness.
  std::optional<svmkernel::KernelEngine> degraded;
  if (opt.degrade_enabled)
    degraded.emplace(kernel, model.support_vectors(), svmkernel::EngineBackend::simd, begin, end,
                     std::size_t{0}, opt.degrade_flavor);
  const auto coeffs = std::span<const double>(model.coefficients()).subspan(begin, end - begin);

  comm.send_value<std::uint64_t>(static_cast<std::uint64_t>(end - begin), 0, kReadyTag);

  DecodedBatch batch;
  std::vector<double> partials;
  for (;;) {
    std::vector<std::byte> payload;
    try {
      payload = comm.recv<std::byte>(0, kWorkTag);
    } catch (const svmmpi::TimeoutError&) {
      continue;  // idle lull longer than the net-model backstop; keep serving
    } catch (const svmmpi::RankLost&) {
      return;  // the frontend died: nothing left to serve
    } catch (const svmmpi::ContextCancelled&) {
      return;  // external teardown of the serving context
    }
    decode_batch(payload, batch);
    if (batch.header.opcode == kOpExit) return;
    partials.resize(batch.header.count);
    {
      svmobs::TraceRound round_marker("serve");
      svmobs::TraceSpan span("serve_eval", "serve");
      svmkernel::KernelEngine& eng =
          (batch.header.degraded != 0 && degraded) ? *degraded : engine;
      eng.eval_block_rows(batch.spans, batch.sq_norms, coeffs, partials, /*parallel=*/false);
    }
    try {
      comm.send<double>(partials, 0, batch.header.reply_tag);
    } catch (const svmmpi::ContextCancelled&) {
      return;
    }
  }
}

// --- frontend --------------------------------------------------------------

/// Frontend-side view of one worker rank's health.
struct WorkerState {
  int rank = -1;  ///< world rank
  bool dead = false;
  bool quarantined = false;
  bool probation = false;        ///< first post-cooldown dispatch is hedged
  double quarantine_until = 0.0;  ///< service-clock time the cooldown ends
  double ewma_s = 0.0;            ///< per-dispatch service latency EWMA
  std::uint64_t samples = 0;
};

struct FrontendCounters {
  std::uint64_t completed = 0;
  std::uint64_t expired = 0;
  std::uint64_t failed = 0;
  std::uint64_t batches = 0;
  std::uint64_t retries = 0;
  std::uint64_t hedges = 0;
  std::uint64_t failovers = 0;
  std::uint64_t quarantines = 0;
  std::uint64_t degraded_batches = 0;
};

class Frontend {
 public:
  Frontend(Comm& comm, Shared& sh, const ServeOptions& opt, const svmdata::CsrMatrix& queries,
           std::span<const double> query_sq, std::span<const std::uint32_t> request_rows,
           double beta)
      : comm_(comm),
        sh_(sh),
        opt_(opt),
        queries_(queries),
        query_sq_(query_sq),
        request_rows_(request_rows),
        beta_(beta) {
    workers_.resize(static_cast<std::size_t>(opt.shards) * static_cast<std::size_t>(opt.replicas));
    for (int r = 0; r < opt.replicas; ++r)
      for (int s = 0; s < opt.shards; ++s) {
        WorkerState& w = workers_[static_cast<std::size_t>(r) * static_cast<std::size_t>(opt.shards) +
                                  static_cast<std::size_t>(s)];
        w.rank = 1 + r * opt.shards + s;
      }
  }

  void run() {
    wait_ready();
    {
      // Service-up: reset the service clock so arrival schedules start at 0,
      // then release the waiting client threads.
      std::lock_guard lock(sh_.mutex);
      sh_.clock.reset();
      sh_.service_up = true;
    }
    sh_.completed.notify_all();

    std::vector<std::uint32_t> batch_ids;
    for (;;) {
      if (!next_batch(batch_ids)) break;
      if (batch_ids.empty()) continue;  // everything popped had expired
      serve_batch(batch_ids);
      drain_stale();
    }
    shutdown_workers();
  }

  [[nodiscard]] const FrontendCounters& counters() const noexcept { return counters_; }
  [[nodiscard]] std::size_t replies_outstanding() const noexcept { return outstanding_.size(); }

 private:
  [[nodiscard]] WorkerState& worker(int shard, int replica) {
    return workers_[static_cast<std::size_t>(replica) * static_cast<std::size_t>(opt_.shards) +
                    static_cast<std::size_t>(shard)];
  }

  void wait_ready() {
    for (WorkerState& w : workers_) {
      std::vector<std::uint64_t> ready;
      try {
        if (!comm_.recv_deadline(ready, w.rank, kReadyTag, opt_.worker_ready_timeout_s)) {
          SVM_LOG_WARN << "svmserve: worker rank " << w.rank << " missed the ready barrier";
          w.dead = true;
        }
      } catch (const svmmpi::RankLost&) {
        note_rank_dead(w);
      }
    }
  }

  /// Pops up to batch_max accepted requests, dropping any whose deadline
  /// already passed while queued (marked expired). Returns false when the
  /// producers are done and the queue is fully drained — the exit condition.
  bool next_batch(std::vector<std::uint32_t>& out) {
    out.clear();
    std::unique_lock lock(sh_.mutex);
    sh_.arrived.wait(lock, [&] { return !sh_.queue.empty() || sh_.producers_done; });
    if (sh_.queue.empty()) return false;
    if (sh_.queue.size() < opt_.batch_max && opt_.batch_linger_s > 0.0 && !sh_.producers_done) {
      // Linger briefly to top up a short batch; a fuller batch amortizes the
      // per-shard dispatch cost. Bounded, so latency stays predictable.
      sh_.arrived.wait_for(lock, std::chrono::duration<double>(opt_.batch_linger_s),
                           [&] { return sh_.queue.size() >= opt_.batch_max; });
    }
    queue_depth_at_pop_ = sh_.queue.size();
    const double now = sh_.clock.seconds();
    std::vector<std::uint32_t> expired;
    while (!sh_.queue.empty() && out.size() < opt_.batch_max) {
      const std::uint32_t id = sh_.queue.front();
      sh_.queue.pop_front();
      RequestRecord& rec = (*sh_.records)[id];
      if (now - rec.arrival_s > opt_.deadline_s) {
        rec.status = RequestStatus::expired;
        rec.done_s = now;
        ++counters_.expired;
        expired.push_back(id);
      } else {
        out.push_back(id);
      }
    }
    sh_.inflight.store(static_cast<std::uint32_t>(out.size()), std::memory_order_relaxed);
    lock.unlock();
    if (!expired.empty()) sh_.completed.notify_all();
    return true;
  }

  void serve_batch(const std::vector<std::uint32_t>& ids) {
    svmobs::TraceRound round_marker("serve");
    svmobs::TraceSpan span("serve_batch", "serve");
    ++counters_.batches;
    const svmutil::Timer batch_timer;
    const bool degraded =
        opt_.degrade_enabled &&
        queue_depth_at_pop_ >
            static_cast<std::size_t>(opt_.degrade_queue_frac *
                                     static_cast<double>(opt_.queue_capacity));
    if (degraded) ++counters_.degraded_batches;

    // One row list for the wire payload (requests may repeat a row; each
    // request keeps its own answer slot).
    std::vector<std::uint32_t> rows(ids.size());
    for (std::size_t i = 0; i < ids.size(); ++i) rows[i] = request_rows_[ids[i]];
    const std::uint32_t reply_tag =
        kReplyTagBase + static_cast<std::uint32_t>(batch_seq_++ % kReplyTagWindow);
    const std::vector<std::byte> payload =
        encode_batch(reply_tag, degraded, queries_, query_sq_, rows);

    // Phase 1: one dispatch per shard, all in flight before any collect, so
    // the shards compute concurrently.
    std::vector<Dispatch> dispatches(static_cast<std::size_t>(opt_.shards));
    bool all_dispatched = true;
    for (int s = 0; s < opt_.shards; ++s) {
      if (!start_dispatch(s, payload, dispatches[static_cast<std::size_t>(s)]))
        all_dispatched = false;
    }

    // Phase 2: collect partials in ascending shard order (the decision sum
    // below is order-fixed, so replica choice never changes the answer).
    std::vector<std::vector<double>> partials(static_cast<std::size_t>(opt_.shards));
    bool ok = all_dispatched;
    int collected = 0;
    for (int s = 0; s < opt_.shards; ++s) {
      if (!ok) break;
      auto got = collect_shard(s, dispatches[static_cast<std::size_t>(s)], payload, reply_tag,
                               ids.size());
      if (!got) {
        ok = false;
        break;
      }
      partials[static_cast<std::size_t>(s)] = std::move(*got);
      ++collected;
    }
    if (!ok) {
      // Shards dispatched but never collected still owe a reply; register
      // them for the stale drain so the mailbox stays bounded (the shard
      // that failed in collect_shard cleared its own fields).
      for (int s = collected; s < opt_.shards; ++s) {
        const Dispatch& d = dispatches[static_cast<std::size_t>(s)];
        if (d.target >= 0) abandon(d.target, reply_tag);
        if (d.partner >= 0) abandon(d.partner, reply_tag);
      }
    }

    const double service_s = batch_timer.seconds();
    finish_batch(ids, partials, ok, degraded, service_s);
  }

  /// Per-shard dispatch bookkeeping across send + collect.
  struct Dispatch {
    int target = -1;   ///< worker index currently awaited (primary answer)
    int partner = -1;  ///< hedge sibling also holding the batch, or -1
    int attempts = 0;
    double sent_at = 0.0;  ///< service-clock send time of the live attempt
  };

  /// Chooses a replica for `shard` and sends the batch (hedging to the
  /// sibling when the pick is on probation). False when no replica is alive.
  bool start_dispatch(int shard, std::span<const std::byte> payload, Dispatch& d) {
    const double now = sh_.clock.seconds();
    refresh_quarantine(now);
    const int target = pick_replica(shard, /*exclude=*/-1);
    if (target < 0) return false;
    d.target = target;
    d.sent_at = now;
    send_to(workers_[static_cast<std::size_t>(target)], payload);
    WorkerState& w = workers_[static_cast<std::size_t>(target)];
    if (w.probation) {
      const int sibling = pick_replica(shard, /*exclude=*/target);
      if (sibling >= 0) hedge_to(sibling, payload, d);
    }
    return true;
  }

  /// Waits for `shard`'s partial, driving retry / hedge / failover until the
  /// reply arrives or the attempt budget is spent.
  std::optional<std::vector<double>> collect_shard(int shard, Dispatch& d,
                                                   std::span<const std::byte> payload,
                                                   std::uint32_t reply_tag, std::size_t count) {
    // On every failure return the dispatch fields are cleared: each attempt
    // was either consumed, abandoned (registered for the stale drain), or
    // belongs to a dead rank — so serve_batch's cleanup never double-counts.
    const auto fail = [&d]() -> std::optional<std::vector<double>> {
      d.target = -1;
      d.partner = -1;
      return std::nullopt;
    };
    double backoff = opt_.retry_backoff_s;
    std::vector<double> out;
    while (d.target >= 0) {
      const int result = await_reply(d, reply_tag, out);
      if (result == kGotReply) {
        if (out.size() != count) return fail();  // protocol corruption
        return out;
      }
      if (result == kTargetLost && d.partner >= 0) {
        // Failover inside the wait: the hedge sibling already has the batch.
        d.target = d.partner;
        d.partner = -1;
        continue;
      }
      // Timed out (or lost with no hedge in flight): abandon this attempt,
      // leave its eventual reply for the stale drain, back off, re-dispatch.
      if (result == kTimedOut) {
        penalize(workers_[static_cast<std::size_t>(d.target)]);
        ++counters_.retries;
        abandon(d.target, reply_tag);
      }
      if (d.partner >= 0) abandon(d.partner, reply_tag);
      d.partner = -1;
      ++d.attempts;
      if (d.attempts > opt_.max_retries) return fail();
      std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
      backoff = std::min(backoff * 2.0, opt_.retry_backoff_cap_s);
      const double now = sh_.clock.seconds();
      refresh_quarantine(now);
      const int exclude = result == kTimedOut ? d.target : -1;
      int next = pick_replica(shard, exclude);
      if (next < 0 && result == kTimedOut)
        next = pick_replica(shard, /*exclude=*/-1);  // lone slow replica: retry it
      if (next < 0) return fail();
      d.target = next;
      d.sent_at = now;
      send_to(workers_[static_cast<std::size_t>(next)], payload);
      // A retry means the first attempt was already suspect — hedge it.
      const int sibling = pick_replica(shard, /*exclude=*/next);
      if (sibling >= 0) hedge_to(sibling, payload, d);
    }
    return fail();
  }

  static constexpr int kGotReply = 0;
  static constexpr int kTimedOut = 1;
  static constexpr int kTargetLost = 2;

  /// Polls the dispatch's target (and hedge partner, in alternating slices)
  /// for the batch reply until dispatch_timeout_s elapses.
  int await_reply(Dispatch& d, std::uint32_t reply_tag, std::vector<double>& out) {
    for (;;) {
      const double elapsed = sh_.clock.seconds() - d.sent_at;
      const double remaining = opt_.dispatch_timeout_s - elapsed;
      if (remaining <= 0.0) return kTimedOut;
      const bool hedged = d.partner >= 0;
      const double slice = hedged ? std::min(opt_.hedge_poll_s, remaining) : remaining;
      // Primary slice.
      const int verdict = poll_one(d.target, reply_tag, slice, out);
      if (verdict == kGotReply) {
        note_success(d.target, sh_.clock.seconds() - d.sent_at);
        if (d.partner >= 0) abandon(d.partner, reply_tag);
        d.partner = -1;
        return kGotReply;
      }
      if (verdict == kTargetLost) {
        note_rank_dead(workers_[static_cast<std::size_t>(d.target)]);
        ++counters_.failovers;
        return kTargetLost;
      }
      if (hedged) {
        const int hv = poll_one(d.partner, reply_tag, std::min(opt_.hedge_poll_s, remaining), out);
        if (hv == kGotReply) {
          note_success(d.partner, sh_.clock.seconds() - d.sent_at);
          abandon(d.target, reply_tag);
          d.target = d.partner;
          d.partner = -1;
          return kGotReply;
        }
        if (hv == kTargetLost) {
          note_rank_dead(workers_[static_cast<std::size_t>(d.partner)]);
          d.partner = -1;
        }
      }
    }
  }

  /// One deadline-bounded poll of a single worker's reply.
  int poll_one(int worker_index, std::uint32_t reply_tag, double deadline_s,
               std::vector<double>& out) {
    WorkerState& w = workers_[static_cast<std::size_t>(worker_index)];
    try {
      if (comm_.recv_deadline(out, w.rank, static_cast<int>(reply_tag), deadline_s))
        return kGotReply;
      return kTimedOut;
    } catch (const svmmpi::RankLost&) {
      return kTargetLost;
    }
  }

  void send_to(WorkerState& w, std::span<const std::byte> payload) {
    // Sending to a dead rank's mailbox is harmless (detection happens on the
    // reply wait); sends only throw for cancellation, which propagates.
    comm_.send(payload, w.rank, kWorkTag);
  }

  void hedge_to(int sibling, std::span<const std::byte> payload, Dispatch& d) {
    d.partner = sibling;
    ++counters_.hedges;
    send_to(workers_[static_cast<std::size_t>(sibling)], payload);
  }

  /// Records that a (worker, tag) reply may still arrive; drained later.
  void abandon(int worker_index, std::uint32_t reply_tag) {
    const WorkerState& w = workers_[static_cast<std::size_t>(worker_index)];
    if (!w.dead) outstanding_.push_back({w.rank, static_cast<int>(reply_tag)});
  }

  /// Opportunistically pops abandoned replies so the frontend mailbox stays
  /// bounded across long runs; a reply from a since-dead rank never arrives
  /// and its entry is dropped.
  void drain_stale() {
    svmmpi::Mailbox& box = comm_.world().mailbox(0);
    std::erase_if(outstanding_, [&](const std::pair<int, int>& entry) {
      if (workers_alive_count() == 0) return true;
      svmmpi::Message m;
      if (box.try_pop(comm_.context_id(), entry.first, entry.second, m)) return true;
      return workers_[worker_index_of(entry.first)].dead;
    });
  }

  // Worker rank 1 + r*shards + s sits at workers_[r*shards + s] == rank - 1.
  [[nodiscard]] std::size_t worker_index_of(int rank) const {
    return static_cast<std::size_t>(rank - 1);
  }

  [[nodiscard]] int workers_alive_count() const {
    int alive = 0;
    for (const WorkerState& w : workers_)
      if (!w.dead) ++alive;
    return alive;
  }

  /// Healthiest live replica of `shard`, or -1. Order of preference: live &
  /// not quarantined with the lowest EWMA; a fully-quarantined shard still
  /// serves (a slow answer beats none) from the least-bad member.
  int pick_replica(int shard, int exclude) {
    int best = -1, best_quarantined = -1;
    double best_ewma = std::numeric_limits<double>::infinity();
    double best_q_ewma = std::numeric_limits<double>::infinity();
    for (int r = 0; r < opt_.replicas; ++r) {
      const int index = r * opt_.shards + shard;
      const WorkerState& w = workers_[static_cast<std::size_t>(index)];
      if (w.dead || index == exclude) continue;
      const double e = w.samples > 0 ? w.ewma_s : 0.0;
      if (!w.quarantined) {
        if (e < best_ewma) {
          best_ewma = e;
          best = index;
        }
      } else if (e < best_q_ewma) {
        best_q_ewma = e;
        best_quarantined = index;
      }
    }
    return best >= 0 ? best : best_quarantined;
  }

  void refresh_quarantine(double now) {
    for (WorkerState& w : workers_) {
      if (w.quarantined && now >= w.quarantine_until) {
        // Cooldown over: half-open. The next dispatch that picks it is
        // hedged (probation), so a still-slow rank cannot stall a request.
        w.quarantined = false;
        w.probation = true;
      }
    }
  }

  void note_success(int worker_index, double latency_s) {
    WorkerState& w = workers_[static_cast<std::size_t>(worker_index)];
    w.ewma_s = w.samples == 0 ? latency_s : 0.7 * w.ewma_s + 0.3 * latency_s;
    ++w.samples;
    w.probation = false;
    maybe_quarantine(w);
  }

  /// A dispatch timeout charges the worker as if it took 2x the timeout —
  /// pushes a silently-slow rank toward quarantine without a success sample.
  void penalize(WorkerState& w) {
    const double sample = 2.0 * opt_.dispatch_timeout_s;
    w.ewma_s = w.samples == 0 ? sample : 0.7 * w.ewma_s + 0.3 * sample;
    ++w.samples;
    maybe_quarantine(w);
  }

  void maybe_quarantine(WorkerState& w) {
    // One sample suffices: a full dispatch timeout is penalized at 2x the
    // timeout, far past any healthy baseline, and a false positive costs
    // only a cooldown followed by a hedged probe.
    if (w.quarantined || w.samples < 1) return;
    // Fleet baseline: the fastest live worker's EWMA, floored so cold starts
    // with microsecond baselines don't quarantine ordinary jitter.
    double baseline = std::numeric_limits<double>::infinity();
    for (const WorkerState& other : workers_)
      if (!other.dead && other.samples > 0 && &other != &w)
        baseline = std::min(baseline, other.ewma_s);
    if (!std::isfinite(baseline)) return;
    baseline = std::max(baseline, opt_.quarantine_min_baseline_s);
    if (w.ewma_s > opt_.quarantine_latency_factor * baseline) {
      w.quarantined = true;
      w.probation = false;
      w.quarantine_until = sh_.clock.seconds() + opt_.quarantine_cooldown_s;
      ++counters_.quarantines;
      svmobs::trace_instant("serve_quarantine", "serve");
      SVM_LOG_DEBUG << "svmserve: quarantined rank " << w.rank << " (ewma " << w.ewma_s << "s)";
    }
  }

  void note_rank_dead(WorkerState& w) {
    if (w.dead) return;
    w.dead = true;
    ranks_lost_.push_back(w.rank);
    svmobs::trace_instant("serve_rank_lost", "serve");
    SVM_LOG_DEBUG << "svmserve: worker rank " << w.rank << " lost; failing over";
  }

  void finish_batch(const std::vector<std::uint32_t>& ids,
                    const std::vector<std::vector<double>>& partials, bool ok, bool degraded,
                    double service_s) {
    {
      std::lock_guard lock(sh_.mutex);
      const double now = sh_.clock.seconds();
      for (std::size_t i = 0; i < ids.size(); ++i) {
        RequestRecord& rec = (*sh_.records)[ids[i]];
        rec.done_s = now;
        if (ok) {
          double sum = 0.0;
          for (int s = 0; s < opt_.shards; ++s) sum += partials[static_cast<std::size_t>(s)][i];
          rec.decision = sum - beta_;
          rec.degraded = degraded;
          rec.latency_s = now - rec.arrival_s;
          rec.status = RequestStatus::completed;
          ++counters_.completed;
        } else {
          rec.status = RequestStatus::failed;
          ++counters_.failed;
        }
      }
      sh_.inflight.store(0, std::memory_order_relaxed);
      if (ok) {
        // Observed service rate feeds admission's predicted-wait estimate.
        const double sample = static_cast<double>(ids.size()) / std::max(service_s, 1e-6);
        const double old = sh_.service_rate.load(std::memory_order_relaxed);
        sh_.service_rate.store(old == 0.0 ? sample : 0.7 * old + 0.3 * sample,
                               std::memory_order_relaxed);
      }
    }
    sh_.completed.notify_all();
    svmobs::trace_counter("serve_queue_depth", static_cast<double>(queue_depth_at_pop_));
  }

  void shutdown_workers() {
    const std::vector<std::byte> exit_msg = encode_exit();
    for (const WorkerState& w : workers_) {
      if (w.dead) continue;
      try {
        comm_.send(std::span<const std::byte>(exit_msg), w.rank, kWorkTag);
      } catch (const std::exception&) {
        // Teardown is best-effort; a cancelled context or racing death just
        // means the worker is already on its way out.
      }
    }
  }

 public:
  [[nodiscard]] const std::vector<int>& ranks_lost() const noexcept { return ranks_lost_; }

 private:
  Comm& comm_;
  Shared& sh_;
  const ServeOptions& opt_;
  const svmdata::CsrMatrix& queries_;
  std::span<const double> query_sq_;
  std::span<const std::uint32_t> request_rows_;
  double beta_;

  std::vector<WorkerState> workers_;  ///< indexed r*shards + s
  std::vector<std::pair<int, int>> outstanding_;  ///< (world rank, reply tag)
  std::vector<int> ranks_lost_;
  std::uint64_t batch_seq_ = 0;
  std::size_t queue_depth_at_pop_ = 0;
  FrontendCounters counters_;
};

// --- client threads --------------------------------------------------------

void open_loop_client(Shared& sh, const ServeOptions& opt, std::span<const double> arrivals) {
  // Absolute schedule against the service clock: falling behind produces a
  // burst (the backlog is preserved), which is exactly what open-loop means.
  {
    std::unique_lock lock(sh.mutex);
    sh.completed.wait(lock, [&] { return sh.service_up || sh.service_down; });
  }
  for (std::size_t id = 0; id < arrivals.size(); ++id) {
    const double wait = arrivals[id] - sh.clock.seconds();
    if (wait > 0.0) std::this_thread::sleep_for(std::chrono::duration<double>(wait));
    (void)submit(sh, static_cast<std::uint32_t>(id), opt);
  }
  {
    std::lock_guard lock(sh.mutex);
    sh.producers_done = true;
  }
  sh.arrived.notify_all();
}

void closed_loop_client(Shared& sh, const ServeOptions& opt, std::size_t first, std::size_t stride,
                        std::size_t total, double think_s, std::atomic<int>& live_clients) {
  {
    std::unique_lock lock(sh.mutex);
    sh.completed.wait(lock, [&] { return sh.service_up || sh.service_down; });
  }
  for (std::size_t id = first; id < total; id += stride) {
    const SubmitVerdict verdict = submit(sh, static_cast<std::uint32_t>(id), opt);
    if (verdict == SubmitVerdict::down) break;
    if (verdict == SubmitVerdict::accepted) {
      std::unique_lock lock(sh.mutex);
      sh.completed.wait(lock, [&] {
        return (*sh.records)[id].status != RequestStatus::pending || sh.service_down;
      });
    }
    if (think_s > 0.0) std::this_thread::sleep_for(std::chrono::duration<double>(think_s));
  }
  if (live_clients.fetch_sub(1) == 1) {
    std::lock_guard lock(sh.mutex);
    sh.producers_done = true;
    sh.arrived.notify_all();
  }
}

// --- report ----------------------------------------------------------------

void fill_report(ServeReport& report, const Shared& sh, const FrontendCounters& c,
                 double wall_s) {
  report.submitted = sh.submitted;
  report.accepted = sh.accepted;
  report.shed_queue_full = sh.shed_queue_full;
  report.shed_predicted_wait = sh.shed_predicted_wait;
  report.max_queue_depth = sh.max_queue_depth;
  report.completed = c.completed;
  report.expired = c.expired;
  report.failed = c.failed;
  report.batches = c.batches;
  report.retries = c.retries;
  report.hedges = c.hedges;
  report.failovers = c.failovers;
  report.quarantines = c.quarantines;
  report.degraded_batches = c.degraded_batches;
  report.wall_s = wall_s;
  if (wall_s > 0.0) {
    report.accepted_qps = static_cast<double>(report.accepted) / wall_s;
    report.completed_qps = static_cast<double>(report.completed) / wall_s;
  }

  // Completed-request latencies go through a fine log-spaced histogram
  // (8 buckets/decade over 100µs..10s) and the reported percentiles are
  // derived from it, so bench_serving and the run-report emitter agree on
  // one estimator instead of keeping a parallel sorted-sample path.
  auto& m = report.metrics;
  std::vector<double> bounds;
  for (int i = 0; i <= 40; ++i) bounds.push_back(1e-4 * std::pow(10.0, i / 8.0));
  auto& latency_hist = m.histogram("serve.latency_s", std::move(bounds));
  for (const RequestRecord& rec : report.requests)
    if (rec.status == RequestStatus::completed) latency_hist.observe(rec.latency_s);
  report.latency_p50_s = latency_hist.percentile(50.0);
  report.latency_p99_s = latency_hist.percentile(99.0);
  report.latency_p999_s = latency_hist.percentile(99.9);
  m.counter("serve.submitted").add(report.submitted);
  m.counter("serve.accepted").add(report.accepted);
  m.counter("serve.completed").add(report.completed);
  m.counter("serve.shed_queue_full").add(report.shed_queue_full);
  m.counter("serve.shed_predicted_wait").add(report.shed_predicted_wait);
  m.counter("serve.expired").add(report.expired);
  m.counter("serve.failed").add(report.failed);
  m.counter("serve.batches").add(report.batches);
  m.counter("serve.retries").add(report.retries);
  m.counter("serve.hedges").add(report.hedges);
  m.counter("serve.failovers").add(report.failovers);
  m.counter("serve.quarantines").add(report.quarantines);
  m.counter("serve.degraded_batches").add(report.degraded_batches);
  m.counter("serve.ranks_lost").add(static_cast<std::uint64_t>(report.ranks_lost.size()));
  m.gauge("serve.latency_p50_s").set(report.latency_p50_s);
  m.gauge("serve.latency_p99_s").set(report.latency_p99_s);
  m.gauge("serve.latency_p999_s").set(report.latency_p999_s);
  m.gauge("serve.accepted_qps").set(report.accepted_qps);
  m.gauge("serve.completed_qps").set(report.completed_qps);
  m.gauge("serve.max_queue_depth").set(static_cast<double>(report.max_queue_depth));
}

void maybe_write_metrics(const ServeReport& report, const LoadSpec& load,
                         const ServeOptions& options) {
  if (options.metrics_path.empty()) return;
  svmobs::RunReport run;
  run.name = "serving";
  run.info.emplace_back("shards", std::to_string(options.shards));
  run.info.emplace_back("replicas", std::to_string(options.replicas));
  run.info.emplace_back("requests", std::to_string(load.requests));
  run.info.emplace_back("queue_capacity", std::to_string(options.queue_capacity));
  run.aggregate = report.metrics;
  svmobs::write_reports(options.metrics_path, {run});
}

/// Scoped trace recording for one serving run (flush on every exit, same
/// discipline as the scheduler's session).
class ObsSession {
 public:
  explicit ObsSession(const std::string& path) : path_(path), active_(!path.empty()) {
    if (!active_) return;
    svmobs::trace_reset();
    svmobs::trace_enable();
  }
  ~ObsSession() {
    if (!active_) return;
    svmobs::trace_disable();
    try {
      svmobs::trace_write(path_);
    } catch (const std::exception& e) {
      SVM_LOG_WARN << "svmserve trace flush failed: " << e.what();
    }
  }
  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

 private:
  std::string path_;
  bool active_;
};

void validate(const svmcore::SvmModel& model, const svmdata::CsrMatrix& queries,
              const LoadSpec& load, const ServeOptions& opt) {
  if (opt.shards < 1) throw std::invalid_argument("run_serving: shards must be >= 1");
  if (opt.replicas < 1) throw std::invalid_argument("run_serving: replicas must be >= 1");
  if (opt.queue_capacity == 0)
    throw std::invalid_argument("run_serving: queue_capacity must be positive");
  if (opt.batch_max == 0) throw std::invalid_argument("run_serving: batch_max must be positive");
  if (opt.deadline_s <= 0.0) throw std::invalid_argument("run_serving: deadline_s must be > 0");
  if (opt.dispatch_timeout_s <= 0.0)
    throw std::invalid_argument("run_serving: dispatch_timeout_s must be > 0");
  if (opt.max_retries < 0)
    throw std::invalid_argument("run_serving: max_retries must be non-negative");
  if (opt.net_model.timeout_s <= 0.0)
    throw std::invalid_argument(
        "run_serving: net_model.timeout_s must be > 0 (deadline-driven failure detection)");
  if (model.num_support_vectors() == 0)
    throw std::invalid_argument("run_serving: model has no support vectors");
  if (static_cast<std::size_t>(opt.shards) > model.num_support_vectors())
    throw std::invalid_argument("run_serving: more shards than support vectors");
  if (queries.rows() == 0) throw std::invalid_argument("run_serving: empty query matrix");
  if (load.requests == 0) throw std::invalid_argument("run_serving: load.requests must be > 0");
  if (load.mode == ArrivalMode::closed_loop && load.clients < 1)
    throw std::invalid_argument("run_serving: closed loop needs >= 1 client");
}

}  // namespace

int serving_world_size(const ServeOptions& options) {
  return 1 + options.shards * options.replicas;
}

ServeReport run_serving(const svmcore::SvmModel& model, const svmdata::CsrMatrix& queries,
                        const LoadSpec& load, const ServeOptions& options) {
  validate(model, queries, load, options);

  ServeReport report;
  report.requests.resize(load.requests);
  const std::vector<std::uint32_t> request_rows =
      assign_query_rows(load.requests, queries.rows(), load.seed);
  for (std::size_t i = 0; i < load.requests; ++i) report.requests[i].query_row = request_rows[i];
  const std::vector<double> query_sq = queries.row_squared_norms();
  const std::vector<double> arrivals =
      load.mode == ArrivalMode::open_poisson
          ? poisson_arrivals(load.requests, load.offered_qps, load.seed)
          : std::vector<double>{};

  Shared sh;
  sh.records = &report.requests;

  ObsSession obs(options.trace_path);
  std::optional<svmmpi::FaultInjector> injector;
  if (options.fault_plan != nullptr) injector.emplace(*options.fault_plan);

  // Client threads start first and block on the service-up gate the frontend
  // opens once every worker passed the ready barrier.
  std::vector<std::thread> clients;
  std::atomic<int> live_clients{0};
  if (load.mode == ArrivalMode::open_poisson) {
    clients.emplace_back([&] { open_loop_client(sh, options, arrivals); });
  } else {
    live_clients = load.clients;
    for (int c = 0; c < load.clients; ++c)
      clients.emplace_back([&sh, &options, c, &load, &live_clients] {
        closed_loop_client(sh, options, static_cast<std::size_t>(c),
                           static_cast<std::size_t>(load.clients), load.requests, load.think_s,
                           live_clients);
      });
  }

  FrontendCounters counters;
  std::vector<int> frontend_ranks_lost;
  svmutil::Timer wall;
  svmmpi::ElasticReport elastic;
  try {
    elastic = svmmpi::run_spmd_elastic(
        serving_world_size(options),
        [&](Comm& comm) {
          if (comm.rank() == 0) {
            Frontend frontend(comm, sh, options, queries, query_sq, request_rows, model.beta());
            try {
              frontend.run();
            } catch (...) {
              // Whatever unwound the frontend (cancellation, abort), release
              // the clients before propagating so run_serving cannot hang.
              {
                std::lock_guard lock(sh.mutex);
                sh.service_down = true;
              }
              sh.completed.notify_all();
              throw;
            }
            counters = frontend.counters();
            frontend_ranks_lost = frontend.ranks_lost();
          } else {
            worker_body(comm, model, options);
          }
        },
        options.net_model, nullptr, injector ? &*injector : nullptr);
  } catch (...) {
    {
      std::lock_guard lock(sh.mutex);
      sh.service_down = true;
    }
    sh.completed.notify_all();
    for (std::thread& t : clients) t.join();
    throw;
  }
  const double wall_s = wall.seconds();

  {
    std::lock_guard lock(sh.mutex);
    sh.service_down = true;
  }
  sh.completed.notify_all();
  for (std::thread& t : clients) t.join();

  report.ranks_lost = elastic.failed_ranks.empty() ? frontend_ranks_lost : elastic.failed_ranks;
  fill_report(report, sh, counters, wall_s);
  maybe_write_metrics(report, load, options);
  return report;
}

}  // namespace svmserve
