// svmserve: fault-tolerant prediction serving with graceful overload
// degradation.
//
// Topology (one svmmpi world per service run):
//
//   rank 0                      frontend: request queue, admission control,
//                               micro-batcher, dispatch/retry/hedge logic,
//                               replica health tracking
//   rank 1 + r*shards + s       worker: replica r of shard s — a
//                               KernelEngine over the shard's contiguous
//                               slice of the model's support vectors
//
// Every replica of a shard holds the identical support-vector slice, so the
// per-shard partial sums it returns are bitwise equal across replicas — a
// failover mid-run changes WHICH rank answered, never the answer. The
// frontend combines partials in ascending shard order and subtracts beta,
// so a served decision value at shards == 1 is bit-identical to
// SvmModel::decision_value.
//
// Client threads (synthetic load, see client_load.hpp) call into the bounded
// request queue; the frontend forms micro-batches (up to batch_max, with a
// short linger), ships one serialized batch per shard, and each worker
// answers it with a single KernelEngine::eval_block_rows call.
//
// Graceful degradation, in escalation order:
//   - deadline-aware admission: a request is shed at submit time when the
//     queue is full or the predicted queue wait (queue depth / observed
//     service rate) exceeds its deadline — the queue is bounded by
//     construction and p99 of ACCEPTED requests stays bounded at any
//     offered load;
//   - optional precision shedding: when the queue crosses
//     degrade_queue_frac of capacity, batches are marked degraded and
//     workers score them against a reduced-precision (simd/f32 by default)
//     RowStore instead of the exact engine;
//   - per-dispatch timeout with capped-backoff retry, rotating across the
//     shard's replicas; a retry after a suspected-slow first attempt is
//     hedged to both replicas and the first answer wins (the loser's reply
//     is drained later — replies are tagged per batch, so a stale answer
//     can never be mistaken for a fresh one);
//   - replica failover: a dead rank (FaultPlan crash/die mid-query) wakes
//     the frontend's deadline wait via the failure registry, and the
//     shard's traffic moves to the surviving replica — zero failed
//     responses as long as one replica per shard lives;
//   - health/quarantine: per-worker EWMA service latency; a worker whose
//     EWMA exceeds quarantine_latency_factor x the fleet baseline (an
//     injected-slow rank) is ejected from the dispatch set for a cooldown,
//     then re-admitted through a hedged probe.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/model.hpp"
#include "data/sparse.hpp"
#include "kernel/kernel_engine.hpp"
#include "mpisim/fault.hpp"
#include "mpisim/netmodel.hpp"
#include "obs/metrics.hpp"
#include "serve/client_load.hpp"

namespace svmserve {

struct ServeOptions {
  int shards = 2;    ///< support-vector shards (contiguous slices)
  int replicas = 2;  ///< copies of each shard (1 = no failover)

  std::size_t queue_capacity = 64;  ///< bounded request queue
  std::size_t batch_max = 8;        ///< micro-batch size cap
  double batch_linger_s = 0.0005;   ///< wait this long to top up a short batch

  double deadline_s = 0.1;        ///< per-request latency deadline
  double admission_margin = 0.8;  ///< shed when predicted wait > margin*deadline

  double dispatch_timeout_s = 0.05;  ///< per-attempt shard-reply deadline
  int max_retries = 2;               ///< re-dispatches per shard per batch
  double retry_backoff_s = 0.002;    ///< first backoff; doubles, capped below
  double retry_backoff_cap_s = 0.01;
  double hedge_poll_s = 0.002;  ///< poll slice alternating replicas when hedged

  double quarantine_latency_factor = 8.0;   ///< EWMA > factor*baseline ejects
  double quarantine_min_baseline_s = 5e-4;  ///< floor so tiny baselines don't trip
  double quarantine_cooldown_s = 0.05;      ///< ejection duration, then probe

  bool degrade_enabled = false;      ///< precision shedding under queue pressure
  double degrade_queue_frac = 0.5;   ///< degrade when depth > frac*capacity
  svmkernel::RowFlavor degrade_flavor = svmkernel::RowFlavor::f32;

  svmkernel::EngineBackend backend = svmkernel::EngineBackend::dense_scatter;
  svmkernel::RowFlavor flavor = svmkernel::RowFlavor::f64;

  /// timeout_s doubles as the workers' idle-receive backstop; must be > 0
  /// (deadline-driven failure detection, as everywhere in svmmpi).
  svmmpi::NetModel net_model{0.0, 0.0, 5.0};
  /// Injected faults for chaos runs (kept alive by the caller). Never target
  /// rank 0: the frontend is the measurement harness, not the system under
  /// fault. nullptr = fault-free.
  const svmmpi::FaultPlan* fault_plan = nullptr;

  double worker_ready_timeout_s = 5.0;  ///< startup barrier per worker

  std::string trace_path;    ///< Chrome trace out (empty = off)
  std::string metrics_path;  ///< RunReport out (empty = off)
};

/// World size a ServeOptions implies: 1 frontend + shards*replicas workers.
[[nodiscard]] int serving_world_size(const ServeOptions& options);

enum class RequestStatus : std::uint8_t {
  pending,    ///< never terminal after run_serving returns
  completed,  ///< answered within the service's lifetime
  shed,       ///< refused at admission (queue full or predicted-wait breach)
  expired,    ///< accepted but its deadline passed while queued
  failed,     ///< accepted but every replica of some shard was lost/timed out
};

struct RequestRecord {
  std::uint32_t query_row = 0;  ///< row of the query matrix this request scored
  RequestStatus status = RequestStatus::pending;
  double arrival_s = 0.0;  ///< submit time (service clock)
  double done_s = 0.0;     ///< terminal-state time (service clock)
  double latency_s = 0.0;  ///< done - arrival, completed requests only
  double decision = 0.0;   ///< signed decision value, completed only
  bool degraded = false;   ///< answered by the reduced-precision path
};

struct ServeReport {
  std::vector<RequestRecord> requests;  ///< indexed by request id (submit order)

  std::uint64_t submitted = 0;
  std::uint64_t accepted = 0;
  std::uint64_t completed = 0;
  std::uint64_t shed_queue_full = 0;
  std::uint64_t shed_predicted_wait = 0;
  std::uint64_t expired = 0;
  std::uint64_t failed = 0;

  std::uint64_t batches = 0;
  std::uint64_t retries = 0;    ///< per-shard dispatch re-sends after a timeout
  std::uint64_t hedges = 0;     ///< duplicate dispatches to the sibling replica
  std::uint64_t failovers = 0;  ///< dispatches redirected off a dead rank
  std::uint64_t quarantines = 0;
  std::uint64_t degraded_batches = 0;

  std::size_t max_queue_depth = 0;  ///< high-water mark; <= queue_capacity
  std::vector<int> ranks_lost;      ///< world ranks that died, ascending

  double wall_s = 0.0;
  double accepted_qps = 0.0;
  double completed_qps = 0.0;
  double latency_p50_s = 0.0;   ///< over completed requests
  double latency_p99_s = 0.0;
  double latency_p999_s = 0.0;

  svmobs::MetricsRegistry metrics;  ///< the serve.* counter/gauge set
};

/// Runs one serving session: spins up the frontend + worker world over
/// `model`, replays `load` against rows of `queries`, and tears the world
/// down once every request reached a terminal state. Blocks until done.
[[nodiscard]] ServeReport run_serving(const svmcore::SvmModel& model,
                                      const svmdata::CsrMatrix& queries, const LoadSpec& load,
                                      const ServeOptions& options);

}  // namespace svmserve
