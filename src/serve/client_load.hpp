// Synthetic client load for the serving engine: deterministic (seeded)
// open-loop Poisson arrival schedules — the offered-QPS axis of a saturation
// curve, where clients do NOT slow down when the service backs up — and
// closed-loop client populations (each client waits for its response, then
// thinks), which self-throttle at the service's capacity and are what the
// saturation-measurement pass uses.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace svmserve {

enum class ArrivalMode : std::uint8_t {
  open_poisson,  ///< arrivals fire on a precomputed Poisson schedule
  closed_loop,   ///< `clients` concurrent callers, submit -> wait -> think
};

struct LoadSpec {
  ArrivalMode mode = ArrivalMode::open_poisson;
  std::size_t requests = 256;  ///< total requests across the run
  double offered_qps = 500.0;  ///< open-loop arrival rate
  int clients = 4;             ///< closed-loop concurrent callers
  double think_s = 0.0;        ///< closed-loop pause between a response and
                               ///< the client's next request
  std::uint64_t seed = 1;      ///< keys both arrivals and query-row choice
};

/// Ascending arrival offsets (seconds from service start) of an open-loop
/// Poisson process at `qps`: exponential inter-arrival gaps, deterministic in
/// `seed`. qps <= 0 yields an all-zero schedule (fire immediately).
[[nodiscard]] std::vector<double> poisson_arrivals(std::size_t n, double qps, std::uint64_t seed);

/// Deterministic query-row assignment: request i scores row result[i] of the
/// query matrix (uniform over [0, num_rows)). Fixing this per seed is what
/// makes a faulted run answer the exact same questions as a fault-free run —
/// the bit-identity gate compares decision values request by request.
[[nodiscard]] std::vector<std::uint32_t> assign_query_rows(std::size_t n, std::size_t num_rows,
                                                           std::uint64_t seed);

}  // namespace svmserve
