#include "util/cli.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/logging.hpp"

namespace svmutil {

CliFlags::CliFlags(int argc, const char* const* argv, std::vector<std::string> known) {
  program_ = argc > 0 ? argv[0] : "";
  auto find_known = [&](const std::string& name) -> const std::string* {
    for (const std::string& k : known) {
      const bool boolean = !k.empty() && k.back() == '!';
      if ((boolean ? k.substr(0, k.size() - 1) : k) == name) return &k;
    }
    return nullptr;
  };
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    std::string value;
    bool have_value = false;
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg.resize(eq);
      have_value = true;
    }
    const std::string* spec = find_known(arg);
    if (spec == nullptr) throw std::invalid_argument("unknown flag: --" + arg);
    const bool boolean = spec->back() == '!';
    if (!have_value) {
      if (!boolean && i + 1 < argc && std::string_view(argv[i + 1]).rfind("--", 0) != 0)
        value = argv[++i];
      else
        value = "true";
    }
    values_[arg] = std::move(value);
  }
}

bool CliFlags::has(const std::string& name) const { return values_.count(name) != 0; }

std::string CliFlags::get(const std::string& name, const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

long long CliFlags::get_int(const std::string& name, long long fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : std::stoll(it->second);
}

double CliFlags::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : std::stod(it->second);
}

bool CliFlags::get_bool(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::vector<std::string> with_obs_flags(std::vector<std::string> known) {
  known.emplace_back("log-level");
  known.emplace_back("trace-out");
  known.emplace_back("metrics-out");
  return known;
}

ObsPaths apply_obs_flags(const CliFlags& flags) {
  if (flags.has("log-level")) set_log_level(log_level_from_string(flags.get("log-level", "")));
  return ObsPaths{flags.get("trace-out", ""), flags.get("metrics-out", "")};
}

std::vector<std::string> with_engine_flags(std::vector<std::string> known) {
  known.emplace_back("engine-backend");
  known.emplace_back("engine-flavor");
  return known;
}

EngineChoice apply_engine_flags(const CliFlags& flags, const std::string& default_backend,
                                const std::string& default_flavor) {
  return EngineChoice{flags.get("engine-backend", default_backend),
                      flags.get("engine-flavor", default_flavor)};
}

}  // namespace svmutil
