#include "util/timer.hpp"

// Header-only in practice; this TU anchors the library target.
