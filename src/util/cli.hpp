// Tiny command-line flag parser shared by benches, examples and the CLI tool.
// Supports "--name value", "--name=value" and boolean "--name". Unknown flags
// are an error so typos surface immediately.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace svmutil {

class CliFlags {
 public:
  /// Parses argv. `known` lists accepted flag names (without dashes); a
  /// trailing '!' marks a boolean flag, which never consumes the following
  /// token ("--verbose file.txt" keeps file.txt positional). Throws
  /// std::invalid_argument on unknown flags.
  CliFlags(int argc, const char* const* argv, std::vector<std::string> known);

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::string get(const std::string& name, const std::string& fallback) const;
  [[nodiscard]] long long get_int(const std::string& name, long long fallback) const;
  [[nodiscard]] double get_double(const std::string& name, double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback = false) const;

  /// Positional (non-flag) arguments in order.
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept { return positional_; }

  [[nodiscard]] const std::string& program() const noexcept { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

/// Observability flag values shared by every tool that trains: output paths
/// for the Chrome trace and the metrics run report (empty = disabled).
struct ObsPaths {
  std::string trace_out;    ///< --trace-out: Chrome trace-event JSON
  std::string metrics_out;  ///< --metrics-out: svmobs.run_report.v1 JSON
};

/// Appends the standard observability flags ("log-level", "trace-out",
/// "metrics-out") to a known-flags list, so tools opt in with one call.
[[nodiscard]] std::vector<std::string> with_obs_flags(std::vector<std::string> known);

/// Reads the flags added by with_obs_flags: applies --log-level to the global
/// logger immediately (throws on an invalid name) and returns the output
/// paths. Defaults leave logging and tracing untouched.
ObsPaths apply_obs_flags(const CliFlags& flags);

/// Kernel-engine selection shared by the CLI and the benches: which backend
/// evaluates kernel rows and which row-storage flavor it uses. Values are
/// kept as strings here so svmutil stays independent of svmkernel; callers
/// convert with engine_backend_from_string / row_flavor_from_string (which
/// reject unknown names with a clear error).
struct EngineChoice {
  std::string backend;  ///< --engine-backend: reference|dense_scatter|cached|simd
  std::string flavor;   ///< --engine-flavor: f64|f32|f16|i8
};

/// Appends the standard engine flags ("engine-backend", "engine-flavor") to a
/// known-flags list, mirroring with_obs_flags.
[[nodiscard]] std::vector<std::string> with_engine_flags(std::vector<std::string> known);

/// Reads the flags added by with_engine_flags, substituting the given
/// defaults when a flag is absent.
[[nodiscard]] EngineChoice apply_engine_flags(const CliFlags& flags,
                                              const std::string& default_backend = "dense_scatter",
                                              const std::string& default_flavor = "f64");

}  // namespace svmutil
