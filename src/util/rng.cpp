#include "util/rng.hpp"

#include <cmath>

namespace svmutil {

std::uint64_t Rng::uniform_index(std::uint64_t n) noexcept {
  if (n == 0) return 0;
  // Lemire 2019: multiply-shift with rejection to remove modulo bias.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * factor;
  has_cached_normal_ = true;
  return u * factor;
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n, std::size_t k) {
  if (k > n) k = n;
  std::vector<std::size_t> all(n);
  for (std::size_t i = 0; i < n; ++i) all[i] = i;
  // Partial Fisher-Yates: only the first k positions need to be shuffled.
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + uniform_index(n - i);
    std::swap(all[i], all[j]);
  }
  all.resize(k);
  return all;
}

}  // namespace svmutil
