#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace svmutil {

Summary summarize(std::span<const double> values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  s.min = values[0];
  s.max = values[0];
  double sum = 0.0;
  for (const double v : values) {
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
    sum += v;
  }
  s.mean = sum / static_cast<double>(values.size());
  double sq = 0.0;
  for (const double v : values) sq += (v - s.mean) * (v - s.mean);
  s.stddev = std::sqrt(sq / static_cast<double>(values.size()));

  std::vector<double> copy(values.begin(), values.end());
  const std::size_t mid = copy.size() / 2;
  std::nth_element(copy.begin(), copy.begin() + mid, copy.end());
  if (copy.size() % 2 == 1) {
    s.median = copy[mid];
  } else {
    const double upper = copy[mid];
    std::nth_element(copy.begin(), copy.begin() + mid - 1, copy.end());
    s.median = 0.5 * (upper + copy[mid - 1]);
  }
  return s;
}

double percentile(std::span<const double> values, double p) {
  if (values.empty()) return 0.0;
  std::vector<double> copy(values.begin(), values.end());
  std::sort(copy.begin(), copy.end());
  const double clamped = std::min(std::max(p, 0.0), 100.0);
  const double pos = clamped / 100.0 * static_cast<double>(copy.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, copy.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return copy[lo] + frac * (copy[hi] - copy[lo]);
}

double geometric_mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double log_sum = 0.0;
  for (const double v : values) log_sum += std::log(v);
  return std::exp(log_sum / static_cast<double>(values.size()));
}

double relative_error(double a, double b, double eps_floor) {
  const double scale = std::max({std::abs(a), std::abs(b), eps_floor});
  return std::abs(a - b) / scale;
}

}  // namespace svmutil
