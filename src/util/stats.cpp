#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace svmutil {

Summary summarize(std::span<const double> values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  s.min = values[0];
  s.max = values[0];
  double sum = 0.0;
  for (const double v : values) {
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
    sum += v;
  }
  s.mean = sum / static_cast<double>(values.size());
  double sq = 0.0;
  for (const double v : values) sq += (v - s.mean) * (v - s.mean);
  s.stddev = std::sqrt(sq / static_cast<double>(values.size()));

  std::vector<double> copy(values.begin(), values.end());
  const std::size_t mid = copy.size() / 2;
  std::nth_element(copy.begin(), copy.begin() + mid, copy.end());
  if (copy.size() % 2 == 1) {
    s.median = copy[mid];
  } else {
    const double upper = copy[mid];
    std::nth_element(copy.begin(), copy.begin() + mid - 1, copy.end());
    s.median = 0.5 * (upper + copy[mid - 1]);
  }
  return s;
}

double geometric_mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double log_sum = 0.0;
  for (const double v : values) log_sum += std::log(v);
  return std::exp(log_sum / static_cast<double>(values.size()));
}

double relative_error(double a, double b, double eps_floor) {
  const double scale = std::max({std::abs(a), std::abs(b), eps_floor});
  return std::abs(a - b) / scale;
}

}  // namespace svmutil
