// Wall-clock timing helpers used across solvers and bench harnesses.
#pragma once

#include <chrono>
#include <cstdint>

namespace svmutil {

/// Monotonic wall-clock stopwatch with microsecond resolution.
class Timer {
 public:
  Timer() noexcept { reset(); }

  void reset() noexcept { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double milliseconds() const noexcept { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates time across multiple start/stop intervals; used for per-phase
/// breakdowns (e.g. fraction of time in gradient reconstruction, Fig. 8).
class PhaseTimer {
 public:
  void start() noexcept {
    running_ = true;
    stopwatch_.reset();
  }

  void stop() noexcept {
    if (running_) {
      total_ += stopwatch_.seconds();
      ++intervals_;
      running_ = false;
    }
  }

  [[nodiscard]] double total_seconds() const noexcept { return total_; }
  [[nodiscard]] std::uint64_t intervals() const noexcept { return intervals_; }

 private:
  Timer stopwatch_;
  double total_ = 0.0;
  std::uint64_t intervals_ = 0;
  bool running_ = false;
};

/// RAII guard that stops a PhaseTimer on scope exit.
class ScopedPhase {
 public:
  explicit ScopedPhase(PhaseTimer& timer) noexcept : timer_(timer) { timer_.start(); }
  ~ScopedPhase() { timer_.stop(); }
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  PhaseTimer& timer_;
};

}  // namespace svmutil
