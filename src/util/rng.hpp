// Deterministic pseudo-random number generation for reproducible datasets,
// heuristics and tests. We avoid std::mt19937 seeding pitfalls and libstdc++
// distribution non-portability by implementing splitmix64 (seeding) and
// xoshiro256** (stream), plus the handful of distributions the project needs.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace svmutil {

/// splitmix64: used to expand a single 64-bit seed into xoshiro state.
/// Passes BigCrush; recommended by the xoshiro authors for seeding.
[[nodiscard]] constexpr std::uint64_t splitmix64_next(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 by Blackman & Vigna. Small, fast, high quality, and —
/// unlike std distributions — bit-reproducible across standard libraries.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed5eed5eedULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64_next(sm);
  }

  [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
  [[nodiscard]] static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1). Uses the top 53 bits.
  [[nodiscard]] double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). Lemire's nearly-divisionless method.
  [[nodiscard]] std::uint64_t uniform_index(std::uint64_t n) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(uniform_index(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Standard normal via Marsaglia polar method (no trig, reproducible).
  [[nodiscard]] double normal() noexcept;

  /// Normal with the given mean and standard deviation.
  [[nodiscard]] double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

  /// Bernoulli draw with probability p of returning true.
  [[nodiscard]] bool bernoulli(double p) noexcept { return uniform() < p; }

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = uniform_index(i);
      std::swap(v[i - 1], v[j]);
    }
  }

  /// k distinct indices sampled uniformly from [0, n) (Floyd's algorithm order
  /// is not needed here; we shuffle a prefix for simplicity at small k).
  [[nodiscard]] std::vector<std::size_t> sample_without_replacement(std::size_t n, std::size_t k);

 private:
  [[nodiscard]] static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace svmutil
