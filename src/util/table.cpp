#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace svmutil {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::num(double value, int precision) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(precision);
  out << value;
  return out.str();
}

std::string TextTable::integer(long long value) { return std::to_string(value); }

std::string TextTable::str() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());

  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << "  " << cells[c];
      if (c + 1 < cells.size()) out << std::string(width[c] - cells[c].size(), ' ');
    }
    out << '\n';
  };
  emit(header_);
  std::size_t rule = 0;
  for (const std::size_t w : width) rule += w + 2;
  out << std::string(rule, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return out.str();
}

void TextTable::print() const {
  const std::string rendered = str();
  std::fwrite(rendered.data(), 1, rendered.size(), stdout);
  std::fflush(stdout);
}

}  // namespace svmutil
