// Plain-text table rendering for bench harness output. Every bench binary
// regenerating a paper table/figure prints its rows through this so output
// is uniform and machine-greppable.
#pragma once

#include <string>
#include <vector>

namespace svmutil {

/// Column-aligned text table. Cells are strings; numeric helpers format with
/// fixed precision. Rendered with a header rule and column padding.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends one row; pads or truncates to the header width.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats doubles at the given precision alongside strings.
  [[nodiscard]] static std::string num(double value, int precision = 3);
  [[nodiscard]] static std::string integer(long long value);

  /// Renders the table with aligned columns.
  [[nodiscard]] std::string str() const;

  /// Renders and writes to stdout.
  void print() const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace svmutil
