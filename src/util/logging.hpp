// Minimal thread-safe leveled logging. Solvers log at debug level; benches
// and examples raise the level for progress reporting. No global state other
// than the level and a mutex serializing writes.
#pragma once

#include <mutex>
#include <sstream>
#include <string>
#include <string_view>

namespace svmutil {

enum class LogLevel : int { debug = 0, info = 1, warn = 2, error = 3, off = 4 };

/// Global minimum level; messages below it are dropped.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Parses "debug"/"info"/"warn"/"error"/"off" (the names printed in log
/// lines). Throws std::invalid_argument on anything else, so a typo in
/// --log-level fails loudly instead of silently keeping the default.
[[nodiscard]] LogLevel log_level_from_string(std::string_view name);

/// Writes one formatted line ("[level] message\n") to stderr under a mutex.
void log_line(LogLevel level, std::string_view message);

namespace detail {

class LogStream {
 public:
  explicit LogStream(LogLevel level) noexcept : level_(level) {}
  ~LogStream() { log_line(level_, buffer_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& value) {
    buffer_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream buffer_;
};

}  // namespace detail

#define SVM_LOG(level)                                       \
  if (static_cast<int>(level) < static_cast<int>(::svmutil::log_level())) { \
  } else                                                     \
    ::svmutil::detail::LogStream(level)

#define SVM_LOG_DEBUG SVM_LOG(::svmutil::LogLevel::debug)
#define SVM_LOG_INFO SVM_LOG(::svmutil::LogLevel::info)
#define SVM_LOG_WARN SVM_LOG(::svmutil::LogLevel::warn)
#define SVM_LOG_ERROR SVM_LOG(::svmutil::LogLevel::error)

}  // namespace svmutil
