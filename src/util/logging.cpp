#include "util/logging.hpp"

#include <atomic>
#include <cstdio>
#include <stdexcept>

namespace svmutil {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::warn)};
std::mutex g_write_mutex;

[[nodiscard]] const char* level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::debug: return "debug";
    case LogLevel::info: return "info";
    case LogLevel::warn: return "warn";
    case LogLevel::error: return "error";
    case LogLevel::off: return "off";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(static_cast<int>(level)); }

LogLevel log_level() noexcept { return static_cast<LogLevel>(g_level.load()); }

LogLevel log_level_from_string(std::string_view name) {
  if (name == "debug") return LogLevel::debug;
  if (name == "info") return LogLevel::info;
  if (name == "warn") return LogLevel::warn;
  if (name == "error") return LogLevel::error;
  if (name == "off") return LogLevel::off;
  throw std::invalid_argument("unknown log level: " + std::string(name) +
                              " (expected debug|info|warn|error|off)");
}

void log_line(LogLevel level, std::string_view message) {
  if (static_cast<int>(level) < g_level.load()) return;
  std::lock_guard lock(g_write_mutex);
  std::fprintf(stderr, "[%s] %.*s\n", level_name(level), static_cast<int>(message.size()),
               message.data());
}

}  // namespace svmutil
