// Small descriptive-statistics helpers for bench reporting and tests.
#pragma once

#include <cstddef>
#include <span>

namespace svmutil {

struct Summary {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;  ///< population standard deviation
  double median = 0.0;
};

/// One-pass summary (median requires a copy + nth_element).
[[nodiscard]] Summary summarize(std::span<const double> values);

/// Linear-interpolated percentile, `p` in [0, 100] (p50 = median, p99 = tail
/// latency). Returns 0 for empty input; a single value is every percentile.
[[nodiscard]] double percentile(std::span<const double> values, double p);

/// Geometric mean; values must be positive. Returns 0 for empty input.
[[nodiscard]] double geometric_mean(std::span<const double> values);

/// Relative error |a-b| / max(|a|,|b|,eps_floor).
[[nodiscard]] double relative_error(double a, double b, double eps_floor = 1e-12);

}  // namespace svmutil
