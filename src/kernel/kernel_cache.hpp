// LRU kernel-row cache, the component the paper's proposed algorithm
// deliberately *avoids* (§III-A.2) but which the libsvm baseline depends on.
// Caches full rows K(x_i, *) keyed by sample index with a byte budget;
// eviction is least-recently-used, matching libsvm's Cache class semantics.
// Hit/miss counters feed the kernel-cache ablation bench.
//
// Rows arrive and are served as float spans, but the RESIDENT encoding is
// selected by a RowFlavor: f64/f32 keep the floats as-is (4 B/value, the
// legacy zero-copy layout), f16 stores binary16 (2 B/value), i8 stores
// symmetric per-row int8 quantization (1 B/value + one scale). The byte
// budget charges the ACTUAL encoded bytes, so an i8 cache holds ~4x the rows
// of an f32 cache under the same budget. Compact flavors decode on lookup
// into a member scratch buffer; the usual span lifetime contract (valid
// until the next lookup()/clear()) is unchanged. Quantization is applied on
// insert, so the row a miss-and-insert call sees is bitwise the row every
// later hit sees — solver trajectories stay deterministic per flavor.
#pragma once

#include <cstdint>
#include <list>
#include <span>
#include <unordered_map>
#include <vector>

#include "kernel/row_store.hpp"

namespace svmkernel {

class KernelRowCache {
 public:
  /// `budget_bytes` bounds the summed ENCODED size of cached rows; a single
  /// row larger than the budget is still admitted alone (libsvm behaviour).
  /// `flavor` selects the resident encoding (f64 and f32 both mean plain
  /// float storage — rows already arrive rounded to float).
  explicit KernelRowCache(std::size_t budget_bytes, RowFlavor flavor = RowFlavor::f32)
      : budget_bytes_(budget_bytes), flavor_(flavor) {}

  /// Looks up the row for sample `index`. On hit, returns a view and bumps
  /// recency. On miss, returns an empty span; call insert() with the data.
  ///
  /// Lifetime contract: the returned span stays valid until the NEXT call to
  /// lookup() or clear(). The looked-up entry is pinned — insert() will evict
  /// other LRU entries but never the pinned one (the budget may transiently
  /// overshoot by that single row, matching libsvm's behaviour of always
  /// keeping the in-flight row resident). Each lookup() releases the
  /// previous pin, so callers that need two live rows must copy the first.
  [[nodiscard]] std::span<const float> lookup(std::size_t index);

  /// Inserts a row (copies + encodes per flavor), evicting LRU entries until
  /// within budget. The entry pinned by the latest lookup() is never
  /// evicted; the inserted row itself becomes most-recent but is not pinned.
  void insert(std::size_t index, std::span<const float> row);

  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }
  /// Encoded bytes currently resident (what the budget is charged against).
  [[nodiscard]] std::size_t bytes_used() const noexcept { return bytes_used_; }
  [[nodiscard]] std::size_t bytes_resident() const noexcept { return bytes_used_; }
  [[nodiscard]] std::size_t entries() const noexcept { return map_.size(); }
  [[nodiscard]] RowFlavor flavor() const noexcept { return flavor_; }
  [[nodiscard]] double hit_rate() const noexcept {
    const std::uint64_t total = hits_ + misses_;
    return total == 0 ? 0.0 : static_cast<double>(hits_) / static_cast<double>(total);
  }

  void clear();

 private:
  struct Entry {
    std::size_t index;
    std::size_t len;                   ///< decoded element count
    std::vector<float> f32;            ///< f64/f32 flavors
    std::vector<std::uint16_t> f16;    ///< f16 flavor
    std::vector<std::int8_t> i8;       ///< i8 flavor (symmetric, per-row scale)
    float i8_scale = 0.0f;
  };

  [[nodiscard]] std::size_t entry_bytes(std::size_t len) const noexcept;
  [[nodiscard]] std::span<const float> decode(const Entry& e);

  static constexpr std::size_t kNoPin = static_cast<std::size_t>(-1);

  std::size_t budget_bytes_;
  RowFlavor flavor_;
  std::size_t bytes_used_ = 0;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<std::size_t, std::list<Entry>::iterator> map_;
  std::vector<float> scratch_;  ///< decode target for compact flavors
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::size_t pinned_ = kNoPin;  ///< index of the entry the last lookup() returned
};

}  // namespace svmkernel
