// LRU kernel-row cache, the component the paper's proposed algorithm
// deliberately *avoids* (§III-A.2) but which the libsvm baseline depends on.
// Caches full rows K(x_i, *) keyed by sample index with a byte budget;
// eviction is least-recently-used, matching libsvm's Cache class semantics.
// Hit/miss counters feed the kernel-cache ablation bench.
#pragma once

#include <cstdint>
#include <list>
#include <span>
#include <unordered_map>
#include <vector>

namespace svmkernel {

class KernelRowCache {
 public:
  /// `budget_bytes` bounds the summed size of cached rows; a single row
  /// larger than the budget is still admitted alone (libsvm behaviour).
  explicit KernelRowCache(std::size_t budget_bytes) : budget_bytes_(budget_bytes) {}

  /// Looks up the row for sample `index`. On hit, returns a view and bumps
  /// recency. On miss, returns an empty span; call insert() with the data.
  ///
  /// Lifetime contract: the returned span stays valid until the NEXT call to
  /// lookup() or clear(). The looked-up entry is pinned — insert() will evict
  /// other LRU entries but never the pinned one (the budget may transiently
  /// overshoot by that single row, matching libsvm's behaviour of always
  /// keeping the in-flight row resident). Each lookup() releases the
  /// previous pin, so callers that need two live rows must copy the first.
  [[nodiscard]] std::span<const float> lookup(std::size_t index);

  /// Inserts a row (copies), evicting LRU entries until within budget.
  /// The entry pinned by the latest lookup() is never evicted; the inserted
  /// row itself becomes most-recent but is not pinned.
  void insert(std::size_t index, std::span<const float> row);

  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }
  [[nodiscard]] std::size_t bytes_used() const noexcept { return bytes_used_; }
  [[nodiscard]] std::size_t entries() const noexcept { return map_.size(); }
  [[nodiscard]] double hit_rate() const noexcept {
    const std::uint64_t total = hits_ + misses_;
    return total == 0 ? 0.0 : static_cast<double>(hits_) / static_cast<double>(total);
  }

  void clear();

 private:
  struct Entry {
    std::size_t index;
    std::vector<float> row;
  };

  static constexpr std::size_t kNoPin = static_cast<std::size_t>(-1);

  std::size_t budget_bytes_;
  std::size_t bytes_used_ = 0;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<std::size_t, std::list<Entry>::iterator> map_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::size_t pinned_ = kNoPin;  ///< index of the entry the last lookup() returned
};

}  // namespace svmkernel
