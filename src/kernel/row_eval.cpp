#include "kernel/row_eval.hpp"

namespace svmkernel {

void eval_rows(const Kernel& kernel, const svmdata::CsrMatrix& X,
               std::span<const double> sq_norms, std::span<const svmdata::Feature> query,
               double sq_query, std::size_t begin, std::size_t end, std::span<double> out,
               bool parallel) {
  const auto first = static_cast<std::ptrdiff_t>(begin);
  const auto last = static_cast<std::ptrdiff_t>(end);
  if (parallel) {
#pragma omp parallel for schedule(static)
    for (std::ptrdiff_t i = first; i < last; ++i)
      out[i - first] = kernel.eval(X.row(static_cast<std::size_t>(i)), query,
                                   sq_norms[static_cast<std::size_t>(i)], sq_query);
  } else {
    for (std::ptrdiff_t i = first; i < last; ++i)
      out[i - first] = kernel.eval(X.row(static_cast<std::size_t>(i)), query,
                                   sq_norms[static_cast<std::size_t>(i)], sq_query);
  }
}

std::vector<double> eval_all_rows(const Kernel& kernel, const svmdata::CsrMatrix& X,
                                  std::span<const double> sq_norms,
                                  std::span<const svmdata::Feature> query, double sq_query,
                                  bool parallel) {
  std::vector<double> out(X.rows());
  eval_rows(kernel, X, sq_norms, query, sq_query, 0, X.rows(), out, parallel);
  return out;
}

}  // namespace svmkernel
