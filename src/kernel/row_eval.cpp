#include "kernel/row_eval.hpp"

#include "kernel/kernel_engine.hpp"

namespace svmkernel {

// Thin forwarder onto the batched KernelEngine core (dense scatter path,
// bit-identical to the merge-join reference — see kernel_engine.hpp). Kept
// as a free function for callers that hold norms themselves and evaluate
// one query ad hoc; solvers own a long-lived engine instead.
void eval_rows(const Kernel& kernel, const svmdata::CsrMatrix& X,
               std::span<const double> sq_norms, std::span<const svmdata::Feature> query,
               double sq_query, std::size_t begin, std::size_t end, std::span<double> out,
               bool parallel) {
  KernelEngine engine(kernel, X, EngineBackend::dense_scatter, sq_norms);
  engine.eval_rows(query, sq_query, begin, end, out, parallel);
}

std::vector<double> eval_all_rows(const Kernel& kernel, const svmdata::CsrMatrix& X,
                                  std::span<const double> sq_norms,
                                  std::span<const svmdata::Feature> query, double sq_query,
                                  bool parallel) {
  std::vector<double> out(X.rows());
  eval_rows(kernel, X, sq_norms, query, sq_query, 0, X.rows(), out, parallel);
  return out;
}

}  // namespace svmkernel
