#include "kernel/row_store.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace svmkernel {

namespace {
constexpr std::size_t kMaxStoreBytes = std::size_t{3} << 30;  // 3 GiB dense-footprint guard
}

std::string to_string(RowFlavor flavor) {
  switch (flavor) {
    case RowFlavor::f64: return "f64";
    case RowFlavor::f32: return "f32";
    case RowFlavor::f16: return "f16";
    case RowFlavor::i8: return "i8";
  }
  return "unknown";
}

RowFlavor row_flavor_from_string(const std::string& name) {
  if (name == "f64" || name == "double") return RowFlavor::f64;
  if (name == "f32" || name == "float") return RowFlavor::f32;
  if (name == "f16" || name == "half") return RowFlavor::f16;
  if (name == "i8" || name == "int8") return RowFlavor::i8;
  throw std::invalid_argument("row_flavor_from_string: unknown flavor '" + name +
                              "' (expected f64|f32|f16|i8)");
}

std::size_t flavor_element_bytes(RowFlavor flavor) noexcept {
  switch (flavor) {
    case RowFlavor::f64: return 8;
    case RowFlavor::f32: return 4;
    case RowFlavor::f16: return 2;
    case RowFlavor::i8: return 1;
  }
  return 8;
}

const char* trace_label(RowFlavor flavor) noexcept {
  switch (flavor) {
    case RowFlavor::f64: return "flavor_f64";
    case RowFlavor::f32: return "flavor_f32";
    case RowFlavor::f16: return "flavor_f16";
    case RowFlavor::i8: return "flavor_i8";
  }
  return "flavor_unknown";
}

RowStore::RowStore(const svmdata::CsrMatrix& X, std::size_t row_begin, std::size_t row_end,
                   RowFlavor flavor)
    : flavor_(flavor), ops_(&simd::ops()) {
  if (row_begin > row_end || row_end > X.rows())
    throw std::invalid_argument("RowStore: row range out of bounds");
  rows_ = row_end - row_begin;
  cols_ = X.cols();
  panels_ = (rows_ + kPanel - 1) / kPanel;
  const std::size_t elems = panels_ * kPanel * cols_;
  const std::size_t payload = elems * flavor_element_bytes(flavor_);
  if (payload > kMaxStoreBytes)
    throw std::invalid_argument(
        "RowStore: dense flavored storage for " + std::to_string(rows_) + "x" +
        std::to_string(cols_) + " rows would need " + std::to_string(payload) +
        " bytes; use the dense_scatter or cached backend for very wide sparse data");
  switch (flavor_) {
    case RowFlavor::f64: data_f64_.assign(elems, 0.0); break;
    case RowFlavor::f32: data_f32_.assign(elems, 0.0f); break;
    case RowFlavor::f16: data_f16_.assign(elems, 0); break;
    case RowFlavor::i8:
      data_i8_.assign(elems, 0);
      i8_scale_.assign(panels_ * kPanel, 0.0f);
      i8_offset_.assign(panels_ * kPanel, 0.0f);
      break;
  }
  bytes_resident_ = payload;
  if (flavor_ == RowFlavor::i8)
    bytes_resident_ += (i8_scale_.size() + i8_offset_.size()) * sizeof(float);
  sq_norms_.assign(rows_, 0.0);
  encode(X, row_begin);
}

void RowStore::encode(const svmdata::CsrMatrix& X, std::size_t row_begin) {
  for (std::size_t r = 0; r < rows_; ++r) {
    const auto row = X.row(row_begin + r);
    const std::size_t base = (r / kPanel) * kPanel * cols_ + (r % kPanel);
    double sq = 0.0;
    switch (flavor_) {
      case RowFlavor::f64: {
        for (const auto& f : row) {
          data_f64_[base + static_cast<std::size_t>(f.index) * kPanel] = f.value;
          sq += f.value * f.value;
        }
        break;
      }
      case RowFlavor::f32: {
        for (const auto& f : row) {
          const float v = static_cast<float>(f.value);
          data_f32_[base + static_cast<std::size_t>(f.index) * kPanel] = v;
          const double d = static_cast<double>(v);
          sq += d * d;
        }
        break;
      }
      case RowFlavor::f16: {
        for (const auto& f : row) {
          const std::uint16_t h = simd::float_to_half(static_cast<float>(f.value));
          data_f16_[base + static_cast<std::size_t>(f.index) * kPanel] = h;
          const double d = static_cast<double>(simd::half_to_float(h));
          sq += d * d;
        }
        break;
      }
      case RowFlavor::i8: {
        // Pick the per-row affine map. Rows with implicit zeros must keep
        // zero representable exactly, so they get the symmetric map; only
        // fully-dense rows spend the codebook on the [min, max] midrange.
        float scale = 0.0f;
        float offset = 0.0f;
        if (!row.empty()) {
          if (row.size() == cols_) {
            double lo = row.front().value;
            double hi = lo;
            for (const auto& f : row) {
              lo = std::min(lo, f.value);
              hi = std::max(hi, f.value);
            }
            offset = static_cast<float>(0.5 * (lo + hi));
            scale = static_cast<float>((hi - lo) / 254.0);
          } else {
            double amax = 0.0;
            for (const auto& f : row) amax = std::max(amax, std::abs(f.value));
            scale = static_cast<float>(amax / 127.0);
          }
        }
        i8_scale_[r] = scale;
        i8_offset_[r] = offset;
        const double ds = static_cast<double>(scale);
        const double doff = static_cast<double>(offset);
        for (const auto& f : row) {
          long code = 0;
          if (scale != 0.0f) {
            code = std::lround((f.value - doff) / ds);
            code = std::clamp(code, long{-127}, long{127});
          }
          data_i8_[base + static_cast<std::size_t>(f.index) * kPanel] =
              static_cast<std::int8_t>(code);
          const double d = doff + ds * static_cast<double>(code);
          sq += d * d;
        }
        // Implicit zeros decode to offset + scale*0 = offset; symmetric rows
        // have offset == 0 so they contribute nothing. (Affine rows have no
        // implicit zeros by construction.)
        break;
      }
    }
    sq_norms_[r] = sq;
  }
}

void RowStore::prepare_query(std::span<const double> qa, std::span<const double> qb) {
  qa64_ = qa;
  qb64_ = qb;
  have_qb_ = !qb.empty();
  if (flavor_ == RowFlavor::f64) return;
  qa32_.resize(cols_);
  for (std::size_t j = 0; j < cols_; ++j) qa32_[j] = static_cast<float>(qa[j]);
  if (have_qb_) {
    qb32_.resize(cols_);
    for (std::size_t j = 0; j < cols_; ++j) qb32_[j] = static_cast<float>(qb[j]);
  }
  if (flavor_ == RowFlavor::i8) {
    qa_sum_ = 0.0;
    for (std::size_t j = 0; j < cols_; ++j) qa_sum_ += qa[j];
    qb_sum_ = 0.0;
    if (have_qb_)
      for (std::size_t j = 0; j < cols_; ++j) qb_sum_ += qb[j];
  }
}

void RowStore::panel_dots(std::size_t p, double* out_a, double* out_b) const {
  const std::size_t base = p * kPanel * cols_;
  switch (flavor_) {
    case RowFlavor::f64: {
      const double* panel = data_f64_.data() + base;
      if (out_b)
        ops_->dot2_f64(qa64_.data(), qb64_.data(), panel, cols_, out_a, out_b);
      else
        ops_->dot_f64(qa64_.data(), panel, cols_, out_a);
      return;
    }
    case RowFlavor::f32: {
      const float* panel = data_f32_.data() + base;
      float a[kPanel], b[kPanel];
      if (out_b)
        ops_->dot2_f32(qa32_.data(), qb32_.data(), panel, cols_, a, b);
      else
        ops_->dot_f32(qa32_.data(), panel, cols_, a);
      for (std::size_t l = 0; l < kPanel; ++l) out_a[l] = static_cast<double>(a[l]);
      if (out_b)
        for (std::size_t l = 0; l < kPanel; ++l) out_b[l] = static_cast<double>(b[l]);
      return;
    }
    case RowFlavor::f16: {
      const std::uint16_t* panel = data_f16_.data() + base;
      float a[kPanel], b[kPanel];
      if (out_b)
        ops_->dot2_f16(qa32_.data(), qb32_.data(), panel, cols_, a, b);
      else
        ops_->dot_f16(qa32_.data(), panel, cols_, a);
      for (std::size_t l = 0; l < kPanel; ++l) out_a[l] = static_cast<double>(a[l]);
      if (out_b)
        for (std::size_t l = 0; l < kPanel; ++l) out_b[l] = static_cast<double>(b[l]);
      return;
    }
    case RowFlavor::i8: {
      const std::int8_t* panel = data_i8_.data() + base;
      float a[kPanel], b[kPanel];
      if (out_b)
        ops_->dot2_i8(qa32_.data(), qb32_.data(), panel, cols_, a, b);
      else
        ops_->dot_i8(qa32_.data(), panel, cols_, a);
      // dot = scale_r * sum_j q[j]*code_r[j] + offset_r * sum_j q[j]
      const float* scale = i8_scale_.data() + p * kPanel;
      const float* offset = i8_offset_.data() + p * kPanel;
      for (std::size_t l = 0; l < kPanel; ++l)
        out_a[l] = static_cast<double>(scale[l]) * static_cast<double>(a[l]) +
                   static_cast<double>(offset[l]) * qa_sum_;
      if (out_b)
        for (std::size_t l = 0; l < kPanel; ++l)
          out_b[l] = static_cast<double>(scale[l]) * static_cast<double>(b[l]) +
                     static_cast<double>(offset[l]) * qb_sum_;
      return;
    }
  }
}

}  // namespace svmkernel
