#include "kernel/kernel_engine.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/trace.hpp"

namespace svmkernel {

namespace {

// One cache-hit-rate counter sample per kCacheCounterStride k_row_floats
// calls: frequent enough to plot warm-up, cheap enough for traced runs.
constexpr std::uint64_t kCacheCounterStride = 1024;

}  // namespace

std::string to_string(EngineBackend backend) {
  switch (backend) {
    case EngineBackend::reference: return "reference";
    case EngineBackend::dense_scatter: return "dense_scatter";
    case EngineBackend::cached: return "cached";
    case EngineBackend::simd: return "simd";
  }
  return "?";
}

EngineBackend engine_backend_from_string(const std::string& name) {
  if (name == "reference") return EngineBackend::reference;
  if (name == "dense_scatter") return EngineBackend::dense_scatter;
  if (name == "cached") return EngineBackend::cached;
  if (name == "simd") return EngineBackend::simd;
  throw std::invalid_argument("engine_backend_from_string: unknown backend '" + name + "'");
}

const char* trace_label(EngineBackend backend) noexcept {
  switch (backend) {
    case EngineBackend::reference: return "backend_reference";
    case EngineBackend::dense_scatter: return "backend_dense_scatter";
    case EngineBackend::cached: return "backend_cached";
    case EngineBackend::simd: return "backend_simd";
  }
  return "backend_unknown";
}

void KernelEngine::init_flavored(std::size_t cache_budget_bytes) {
  if (flavor_ != RowFlavor::f64 &&
      (backend_ == EngineBackend::reference || backend_ == EngineBackend::dense_scatter))
    throw std::invalid_argument("KernelEngine: flavored rows ('" + to_string(flavor_) +
                                "') require the simd or cached backend");
  if (backend_ == EngineBackend::cached) {
    if (cache_budget_bytes > 0)
      cache_ = std::make_unique<KernelRowCache>(cache_budget_bytes, flavor_);
    else if (flavor_ != RowFlavor::f64)
      throw std::invalid_argument(
          "KernelEngine: flavored cached backend needs a cache budget (rows are "
          "encoded on insert; without a cache there is nothing to flavor)");
  }
  if (backend_ == EngineBackend::simd) {
    // Borrowed norm spans may be longer than the matrix; the store covers
    // exactly the rows that exist.
    const std::size_t row_end = std::min(norm_begin_ + norms_.size(), X_.rows());
    store_ = std::make_unique<RowStore>(X_, norm_begin_, row_end, flavor_);
  }
}

KernelEngine::KernelEngine(const Kernel& kernel, const svmdata::CsrMatrix& X,
                           EngineBackend backend, std::size_t norm_begin,
                           std::size_t norm_end, std::size_t cache_budget_bytes,
                           RowFlavor flavor)
    : kernel_(kernel), X_(X), backend_(backend), flavor_(flavor), norm_begin_(norm_begin) {
  if (norm_end < norm_begin || norm_end > X.rows())
    throw std::invalid_argument("KernelEngine: bad norm range");
  owned_norms_.resize(norm_end - norm_begin);
  for (std::size_t i = norm_begin; i < norm_end; ++i)
    owned_norms_[i - norm_begin] = svmdata::CsrMatrix::squared_norm(X.row(i));
  norms_ = owned_norms_;
  init_flavored(cache_budget_bytes);
}

KernelEngine::KernelEngine(const Kernel& kernel, const svmdata::CsrMatrix& X,
                           EngineBackend backend, std::span<const double> sq_norms,
                           RowFlavor flavor)
    : kernel_(kernel),
      X_(X),
      backend_(backend),
      flavor_(flavor),
      norm_begin_(0),
      norms_(sq_norms) {
  if (sq_norms.size() < X.rows())
    throw std::invalid_argument("KernelEngine: borrowed norms shorter than matrix");
  init_flavored(0);
}

KernelEngine::KernelEngine(const KernelParams& params, const svmdata::CsrMatrix& X,
                           EngineBackend backend, std::span<const double> sq_norms,
                           RowFlavor flavor)
    : owned_kernel_(std::make_unique<Kernel>(params)),
      kernel_(*owned_kernel_),
      X_(X),
      backend_(backend),
      flavor_(flavor),
      norm_begin_(0),
      norms_(sq_norms) {
  if (sq_norms.size() < X.rows())
    throw std::invalid_argument("KernelEngine: borrowed norms shorter than matrix");
  init_flavored(0);
}

void KernelEngine::ensure_dense(std::size_t lanes) {
  const std::size_t needed = lanes * X_.cols();
  // The buffer is kept all-zero between scatters, so growing with
  // zero-fill (and reinterpreting the lane stride) preserves the invariant.
  if (dense_.size() < needed) dense_.resize(needed, 0.0);
  dense_lanes_ = lanes;
}

void KernelEngine::scatter(std::span<const svmdata::Feature> row, std::size_t lane,
                           std::size_t lanes) {
  const std::size_t cols = X_.cols();
  // Query features beyond the matrix's column count cannot intersect any
  // matrix row; skipping them is exact (and keeps the buffer in bounds when
  // the query is a remote sample with wider features).
  for (const svmdata::Feature& f : row) {
    const auto idx = static_cast<std::size_t>(f.index);
    if (idx < cols) dense_[idx * lanes + lane] = f.value;
  }
}

void KernelEngine::unscatter(std::span<const svmdata::Feature> row, std::size_t lane,
                             std::size_t lanes) {
  const std::size_t cols = X_.cols();
  for (const svmdata::Feature& f : row) {
    const auto idx = static_cast<std::size_t>(f.index);
    if (idx < cols) dense_[idx * lanes + lane] = 0.0;
  }
}

std::uint64_t KernelEngine::payload_bytes(std::span<const std::uint32_t> rows,
                                          std::size_t base) const noexcept {
  std::uint64_t bytes = 0;
  for (const std::uint32_t r : rows)
    bytes += X_.row(base + r).size() * sizeof(svmdata::Feature);
  return bytes;
}

void KernelEngine::eval_pair_rows(std::span<const svmdata::Feature> up, double sq_up,
                                  std::span<const svmdata::Feature> low, double sq_low,
                                  std::span<const std::uint32_t> rows, std::size_t base,
                                  std::span<double> out_up, std::span<double> out_low,
                                  bool parallel) {
  svmobs::TraceSpan span("engine_pair_batch", "kernel");
  const auto count = static_cast<std::ptrdiff_t>(rows.size());
  stats_.pair_evals += rows.size();
  stats_.bytes_streamed +=
      store_ ? rows.size() * store_->row_bytes() : payload_bytes(rows, base);

  if (backend_ == EngineBackend::reference) {
    // Ground truth: two sparse merge joins per sample, as the pre-engine
    // solvers did. Kernel::eval bumps the evaluation counter itself.
#pragma omp parallel for schedule(static) if (parallel)
    for (std::ptrdiff_t k = 0; k < count; ++k) {
      const std::size_t g = base + rows[static_cast<std::size_t>(k)];
      const auto row = X_.row(g);
      const double sq = sq_norm(g);
      out_up[static_cast<std::size_t>(k)] = kernel_.eval(up, row, sq_up, sq);
      out_low[static_cast<std::size_t>(k)] = kernel_.eval(low, row, sq_low, sq);
    }
    return;
  }

  if (backend_ == EngineBackend::simd) {
    // Panel sweep with last-panel memoization: the solver hands this path a
    // sorted active-index list, so each touched panel is computed once.
    // Intra-call threading is skipped — the memo is worth more than a
    // parallel-for on arbitrary index lists.
    (void)parallel;
    fill_query_vec(qa_vec_, up);
    fill_query_vec(qb_vec_, low);
    simd_pair_indexed(rows, base, sq_up, sq_low, out_up, out_low);
    kernel_.note_evaluations(2 * rows.size());
    clear_query_vec(qa_vec_, up);
    clear_query_vec(qb_vec_, low);
    return;
  }

  // Fused fast path: one interleaved dense buffer holds both query rows, so
  // each matrix row is traversed once and yields both kernel values.
  ensure_dense(2);
  scatter(up, 0, 2);
  scatter(low, 1, 2);
  stats_.scatter_builds += 2;
#pragma omp parallel for schedule(static) if (parallel)
  for (std::ptrdiff_t k = 0; k < count; ++k) {
    const std::size_t g = base + rows[static_cast<std::size_t>(k)];
    double du = 0.0;
    double dl = 0.0;
    for (const svmdata::Feature& f : X_.row(g)) {
      const double* lane = dense_.data() + 2 * static_cast<std::size_t>(f.index);
      du += f.value * lane[0];
      dl += f.value * lane[1];
    }
    const double sq = sq_norm(g);
    out_up[static_cast<std::size_t>(k)] = kernel_.finish_from_dot(du, sq_up, sq);
    out_low[static_cast<std::size_t>(k)] = kernel_.finish_from_dot(dl, sq_low, sq);
  }
  kernel_.note_evaluations(2 * rows.size());
  unscatter(up, 0, 2);
  unscatter(low, 1, 2);
}

void KernelEngine::eval_pair_range(std::span<const svmdata::Feature> up, double sq_up,
                                   std::span<const svmdata::Feature> low, double sq_low,
                                   std::size_t begin, std::size_t end,
                                   std::span<double> out_up, std::span<double> out_low,
                                   bool parallel) {
  svmobs::TraceSpan span("engine_pair_batch", "kernel");
  const auto first = static_cast<std::ptrdiff_t>(begin);
  const auto last = static_cast<std::ptrdiff_t>(end);
  stats_.pair_evals += end - begin;
  if (store_) {
    stats_.bytes_streamed += (end - begin) * store_->row_bytes();
  } else {
    for (std::size_t i = begin; i < end; ++i)
      stats_.bytes_streamed += X_.row(i).size() * sizeof(svmdata::Feature);
  }

  if (backend_ == EngineBackend::reference) {
#pragma omp parallel for schedule(static) if (parallel)
    for (std::ptrdiff_t k = first; k < last; ++k) {
      const auto g = static_cast<std::size_t>(k);
      const auto row = X_.row(g);
      const double sq = sq_norm(g);
      out_up[g - begin] = kernel_.eval(up, row, sq_up, sq);
      out_low[g - begin] = kernel_.eval(low, row, sq_low, sq);
    }
    return;
  }

  if (backend_ == EngineBackend::simd) {
    fill_query_vec(qa_vec_, up);
    fill_query_vec(qb_vec_, low);
    simd_pair_range(begin, end, sq_up, sq_low, out_up, out_low, parallel);
    kernel_.note_evaluations(2 * (end - begin));
    clear_query_vec(qa_vec_, up);
    clear_query_vec(qb_vec_, low);
    return;
  }

  ensure_dense(2);
  scatter(up, 0, 2);
  scatter(low, 1, 2);
  stats_.scatter_builds += 2;
#pragma omp parallel for schedule(static) if (parallel)
  for (std::ptrdiff_t k = first; k < last; ++k) {
    const auto g = static_cast<std::size_t>(k);
    double du = 0.0;
    double dl = 0.0;
    for (const svmdata::Feature& f : X_.row(g)) {
      const double* lane = dense_.data() + 2 * static_cast<std::size_t>(f.index);
      du += f.value * lane[0];
      dl += f.value * lane[1];
    }
    const double sq = sq_norm(g);
    out_up[g - begin] = kernel_.finish_from_dot(du, sq_up, sq);
    out_low[g - begin] = kernel_.finish_from_dot(dl, sq_low, sq);
  }
  kernel_.note_evaluations(2 * (end - begin));
  unscatter(up, 0, 2);
  unscatter(low, 1, 2);
}

void KernelEngine::eval_rows(std::span<const svmdata::Feature> query, double sq_query,
                             std::size_t begin, std::size_t end, std::span<double> out,
                             bool parallel) {
  svmobs::TraceSpan span("engine_row_batch", "kernel");
  const auto first = static_cast<std::ptrdiff_t>(begin);
  const auto last = static_cast<std::ptrdiff_t>(end);
  stats_.single_evals += end - begin;
  if (store_) {
    stats_.bytes_streamed += (end - begin) * store_->row_bytes();
  } else {
    for (std::size_t i = begin; i < end; ++i)
      stats_.bytes_streamed += X_.row(i).size() * sizeof(svmdata::Feature);
  }

  if (backend_ == EngineBackend::reference) {
#pragma omp parallel for schedule(static) if (parallel)
    for (std::ptrdiff_t k = first; k < last; ++k) {
      const auto g = static_cast<std::size_t>(k);
      out[g - begin] = kernel_.eval(X_.row(g), query, sq_norm(g), sq_query);
    }
    return;
  }

  if (backend_ == EngineBackend::simd) {
    fill_query_vec(qa_vec_, query);
    simd_single_range(begin, end, sq_query, out, parallel);
    kernel_.note_evaluations(end - begin);
    clear_query_vec(qa_vec_, query);
    return;
  }

  ensure_dense(1);
  scatter(query, 0, 1);
  stats_.scatter_builds += 1;
#pragma omp parallel for schedule(static) if (parallel)
  for (std::ptrdiff_t k = first; k < last; ++k) {
    const auto g = static_cast<std::size_t>(k);
    double d = 0.0;
    for (const svmdata::Feature& f : X_.row(g))
      d += f.value * dense_[static_cast<std::size_t>(f.index)];
    out[g - begin] = kernel_.finish_from_dot(d, sq_norm(g), sq_query);
  }
  kernel_.note_evaluations(end - begin);
  unscatter(query, 0, 1);
}

void KernelEngine::eval_block_rows(
    std::span<const std::span<const svmdata::Feature>> block_rows,
    std::span<const double> block_sq_norms, std::span<const double> block_coeffs,
    std::span<const std::uint32_t> rows, std::size_t base, std::span<double> accum,
    bool parallel) {
  svmobs::TraceSpan span("engine_block_batch", "kernel");
  const std::size_t stale = rows.size();
  const std::size_t block = block_rows.size();
  stats_.single_evals += stale * block;

  if (backend_ == EngineBackend::reference) {
    // Ground truth: per stale sample, one ordered merge-join sweep over the
    // block — exactly the begin_query/query_row loop this call batches.
    for (std::size_t w = 0; w < stale; ++w) {
      const std::size_t g = base + rows[w];
      const auto stale_row = X_.row(g);
      const double sq_stale = sq_norm(g);
      stats_.bytes_streamed += block * stale_row.size() * sizeof(svmdata::Feature);
      double partial = 0.0;
      for (std::size_t j = 0; j < block; ++j)
        partial += block_coeffs[j] *
                   kernel_.eval(block_rows[j], stale_row, block_sq_norms[j], sq_stale);
      accum[w] += partial;
    }
    return;
  }

  if (backend_ == EngineBackend::simd) {
    // Panel orientation: the stale side already lives in the RowStore, so
    // each circulating block row becomes the prepared query and the store is
    // swept a panel at a time (dots cached while consecutive stale indices
    // stay in one panel). The serial ascending-j accumulation through the
    // partials buffer matches the scalar orientations' order, so f64 stays
    // bit-identical; `parallel` is ignored — the ordered reduction and the
    // lane amortization both want the serial sweep.
    (void)parallel;
    constexpr std::size_t kP = RowStore::kPanel;
    block_partials_.assign(stale, 0.0);
    double d[kP];
    for (std::size_t j = 0; j < block; ++j) {
      fill_query_vec(qa_vec_, block_rows[j]);
      store_->prepare_query(qa_vec_);
      const double coeff = block_coeffs[j];
      const double sq_block = block_sq_norms[j];
      std::size_t cur = std::numeric_limits<std::size_t>::max();
      for (std::size_t w = 0; w < stale; ++w) {
        const std::size_t local = base + rows[w] - norm_begin_;
        const std::size_t p = local / kP;
        if (p != cur) {
          store_->panel_dots(p, d);
          stats_.panel_dots += 1;
          cur = p;
        }
        block_partials_[w] +=
            coeff * kernel_.finish_from_dot(d[local % kP], sq_block, store_sq(local));
      }
      clear_query_vec(qa_vec_, block_rows[j]);
    }
    for (std::size_t w = 0; w < stale; ++w) accum[w] += block_partials_[w];
    stats_.bytes_streamed += stale * block * store_->row_bytes();
    kernel_.note_evaluations(stale * block);
    return;
  }

  ensure_dense(1);
  // Adaptive orientation: scatter whichever side is smaller. Ties go to the
  // block side, whose orientation parallelizes the (per-element independent)
  // stale dimension instead of needing a K-value scratch pass.
  if (block <= stale) {
    // Scatter each circulating block row once; stream all stale rows
    // against it. Outer j loop is serial, so accum[w]'s additions happen in
    // increasing j order via the partials buffer.
    block_partials_.assign(stale, 0.0);
    const auto last = static_cast<std::ptrdiff_t>(stale);
    for (std::size_t j = 0; j < block; ++j) {
      scatter(block_rows[j], 0, 1);
      stats_.scatter_builds += 1;
      const double coeff = block_coeffs[j];
      const double sq_block = block_sq_norms[j];
      const auto add_row = [&](std::size_t w) {
        const std::size_t g = base + rows[w];
        double d = 0.0;
        for (const svmdata::Feature& f : X_.row(g))
          d += f.value * dense_[static_cast<std::size_t>(f.index)];
        block_partials_[w] += coeff * kernel_.finish_from_dot(d, sq_block, sq_norm(g));
      };
      if (parallel) {
#pragma omp parallel for schedule(static)
        for (std::ptrdiff_t k = 0; k < last; ++k) add_row(static_cast<std::size_t>(k));
      } else {
        // No pragma on the sequential path: entering an OpenMP region with a
        // one-thread team is measurable overhead at ring-step granularity.
        for (std::size_t w = 0; w < stale; ++w) add_row(w);
      }
      unscatter(block_rows[j], 0, 1);
    }
    for (std::size_t w = 0; w < stale; ++w) {
      stats_.bytes_streamed += block * X_.row(base + rows[w]).size() * sizeof(svmdata::Feature);
      accum[w] += block_partials_[w];
    }
  } else {
    // Scatter each stale row once; stream the whole block against it —
    // exactly the streaming query-scope orientation, batched. Circulating
    // rows may be wider than this rank's matrix; features beyond cols cannot
    // intersect the scattered query (same exactness argument as query_row).
    std::uint64_t block_bytes = 0;
    for (std::size_t j = 0; j < block; ++j)
      block_bytes += block_rows[j].size() * sizeof(svmdata::Feature);
    const std::size_t cols = X_.cols();
    const auto last = static_cast<std::ptrdiff_t>(block);
    const auto dot_row = [&](std::size_t j) {
      double d = 0.0;
      for (const svmdata::Feature& f : block_rows[j]) {
        const auto idx = static_cast<std::size_t>(f.index);
        if (idx < cols) d += f.value * dense_[idx];
      }
      return d;
    };
    for (std::size_t w = 0; w < stale; ++w) {
      const std::size_t g = base + rows[w];
      const auto stale_row = X_.row(g);
      const double sq_stale = sq_norm(g);
      scatter(stale_row, 0, 1);
      stats_.scatter_builds += 1;
      stats_.bytes_streamed += block_bytes;
      double partial = 0.0;
      if (parallel) {
        // K values land in a scratch in parallel, then the coefficient
        // reduction walks them serially in increasing j order so the partial
        // matches the sequential loop bitwise.
        block_kvals_.resize(block);
#pragma omp parallel for schedule(static)
        for (std::ptrdiff_t k = 0; k < last; ++k) {
          const auto j = static_cast<std::size_t>(k);
          block_kvals_[j] = kernel_.finish_from_dot(dot_row(j), block_sq_norms[j], sq_stale);
        }
        for (std::size_t j = 0; j < block; ++j) partial += block_coeffs[j] * block_kvals_[j];
      } else {
        // Fused single pass, same accumulation order (and bit pattern) as
        // the scratch variant without its extra memory sweep.
        for (std::size_t j = 0; j < block; ++j)
          partial +=
              block_coeffs[j] * kernel_.finish_from_dot(dot_row(j), block_sq_norms[j], sq_stale);
      }
      unscatter(stale_row, 0, 1);
      accum[w] += partial;
    }
  }
  kernel_.note_evaluations(stale * block);
}

void KernelEngine::eval_block_rows(std::span<const std::span<const svmdata::Feature>> queries,
                                   std::span<const double> query_sq_norms,
                                   std::span<const double> coeffs, std::span<double> out,
                                   bool parallel) {
  svmobs::TraceSpan span("engine_predict_batch", "kernel");
  // Each query is exactly one accumulate_rows scope (bit-identical by
  // construction); batching here buys the serving batcher one engine call
  // per micro-batch and, under simd, one store sweep per query instead of a
  // per-support-vector scatter loop.
  for (std::size_t q = 0; q < queries.size(); ++q)
    out[q] = accumulate_rows(queries[q], query_sq_norms[q], coeffs, parallel);
}

void KernelEngine::begin_query(std::span<const svmdata::Feature> query, double sq_query) {
  query_ = query;
  query_sq_ = sq_query;
  query_active_ = true;
  if (backend_ != EngineBackend::reference) {
    ensure_dense(1);
    scatter(query, 0, 1);
    stats_.scatter_builds += 1;
  }
}

double KernelEngine::query_row(std::span<const svmdata::Feature> row, double sq_row) {
  stats_.single_evals += 1;
  stats_.bytes_streamed += row.size() * sizeof(svmdata::Feature);
  if (backend_ == EngineBackend::reference)
    return kernel_.eval(row, query_, sq_row, query_sq_);
  const std::size_t cols = X_.cols();
  double d = 0.0;
  // Streamed rows may come from other ranks (ring blocks) and exceed this
  // matrix's column count; such features cannot intersect the query, so
  // skipping them is exact.
  for (const svmdata::Feature& f : row) {
    const auto idx = static_cast<std::size_t>(f.index);
    if (idx < cols) d += f.value * dense_[idx];
  }
  kernel_.note_evaluations(1);
  return kernel_.finish_from_dot(d, sq_row, query_sq_);
}

void KernelEngine::end_query() {
  if (query_active_ && backend_ != EngineBackend::reference) unscatter(query_, 0, 1);
  query_ = {};
  query_active_ = false;
}

void KernelEngine::set_row_scale(std::span<const double> scale) {
  scale_.assign(scale.begin(), scale.end());
  if (cache_) cache_->clear();  // cached rows bake the scale in
}

void KernelEngine::fill_k_row(std::size_t i, std::size_t len, bool parallel, float* out) {
  const auto qrow = X_.row(i);
  const double sq_i = sq_norm(i);
  const bool scaled = !scale_.empty();
  const double s_i = scaled ? scale_[i] : 1.0;
  const auto last = static_cast<std::ptrdiff_t>(len);
  stats_.single_evals += len;
  for (std::size_t j = 0; j < len; ++j)
    stats_.bytes_streamed += X_.row(j).size() * sizeof(svmdata::Feature);

  if (backend_ == EngineBackend::reference) {
#pragma omp parallel for schedule(static) if (parallel)
    for (std::ptrdiff_t k = 0; k < last; ++k) {
      const auto j = static_cast<std::size_t>(k);
      const double kij = kernel_.eval(qrow, X_.row(j), sq_i, sq_norm(j));
      out[j] = static_cast<float>(scaled ? s_i * scale_[j] * kij : kij);
    }
    return;
  }

  ensure_dense(1);
  scatter(qrow, 0, 1);
  stats_.scatter_builds += 1;
#pragma omp parallel for schedule(static) if (parallel)
  for (std::ptrdiff_t k = 0; k < last; ++k) {
    const auto j = static_cast<std::size_t>(k);
    double d = 0.0;
    for (const svmdata::Feature& f : X_.row(j))
      d += f.value * dense_[static_cast<std::size_t>(f.index)];
    const double kij = kernel_.finish_from_dot(d, sq_i, sq_norm(j));
    out[j] = static_cast<float>(scaled ? s_i * scale_[j] * kij : kij);
  }
  kernel_.note_evaluations(len);
  unscatter(qrow, 0, 1);
}

std::span<const float> KernelEngine::k_row_floats(std::size_t i, std::size_t len,
                                                  bool parallel) {
  if (svmobs::trace_enabled() && ++k_row_calls_ % kCacheCounterStride == 0 && cache_)
    svmobs::trace_counter("kernel_cache_hit_rate", cache_->hit_rate());
  if (cache_) {
    const std::span<const float> hit = cache_->lookup(i);
    if (hit.size() >= len) return hit.first(len);
    row_scratch_.resize(len);
    fill_k_row(i, len, parallel, row_scratch_.data());
    cache_->insert(i, row_scratch_);
    return cache_->lookup(i).first(len);  // re-lookup pins the fresh row
  }
  row_scratch_.resize(len);
  fill_k_row(i, len, parallel, row_scratch_.data());
  return std::span<const float>(row_scratch_).first(len);
}

// --- simd backend helpers ---------------------------------------------------

void KernelEngine::fill_query_vec(std::vector<double>& buf,
                                  std::span<const svmdata::Feature> row) {
  const std::size_t cols = X_.cols();
  // Kept all-zero between uses (clear_query_vec), so resize only zero-fills
  // growth. Query features beyond the matrix's columns cannot intersect any
  // stored row; skipping them is exact (same argument as scatter()).
  if (buf.size() < cols) buf.resize(cols, 0.0);
  for (const svmdata::Feature& f : row) {
    const auto idx = static_cast<std::size_t>(f.index);
    if (idx < cols) buf[idx] = f.value;
  }
  stats_.scatter_builds += 1;
}

void KernelEngine::clear_query_vec(std::vector<double>& buf,
                                   std::span<const svmdata::Feature> row) {
  const std::size_t cols = X_.cols();
  for (const svmdata::Feature& f : row) {
    const auto idx = static_cast<std::size_t>(f.index);
    if (idx < cols) buf[idx] = 0.0;
  }
}

void KernelEngine::simd_pair_indexed(std::span<const std::uint32_t> rows, std::size_t base,
                                     double sq_up, double sq_low, std::span<double> out_up,
                                     std::span<double> out_low) {
  store_->prepare_query(qa_vec_, qb_vec_);
  constexpr std::size_t kP = RowStore::kPanel;
  std::size_t cur = static_cast<std::size_t>(-1);
  double oa[kP];
  double ob[kP];
  for (std::size_t k = 0; k < rows.size(); ++k) {
    const std::size_t local = base + rows[k] - norm_begin_;
    const std::size_t p = local / kP;
    if (p != cur) {
      store_->panel_dots(p, oa, ob);
      stats_.panel_dots += 1;
      cur = p;
    }
    const std::size_t lane = local % kP;
    const double sq = store_sq(local);
    out_up[k] = kernel_.finish_from_dot(oa[lane], sq_up, sq);
    out_low[k] = kernel_.finish_from_dot(ob[lane], sq_low, sq);
  }
}

void KernelEngine::simd_pair_range(std::size_t begin, std::size_t end, double sq_up,
                                   double sq_low, std::span<double> out_up,
                                   std::span<double> out_low, bool parallel) {
  store_->prepare_query(qa_vec_, qb_vec_);
  constexpr std::size_t kP = RowStore::kPanel;
  const std::size_t lo = begin - norm_begin_;
  const std::size_t hi = end - norm_begin_;
  const auto plo = static_cast<std::ptrdiff_t>(lo / kP);
  const auto phi = static_cast<std::ptrdiff_t>((hi + kP - 1) / kP);
  // Panels are independent given the prepared (read-only) query state, so
  // the panel loop parallelizes cleanly; per-thread stack outputs.
#pragma omp parallel for schedule(static) if (parallel)
  for (std::ptrdiff_t pp = plo; pp < phi; ++pp) {
    const auto p = static_cast<std::size_t>(pp);
    double oa[kP];
    double ob[kP];
    store_->panel_dots(p, oa, ob);
    const std::size_t first = std::max(lo, p * kP);
    const std::size_t last = std::min(hi, (p + 1) * kP);
    for (std::size_t local = first; local < last; ++local) {
      const std::size_t lane = local - p * kP;
      const double sq = store_sq(local);
      out_up[local - lo] = kernel_.finish_from_dot(oa[lane], sq_up, sq);
      out_low[local - lo] = kernel_.finish_from_dot(ob[lane], sq_low, sq);
    }
  }
  stats_.panel_dots += static_cast<std::uint64_t>(phi - plo);
}

void KernelEngine::simd_single_range(std::size_t begin, std::size_t end, double sq_query,
                                     std::span<double> out, bool parallel) {
  store_->prepare_query(qa_vec_);
  constexpr std::size_t kP = RowStore::kPanel;
  const std::size_t lo = begin - norm_begin_;
  const std::size_t hi = end - norm_begin_;
  const auto plo = static_cast<std::ptrdiff_t>(lo / kP);
  const auto phi = static_cast<std::ptrdiff_t>((hi + kP - 1) / kP);
#pragma omp parallel for schedule(static) if (parallel)
  for (std::ptrdiff_t pp = plo; pp < phi; ++pp) {
    const auto p = static_cast<std::size_t>(pp);
    double d[kP];
    store_->panel_dots(p, d);
    const std::size_t first = std::max(lo, p * kP);
    const std::size_t last = std::min(hi, (p + 1) * kP);
    for (std::size_t local = first; local < last; ++local)
      out[local - lo] = kernel_.finish_from_dot(d[local - p * kP], sq_query, store_sq(local));
  }
  stats_.panel_dots += static_cast<std::uint64_t>(phi - plo);
}

double KernelEngine::accumulate_rows(std::span<const svmdata::Feature> query,
                                     double sq_query, std::span<const double> coeffs,
                                     bool parallel) {
  svmobs::TraceSpan span("engine_row_batch", "kernel");
  const std::size_t n = coeffs.size();

  if (backend_ != EngineBackend::simd) {
    // The historical model-scoring loop, term by term: one streaming query
    // scope, rows ascending. query_row does the per-row stats/counters.
    (void)parallel;
    begin_query(query, sq_query);
    double sum = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      const std::size_t g = norm_begin_ + j;
      sum += coeffs[j] * query_row(X_.row(g), sq_norm(g));
    }
    end_query();
    return sum;
  }

  // Panel sweep with an ordered (ascending-row) coefficient reduction: same
  // per-term operations and order as the scalar loop above, so f64 stays
  // bit-identical. The reduction order requirement rules out parallelism.
  (void)parallel;
  stats_.single_evals += n;
  stats_.bytes_streamed += n * store_->row_bytes();
  constexpr std::size_t kP = RowStore::kPanel;
  fill_query_vec(qa_vec_, query);
  store_->prepare_query(qa_vec_);
  double sum = 0.0;
  double d[kP];
  const std::size_t panels = (n + kP - 1) / kP;
  for (std::size_t p = 0; p < panels; ++p) {
    store_->panel_dots(p, d);
    const std::size_t lim = std::min(n - p * kP, kP);
    for (std::size_t l = 0; l < lim; ++l) {
      const std::size_t j = p * kP + l;
      sum += coeffs[j] * kernel_.finish_from_dot(d[l], sq_query, store_sq(j));
    }
  }
  stats_.panel_dots += panels;
  kernel_.note_evaluations(n);
  clear_query_vec(qa_vec_, query);
  return sum;
}

}  // namespace svmkernel
