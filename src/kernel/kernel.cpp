#include "kernel/kernel.hpp"

namespace svmkernel {

std::string to_string(KernelType type) {
  switch (type) {
    case KernelType::rbf: return "rbf";
    case KernelType::linear: return "linear";
    case KernelType::polynomial: return "polynomial";
    case KernelType::sigmoid: return "sigmoid";
  }
  return "?";
}

KernelType kernel_type_from_string(const std::string& name) {
  if (name == "rbf" || name == "gaussian") return KernelType::rbf;
  if (name == "linear") return KernelType::linear;
  if (name == "polynomial" || name == "poly") return KernelType::polynomial;
  if (name == "sigmoid") return KernelType::sigmoid;
  throw std::invalid_argument("unknown kernel type: " + name +
                              " (expected rbf|linear|polynomial|sigmoid)");
}

}  // namespace svmkernel
