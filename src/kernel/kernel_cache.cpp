#include "kernel/kernel_cache.hpp"

#include <algorithm>
#include <cmath>

namespace svmkernel {

std::size_t KernelRowCache::entry_bytes(std::size_t len) const noexcept {
  switch (flavor_) {
    case RowFlavor::f64:
    case RowFlavor::f32: return len * sizeof(float);
    case RowFlavor::f16: return len * sizeof(std::uint16_t);
    case RowFlavor::i8: return len * sizeof(std::int8_t) + sizeof(float);  // + scale
  }
  return len * sizeof(float);
}

std::span<const float> KernelRowCache::decode(const Entry& e) {
  switch (flavor_) {
    case RowFlavor::f64:
    case RowFlavor::f32: return e.f32;
    case RowFlavor::f16: {
      scratch_.resize(e.len);
      for (std::size_t j = 0; j < e.len; ++j) scratch_[j] = simd::half_to_float(e.f16[j]);
      return scratch_;
    }
    case RowFlavor::i8: {
      scratch_.resize(e.len);
      for (std::size_t j = 0; j < e.len; ++j)
        scratch_[j] = e.i8_scale * static_cast<float>(e.i8[j]);
      return scratch_;
    }
  }
  return {};
}

std::span<const float> KernelRowCache::lookup(std::size_t index) {
  pinned_ = kNoPin;  // a new lookup releases the previous pin
  const auto it = map_.find(index);
  if (it == map_.end()) {
    ++misses_;
    return {};
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);  // bump to most recent
  pinned_ = index;
  return decode(*it->second);
}

void KernelRowCache::insert(std::size_t index, std::span<const float> row) {
  const auto existing = map_.find(index);
  if (existing != map_.end()) {
    bytes_used_ -= entry_bytes(existing->second->len);
    if (pinned_ == index) pinned_ = kNoPin;  // caller overwrote its own pinned row
    lru_.erase(existing->second);
    map_.erase(existing);
  }
  const std::size_t row_bytes = entry_bytes(row.size());
  // Evict from the LRU tail, skipping the pinned entry: the span returned by
  // the last lookup() must stay valid until the next lookup().
  auto victim = lru_.end();
  while (victim != lru_.begin() && bytes_used_ + row_bytes > budget_bytes_) {
    --victim;
    if (victim->index == pinned_) continue;
    bytes_used_ -= entry_bytes(victim->len);
    map_.erase(victim->index);
    victim = lru_.erase(victim);
  }
  Entry e;
  e.index = index;
  e.len = row.size();
  switch (flavor_) {
    case RowFlavor::f64:
    case RowFlavor::f32: e.f32.assign(row.begin(), row.end()); break;
    case RowFlavor::f16: {
      e.f16.resize(row.size());
      for (std::size_t j = 0; j < row.size(); ++j) e.f16[j] = simd::float_to_half(row[j]);
      break;
    }
    case RowFlavor::i8: {
      // Q rows are kernel values (bounded, dense-ish); symmetric scaling
      // keeps exact zeros exact and needs no offset term on decode.
      float amax = 0.0f;
      for (const float v : row) amax = std::max(amax, std::abs(v));
      e.i8_scale = amax / 127.0f;
      e.i8.resize(row.size());
      if (e.i8_scale == 0.0f) {
        std::fill(e.i8.begin(), e.i8.end(), std::int8_t{0});
      } else {
        for (std::size_t j = 0; j < row.size(); ++j) {
          long code = std::lround(row[j] / e.i8_scale);
          e.i8[j] = static_cast<std::int8_t>(std::clamp(code, long{-127}, long{127}));
        }
      }
      break;
    }
  }
  lru_.push_front(std::move(e));
  map_[index] = lru_.begin();
  bytes_used_ += row_bytes;
}

void KernelRowCache::clear() {
  lru_.clear();
  map_.clear();
  bytes_used_ = 0;
  pinned_ = kNoPin;
}

}  // namespace svmkernel
