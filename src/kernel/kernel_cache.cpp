#include "kernel/kernel_cache.hpp"

namespace svmkernel {

std::span<const float> KernelRowCache::lookup(std::size_t index) {
  const auto it = map_.find(index);
  if (it == map_.end()) {
    ++misses_;
    return {};
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);  // bump to most recent
  return it->second->row;
}

void KernelRowCache::insert(std::size_t index, std::span<const float> row) {
  const auto existing = map_.find(index);
  if (existing != map_.end()) {
    bytes_used_ -= existing->second->row.size() * sizeof(float);
    lru_.erase(existing->second);
    map_.erase(existing);
  }
  const std::size_t row_bytes = row.size() * sizeof(float);
  while (!lru_.empty() && bytes_used_ + row_bytes > budget_bytes_) {
    const Entry& victim = lru_.back();
    bytes_used_ -= victim.row.size() * sizeof(float);
    map_.erase(victim.index);
    lru_.pop_back();
  }
  lru_.push_front(Entry{index, std::vector<float>(row.begin(), row.end())});
  map_[index] = lru_.begin();
  bytes_used_ += row_bytes;
}

void KernelRowCache::clear() {
  lru_.clear();
  map_.clear();
  bytes_used_ = 0;
}

}  // namespace svmkernel
