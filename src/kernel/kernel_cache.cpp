#include "kernel/kernel_cache.hpp"

namespace svmkernel {

std::span<const float> KernelRowCache::lookup(std::size_t index) {
  pinned_ = kNoPin;  // a new lookup releases the previous pin
  const auto it = map_.find(index);
  if (it == map_.end()) {
    ++misses_;
    return {};
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);  // bump to most recent
  pinned_ = index;
  return it->second->row;
}

void KernelRowCache::insert(std::size_t index, std::span<const float> row) {
  const auto existing = map_.find(index);
  if (existing != map_.end()) {
    bytes_used_ -= existing->second->row.size() * sizeof(float);
    if (pinned_ == index) pinned_ = kNoPin;  // caller overwrote its own pinned row
    lru_.erase(existing->second);
    map_.erase(existing);
  }
  const std::size_t row_bytes = row.size() * sizeof(float);
  // Evict from the LRU tail, skipping the pinned entry: the span returned by
  // the last lookup() must stay valid until the next lookup().
  auto victim = lru_.end();
  while (victim != lru_.begin() && bytes_used_ + row_bytes > budget_bytes_) {
    --victim;
    if (victim->index == pinned_) continue;
    bytes_used_ -= victim->row.size() * sizeof(float);
    map_.erase(victim->index);
    victim = lru_.erase(victim);
  }
  lru_.push_front(Entry{index, std::vector<float>(row.begin(), row.end())});
  map_[index] = lru_.begin();
  bytes_used_ += row_bytes;
}

void KernelRowCache::clear() {
  lru_.clear();
  map_.clear();
  bytes_used_ = 0;
  pinned_ = kNoPin;
}

}  // namespace svmkernel
