// Kernel functions over CSR rows. The paper's evaluation uses the Gaussian
// kernel exp(-gamma * ||x - y||^2) with gamma = 1/sigma^2 (Table III reports
// sigma^2); the infrastructure "allows plugging in other kernels" (§V-C), so
// linear, polynomial and sigmoid are provided too. Evaluation goes through a
// dispatch on an enum rather than virtual calls — kernel evaluation is the
// innermost hot loop, and the switch is branch-predicted perfectly.
//
// Every evaluation increments a per-Kernel counter; per-rank kernel-eval
// counts are the work metric the scaling benches report (Table I's lambda).
#pragma once

#include <atomic>
#include <cmath>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>

#include "data/sparse.hpp"

namespace svmkernel {

enum class KernelType { rbf, linear, polynomial, sigmoid };

[[nodiscard]] std::string to_string(KernelType type);
[[nodiscard]] KernelType kernel_type_from_string(const std::string& name);

struct KernelParams {
  KernelType type = KernelType::rbf;
  double gamma = 1.0;   ///< rbf: exp(-gamma*||x-y||^2); poly/sigmoid: gamma*<x,y>
  double coef0 = 0.0;   ///< poly/sigmoid additive constant
  int degree = 3;       ///< polynomial degree

  /// Gaussian kernel parameterized the way the paper reports it.
  [[nodiscard]] static KernelParams rbf_with_sigma_sq(double sigma_sq) {
    return KernelParams{KernelType::rbf, 1.0 / sigma_sq, 0.0, 3};
  }
};

/// Stateless evaluator bound to KernelParams, with an evaluation counter.
/// For RBF, callers pass precomputed row squared norms (Dataset-level
/// `row_squared_norms()`), turning each evaluation into one sparse dot.
class Kernel {
 public:
  explicit Kernel(KernelParams params) : params_(params) {
    if (params.type == KernelType::rbf && params.gamma <= 0.0)
      throw std::invalid_argument("Kernel: rbf gamma must be positive");
  }

  [[nodiscard]] const KernelParams& params() const noexcept { return params_; }

  /// K(a, b). `sq_a`/`sq_b` are ||a||^2, ||b||^2 (ignored except for rbf).
  [[nodiscard]] double eval(std::span<const svmdata::Feature> a,
                            std::span<const svmdata::Feature> b, double sq_a,
                            double sq_b) const noexcept {
    evaluations_.fetch_add(1, std::memory_order_relaxed);
    return finish_from_dot(svmdata::CsrMatrix::dot(a, b), sq_a, sq_b);
  }

  /// The kernel-specific finish applied to an already-computed dot product.
  /// Every evaluation path (eval(), KernelEngine backends) funnels through
  /// this one function, so results are bitwise identical regardless of how
  /// the dot was produced. Does NOT bump the evaluation counter.
  [[nodiscard]] double finish_from_dot(double dot, double sq_a, double sq_b) const noexcept {
    switch (params_.type) {
      case KernelType::rbf: {
        double dist = sq_a + sq_b - 2.0 * dot;
        if (dist < 0.0) dist = 0.0;
        return std::exp(-params_.gamma * dist);
      }
      case KernelType::linear: return dot;
      case KernelType::polynomial: return pow_int(params_.gamma * dot + params_.coef0,
                                                  params_.degree);
      case KernelType::sigmoid: return std::tanh(params_.gamma * dot + params_.coef0);
    }
    return 0.0;  // unreachable
  }

  /// Credits `n` evaluations to the counter; batched paths that bypass
  /// eval() call this so the work metric stays comparable across backends.
  void note_evaluations(std::uint64_t n) const noexcept {
    evaluations_.fetch_add(n, std::memory_order_relaxed);
  }

  /// Number of kernel evaluations since construction or reset. Atomic so
  /// OpenMP row batches can share one Kernel; eval() stays const because
  /// counting is not logical state.
  [[nodiscard]] std::uint64_t evaluations() const noexcept {
    return evaluations_.load(std::memory_order_relaxed);
  }
  void reset_evaluations() noexcept { evaluations_.store(0, std::memory_order_relaxed); }

  Kernel(const Kernel& other) : params_(other.params_), evaluations_(other.evaluations()) {}
  Kernel& operator=(const Kernel& other) {
    params_ = other.params_;
    evaluations_.store(other.evaluations(), std::memory_order_relaxed);
    return *this;
  }

 private:
  [[nodiscard]] static double pow_int(double base, int exponent) noexcept {
    double result = 1.0;
    for (int i = 0; i < exponent; ++i) result *= base;
    return result;
  }

  KernelParams params_;
  mutable std::atomic<std::uint64_t> evaluations_{0};
};

}  // namespace svmkernel
