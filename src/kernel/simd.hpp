// Runtime-dispatched SIMD panel kernels for the RowStore dense row flavors.
//
// Layout contract: a *panel* is kPanel (=8) matrix rows stored interleaved,
// column-major within the panel — element (row r, column j) of panel `p`
// lives at panel_base[j * kPanel + r]. Every kernel computes, for one dense
// query q (length `cols`), the eight dot products
//
//   out[r] = sum_{j=0}^{cols-1} q[j] * panel[j*8 + r]      (r = 0..7)
//
// with ONE sequential accumulator per lane, j ascending. That accumulation
// order is the whole point: lane r's sum is exactly the scalar loop
// `for j: acc += q[j] * x_r[j]`, so the f64 kernels are BIT-IDENTICAL to the
// KernelEngine dense-scatter pass (and therefore to the reference sparse
// merge join — see kernel_engine.hpp for the signed-zero identity argument).
// SIMD parallelism is across the eight rows of the panel, never inside a
// single dot, and both implementations use separate multiply and add (no
// FMA contraction), so the AVX2 and portable paths produce the same bits
// for every flavor.
//
// The dot2 variants evaluate two queries against the panel in one traversal
// (the fused up/low gamma-update shape).
//
// Dispatch: ops() returns the AVX2 implementation when the CPU supports it
// (checked once), else the portable 8-wide unrolled fallback. Tests compare
// the two tables directly; set_force_portable() lets benches measure both.
#pragma once

#include <cstddef>
#include <cstdint>

namespace svmkernel::simd {

inline constexpr std::size_t kPanel = 8;

struct Ops {
  const char* name;  ///< "avx2" or "portable8"
  void (*dot_f64)(const double* q, const double* panel, std::size_t cols, double* out);
  void (*dot2_f64)(const double* qa, const double* qb, const double* panel, std::size_t cols,
                   double* out_a, double* out_b);
  void (*dot_f32)(const float* q, const float* panel, std::size_t cols, float* out);
  void (*dot2_f32)(const float* qa, const float* qb, const float* panel, std::size_t cols,
                   float* out_a, float* out_b);
  void (*dot_f16)(const float* q, const std::uint16_t* panel, std::size_t cols, float* out);
  void (*dot2_f16)(const float* qa, const float* qb, const std::uint16_t* panel,
                   std::size_t cols, float* out_a, float* out_b);
  void (*dot_i8)(const float* q, const std::int8_t* panel, std::size_t cols, float* out);
  void (*dot2_i8)(const float* qa, const float* qb, const std::int8_t* panel, std::size_t cols,
                  float* out_a, float* out_b);
};

/// Best implementation for this machine (AVX2+F16C when available).
[[nodiscard]] const Ops& ops() noexcept;

/// The portable 8-wide unrolled fallback, always available.
[[nodiscard]] const Ops& portable_ops() noexcept;

[[nodiscard]] bool avx2_available() noexcept;

/// Forces ops() to return the portable table (benches A/B the two paths).
void set_force_portable(bool force) noexcept;

// --- IEEE 754 binary16 conversions (round-to-nearest-even) ----------------
// The software encode/decode here and the F16C vcvtph2ps used by the AVX2
// kernels implement the same rounding, so stored f16 rows decode to the same
// floats on both paths.

[[nodiscard]] std::uint16_t float_to_half(float value) noexcept;
[[nodiscard]] float half_to_float(std::uint16_t half) noexcept;

}  // namespace svmkernel::simd
