// Precision-flavored dense row storage for the SIMD kernel backend.
//
// A RowStore materializes a contiguous range of CSR rows as dense panels of
// simd::kPanel (=8) rows in one of four element flavors:
//
//   f64  8 B/elem  bit-exact: panel sums reproduce the scalar dense pass
//   f32  4 B/elem  rows rounded to binary32 (RNE)
//   f16  2 B/elem  rows rounded to binary16 (RNE), decoded exactly on eval
//   i8   1 B/elem  per-row affine quantization: value ~ offset + scale*code
//
// Panel layout is lane-per-row (element (r, j) of a panel at base[j*8 + r]),
// so one SIMD sweep over columns advances eight row dots at once while each
// lane remains ONE sequential accumulation over ascending j — the property
// the f64 bit-identity argument rests on (see simd.hpp and the signed-zero
// identity note in kernel_engine.hpp; the extra q[j]*0.0 terms the dense
// sweep adds are bitwise identities for every case the solvers exercise).
//
// i8 quantization policy: rows with implicit zeros use SYMMETRIC scaling
// (offset = 0, scale = max|v|/127) so missing features decode to exactly
// 0.0; only fully-dense rows use the affine midrange form. Per-row squared
// norms are recomputed from the DECODED values, so RBF distances are
// consistent with the quantized dots.
//
// Reduced-precision flavors are approximate by design and are accuracy-gated
// at the prediction layer (tests + bench_precision); training solvers refuse
// them. The f64 flavor is exact for every backend path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "data/sparse.hpp"
#include "kernel/simd.hpp"

namespace svmkernel {

enum class RowFlavor : std::uint8_t { f64, f32, f16, i8 };

[[nodiscard]] std::string to_string(RowFlavor flavor);
/// Accepts "f64"/"double", "f32"/"float", "f16"/"half", "i8"/"int8".
/// Throws std::invalid_argument naming the unknown flavor otherwise.
[[nodiscard]] RowFlavor row_flavor_from_string(const std::string& name);
/// Bytes per stored element (8/4/2/1).
[[nodiscard]] std::size_t flavor_element_bytes(RowFlavor flavor) noexcept;
/// Stable string literal for trace metadata (trace_instant keeps pointers).
[[nodiscard]] const char* trace_label(RowFlavor flavor) noexcept;

class RowStore {
 public:
  static constexpr std::size_t kPanel = simd::kPanel;

  /// Materializes rows [row_begin, row_end) of X. Throws std::invalid_argument
  /// if the dense footprint would exceed ~3 GiB (pathologically wide sparse
  /// data — use the dense_scatter or cached backend there).
  RowStore(const svmdata::CsrMatrix& X, std::size_t row_begin, std::size_t row_end,
           RowFlavor flavor);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t panels() const noexcept { return panels_; }
  [[nodiscard]] RowFlavor flavor() const noexcept { return flavor_; }
  [[nodiscard]] const char* ops_name() const noexcept { return ops_->name; }

  /// Encoded panel payload plus per-row quantization parameters, the bytes
  /// the flavored store actually keeps resident (norms excluded; every
  /// backend carries those).
  [[nodiscard]] std::size_t bytes_resident() const noexcept { return bytes_resident_; }
  /// Bytes one row's worth of panel data occupies (streaming-stats unit).
  [[nodiscard]] std::size_t row_bytes() const noexcept {
    return cols_ * flavor_element_bytes(flavor_);
  }

  /// Squared norm of the DECODED local row (equals the CSR norm for f64).
  [[nodiscard]] double sq_norm(std::size_t local_row) const { return sq_norms_[local_row]; }
  [[nodiscard]] std::span<const double> sq_norms() const noexcept { return sq_norms_; }

  /// Opens a query scope: densifies derived query state (f32 copies, column
  /// sums for i8). The spans must outlive subsequent panel_dots calls; the
  /// store is single-owner like KernelEngine, so the usual engine query
  /// discipline applies. `qb` may be empty for single-query scopes.
  void prepare_query(std::span<const double> qa, std::span<const double> qb = {});

  /// Writes the prepared query's dot against each of panel `p`'s eight rows
  /// into out_a[0..8) (and the second query's into out_b when non-null,
  /// which requires prepare_query to have been given `qb`). Lanes beyond
  /// rows() hold zeros from padding. Thread-safe: only reads prepared state.
  void panel_dots(std::size_t p, double* out_a, double* out_b = nullptr) const;

 private:
  void encode(const svmdata::CsrMatrix& X, std::size_t row_begin);

  RowFlavor flavor_;
  const simd::Ops* ops_;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t panels_ = 0;
  std::size_t bytes_resident_ = 0;

  // Exactly one of these holds the panels, by flavor.
  std::vector<double> data_f64_;
  std::vector<float> data_f32_;
  std::vector<std::uint16_t> data_f16_;
  std::vector<std::int8_t> data_i8_;
  std::vector<float> i8_scale_;   ///< per padded row; 0 for padding lanes
  std::vector<float> i8_offset_;  ///< nonzero only for fully-dense rows

  std::vector<double> sq_norms_;  ///< decoded-row norms, size rows()

  // Prepared-query state (written by prepare_query, read by panel_dots).
  std::span<const double> qa64_;
  std::span<const double> qb64_;
  std::vector<float> qa32_;
  std::vector<float> qb32_;
  double qa_sum_ = 0.0;  ///< sum_j qa[j], the i8 offset correction term
  double qb_sum_ = 0.0;
  bool have_qb_ = false;
};

}  // namespace svmkernel
