// Batched kernel-row evaluation: K(q, i) for all rows i of a dataset, with
// optional OpenMP parallelism. This is the "enhanced libsvm" hot path — the
// paper parallelizes libsvm's kernel-row computation across cores — and is
// also used by the distributed solvers' gradient update loop.
#pragma once

#include <span>
#include <vector>

#include "data/sparse.hpp"
#include "kernel/kernel.hpp"

namespace svmkernel {

/// Computes out[i] = K(query, X.row(i)) for i in [begin, end).
/// `sq_norms[i]` must be the squared norm of X.row(i), and `sq_query` that of
/// the query row. `parallel` enables OpenMP over the rows.
void eval_rows(const Kernel& kernel, const svmdata::CsrMatrix& X,
               std::span<const double> sq_norms, std::span<const svmdata::Feature> query,
               double sq_query, std::size_t begin, std::size_t end, std::span<double> out,
               bool parallel = false);

/// Convenience allocation form over all rows.
[[nodiscard]] std::vector<double> eval_all_rows(const Kernel& kernel,
                                                const svmdata::CsrMatrix& X,
                                                std::span<const double> sq_norms,
                                                std::span<const svmdata::Feature> query,
                                                double sq_query, bool parallel = false);

}  // namespace svmkernel
