#include "kernel/simd.hpp"

#include <atomic>
#include <cstring>

#if defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>
#define SVMSIMD_X86 1
#else
#define SVMSIMD_X86 0
#endif

namespace svmkernel::simd {
namespace {

// ---------------------------------------------------------------------------
// Portable 8-wide fallback. One scalar accumulator per panel lane; the inner
// 8-way loop is trivially auto-vectorizable at the baseline ISA but the
// result is ISA-independent: per-lane sums are plain sequential mul+add over
// ascending j. (Baseline x86-64 has no FMA instruction, and the AVX2 path
// below deliberately uses separate mul/add intrinsics, so neither path ever
// contracts a*b+c — the lane sums agree bitwise.)
// ---------------------------------------------------------------------------

template <typename Acc, typename Q, typename Row>
inline void portable_dot(const Q* q, const Row* panel, std::size_t cols, Acc* out) {
  Acc acc[kPanel] = {};
  for (std::size_t j = 0; j < cols; ++j) {
    const Acc qv = static_cast<Acc>(q[j]);
    const Row* x = panel + j * kPanel;
    for (std::size_t l = 0; l < kPanel; ++l) acc[l] += qv * static_cast<Acc>(x[l]);
  }
  for (std::size_t l = 0; l < kPanel; ++l) out[l] = acc[l];
}

template <typename Acc, typename Q, typename Row>
inline void portable_dot2(const Q* qa, const Q* qb, const Row* panel, std::size_t cols,
                          Acc* out_a, Acc* out_b) {
  Acc acc_a[kPanel] = {};
  Acc acc_b[kPanel] = {};
  for (std::size_t j = 0; j < cols; ++j) {
    const Acc va = static_cast<Acc>(qa[j]);
    const Acc vb = static_cast<Acc>(qb[j]);
    const Row* x = panel + j * kPanel;
    for (std::size_t l = 0; l < kPanel; ++l) {
      const Acc xv = static_cast<Acc>(x[l]);
      acc_a[l] += va * xv;
      acc_b[l] += vb * xv;
    }
  }
  for (std::size_t l = 0; l < kPanel; ++l) {
    out_a[l] = acc_a[l];
    out_b[l] = acc_b[l];
  }
}

// ---------------------------------------------------------------------------
// Reduced-precision kernels (f32/f16/i8) use FOUR column-interleaved float
// accumulator chains per lane: chain k gathers columns with j % 4 == k (tail
// columns land on chain 0), combined at the end as (a0 + a1) + (a2 + a3).
// One chain per lane would serialize on add latency for wide rows (~4 cycles
// per column regardless of vector width); four chains pipeline it away. The
// AVX2 kernels below replicate this exact association, so portable and AVX2
// remain bitwise-identical per lane. The f64 kernels above deliberately keep
// ONE strictly sequential chain — that order is what the scalar engine paths
// compute, and f64 bit-identity with them is contractual.
// ---------------------------------------------------------------------------

// `decode` maps a stored element to the float the multiply sees: identity
// for f32, exact int8 widening for i8, half_to_float for f16.
template <typename Row, typename Decode>
inline void portable_dot4(const float* q, const Row* panel, std::size_t cols, float* out,
                          Decode decode) {
  float acc[4][kPanel] = {};
  std::size_t j = 0;
  for (; j + 4 <= cols; j += 4) {
    for (std::size_t k = 0; k < 4; ++k) {
      const float qv = q[j + k];
      const Row* x = panel + (j + k) * kPanel;
      for (std::size_t l = 0; l < kPanel; ++l) acc[k][l] += qv * decode(x[l]);
    }
  }
  for (; j < cols; ++j) {
    const float qv = q[j];
    const Row* x = panel + j * kPanel;
    for (std::size_t l = 0; l < kPanel; ++l) acc[0][l] += qv * decode(x[l]);
  }
  for (std::size_t l = 0; l < kPanel; ++l)
    out[l] = (acc[0][l] + acc[1][l]) + (acc[2][l] + acc[3][l]);
}

template <typename Row, typename Decode>
inline void portable_dot4_2(const float* qa, const float* qb, const Row* panel,
                            std::size_t cols, float* out_a, float* out_b, Decode decode) {
  float acc_a[4][kPanel] = {};
  float acc_b[4][kPanel] = {};
  std::size_t j = 0;
  for (; j + 4 <= cols; j += 4) {
    for (std::size_t k = 0; k < 4; ++k) {
      const float va = qa[j + k];
      const float vb = qb[j + k];
      const Row* x = panel + (j + k) * kPanel;
      for (std::size_t l = 0; l < kPanel; ++l) {
        const float xv = decode(x[l]);
        acc_a[k][l] += va * xv;
        acc_b[k][l] += vb * xv;
      }
    }
  }
  for (; j < cols; ++j) {
    const float va = qa[j];
    const float vb = qb[j];
    const Row* x = panel + j * kPanel;
    for (std::size_t l = 0; l < kPanel; ++l) {
      const float xv = decode(x[l]);
      acc_a[0][l] += va * xv;
      acc_b[0][l] += vb * xv;
    }
  }
  for (std::size_t l = 0; l < kPanel; ++l) {
    out_a[l] = (acc_a[0][l] + acc_a[1][l]) + (acc_a[2][l] + acc_a[3][l]);
    out_b[l] = (acc_b[0][l] + acc_b[1][l]) + (acc_b[2][l] + acc_b[3][l]);
  }
}

inline float decode_f32(float v) { return v; }
inline float decode_i8(std::int8_t v) { return static_cast<float>(v); }
inline float decode_f16(std::uint16_t v) { return half_to_float(v); }

void p_dot_f64(const double* q, const double* panel, std::size_t cols, double* out) {
  portable_dot<double>(q, panel, cols, out);
}
void p_dot2_f64(const double* qa, const double* qb, const double* panel, std::size_t cols,
                double* oa, double* ob) {
  portable_dot2<double>(qa, qb, panel, cols, oa, ob);
}
void p_dot_f32(const float* q, const float* panel, std::size_t cols, float* out) {
  portable_dot4(q, panel, cols, out, decode_f32);
}
void p_dot2_f32(const float* qa, const float* qb, const float* panel, std::size_t cols,
                float* oa, float* ob) {
  portable_dot4_2(qa, qb, panel, cols, oa, ob, decode_f32);
}
void p_dot_f16(const float* q, const std::uint16_t* panel, std::size_t cols, float* out) {
  portable_dot4(q, panel, cols, out, decode_f16);
}
void p_dot2_f16(const float* qa, const float* qb, const std::uint16_t* panel,
                std::size_t cols, float* oa, float* ob) {
  portable_dot4_2(qa, qb, panel, cols, oa, ob, decode_f16);
}
void p_dot_i8(const float* q, const std::int8_t* panel, std::size_t cols, float* out) {
  portable_dot4(q, panel, cols, out, decode_i8);
}
void p_dot2_i8(const float* qa, const float* qb, const std::int8_t* panel, std::size_t cols,
               float* oa, float* ob) {
  portable_dot4_2(qa, qb, panel, cols, oa, ob, decode_i8);
}

constexpr Ops kPortable = {
    "portable8",     p_dot_f64, p_dot2_f64,        p_dot_f32, p_dot2_f32,
    p_dot_f16, p_dot2_f16, p_dot_i8, p_dot2_i8,
};

#if SVMSIMD_X86

// ---------------------------------------------------------------------------
// AVX2 kernels. Compiled with per-function target attributes so the rest of
// the TU (and the whole build) stays at the baseline ISA; the dispatcher
// only takes these branches after __builtin_cpu_supports says so.
//
// Each kernel does broadcast(q[j]) * panel_column(j) with SEPARATE
// _mm256_mul_* and _mm256_add_* — never fmadd — so every lane reproduces
// the portable path's mul-then-round-then-add-then-round sequence exactly.
// f64 keeps one sequential chain per lane (two registers, lane-split) to
// match the scalar engines bit-for-bit; f32/f16/i8 use the same four
// column-interleaved chains as portable_dot4 above.
// ---------------------------------------------------------------------------

[[gnu::target("avx2")]]
void avx2_dot_f64(const double* q, const double* panel, std::size_t cols, double* out) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  for (std::size_t j = 0; j < cols; ++j) {
    const __m256d qv = _mm256_set1_pd(q[j]);
    const double* x = panel + j * kPanel;
    acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(qv, _mm256_loadu_pd(x)));
    acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(qv, _mm256_loadu_pd(x + 4)));
  }
  _mm256_storeu_pd(out, acc0);
  _mm256_storeu_pd(out + 4, acc1);
}

[[gnu::target("avx2")]]
void avx2_dot2_f64(const double* qa, const double* qb, const double* panel, std::size_t cols,
                   double* out_a, double* out_b) {
  __m256d a0 = _mm256_setzero_pd();
  __m256d a1 = _mm256_setzero_pd();
  __m256d b0 = _mm256_setzero_pd();
  __m256d b1 = _mm256_setzero_pd();
  for (std::size_t j = 0; j < cols; ++j) {
    const __m256d va = _mm256_set1_pd(qa[j]);
    const __m256d vb = _mm256_set1_pd(qb[j]);
    const double* x = panel + j * kPanel;
    const __m256d x0 = _mm256_loadu_pd(x);
    const __m256d x1 = _mm256_loadu_pd(x + 4);
    a0 = _mm256_add_pd(a0, _mm256_mul_pd(va, x0));
    a1 = _mm256_add_pd(a1, _mm256_mul_pd(va, x1));
    b0 = _mm256_add_pd(b0, _mm256_mul_pd(vb, x0));
    b1 = _mm256_add_pd(b1, _mm256_mul_pd(vb, x1));
  }
  _mm256_storeu_pd(out_a, a0);
  _mm256_storeu_pd(out_a + 4, a1);
  _mm256_storeu_pd(out_b, b0);
  _mm256_storeu_pd(out_b + 4, b1);
}

[[gnu::target("avx2")]]
void avx2_dot_f32(const float* q, const float* panel, std::size_t cols, float* out) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  __m256 acc2 = _mm256_setzero_ps();
  __m256 acc3 = _mm256_setzero_ps();
  std::size_t j = 0;
  for (; j + 4 <= cols; j += 4) {
    const float* x = panel + j * kPanel;
    acc0 = _mm256_add_ps(acc0, _mm256_mul_ps(_mm256_set1_ps(q[j]), _mm256_loadu_ps(x)));
    acc1 = _mm256_add_ps(acc1,
                         _mm256_mul_ps(_mm256_set1_ps(q[j + 1]), _mm256_loadu_ps(x + kPanel)));
    acc2 = _mm256_add_ps(
        acc2, _mm256_mul_ps(_mm256_set1_ps(q[j + 2]), _mm256_loadu_ps(x + 2 * kPanel)));
    acc3 = _mm256_add_ps(
        acc3, _mm256_mul_ps(_mm256_set1_ps(q[j + 3]), _mm256_loadu_ps(x + 3 * kPanel)));
  }
  for (; j < cols; ++j) {
    acc0 = _mm256_add_ps(
        acc0, _mm256_mul_ps(_mm256_set1_ps(q[j]), _mm256_loadu_ps(panel + j * kPanel)));
  }
  _mm256_storeu_ps(out, _mm256_add_ps(_mm256_add_ps(acc0, acc1), _mm256_add_ps(acc2, acc3)));
}

[[gnu::target("avx2")]]
void avx2_dot2_f32(const float* qa, const float* qb, const float* panel, std::size_t cols,
                   float* out_a, float* out_b) {
  __m256 a0 = _mm256_setzero_ps(), a1 = _mm256_setzero_ps();
  __m256 a2 = _mm256_setzero_ps(), a3 = _mm256_setzero_ps();
  __m256 b0 = _mm256_setzero_ps(), b1 = _mm256_setzero_ps();
  __m256 b2 = _mm256_setzero_ps(), b3 = _mm256_setzero_ps();
  std::size_t j = 0;
  for (; j + 4 <= cols; j += 4) {
    const float* p = panel + j * kPanel;
    const __m256 x0 = _mm256_loadu_ps(p);
    const __m256 x1 = _mm256_loadu_ps(p + kPanel);
    const __m256 x2 = _mm256_loadu_ps(p + 2 * kPanel);
    const __m256 x3 = _mm256_loadu_ps(p + 3 * kPanel);
    a0 = _mm256_add_ps(a0, _mm256_mul_ps(_mm256_set1_ps(qa[j]), x0));
    a1 = _mm256_add_ps(a1, _mm256_mul_ps(_mm256_set1_ps(qa[j + 1]), x1));
    a2 = _mm256_add_ps(a2, _mm256_mul_ps(_mm256_set1_ps(qa[j + 2]), x2));
    a3 = _mm256_add_ps(a3, _mm256_mul_ps(_mm256_set1_ps(qa[j + 3]), x3));
    b0 = _mm256_add_ps(b0, _mm256_mul_ps(_mm256_set1_ps(qb[j]), x0));
    b1 = _mm256_add_ps(b1, _mm256_mul_ps(_mm256_set1_ps(qb[j + 1]), x1));
    b2 = _mm256_add_ps(b2, _mm256_mul_ps(_mm256_set1_ps(qb[j + 2]), x2));
    b3 = _mm256_add_ps(b3, _mm256_mul_ps(_mm256_set1_ps(qb[j + 3]), x3));
  }
  for (; j < cols; ++j) {
    const __m256 x = _mm256_loadu_ps(panel + j * kPanel);
    a0 = _mm256_add_ps(a0, _mm256_mul_ps(_mm256_set1_ps(qa[j]), x));
    b0 = _mm256_add_ps(b0, _mm256_mul_ps(_mm256_set1_ps(qb[j]), x));
  }
  _mm256_storeu_ps(out_a, _mm256_add_ps(_mm256_add_ps(a0, a1), _mm256_add_ps(a2, a3)));
  _mm256_storeu_ps(out_b, _mm256_add_ps(_mm256_add_ps(b0, b1), _mm256_add_ps(b2, b3)));
}

[[gnu::target("avx2,f16c")]]
inline __m256 load_f16_column(const std::uint16_t* x) {
  return _mm256_cvtph_ps(_mm_loadu_si128(reinterpret_cast<const __m128i*>(x)));
}

[[gnu::target("avx2,f16c")]]
void avx2_dot_f16(const float* q, const std::uint16_t* panel, std::size_t cols, float* out) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  __m256 acc2 = _mm256_setzero_ps();
  __m256 acc3 = _mm256_setzero_ps();
  std::size_t j = 0;
  for (; j + 4 <= cols; j += 4) {
    const std::uint16_t* x = panel + j * kPanel;
    acc0 = _mm256_add_ps(acc0, _mm256_mul_ps(_mm256_set1_ps(q[j]), load_f16_column(x)));
    acc1 = _mm256_add_ps(acc1,
                         _mm256_mul_ps(_mm256_set1_ps(q[j + 1]), load_f16_column(x + kPanel)));
    acc2 = _mm256_add_ps(
        acc2, _mm256_mul_ps(_mm256_set1_ps(q[j + 2]), load_f16_column(x + 2 * kPanel)));
    acc3 = _mm256_add_ps(
        acc3, _mm256_mul_ps(_mm256_set1_ps(q[j + 3]), load_f16_column(x + 3 * kPanel)));
  }
  for (; j < cols; ++j) {
    acc0 = _mm256_add_ps(
        acc0, _mm256_mul_ps(_mm256_set1_ps(q[j]), load_f16_column(panel + j * kPanel)));
  }
  _mm256_storeu_ps(out, _mm256_add_ps(_mm256_add_ps(acc0, acc1), _mm256_add_ps(acc2, acc3)));
}

[[gnu::target("avx2,f16c")]]
void avx2_dot2_f16(const float* qa, const float* qb, const std::uint16_t* panel,
                   std::size_t cols, float* out_a, float* out_b) {
  __m256 a0 = _mm256_setzero_ps(), a1 = _mm256_setzero_ps();
  __m256 a2 = _mm256_setzero_ps(), a3 = _mm256_setzero_ps();
  __m256 b0 = _mm256_setzero_ps(), b1 = _mm256_setzero_ps();
  __m256 b2 = _mm256_setzero_ps(), b3 = _mm256_setzero_ps();
  std::size_t j = 0;
  for (; j + 4 <= cols; j += 4) {
    const std::uint16_t* p = panel + j * kPanel;
    const __m256 x0 = load_f16_column(p);
    const __m256 x1 = load_f16_column(p + kPanel);
    const __m256 x2 = load_f16_column(p + 2 * kPanel);
    const __m256 x3 = load_f16_column(p + 3 * kPanel);
    a0 = _mm256_add_ps(a0, _mm256_mul_ps(_mm256_set1_ps(qa[j]), x0));
    a1 = _mm256_add_ps(a1, _mm256_mul_ps(_mm256_set1_ps(qa[j + 1]), x1));
    a2 = _mm256_add_ps(a2, _mm256_mul_ps(_mm256_set1_ps(qa[j + 2]), x2));
    a3 = _mm256_add_ps(a3, _mm256_mul_ps(_mm256_set1_ps(qa[j + 3]), x3));
    b0 = _mm256_add_ps(b0, _mm256_mul_ps(_mm256_set1_ps(qb[j]), x0));
    b1 = _mm256_add_ps(b1, _mm256_mul_ps(_mm256_set1_ps(qb[j + 1]), x1));
    b2 = _mm256_add_ps(b2, _mm256_mul_ps(_mm256_set1_ps(qb[j + 2]), x2));
    b3 = _mm256_add_ps(b3, _mm256_mul_ps(_mm256_set1_ps(qb[j + 3]), x3));
  }
  for (; j < cols; ++j) {
    const __m256 x = load_f16_column(panel + j * kPanel);
    a0 = _mm256_add_ps(a0, _mm256_mul_ps(_mm256_set1_ps(qa[j]), x));
    b0 = _mm256_add_ps(b0, _mm256_mul_ps(_mm256_set1_ps(qb[j]), x));
  }
  _mm256_storeu_ps(out_a, _mm256_add_ps(_mm256_add_ps(a0, a1), _mm256_add_ps(a2, a3)));
  _mm256_storeu_ps(out_b, _mm256_add_ps(_mm256_add_ps(b0, b1), _mm256_add_ps(b2, b3)));
}

[[gnu::target("avx2")]]
inline __m256 load_i8_column(const std::int8_t* x) {
  // 8 bytes -> sign-extended epi32 -> ps. int8 -> float is exact.
  const __m128i raw = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(x));
  return _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(raw));
}

[[gnu::target("avx2")]]
void avx2_dot_i8(const float* q, const std::int8_t* panel, std::size_t cols, float* out) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  __m256 acc2 = _mm256_setzero_ps();
  __m256 acc3 = _mm256_setzero_ps();
  std::size_t j = 0;
  for (; j + 4 <= cols; j += 4) {
    const std::int8_t* x = panel + j * kPanel;
    acc0 = _mm256_add_ps(acc0, _mm256_mul_ps(_mm256_set1_ps(q[j]), load_i8_column(x)));
    acc1 = _mm256_add_ps(acc1,
                         _mm256_mul_ps(_mm256_set1_ps(q[j + 1]), load_i8_column(x + kPanel)));
    acc2 = _mm256_add_ps(
        acc2, _mm256_mul_ps(_mm256_set1_ps(q[j + 2]), load_i8_column(x + 2 * kPanel)));
    acc3 = _mm256_add_ps(
        acc3, _mm256_mul_ps(_mm256_set1_ps(q[j + 3]), load_i8_column(x + 3 * kPanel)));
  }
  for (; j < cols; ++j) {
    acc0 = _mm256_add_ps(
        acc0, _mm256_mul_ps(_mm256_set1_ps(q[j]), load_i8_column(panel + j * kPanel)));
  }
  _mm256_storeu_ps(out, _mm256_add_ps(_mm256_add_ps(acc0, acc1), _mm256_add_ps(acc2, acc3)));
}

[[gnu::target("avx2")]]
void avx2_dot2_i8(const float* qa, const float* qb, const std::int8_t* panel, std::size_t cols,
                  float* out_a, float* out_b) {
  __m256 a0 = _mm256_setzero_ps(), a1 = _mm256_setzero_ps();
  __m256 a2 = _mm256_setzero_ps(), a3 = _mm256_setzero_ps();
  __m256 b0 = _mm256_setzero_ps(), b1 = _mm256_setzero_ps();
  __m256 b2 = _mm256_setzero_ps(), b3 = _mm256_setzero_ps();
  std::size_t j = 0;
  for (; j + 4 <= cols; j += 4) {
    const std::int8_t* p = panel + j * kPanel;
    const __m256 x0 = load_i8_column(p);
    const __m256 x1 = load_i8_column(p + kPanel);
    const __m256 x2 = load_i8_column(p + 2 * kPanel);
    const __m256 x3 = load_i8_column(p + 3 * kPanel);
    a0 = _mm256_add_ps(a0, _mm256_mul_ps(_mm256_set1_ps(qa[j]), x0));
    a1 = _mm256_add_ps(a1, _mm256_mul_ps(_mm256_set1_ps(qa[j + 1]), x1));
    a2 = _mm256_add_ps(a2, _mm256_mul_ps(_mm256_set1_ps(qa[j + 2]), x2));
    a3 = _mm256_add_ps(a3, _mm256_mul_ps(_mm256_set1_ps(qa[j + 3]), x3));
    b0 = _mm256_add_ps(b0, _mm256_mul_ps(_mm256_set1_ps(qb[j]), x0));
    b1 = _mm256_add_ps(b1, _mm256_mul_ps(_mm256_set1_ps(qb[j + 1]), x1));
    b2 = _mm256_add_ps(b2, _mm256_mul_ps(_mm256_set1_ps(qb[j + 2]), x2));
    b3 = _mm256_add_ps(b3, _mm256_mul_ps(_mm256_set1_ps(qb[j + 3]), x3));
  }
  for (; j < cols; ++j) {
    const __m256 x = load_i8_column(panel + j * kPanel);
    a0 = _mm256_add_ps(a0, _mm256_mul_ps(_mm256_set1_ps(qa[j]), x));
    b0 = _mm256_add_ps(b0, _mm256_mul_ps(_mm256_set1_ps(qb[j]), x));
  }
  _mm256_storeu_ps(out_a, _mm256_add_ps(_mm256_add_ps(a0, a1), _mm256_add_ps(a2, a3)));
  _mm256_storeu_ps(out_b, _mm256_add_ps(_mm256_add_ps(b0, b1), _mm256_add_ps(b2, b3)));
}

constexpr Ops kAvx2 = {
    "avx2",       avx2_dot_f64, avx2_dot2_f64, avx2_dot_f32, avx2_dot2_f32,
    avx2_dot_f16, avx2_dot2_f16, avx2_dot_i8,  avx2_dot2_i8,
};

bool detect_avx2() noexcept {
  // F16C predates AVX2 on every x86 core but check both to be safe.
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("f16c");
}

#else

bool detect_avx2() noexcept { return false; }

#endif  // SVMSIMD_X86

std::atomic<bool> g_force_portable{false};

}  // namespace

bool avx2_available() noexcept {
  static const bool available = detect_avx2();
  return available;
}

void set_force_portable(bool force) noexcept {
  g_force_portable.store(force, std::memory_order_relaxed);
}

const Ops& portable_ops() noexcept { return kPortable; }

const Ops& ops() noexcept {
#if SVMSIMD_X86
  if (avx2_available() && !g_force_portable.load(std::memory_order_relaxed)) return kAvx2;
#endif
  return kPortable;
}

// ---------------------------------------------------------------------------
// binary16 <-> binary32, round-to-nearest-even.
// ---------------------------------------------------------------------------

std::uint16_t float_to_half(float value) noexcept {
  std::uint32_t f;
  std::memcpy(&f, &value, sizeof(f));
  const std::uint32_t sign = (f >> 16) & 0x8000u;
  const std::uint32_t exp = (f >> 23) & 0xffu;
  std::uint32_t mant = f & 0x007fffffu;
  if (exp == 0xffu) {  // inf / NaN (keep NaN-ness with a quiet payload bit)
    return static_cast<std::uint16_t>(sign | 0x7c00u | (mant != 0 ? 0x0200u : 0u));
  }
  if (exp > 142u) return static_cast<std::uint16_t>(sign | 0x7c00u);  // overflow -> inf
  if (exp < 103u) return static_cast<std::uint16_t>(sign);            // < 2^-24 -> +/-0
  if (exp <= 112u) {
    // Half subnormal: value = mant' * 2^-24 with mant' = (mant|1<<23) >> (126-exp).
    mant |= 0x00800000u;
    const std::uint32_t shift = 126u - exp;  // 14..23
    const std::uint32_t lsb = 1u << shift;
    const std::uint32_t bias = (lsb >> 1) - 1u + ((mant >> shift) & 1u);  // RNE
    return static_cast<std::uint16_t>(sign | ((mant + bias) >> shift));
  }
  // Normal: drop 13 mantissa bits with RNE; carry may roll into the exponent
  // (and on to the inf encoding), which the packed add handles for free.
  std::uint32_t h = ((exp - 112u) << 10) | (mant >> 13);
  const std::uint32_t rem = mant & 0x1fffu;
  if (rem > 0x1000u || (rem == 0x1000u && (h & 1u))) ++h;
  return static_cast<std::uint16_t>(sign | h);
}

float half_to_float(std::uint16_t half) noexcept {
  const std::uint32_t sign = static_cast<std::uint32_t>(half & 0x8000u) << 16;
  const std::uint32_t exp = (half >> 10) & 0x1fu;
  std::uint32_t mant = half & 0x3ffu;
  std::uint32_t f;
  if (exp == 0u) {
    if (mant == 0u) {
      f = sign;  // +/-0
    } else {
      // Normalize the subnormal: shift until the implicit bit appears.
      std::uint32_t e = 0;
      while (!(mant & 0x400u)) {
        mant <<= 1;
        ++e;
      }
      mant &= 0x3ffu;
      f = sign | ((113u - e) << 23) | (mant << 13);
    }
  } else if (exp == 0x1fu) {
    f = sign | 0x7f800000u | (mant << 13);  // inf / NaN
  } else {
    f = sign | ((exp + 112u) << 23) | (mant << 13);
  }
  float out;
  std::memcpy(&out, &f, sizeof(out));
  return out;
}

}  // namespace svmkernel::simd
