// KernelEngine: the one batched kernel-evaluation layer every hot path goes
// through. The engine owns per-solve hot state — precomputed row squared
// norms for its slice of the matrix, a dense scatter buffer for the current
// query row(s), an optional LRU row cache — and exposes batched operations:
//
//   eval_pair_rows / eval_pair_range   fused up/low evaluation: both query
//       rows are scattered into one interleaved dense accumulator, then every
//       requested matrix row is streamed against it ONCE, producing K(up,i)
//       and K(low,i) in a single memory traversal (the gamma-update hot loop
//       previously paid two sparse merge-join intersections per sample);
//   eval_rows                          the single-query batch, same core;
//   begin_query/query_row/end_query    streaming one-query scope for loops
//       that walk rows from elsewhere (gradient reconstruction's ring blocks,
//       model scoring against support vectors);
//   k_row_floats                       full float kernel row with optional
//       per-row scaling and LRU caching (the libsvm baseline's Q rows).
//
// Backends (EngineBackend) select the evaluation strategy:
//   reference      every value via Kernel::eval, i.e. the CsrMatrix::dot
//                  sparse merge join — the semantics ground truth;
//   dense_scatter  the fused fast path described above;
//   cached         dense_scatter plus the KernelRowCache for k_row_floats;
//   simd           the engine's norm-range rows materialized in a dense
//                  panel RowStore (lane-per-row, see row_store.hpp) and
//                  evaluated with the runtime-dispatched SIMD kernels.
//
// Row flavors (RowFlavor, row_store.hpp) select the resident precision of
// the simd store and of cached Q rows: f64 is exact; f32/f16/i8 trade
// precision for footprint and bandwidth. The scalar backends (reference,
// dense_scatter) only accept f64; training solvers additionally refuse any
// flavored engine so optimization stays bit-exact double — flavors are a
// prediction/Q-cache feature, accuracy-gated by tests and bench_precision.
//
// Parity guarantee: dense_scatter is BIT-IDENTICAL to reference, not merely
// close. Both visit row i's nonzeros in increasing index order: the merge
// join accumulates the products a_k*b_k of the index intersection in that
// order, and the dense pass accumulates the same products in the same order
// interleaved with terms of the form v*(+-0.0), which never change an IEEE
// sum that starts at +0.0 (adding a signed zero to any finite value is an
// exact identity, and (+0)+(-0) = +0). Both paths then funnel the dot
// through Kernel::finish_from_dot, so the RBF/poly/sigmoid finish is the
// same instruction sequence. Tests enforce bitwise equality of whole models;
// checkpoint/chaos recovery relies on it staying exact.
//
// The simd backend at flavor f64 inherits the same guarantee: each panel
// lane is one row's sequential mul+add sum over ascending columns (never a
// horizontal reduction, never an FMA — see simd.hpp), which is the dense
// pass above with the sides swapped, and the dot funnels through the same
// finish_from_dot. Streaming entry points whose rows are not in the store
// (begin_query/query_row, k_row_floats fills) fall back to the scalar
// dense-scatter code under the simd backend — bit-identical for f64 by the
// argument above. The batched multi-query paths (eval_block_rows in both
// forms, accumulate_rows) DO run on the RowStore panels under simd: each
// external row becomes the prepared query and the resident side is swept a
// panel at a time, with ordered reductions preserving f64 bit-identity.
//
// Thread safety: an engine is mutable per-call state (scatter buffers,
// counters) — use one engine per rank / per thread. The `parallel` flags
// parallelize INSIDE a call with OpenMP; that is safe because the dense
// buffer is read-only while worker threads stream rows.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "data/sparse.hpp"
#include "kernel/kernel.hpp"
#include "kernel/kernel_cache.hpp"
#include "kernel/row_store.hpp"

namespace svmkernel {

enum class EngineBackend { reference, dense_scatter, cached, simd };

[[nodiscard]] std::string to_string(EngineBackend backend);
[[nodiscard]] EngineBackend engine_backend_from_string(const std::string& name);
/// Stable string literal for trace metadata (trace_instant keeps pointers).
[[nodiscard]] const char* trace_label(EngineBackend backend) noexcept;

/// Counters for the batched layer; cheap (no atomics — engines are
/// single-owner), reported through SolverStats and the benches.
struct EngineStats {
  std::uint64_t pair_evals = 0;      ///< samples evaluated by the fused pair path
  std::uint64_t single_evals = 0;    ///< rows evaluated by eval_rows/query_row
  std::uint64_t scatter_builds = 0;  ///< query-row scatters into the dense buffer
  std::uint64_t bytes_streamed = 0;  ///< payload bytes traversed by batched ops
                                     ///< (CSR features, or flavored panel bytes
                                     ///< for the simd backend)
  std::uint64_t panel_dots = 0;      ///< 8-row SIMD panel products computed
};

class KernelEngine {
 public:
  /// Engine over rows [norm_begin, norm_end) of `X` (a distributed rank's
  /// local block); squared norms for that slice are computed on
  /// construction. `cache_budget_bytes` > 0 enables the row cache used by
  /// k_row_floats (the `cached` backend; ignored otherwise). `flavor`
  /// selects the resident row precision of the simd store / cached Q rows;
  /// the scalar backends require f64. The engine keeps references to
  /// `kernel` and `X` — both must outlive it.
  KernelEngine(const Kernel& kernel, const svmdata::CsrMatrix& X, EngineBackend backend,
               std::size_t norm_begin, std::size_t norm_end,
               std::size_t cache_budget_bytes = 0, RowFlavor flavor = RowFlavor::f64);

  /// Full-matrix convenience (sequential solvers, baselines, model scoring).
  KernelEngine(const Kernel& kernel, const svmdata::CsrMatrix& X, EngineBackend backend,
               std::size_t cache_budget_bytes = 0, RowFlavor flavor = RowFlavor::f64)
      : KernelEngine(kernel, X, backend, 0, X.rows(), cache_budget_bytes, flavor) {}

  /// Borrowed-norms form: reuse already-computed squared norms for all of
  /// `X` instead of recomputing (the free eval_rows entry point).
  KernelEngine(const Kernel& kernel, const svmdata::CsrMatrix& X, EngineBackend backend,
               std::span<const double> sq_norms, RowFlavor flavor = RowFlavor::f64);

  /// Owning-kernel form for callers without a long-lived Kernel (model
  /// scoring): the engine constructs and owns the evaluator itself.
  KernelEngine(const KernelParams& params, const svmdata::CsrMatrix& X,
               EngineBackend backend, std::span<const double> sq_norms,
               RowFlavor flavor = RowFlavor::f64);

  [[nodiscard]] EngineBackend backend() const noexcept { return backend_; }
  [[nodiscard]] RowFlavor flavor() const noexcept { return flavor_; }
  [[nodiscard]] const Kernel& kernel() const noexcept { return kernel_; }
  [[nodiscard]] const EngineStats& stats() const noexcept { return stats_; }

  /// Resident bytes of the simd backend's flavored RowStore (0 otherwise).
  [[nodiscard]] std::size_t store_bytes() const noexcept {
    return store_ ? store_->bytes_resident() : 0;
  }
  /// Encoded bytes currently held by the Q-row cache (0 without one).
  [[nodiscard]] std::size_t cache_bytes_resident() const noexcept {
    return cache_ ? cache_->bytes_resident() : 0;
  }

  /// ||X.row(i)||^2 for i in the engine's norm range.
  [[nodiscard]] double sq_norm(std::size_t i) const noexcept {
    return norms_[i - norm_begin_];
  }

  /// One-off evaluation of arbitrary rows (not necessarily from X); always
  /// the reference merge join — there is nothing to batch.
  [[nodiscard]] double eval_one(std::span<const svmdata::Feature> a,
                                std::span<const svmdata::Feature> b, double sq_a,
                                double sq_b) const noexcept {
    return kernel_.eval(a, b, sq_a, sq_b);
  }

  /// Fused pair evaluation over an index list: for each k,
  ///   out_up[k]  = K(up,  X.row(base + rows[k]))
  ///   out_low[k] = K(low, X.row(base + rows[k]))
  /// All base+rows[k] must lie in the engine's norm range. `up`/`low` may be
  /// remote rows (PackedSamples); their squared norms are passed explicitly.
  void eval_pair_rows(std::span<const svmdata::Feature> up, double sq_up,
                      std::span<const svmdata::Feature> low, double sq_low,
                      std::span<const std::uint32_t> rows, std::size_t base,
                      std::span<double> out_up, std::span<double> out_low,
                      bool parallel = false);

  /// Fused pair evaluation over the contiguous rows [begin, end).
  void eval_pair_range(std::span<const svmdata::Feature> up, double sq_up,
                       std::span<const svmdata::Feature> low, double sq_low,
                       std::size_t begin, std::size_t end, std::span<double> out_up,
                       std::span<double> out_low, bool parallel = false);

  /// Single-query batch: out[i - begin] = K(query, X.row(i)), i in [begin, end).
  void eval_rows(std::span<const svmdata::Feature> query, double sq_query,
                 std::size_t begin, std::size_t end, std::span<double> out,
                 bool parallel = false);

  /// Weighted kernel sum over every row in the engine's norm range:
  ///   sum_j coeffs[j] * K(query, X.row(norm_begin + j)),  j ascending.
  /// This is model scoring (coeffs = alpha_i * y_i over support vectors) as
  /// one batched call. The scalar backends reproduce the historical
  /// begin_query/query_row loop term by term; the simd backend sweeps the
  /// RowStore panels and reduces in the same ascending-row order, so the
  /// result is bit-identical across backends at flavor f64.
  [[nodiscard]] double accumulate_rows(std::span<const svmdata::Feature> query,
                                       double sq_query, std::span<const double> coeffs,
                                       bool parallel = false);

  // --- multi-query block batch (reconstruction ring steps) -----------------

  /// One ring step of gradient reconstruction in a single call: for every
  /// stale sample w,
  ///   accum[w] += sum_j block_coeffs[j] * K(block_rows[j], X.row(base + rows[w]))
  /// where block_rows are the circulating remote samples (their squared
  /// norms passed in block_sq_norms) and the j-sum is evaluated in
  /// increasing j order into a fresh +0.0 partial before the single += —
  /// BIT-IDENTICAL to the per-sample begin_query/query_row loop it replaces
  /// (the dot is orientation-symmetric: the merge join and both scatter
  /// directions accumulate the index-intersection products in the same
  /// increasing-index order, and IEEE add/mul are commutative).
  ///
  /// The dense backends scatter whichever side is SMALLER — the adaptive
  /// kernel orientation: min(rows.size(), block_rows.size()) scatter builds
  /// instead of the one-per-stale-sample of the streaming-scope path — and
  /// `parallel` OpenMP-parallelizes the streamed side (safe: the dense
  /// buffer is read-only while worker threads stream, and per-w partials
  /// keep the accumulation order fixed).
  void eval_block_rows(std::span<const std::span<const svmdata::Feature>> block_rows,
                       std::span<const double> block_sq_norms,
                       std::span<const double> block_coeffs,
                       std::span<const std::uint32_t> rows, std::size_t base,
                       std::span<double> accum, bool parallel = false);

  /// Serving micro-batch form: score every query against the engine's whole
  /// norm range in one call,
  ///   out[q] = sum_j coeffs[j] * K(queries[q], X.row(norm_begin + j))
  /// with the j-sum in ascending order — each out[q] is bitwise equal to
  /// accumulate_rows(queries[q], ...) on the same engine, across backends at
  /// flavor f64. Under the simd backend the resident rows are swept through
  /// the RowStore panels per query (flavored batch predict: an f32/f16/i8
  /// store serves degraded-precision batches from the same call shape).
  /// `query_sq_norms[q]` is ||queries[q]||^2.
  void eval_block_rows(std::span<const std::span<const svmdata::Feature>> queries,
                       std::span<const double> query_sq_norms,
                       std::span<const double> coeffs, std::span<double> out,
                       bool parallel = false);

  // --- streaming one-query scope -----------------------------------------
  // begin_query scatters (or, for the reference backend, remembers) the
  // query row; query_row then evaluates arbitrary rows against it — rows
  // need not come from X (gradient reconstruction streams ring-exchanged
  // blocks). The query span must stay valid until end_query.

  void begin_query(std::span<const svmdata::Feature> query, double sq_query);
  [[nodiscard]] double query_row(std::span<const svmdata::Feature> row, double sq_row);
  void end_query();

  // --- cached float rows (libsvm baseline Q rows) -------------------------

  /// Optional per-row scale s: k_row_floats then returns
  /// float(s[i] * s[j] * K(i, j)) — with s = y this is exactly the C-SVC
  /// Q row, and since y in {+-1} the float rounding equals libsvm's
  /// float(y_i * y_j * K). Must be set before the first k_row_floats call;
  /// scaled rows are cached scaled (cache hits stay O(1)).
  void set_row_scale(std::span<const double> scale);

  /// Row i of the (scaled) kernel matrix as floats, columns [0, len).
  /// Served from the LRU cache when the `cached` backend has a budget; the
  /// returned span stays valid until the next k_row_floats call (the cache
  /// pins it — see KernelRowCache::lookup). Counts `len` kernel
  /// evaluations on a miss and none on a hit, matching the per-element
  /// Kernel::eval metric of the unbatched code.
  [[nodiscard]] std::span<const float> k_row_floats(std::size_t i, std::size_t len,
                                                    bool parallel = false);

  [[nodiscard]] double cache_hit_rate() const noexcept {
    return cache_ ? cache_->hit_rate() : 0.0;
  }

 private:
  void ensure_dense(std::size_t lanes);
  void scatter(std::span<const svmdata::Feature> row, std::size_t lane, std::size_t lanes);
  void unscatter(std::span<const svmdata::Feature> row, std::size_t lane, std::size_t lanes);
  void fill_k_row(std::size_t i, std::size_t len, bool parallel, float* out);
  [[nodiscard]] std::uint64_t payload_bytes(std::span<const std::uint32_t> rows,
                                            std::size_t base) const noexcept;
  void init_flavored(std::size_t cache_budget_bytes);
  /// Decoded squared norm of store-local row (engine norms when f64 — the
  /// two agree there, and the scalar parity paths compare against norms_).
  [[nodiscard]] double store_sq(std::size_t local) const {
    return flavor_ == RowFlavor::f64 ? norms_[local] : store_->sq_norm(local);
  }
  /// Densifies `row` into `buf` (resized to cols, zeros elsewhere); caller
  /// must clear_query_vec afterwards. Returns the span panel eval reads.
  void fill_query_vec(std::vector<double>& buf, std::span<const svmdata::Feature> row);
  void clear_query_vec(std::vector<double>& buf, std::span<const svmdata::Feature> row);
  void simd_pair_indexed(std::span<const std::uint32_t> rows, std::size_t base,
                         double sq_up, double sq_low, std::span<double> out_up,
                         std::span<double> out_low);
  void simd_pair_range(std::size_t begin, std::size_t end, double sq_up, double sq_low,
                       std::span<double> out_up, std::span<double> out_low, bool parallel);
  void simd_single_range(std::size_t begin, std::size_t end, double sq_query,
                         std::span<double> out, bool parallel);

  std::unique_ptr<Kernel> owned_kernel_;  ///< set only by the owning ctor
  const Kernel& kernel_;
  const svmdata::CsrMatrix& X_;
  EngineBackend backend_;
  RowFlavor flavor_ = RowFlavor::f64;
  std::size_t norm_begin_ = 0;
  std::vector<double> owned_norms_;
  std::span<const double> norms_;

  std::unique_ptr<RowStore> store_;  ///< simd backend's flavored panels
  std::vector<double> qa_vec_;       ///< dense query buffers for the store
  std::vector<double> qb_vec_;

  std::vector<double> dense_;        ///< scatter buffer, lanes * cols entries
  std::size_t dense_lanes_ = 0;      ///< 1 = single query, 2 = interleaved pair
  std::span<const svmdata::Feature> query_;  ///< active begin_query row
  double query_sq_ = 0.0;
  bool query_active_ = false;

  std::vector<double> scale_;
  std::vector<float> row_scratch_;
  // eval_block_rows scratch, reused across ring steps: per-stale-sample
  // partial sums and (scatter-stale orientation) per-block kernel values.
  std::vector<double> block_partials_;
  std::vector<double> block_kvals_;
  std::unique_ptr<KernelRowCache> cache_;
  std::uint64_t k_row_calls_ = 0;  ///< trace counter-track sampling stride

  EngineStats stats_;
};

}  // namespace svmkernel
