#include "mpisim/spmd.hpp"

#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/trace.hpp"

namespace svmmpi {

TrafficStats run_spmd(int num_ranks, const std::function<void(Comm&)>& body, NetModel model,
                      const std::function<void(const World&)>& inspect,
                      FaultInjector* injector) {
  World world(num_ranks, model, injector);

  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto rank_main = [&](int rank) {
    svmobs::trace_set_thread_rank(rank);
    try {
      svmobs::TraceSpan span("rank_main", "spmd");
      Comm comm = world.world_comm(rank);
      body(comm);
    } catch (const WorldAborted&) {
      // Secondary failure caused by another rank's abort; ignore.
    } catch (...) {
      {
        std::lock_guard lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
      world.abort();
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(num_ranks);
  for (int r = 0; r < num_ranks; ++r) threads.emplace_back(rank_main, r);
  for (std::thread& t : threads) t.join();

  if (first_error) std::rethrow_exception(first_error);
  if (inspect) inspect(world);
  return world.total_stats();
}

ElasticReport run_spmd_elastic(int num_ranks, const std::function<void(Comm&)>& body,
                               NetModel model, const std::function<void(const World&)>& inspect,
                               FaultInjector* injector) {
  if (model.timeout_s <= 0.0)
    throw std::invalid_argument(
        "svmmpi: elastic SPMD needs model.timeout_s > 0 (deadline-driven failure detection)");
  World world(num_ranks, model, injector);

  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto rank_main = [&](int rank) {
    svmobs::trace_set_thread_rank(rank);
    try {
      svmobs::TraceSpan span("rank_main", "spmd");
      Comm comm = world.world_comm(rank);
      body(comm);
    } catch (const RankFailed& failure) {
      // The injected death of THIS rank: record it and exit quietly. The
      // mark wakes every survivor blocked on this rank so they observe
      // RankLost promptly instead of waiting out the deadline.
      svmobs::trace_instant("rank_failed", "fault");
      world.mark_failed(rank, failure.permanent);
    } catch (const WorldAborted&) {
      // Secondary failure caused by another rank's abort; ignore.
    } catch (...) {
      {
        std::lock_guard lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
      world.abort();
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(num_ranks);
  for (int r = 0; r < num_ranks; ++r) threads.emplace_back(rank_main, r);
  for (std::thread& t : threads) t.join();

  if (first_error) std::rethrow_exception(first_error);
  ElasticReport report;
  report.failed_ranks = world.failed_ranks();
  for (const int wr : report.failed_ranks)
    report.any_permanent = report.any_permanent || world.failure_is_permanent(wr);
  if (inspect) inspect(world);
  report.stats = world.total_stats();
  return report;
}

}  // namespace svmmpi
