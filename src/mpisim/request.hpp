// Nonblocking-operation handles. Sends complete eagerly (buffered, like
// MPI_Bsend), so an isend's Request is born complete; an irecv's Request
// carries a deferred completion that performs the blocking receive when
// waited on. This model is deadlock-free for any program whose sends are
// matched by receives — which covers the ring exchange in Algorithm 3.
#pragma once

#include <functional>
#include <utility>

namespace svmmpi {

class Request {
 public:
  Request() = default;
  explicit Request(std::function<void()> completion) : completion_(std::move(completion)) {}

  Request(Request&&) noexcept = default;
  Request& operator=(Request&&) noexcept = default;
  Request(const Request&) = delete;
  Request& operator=(const Request&) = delete;

  /// Completes the operation. Idempotent.
  void wait() {
    if (completion_) {
      auto fn = std::move(completion_);
      completion_ = nullptr;
      fn();
    }
  }

  [[nodiscard]] bool complete() const noexcept { return completion_ == nullptr; }

 private:
  std::function<void()> completion_;
};

}  // namespace svmmpi
