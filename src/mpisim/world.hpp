// World: owns the shared state for one SPMD execution — a mailbox per rank,
// the registry of collective contexts (one per communicator), the network
// cost model and per-rank traffic statistics.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "mpisim/collective.hpp"
#include "mpisim/mailbox.hpp"
#include "mpisim/netmodel.hpp"

namespace svmmpi {

class Comm;
class FaultInjector;

/// Next trace flow-correlation id: process-globally monotone, starting at 1
/// (0 means "untraced" in a Message envelope). Deliberately NOT per-World so
/// ids stay unique across restarts, shrink generations and retried sends —
/// a re-sent message gets a fresh id, never a duplicate. Ids only feed trace
/// flow events; they never influence computation, so traced runs stay
/// bit-identical.
[[nodiscard]] std::uint64_t acquire_flow_id() noexcept;

class World {
 public:
  /// `injector`, when non-null, is consulted by every communication op (see
  /// fault.hpp); it must outlive the World. The model's timeout_s is applied
  /// to every mailbox pop and collective rendezvous.
  explicit World(int size, NetModel model = {}, FaultInjector* injector = nullptr);

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  [[nodiscard]] int size() const noexcept { return size_; }
  [[nodiscard]] const NetModel& model() const noexcept { return model_; }

  /// Communicator handle spanning all ranks, bound to `rank`. Each rank's
  /// thread obtains its own handle.
  [[nodiscard]] Comm world_comm(int rank);

  /// Tears down all blocking operations; used when a rank throws so siblings
  /// do not deadlock. Idempotent.
  void abort();
  [[nodiscard]] bool aborted() const noexcept { return aborted_.load(); }

  // --- failure registry (elastic recovery) ------------------------------
  /// Records `world_rank` as dead, then wakes every blocked mailbox pop and
  /// collective rendezvous so interrupt predicates are re-evaluated. Unlike
  /// abort(), survivors keep running: their blocked ops surface RankLost (via
  /// Comm) instead of WorldAborted. `permanent` records whether the rank's
  /// process memory is unrecoverable (RankFailed::permanent). Idempotent.
  void mark_failed(int world_rank, bool permanent = true);
  [[nodiscard]] bool is_failed(int world_rank) const;
  [[nodiscard]] bool any_failed() const;
  /// True when `world_rank` was marked failed with permanent = true.
  [[nodiscard]] bool failure_is_permanent(int world_rank) const;
  /// Sorted snapshot of the dead set.
  [[nodiscard]] std::vector<int> failed_ranks() const;

  /// Memoized context allocation keyed by the (sorted) surviving group:
  /// every survivor calling with the same group gets the same context id
  /// without communicating — the shrink protocol's "communicator creation".
  /// `salt` disambiguates otherwise-identical groups across independent
  /// lifetimes: the scheduler keys each job attempt's shrink generations
  /// with a unique salt so a group that recurs (job C shrinking onto the
  /// rank set an earlier job once used) never reuses a context another
  /// tenant may have abandoned mid-collective.
  [[nodiscard]] int context_for_group(const std::vector<int>& group, std::uint64_t salt = 0);

  // --- context cancellation (scheduler watchdog) -------------------------
  /// Marks a communicator context cancelled, then wakes every blocked
  /// mailbox pop and collective rendezvous so members observe
  /// ContextCancelled instead of staying wedged. Members mid-compute pick
  /// the verdict up at their next communication op. Idempotent; a cancelled
  /// context stays cancelled for the World's lifetime (the scheduler never
  /// reuses a cancelled job attempt's context).
  void cancel_context(int id);
  [[nodiscard]] bool context_cancelled(int id) const;

  /// Per-rank statistics. Only rank `r`'s thread writes stats(r), so reads
  /// are race-free after the SPMD region joins.
  [[nodiscard]] const TrafficStats& stats(int rank) const { return stats_[rank]; }
  [[nodiscard]] TrafficStats& mutable_stats(int rank) { return stats_[rank]; }
  [[nodiscard]] TrafficStats total_stats() const;

  // --- internals used by Comm -------------------------------------------
  [[nodiscard]] Mailbox& mailbox(int world_rank) { return *mailboxes_[world_rank]; }
  [[nodiscard]] FaultInjector* injector() const noexcept { return injector_; }
  [[nodiscard]] CollectiveContext& context(int id);
  /// Allocates a new collective context for a sub-communicator of `size`
  /// ranks and returns its id. Thread-safe; called once per new group.
  [[nodiscard]] int create_context(int size);

 private:
  int size_;
  NetModel model_;
  FaultInjector* injector_ = nullptr;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::vector<TrafficStats> stats_;
  std::atomic<bool> aborted_{false};

  std::mutex registry_mutex_;
  std::map<int, std::unique_ptr<CollectiveContext>> contexts_;
  std::map<std::pair<std::vector<int>, std::uint64_t>, int> group_contexts_;
  int next_context_id_ = 0;

  mutable std::mutex cancelled_mutex_;
  std::vector<int> cancelled_;  ///< sorted cancelled context ids

  mutable std::mutex failed_mutex_;
  std::vector<int> failed_;            ///< sorted world ranks marked dead
  std::vector<int> failed_permanent_;  ///< sorted subset with permanent loss
};

}  // namespace svmmpi
