#include "mpisim/mailbox.hpp"

#include <algorithm>
#include <chrono>

#include "mpisim/fault.hpp"

namespace svmmpi {

void Mailbox::push(Message message) {
  {
    std::lock_guard lock(mutex_);
    queue_.push_back(std::move(message));
  }
  available_.notify_all();
}

bool Mailbox::find_match_locked(int context, int source, int tag, std::size_t& index) const {
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    const Message& m = queue_[i];
    const bool context_ok = m.context == context;
    const bool source_ok = source == kAnySource || m.source == source;
    const bool tag_ok = tag == kAnyTag || m.tag == tag;
    if (context_ok && source_ok && tag_ok) {
      index = i;
      return true;
    }
  }
  return false;
}

Message Mailbox::pop(int context, int source, int tag, const std::function<bool()>& interrupt) {
  std::unique_lock lock(mutex_);
  std::size_t index = 0;
  bool interrupted = false;
  // A queued matching message always wins over an interrupt: the peer's
  // message was delivered before it died, exactly as on a real network.
  const auto ready = [&] {
    if (aborted_ || find_match_locked(context, source, tag, index)) return true;
    interrupted = interrupt && interrupt();
    return interrupted;
  };
  if (timeout_s_ <= 0.0) {
    available_.wait(lock, ready);
  } else {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                              std::chrono::duration<double>(timeout_s_));
    if (!available_.wait_until(lock, deadline, ready))
      throw TimeoutError(owner_rank_, source, tag, timeout_s_, "blocking receive");
  }
  if (aborted_) throw WorldAborted{};
  if (interrupted && !find_match_locked(context, source, tag, index))
    throw RendezvousInterrupted{};
  Message result = std::move(queue_[index]);
  queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(index));
  return result;
}

bool Mailbox::pop_for(int context, int source, int tag, double deadline_s,
                      const std::function<bool()>& interrupt, Message& out) {
  std::unique_lock lock(mutex_);
  std::size_t index = 0;
  bool interrupted = false;
  // Same precedence as pop(): a queued matching message beats an interrupt —
  // the peer's message was delivered before it died.
  const auto ready = [&] {
    if (aborted_ || find_match_locked(context, source, tag, index)) return true;
    interrupted = interrupt && interrupt();
    return interrupted;
  };
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                            std::chrono::duration<double>(std::max(deadline_s, 0.0)));
  if (!available_.wait_until(lock, deadline, ready)) return false;
  if (aborted_) throw WorldAborted{};
  if (interrupted && !find_match_locked(context, source, tag, index))
    throw RendezvousInterrupted{};
  out = std::move(queue_[index]);
  queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(index));
  return true;
}

bool Mailbox::try_pop(int context, int source, int tag, Message& out) {
  std::lock_guard lock(mutex_);
  if (aborted_) throw WorldAborted{};
  std::size_t index = 0;
  if (!find_match_locked(context, source, tag, index)) return false;
  out = std::move(queue_[index]);
  queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(index));
  return true;
}

void Mailbox::abort() {
  {
    std::lock_guard lock(mutex_);
    aborted_ = true;
  }
  available_.notify_all();
}

void Mailbox::poke() {
  // Take the lock so a poke cannot slip between a waiter's predicate check
  // and its wait, which would lose the wakeup.
  { std::lock_guard lock(mutex_); }
  available_.notify_all();
}

std::size_t Mailbox::pending() const {
  std::lock_guard lock(mutex_);
  return queue_.size();
}

}  // namespace svmmpi
