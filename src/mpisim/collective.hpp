// Rendezvous engine for collective operations. All ranks of a communicator
// enter run() with a byte contribution; the last arriver applies `combine`
// over the contributions *in rank order* (making reductions bitwise
// deterministic regardless of thread scheduling), then every rank copies the
// result out. Exit is synchronized so a fast rank cannot race into the next
// collective round before the slowest rank has read the current result.
//
// Executing collectives through shared memory is a property of the simulation
// substrate; their *modeled* cost is charged separately using the NetModel
// formulas for the tree/ring algorithms a real MPI would run (see comm.cpp).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

namespace svmmpi {

class CollectiveContext {
 public:
  using Combine =
      std::function<std::vector<std::byte>(const std::vector<std::vector<std::byte>>&)>;

  /// `timeout_s` > 0 bounds each rendezvous wait: if the other ranks fail to
  /// arrive (or to drain the previous round) within the deadline, run()
  /// throws TimeoutError instead of deadlocking. 0 = wait forever.
  explicit CollectiveContext(int size, double timeout_s = 0.0);

  /// Collective rendezvous; every rank must call with the same combine
  /// semantics. Returns the combined result. Throws WorldAborted on abort
  /// and TimeoutError when the rendezvous deadline elapses. When `interrupt`
  /// is provided and becomes true while waiting (re-checked on poke()), run
  /// throws RendezvousInterrupted — the elastic path wakes a rendezvous whose
  /// member has been marked failed without waiting out the deadline. The
  /// abandoned round's state is not recycled; after a failure the surviving
  /// ranks continue on a fresh context (Comm::shrink), never this one.
  [[nodiscard]] std::vector<std::byte> run(int rank, std::vector<std::byte> contribution,
                                           const Combine& combine,
                                           const std::function<bool()>& interrupt = {});

  /// ULFM-style fault-tolerant agreement (MPI_Comm_agree): completes when
  /// every rank has either contributed or is reported dead by `dead_local`
  /// (group-local ranks; re-evaluated as failures are marked — see poke()).
  /// Returns the sorted union of every contributor's `values`. Callers fold
  /// the currently-known dead set into their own contribution, and the
  /// finalizer adds `late_values()` (the dead set as of completion) so a rank
  /// marked failed after the last survivor contributed is still agreed on.
  /// Unlike run(), this never consults the fault injector — agreement is a
  /// recovery operation, not a fault site.
  [[nodiscard]] std::vector<int> agree(int rank, const std::vector<int>& values,
                                       const std::function<std::vector<int>()>& dead_local,
                                       const std::function<std::vector<int>()>& late_values);

  void abort();

  /// Wakes all waiters so interrupt/dead-set predicates are re-evaluated.
  void poke();

  [[nodiscard]] int size() const noexcept { return size_; }

 private:
  enum class Phase { collecting, distributing };

  /// Waits on `turnstile_` until `ready` holds; honours abort and deadline.
  template <typename Predicate>
  void wait_or_timeout(std::unique_lock<std::mutex>& lock, int rank, Predicate ready,
                       const char* what_op);

  std::mutex mutex_;
  std::condition_variable turnstile_;
  int size_;
  double timeout_s_ = 0.0;
  int arrived_ = 0;
  int departed_ = 0;
  Phase phase_ = Phase::collecting;
  std::vector<std::vector<std::byte>> contributions_;
  std::vector<std::byte> result_;
  std::uint64_t round_flow_id_ = 0;  ///< trace flow id of the in-flight round
  bool aborted_ = false;

  // agree() rounds keep separate state so a dirty, abandoned run() round
  // (survivors threw out of it when a member died) cannot wedge the
  // agreement that follows it on the same context.
  std::vector<std::uint8_t> agree_arrived_;
  std::vector<std::vector<int>> agree_values_;
  std::vector<int> agree_result_;
  int agree_departed_ = 0;
  Phase agree_phase_ = Phase::collecting;
};

}  // namespace svmmpi
