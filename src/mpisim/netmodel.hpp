// Alpha-beta network cost model. The paper analyses communication with a
// latency term `l` and an inverse-bandwidth term `G` (Table I): a point-to-
// point message of b bytes costs l + b*G, a tree collective over p ranks
// costs (l + b*G) * ceil(log2 p), and a ring exchange costs p-1 steps of
// l + b*G. Since this reproduction executes ranks as threads in one process,
// the *modeled* time from these formulas is what stands in for real network
// time on the paper's InfiniBand FDR testbed.
#pragma once

#include <cstddef>
#include <cstdint>

namespace svmmpi {

struct NetModel {
  /// One-way small-message latency `l` in seconds (default ~ FDR IB MPI).
  double latency_s = 2.0e-6;
  /// Seconds per byte `G` (default ~ 6 GB/s effective per-rank bandwidth).
  double seconds_per_byte = 1.0 / 6.0e9;
  /// Wall-clock deadline for blocking receives and collective rendezvous:
  /// when > 0, a rank stuck longer than this throws TimeoutError (naming the
  /// stuck rank/source/tag) instead of hanging forever. 0 keeps MPI's
  /// wait-forever semantics. Essential under fault injection, where dropped
  /// messages would otherwise deadlock the world.
  double timeout_s = 0.0;

  [[nodiscard]] double pt2pt(std::size_t bytes) const noexcept {
    return latency_s + static_cast<double>(bytes) * seconds_per_byte;
  }

  /// Binomial-tree collective (Bcast / Reduce / small Allreduce).
  [[nodiscard]] double tree(std::size_t bytes, int p) const noexcept {
    return pt2pt(bytes) * static_cast<double>(ceil_log2(p));
  }

  /// One ring step; a full ring pass is (p-1) steps.
  [[nodiscard]] double ring_step(std::size_t bytes) const noexcept { return pt2pt(bytes); }

  [[nodiscard]] static int ceil_log2(int p) noexcept {
    int levels = 0;
    int reach = 1;
    while (reach < p) {
      reach <<= 1;
      ++levels;
    }
    return levels;
  }
};

/// Per-rank communication accounting. `modeled_seconds` accumulates NetModel
/// costs; the byte/message counters are exact for the executed pattern.
///
/// Overlap accounting: a pipelined code region that posts its transfers
/// before computing (Isend/Irecv ... compute ... Waitall) hides network time
/// behind kernel work, so such a step costs max(compute, comm) rather than
/// compute + comm. Comm::credit_overlap implements that charging rule by
/// moving the hidden portion min(compute, comm) out of `modeled_seconds`
/// into `overlapped_seconds`; `modeled_seconds` then holds only the network
/// time the rank actually had to wait for, while modeled_seconds +
/// overlapped_seconds remains the gross (un-overlapped) network cost.
struct TrafficStats {
  std::uint64_t sends = 0;
  std::uint64_t recvs = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t collectives = 0;
  /// This rank's contribution bytes across collectives (the b of the tree /
  /// ring formulas, charged once per participating rank per collective).
  /// Together with bytes_sent this is the rank's injected communication
  /// volume — the quantity the solver comparisons (SMO vs PBM) gate on.
  std::uint64_t bytes_collective = 0;
  double modeled_seconds = 0.0;
  double overlapped_seconds = 0.0;  ///< modeled network time hidden behind compute

  TrafficStats& operator+=(const TrafficStats& other) noexcept {
    sends += other.sends;
    recvs += other.recvs;
    bytes_sent += other.bytes_sent;
    bytes_received += other.bytes_received;
    collectives += other.collectives;
    bytes_collective += other.bytes_collective;
    modeled_seconds += other.modeled_seconds;
    overlapped_seconds += other.overlapped_seconds;
    return *this;
  }
};

}  // namespace svmmpi
