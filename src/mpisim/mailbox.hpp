// Point-to-point message transport: one Mailbox per destination rank.
// Messages are tagged byte payloads; receives match on (source, tag) with
// MPI-style wildcards and preserve per-(source,tag) FIFO order, mirroring
// MPI's non-overtaking guarantee.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <vector>

namespace svmmpi {

inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

struct Message {
  int context = 0;  ///< communicator context id; exact match, no wildcard
  int source = 0;   ///< sender's rank within that communicator
  int tag = 0;
  std::uint64_t flow_id = 0;  ///< trace flow correlation id; 0 = untraced
  std::vector<std::byte> payload;
};

/// Thrown from blocking operations when the World is torn down after a rank
/// failed; prevents deadlock when a sibling rank throws mid-protocol.
struct WorldAborted : std::exception {
  [[nodiscard]] const char* what() const noexcept override {
    return "svmmpi: world aborted (another rank raised an error)";
  }
};

/// Thrown from a blocking wait whose `interrupt` predicate fired: the awaited
/// peer (or a collective member) was marked failed while we waited. An
/// internal wake signal — Comm converts it into the public RankLost verdict;
/// it never escapes the mpisim layer.
struct RendezvousInterrupted : std::exception {
  [[nodiscard]] const char* what() const noexcept override {
    return "svmmpi: blocking operation interrupted by a peer failure";
  }
};

class Mailbox {
 public:
  /// `owner_rank` names this mailbox's rank in errors; `timeout_s` > 0 turns
  /// a blocked pop into a TimeoutError after that many wall-clock seconds
  /// (0 = wait forever, the MPI default).
  explicit Mailbox(int owner_rank = -1, double timeout_s = 0.0)
      : owner_rank_(owner_rank), timeout_s_(timeout_s) {}

  void push(Message message);

  /// Blocks until a message matching (context, source, tag) is available and
  /// removes it. Wildcards kAnySource/kAnyTag match anything; context always
  /// matches exactly. Throws WorldAborted if abort() is called while waiting,
  /// and TimeoutError naming (rank, source, tag) once the configured deadline
  /// elapses with no matching message. When `interrupt` is provided and
  /// becomes true while waiting (re-checked whenever poke() fires), pop
  /// throws RendezvousInterrupted — the elastic path uses this to wake a
  /// receiver whose awaited peer has been marked failed, without waiting for
  /// the full deadline.
  [[nodiscard]] Message pop(int context, int source, int tag,
                            const std::function<bool()>& interrupt = {});

  /// Non-blocking variant; returns false if no matching message is queued.
  [[nodiscard]] bool try_pop(int context, int source, int tag, Message& out);

  /// Deadline-bounded pop: waits at most `deadline_s` seconds for a matching
  /// message and returns false on expiry instead of throwing TimeoutError —
  /// a deadline miss here is an expected outcome (the serving engine's
  /// per-request timeout / hedged-dispatch path), not a hang diagnosis, so it
  /// ignores the mailbox-wide timeout_s. WorldAborted and the interrupt
  /// mechanics behave exactly like pop(). `deadline_s` <= 0 degenerates to
  /// try_pop with interrupt checking.
  [[nodiscard]] bool pop_for(int context, int source, int tag, double deadline_s,
                             const std::function<bool()>& interrupt, Message& out);

  /// Wakes all waiters; subsequent/pending blocking pops throw WorldAborted.
  void abort();

  /// Wakes all waiters so they re-evaluate their interrupt predicates (e.g.
  /// after a rank is marked failed). Does not change mailbox state.
  void poke();

  [[nodiscard]] std::size_t pending() const;

 private:
  [[nodiscard]] bool find_match_locked(int context, int source, int tag,
                                       std::size_t& index) const;

  mutable std::mutex mutex_;
  std::condition_variable available_;
  std::deque<Message> queue_;
  int owner_rank_ = -1;
  double timeout_s_ = 0.0;
  bool aborted_ = false;
};

}  // namespace svmmpi
