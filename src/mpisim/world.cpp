#include "mpisim/world.hpp"

#include <numeric>
#include <stdexcept>

#include "mpisim/comm.hpp"

namespace svmmpi {

World::World(int size, NetModel model, FaultInjector* injector)
    : size_(size), model_(model), injector_(injector), stats_(size) {
  if (size <= 0) throw std::invalid_argument("svmmpi: world size must be positive");
  mailboxes_.reserve(size);
  for (int r = 0; r < size; ++r)
    mailboxes_.push_back(std::make_unique<Mailbox>(r, model_.timeout_s));
  // Context 0 is the world communicator's.
  (void)create_context(size);
}

Comm World::world_comm(int rank) {
  if (rank < 0 || rank >= size_) throw std::out_of_range("svmmpi: rank out of range");
  auto group = std::make_shared<std::vector<int>>(size_);
  std::iota(group->begin(), group->end(), 0);
  return Comm(this, std::move(group), rank, /*context_id=*/0);
}

void World::abort() {
  if (aborted_.exchange(true)) return;
  for (auto& box : mailboxes_) box->abort();
  std::lock_guard lock(registry_mutex_);
  for (auto& [id, ctx] : contexts_) ctx->abort();
}

TrafficStats World::total_stats() const {
  TrafficStats total;
  for (const TrafficStats& s : stats_) total += s;
  return total;
}

CollectiveContext& World::context(int id) {
  std::lock_guard lock(registry_mutex_);
  const auto it = contexts_.find(id);
  if (it == contexts_.end()) throw std::out_of_range("svmmpi: unknown collective context");
  return *it->second;
}

int World::create_context(int size) {
  std::lock_guard lock(registry_mutex_);
  const int id = next_context_id_++;
  contexts_.emplace(id, std::make_unique<CollectiveContext>(size, model_.timeout_s));
  return id;
}

}  // namespace svmmpi
