#include "mpisim/world.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "mpisim/comm.hpp"

namespace svmmpi {

std::uint64_t acquire_flow_id() noexcept {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

World::World(int size, NetModel model, FaultInjector* injector)
    : size_(size), model_(model), injector_(injector), stats_(size) {
  if (size <= 0) throw std::invalid_argument("svmmpi: world size must be positive");
  mailboxes_.reserve(size);
  for (int r = 0; r < size; ++r)
    mailboxes_.push_back(std::make_unique<Mailbox>(r, model_.timeout_s));
  // Context 0 is the world communicator's.
  (void)create_context(size);
}

Comm World::world_comm(int rank) {
  if (rank < 0 || rank >= size_) throw std::out_of_range("svmmpi: rank out of range");
  auto group = std::make_shared<std::vector<int>>(size_);
  std::iota(group->begin(), group->end(), 0);
  return Comm(this, std::move(group), rank, /*context_id=*/0);
}

void World::abort() {
  if (aborted_.exchange(true)) return;
  for (auto& box : mailboxes_) box->abort();
  std::lock_guard lock(registry_mutex_);
  for (auto& [id, ctx] : contexts_) ctx->abort();
}

void World::mark_failed(int world_rank, bool permanent) {
  if (world_rank < 0 || world_rank >= size_)
    throw std::out_of_range("svmmpi: rank out of range");
  {
    std::lock_guard lock(failed_mutex_);
    if (permanent) {
      const auto pit =
          std::lower_bound(failed_permanent_.begin(), failed_permanent_.end(), world_rank);
      if (pit == failed_permanent_.end() || *pit != world_rank)
        failed_permanent_.insert(pit, world_rank);
    }
    const auto it = std::lower_bound(failed_.begin(), failed_.end(), world_rank);
    if (it != failed_.end() && *it == world_rank) return;
    failed_.insert(it, world_rank);
  }
  // Poke OUTSIDE failed_mutex_: agree()'s dead_local predicate runs under a
  // context mutex and calls failed_ranks(); holding failed_mutex_ here while
  // taking the context mutex inside poke() would invert that order.
  for (auto& box : mailboxes_) box->poke();
  std::lock_guard lock(registry_mutex_);
  for (auto& [id, ctx] : contexts_) ctx->poke();
}

bool World::is_failed(int world_rank) const {
  std::lock_guard lock(failed_mutex_);
  return std::binary_search(failed_.begin(), failed_.end(), world_rank);
}

bool World::any_failed() const {
  std::lock_guard lock(failed_mutex_);
  return !failed_.empty();
}

bool World::failure_is_permanent(int world_rank) const {
  std::lock_guard lock(failed_mutex_);
  return std::binary_search(failed_permanent_.begin(), failed_permanent_.end(), world_rank);
}

std::vector<int> World::failed_ranks() const {
  std::lock_guard lock(failed_mutex_);
  return failed_;
}

int World::context_for_group(const std::vector<int>& group, std::uint64_t salt) {
  std::lock_guard lock(registry_mutex_);
  const auto key = std::make_pair(group, salt);
  const auto it = group_contexts_.find(key);
  if (it != group_contexts_.end()) return it->second;
  const int id = next_context_id_++;
  contexts_.emplace(id, std::make_unique<CollectiveContext>(
                            static_cast<int>(group.size()), model_.timeout_s));
  group_contexts_.emplace(key, id);
  return id;
}

void World::cancel_context(int id) {
  {
    std::lock_guard lock(cancelled_mutex_);
    const auto it = std::lower_bound(cancelled_.begin(), cancelled_.end(), id);
    if (it != cancelled_.end() && *it == id) return;
    cancelled_.insert(it, id);
  }
  // Same lock-order discipline as mark_failed: poke outside the registry of
  // cancelled ids, since waiters' predicates call context_cancelled().
  for (auto& box : mailboxes_) box->poke();
  std::lock_guard lock(registry_mutex_);
  for (auto& [ctx_id, ctx] : contexts_) ctx->poke();
}

bool World::context_cancelled(int id) const {
  std::lock_guard lock(cancelled_mutex_);
  return std::binary_search(cancelled_.begin(), cancelled_.end(), id);
}

TrafficStats World::total_stats() const {
  TrafficStats total;
  for (const TrafficStats& s : stats_) total += s;
  return total;
}

CollectiveContext& World::context(int id) {
  std::lock_guard lock(registry_mutex_);
  const auto it = contexts_.find(id);
  if (it == contexts_.end()) throw std::out_of_range("svmmpi: unknown collective context");
  return *it->second;
}

int World::create_context(int size) {
  std::lock_guard lock(registry_mutex_);
  const int id = next_context_id_++;
  contexts_.emplace(id, std::make_unique<CollectiveContext>(size, model_.timeout_s));
  return id;
}

}  // namespace svmmpi
