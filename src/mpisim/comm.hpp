// Comm: the typed communicator API modelled on MPI. Each SPMD thread holds
// its own handle (rank, group, collective context). Point-to-point transfers
// move through per-rank mailboxes; collectives rendezvous through a shared
// CollectiveContext with rank-ordered (deterministic) reduction. Modeled
// network time is charged per operation using the NetModel formulas for the
// algorithms a real MPI would execute (binomial trees, rings).
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <stdexcept>
#include <type_traits>
#include <vector>

#include "mpisim/fault.hpp"
#include "mpisim/mailbox.hpp"
#include "mpisim/netmodel.hpp"
#include "mpisim/request.hpp"
#include "mpisim/world.hpp"

namespace svmmpi {

enum class ReduceOp { sum, min, max, prod };

/// Value/index pair for MINLOC/MAXLOC reductions (worst-KKT-violator
/// selection in the SVM solvers). Ties break toward the smaller index so the
/// parallel solver selects exactly the sample the sequential solver would.
struct DoubleInt {
  double value = 0.0;
  std::int64_t index = -1;
};

namespace detail {

template <typename T>
[[nodiscard]] std::vector<std::byte> to_bytes(std::span<const T> data) {
  static_assert(std::is_trivially_copyable_v<T>, "mpisim transfers trivially copyable types");
  std::vector<std::byte> bytes(data.size_bytes());
  if (!bytes.empty()) std::memcpy(bytes.data(), data.data(), bytes.size());
  return bytes;
}

template <typename T>
[[nodiscard]] std::vector<T> from_bytes(std::span<const std::byte> bytes) {
  static_assert(std::is_trivially_copyable_v<T>, "mpisim transfers trivially copyable types");
  if (bytes.size() % sizeof(T) != 0)
    throw std::runtime_error("svmmpi: payload size is not a multiple of element size");
  std::vector<T> data(bytes.size() / sizeof(T));
  if (!bytes.empty()) std::memcpy(data.data(), bytes.data(), bytes.size());
  return data;
}

template <typename T>
void apply_reduce(ReduceOp op, std::span<T> accumulator, std::span<const T> operand) {
  for (std::size_t i = 0; i < accumulator.size(); ++i) {
    switch (op) {
      case ReduceOp::sum: accumulator[i] += operand[i]; break;
      case ReduceOp::min:
        accumulator[i] = operand[i] < accumulator[i] ? operand[i] : accumulator[i];
        break;
      case ReduceOp::max:
        accumulator[i] = accumulator[i] < operand[i] ? operand[i] : accumulator[i];
        break;
      case ReduceOp::prod: accumulator[i] *= operand[i]; break;
    }
  }
}

/// Packs parts as [uint64 count][uint64 sizes...][concatenated payloads];
/// also the combine step of allgatherv.
[[nodiscard]] std::vector<std::byte> concat_with_sizes(
    const std::vector<std::vector<std::byte>>& parts);

/// Inverse of concat_with_sizes. Every header field is validated against the
/// actual buffer length before any copy, so a malformed or truncated payload
/// throws std::runtime_error instead of reading out of bounds.
template <typename T>
[[nodiscard]] std::vector<std::vector<T>> split_concatenated(std::span<const std::byte> bytes) {
  if (bytes.size() < sizeof(std::uint64_t))
    throw std::runtime_error("svmmpi: malformed allgatherv payload (missing count)");
  std::uint64_t count = 0;
  std::memcpy(&count, bytes.data(), sizeof(count));
  std::size_t offset = sizeof(std::uint64_t);
  if (count > (bytes.size() - offset) / sizeof(std::uint64_t))
    throw std::runtime_error("svmmpi: malformed allgatherv payload (count exceeds buffer)");
  std::vector<std::uint64_t> sizes(count);
  if (count > 0)
    std::memcpy(sizes.data(), bytes.data() + offset, count * sizeof(std::uint64_t));
  offset += count * sizeof(std::uint64_t);
  std::vector<std::vector<T>> result(count);
  for (std::size_t r = 0; r < count; ++r) {
    if (sizes[r] > bytes.size() - offset)
      throw std::runtime_error("svmmpi: malformed allgatherv payload (truncated part)");
    result[r] = from_bytes<T>(bytes.subspan(offset, sizes[r]));
    offset += sizes[r];
  }
  return result;
}

}  // namespace detail

class Comm {
 public:
  Comm(World* world, std::shared_ptr<const std::vector<int>> group, int rank, int context_id)
      : world_(world), group_(std::move(group)), rank_(rank), context_id_(context_id) {}

  [[nodiscard]] int rank() const noexcept { return rank_; }
  [[nodiscard]] int size() const noexcept { return static_cast<int>(group_->size()); }
  [[nodiscard]] World& world() const noexcept { return *world_; }
  /// This communicator's collective-context id; the handle the scheduler's
  /// watchdog passes to World::cancel_context to interrupt a stuck job.
  [[nodiscard]] int context_id() const noexcept { return context_id_; }
  /// Sorted world ranks of this comm's members (ascending iff the comm was
  /// built by split_subset/shrink; world order for the world comm).
  [[nodiscard]] const std::vector<int>& group() const noexcept { return *group_; }
  [[nodiscard]] int world_rank_of(int comm_rank) const { return (*group_)[comm_rank]; }
  /// Inverse of world_rank_of: this comm's rank holding `world_rank`, or -1
  /// if that world rank is not a member of this communicator.
  [[nodiscard]] int comm_rank_of_world(int world_rank) const;

  // --- point to point ----------------------------------------------------

  template <typename T>
  void send(std::span<const T> data, int destination, int tag = 0) {
    send_bytes(detail::to_bytes(data), destination, tag);
  }

  template <typename T>
  void send_value(const T& value, int destination, int tag = 0) {
    send(std::span<const T>(&value, 1), destination, tag);
  }

  /// Blocking receive; returns the payload. `actual_source` (optional)
  /// receives the sender's rank, useful with kAnySource.
  template <typename T>
  [[nodiscard]] std::vector<T> recv(int source, int tag = 0, int* actual_source = nullptr) {
    return detail::from_bytes<T>(recv_bytes(source, tag, actual_source));
  }

  template <typename T>
  [[nodiscard]] T recv_value(int source, int tag = 0) {
    auto v = recv<T>(source, tag);
    if (v.size() != 1) throw std::runtime_error("svmmpi: recv_value expected one element");
    return v[0];
  }

  /// Deadline-bounded receive from a specific source: waits at most
  /// `deadline_s` seconds and returns false on expiry instead of throwing —
  /// a miss is an expected outcome on the serving engine's retry/hedge path,
  /// so there is no grace poll and no TimeoutError. Still throws RankLost if
  /// the awaited source is (or becomes) dead while waiting, and
  /// ContextCancelled if this comm's context is cancelled. `source` must name
  /// a specific rank (kAnySource is refused: after any member death the
  /// wildcard interrupt would fire on every wait).
  template <typename T>
  [[nodiscard]] bool recv_deadline(std::vector<T>& out, int source, int tag, double deadline_s) {
    std::vector<std::byte> bytes;
    if (!recv_bytes_deadline(bytes, source, tag, deadline_s)) return false;
    out = detail::from_bytes<T>(bytes);
    return true;
  }

  /// Buffered eager send: the Request is complete on return.
  template <typename T>
  [[nodiscard]] Request isend(std::span<const T> data, int destination, int tag = 0) {
    send(data, destination, tag);
    return Request{};
  }

  /// Deferred receive: the payload lands in `out` when the Request is waited.
  template <typename T>
  [[nodiscard]] Request irecv(std::vector<T>& out, int source, int tag = 0) {
    return Request([this, &out, source, tag] { out = recv<T>(source, tag); });
  }

  /// Deferred receive into a reusable buffer: the payload is copied into
  /// `out`, reusing its capacity — steady-state ring steps allocate nothing
  /// on the receive side (the double-buffered reconstruction pipeline).
  [[nodiscard]] Request irecv_into(std::vector<std::byte>& out, int source, int tag = 0) {
    return Request([this, &out, source, tag] { recv_bytes_into(out, source, tag, nullptr); });
  }

  static void wait_all(std::span<Request> requests) {
    for (Request& r : requests) r.wait();
  }

  /// Combined send+receive, the ring-exchange building block (Algorithm 3).
  template <typename T>
  [[nodiscard]] std::vector<T> sendrecv(std::span<const T> outgoing, int destination, int source,
                                        int tag = 0) {
    Request s = isend(outgoing, destination, tag);
    std::vector<T> incoming = recv<T>(source, tag);
    s.wait();
    return incoming;
  }

  /// Buffer-reusing sendrecv: the incoming payload is copied into `incoming`
  /// (capacity reused) instead of a freshly allocated vector per exchange.
  void sendrecv_into(std::span<const std::byte> outgoing, std::vector<std::byte>& incoming,
                     int destination, int source, int tag = 0) {
    Request s = isend(outgoing, destination, tag);
    recv_bytes_into(incoming, source, tag, nullptr);
    s.wait();
  }

  // --- collectives ---------------------------------------------------------

  void barrier();

  /// Broadcast; non-root contents are replaced (size included).
  template <typename T>
  void bcast(std::vector<T>& data, int root) {
    std::vector<std::byte> mine =
        rank_ == root ? detail::to_bytes(std::span<const T>(data)) : std::vector<std::byte>{};
    auto out = collective(
        std::move(mine),
        [root](const std::vector<std::vector<std::byte>>& parts) { return parts[root]; },
        /*modeled=*/ModelAs::tree, data.size() * sizeof(T), "bcast");
    data = detail::from_bytes<T>(out);
  }

  template <typename T>
  [[nodiscard]] T bcast_value(T value, int root) {
    std::vector<T> one{value};
    bcast(one, root);
    return one[0];
  }

  /// Element-wise allreduce over equal-length vectors.
  template <typename T>
  [[nodiscard]] std::vector<T> allreduce(std::span<const T> data, ReduceOp op) {
    auto out = collective(
        detail::to_bytes(data),
        [op](const std::vector<std::vector<std::byte>>& parts) {
          std::vector<T> acc = detail::from_bytes<T>(parts[0]);
          for (std::size_t r = 1; r < parts.size(); ++r) {
            const std::vector<T> operand = detail::from_bytes<T>(parts[r]);
            if (operand.size() != acc.size())
              throw std::runtime_error("svmmpi: allreduce length mismatch across ranks");
            detail::apply_reduce<T>(op, acc, operand);
          }
          return detail::to_bytes(std::span<const T>(acc));
        },
        ModelAs::tree, data.size_bytes(), "allreduce");
    return detail::from_bytes<T>(out);
  }

  template <typename T>
  [[nodiscard]] T allreduce(T value, ReduceOp op) {
    return allreduce(std::span<const T>(&value, 1), op)[0];
  }

  /// MINLOC: smallest value wins; value ties break toward the smaller index.
  [[nodiscard]] DoubleInt allreduce_minloc(DoubleInt mine);
  /// MAXLOC: largest value wins; value ties break toward the smaller index.
  [[nodiscard]] DoubleInt allreduce_maxloc(DoubleInt mine);

  /// Gather one value from every rank; result indexed by rank.
  template <typename T>
  [[nodiscard]] std::vector<T> allgather(const T& value) {
    auto per_rank = allgatherv(std::span<const T>(&value, 1));
    std::vector<T> flat(per_rank.size());
    for (std::size_t r = 0; r < per_rank.size(); ++r) {
      if (per_rank[r].size() != 1)
        throw std::runtime_error("svmmpi: allgather expected one element per rank");
      flat[r] = per_rank[r][0];
    }
    return flat;
  }

  /// Variable-length allgather; result[r] is rank r's contribution.
  template <typename T>
  [[nodiscard]] std::vector<std::vector<T>> allgatherv(std::span<const T> mine) {
    auto out = collective(detail::to_bytes(mine), detail::concat_with_sizes, ModelAs::ring,
                          mine.size_bytes(), "allgatherv");
    return detail::split_concatenated<T>(out);
  }

  /// Rooted reduction: every rank contributes; only `root` receives the
  /// combined vector (others get their input back unchanged, like MPI's
  /// undefined non-root recvbuf — do not rely on it).
  template <typename T>
  [[nodiscard]] std::vector<T> reduce(std::span<const T> data, ReduceOp op, int root) {
    // Executed as an allreduce on the shared-memory substrate; modeled as
    // the tree reduction a real MPI would run.
    std::vector<T> combined = allreduce(data, op);
    return rank_ == root ? combined : std::vector<T>(data.begin(), data.end());
  }

  /// Gather to root; result[r] is rank r's contribution (root only; other
  /// ranks receive an empty vector).
  template <typename T>
  [[nodiscard]] std::vector<std::vector<T>> gather(std::span<const T> mine, int root) {
    auto all = allgatherv(mine);
    if (rank_ != root) all.clear();
    return all;
  }

  /// Scatter from root: rank r receives parts[r]. Non-root ranks pass any
  /// (ignored) `parts`; the root's vector must have one entry per rank.
  template <typename T>
  [[nodiscard]] std::vector<T> scatter(const std::vector<std::vector<T>>& parts, int root) {
    if (rank_ == root && parts.size() != static_cast<std::size_t>(size()))
      throw std::invalid_argument("svmmpi: scatter needs one part per rank");
    std::vector<std::byte> packed;
    if (rank_ == root) {
      std::vector<std::vector<std::byte>> byte_parts(parts.size());
      for (std::size_t r = 0; r < parts.size(); ++r)
        byte_parts[r] = detail::to_bytes(std::span<const T>(parts[r]));
      packed = detail::concat_with_sizes(byte_parts);
    }
    bcast(packed, root);  // modeled as a tree distribution
    return detail::split_concatenated<T>(packed)[rank_];
  }

  /// Splits the communicator; ranks passing the same color form a new comm,
  /// ordered by (key, parent rank). Collective over this comm.
  [[nodiscard]] Comm split(int color, int key) const;

  /// Dispatcher-coordinated split: builds the communicator over the given
  /// (sorted, ascending) subset of this comm's member world ranks, using a
  /// collective context the dispatcher pre-allocated with
  /// World::create_context(world_ranks.size()). Unlike split(), this is NOT
  /// collective over the parent — only the subset's members call it, each
  /// deriving the identical group locally (the same trick shrink() uses).
  /// This is the rank-allocation primitive of the multi-tenant scheduler:
  /// ranks busy inside other jobs never participate, and a fresh context per
  /// job attempt isolates the attempt's traffic from any stale messages a
  /// previous attempt left behind. The caller's world rank must be a member.
  [[nodiscard]] Comm split_subset(const std::vector<int>& world_ranks, int context_id) const;

  // --- elastic recovery (ULFM-style) -------------------------------------

  /// Sorted world ranks of this comm's members currently marked failed.
  [[nodiscard]] std::vector<int> dead_members() const;

  /// Fault-tolerant agreement (MPI_Comm_agree): returns the sorted union of
  /// every survivor's `values` plus the world ranks of every member known
  /// dead by completion. Completes even while members are dying — a member's
  /// arrival requirement is waived the moment it is marked failed. All
  /// survivors receive the identical result. Must be called by every
  /// surviving member.
  [[nodiscard]] std::vector<int> agree(const std::vector<int>& values);

  /// ULFM MPI_Comm_shrink: survivors agree on the dead set and return a
  /// compacted communicator over the survivors, ranks renumbered 0..s-1 in
  /// ascending world-rank order. The new collective context is derived
  /// deterministically from the surviving group, so no post-agreement
  /// communication is needed. Must be called by every surviving member.
  /// `context_salt` keys the derived context (see World::context_for_group):
  /// the scheduler passes a per-attempt-per-generation salt so concurrent
  /// jobs shrinking onto a rank set some earlier job once occupied get a
  /// pristine context instead of one the earlier tenant may have abandoned
  /// mid-collective. Single-job callers keep the default.
  [[nodiscard]] Comm shrink(std::uint64_t context_salt = 0);

  // --- overlap accounting --------------------------------------------------

  /// This rank's traffic counters; snapshot modeled_seconds around a
  /// pipelined step to meter the step's modeled communication cost.
  [[nodiscard]] const TrafficStats& traffic() const {
    return world_->stats((*group_)[rank_]);
  }

  /// Applies the pipelined charging rule to one compute-overlapped step: the
  /// step's transfers were posted before `compute_s` seconds of local work,
  /// so of the `comm_s` modeled network seconds already charged for them,
  /// min(compute, comm) was hidden behind the compute. That portion moves
  /// from modeled_seconds into overlapped_seconds, leaving the step charged
  /// max(compute, comm) overall (compute wall time + the uncovered network
  /// remainder). Returns the credited (hidden) seconds.
  double credit_overlap(double compute_s, double comm_s);

 private:
  enum class ModelAs { tree, ring, none };

  void send_bytes(std::vector<std::byte> payload, int destination, int tag);
  [[nodiscard]] std::vector<std::byte> recv_bytes(int source, int tag, int* actual_source);
  /// recv_bytes variant that copies the payload into `out` (capacity reuse).
  void recv_bytes_into(std::vector<std::byte>& out, int source, int tag, int* actual_source);
  /// Shared receive core: validated, fault-checked, interrupt-aware pop.
  [[nodiscard]] Message recv_message(int source, int tag);
  /// Deadline-bounded receive core behind recv_deadline<T>.
  [[nodiscard]] bool recv_bytes_deadline(std::vector<std::byte>& out, int source, int tag,
                                         double deadline_s);
  /// `label` names the collective on the trace timeline (string literal).
  [[nodiscard]] std::vector<std::byte> collective(std::vector<std::byte> contribution,
                                                  const CollectiveContext::Combine& combine,
                                                  ModelAs model_as, std::size_t payload_bytes,
                                                  const char* label);

  /// Consults the world's FaultInjector (if any) before a communication op;
  /// may sleep (delay) or throw RankFailed (crash). Returns true when the op
  /// must be suppressed (dropped send).
  [[nodiscard]] bool faulted_op(FaultSite site);

  /// Throws ContextCancelled when this comm's context has been cancelled;
  /// called at every communication-op entry so a member mid-compute stops at
  /// its next op, and from blocked-wait interrupt paths.
  void check_cancelled() const;

  /// Raises the RankLost verdict for the currently-dead members.
  [[noreturn]] void throw_rank_lost() const;
  /// Deadline-driven detection: a timeout may race the failing rank's own
  /// RankFailed by a hair, so grace-poll the failure registry briefly; if a
  /// member death explains the stall, convert to RankLost, else rethrow.
  [[noreturn]] void convert_timeout(const TimeoutError& timeout) const;

  World* world_;
  std::shared_ptr<const std::vector<int>> group_;
  int rank_;
  int context_id_;
};

}  // namespace svmmpi
