#include "mpisim/fault.hpp"

#include "util/rng.hpp"

namespace svmmpi {

FaultPlan FaultPlan::chaos(std::uint64_t seed, int num_ranks, std::uint64_t horizon, int drops,
                           int delays, bool with_crash, double max_delay_s) {
  svmutil::Rng rng(seed);
  FaultPlan plan;
  if (num_ranks <= 0 || horizon == 0) return plan;
  auto pick_rank = [&] { return static_cast<int>(rng.uniform_index(num_ranks)); };
  auto pick_op = [&] { return 1 + rng.uniform_index(horizon); };
  for (int i = 0; i < drops; ++i) plan.drop(pick_rank(), pick_op());
  for (int i = 0; i < delays; ++i)
    plan.delay(pick_rank(), pick_op(), rng.uniform(0.0, max_delay_s));
  if (with_crash) plan.crash(pick_rank(), pick_op());
  return plan;
}

FaultInjector::FaultInjector(FaultPlan plan)
    : events_(plan.events()), consumed_(events_.size(), false) {}

FaultAction FaultInjector::on_op(int rank, FaultSite site) {
  std::lock_guard lock(mutex_);
  if (rank >= static_cast<int>(op_counts_.size())) op_counts_.resize(rank + 1, 0);
  const std::uint64_t op = ++op_counts_[rank];

  FaultAction action;
  // Crashes take precedence over drop/delay scheduled at the same op; at
  // most one drop and one delay fire per op (further eligible events wait
  // for the rank's next matching op, keeping replay deterministic).
  for (std::size_t e = 0; e < events_.size(); ++e) {
    if (consumed_[e]) continue;
    const FaultEvent& ev = events_[e];
    if (ev.rank != rank || ev.op > op || !site_matches(ev.site, site)) continue;
    if (ev.kind == FaultKind::crash || ev.kind == FaultKind::die) {
      consumed_[e] = true;
      ++fired_;
      throw RankFailed(rank, op, /*is_permanent=*/ev.kind == FaultKind::die);
    }
  }
  for (std::size_t e = 0; e < events_.size(); ++e) {
    if (consumed_[e]) continue;
    const FaultEvent& ev = events_[e];
    if (ev.rank != rank || ev.op > op || !site_matches(ev.site, site)) continue;
    if (ev.kind == FaultKind::drop && !action.drop) {
      action.drop = true;
      consumed_[e] = true;
      ++fired_;
    } else if (ev.kind == FaultKind::delay && action.delay_s == 0.0) {
      action.delay_s = ev.delay_s;
      consumed_[e] = true;
      ++fired_;
    }
  }
  return action;
}

std::uint64_t FaultInjector::ops(int rank) const {
  std::lock_guard lock(mutex_);
  if (rank < 0 || rank >= static_cast<int>(op_counts_.size())) return 0;
  return op_counts_[rank];
}

std::size_t FaultInjector::fired() const {
  std::lock_guard lock(mutex_);
  return fired_;
}

std::size_t FaultInjector::pending() const {
  std::lock_guard lock(mutex_);
  return events_.size() - fired_;
}

}  // namespace svmmpi
