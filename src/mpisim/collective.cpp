#include "mpisim/collective.hpp"

#include <chrono>

#include "mpisim/fault.hpp"
#include "mpisim/mailbox.hpp"

namespace svmmpi {

namespace {
/// Collectives have no (source, tag); TimeoutError carries this sentinel.
constexpr int kCollectivePeer = -2;
}  // namespace

CollectiveContext::CollectiveContext(int size, double timeout_s)
    : size_(size), timeout_s_(timeout_s), contributions_(size) {}

template <typename Predicate>
void CollectiveContext::wait_or_timeout(std::unique_lock<std::mutex>& lock, int rank,
                                        Predicate ready, const char* what_op) {
  if (timeout_s_ <= 0.0) {
    turnstile_.wait(lock, ready);
    return;
  }
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                            std::chrono::duration<double>(timeout_s_));
  if (!turnstile_.wait_until(lock, deadline, ready))
    throw TimeoutError(rank, kCollectivePeer, kCollectivePeer, timeout_s_, what_op);
}

std::vector<std::byte> CollectiveContext::run(int rank, std::vector<std::byte> contribution,
                                              const Combine& combine) {
  std::unique_lock lock(mutex_);
  // Wait for the previous round to fully drain before contributing.
  wait_or_timeout(
      lock, rank, [&] { return aborted_ || phase_ == Phase::collecting; },
      "collective rendezvous (previous round drain)");
  if (aborted_) throw WorldAborted{};

  contributions_[rank] = std::move(contribution);
  ++arrived_;
  if (arrived_ == size_) {
    result_ = combine(contributions_);
    phase_ = Phase::distributing;
    turnstile_.notify_all();
  } else {
    wait_or_timeout(
        lock, rank, [&] { return aborted_ || phase_ == Phase::distributing; },
        "collective rendezvous");
    if (aborted_) throw WorldAborted{};
  }

  std::vector<std::byte> out = result_;
  ++departed_;
  if (departed_ == size_) {
    arrived_ = 0;
    departed_ = 0;
    for (auto& c : contributions_) c.clear();
    result_.clear();
    phase_ = Phase::collecting;
    turnstile_.notify_all();
  }
  return out;
}

void CollectiveContext::abort() {
  {
    std::lock_guard lock(mutex_);
    aborted_ = true;
  }
  turnstile_.notify_all();
}

}  // namespace svmmpi
