#include "mpisim/collective.hpp"

#include "mpisim/mailbox.hpp"

namespace svmmpi {

CollectiveContext::CollectiveContext(int size) : size_(size), contributions_(size) {}

std::vector<std::byte> CollectiveContext::run(int rank, std::vector<std::byte> contribution,
                                              const Combine& combine) {
  std::unique_lock lock(mutex_);
  // Wait for the previous round to fully drain before contributing.
  turnstile_.wait(lock, [&] { return aborted_ || phase_ == Phase::collecting; });
  if (aborted_) throw WorldAborted{};

  contributions_[rank] = std::move(contribution);
  ++arrived_;
  if (arrived_ == size_) {
    result_ = combine(contributions_);
    phase_ = Phase::distributing;
    turnstile_.notify_all();
  } else {
    turnstile_.wait(lock, [&] { return aborted_ || phase_ == Phase::distributing; });
    if (aborted_) throw WorldAborted{};
  }

  std::vector<std::byte> out = result_;
  ++departed_;
  if (departed_ == size_) {
    arrived_ = 0;
    departed_ = 0;
    for (auto& c : contributions_) c.clear();
    result_.clear();
    phase_ = Phase::collecting;
    turnstile_.notify_all();
  }
  return out;
}

void CollectiveContext::abort() {
  {
    std::lock_guard lock(mutex_);
    aborted_ = true;
  }
  turnstile_.notify_all();
}

}  // namespace svmmpi
