#include "mpisim/collective.hpp"

#include <algorithm>
#include <chrono>

#include "mpisim/fault.hpp"
#include "mpisim/mailbox.hpp"
#include "mpisim/world.hpp"
#include "obs/trace.hpp"

namespace svmmpi {

namespace {
/// Collectives have no (source, tag); TimeoutError carries this sentinel.
constexpr int kCollectivePeer = -2;
}  // namespace

CollectiveContext::CollectiveContext(int size, double timeout_s)
    : size_(size),
      timeout_s_(timeout_s),
      contributions_(size),
      agree_arrived_(size, 0),
      agree_values_(size) {}

template <typename Predicate>
void CollectiveContext::wait_or_timeout(std::unique_lock<std::mutex>& lock, int rank,
                                        Predicate ready, const char* what_op) {
  if (timeout_s_ <= 0.0) {
    turnstile_.wait(lock, ready);
    return;
  }
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                            std::chrono::duration<double>(timeout_s_));
  if (!turnstile_.wait_until(lock, deadline, ready))
    throw TimeoutError(rank, kCollectivePeer, kCollectivePeer, timeout_s_, what_op);
}

std::vector<std::byte> CollectiveContext::run(int rank, std::vector<std::byte> contribution,
                                              const Combine& combine,
                                              const std::function<bool()>& interrupt) {
  std::unique_lock lock(mutex_);
  bool interrupted = false;
  const auto check_interrupt = [&] { return interrupted = interrupt && interrupt(); };
  // Wait for the previous round to fully drain before contributing.
  wait_or_timeout(
      lock, rank,
      [&] { return aborted_ || phase_ == Phase::collecting || check_interrupt(); },
      "collective rendezvous (previous round drain)");
  if (aborted_) throw WorldAborted{};
  if (interrupted) throw RendezvousInterrupted{};

  contributions_[rank] = std::move(contribution);
  // Causal flow for the round, emitted at the deposit point with the mutex
  // held (so the per-round id is race-free) and inside the caller's open
  // collective span (so the events bind to it). The FIRST arriver starts the
  // flow; every later arriver finishes it at its own arrival time — the
  // analyzer recovers each member's arrival, and the max-timestamp member is
  // the round's straggler. Size-1 communicators skip the flow entirely: a
  // start could never match a finish on another rank.
  if (size_ > 1 && svmobs::trace_enabled()) {
    if (arrived_ == 0) {
      round_flow_id_ = acquire_flow_id();
      svmobs::trace_flow_start("collective_round", "flow", round_flow_id_);
    } else {
      svmobs::trace_flow_finish("collective_round", "flow", round_flow_id_);
    }
  }
  ++arrived_;
  if (arrived_ == size_) {
    result_ = combine(contributions_);
    phase_ = Phase::distributing;
    turnstile_.notify_all();
  } else {
    wait_or_timeout(
        lock, rank,
        [&] { return aborted_ || phase_ == Phase::distributing || check_interrupt(); },
        "collective rendezvous");
    if (aborted_) throw WorldAborted{};
    // A completed round always wins over the interrupt: if the member died
    // after contributing, this round's result is still well-defined.
    if (interrupted && phase_ != Phase::distributing) throw RendezvousInterrupted{};
  }

  std::vector<std::byte> out = result_;
  ++departed_;
  if (departed_ == size_) {
    arrived_ = 0;
    departed_ = 0;
    for (auto& c : contributions_) c.clear();
    result_.clear();
    phase_ = Phase::collecting;
    turnstile_.notify_all();
  }
  return out;
}

std::vector<int> CollectiveContext::agree(int rank, const std::vector<int>& values,
                                          const std::function<std::vector<int>()>& dead_local,
                                          const std::function<std::vector<int>()>& late_values) {
  std::unique_lock lock(mutex_);
  wait_or_timeout(
      lock, rank, [&] { return aborted_ || agree_phase_ == Phase::collecting; },
      "agreement (previous round drain)");
  if (aborted_) throw WorldAborted{};

  agree_arrived_[rank] = 1;
  agree_values_[rank] = values;

  // Complete once every rank has contributed or is known dead. The dead set
  // is re-evaluated on every wake (World::mark_failed pokes this context), so
  // a second failure during the agreement cannot wedge it.
  const auto complete = [&] {
    if (aborted_ || agree_phase_ == Phase::distributing) return true;
    const std::vector<int> dead = dead_local();
    for (int r = 0; r < size_; ++r) {
      if (agree_arrived_[r]) continue;
      if (std::find(dead.begin(), dead.end(), r) == dead.end()) return false;
    }
    return true;
  };
  wait_or_timeout(lock, rank, complete, "agreement rendezvous");
  if (aborted_) throw WorldAborted{};

  if (agree_phase_ != Phase::distributing) {
    // First waker that observes completion finalizes the round for everyone.
    std::vector<int> united;
    for (int r = 0; r < size_; ++r)
      united.insert(united.end(), agree_values_[r].begin(), agree_values_[r].end());
    const std::vector<int> late = late_values();
    united.insert(united.end(), late.begin(), late.end());
    std::sort(united.begin(), united.end());
    united.erase(std::unique(united.begin(), united.end()), united.end());
    agree_result_ = std::move(united);
    agree_phase_ = Phase::distributing;
    turnstile_.notify_all();
  }

  std::vector<int> out = agree_result_;
  ++agree_departed_;
  int contributed = 0;
  for (int r = 0; r < size_; ++r) contributed += agree_arrived_[r] ? 1 : 0;
  if (agree_departed_ == contributed) {
    std::fill(agree_arrived_.begin(), agree_arrived_.end(), 0);
    for (auto& v : agree_values_) v.clear();
    agree_result_.clear();
    agree_departed_ = 0;
    agree_phase_ = Phase::collecting;
    turnstile_.notify_all();
  }
  return out;
}

void CollectiveContext::abort() {
  {
    std::lock_guard lock(mutex_);
    aborted_ = true;
  }
  turnstile_.notify_all();
}

void CollectiveContext::poke() {
  { std::lock_guard lock(mutex_); }
  turnstile_.notify_all();
}

}  // namespace svmmpi
