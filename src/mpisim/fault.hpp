// Deterministic fault injection for the message-passing substrate. A
// FaultPlan is a replayable schedule of faults — message delays, message
// drops and rank crashes — keyed by (rank, rank-local communication-op
// count). Because each rank's thread issues its communication operations
// sequentially, the op counter is deterministic regardless of thread
// scheduling, so a seeded plan reproduces the exact same failure schedule
// on every run. A FaultInjector consumes a plan: Comm consults it before
// every send / receive / collective; the injector either lets the op
// proceed, sleeps (delay), suppresses delivery (drop) or throws RankFailed
// (crash). An injector outlives a single World so a retry driver can
// relaunch the SPMD region without re-firing already-consumed faults.
#pragma once

#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

namespace svmmpi {

/// Thrown at the faulted rank when a FaultPlan crash/die event fires. Under
/// the classic launcher (run_spmd) the world is aborted (siblings observe
/// WorldAborted) and this is rethrown to the caller, modelling a process
/// failure on a real cluster. The elastic launcher (run_spmd_elastic) instead
/// records the death in the World so surviving ranks can agree/shrink and
/// keep going. `permanent` distinguishes a transient crash (the process can
/// be relaunched with its rank's spilled state) from a permanent rank loss
/// (the node is gone; its memory — including memory-only checkpoints — is
/// unrecoverable except through a surviving buddy replica).
struct RankFailed : std::runtime_error {
  RankFailed(int failed_rank, std::uint64_t at_op, bool is_permanent = false)
      : std::runtime_error("svmmpi: rank " + std::to_string(failed_rank) +
                           (is_permanent ? " lost (injected permanent failure at op "
                                         : " failed (injected crash at op ") +
                           std::to_string(at_op) + ")"),
        rank(failed_rank),
        op(at_op),
        permanent(is_permanent) {}

  int rank;
  std::uint64_t op;
  bool permanent;
};

/// The recoverable verdict of deadline-driven failure detection: a surviving
/// rank's blocked operation was interrupted (or timed out) and the World has
/// one or more ranks marked failed. Where a fatal TimeoutError/WorldAborted
/// says "something is wrong", RankLost says "these specific ranks are dead;
/// the survivors are consistent and may agree/shrink and continue". Thrown
/// by Comm on behalf of survivors, never by the failed rank itself.
struct RankLost : std::runtime_error {
  RankLost(std::vector<int> dead_ranks, bool any_permanent)
      : std::runtime_error("svmmpi: rank loss detected (" +
                           [](const std::vector<int>& d) {
                             std::string s;
                             for (const int r : d)
                               s += (s.empty() ? "rank " : ", ") + std::to_string(r);
                             return s;
                           }(dead_ranks) +
                           "); survivors may shrink the world"),
        dead(std::move(dead_ranks)),
        permanent(any_permanent) {}

  std::vector<int> dead;  ///< world ranks, ascending
  bool permanent;         ///< true when any death was a permanent loss
};

/// Thrown from a communication op whose communicator context has been
/// cancelled (World::cancel_context). Cancellation is the scheduler's hang
/// watchdog: a dispatcher that decides a job is stuck cancels the job
/// communicator's context, every member's blocked (or next) operation
/// unwinds with this verdict, and the member threads return to the rank
/// pool instead of wedging it. Like RankLost this is a per-communicator
/// verdict — members of other communicators never observe it.
struct ContextCancelled : std::runtime_error {
  explicit ContextCancelled(int cancelled_context, int at_rank)
      : std::runtime_error("svmmpi: communicator context " +
                           std::to_string(cancelled_context) +
                           " cancelled (watchdog) at rank " + std::to_string(at_rank)),
        context(cancelled_context),
        rank(at_rank) {}

  int context;
  int rank;  ///< world rank that observed the cancellation
};

/// Thrown instead of deadlocking when a blocking receive or collective
/// rendezvous exceeds the configured deadline (NetModel::timeout_s). Names
/// the stuck (rank, source, tag); collectives use source = tag = -2.
struct TimeoutError : std::runtime_error {
  TimeoutError(int stuck_rank, int wanted_source, int wanted_tag, double after_s,
               const std::string& what_op)
      : std::runtime_error("svmmpi: " + what_op + " timed out after " +
                           std::to_string(after_s) + "s at rank " +
                           std::to_string(stuck_rank) + " (source=" +
                           std::to_string(wanted_source) + ", tag=" + std::to_string(wanted_tag) +
                           ")"),
        rank(stuck_rank),
        source(wanted_source),
        tag(wanted_tag),
        deadline_s(after_s) {}

  int rank;
  int source;
  int tag;
  double deadline_s;
};

/// Operation class a fault event is restricted to. `any` matches every
/// communication op; drops only ever apply to sends (a dropped receive has
/// no meaning — the message simply never arrives).
enum class FaultSite : std::uint8_t { any, send, recv, collective };

enum class FaultKind : std::uint8_t { delay, drop, crash, die };

struct FaultEvent {
  FaultKind kind = FaultKind::delay;
  FaultSite site = FaultSite::any;
  int rank = -1;            ///< world rank the fault applies to
  std::uint64_t op = 0;     ///< fires at the first eligible op with counter >= op
  double delay_s = 0.0;     ///< delay events: wall-clock sleep duration
};

/// A replayable failure schedule. Build explicitly with crash()/drop()/
/// delay(), or generate a seeded random schedule with chaos(). Plans are
/// value types; the same plan always produces the same execution.
class FaultPlan {
 public:
  FaultPlan& crash(int rank, std::uint64_t op, FaultSite site = FaultSite::any) {
    events_.push_back({FaultKind::crash, site, rank, op, 0.0});
    return *this;
  }
  /// Permanent rank loss: like crash(), but RankFailed::permanent is set —
  /// the rank's process memory (and any memory-only checkpoint it held) is
  /// gone for good; only a buddy replica or a disk spill can recover it.
  FaultPlan& die(int rank, std::uint64_t op, FaultSite site = FaultSite::any) {
    events_.push_back({FaultKind::die, site, rank, op, 0.0});
    return *this;
  }
  FaultPlan& drop(int rank, std::uint64_t op) {
    events_.push_back({FaultKind::drop, FaultSite::send, rank, op, 0.0});
    return *this;
  }
  FaultPlan& delay(int rank, std::uint64_t op, double seconds,
                   FaultSite site = FaultSite::any) {
    events_.push_back({FaultKind::delay, site, rank, op, seconds});
    return *this;
  }

  /// Seeded random schedule over `num_ranks` ranks and op indices in
  /// [1, horizon]: `drops` dropped sends, `delays` short delays (up to
  /// `max_delay_s`), and at most one crash when `with_crash` is set. Same
  /// seed => same schedule, byte for byte.
  [[nodiscard]] static FaultPlan chaos(std::uint64_t seed, int num_ranks,
                                       std::uint64_t horizon, int drops, int delays,
                                       bool with_crash, double max_delay_s = 2e-3);

  [[nodiscard]] const std::vector<FaultEvent>& events() const noexcept { return events_; }
  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }

 private:
  std::vector<FaultEvent> events_;
};

/// What the caller of FaultInjector::on_op must do to the current op.
struct FaultAction {
  bool drop = false;      ///< sends only: swallow the message
  double delay_s = 0.0;   ///< sleep this long before proceeding
};

/// Consumes a FaultPlan. Thread-safe; shared by all rank threads of a World
/// and across World relaunches (each event fires exactly once in the
/// injector's lifetime, so a retry driver does not replay consumed faults).
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  /// Advances `rank`'s op counter and returns the action for this op.
  /// Throws RankFailed if a crash event fires. A rank whose crash already
  /// fired keeps counting ops normally on relaunch.
  [[nodiscard]] FaultAction on_op(int rank, FaultSite site);

  /// Rank-local communication ops observed so far (stable across relaunches).
  [[nodiscard]] std::uint64_t ops(int rank) const;
  /// Events that have fired so far.
  [[nodiscard]] std::size_t fired() const;
  /// Events still pending.
  [[nodiscard]] std::size_t pending() const;

 private:
  [[nodiscard]] static bool site_matches(FaultSite event_site, FaultSite op_site) noexcept {
    return event_site == FaultSite::any || event_site == op_site;
  }

  mutable std::mutex mutex_;
  std::vector<FaultEvent> events_;
  std::vector<bool> consumed_;
  std::vector<std::uint64_t> op_counts_;  ///< indexed by rank; grown on demand
  std::size_t fired_ = 0;
};

}  // namespace svmmpi
