// SPMD launcher: runs `body(comm)` on p rank-threads over a fresh World and
// joins. If any rank throws, the world is aborted (unblocking siblings) and
// the first exception is rethrown to the caller.
#pragma once

#include <functional>

#include "mpisim/comm.hpp"
#include "mpisim/world.hpp"

namespace svmmpi {

/// Runs the SPMD region and returns the world's aggregate traffic stats.
/// `world_out`, if non-null, receives per-rank stats access via the World
/// kept alive for the duration of the call only — copy what you need.
TrafficStats run_spmd(int num_ranks, const std::function<void(Comm&)>& body,
                      NetModel model = {},
                      const std::function<void(const World&)>& inspect = nullptr);

}  // namespace svmmpi
