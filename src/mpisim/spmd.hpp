// SPMD launcher: runs `body(comm)` on p rank-threads over a fresh World and
// joins. If any rank throws, the world is aborted (unblocking siblings) and
// the first exception is rethrown to the caller.
#pragma once

#include <functional>

#include "mpisim/comm.hpp"
#include "mpisim/world.hpp"

namespace svmmpi {

/// Runs the SPMD region and returns the world's aggregate traffic stats.
/// `inspect`, if non-null, receives per-rank stats access via the World
/// kept alive for the duration of the call only — copy what you need.
/// `injector`, if non-null, injects the faults of its FaultPlan into every
/// communication op (see fault.hpp); a crash surfaces as RankFailed and a
/// conversation stalled past model.timeout_s as TimeoutError, both rethrown
/// to the caller — a retry driver can relaunch with the same injector.
TrafficStats run_spmd(int num_ranks, const std::function<void(Comm&)>& body,
                      NetModel model = {},
                      const std::function<void(const World&)>& inspect = nullptr,
                      FaultInjector* injector = nullptr);

/// What happened to the world during an elastic SPMD region.
struct ElasticReport {
  TrafficStats stats;
  std::vector<int> failed_ranks;  ///< world ranks that died, ascending
  bool any_permanent = false;     ///< true when any death was permanent
};

/// Elastic SPMD launcher: a rank throwing RankFailed is marked dead in the
/// World (permanent flag preserved) and its thread exits WITHOUT aborting
/// the siblings. Survivors' blocked operations are woken and surface the
/// recoverable RankLost verdict; the body is expected to catch it, call
/// Comm::shrink(), repartition and continue — ranks that do so run to
/// completion on the shrunken communicator. Any other exception (including
/// RankLost escaping an unrecovering body) aborts the world and is rethrown,
/// exactly like run_spmd. Requires model.timeout_s > 0: deadline-driven
/// detection is the backstop when a rank dies outside any rendezvous.
ElasticReport run_spmd_elastic(int num_ranks, const std::function<void(Comm&)>& body,
                               NetModel model = {},
                               const std::function<void(const World&)>& inspect = nullptr,
                               FaultInjector* injector = nullptr);

}  // namespace svmmpi
