// SPMD launcher: runs `body(comm)` on p rank-threads over a fresh World and
// joins. If any rank throws, the world is aborted (unblocking siblings) and
// the first exception is rethrown to the caller.
#pragma once

#include <functional>

#include "mpisim/comm.hpp"
#include "mpisim/world.hpp"

namespace svmmpi {

/// Runs the SPMD region and returns the world's aggregate traffic stats.
/// `inspect`, if non-null, receives per-rank stats access via the World
/// kept alive for the duration of the call only — copy what you need.
/// `injector`, if non-null, injects the faults of its FaultPlan into every
/// communication op (see fault.hpp); a crash surfaces as RankFailed and a
/// conversation stalled past model.timeout_s as TimeoutError, both rethrown
/// to the caller — a retry driver can relaunch with the same injector.
TrafficStats run_spmd(int num_ranks, const std::function<void(Comm&)>& body,
                      NetModel model = {},
                      const std::function<void(const World&)>& inspect = nullptr,
                      FaultInjector* injector = nullptr);

}  // namespace svmmpi
