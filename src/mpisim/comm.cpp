#include "mpisim/comm.hpp"

#include <algorithm>
#include <chrono>
#include <thread>
#include <tuple>

#include "obs/trace.hpp"

namespace svmmpi {

namespace {

// Internal tag space for runtime protocol messages (context distribution
// during split); user tags must stay below this.
constexpr int kSplitContextTag = 1 << 28;

// Counter-track samples are rate-limited: one every kNetCounterStride
// collectives (plus every overlap credit) keeps traced runs readable while
// still plotting modeled vs overlapped network seconds over time.
constexpr std::uint64_t kNetCounterStride = 64;

void trace_net_seconds(const TrafficStats& s) {
  svmobs::trace_counter("net_modeled_s", s.modeled_seconds);
  svmobs::trace_counter("net_overlapped_s", s.overlapped_seconds);
}

}  // namespace

bool Comm::faulted_op(FaultSite site) {
  FaultInjector* injector = world_->injector();
  if (injector == nullptr) return false;
  const FaultAction action = injector->on_op((*group_)[rank_], site);  // may throw RankFailed
  if (action.delay_s > 0.0)
    std::this_thread::sleep_for(std::chrono::duration<double>(action.delay_s));
  return action.drop;
}

void Comm::check_cancelled() const {
  if (world_->context_cancelled(context_id_))
    throw ContextCancelled(context_id_, (*group_)[rank_]);
}

void Comm::send_bytes(std::vector<std::byte> payload, int destination, int tag) {
  if (destination < 0 || destination >= size())
    throw std::out_of_range("svmmpi: send destination out of range");
  check_cancelled();
  const std::size_t bytes = payload.size();
  // A dropped send still charges the sender's stats: the sender cannot tell
  // the message was lost, exactly as on a real network.
  const bool dropped = faulted_op(FaultSite::send);
  if (!dropped) {
    Message m{context_id_, rank_, tag, /*flow_id=*/0, std::move(payload)};
    if (svmobs::trace_enabled()) {
      // Flow-start only for messages actually delivered into a mailbox: a
      // fault-dropped send has no receiver, and an unmatched start would
      // (correctly) fail trace_validate's dangling-flow gate. A re-sent
      // message after a timeout goes through here again and gets a fresh id.
      m.flow_id = acquire_flow_id();
      svmobs::TraceSpan span("send", "net");
      svmobs::trace_flow_start("msg", "flow", m.flow_id);
      world_->mailbox((*group_)[destination]).push(std::move(m));
    } else {
      world_->mailbox((*group_)[destination]).push(std::move(m));
    }
  }
  TrafficStats& s = world_->mutable_stats((*group_)[rank_]);
  ++s.sends;
  s.bytes_sent += bytes;
  s.modeled_seconds += world_->model().pt2pt(bytes);
}

std::vector<int> Comm::dead_members() const {
  std::vector<int> dead;
  if (!world_->any_failed()) return dead;
  for (const int wr : *group_)
    if (world_->is_failed(wr)) dead.push_back(wr);
  std::sort(dead.begin(), dead.end());
  return dead;
}

void Comm::throw_rank_lost() const {
  std::vector<int> dead = dead_members();
  if (dead.empty()) dead = world_->failed_ranks();
  bool permanent = false;
  for (const int wr : dead) permanent = permanent || world_->failure_is_permanent(wr);
  throw RankLost(std::move(dead), permanent);
}

void Comm::convert_timeout(const TimeoutError& timeout) const {
  constexpr int kGracePolls = 40;
  for (int i = 0; i < kGracePolls; ++i) {
    if (!dead_members().empty()) throw_rank_lost();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  throw timeout;
}

Message Comm::recv_message(int source, int tag) {
  if (source != kAnySource && (source < 0 || source >= size()))
    throw std::out_of_range("svmmpi: recv source out of range");
  // Spans the blocking wait (and any fault-injected delay); a RankLost /
  // TimeoutError unwind closes it, so stalls show up as long recv spans.
  svmobs::TraceSpan span("recv", "net");
  check_cancelled();
  (void)faulted_op(FaultSite::recv);
  // The awaited peer dying while we block surfaces as RankLost rather than a
  // full deadline wait: World::mark_failed pokes the mailbox, the interrupt
  // predicate fires, and the internal wake converts to the public verdict.
  // A watchdog cancellation of this comm's context wakes the wait the same
  // way and converts to ContextCancelled below.
  const auto interrupt = [this, source] {
    if (world_->context_cancelled(context_id_)) return true;
    if (source == kAnySource) return world_->any_failed() && !dead_members().empty();
    return world_->is_failed((*group_)[source]);
  };
  Message m;
  try {
    m = world_->mailbox((*group_)[rank_]).pop(context_id_, source, tag, interrupt);
  } catch (const RendezvousInterrupted&) {
    check_cancelled();
    throw_rank_lost();
  } catch (const TimeoutError& timeout) {
    check_cancelled();
    convert_timeout(timeout);
  }
  // Bind the sender's flow to this (still open) recv span: Perfetto draws
  // the cross-rank arrow, trace_analyze recovers the happens-before edge.
  if (m.flow_id != 0) svmobs::trace_flow_finish("msg", "flow", m.flow_id);
  TrafficStats& s = world_->mutable_stats((*group_)[rank_]);
  ++s.recvs;
  s.bytes_received += m.payload.size();
  s.modeled_seconds += world_->model().pt2pt(m.payload.size());
  return m;
}

bool Comm::recv_bytes_deadline(std::vector<std::byte>& out, int source, int tag,
                               double deadline_s) {
  if (source < 0 || source >= size())
    throw std::out_of_range("svmmpi: recv_deadline needs a specific in-range source");
  svmobs::TraceSpan span("recv_deadline", "net");
  check_cancelled();
  (void)faulted_op(FaultSite::recv);
  // Specific-source interrupt only: the awaited peer dying wakes the wait and
  // converts to RankLost; unrelated deaths leave the wait (and its deadline)
  // undisturbed, which is what lets the frontend keep polling a healthy
  // replica after its sibling was killed.
  const auto interrupt = [this, source] {
    if (world_->context_cancelled(context_id_)) return true;
    return world_->is_failed((*group_)[source]);
  };
  Message m;
  try {
    if (!world_->mailbox((*group_)[rank_]).pop_for(context_id_, source, tag, deadline_s,
                                                   interrupt, m))
      return false;
  } catch (const RendezvousInterrupted&) {
    check_cancelled();
    throw_rank_lost();
  }
  if (m.flow_id != 0) svmobs::trace_flow_finish("msg", "flow", m.flow_id);
  TrafficStats& s = world_->mutable_stats((*group_)[rank_]);
  ++s.recvs;
  s.bytes_received += m.payload.size();
  s.modeled_seconds += world_->model().pt2pt(m.payload.size());
  out = std::move(m.payload);
  return true;
}

std::vector<std::byte> Comm::recv_bytes(int source, int tag, int* actual_source) {
  Message m = recv_message(source, tag);
  if (actual_source != nullptr) *actual_source = m.source;
  return std::move(m.payload);
}

void Comm::recv_bytes_into(std::vector<std::byte>& out, int source, int tag,
                           int* actual_source) {
  Message m = recv_message(source, tag);
  if (actual_source != nullptr) *actual_source = m.source;
  // assign() reuses out's capacity: steady-state ring steps whose payloads
  // have stabilized in size perform no receive-side allocation.
  out.assign(m.payload.begin(), m.payload.end());
}

double Comm::credit_overlap(double compute_s, double comm_s) {
  const double credit = std::min(std::max(compute_s, 0.0), std::max(comm_s, 0.0));
  TrafficStats& s = world_->mutable_stats((*group_)[rank_]);
  s.overlapped_seconds += credit;
  s.modeled_seconds -= credit;
  if (svmobs::trace_enabled()) trace_net_seconds(s);
  return credit;
}

std::vector<std::byte> Comm::collective(std::vector<std::byte> contribution,
                                        const CollectiveContext::Combine& combine,
                                        ModelAs model_as, std::size_t payload_bytes,
                                        const char* label) {
  svmobs::TraceSpan span(label, "collective");
  check_cancelled();
  (void)faulted_op(FaultSite::collective);
  const auto interrupt = [this] {
    if (world_->context_cancelled(context_id_)) return true;
    return world_->any_failed() && !dead_members().empty();
  };
  std::vector<std::byte> result;
  try {
    result = world_->context(context_id_).run(rank_, std::move(contribution), combine, interrupt);
  } catch (const RendezvousInterrupted&) {
    check_cancelled();
    throw_rank_lost();
  } catch (const TimeoutError& timeout) {
    check_cancelled();
    convert_timeout(timeout);
  }
  TrafficStats& s = world_->mutable_stats((*group_)[rank_]);
  ++s.collectives;
  s.bytes_collective += payload_bytes;  // this rank's injected collective volume
  const int p = size();
  switch (model_as) {
    case ModelAs::tree: s.modeled_seconds += world_->model().tree(payload_bytes, p); break;
    case ModelAs::ring:
      s.modeled_seconds +=
          static_cast<double>(p - 1) * world_->model().ring_step(payload_bytes);
      break;
    case ModelAs::none: break;
  }
  if (svmobs::trace_enabled() && s.collectives % kNetCounterStride == 0) trace_net_seconds(s);
  return result;
}

void Comm::barrier() {
  (void)collective(
      {}, [](const std::vector<std::vector<std::byte>>&) { return std::vector<std::byte>{}; },
      ModelAs::tree, 0, "barrier");
}

namespace {

// Rank-ordered loc-reductions: deterministic and index-tie-broken so the
// distributed solvers select the identical working set as the sequential one.
std::vector<std::byte> combine_minloc(const std::vector<std::vector<std::byte>>& parts) {
  DoubleInt best{};
  bool first = true;
  for (const auto& p : parts) {
    const auto cand = detail::from_bytes<DoubleInt>(p)[0];
    if (first || cand.value < best.value ||
        (cand.value == best.value && cand.index < best.index)) {
      best = cand;
      first = false;
    }
  }
  return detail::to_bytes(std::span<const DoubleInt>(&best, 1));
}

std::vector<std::byte> combine_maxloc(const std::vector<std::vector<std::byte>>& parts) {
  DoubleInt best{};
  bool first = true;
  for (const auto& p : parts) {
    const auto cand = detail::from_bytes<DoubleInt>(p)[0];
    if (first || cand.value > best.value ||
        (cand.value == best.value && cand.index < best.index)) {
      best = cand;
      first = false;
    }
  }
  return detail::to_bytes(std::span<const DoubleInt>(&best, 1));
}

}  // namespace

DoubleInt Comm::allreduce_minloc(DoubleInt mine) {
  auto out = collective(detail::to_bytes(std::span<const DoubleInt>(&mine, 1)), combine_minloc,
                        ModelAs::tree, sizeof(DoubleInt), "allreduce_minloc");
  return detail::from_bytes<DoubleInt>(out)[0];
}

DoubleInt Comm::allreduce_maxloc(DoubleInt mine) {
  auto out = collective(detail::to_bytes(std::span<const DoubleInt>(&mine, 1)), combine_maxloc,
                        ModelAs::tree, sizeof(DoubleInt), "allreduce_maxloc");
  return detail::from_bytes<DoubleInt>(out)[0];
}

std::vector<std::byte> detail::concat_with_sizes(
    const std::vector<std::vector<std::byte>>& parts) {
  const std::uint64_t count = parts.size();
  std::size_t total = 0;
  for (const auto& p : parts) total += p.size();
  std::vector<std::byte> out(sizeof(std::uint64_t) * (1 + count) + total);
  std::size_t offset = 0;
  std::memcpy(out.data() + offset, &count, sizeof(count));
  offset += sizeof(count);
  for (const auto& p : parts) {
    const std::uint64_t sz = p.size();
    std::memcpy(out.data() + offset, &sz, sizeof(sz));
    offset += sizeof(sz);
  }
  for (const auto& p : parts) {
    if (!p.empty()) std::memcpy(out.data() + offset, p.data(), p.size());
    offset += p.size();
  }
  return out;
}

int Comm::comm_rank_of_world(int world_rank) const {
  for (int i = 0; i < size(); ++i)
    if ((*group_)[i] == world_rank) return i;
  return -1;
}

std::vector<int> Comm::agree(const std::vector<int>& values) {
  // Fold the locally-known dead set into the contribution so agreement
  // reflects every failure any survivor has observed so far; the finalizer's
  // late_values picks up deaths marked while the agreement was in flight.
  std::vector<int> mine = values;
  const std::vector<int> dead_now = dead_members();
  mine.insert(mine.end(), dead_now.begin(), dead_now.end());
  const auto dead_local = [this] {
    std::vector<int> local;
    for (int i = 0; i < size(); ++i)
      if (world_->is_failed((*group_)[i])) local.push_back(i);
    return local;
  };
  const auto late_values = [this] { return dead_members(); };
  return world_->context(context_id_).agree(rank_, mine, dead_local, late_values);
}

Comm Comm::shrink(std::uint64_t context_salt) {
  const std::vector<int> dead = agree({});
  auto new_group = std::make_shared<std::vector<int>>();
  int new_rank = -1;
  for (int i = 0; i < size(); ++i) {
    const int wr = (*group_)[i];
    if (std::binary_search(dead.begin(), dead.end(), wr)) continue;
    if (i == rank_) new_rank = static_cast<int>(new_group->size());
    new_group->push_back(wr);
  }
  if (new_rank < 0)
    throw std::logic_error("svmmpi: shrink called by a rank in the agreed dead set");
  // Agreement made the dead set — and hence the surviving group — identical
  // on every survivor, so the memoized per-(group, salt) context lookup
  // yields the same context id everywhere without further communication.
  const int context = world_->context_for_group(*new_group, context_salt);
  return Comm(world_, std::move(new_group), new_rank, context);
}

Comm Comm::split_subset(const std::vector<int>& world_ranks, int context_id) const {
  if (world_ranks.empty()) throw std::invalid_argument("svmmpi: split_subset of empty group");
  if (!std::is_sorted(world_ranks.begin(), world_ranks.end()) ||
      std::adjacent_find(world_ranks.begin(), world_ranks.end()) != world_ranks.end())
    throw std::invalid_argument("svmmpi: split_subset group must be sorted and unique");
  int new_rank = -1;
  const int my_world_rank = (*group_)[rank_];
  for (std::size_t i = 0; i < world_ranks.size(); ++i) {
    if (comm_rank_of_world(world_ranks[i]) < 0)
      throw std::invalid_argument("svmmpi: split_subset member outside the parent comm");
    if (world_ranks[i] == my_world_rank) new_rank = static_cast<int>(i);
  }
  if (new_rank < 0)
    throw std::invalid_argument("svmmpi: split_subset caller is not a subset member");
  if (world_->context(context_id).size() != static_cast<int>(world_ranks.size()))
    throw std::invalid_argument("svmmpi: split_subset context size mismatch");
  return Comm(world_, std::make_shared<std::vector<int>>(world_ranks), new_rank, context_id);
}

Comm Comm::split(int color, int key) const {
  struct Entry {
    int color;
    int key;
    int parent_rank;
  };
  Comm self = *this;  // allgather is non-const only because of stats; copy is cheap
  const Entry mine{color, key, rank_};
  const std::vector<Entry> entries = self.allgather(mine);

  // Deterministically derive my new group: members with my color ordered by
  // (key, parent rank).
  std::vector<Entry> members;
  for (const Entry& e : entries)
    if (e.color == color) members.push_back(e);
  std::sort(members.begin(), members.end(), [](const Entry& a, const Entry& b) {
    return std::tie(a.key, a.parent_rank) < std::tie(b.key, b.parent_rank);
  });

  auto new_group = std::make_shared<std::vector<int>>();
  int new_rank = -1;
  for (std::size_t i = 0; i < members.size(); ++i) {
    new_group->push_back((*group_)[members[i].parent_rank]);
    if (members[i].parent_rank == rank_) new_rank = static_cast<int>(i);
  }

  // The new group's leader allocates the collective context and distributes
  // its id to the other members over the *parent* communicator.
  int new_context = -1;
  if (new_rank == 0) {
    new_context = world_->create_context(static_cast<int>(members.size()));
    for (std::size_t i = 1; i < members.size(); ++i)
      self.send_value(new_context, members[i].parent_rank, kSplitContextTag);
  } else {
    new_context = self.recv_value<int>(members[0].parent_rank, kSplitContextTag);
  }
  return Comm(world_, std::move(new_group), new_rank, new_context);
}

}  // namespace svmmpi
