#include "cascade/cascade_svm.hpp"

#include <algorithm>
#include <numeric>
#include <set>
#include <stdexcept>

#include "baseline/libsvm_like.hpp"
#include "core/trainer.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace svmcascade {

namespace {

/// A sub-problem: global row indices into the original dataset.
using IndexSet = std::vector<std::size_t>;

struct SubSolve {
  IndexSet support_vectors;  ///< global indices with alpha > 0
  double seconds = 0.0;
  std::uint64_t kernel_evaluations = 0;
};

/// Trains on the subset and returns the support-vector indices.
SubSolve solve_subset(const svmdata::Dataset& dataset, const IndexSet& indices,
                      const svmcore::SolverParams& params) {
  svmutil::Timer timer;
  const svmdata::Dataset subset = dataset.subset(indices);
  svmbaseline::BaselineOptions options;
  options.C = params.C;
  options.weight_positive = params.weight_positive;
  options.weight_negative = params.weight_negative;
  options.eps = params.eps;
  options.kernel = params.kernel;
  const auto result = svmbaseline::solve_libsvm_like(subset, options);

  SubSolve out;
  for (std::size_t i = 0; i < indices.size(); ++i)
    if (result.alpha[i] > 0.0) out.support_vectors.push_back(indices[i]);
  out.seconds = timer.seconds();
  out.kernel_evaluations = result.kernel_evaluations;
  return out;
}

/// Merge two sorted-unique index sets.
IndexSet merge(const IndexSet& a, const IndexSet& b) {
  IndexSet out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
  return out;
}

}  // namespace

double CascadeResult::imbalance() const {
  if (leaf_seconds.empty()) return 1.0;
  const double max_time = *std::max_element(leaf_seconds.begin(), leaf_seconds.end());
  const double mean =
      std::accumulate(leaf_seconds.begin(), leaf_seconds.end(), 0.0) /
      static_cast<double>(leaf_seconds.size());
  return mean > 0.0 ? max_time / mean : 1.0;
}

CascadeResult train_cascade(const svmdata::Dataset& dataset, const CascadeOptions& options) {
  dataset.validate();
  if (options.levels < 0 || options.levels > 12)
    throw std::invalid_argument("train_cascade: levels must be in [0, 12]");
  const std::size_t leaves = std::size_t{1} << options.levels;
  if (dataset.size() < 2 * leaves)
    throw std::invalid_argument("train_cascade: too few samples for this many leaves");

  // Class-striped shuffled partition so every leaf holds both classes.
  std::vector<std::size_t> positives;
  std::vector<std::size_t> negatives;
  for (std::size_t i = 0; i < dataset.size(); ++i)
    (dataset.y[i] > 0 ? positives : negatives).push_back(i);
  if (positives.empty() || negatives.empty())
    throw std::invalid_argument("train_cascade: dataset must contain both classes");
  svmutil::Rng rng(options.seed);
  rng.shuffle(positives);
  rng.shuffle(negatives);

  std::vector<IndexSet> base_partition(leaves);
  for (std::size_t k = 0; k < positives.size(); ++k)
    base_partition[k % leaves].push_back(positives[k]);
  for (std::size_t k = 0; k < negatives.size(); ++k)
    base_partition[k % leaves].push_back(negatives[k]);
  for (IndexSet& part : base_partition) std::sort(part.begin(), part.end());

  CascadeResult result;
  IndexSet feedback;  // root SVs fed back into every leaf on later passes

  for (std::size_t pass = 0; pass < options.max_passes; ++pass) {
    ++result.passes;

    // Leaf level: independent sub-problems (this is where the paper's load
    // imbalance shows up — record per-leaf times on the first pass).
    std::vector<IndexSet> frontier;
    frontier.reserve(leaves);
    for (std::size_t leaf = 0; leaf < leaves; ++leaf) {
      const IndexSet problem = merge(base_partition[leaf], feedback);
      SubSolve solved = solve_subset(dataset, problem, options.params);
      result.total_kernel_evaluations += solved.kernel_evaluations;
      if (pass == 0) {
        result.leaf_seconds.push_back(solved.seconds);
        result.leaf_support_vectors.push_back(solved.support_vectors.size());
      }
      frontier.push_back(std::move(solved.support_vectors));
    }

    // Binary merge tree up to the root.
    while (frontier.size() > 1) {
      std::vector<IndexSet> next;
      next.reserve((frontier.size() + 1) / 2);
      for (std::size_t pair = 0; pair + 1 < frontier.size(); pair += 2) {
        SubSolve solved =
            solve_subset(dataset, merge(frontier[pair], frontier[pair + 1]), options.params);
        result.total_kernel_evaluations += solved.kernel_evaluations;
        next.push_back(std::move(solved.support_vectors));
      }
      if (frontier.size() % 2 == 1) next.push_back(std::move(frontier.back()));
      frontier = std::move(next);
    }
    IndexSet root_svs = std::move(frontier.front());

    // Converged when the feedback pass keeps the root SV set unchanged.
    if (root_svs == feedback) {
      result.converged = true;
      feedback = std::move(root_svs);
      break;
    }
    feedback = std::move(root_svs);
  }

  // Final model from the root's sub-problem.
  const svmdata::Dataset root_data = dataset.subset(feedback);
  svmbaseline::BaselineOptions final_options;
  final_options.C = options.params.C;
  final_options.eps = options.params.eps;
  final_options.kernel = options.params.kernel;
  const auto final_solve = svmbaseline::solve_libsvm_like(root_data, final_options);
  result.total_kernel_evaluations += final_solve.kernel_evaluations;
  result.beta = final_solve.rho;
  result.model = svmcore::build_model(root_data, final_solve.alpha, final_solve.rho,
                                      options.params.kernel);
  return result;
}

}  // namespace svmcascade
