// Cascade SVM (Graf, Cosatto, Bottou, Durdanovic, Vapnik, NIPS 2005) — the
// prior distributed-SVM design the paper's related work critiques: "Cascade
// SVM suffers from load imbalance, since many processes finish their
// individual sub-problem before others. As a result, this approach does not
// scale well for very large scale of processes" (§VI). Implemented here as
// a comparator so the bench suite can measure that trade directly.
//
// Algorithm: partition the data into 2^levels subsets, train each
// independently, keep only the support vectors, merge pairwise up a binary
// tree retraining at each node, and feed the root's support vectors back
// into the leaf partitions for another pass until the root SV set is stable.
#pragma once

#include <cstdint>
#include <vector>

#include "core/model.hpp"
#include "core/types.hpp"
#include "data/sparse.hpp"

namespace svmcascade {

struct CascadeOptions {
  svmcore::SolverParams params{};
  int levels = 2;               ///< 2^levels leaf partitions
  std::size_t max_passes = 5;   ///< feedback loops before giving up
  std::uint64_t seed = 1;       ///< partition shuffle seed
};

struct CascadeResult {
  svmcore::SvmModel model;
  double beta = 0.0;
  std::size_t passes = 0;              ///< feedback passes executed
  bool converged = false;              ///< root SV set stabilized
  std::uint64_t total_kernel_evaluations = 0;

  // Load-imbalance evidence (first pass, leaf level): the paper's critique.
  std::vector<double> leaf_seconds;
  std::vector<std::size_t> leaf_support_vectors;
  [[nodiscard]] double imbalance() const;  ///< max/mean of leaf_seconds (1 = balanced)
};

/// Trains a Cascade SVM. Throws std::invalid_argument on degenerate input
/// (needs both classes in every leaf partition to start — the partitioner
/// stripes classes across leaves to guarantee this).
[[nodiscard]] CascadeResult train_cascade(const svmdata::Dataset& dataset,
                                          const CascadeOptions& options);

}  // namespace svmcascade
