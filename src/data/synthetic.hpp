// Synthetic dataset generators. The paper evaluates on ten public datasets
// (Table III); this container has no network access, so each generator below
// reproduces the *shape* of one dataset family — sample count, dimensionality,
// sparsity, class balance and separability — which is what drives the
// algorithms under study (shrinking rate, reconstruction volume, kernel cost).
// All generators are deterministic in the seed.
#pragma once

#include <cstdint>

#include "data/sparse.hpp"

namespace svmdata::synthetic {

/// Two Gaussian clusters with controllable margin. `separation` is the
/// distance between class means in units of the cluster standard deviation;
/// larger values → fewer support vectors. `label_noise` flips that fraction
/// of labels, creating bound support vectors (alpha = C candidates).
struct BlobsParams {
  std::size_t n = 1000;
  std::size_t d = 16;
  double separation = 3.0;
  double label_noise = 0.0;
  double positive_fraction = 0.5;
  std::uint64_t seed = 1;   ///< concept seed: fixes the class geometry
  std::uint64_t draw = 0;   ///< sample-stream id: same concept, new samples
};
[[nodiscard]] Dataset gaussian_blobs(const BlobsParams& params);

/// Two concentric spherical shells (non-linearly separable; requires an RBF
/// kernel). `gap` separates the shell radii; `thickness` is shell noise.
struct RingsParams {
  std::size_t n = 1000;
  std::size_t d = 2;
  double inner_radius = 1.0;
  double gap = 1.0;
  double thickness = 0.15;
  std::uint64_t seed = 2;
  std::uint64_t draw = 0;  ///< sample-stream id: same concept, new samples
};
[[nodiscard]] Dataset two_rings(const RingsParams& params);

/// High-dimensional sparse binary features (Offending-URL / real-sim / RCV1
/// shape): each class draws `nnz_per_row` active features from a class-biased
/// pool; `pool_overlap` in [0,1] controls how confusable the classes are.
struct SparseBinaryParams {
  std::size_t n = 1000;
  std::size_t d = 100000;
  std::size_t nnz_per_row = 50;
  double pool_overlap = 0.5;
  double positive_fraction = 0.5;
  /// When > 0, rows are perturbed copies of this many per-class prototype
  /// rows instead of independent draws — the redundancy structure of real
  /// token data (URL/text corpora contain many near-duplicates), which is
  /// what makes most samples strongly classified and hence shrinkable.
  std::size_t prototypes_per_class = 0;
  /// Fraction of a prototype's features resampled per row (with prototypes).
  double resample_fraction = 0.25;
  std::uint64_t seed = 3;
  std::uint64_t draw = 0;  ///< sample-stream id: same concept, new samples
};
[[nodiscard]] Dataset sparse_binary(const SparseBinaryParams& params);

/// Dense low-dimensional tabular data (HIGGS / cod-rna / forest shape): the
/// class signal is a random linear + quadratic function of the features with
/// Gaussian margin noise; `overlap` sets the Bayes-error-ish confusion level.
struct DenseTabularParams {
  std::size_t n = 1000;
  std::size_t d = 28;
  double overlap = 0.1;
  std::uint64_t seed = 4;
  std::uint64_t draw = 0;  ///< sample-stream id: same concept, new samples
};
[[nodiscard]] Dataset dense_tabular(const DenseTabularParams& params);

/// MNIST-like: `d`-dim non-negative "pixel" rows, ~75% zeros, class signal in
/// a subset of template pixels with additive noise.
struct DigitsParams {
  std::size_t n = 1000;
  std::size_t d = 784;
  double noise = 0.3;
  std::uint64_t seed = 5;
  std::uint64_t draw = 0;  ///< sample-stream id: same concept, new samples
};
[[nodiscard]] Dataset digits_like(const DigitsParams& params);

/// k Gaussian clusters at random well-separated centers; labels 0..k-1.
/// The multiclass analogue of gaussian_blobs for the one-vs-one wrapper.
struct MultiBlobsParams {
  std::size_t n = 1000;
  std::size_t d = 8;
  std::size_t classes = 4;
  double separation = 4.0;
  std::uint64_t seed = 6;
  std::uint64_t draw = 0;  ///< sample-stream id: same concept, new samples
};
[[nodiscard]] MultiClassData multiclass_blobs(const MultiBlobsParams& params);

}  // namespace svmdata::synthetic
