// Feature scaling. Two scalers, both learned on training data and applied
// unchanged to test data (fit/transform separation, as `svm-scale` does):
//  - MaxAbsScaler: divides each feature by its max |value|; maps to [-1,1]
//    and preserves sparsity (zero stays zero), appropriate for sparse data.
//  - StandardScaler: (x - mean) / stddev per feature; for dense data. Zeros
//    in the CSR representation are treated as explicit 0.0 values.
#pragma once

#include <vector>

#include "data/sparse.hpp"

namespace svmdata {

class MaxAbsScaler {
 public:
  /// Learns per-feature max-abs from the dataset.
  static MaxAbsScaler fit(const Dataset& dataset);

  /// Returns a scaled copy. Features unseen at fit time pass through.
  [[nodiscard]] Dataset transform(const Dataset& dataset) const;

  [[nodiscard]] const std::vector<double>& max_abs() const noexcept { return max_abs_; }

 private:
  std::vector<double> max_abs_;
};

class StandardScaler {
 public:
  static StandardScaler fit(const Dataset& dataset);
  [[nodiscard]] Dataset transform(const Dataset& dataset) const;

  [[nodiscard]] const std::vector<double>& mean() const noexcept { return mean_; }
  [[nodiscard]] const std::vector<double>& stddev() const noexcept { return stddev_; }

 private:
  std::vector<double> mean_;
  std::vector<double> stddev_;
};

}  // namespace svmdata
