#include "data/synthetic.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace svmdata::synthetic {

using svmutil::Rng;

namespace {

/// Appends a dense row, dropping exact zeros so CSR stays minimal.
void add_dense_row(CsrMatrix& X, std::span<const double> values) {
  std::vector<Feature> row;
  row.reserve(values.size());
  for (std::size_t j = 0; j < values.size(); ++j)
    if (values[j] != 0.0) row.push_back(Feature{static_cast<std::int32_t>(j), values[j]});
  X.add_row(row);
}

/// Sample-stream RNG: distinct per (seed, draw) so a test set (draw=1) is a
/// fresh draw from the same concept as the training set (draw=0).
Rng sample_rng(std::uint64_t seed, std::uint64_t draw) {
  std::uint64_t s = seed;
  for (std::uint64_t i = 0; i <= draw; ++i) (void)svmutil::splitmix64_next(s);
  return Rng(s);
}

}  // namespace

Dataset gaussian_blobs(const BlobsParams& params) {
  Rng concept_rng(params.seed);
  Rng rng = sample_rng(params.seed, params.draw);
  Dataset out;
  out.X.reserve(params.n, params.n * params.d);
  out.y.reserve(params.n);

  // Class means at ±separation/2 along a random unit direction.
  std::vector<double> direction(params.d);
  double norm = 0.0;
  for (double& v : direction) {
    v = concept_rng.normal();
    norm += v * v;
  }
  norm = std::sqrt(norm);
  for (double& v : direction) v /= norm;

  std::vector<double> row(params.d);
  for (std::size_t i = 0; i < params.n; ++i) {
    const bool positive = rng.bernoulli(params.positive_fraction);
    const double sign = positive ? 1.0 : -1.0;
    for (std::size_t j = 0; j < params.d; ++j)
      row[j] = sign * 0.5 * params.separation * direction[j] + rng.normal();
    double label = sign;
    if (rng.bernoulli(params.label_noise)) label = -label;
    add_dense_row(out.X, row);
    out.y.push_back(label);
  }
  return out;
}

Dataset two_rings(const RingsParams& params) {
  Rng rng = sample_rng(params.seed, params.draw);
  Dataset out;
  out.X.reserve(params.n, params.n * params.d);
  out.y.reserve(params.n);

  std::vector<double> row(params.d);
  for (std::size_t i = 0; i < params.n; ++i) {
    const bool inner = rng.bernoulli(0.5);
    const double radius =
        (inner ? params.inner_radius : params.inner_radius + params.gap) +
        rng.normal(0.0, params.thickness);
    // Random direction on the d-sphere.
    double norm = 0.0;
    for (std::size_t j = 0; j < params.d; ++j) {
      row[j] = rng.normal();
      norm += row[j] * row[j];
    }
    norm = std::sqrt(norm);
    for (std::size_t j = 0; j < params.d; ++j) row[j] = row[j] / norm * radius;
    add_dense_row(out.X, row);
    out.y.push_back(inner ? 1.0 : -1.0);
  }
  return out;
}

Dataset sparse_binary(const SparseBinaryParams& params) {
  // The class pools are fixed index ranges (the concept); only sampling uses
  // randomness, so the stream alone separates train from test draws.
  Rng rng = sample_rng(params.seed, params.draw);
  Dataset out;
  out.X.reserve(params.n, params.n * params.nnz_per_row);
  out.y.reserve(params.n);

  // Each class has a feature pool occupying half the index space; the pools
  // share `pool_overlap` of their mass. Feature ids are drawn from the pool
  // with a skewed (Zipf-ish) distribution to mimic token data.
  const std::size_t half = params.d / 2;
  auto draw_feature = [&](bool positive) -> std::int32_t {
    // Quadratic skew: low ids are much more frequent, like token frequency.
    const double u = rng.uniform();
    const auto within = static_cast<std::size_t>(u * u * static_cast<double>(half));
    const bool use_shared = rng.bernoulli(params.pool_overlap);
    std::size_t base = 0;
    if (!use_shared) base = positive ? 0 : half;
    // Shared features live across the whole space.
    const std::size_t id = use_shared ? (within * 2) % params.d : base + within;
    return static_cast<std::int32_t>(std::min(id, params.d - 1));
  };

  auto draw_ids = [&](bool positive) {
    std::vector<std::int32_t> ids;
    while (ids.size() < params.nnz_per_row) {
      const std::int32_t id = draw_feature(positive);
      if (std::find(ids.begin(), ids.end(), id) == ids.end()) ids.push_back(id);
    }
    return ids;
  };

  // Optional prototype structure (the concept): rows become perturbed copies
  // of per-class prototypes, drawn with the concept RNG so train/test share
  // them. The prototype draws consume the *sample* stream's feature
  // distribution via a dedicated concept RNG.
  Rng concept_rng(params.seed);
  std::vector<std::vector<std::int32_t>> prototypes[2];
  if (params.prototypes_per_class > 0) {
    std::swap(rng, concept_rng);  // draw prototypes from the concept stream
    for (int cls = 0; cls < 2; ++cls)
      for (std::size_t k = 0; k < params.prototypes_per_class; ++k)
        prototypes[cls].push_back(draw_ids(cls == 0));
    std::swap(rng, concept_rng);
  }

  std::vector<std::int32_t> ids;
  for (std::size_t i = 0; i < params.n; ++i) {
    const bool positive = rng.bernoulli(params.positive_fraction);
    if (params.prototypes_per_class > 0) {
      const auto& pool = prototypes[positive ? 0 : 1];
      ids = pool[rng.uniform_index(pool.size())];
      // Resample a fraction of the prototype's features.
      const auto replace =
          static_cast<std::size_t>(params.resample_fraction * static_cast<double>(ids.size()));
      for (std::size_t k = 0; k < replace; ++k) {
        const std::size_t at = rng.uniform_index(ids.size());
        const std::int32_t candidate = draw_feature(positive);
        if (std::find(ids.begin(), ids.end(), candidate) == ids.end()) ids[at] = candidate;
      }
    } else {
      ids = draw_ids(positive);
    }
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    std::vector<Feature> row;
    row.reserve(ids.size());
    for (const std::int32_t id : ids) row.push_back(Feature{id, 1.0});
    out.X.add_row(row);
    out.y.push_back(positive ? 1.0 : -1.0);
  }
  return out;
}

Dataset dense_tabular(const DenseTabularParams& params) {
  Rng concept_rng(params.seed);
  Rng rng = sample_rng(params.seed, params.draw);
  Dataset out;
  out.X.reserve(params.n, params.n * params.d);
  out.y.reserve(params.n);

  // Random teacher: label = sign(w.x + sum q_j x_j^2 + b + noise).
  std::vector<double> w(params.d);
  std::vector<double> q(params.d);
  for (std::size_t j = 0; j < params.d; ++j) {
    w[j] = concept_rng.normal();
    q[j] = 0.3 * concept_rng.normal();
  }

  std::vector<double> row(params.d);
  for (std::size_t i = 0; i < params.n; ++i) {
    double score = 0.0;
    for (std::size_t j = 0; j < params.d; ++j) {
      row[j] = rng.normal();
      score += w[j] * row[j] + q[j] * (row[j] * row[j] - 1.0);
    }
    score /= std::sqrt(static_cast<double>(params.d));
    score += rng.normal(0.0, params.overlap * 3.0);
    add_dense_row(out.X, row);
    out.y.push_back(score >= 0.0 ? 1.0 : -1.0);
  }
  return out;
}

Dataset digits_like(const DigitsParams& params) {
  Rng concept_rng(params.seed);
  Rng rng = sample_rng(params.seed, params.draw);
  Dataset out;
  out.X.reserve(params.n, params.n * params.d / 4);
  out.y.reserve(params.n);

  // Two class templates with ~25% active pixels each, partially overlapping.
  std::vector<double> template_pos(params.d, 0.0);
  std::vector<double> template_neg(params.d, 0.0);
  for (std::size_t j = 0; j < params.d; ++j) {
    if (concept_rng.bernoulli(0.25)) template_pos[j] = concept_rng.uniform(0.3, 1.0);
    if (concept_rng.bernoulli(0.25)) template_neg[j] = concept_rng.uniform(0.3, 1.0);
  }

  std::vector<double> row(params.d);
  for (std::size_t i = 0; i < params.n; ++i) {
    const bool positive = rng.bernoulli(0.5);
    const std::vector<double>& base = positive ? template_pos : template_neg;
    for (std::size_t j = 0; j < params.d; ++j) {
      double v = base[j];
      if (v > 0.0) v = std::max(0.0, v + rng.normal(0.0, params.noise));
      // Occasional stray activation off-template.
      if (v == 0.0 && rng.bernoulli(0.02)) v = rng.uniform(0.1, 0.5);
      row[j] = v;
    }
    add_dense_row(out.X, row);
    out.y.push_back(positive ? 1.0 : -1.0);
  }
  return out;
}

MultiClassData multiclass_blobs(const MultiBlobsParams& params) {
  Rng concept_rng(params.seed);
  Rng rng = sample_rng(params.seed, params.draw);
  MultiClassData out;
  out.X.reserve(params.n, params.n * params.d);
  out.labels.reserve(params.n);

  // One random center per class, scaled so centers sit ~separation apart.
  std::vector<std::vector<double>> centers(params.classes, std::vector<double>(params.d));
  for (auto& center : centers) {
    double norm = 0.0;
    for (double& v : center) {
      v = concept_rng.normal();
      norm += v * v;
    }
    norm = std::sqrt(norm);
    for (double& v : center) v = v / norm * params.separation;
  }

  std::vector<double> row(params.d);
  for (std::size_t i = 0; i < params.n; ++i) {
    const std::size_t cls = rng.uniform_index(params.classes);
    for (std::size_t j = 0; j < params.d; ++j) row[j] = centers[cls][j] + rng.normal();
    add_dense_row(out.X, row);
    out.labels.push_back(static_cast<double>(cls));
  }
  return out;
}

}  // namespace svmdata::synthetic
