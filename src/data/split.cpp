#include "data/split.hpp"

#include <numeric>
#include <stdexcept>

#include "util/rng.hpp"

namespace svmdata {

TrainTestSplit train_test_split(const Dataset& dataset, double test_fraction,
                                std::uint64_t seed) {
  if (test_fraction < 0.0 || test_fraction >= 1.0)
    throw std::invalid_argument("train_test_split: test_fraction must be in [0, 1)");
  std::vector<std::size_t> order(dataset.size());
  std::iota(order.begin(), order.end(), 0);
  svmutil::Rng rng(seed);
  rng.shuffle(order);

  const auto test_count = static_cast<std::size_t>(test_fraction * static_cast<double>(order.size()));
  const std::vector<std::size_t> test_idx(order.begin(), order.begin() + test_count);
  const std::vector<std::size_t> train_idx(order.begin() + test_count, order.end());
  return TrainTestSplit{dataset.subset(train_idx), dataset.subset(test_idx)};
}

std::vector<std::vector<std::size_t>> kfold_indices(std::size_t n, std::size_t folds,
                                                    std::uint64_t seed) {
  if (folds == 0 || folds > n) throw std::invalid_argument("kfold_indices: need 1 <= folds <= n");
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  svmutil::Rng rng(seed);
  rng.shuffle(order);

  std::vector<std::vector<std::size_t>> result(folds);
  for (std::size_t i = 0; i < n; ++i) result[i % folds].push_back(order[i]);
  return result;
}

BlockRange block_range(std::size_t n, int num_ranks, int rank) {
  if (num_ranks <= 0 || rank < 0 || rank >= num_ranks)
    throw std::invalid_argument("block_range: invalid rank/num_ranks");
  const std::size_t p = static_cast<std::size_t>(num_ranks);
  const std::size_t base = n / p;
  const std::size_t extra = n % p;
  const std::size_t r = static_cast<std::size_t>(rank);
  const std::size_t begin = r * base + std::min(r, extra);
  const std::size_t size = base + (r < extra ? 1 : 0);
  return BlockRange{begin, begin + size};
}

int owner_of(std::size_t n, int num_ranks, std::size_t index) {
  if (index >= n) throw std::out_of_range("owner_of: index out of range");
  const std::size_t p = static_cast<std::size_t>(num_ranks);
  const std::size_t base = n / p;
  const std::size_t extra = n % p;
  const std::size_t boundary = extra * (base + 1);
  if (index < boundary) return static_cast<int>(index / (base + 1));
  return static_cast<int>(extra + (index - boundary) / base);
}

}  // namespace svmdata
