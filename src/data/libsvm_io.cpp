#include "data/libsvm_io.hpp"

#include <cerrno>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace svmdata {

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw std::runtime_error("libsvm parse error at line " + std::to_string(line) + ": " + what);
}

double parse_double(const char*& cursor, std::size_t line) {
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(cursor, &end);
  if (end == cursor || errno == ERANGE) fail(line, "expected a number");
  if (!std::isfinite(v)) fail(line, "non-finite number");  // strtod accepts inf/nan
  cursor = end;
  return v;
}

long parse_long(const char*& cursor, std::size_t line) {
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(cursor, &end, 10);
  if (end == cursor || errno == ERANGE) fail(line, "expected an integer index");
  cursor = end;
  return v;
}

void skip_spaces(const char*& cursor) {
  while (*cursor == ' ' || *cursor == '\t') ++cursor;
}

}  // namespace

Dataset read_libsvm(std::istream& in, const LibsvmReadOptions& options) {
  Dataset out;
  std::string line;
  std::size_t line_number = 0;
  std::vector<Feature> row;

  // Two-label normalization state: raw label -> ±1.
  bool have_first = false;
  bool have_second = false;
  double first_raw = 0.0;
  double second_raw = 0.0;

  std::vector<double> raw_labels;

  while (std::getline(in, line)) {
    ++line_number;
    const char* cursor = line.c_str();
    skip_spaces(cursor);
    if (*cursor == '\0' || *cursor == '#') continue;  // blank or comment line

    const double label = parse_double(cursor, line_number);
    if (!have_first) {
      have_first = true;
      first_raw = label;
    } else if (label != first_raw && !have_second) {
      have_second = true;
      second_raw = label;
    } else if (label != first_raw && label != second_raw) {
      fail(line_number, "more than two distinct labels (binary classification only)");
    }

    row.clear();
    long previous_index = 0;  // file indices are 1-based
    while (true) {
      skip_spaces(cursor);
      if (*cursor == '\0' || *cursor == '#') break;
      const long index = parse_long(cursor, line_number);
      if (*cursor != ':') fail(line_number, "expected ':' after feature index");
      ++cursor;
      // strtod would silently skip whitespace here, turning "3: 5" or a
      // truncated "3:" into something other than what the file says.
      if (*cursor == '\0' || *cursor == ' ' || *cursor == '\t')
        fail(line_number, "missing feature value after ':'");
      const double value = parse_double(cursor, line_number);
      if (index <= 0) fail(line_number, "feature index must be >= 1");
      if (index > static_cast<long>(std::numeric_limits<std::int32_t>::max()))
        fail(line_number, "feature index overflows 32 bits");
      if (index <= previous_index) {
        fail(line_number, index == previous_index ? "duplicate feature index"
                                                  : "feature indices must be increasing");
      }
      previous_index = index;
      if (value != 0.0) row.push_back(Feature{static_cast<std::int32_t>(index - 1), value});
    }

    out.X.add_row(row);
    raw_labels.push_back(label);
    if (options.max_rows != 0 && out.X.rows() >= options.max_rows) break;
  }

  // Map raw labels to ±1. {+1,-1} keep their sign; otherwise first-seen = +1.
  const bool already_signed =
      (first_raw == 1.0 && (!have_second || second_raw == -1.0)) ||
      (first_raw == -1.0 && (!have_second || second_raw == 1.0));
  out.y.reserve(raw_labels.size());
  for (const double raw : raw_labels) {
    if (already_signed)
      out.y.push_back(raw);
    else
      out.y.push_back(raw == first_raw ? 1.0 : -1.0);
  }
  return out;
}

Dataset read_libsvm_file(const std::string& path, const LibsvmReadOptions& options) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open libsvm file: " + path);
  return read_libsvm(in, options);
}

void write_libsvm(std::ostream& out, const Dataset& dataset) {
  char buffer[64];
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    out << (dataset.y[i] > 0 ? "+1" : "-1");
    for (const Feature& f : dataset.X.row(i)) {
      std::snprintf(buffer, sizeof(buffer), " %d:%.17g", f.index + 1, f.value);
      out << buffer;
    }
    out << '\n';
  }
}

void write_libsvm_file(const std::string& path, const Dataset& dataset) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open file for writing: " + path);
  write_libsvm(out, dataset);
}

Dataset read_libsvm_slice(const std::string& path, int rank, int num_ranks) {
  if (num_ranks <= 0 || rank < 0 || rank >= num_ranks)
    throw std::runtime_error("read_libsvm_slice: invalid rank/num_ranks");
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open libsvm file: " + path);
  in.seekg(0, std::ios::end);
  const std::streamoff file_size = in.tellg();

  // Nominal byte range; each boundary > 0 advances past the next newline so
  // a line is owned by the slice in which it *starts*.
  const std::streamoff nominal_begin = file_size * rank / num_ranks;
  const std::streamoff nominal_end = file_size * (rank + 1) / num_ranks;
  auto align = [&](std::streamoff offset) -> std::streamoff {
    if (offset == 0) return 0;
    in.clear();  // a previous call may have scanned to EOF
    in.seekg(offset - 1);  // check whether we landed exactly after a newline
    char c = 0;
    while (in.get(c) && c != '\n') {
    }
    if (!in) return file_size;  // boundary inside the unterminated last line
    return static_cast<std::streamoff>(in.tellg());
  };
  const std::streamoff begin = align(nominal_begin);
  const std::streamoff end = align(nominal_end);
  if (begin >= end) return Dataset{};

  in.clear();
  in.seekg(begin);
  std::string slice(static_cast<std::size_t>(end - begin), '\0');
  in.read(slice.data(), end - begin);
  std::istringstream stream(slice);
  return read_libsvm(stream);
}

}  // namespace svmdata
