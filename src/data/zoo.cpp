#include "data/zoo.hpp"

#include <cmath>
#include <map>
#include <sstream>
#include <stdexcept>

#include "data/synthetic.hpp"
#include "util/rng.hpp"

namespace svmdata {

namespace {

// Stable per-dataset seed; +1000 gives the test-set stream.
std::uint64_t name_seed(const std::string& name) {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a
  for (const char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::size_t scaled(std::size_t base, double scale) {
  const auto n = static_cast<std::size_t>(std::llround(static_cast<double>(base) * scale));
  return n < 8 ? 8 : n;
}

Dataset generate(const ZooEntry& entry, std::size_t n, std::uint64_t seed, std::uint64_t draw) {
  using namespace synthetic;
  const std::string& d = entry.name;
  if (d == "higgs") return dense_tabular({.n = n, .d = 28, .overlap = 0.30, .seed = seed, .draw = draw});
  if (d == "url")
    return sparse_binary({.n = n, .d = 30000, .nnz_per_row = 30, .pool_overlap = 0.30,
                          .prototypes_per_class = 25, .resample_fraction = 0.25,
                          .seed = seed, .draw = draw});
  if (d == "forest") return dense_tabular({.n = n, .d = 54, .overlap = 0.15, .seed = seed, .draw = draw});
  if (d == "realsim")
    return sparse_binary({.n = n, .d = 20000, .nnz_per_row = 50, .pool_overlap = 0.45,
                          .prototypes_per_class = 40, .resample_fraction = 0.3,
                          .seed = seed, .draw = draw});
  if (d == "mnist") return digits_like({.n = n, .d = 784, .noise = 0.25, .seed = seed, .draw = draw});
  if (d == "codrna") return dense_tabular({.n = n, .d = 8, .overlap = 0.20, .seed = seed, .draw = draw});
  if (d == "a9a")
    return sparse_binary(
        {.n = n, .d = 123, .nnz_per_row = 14, .pool_overlap = 0.55, .seed = seed, .draw = draw});
  if (d == "w7a")
    return sparse_binary(
        {.n = n, .d = 300, .nnz_per_row = 12, .pool_overlap = 0.25, .seed = seed, .draw = draw});
  if (d == "rcv1")
    return sparse_binary({.n = n, .d = 10000, .nnz_per_row = 60, .pool_overlap = 0.35,
                          .prototypes_per_class = 40, .resample_fraction = 0.3,
                          .seed = seed, .draw = draw});
  if (d == "usps") return digits_like({.n = n, .d = 256, .noise = 0.20, .seed = seed, .draw = draw});
  if (d == "mushrooms")
    return sparse_binary({.n = n, .d = 112, .nnz_per_row = 21, .pool_overlap = 0.10,
                          .prototypes_per_class = 12, .resample_fraction = 0.2,
                          .seed = seed, .draw = draw});
  throw std::invalid_argument("zoo: no generator for dataset " + d);
}

/// Rescales feature values so the empirical mean pairwise squared distance
/// matches the entry's sigma^2. The paper's datasets come from the libsvm
/// page pre-scaled (features in [0,1] or unit-ish ranges), which is what
/// makes its Table III kernel widths sit mid-range; raw synthetic features
/// would otherwise push the Gaussian kernel toward an identity matrix (all
/// samples free SVs, nothing shrinkable) or a constant matrix.
/// Scaling factor for one entry, computed once from a canonical 256-row
/// probe (draw 0) so that train and test sets share the exact same factor —
/// fit on train statistics, transform everywhere.
double sigma_factor(const ZooEntry& entry) {
  static std::map<std::string, double> cache;
  const auto hit = cache.find(entry.name);
  if (hit != cache.end()) return hit->second;

  const Dataset probe = generate(entry, 256, name_seed(entry.name), /*draw=*/0);
  svmutil::Rng rng(name_seed(entry.name) ^ 0x5ca1e5ca1eULL);
  const auto norms = probe.X.row_squared_norms();
  double sum = 0.0;
  constexpr int kPairs = 256;
  for (int k = 0; k < kPairs; ++k) {
    const std::size_t i = rng.uniform_index(probe.size());
    std::size_t j = rng.uniform_index(probe.size() - 1);
    if (j >= i) ++j;
    sum += CsrMatrix::squared_distance(probe.X.row(i), probe.X.row(j), norms[i], norms[j]);
  }
  const double mean_dist_sq = sum / kPairs;
  const double factor = mean_dist_sq > 0.0 ? std::sqrt(entry.sigma_sq / mean_dist_sq) : 1.0;
  cache[entry.name] = factor;
  return factor;
}

void apply_factor(Dataset& dataset, double factor) {
  Dataset scaled;
  scaled.y = std::move(dataset.y);
  scaled.X.reserve(dataset.X.rows(), dataset.X.nonzeros());
  std::vector<Feature> row;
  for (std::size_t i = 0; i < dataset.X.rows(); ++i) {
    row.assign(dataset.X.row(i).begin(), dataset.X.row(i).end());
    for (Feature& f : row) f.value *= factor;
    scaled.X.add_row(row);
  }
  dataset = std::move(scaled);
}

/// See sigma_factor(): rescales features so the entry's sigma^2 sits at the
/// dataset's typical pairwise squared distance, mirroring the pre-scaled
/// libsvm-page datasets the paper trains on.
void scale_to_sigma(Dataset& dataset, const ZooEntry& entry) {
  apply_factor(dataset, sigma_factor(entry));
}

}  // namespace

const std::vector<ZooEntry>& zoo() {
  // name, paper train, paper test, default train, default test, C, sigma^2,
  // paper's largest process count for the dataset.
  static const std::vector<ZooEntry> entries{
      {"higgs", 2600000, 0, 6000, 0, 32.0, 64.0, 4096},
      {"url", 2300000, 0, 4000, 0, 10.0, 4.0, 4096},
      {"forest", 581012, 0, 4000, 0, 10.0, 4.0, 1024},
      {"realsim", 72309, 0, 3000, 0, 10.0, 4.0, 256},
      {"mnist", 60000, 10000, 2000, 400, 10.0, 25.0, 512},
      {"codrna", 59535, 271617, 2000, 800, 32.0, 64.0, 64},
      {"a9a", 32561, 16281, 1600, 640, 32.0, 64.0, 16},
      {"w7a", 24692, 25057, 1200, 500, 32.0, 64.0, 16},
      {"rcv1", 20242, 0, 1600, 0, 10.0, 4.0, 64},
      {"usps", 7291, 2007, 1000, 400, 10.0, 25.0, 4},
      {"mushrooms", 8124, 0, 800, 320, 10.0, 4.0, 4},
  };
  return entries;
}

const ZooEntry& zoo_entry(const std::string& name) {
  for (const ZooEntry& e : zoo())
    if (e.name == name) return e;
  std::ostringstream message;
  message << "zoo: unknown dataset '" << name << "'; valid names:";
  for (const ZooEntry& e : zoo()) message << ' ' << e.name;
  throw std::invalid_argument(message.str());
}

Dataset make_train(const ZooEntry& entry, double scale) {
  Dataset train = generate(entry, scaled(entry.default_train_size, scale),
                           name_seed(entry.name), /*draw=*/0);
  scale_to_sigma(train, entry);
  return train;
}

Dataset make_test(const ZooEntry& entry, double scale) {
  const std::size_t base = entry.default_test_size;
  if (base == 0) return Dataset{};
  // Same concept seed, different sample stream: a true held-out draw,
  // scaled with the identical (train-derived) factor.
  Dataset test = generate(entry, scaled(base, scale), name_seed(entry.name), /*draw=*/1);
  scale_to_sigma(test, entry);
  return test;
}

}  // namespace svmdata
