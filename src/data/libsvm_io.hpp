// Reader/writer for the libsvm text format used by every dataset on the
// libsvm web page (the paper's data source):
//   <label> <index>:<value> <index>:<value> ...\n
// Labels are mapped to ±1: {+1,-1} pass through; {1,0} and {1,2} map the
// first-seen distinct label to +1 and the other to -1. Indices in files are
// 1-based (libsvm convention) and stored 0-based internally.
#pragma once

#include <istream>
#include <ostream>
#include <string>

#include "data/sparse.hpp"

namespace svmdata {

struct LibsvmReadOptions {
  /// Stop after this many rows (0 = read all); used to cap huge files.
  std::size_t max_rows = 0;
};

/// Parses a libsvm-format stream. Throws std::runtime_error with the
/// offending line number on malformed input (bad number, non-increasing
/// index, more than two distinct labels).
[[nodiscard]] Dataset read_libsvm(std::istream& in, const LibsvmReadOptions& options = {});

/// Convenience file wrapper; throws std::runtime_error if unopenable.
[[nodiscard]] Dataset read_libsvm_file(const std::string& path,
                                       const LibsvmReadOptions& options = {});

/// Writes in libsvm format with 1-based indices; "%.17g" values round-trip.
void write_libsvm(std::ostream& out, const Dataset& dataset);
void write_libsvm_file(const std::string& path, const Dataset& dataset);

/// Parallel-IO building block: reads only the rows whose lines fall in rank
/// `rank`'s byte slice of the file. The file is cut into `num_ranks` equal
/// byte ranges; each boundary is advanced to the next newline so every line
/// belongs to exactly one rank. Concatenating the slices for ranks 0..p-1
/// reproduces read_libsvm_file exactly, in file order:
///
///   // SPMD: each rank parses its slice, then the blocks are exchanged
///   Dataset mine = read_libsvm_slice(path, comm.rank(), comm.size());
///
/// Labels are mapped to ±1 *per slice* with the same first-seen rule as
/// read_libsvm; for files with {+1,-1} or {0,1}-style labels this is
/// globally consistent. Throws std::runtime_error on IO or parse errors.
[[nodiscard]] Dataset read_libsvm_slice(const std::string& path, int rank, int num_ranks);

}  // namespace svmdata
