// Train/test splitting, k-fold cross-validation indices and block
// partitioning of samples across ranks (each rank owns N/p contiguous rows,
// as in Algorithm 2's row-partitioned layout).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "data/sparse.hpp"

namespace svmdata {

struct TrainTestSplit {
  Dataset train;
  Dataset test;
};

/// Shuffled split; `test_fraction` of rows go to the test set.
[[nodiscard]] TrainTestSplit train_test_split(const Dataset& dataset, double test_fraction,
                                              std::uint64_t seed);

/// k disjoint folds covering all indices; fold sizes differ by at most one.
[[nodiscard]] std::vector<std::vector<std::size_t>> kfold_indices(std::size_t n, std::size_t folds,
                                                                  std::uint64_t seed);

/// Contiguous block ownership: rank r owns [begin, end) with sizes differing
/// by at most one (first `n % p` ranks get the extra row).
struct BlockRange {
  std::size_t begin = 0;
  std::size_t end = 0;
  [[nodiscard]] std::size_t size() const noexcept { return end - begin; }
  [[nodiscard]] bool contains(std::size_t global) const noexcept {
    return global >= begin && global < end;
  }
};

[[nodiscard]] BlockRange block_range(std::size_t n, int num_ranks, int rank);

/// Inverse map: which rank owns global row `index`.
[[nodiscard]] int owner_of(std::size_t n, int num_ranks, std::size_t index);

}  // namespace svmdata
