#include "data/scale.hpp"

#include <cmath>

namespace svmdata {

MaxAbsScaler MaxAbsScaler::fit(const Dataset& dataset) {
  MaxAbsScaler scaler;
  scaler.max_abs_.assign(dataset.dim(), 0.0);
  for (std::size_t i = 0; i < dataset.size(); ++i)
    for (const Feature& f : dataset.X.row(i))
      scaler.max_abs_[f.index] = std::max(scaler.max_abs_[f.index], std::abs(f.value));
  return scaler;
}

Dataset MaxAbsScaler::transform(const Dataset& dataset) const {
  Dataset out;
  out.y = dataset.y;
  out.X.reserve(dataset.size(), dataset.X.nonzeros());
  std::vector<Feature> row;
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    row.clear();
    for (const Feature& f : dataset.X.row(i)) {
      const double scale =
          f.index < static_cast<std::int32_t>(max_abs_.size()) && max_abs_[f.index] > 0.0
              ? max_abs_[f.index]
              : 1.0;
      row.push_back(Feature{f.index, f.value / scale});
    }
    out.X.add_row(row);
  }
  return out;
}

StandardScaler StandardScaler::fit(const Dataset& dataset) {
  StandardScaler scaler;
  const std::size_t d = dataset.dim();
  const auto n = static_cast<double>(dataset.size());
  scaler.mean_.assign(d, 0.0);
  scaler.stddev_.assign(d, 0.0);
  // CSR zeros count toward the mean/variance as explicit zeros.
  for (std::size_t i = 0; i < dataset.size(); ++i)
    for (const Feature& f : dataset.X.row(i)) scaler.mean_[f.index] += f.value;
  for (double& m : scaler.mean_) m /= n;
  for (std::size_t i = 0; i < dataset.size(); ++i)
    for (const Feature& f : dataset.X.row(i))
      scaler.stddev_[f.index] += f.value * f.value - 2.0 * f.value * scaler.mean_[f.index];
  for (std::size_t j = 0; j < d; ++j) {
    // sum((x-m)^2) = sum(x^2) - 2m*sum(x) + n*m^2; zeros contribute m^2 each.
    scaler.stddev_[j] = std::sqrt(std::max(0.0, scaler.stddev_[j] / n + scaler.mean_[j] * scaler.mean_[j]));
    if (scaler.stddev_[j] == 0.0) scaler.stddev_[j] = 1.0;
  }
  return scaler;
}

Dataset StandardScaler::transform(const Dataset& dataset) const {
  Dataset out;
  out.y = dataset.y;
  std::vector<double> dense;
  std::vector<Feature> row;
  const std::size_t d = mean_.size();
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    dense.assign(d, 0.0);
    for (const Feature& f : dataset.X.row(i))
      if (static_cast<std::size_t>(f.index) < d) dense[f.index] = f.value;
    row.clear();
    for (std::size_t j = 0; j < d; ++j) {
      const double v = (dense[j] - mean_[j]) / stddev_[j];
      if (v != 0.0) row.push_back(Feature{static_cast<std::int32_t>(j), v});
    }
    out.X.add_row(row);
  }
  return out;
}

}  // namespace svmdata
