// Compressed sparse row (CSR) storage for datasets. The paper (§III-A)
// stores samples in CSR and co-locates per-sample metadata with the rows;
// kernels operate directly on sparse rows with precomputed self-dots.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace svmdata {

/// One nonzero feature. Trivially copyable so rows can move through the
/// message-passing substrate by memcpy.
struct Feature {
  std::int32_t index = 0;  ///< zero-based feature id, strictly increasing per row
  double value = 0.0;
};

static_assert(sizeof(Feature) == 16, "Feature must stay trivially packable");

class CsrMatrix {
 public:
  CsrMatrix() { row_offsets_.push_back(0); }

  /// Appends one row. Feature indices must be strictly increasing and
  /// non-negative; throws std::invalid_argument otherwise.
  void add_row(std::span<const Feature> features);

  [[nodiscard]] std::size_t rows() const noexcept { return row_offsets_.size() - 1; }
  [[nodiscard]] std::size_t nonzeros() const noexcept { return features_.size(); }
  /// Number of feature columns = 1 + max index seen (0 when empty).
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

  [[nodiscard]] std::span<const Feature> row(std::size_t i) const {
    return std::span<const Feature>(features_.data() + row_offsets_[i],
                                    row_offsets_[i + 1] - row_offsets_[i]);
  }

  /// nnz / (rows*cols); 0 for an empty matrix.
  [[nodiscard]] double density() const noexcept;

  /// Bytes of feature payload, the quantity the ring exchange moves.
  [[nodiscard]] std::size_t payload_bytes() const noexcept {
    return features_.size() * sizeof(Feature);
  }

  void reserve(std::size_t rows, std::size_t nonzeros);

  // --- sparse row algebra -------------------------------------------------

  /// Sparse-sparse dot product (merge join over sorted indices).
  [[nodiscard]] static double dot(std::span<const Feature> a, std::span<const Feature> b) noexcept;

  [[nodiscard]] static double squared_norm(std::span<const Feature> a) noexcept;

  /// ||a-b||^2 given precomputed squared norms (for the RBF kernel).
  [[nodiscard]] static double squared_distance(std::span<const Feature> a,
                                               std::span<const Feature> b, double sq_a,
                                               double sq_b) noexcept {
    double d = sq_a + sq_b - 2.0 * dot(a, b);
    return d > 0.0 ? d : 0.0;  // clamp tiny negative round-off
  }

  /// Self-dot of every row; precomputed once per dataset.
  [[nodiscard]] std::vector<double> row_squared_norms() const;

 private:
  std::vector<std::size_t> row_offsets_;
  std::vector<Feature> features_;
  std::size_t cols_ = 0;
};

/// A labelled dataset with arbitrary class labels (multiclass); binary
/// problems use Dataset below, whose labels are constrained to ±1.
struct MultiClassData {
  CsrMatrix X;
  std::vector<double> labels;

  [[nodiscard]] std::size_t size() const noexcept { return labels.size(); }
};

/// A labelled binary-classification dataset: CSR features plus ±1 labels.
struct Dataset {
  CsrMatrix X;
  std::vector<double> y;  ///< each exactly +1.0 or -1.0

  [[nodiscard]] std::size_t size() const noexcept { return y.size(); }
  [[nodiscard]] std::size_t dim() const noexcept { return X.cols(); }

  /// Throws std::invalid_argument if labels are not ±1 or row/label counts
  /// disagree; solvers call this at entry.
  void validate() const;

  /// New dataset containing the selected rows, in order.
  [[nodiscard]] Dataset subset(std::span<const std::size_t> indices) const;
};

}  // namespace svmdata
