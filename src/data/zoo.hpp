// Dataset zoo: one preset per dataset in the paper's Table III (plus the
// Table IV small datasets), generated synthetically at container scale. Each
// entry records the paper's characteristics (train/test size, hyper-params
// C and sigma^2) and a scaled-down default size that trains in seconds here.
// `scale` multiplies the container default; `--scale 10` gets closer to the
// paper's sizes at proportionally longer runtimes.
#pragma once

#include <string>
#include <vector>

#include "data/sparse.hpp"

namespace svmdata {

struct ZooEntry {
  std::string name;                ///< paper's dataset name, lower-case
  std::size_t paper_train_size;    ///< Table III training set size
  std::size_t paper_test_size;     ///< Table III testing set size (0 = N/A)
  std::size_t default_train_size;  ///< container-scale default
  std::size_t default_test_size;
  double C;         ///< Table III hyper-parameter
  double sigma_sq;  ///< Table III Gaussian kernel width sigma^2
  int paper_processes;  ///< largest process count the paper used for it

  [[nodiscard]] double gamma() const noexcept { return 1.0 / sigma_sq; }
};

/// All presets, in Table III order then the Table IV extras.
[[nodiscard]] const std::vector<ZooEntry>& zoo();

/// Lookup by name; throws std::invalid_argument listing valid names.
[[nodiscard]] const ZooEntry& zoo_entry(const std::string& name);

/// Generates the training set for an entry at `scale` times its container
/// default size. Deterministic per (entry, scale).
[[nodiscard]] Dataset make_train(const ZooEntry& entry, double scale = 1.0);

/// Generates the held-out test set (empty Dataset if the paper had none).
[[nodiscard]] Dataset make_test(const ZooEntry& entry, double scale = 1.0);

}  // namespace svmdata
