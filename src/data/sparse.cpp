#include "data/sparse.hpp"

#include <stdexcept>
#include <string>

namespace svmdata {

void CsrMatrix::add_row(std::span<const Feature> features) {
  std::int32_t previous = -1;
  for (const Feature& f : features) {
    if (f.index <= previous)
      throw std::invalid_argument("CsrMatrix: feature indices must be strictly increasing, got " +
                                  std::to_string(f.index) + " after " + std::to_string(previous));
    previous = f.index;
  }
  features_.insert(features_.end(), features.begin(), features.end());
  row_offsets_.push_back(features_.size());
  if (previous >= 0) cols_ = std::max(cols_, static_cast<std::size_t>(previous) + 1);
}

double CsrMatrix::density() const noexcept {
  const std::size_t cells = rows() * cols();
  return cells == 0 ? 0.0 : static_cast<double>(nonzeros()) / static_cast<double>(cells);
}

void CsrMatrix::reserve(std::size_t rows, std::size_t nonzeros) {
  row_offsets_.reserve(rows + 1);
  features_.reserve(nonzeros);
}

double CsrMatrix::dot(std::span<const Feature> a, std::span<const Feature> b) noexcept {
  double sum = 0.0;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() && j < b.size()) {
    const std::int32_t ai = a[i].index;
    const std::int32_t bj = b[j].index;
    if (ai == bj) {
      sum += a[i].value * b[j].value;
      ++i;
      ++j;
    } else if (ai < bj) {
      ++i;
    } else {
      ++j;
    }
  }
  return sum;
}

double CsrMatrix::squared_norm(std::span<const Feature> a) noexcept {
  double sum = 0.0;
  for (const Feature& f : a) sum += f.value * f.value;
  return sum;
}

std::vector<double> CsrMatrix::row_squared_norms() const {
  std::vector<double> norms(rows());
  for (std::size_t i = 0; i < rows(); ++i) norms[i] = squared_norm(row(i));
  return norms;
}

void Dataset::validate() const {
  if (X.rows() != y.size())
    throw std::invalid_argument("Dataset: row count " + std::to_string(X.rows()) +
                                " != label count " + std::to_string(y.size()));
  for (std::size_t i = 0; i < y.size(); ++i)
    if (y[i] != 1.0 && y[i] != -1.0)
      throw std::invalid_argument("Dataset: label at row " + std::to_string(i) +
                                  " must be +1 or -1");
}

Dataset Dataset::subset(std::span<const std::size_t> indices) const {
  Dataset out;
  out.X.reserve(indices.size(), indices.size() * (X.rows() ? X.nonzeros() / X.rows() : 0));
  out.y.reserve(indices.size());
  for (const std::size_t i : indices) {
    out.X.add_row(X.row(i));
    out.y.push_back(y[i]);
  }
  return out;
}

}  // namespace svmdata
