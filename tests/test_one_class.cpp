#include <gtest/gtest.h>

#include <cmath>

#include "baseline/one_class.hpp"
#include "data/synthetic.hpp"
#include "util/rng.hpp"

namespace {

using svmbaseline::OneClassOptions;
using svmbaseline::OneClassResult;
using svmbaseline::solve_one_class;
using svmdata::CsrMatrix;
using svmdata::Feature;

/// Dense cluster around the origin plus `outliers` far-away points appended.
CsrMatrix cluster_with_outliers(std::size_t n, std::size_t outliers, std::uint64_t seed) {
  svmutil::Rng rng(seed);
  CsrMatrix X;
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<Feature> row;
    for (int j = 0; j < 4; ++j) row.push_back(Feature{j, rng.normal(0.0, 0.5)});
    X.add_row(row);
  }
  // Outliers are scattered in random far-away directions (a tight outlier
  // cluster would legitimately be learned as a second mode).
  for (std::size_t i = 0; i < outliers; ++i) {
    std::vector<Feature> row;
    for (int j = 0; j < 4; ++j)
      row.push_back(Feature{j, (rng.bernoulli(0.5) ? 8.0 : -8.0) + rng.normal(0.0, 2.0)});
    X.add_row(row);
  }
  return X;
}

OneClassOptions rbf_options(double nu) {
  OneClassOptions o;
  o.nu = nu;
  o.kernel = svmkernel::KernelParams::rbf_with_sigma_sq(2.0);
  return o;
}

TEST(OneClass, ConstraintsHold) {
  const CsrMatrix X = cluster_with_outliers(150, 0, 1);
  const OneClassResult r = solve_one_class(X, rbf_options(0.2));
  ASSERT_TRUE(r.converged);
  double sum = 0.0;
  const double box = 1.0 / (0.2 * 150.0);
  for (const double a : r.alpha) {
    EXPECT_GE(a, 0.0);
    EXPECT_LE(a, box + 1e-9);
    sum += a;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(OneClass, NuBoundsOutlierAndSvFractions) {
  const CsrMatrix X = cluster_with_outliers(200, 0, 3);
  const double nu = 0.15;
  const OneClassResult r = solve_one_class(X, rbf_options(nu));
  const auto model = r.to_model(X, rbf_options(nu).kernel);

  std::size_t rejected = 0;
  std::size_t support_vectors = 0;
  for (std::size_t i = 0; i < X.rows(); ++i) {
    if (model.decision_value(X.row(i)) < 0) ++rejected;
    if (r.alpha[i] > 0) ++support_vectors;
  }
  // nu-property: rejected fraction <= nu (+ slack), SV fraction >= nu.
  EXPECT_LE(static_cast<double>(rejected) / X.rows(), nu + 0.05);
  EXPECT_GE(static_cast<double>(support_vectors) / X.rows(), nu - 0.02);
}

TEST(OneClass, DetectsInjectedOutliers) {
  constexpr std::size_t kInliers = 200;
  constexpr std::size_t kOutliers = 10;
  const CsrMatrix X = cluster_with_outliers(kInliers, kOutliers, 5);
  const OneClassResult r = solve_one_class(X, rbf_options(0.1));
  const auto model = r.to_model(X, rbf_options(0.1).kernel);
  // All far-away points must be rejected; most inliers accepted.
  for (std::size_t i = kInliers; i < kInliers + kOutliers; ++i)
    EXPECT_LT(model.decision_value(X.row(i)), 0.0) << "outlier " << i << " accepted";
  std::size_t accepted = 0;
  for (std::size_t i = 0; i < kInliers; ++i)
    if (model.decision_value(X.row(i)) >= 0) ++accepted;
  EXPECT_GT(static_cast<double>(accepted) / kInliers, 0.8);
}

TEST(OneClass, RejectsNovelDrawFromDifferentRegion) {
  const CsrMatrix X = cluster_with_outliers(150, 0, 7);
  const OneClassResult r = solve_one_class(X, rbf_options(0.1));
  const auto model = r.to_model(X, rbf_options(0.1).kernel);
  CsrMatrix novel;
  novel.add_row(std::vector<Feature>{{0, 20.0}, {1, -20.0}});
  EXPECT_LT(model.decision_value(novel.row(0)), 0.0);
}

TEST(OneClass, ShrinkingOnOffSameAnswer) {
  const CsrMatrix X = cluster_with_outliers(120, 5, 9);
  OneClassOptions with = rbf_options(0.2);
  OneClassOptions without = rbf_options(0.2);
  without.use_shrinking = false;
  const auto a = solve_one_class(X, with);
  const auto b = solve_one_class(X, without);
  EXPECT_NEAR(a.rho, b.rho, 1e-3);
}

TEST(OneClass, ValidatesArguments) {
  const CsrMatrix X = cluster_with_outliers(10, 0, 11);
  EXPECT_THROW((void)solve_one_class(X, rbf_options(0.0)), std::invalid_argument);
  EXPECT_THROW((void)solve_one_class(X, rbf_options(1.5)), std::invalid_argument);
  CsrMatrix tiny;
  tiny.add_row(std::vector<Feature>{{0, 1.0}});
  EXPECT_THROW((void)solve_one_class(tiny, rbf_options(0.5)), std::invalid_argument);
}

TEST(OneClass, NuOneUsesEverySample) {
  const CsrMatrix X = cluster_with_outliers(60, 0, 13);
  const OneClassResult r = solve_one_class(X, rbf_options(1.0));
  // With nu = 1 the box forces alpha_i = 1/l for all i: every sample is a SV.
  for (const double a : r.alpha) EXPECT_NEAR(a, 1.0 / 60.0, 1e-9);
}

}  // namespace
