#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "mpisim/spmd.hpp"

namespace {

using svmmpi::Comm;
using svmmpi::DoubleInt;
using svmmpi::ReduceOp;
using svmmpi::run_spmd;

class CollectivesP : public ::testing::TestWithParam<int> {};

TEST_P(CollectivesP, BarrierCompletes) {
  run_spmd(GetParam(), [](Comm& comm) {
    for (int i = 0; i < 10; ++i) comm.barrier();
  });
}

TEST_P(CollectivesP, BcastFromEveryRoot) {
  const int p = GetParam();
  run_spmd(p, [p](Comm& comm) {
    for (int root = 0; root < p; ++root) {
      std::vector<int> data;
      if (comm.rank() == root) data = {root * 10, root * 10 + 1};
      comm.bcast(data, root);
      EXPECT_EQ(data, (std::vector<int>{root * 10, root * 10 + 1}));
    }
  });
}

TEST_P(CollectivesP, BcastValue) {
  run_spmd(GetParam(), [](Comm& comm) {
    const double v = comm.bcast_value(comm.rank() == 0 ? 2.5 : -1.0, 0);
    EXPECT_DOUBLE_EQ(v, 2.5);
  });
}

TEST_P(CollectivesP, AllreduceSumMatchesFormula) {
  const int p = GetParam();
  run_spmd(p, [p](Comm& comm) {
    const auto sum = comm.allreduce(static_cast<std::int64_t>(comm.rank() + 1), ReduceOp::sum);
    EXPECT_EQ(sum, static_cast<std::int64_t>(p) * (p + 1) / 2);
  });
}

TEST_P(CollectivesP, AllreduceMinMax) {
  const int p = GetParam();
  run_spmd(p, [p](Comm& comm) {
    EXPECT_DOUBLE_EQ(comm.allreduce(static_cast<double>(comm.rank()), ReduceOp::min), 0.0);
    EXPECT_DOUBLE_EQ(comm.allreduce(static_cast<double>(comm.rank()), ReduceOp::max),
                     static_cast<double>(p - 1));
  });
}

TEST_P(CollectivesP, AllreduceVectorElementwise) {
  const int p = GetParam();
  run_spmd(p, [p](Comm& comm) {
    const std::vector<double> mine{static_cast<double>(comm.rank()), 1.0,
                                   static_cast<double>(-comm.rank())};
    const auto out = comm.allreduce(std::span<const double>(mine), ReduceOp::sum);
    ASSERT_EQ(out.size(), 3u);
    const double ranks_sum = static_cast<double>(p) * (p - 1) / 2.0;
    EXPECT_DOUBLE_EQ(out[0], ranks_sum);
    EXPECT_DOUBLE_EQ(out[1], static_cast<double>(p));
    EXPECT_DOUBLE_EQ(out[2], -ranks_sum);
  });
}

TEST_P(CollectivesP, MinlocPicksSmallestValue) {
  const int p = GetParam();
  run_spmd(p, [p](Comm& comm) {
    // Rank r contributes value p - r, so the last rank has the minimum.
    const DoubleInt mine{static_cast<double>(p - comm.rank()), comm.rank()};
    const DoubleInt best = comm.allreduce_minloc(mine);
    EXPECT_DOUBLE_EQ(best.value, 1.0);
    EXPECT_EQ(best.index, p - 1);
  });
}

TEST_P(CollectivesP, MinlocTieBreaksTowardSmallerIndex) {
  run_spmd(GetParam(), [](Comm& comm) {
    const DoubleInt mine{5.0, comm.rank() + 100};
    const DoubleInt best = comm.allreduce_minloc(mine);
    EXPECT_EQ(best.index, 100);
  });
}

TEST_P(CollectivesP, MaxlocPicksLargestValue) {
  const int p = GetParam();
  run_spmd(p, [p](Comm& comm) {
    const DoubleInt mine{static_cast<double>(comm.rank()), comm.rank() * 2};
    const DoubleInt best = comm.allreduce_maxloc(mine);
    EXPECT_DOUBLE_EQ(best.value, static_cast<double>(p - 1));
    EXPECT_EQ(best.index, (p - 1) * 2);
  });
}

TEST_P(CollectivesP, MaxlocTieBreaksTowardSmallerIndex) {
  run_spmd(GetParam(), [](Comm& comm) {
    const DoubleInt mine{5.0, comm.rank() + 100};
    EXPECT_EQ(comm.allreduce_maxloc(mine).index, 100);
  });
}

TEST_P(CollectivesP, AllgatherOrderedByRank) {
  const int p = GetParam();
  run_spmd(p, [p](Comm& comm) {
    const auto all = comm.allgather(comm.rank() * 3);
    ASSERT_EQ(all.size(), static_cast<std::size_t>(p));
    for (int r = 0; r < p; ++r) EXPECT_EQ(all[r], r * 3);
  });
}

TEST_P(CollectivesP, AllgathervVariableLengths) {
  const int p = GetParam();
  run_spmd(p, [p](Comm& comm) {
    // Rank r contributes r elements (rank 0 contributes none).
    std::vector<double> mine(comm.rank(), static_cast<double>(comm.rank()));
    const auto parts = comm.allgatherv(std::span<const double>(mine));
    ASSERT_EQ(parts.size(), static_cast<std::size_t>(p));
    for (int r = 0; r < p; ++r) {
      ASSERT_EQ(parts[r].size(), static_cast<std::size_t>(r));
      for (const double v : parts[r]) EXPECT_DOUBLE_EQ(v, static_cast<double>(r));
    }
  });
}

TEST_P(CollectivesP, RepeatedCollectivesDoNotCrossRounds) {
  const int p = GetParam();
  run_spmd(p, [](Comm& comm) {
    for (int round = 0; round < 100; ++round) {
      const auto v = comm.allreduce(static_cast<std::int64_t>(round), ReduceOp::max);
      EXPECT_EQ(v, round);
    }
  });
}

TEST_P(CollectivesP, ReduceDeliversToRootOnly) {
  const int p = GetParam();
  run_spmd(p, [p](Comm& comm) {
    const std::vector<std::int64_t> mine{static_cast<std::int64_t>(comm.rank()), 1};
    const auto out = comm.reduce(std::span<const std::int64_t>(mine), ReduceOp::sum, 0);
    if (comm.rank() == 0) {
      EXPECT_EQ(out[0], static_cast<std::int64_t>(p) * (p - 1) / 2);
      EXPECT_EQ(out[1], p);
    } else {
      EXPECT_EQ(out, mine);  // non-root keeps its input
    }
  });
}

TEST_P(CollectivesP, GatherOrderedAtRoot) {
  const int p = GetParam();
  const int root = p - 1;
  run_spmd(p, [p, root](Comm& comm) {
    const std::vector<int> mine(comm.rank() + 1, comm.rank());
    const auto parts = comm.gather(std::span<const int>(mine), root);
    if (comm.rank() == root) {
      ASSERT_EQ(parts.size(), static_cast<std::size_t>(p));
      for (int r = 0; r < p; ++r) {
        ASSERT_EQ(parts[r].size(), static_cast<std::size_t>(r + 1));
        for (const int v : parts[r]) EXPECT_EQ(v, r);
      }
    } else {
      EXPECT_TRUE(parts.empty());
    }
  });
}

TEST_P(CollectivesP, ScatterDistributesParts) {
  const int p = GetParam();
  run_spmd(p, [p](Comm& comm) {
    std::vector<std::vector<double>> parts;
    if (comm.rank() == 0) {
      parts.resize(p);
      for (int r = 0; r < p; ++r) parts[r].assign(r + 2, static_cast<double>(r * 10));
    }
    const auto mine = comm.scatter(parts, 0);
    ASSERT_EQ(mine.size(), static_cast<std::size_t>(comm.rank() + 2));
    for (const double v : mine) EXPECT_DOUBLE_EQ(v, comm.rank() * 10.0);
  });
}

TEST(CollectivesScatter, RootValidatesPartCount) {
  EXPECT_THROW(run_spmd(2,
                        [](Comm& comm) {
                          std::vector<std::vector<int>> parts(1);  // wrong: need 2
                          (void)comm.scatter(parts, 0);
                        }),
               std::invalid_argument);
}

INSTANTIATE_TEST_SUITE_P(WorldSizes, CollectivesP, ::testing::Values(1, 2, 3, 4, 8));

TEST(CollectivesSplit, SplitByParity) {
  run_spmd(6, [](Comm& comm) {
    const int color = comm.rank() % 2;
    Comm sub = comm.split(color, comm.rank());
    EXPECT_EQ(sub.size(), 3);
    EXPECT_EQ(sub.rank(), comm.rank() / 2);
    // Collectives on the sub-communicator see only the subgroup.
    const auto sum = sub.allreduce(static_cast<std::int64_t>(comm.rank()), ReduceOp::sum);
    EXPECT_EQ(sum, color == 0 ? 0 + 2 + 4 : 1 + 3 + 5);
    // Point-to-point within the subgroup uses sub-ranks.
    if (sub.rank() == 0) sub.send_value(color * 10, 1);
    if (sub.rank() == 1) EXPECT_EQ(sub.recv_value<int>(0), color * 10);
  });
}

TEST(CollectivesSplit, SplitKeyReordersRanks) {
  run_spmd(4, [](Comm& comm) {
    // Reverse order: higher parent rank gets lower key.
    Comm sub = comm.split(0, -comm.rank());
    EXPECT_EQ(sub.rank(), comm.size() - 1 - comm.rank());
  });
}

TEST(CollectivesSplit, ParentStillUsableAfterSplit) {
  run_spmd(4, [](Comm& comm) {
    Comm sub = comm.split(comm.rank() / 2, 0);
    const auto total = comm.allreduce(1, ReduceOp::sum);
    EXPECT_EQ(total, 4);
    const auto sub_total = sub.allreduce(1, ReduceOp::sum);
    EXPECT_EQ(sub_total, 2);
  });
}

TEST(CollectivesModel, TreeCostGrowsWithRanks) {
  svmmpi::NetModel model;
  EXPECT_GT(model.tree(1000, 8), model.tree(1000, 2));
  EXPECT_EQ(svmmpi::NetModel::ceil_log2(1), 0);
  EXPECT_EQ(svmmpi::NetModel::ceil_log2(2), 1);
  EXPECT_EQ(svmmpi::NetModel::ceil_log2(5), 3);
  EXPECT_EQ(svmmpi::NetModel::ceil_log2(4096), 12);
}

TEST(CollectivesModel, CollectiveChargesModeledTime) {
  const auto stats = run_spmd(4, [](Comm& comm) { comm.barrier(); });
  EXPECT_EQ(stats.collectives, 4u);  // one per rank
  EXPECT_GT(stats.modeled_seconds, 0.0);
}

}  // namespace
