#include <gtest/gtest.h>

#include <vector>

#include "kernel/kernel_cache.hpp"

namespace {

using svmkernel::KernelRowCache;

std::vector<float> row_of(float value, std::size_t length = 10) {
  return std::vector<float>(length, value);
}

TEST(Cache, MissThenHit) {
  KernelRowCache cache(1 << 20);
  EXPECT_TRUE(cache.lookup(3).empty());
  EXPECT_EQ(cache.misses(), 1u);
  cache.insert(3, row_of(3.0f));
  const auto hit = cache.lookup(3);
  ASSERT_EQ(hit.size(), 10u);
  EXPECT_FLOAT_EQ(hit[0], 3.0f);
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(Cache, HitRate) {
  KernelRowCache cache(1 << 20);
  (void)cache.lookup(1);          // miss
  cache.insert(1, row_of(1.0f));
  (void)cache.lookup(1);          // hit
  (void)cache.lookup(1);          // hit
  (void)cache.lookup(2);          // miss
  EXPECT_DOUBLE_EQ(cache.hit_rate(), 0.5);
}

TEST(Cache, EvictsLeastRecentlyUsed) {
  // Budget for exactly two 10-float rows.
  KernelRowCache cache(2 * 10 * sizeof(float));
  cache.insert(1, row_of(1.0f));
  cache.insert(2, row_of(2.0f));
  (void)cache.lookup(1);  // bump row 1 to most-recent
  cache.insert(3, row_of(3.0f));  // must evict row 2
  EXPECT_FALSE(cache.lookup(1).empty());
  EXPECT_TRUE(cache.lookup(2).empty());
  EXPECT_FALSE(cache.lookup(3).empty());
  EXPECT_EQ(cache.entries(), 2u);
}

TEST(Cache, OversizedRowStillAdmitted) {
  KernelRowCache cache(4);  // smaller than any row
  cache.insert(1, row_of(1.0f));
  EXPECT_FALSE(cache.lookup(1).empty());
  EXPECT_EQ(cache.entries(), 1u);
}

TEST(Cache, ReinsertReplacesContent) {
  KernelRowCache cache(1 << 20);
  cache.insert(5, row_of(1.0f));
  cache.insert(5, row_of(2.0f, 4));
  const auto row = cache.lookup(5);
  ASSERT_EQ(row.size(), 4u);
  EXPECT_FLOAT_EQ(row[0], 2.0f);
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(cache.bytes_used(), 4 * sizeof(float));
}

TEST(Cache, BytesUsedTracksInsertAndEvict) {
  KernelRowCache cache(3 * 10 * sizeof(float));
  cache.insert(1, row_of(1.0f));
  cache.insert(2, row_of(2.0f));
  EXPECT_EQ(cache.bytes_used(), 2 * 10 * sizeof(float));
  cache.insert(3, row_of(3.0f));
  cache.insert(4, row_of(4.0f));  // evicts one
  EXPECT_EQ(cache.bytes_used(), 3 * 10 * sizeof(float));
}

TEST(Cache, ClearResetsContentButNotCounters) {
  KernelRowCache cache(1 << 20);
  cache.insert(1, row_of(1.0f));
  (void)cache.lookup(1);
  cache.clear();
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.bytes_used(), 0u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_TRUE(cache.lookup(1).empty());
}

// --- pinning (the lookup-span lifetime contract) -----------------------------

TEST(Cache, PinnedRowSurvivesInsertPressure) {
  // Budget for exactly one row: any insert after a hit would previously have
  // evicted the looked-up row and dangled the caller's span.
  KernelRowCache cache(10 * sizeof(float));
  cache.insert(1, row_of(1.0f));
  const auto pinned = cache.lookup(1);
  ASSERT_EQ(pinned.size(), 10u);

  cache.insert(2, row_of(2.0f));  // over budget; LRU victim is the pinned row
  // The pinned span is still alive and unchanged; the new row was admitted
  // anyway (transient budget overshoot, libsvm-style).
  for (std::size_t j = 0; j < pinned.size(); ++j) EXPECT_FLOAT_EQ(pinned[j], 1.0f);
  EXPECT_EQ(cache.entries(), 2u);
  EXPECT_GT(cache.bytes_used(), 10 * sizeof(float));
}

TEST(Cache, NextLookupReleasesThePin) {
  KernelRowCache cache(10 * sizeof(float));
  cache.insert(1, row_of(1.0f));
  (void)cache.lookup(1);          // pins row 1
  cache.insert(2, row_of(2.0f));  // row 1 pinned -> survives
  EXPECT_EQ(cache.entries(), 2u);

  (void)cache.lookup(2);          // releases row 1's pin, pins row 2
  cache.insert(3, row_of(3.0f));  // now row 1 is evictable (and is the LRU)
  EXPECT_TRUE(cache.lookup(1).empty());
  EXPECT_FALSE(cache.lookup(3).empty());
}

TEST(Cache, InsertOverPinnedIndexClearsPin) {
  KernelRowCache cache(10 * sizeof(float));
  cache.insert(1, row_of(1.0f));
  (void)cache.lookup(1);          // pins row 1
  cache.insert(1, row_of(9.0f));  // caller overwrites its own pinned row
  const auto row = cache.lookup(1);
  ASSERT_EQ(row.size(), 10u);
  EXPECT_FLOAT_EQ(row[0], 9.0f);
  // The overwrite released the stale pin: fresh inserts can evict normally.
  (void)cache.lookup(42);         // miss; releases row 1's new pin too
  cache.insert(2, row_of(2.0f));
  EXPECT_TRUE(cache.lookup(1).empty());
}

TEST(Cache, MissReleasesPinWithoutPinningAnything) {
  KernelRowCache cache(10 * sizeof(float));
  cache.insert(1, row_of(1.0f));
  (void)cache.lookup(1);           // pins row 1
  EXPECT_TRUE(cache.lookup(7).empty());  // miss: releases the pin, pins nothing
  cache.insert(7, row_of(7.0f));   // row 1 evictable again
  EXPECT_TRUE(cache.lookup(1).empty());
  EXPECT_LE(cache.bytes_used(), 10 * sizeof(float));
}

TEST(Cache, ManyInsertionsStayWithinBudget) {
  const std::size_t budget = 16 * 10 * sizeof(float);
  KernelRowCache cache(budget);
  for (std::size_t i = 0; i < 1000; ++i) cache.insert(i, row_of(static_cast<float>(i)));
  EXPECT_LE(cache.bytes_used(), budget);
  EXPECT_LE(cache.entries(), 16u);
  // The most recent entries survive.
  EXPECT_FALSE(cache.lookup(999).empty());
  EXPECT_TRUE(cache.lookup(0).empty());
}

}  // namespace
