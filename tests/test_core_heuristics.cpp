#include <gtest/gtest.h>

#include "core/heuristics.hpp"

namespace {

using svmcore::Heuristic;
using svmcore::ShrinkClass;

TEST(Heuristics, Table2HasThirteenRows) {
  const auto& rows = Heuristic::table2();
  ASSERT_EQ(rows.size(), 13u);
  EXPECT_EQ(rows[0].name(), "Original");
  // Table II order: Single random 2/500/1000, Single numsamples 5/10/50%,
  // then the Multi variants in the same order.
  EXPECT_EQ(rows[1].name(), "Single2");
  EXPECT_EQ(rows[2].name(), "Single500");
  EXPECT_EQ(rows[3].name(), "Single1000");
  EXPECT_EQ(rows[4].name(), "Single5pc");
  EXPECT_EQ(rows[5].name(), "Single10pc");
  EXPECT_EQ(rows[6].name(), "Single50pc");
  EXPECT_EQ(rows[7].name(), "Multi2");
  EXPECT_EQ(rows[12].name(), "Multi50pc");
}

TEST(Heuristics, ParseRoundTripsEveryTable2Name) {
  for (const Heuristic& h : Heuristic::table2()) EXPECT_EQ(Heuristic::parse(h.name()), h);
}

TEST(Heuristics, ParseIsCaseInsensitive) {
  EXPECT_EQ(Heuristic::parse("multi5PC"), Heuristic::best());
  EXPECT_EQ(Heuristic::parse("ORIGINAL"), Heuristic{});
  EXPECT_EQ(Heuristic::parse("default"), Heuristic{});
}

TEST(Heuristics, ParseRejectsGarbage) {
  EXPECT_THROW((void)Heuristic::parse("turbo"), std::invalid_argument);
  EXPECT_THROW((void)Heuristic::parse("Single"), std::invalid_argument);
  EXPECT_THROW((void)Heuristic::parse("Multi0pc"), std::invalid_argument);
  EXPECT_THROW((void)Heuristic::parse("Single200pc"), std::invalid_argument);
  EXPECT_THROW((void)Heuristic::parse("Multi0"), std::invalid_argument);
}

TEST(Heuristics, InitialThresholds) {
  EXPECT_EQ(Heuristic{}.initial_threshold(10000), ~0ULL);  // Original: never
  EXPECT_EQ(Heuristic::parse("Single2").initial_threshold(10000), 2u);
  EXPECT_EQ(Heuristic::parse("Multi500").initial_threshold(10000), 500u);
  EXPECT_EQ(Heuristic::parse("Single5pc").initial_threshold(10000), 500u);
  EXPECT_EQ(Heuristic::parse("Multi50pc").initial_threshold(60000), 30000u);
  // Never zero, even for tiny datasets.
  EXPECT_GE(Heuristic::parse("Single5pc").initial_threshold(3), 1u);
}

TEST(Heuristics, BestAndWorstMatchPaper) {
  // §V-D: best = Multi5pc, worst = Single50pc across the large datasets.
  EXPECT_EQ(Heuristic::best().name(), "Multi5pc");
  EXPECT_TRUE(Heuristic::best().multi_reconstruction);
  EXPECT_EQ(Heuristic::worst().name(), "Single50pc");
  EXPECT_FALSE(Heuristic::worst().multi_reconstruction);
}

TEST(Heuristics, ShrinkClassesMatchTable2Annotations) {
  // Table II: * aggressive, diamond average, dot conservative.
  EXPECT_EQ(Heuristic{}.shrink_class(), ShrinkClass::none);
  EXPECT_EQ(Heuristic::parse("Single2").shrink_class(), ShrinkClass::aggressive);
  EXPECT_EQ(Heuristic::parse("Single500").shrink_class(), ShrinkClass::aggressive);
  EXPECT_EQ(Heuristic::parse("Single1000").shrink_class(), ShrinkClass::average);
  EXPECT_EQ(Heuristic::parse("Single5pc").shrink_class(), ShrinkClass::aggressive);
  EXPECT_EQ(Heuristic::parse("Multi10pc").shrink_class(), ShrinkClass::average);
  EXPECT_EQ(Heuristic::parse("Multi50pc").shrink_class(), ShrinkClass::conservative);
}

TEST(Heuristics, ShrinkingEnabledFlag) {
  EXPECT_FALSE(Heuristic{}.shrinking_enabled());
  for (std::size_t i = 1; i < Heuristic::table2().size(); ++i)
    EXPECT_TRUE(Heuristic::table2()[i].shrinking_enabled());
}

TEST(Heuristics, ToStringOfClasses) {
  EXPECT_EQ(to_string(ShrinkClass::aggressive), "aggressive");
  EXPECT_EQ(to_string(ShrinkClass::average), "average");
  EXPECT_EQ(to_string(ShrinkClass::conservative), "conservative");
  EXPECT_EQ(to_string(ShrinkClass::none), "n/a");
}

}  // namespace
