#include <gtest/gtest.h>

#include <cmath>

#include "baseline/svr.hpp"
#include "util/rng.hpp"

namespace {

using svmbaseline::solve_svr;
using svmbaseline::SvrOptions;
using svmbaseline::SvrResult;
using svmdata::CsrMatrix;
using svmdata::Feature;
using svmkernel::KernelParams;
using svmkernel::KernelType;

/// 1-D inputs x in [lo, hi] with targets from `fn`, plus optional noise.
struct Regression1D {
  CsrMatrix X;
  std::vector<double> y;
};

template <typename Fn>
Regression1D make_1d(std::size_t n, double lo, double hi, Fn fn, double noise = 0.0,
                     std::uint64_t seed = 1) {
  svmutil::Rng rng(seed);
  Regression1D out;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(n - 1);
    out.X.add_row(std::vector<Feature>{{0, x}});
    out.y.push_back(fn(x) + (noise > 0 ? rng.normal(0.0, noise) : 0.0));
  }
  return out;
}

SvrOptions linear_options(double C = 100.0, double tube = 0.05) {
  SvrOptions o;
  o.C = C;
  o.epsilon_tube = tube;
  o.eps = 1e-4;
  o.kernel = KernelParams{KernelType::linear, 1.0, 0.0, 3};
  return o;
}

TEST(Svr, FitsLinearFunctionWithinTube) {
  const auto data = make_1d(40, -2.0, 2.0, [](double x) { return 2.0 * x + 1.0; });
  const SvrOptions options = linear_options();
  const SvrResult r = solve_svr(data.X, data.y, options);
  ASSERT_TRUE(r.converged);
  const auto model = r.to_model(data.X, options.kernel);
  for (std::size_t i = 0; i < data.y.size(); ++i) {
    const double predicted = model.decision_value(data.X.row(i));
    EXPECT_NEAR(predicted, data.y[i], options.epsilon_tube + 10 * options.eps) << "i=" << i;
  }
}

TEST(Svr, RecoversSlopeAndIntercept) {
  const auto data = make_1d(60, -3.0, 3.0, [](double x) { return -1.5 * x + 0.7; });
  const SvrOptions options = linear_options();
  const SvrResult r = solve_svr(data.X, data.y, options);
  const auto model = r.to_model(data.X, options.kernel);
  // Slope from two probe points, intercept at 0.
  CsrMatrix probes;
  probes.add_row(std::vector<Feature>{{0, 0.0}});
  probes.add_row(std::vector<Feature>{{0, 1.0}});
  const double f0 = model.decision_value(probes.row(0));
  const double f1 = model.decision_value(probes.row(1));
  EXPECT_NEAR(f1 - f0, -1.5, 0.1);
  EXPECT_NEAR(f0, 0.7, 0.1);
}

TEST(Svr, EqualityConstraintHolds) {
  const auto data = make_1d(50, 0.0, 5.0, [](double x) { return std::sin(x); }, 0.02, 3);
  SvrOptions options;
  options.C = 10.0;
  options.epsilon_tube = 0.05;
  options.kernel = KernelParams::rbf_with_sigma_sq(1.0);
  const SvrResult r = solve_svr(data.X, data.y, options);
  double sum = 0.0;
  for (const double c : r.coef) sum += c;
  EXPECT_NEAR(sum, 0.0, 1e-9);
}

TEST(Svr, CoefficientsRespectBoxConstraint) {
  const auto data = make_1d(50, 0.0, 5.0, [](double x) { return std::sin(x); }, 0.1, 5);
  SvrOptions options;
  options.C = 2.0;
  options.epsilon_tube = 0.02;
  options.kernel = KernelParams::rbf_with_sigma_sq(1.0);
  const SvrResult r = solve_svr(data.X, data.y, options);
  for (const double c : r.coef) {
    EXPECT_GE(c, -options.C - 1e-12);
    EXPECT_LE(c, options.C + 1e-12);
  }
}

TEST(Svr, FitsSineWithRbf) {
  const auto data = make_1d(80, 0.0, 6.283, [](double x) { return std::sin(x); });
  SvrOptions options;
  options.C = 50.0;
  options.epsilon_tube = 0.02;
  options.eps = 1e-4;
  options.kernel = KernelParams::rbf_with_sigma_sq(1.0);
  const SvrResult r = solve_svr(data.X, data.y, options);
  ASSERT_TRUE(r.converged);
  const auto model = r.to_model(data.X, options.kernel);
  double max_error = 0.0;
  for (std::size_t i = 0; i < data.y.size(); ++i)
    max_error = std::max(max_error,
                         std::abs(model.decision_value(data.X.row(i)) - data.y[i]));
  EXPECT_LT(max_error, 0.05);
}

TEST(Svr, InsideTubeSamplesAreNotSupportVectors) {
  // Fit noisy data with a wide tube: most samples sit strictly inside the
  // tube and must have zero coefficients (the sparsity property of the
  // epsilon-insensitive loss).
  const auto data = make_1d(100, -2.0, 2.0, [](double x) { return 0.5 * x; }, 0.01, 7);
  SvrOptions options = linear_options(10.0, /*tube=*/0.5);
  const SvrResult r = solve_svr(data.X, data.y, options);
  std::size_t support_vectors = 0;
  for (const double c : r.coef)
    if (c != 0.0) ++support_vectors;
  EXPECT_LT(support_vectors, data.y.size() / 4);
  EXPECT_GT(support_vectors, 0u);
}

TEST(Svr, WiderTubeGivesFewerSupportVectors) {
  const auto data = make_1d(100, 0.0, 6.283, [](double x) { return std::sin(x); }, 0.05, 9);
  auto count_svs = [&](double tube) {
    SvrOptions options;
    options.C = 10.0;
    options.epsilon_tube = tube;
    options.kernel = KernelParams::rbf_with_sigma_sq(1.0);
    const SvrResult r = solve_svr(data.X, data.y, options);
    std::size_t svs = 0;
    for (const double c : r.coef)
      if (c != 0.0) ++svs;
    return svs;
  };
  EXPECT_LT(count_svs(0.3), count_svs(0.01));
}

TEST(Svr, ShrinkingOnOffSameFit) {
  const auto data = make_1d(60, 0.0, 5.0, [](double x) { return std::cos(x); }, 0.02, 11);
  SvrOptions with;
  with.C = 10.0;
  with.epsilon_tube = 0.05;
  with.kernel = KernelParams::rbf_with_sigma_sq(1.0);
  SvrOptions without = with;
  without.use_shrinking = false;
  const auto a = solve_svr(data.X, data.y, with);
  const auto b = solve_svr(data.X, data.y, without);
  const auto model_a = a.to_model(data.X, with.kernel);
  const auto model_b = b.to_model(data.X, without.kernel);
  for (std::size_t i = 0; i < data.y.size(); i += 7)
    EXPECT_NEAR(model_a.decision_value(data.X.row(i)),
                model_b.decision_value(data.X.row(i)), 0.02);
}

TEST(Svr, OpenMpOnOffIdentical) {
  const auto data = make_1d(50, 0.0, 4.0, [](double x) { return x * x / 4.0; }, 0.02, 13);
  SvrOptions serial;
  serial.C = 10.0;
  serial.epsilon_tube = 0.05;
  serial.kernel = KernelParams::rbf_with_sigma_sq(2.0);
  serial.use_openmp = false;
  SvrOptions parallel = serial;
  parallel.use_openmp = true;
  const auto a = solve_svr(data.X, data.y, serial);
  const auto b = solve_svr(data.X, data.y, parallel);
  ASSERT_EQ(a.coef.size(), b.coef.size());
  for (std::size_t i = 0; i < a.coef.size(); ++i) EXPECT_EQ(a.coef[i], b.coef[i]);
  EXPECT_EQ(a.rho, b.rho);
}

TEST(Svr, ValidatesInput) {
  CsrMatrix X;
  X.add_row(std::vector<Feature>{{0, 1.0}});
  EXPECT_THROW((void)solve_svr(X, std::vector<double>{1.0, 2.0}, SvrOptions{}),
               std::invalid_argument);
  EXPECT_THROW((void)solve_svr(X, std::vector<double>{1.0}, SvrOptions{}),
               std::invalid_argument);
  CsrMatrix X2;
  X2.add_row(std::vector<Feature>{{0, 1.0}});
  X2.add_row(std::vector<Feature>{{0, 2.0}});
  SvrOptions bad;
  bad.epsilon_tube = -0.1;
  EXPECT_THROW((void)solve_svr(X2, std::vector<double>{1.0, 2.0}, bad), std::invalid_argument);
}

TEST(Svr, ConstantTargetsGiveFlatModel) {
  const auto data = make_1d(30, -1.0, 1.0, [](double) { return 3.0; });
  SvrOptions options = linear_options(10.0, 0.1);
  const SvrResult r = solve_svr(data.X, data.y, options);
  const auto model = r.to_model(data.X, options.kernel);
  CsrMatrix probe;
  probe.add_row(std::vector<Feature>{{0, 0.37}});
  EXPECT_NEAR(model.decision_value(probe.row(0)), 3.0, 0.2);
  // All targets inside the tube around the constant: no support vectors at
  // all is legitimate (model is pure bias).
}

}  // namespace
