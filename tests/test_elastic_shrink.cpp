// ULFM-style elastic recovery in the mpisim layer: a permanent rank death
// (FaultPlan::die) under run_spmd_elastic is marked in the World instead of
// aborting it; survivors' blocked operations surface the recoverable
// RankLost verdict promptly (poke-driven, not deadline-driven), agreement
// completes across the survivors, and Comm::shrink yields a compacted
// renumbered communicator whose collectives and ring exchanges keep working.
#include <gtest/gtest.h>

#include <array>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "mpisim/comm.hpp"
#include "mpisim/fault.hpp"
#include "mpisim/spmd.hpp"

namespace {

using svmmpi::Comm;
using svmmpi::ElasticReport;
using svmmpi::FaultInjector;
using svmmpi::FaultPlan;
using svmmpi::NetModel;
using svmmpi::RankLost;
using svmmpi::ReduceOp;

NetModel elastic_model(double timeout_s = 5.0) {
  NetModel model;
  model.timeout_s = timeout_s;
  return model;
}

TEST(ElasticSpmd, RequiresDeadlineDrivenDetection) {
  EXPECT_THROW((void)svmmpi::run_spmd_elastic(2, [](Comm&) {}, NetModel{}),
               std::invalid_argument);
}

TEST(ElasticSpmd, FaultFreeRegionRunsToCompletion) {
  std::array<int, 4> sums{};
  const ElasticReport report = svmmpi::run_spmd_elastic(
      4, [&](Comm& comm) { sums[comm.rank()] = comm.allreduce(comm.rank(), ReduceOp::sum); },
      elastic_model());
  EXPECT_TRUE(report.failed_ranks.empty());
  EXPECT_FALSE(report.any_permanent);
  for (const int s : sums) EXPECT_EQ(s, 0 + 1 + 2 + 3);
}

TEST(ElasticSpmd, DieSurfacesRankLostToEverySurvivor) {
  FaultInjector injector{FaultPlan{}.die(2, 1)};
  std::array<bool, 4> caught{};
  std::array<bool, 4> permanent{};
  const ElasticReport report = svmmpi::run_spmd_elastic(
      4,
      [&](Comm& comm) {
        try {
          (void)comm.allreduce(comm.rank(), ReduceOp::sum);
          ADD_FAILURE() << "rank " << comm.rank() << " completed a collective missing a member";
        } catch (const RankLost& lost) {
          caught[comm.rank()] = true;
          permanent[comm.rank()] = lost.permanent;
          EXPECT_EQ(lost.dead, std::vector<int>{2});
        }
      },
      elastic_model(), nullptr, &injector);
  EXPECT_EQ(report.failed_ranks, std::vector<int>{2});
  EXPECT_TRUE(report.any_permanent);
  for (const int r : {0, 1, 3}) {
    EXPECT_TRUE(caught[r]) << "survivor " << r;
    EXPECT_TRUE(permanent[r]) << "survivor " << r;
  }
  EXPECT_FALSE(caught[2]) << "the dead rank must not observe its own loss as RankLost";
}

TEST(ElasticSpmd, TransientCrashIsReportedNonPermanent) {
  FaultInjector injector{FaultPlan{}.crash(1, 1)};
  std::array<bool, 2> permanent{true, true};
  const ElasticReport report = svmmpi::run_spmd_elastic(
      2,
      [&](Comm& comm) {
        try {
          (void)comm.allreduce(1, ReduceOp::sum);
        } catch (const RankLost& lost) {
          permanent[comm.rank()] = lost.permanent;
        }
      },
      elastic_model(), nullptr, &injector);
  EXPECT_EQ(report.failed_ranks, std::vector<int>{1});
  EXPECT_FALSE(report.any_permanent);
  EXPECT_FALSE(permanent[0]);
}

TEST(ElasticSpmd, RecvFromDeadPeerIsInterruptedPromptly) {
  // The deadline is deliberately generous: a prompt RankLost proves the
  // interrupt/poke path fired, not the timeout backstop.
  FaultInjector injector{FaultPlan{}.die(1, 1)};
  bool caught = false;
  const auto start = std::chrono::steady_clock::now();
  (void)svmmpi::run_spmd_elastic(
      2,
      [&](Comm& comm) {
        if (comm.rank() == 1) {
          comm.send_value(7, 0);  // the die event fires on this op
          return;
        }
        try {
          (void)comm.recv_value<int>(1);
        } catch (const RankLost& lost) {
          caught = true;
          EXPECT_EQ(lost.dead, std::vector<int>{1});
        }
      },
      elastic_model(/*timeout_s=*/30.0), nullptr, &injector);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  EXPECT_TRUE(caught);
  EXPECT_LT(elapsed, 10.0) << "RankLost must beat the 30s deadline by a wide margin";
}

TEST(ElasticSpmd, AgreeReturnsSortedUnionAcrossRanks) {
  std::array<std::vector<int>, 3> agreed;
  (void)svmmpi::run_spmd_elastic(
      3,
      [&](Comm& comm) {
        agreed[comm.rank()] = comm.agree({comm.rank(), 10 + comm.rank(), 42});
      },
      elastic_model());
  const std::vector<int> expected{0, 1, 2, 10, 11, 12, 42};
  for (const auto& result : agreed) EXPECT_EQ(result, expected);
}

TEST(ElasticSpmd, ShrinkCompactsRenumbersAndKeepsCommunicating) {
  FaultInjector injector{FaultPlan{}.die(2, 1)};
  std::array<int, 4> new_size{}, new_rank{-1, -1, -1, -1}, sum{}, ring_peer{-1, -1, -1, -1};
  const ElasticReport report = svmmpi::run_spmd_elastic(
      4,
      [&](Comm& comm) {
        try {
          (void)comm.allreduce(comm.rank(), ReduceOp::sum);
        } catch (const RankLost&) {
          Comm next = comm.shrink();
          const int world_rank = comm.world_rank_of(comm.rank());
          new_size[world_rank] = next.size();
          new_rank[world_rank] = next.rank();
          // Collectives over the shrunken communicator: sum of surviving
          // world ranks.
          sum[world_rank] = next.allreduce(world_rank, ReduceOp::sum);
          // Ring exchange (the Algorithm 3 building block): pass my world
          // rank one step around the survivors' ring.
          const int to = (next.rank() + 1) % next.size();
          const int from = (next.rank() + next.size() - 1) % next.size();
          const std::vector<int> got = next.sendrecv(
              std::span<const int>(&world_rank, 1), to, from);
          ring_peer[world_rank] = got.at(0);
          next.barrier();
        }
      },
      elastic_model(), nullptr, &injector);
  EXPECT_EQ(report.failed_ranks, std::vector<int>{2});
  // Survivors 0,1,3 renumbered 0,1,2; ascending world-rank order preserved.
  EXPECT_EQ(new_rank[0], 0);
  EXPECT_EQ(new_rank[1], 1);
  EXPECT_EQ(new_rank[3], 2);
  for (const int r : {0, 1, 3}) {
    EXPECT_EQ(new_size[r], 3);
    EXPECT_EQ(sum[r], 0 + 1 + 3);
  }
  // Ring: 0 <- 3, 1 <- 0, 3 <- 1.
  EXPECT_EQ(ring_peer[0], 3);
  EXPECT_EQ(ring_peer[1], 0);
  EXPECT_EQ(ring_peer[3], 1);
}

TEST(ElasticSpmd, ShrinkExcludesDeathsMarkedDuringAgreement) {
  // Two permanent deaths: rank 1 dies immediately; rank 3 dies on its second
  // op, typically while the survivors are already agreeing. The dynamic dead
  // set must fold the late death in, so the final communicator is {0, 2}.
  FaultInjector injector{FaultPlan{}.die(1, 1).die(3, 2)};
  std::array<int, 4> final_size{}, final_rank{-1, -1, -1, -1};
  const ElasticReport report = svmmpi::run_spmd_elastic(
      4,
      [&](Comm& comm) {
        Comm current = comm;
        for (;;) {
          try {
            (void)current.allreduce(current.rank(), ReduceOp::sum);
            break;
          } catch (const RankLost&) {
            current = current.shrink();
          }
        }
        const int world_rank = current.world_rank_of(current.rank());
        final_size[world_rank] = current.size();
        final_rank[world_rank] = current.rank();
      },
      elastic_model(), nullptr, &injector);
  EXPECT_EQ(report.failed_ranks, (std::vector<int>{1, 3}));
  EXPECT_EQ(final_size[0], 2);
  EXPECT_EQ(final_size[2], 2);
  EXPECT_EQ(final_rank[0], 0);
  EXPECT_EQ(final_rank[2], 1);
}

}  // namespace
