// Whole-solve backend parity: a solve with engine_backend = dense_scatter
// or simd (vectorized RowStore panels at f64) must produce a BIT-IDENTICAL
// model to engine_backend = reference — same iteration count, same beta,
// same support vectors, same coefficients, on zoo datasets, for the
// sequential and the distributed solver, with and without shrinking, and
// through a checkpoint/restart chaos run. The backend is a performance
// knob, never a results knob.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/distributed_solver.hpp"
#include "core/sequential_smo.hpp"
#include "core/trainer.hpp"
#include "data/zoo.hpp"
#include "mpisim/fault.hpp"
#include "mpisim/spmd.hpp"

namespace {

using svmcore::DistributedConfig;
using svmcore::DistributedSolver;
using svmcore::Heuristic;
using svmcore::RecoveryOptions;
using svmcore::RecoveryReport;
using svmcore::SolverParams;
using svmcore::TrainOptions;
using svmcore::TrainResult;
using svmdata::Dataset;
using svmdata::ZooEntry;
using svmkernel::EngineBackend;
using svmkernel::KernelParams;

SolverParams params_for(const ZooEntry& entry, EngineBackend backend) {
  SolverParams p;
  p.C = entry.C;
  p.eps = 1e-3;
  p.kernel = KernelParams::rbf_with_sigma_sq(entry.sigma_sq);
  p.engine_backend = backend;
  return p;
}

void expect_bit_identical(const TrainResult& a, const TrainResult& b) {
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.beta, b.beta);
  EXPECT_EQ(a.converged, b.converged);
  ASSERT_EQ(a.model.num_support_vectors(), b.model.num_support_vectors());
  for (std::size_t j = 0; j < a.model.num_support_vectors(); ++j)
    EXPECT_EQ(a.model.coefficients()[j], b.model.coefficients()[j]) << "sv " << j;
}

struct ParityCase {
  const char* dataset;
  const char* heuristic;
  int ranks;
  double scale;
};

class ModelParityP : public ::testing::TestWithParam<ParityCase> {};

TEST_P(ModelParityP, DenseScatterModelBitIdenticalToReference) {
  const ParityCase c = GetParam();
  const ZooEntry& entry = svmdata::zoo_entry(c.dataset);
  const Dataset train = svmdata::make_train(entry, c.scale);

  TrainOptions options;
  options.num_ranks = c.ranks;
  options.heuristic = Heuristic::parse(c.heuristic);

  const TrainResult ref =
      svmcore::train(train, params_for(entry, EngineBackend::reference), options);
  const TrainResult fused =
      svmcore::train(train, params_for(entry, EngineBackend::dense_scatter), options);
  const TrainResult simd =
      svmcore::train(train, params_for(entry, EngineBackend::simd), options);

  ASSERT_TRUE(ref.converged) << c.dataset;
  expect_bit_identical(fused, ref);
  expect_bit_identical(simd, ref);
  // Work accounting matches too: the fused and simd paths report one
  // evaluation per produced kernel value, exactly like the reference merge
  // join.
  EXPECT_EQ(fused.total_kernel_evaluations, ref.total_kernel_evaluations);
  EXPECT_EQ(simd.total_kernel_evaluations, ref.total_kernel_evaluations);
}

INSTANTIATE_TEST_SUITE_P(
    Zoo, ModelParityP,
    ::testing::Values(ParityCase{"a9a", "Original", 2, 0.15},       // sparse, no shrink
                      ParityCase{"w7a", "Multi5pc", 3, 0.15},       // sparse, shrinking
                      ParityCase{"usps", "Multi2", 2, 0.2},         // dense-ish pixels
                      ParityCase{"codrna", "Single5pc", 4, 0.15},   // dense tabular
                      ParityCase{"mushrooms", "Original", 1, 0.4}),
    [](const auto& param_info) {
      return std::string(param_info.param.dataset) + "_" + param_info.param.heuristic +
             "_r" + std::to_string(param_info.param.ranks);
    });

TEST(EngineParity, SequentialAlphasBitIdenticalAcrossBackends) {
  const ZooEntry& entry = svmdata::zoo_entry("a9a");
  const Dataset train = svmdata::make_train(entry, 0.15);

  const auto ref =
      svmcore::solve_sequential(train, params_for(entry, EngineBackend::reference));
  const auto fused =
      svmcore::solve_sequential(train, params_for(entry, EngineBackend::dense_scatter));
  const auto simd = svmcore::solve_sequential(train, params_for(entry, EngineBackend::simd));

  ASSERT_TRUE(ref.stats.converged);
  EXPECT_EQ(fused.stats.iterations, ref.stats.iterations);
  EXPECT_EQ(fused.beta, ref.beta);
  EXPECT_EQ(simd.stats.iterations, ref.stats.iterations);
  EXPECT_EQ(simd.beta, ref.beta);
  ASSERT_EQ(fused.alpha.size(), ref.alpha.size());
  ASSERT_EQ(simd.alpha.size(), ref.alpha.size());
  for (std::size_t i = 0; i < ref.alpha.size(); ++i) {
    EXPECT_EQ(fused.alpha[i], ref.alpha[i]) << "alpha " << i;
    EXPECT_EQ(simd.alpha[i], ref.alpha[i]) << "alpha " << i;
  }
}

TEST(EngineParity, CheckpointRestartPreservesBackendParity) {
  // The strongest form of the guarantee: a dense_scatter (resp. simd) run
  // that crashes mid-solve and restarts from a checkpoint must still land
  // bit-identical to a fault-free REFERENCE-backend run.
  const ZooEntry& entry = svmdata::zoo_entry("mushrooms");
  const Dataset train = svmdata::make_train(entry, 0.4);

  TrainOptions options;
  options.num_ranks = 4;
  options.heuristic = Heuristic::parse("Multi5pc");

  const TrainResult baseline =
      svmcore::train(train, params_for(entry, EngineBackend::reference), options);
  ASSERT_TRUE(baseline.converged);

  for (const EngineBackend backend : {EngineBackend::dense_scatter, EngineBackend::simd}) {
    SCOPED_TRACE(svmkernel::to_string(backend));

    // Probe a fault-free run's op count so the crash lands mid-solve.
    svmmpi::FaultInjector probe{svmmpi::FaultPlan{}};
    const SolverParams fast_params = params_for(entry, backend);
    const DistributedConfig config{fast_params, options.heuristic, options.permanent_shrink,
                                   options.openmp_gamma, options.trace_active_interval};
    svmmpi::run_spmd(
        options.num_ranks,
        [&](svmmpi::Comm& comm) {
          DistributedSolver solver(comm, train, config);
          (void)solver.solve();
        },
        options.net_model, nullptr, &probe);
    const std::uint64_t total_ops = probe.ops(1);
    ASSERT_GT(total_ops, 100u);

    RecoveryOptions recovery;
    recovery.fault_plan = svmmpi::FaultPlan{}.crash(1, total_ops / 2);
    recovery.checkpoint_interval = 32;
    RecoveryReport report;
    const TrainResult recovered =
        svmcore::train_with_recovery(train, fast_params, options, recovery, &report);

    EXPECT_EQ(report.restarts, 1);
    EXPECT_GT(report.checkpoints_saved, 0u);
    EXPECT_TRUE(recovered.converged);
    expect_bit_identical(recovered, baseline);
  }
}

TEST(EngineParity, PredictionsAgreeAcrossBackends) {
  const ZooEntry& entry = svmdata::zoo_entry("usps");
  const Dataset train = svmdata::make_train(entry, 0.2);
  const Dataset test = svmdata::make_test(entry, 0.2);
  ASSERT_GT(test.size(), 0u);

  TrainOptions options;
  options.num_ranks = 2;
  const TrainResult model =
      svmcore::train(train, params_for(entry, EngineBackend::dense_scatter), options);
  ASSERT_TRUE(model.converged);

  // Engine-backed scoring (distributed predict path) vs the stateless
  // per-sample evaluation: identical decisions, including the simd RowStore
  // path at f64.
  auto ref_engine = model.model.make_engine(EngineBackend::reference);
  auto fused_engine = model.model.make_engine(EngineBackend::dense_scatter);
  auto simd_engine = model.model.make_engine(EngineBackend::simd);
  for (std::size_t i = 0; i < test.size(); ++i) {
    const double a = model.model.decision_value(test.X.row(i), ref_engine);
    const double b = model.model.decision_value(test.X.row(i), fused_engine);
    const double c = model.model.decision_value(test.X.row(i), simd_engine);
    EXPECT_EQ(a, b) << "sample " << i;
    EXPECT_EQ(a, c) << "sample " << i;
  }
}

}  // namespace
