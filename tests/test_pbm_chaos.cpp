// PBM under fault injection: a permanent rank death between outer rounds
// must be survivable by shrink-world recovery, and — because the dense-delta
// trajectory is partition-independent and checkpoints land at round
// boundaries — the recovered model must be BIT-IDENTICAL to a fault-free
// run's, even though the survivors finish the solve on p-1 ranks with a
// repartitioned block assignment.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/trainer.hpp"
#include "data/synthetic.hpp"
#include "mpisim/fault.hpp"

namespace {

using svmcore::RecoveryOptions;
using svmcore::RecoveryPolicy;
using svmcore::RecoveryReport;
using svmcore::SolverAlgo;
using svmcore::SolverParams;
using svmcore::TrainOptions;
using svmcore::TrainResult;
using svmdata::Dataset;
using svmkernel::KernelParams;
using svmmpi::FaultPlan;

Dataset chaos_dataset() {
  return svmdata::synthetic::gaussian_blobs(
      {.n = 160, .d = 6, .separation = 1.8, .label_noise = 0.05, .seed = 41});
}

SolverParams pbm_params() {
  SolverParams p;
  p.C = 4.0;
  p.eps = 1e-3;
  p.kernel = KernelParams::rbf_with_sigma_sq(4.0);
  p.algo = SolverAlgo::pbm;
  return p;
}

TrainOptions ranks4() {
  TrainOptions options;
  options.num_ranks = 4;
  options.net_model.timeout_s = 5.0;  // deadline-driven failure detection
  return options;
}

TEST(PbmChaos, ShrinkMidRoundRecoversBitIdenticalModel) {
  const Dataset d = chaos_dataset();
  const SolverParams params = pbm_params();
  const TrainOptions options = ranks4();

  // Fault-free reference (same checkpoint cadence so schedules align).
  RecoveryOptions clean;
  clean.policy = RecoveryPolicy::shrink_world;
  clean.checkpoint_interval = 1;  // every outer round
  RecoveryReport clean_rep;
  const TrainResult reference = svmcore::train_with_recovery(d, params, options, clean, &clean_rep);
  ASSERT_TRUE(reference.converged);
  ASSERT_EQ(clean_rep.shrinks, 0);

  // Kill rank 2 permanently partway through the solve. PBM issues a handful
  // of collectives per outer round; op 9 lands between outer rounds (after
  // round-0's checkpoint exists on every rank).
  RecoveryOptions faulty = clean;
  faulty.fault_plan = FaultPlan{}.die(2, 9);
  RecoveryReport rep;
  const TrainResult recovered = svmcore::train_with_recovery(d, params, options, faulty, &rep);

  EXPECT_TRUE(recovered.converged);
  EXPECT_EQ(rep.shrinks, 1);
  EXPECT_EQ(rep.ranks_lost, std::vector<int>{2});
  EXPECT_GT(rep.checkpoints_saved, 0u);

  // Bit-identical-model recovery: the survivors replayed from a round
  // boundary with the same fixed block structure, so every multiplier, the
  // threshold and the round count match the fault-free run exactly.
  EXPECT_EQ(recovered.iterations, reference.iterations);
  EXPECT_EQ(recovered.beta, reference.beta);
  ASSERT_EQ(recovered.alpha.size(), reference.alpha.size());
  for (std::size_t i = 0; i < reference.alpha.size(); ++i)
    EXPECT_EQ(recovered.alpha[i], reference.alpha[i]) << "alpha[" << i << "]";
  ASSERT_EQ(recovered.model.num_support_vectors(), reference.model.num_support_vectors());
  for (std::size_t j = 0; j < reference.model.num_support_vectors(); ++j)
    EXPECT_EQ(recovered.model.coefficients()[j], reference.model.coefficients()[j]);
}

TEST(PbmChaos, LateDeathAfterSeveralRoundsStillRecovers) {
  const Dataset d = chaos_dataset();
  const SolverParams params = pbm_params();
  const TrainOptions options = ranks4();

  RecoveryOptions clean;
  clean.policy = RecoveryPolicy::shrink_world;
  clean.checkpoint_interval = 1;
  const TrainResult reference = svmcore::train_with_recovery(d, params, options, clean);

  RecoveryOptions faulty = clean;
  faulty.fault_plan = FaultPlan{}.die(1, 23);
  RecoveryReport rep;
  const TrainResult recovered = svmcore::train_with_recovery(d, params, options, faulty, &rep);

  EXPECT_TRUE(recovered.converged);
  EXPECT_GE(rep.shrinks + rep.restarts, 1);
  EXPECT_EQ(recovered.iterations, reference.iterations);
  EXPECT_EQ(recovered.beta, reference.beta);
  ASSERT_EQ(recovered.alpha.size(), reference.alpha.size());
  for (std::size_t i = 0; i < reference.alpha.size(); ++i)
    EXPECT_EQ(recovered.alpha[i], reference.alpha[i]);
}

}  // namespace
