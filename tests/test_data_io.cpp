#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "data/libsvm_io.hpp"
#include "data/synthetic.hpp"

namespace {

using svmdata::Dataset;
using svmdata::read_libsvm;
using svmdata::write_libsvm;

TEST(LibsvmIo, ParsesBasicFile) {
  std::istringstream in("+1 1:0.5 3:2\n-1 2:1\n");
  const Dataset d = read_libsvm(in);
  ASSERT_EQ(d.size(), 2u);
  EXPECT_DOUBLE_EQ(d.y[0], 1.0);
  EXPECT_DOUBLE_EQ(d.y[1], -1.0);
  ASSERT_EQ(d.X.row(0).size(), 2u);
  EXPECT_EQ(d.X.row(0)[0].index, 0);  // 1-based in file, 0-based in memory
  EXPECT_EQ(d.X.row(0)[1].index, 2);
  EXPECT_DOUBLE_EQ(d.X.row(0)[1].value, 2.0);
}

TEST(LibsvmIo, SkipsBlankAndCommentLines) {
  std::istringstream in("\n# a comment\n+1 1:1\n   \n-1 1:2\n");
  EXPECT_EQ(read_libsvm(in).size(), 2u);
}

TEST(LibsvmIo, MapsZeroOneLabels) {
  std::istringstream in("1 1:1\n0 1:2\n1 1:3\n");
  const Dataset d = read_libsvm(in);
  EXPECT_DOUBLE_EQ(d.y[0], 1.0);   // first-seen raw label -> +1
  EXPECT_DOUBLE_EQ(d.y[1], -1.0);
  EXPECT_DOUBLE_EQ(d.y[2], 1.0);
}

TEST(LibsvmIo, KeepsPlusMinusOneLabels) {
  std::istringstream in("-1 1:1\n+1 1:2\n");
  const Dataset d = read_libsvm(in);
  EXPECT_DOUBLE_EQ(d.y[0], -1.0);
  EXPECT_DOUBLE_EQ(d.y[1], 1.0);
}

TEST(LibsvmIo, RejectsThreeLabels) {
  std::istringstream in("1 1:1\n2 1:1\n3 1:1\n");
  EXPECT_THROW(read_libsvm(in), std::runtime_error);
}

TEST(LibsvmIo, RejectsMalformedPair) {
  std::istringstream in("+1 1:1 2\n");
  EXPECT_THROW(read_libsvm(in), std::runtime_error);
}

TEST(LibsvmIo, RejectsZeroIndex) {
  std::istringstream in("+1 0:1\n");
  EXPECT_THROW(read_libsvm(in), std::runtime_error);
}

TEST(LibsvmIo, RejectsDecreasingIndices) {
  std::istringstream in("+1 3:1 2:1\n");
  EXPECT_THROW(read_libsvm(in), std::runtime_error);
}

TEST(LibsvmIo, ErrorMessageCarriesLineNumber) {
  std::istringstream in("+1 1:1\n+1 bad\n");
  try {
    (void)read_libsvm(in);
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

// Every malformed line must fail with a clear line-numbered parse error —
// never UB, never a silently mangled dataset.
void expect_parse_error(const std::string& text, std::size_t line,
                        const std::string& what_fragment) {
  std::istringstream in(text);
  try {
    (void)read_libsvm(in);
    FAIL() << "expected parse error for: " << text;
  } catch (const std::runtime_error& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("line " + std::to_string(line)), std::string::npos) << message;
    EXPECT_NE(message.find(what_fragment), std::string::npos) << message;
  }
}

TEST(LibsvmIo, RejectsNonNumericIndex) {
  expect_parse_error("+1 1:1\n+1 abc:2\n", 2, "integer index");
}

TEST(LibsvmIo, RejectsNegativeIndex) {
  expect_parse_error("+1 -3:2\n", 1, "index must be >= 1");
}

TEST(LibsvmIo, RejectsDuplicateIndex) {
  expect_parse_error("+1 2:1 2:5\n", 1, "duplicate feature index");
}

TEST(LibsvmIo, RejectsIndexOverflowing32Bits) {
  expect_parse_error("+1 4294967295:1\n", 1, "overflows 32 bits");
}

TEST(LibsvmIo, RejectsTruncatedPair) {
  expect_parse_error("+1 1:1\n-1 3:\n", 2, "missing feature value");
}

TEST(LibsvmIo, RejectsWhitespaceAfterColon) {
  // strtod would silently skip the space and parse the next token.
  expect_parse_error("+1 3: 5\n", 1, "missing feature value");
}

TEST(LibsvmIo, RejectsNonNumericValue) {
  expect_parse_error("+1 3:x\n", 1, "expected a number");
}

TEST(LibsvmIo, RejectsNonFiniteValues) {
  expect_parse_error("+1 1:inf\n", 1, "non-finite");
  expect_parse_error("+1 1:nan\n", 1, "non-finite");
  expect_parse_error("nan 1:1\n", 1, "non-finite");
}

TEST(LibsvmIo, RejectsMissingColon) {
  expect_parse_error("+1 17\n", 1, "expected ':'");
}

TEST(LibsvmIo, DropsExplicitZeroValues) {
  std::istringstream in("+1 1:0 2:5\n-1 1:1\n");
  const Dataset d = read_libsvm(in);
  EXPECT_EQ(d.X.row(0).size(), 1u);
  EXPECT_EQ(d.X.row(0)[0].index, 1);
}

TEST(LibsvmIo, MaxRowsCap) {
  std::istringstream in("+1 1:1\n-1 1:2\n+1 1:3\n");
  EXPECT_EQ(read_libsvm(in, {.max_rows = 2}).size(), 2u);
}

TEST(LibsvmIo, RoundTripExact) {
  const Dataset original =
      svmdata::synthetic::gaussian_blobs({.n = 50, .d = 7, .separation = 2.0, .seed = 3});
  std::ostringstream out;
  write_libsvm(out, original);
  std::istringstream in(out.str());
  const Dataset loaded = read_libsvm(in);
  ASSERT_EQ(loaded.size(), original.size());
  EXPECT_EQ(loaded.X.nonzeros(), original.X.nonzeros());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(loaded.y[i], original.y[i]);
    const auto a = original.X.row(i);
    const auto b = loaded.X.row(i);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t k = 0; k < a.size(); ++k) {
      EXPECT_EQ(a[k].index, b[k].index);
      EXPECT_EQ(a[k].value, b[k].value);  // %.17g round-trips exactly
    }
  }
}

class SliceP : public ::testing::TestWithParam<int> {};

TEST_P(SliceP, SlicesConcatenateToWholeFile) {
  const Dataset original =
      svmdata::synthetic::gaussian_blobs({.n = 97, .d = 5, .separation = 2.0, .seed = 7});
  const int p = GetParam();
  // Path must be unique per instance: ctest runs the instances concurrently.
  const std::string path =
      ::testing::TempDir() + "/slices_p" + std::to_string(p) + ".libsvm";
  svmdata::write_libsvm_file(path, original);
  Dataset reassembled;
  for (int r = 0; r < p; ++r) {
    const Dataset slice = svmdata::read_libsvm_slice(path, r, p);
    for (std::size_t i = 0; i < slice.size(); ++i) {
      reassembled.X.add_row(slice.X.row(i));
      reassembled.y.push_back(slice.y[i]);
    }
  }
  ASSERT_EQ(reassembled.size(), original.size());
  EXPECT_EQ(reassembled.X.nonzeros(), original.X.nonzeros());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(reassembled.y[i], original.y[i]);
    ASSERT_EQ(reassembled.X.row(i).size(), original.X.row(i).size());
    for (std::size_t k = 0; k < original.X.row(i).size(); ++k)
      EXPECT_EQ(reassembled.X.row(i)[k].value, original.X.row(i)[k].value);
  }
}

INSTANTIATE_TEST_SUITE_P(RankCounts, SliceP, ::testing::Values(1, 2, 3, 7, 16));

TEST(LibsvmSlice, MorePartsThanLinesLeavesSomeEmpty) {
  std::ostringstream data;
  data << "+1 1:1\n-1 1:2\n";
  const std::string path = ::testing::TempDir() + "/two_lines.libsvm";
  {
    std::ofstream out(path);
    out << data.str();
  }
  std::size_t total = 0;
  for (int r = 0; r < 8; ++r) total += svmdata::read_libsvm_slice(path, r, 8).size();
  EXPECT_EQ(total, 2u);
}

TEST(LibsvmSlice, FileWithoutTrailingNewline) {
  const std::string path = ::testing::TempDir() + "/no_newline.libsvm";
  {
    std::ofstream out(path);
    out << "+1 1:1\n-1 1:2\n+1 2:3";  // last line unterminated
  }
  std::size_t total = 0;
  for (int r = 0; r < 3; ++r) total += svmdata::read_libsvm_slice(path, r, 3).size();
  EXPECT_EQ(total, 3u);
}

TEST(LibsvmSlice, InvalidRankThrows) {
  EXPECT_THROW((void)svmdata::read_libsvm_slice("/nonexistent", 0, 0), std::runtime_error);
  EXPECT_THROW((void)svmdata::read_libsvm_slice("/nonexistent", 2, 2), std::runtime_error);
}

TEST(LibsvmIo, MissingFileThrows) {
  EXPECT_THROW((void)svmdata::read_libsvm_file("/nonexistent/path.svm"), std::runtime_error);
}

}  // namespace
