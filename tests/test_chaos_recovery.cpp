// Checkpoint/restart fault tolerance. A seeded FaultPlan kills a rank (and
// optionally drops/delays messages) mid-solve; train_with_recovery must
// restart from the last consistent checkpoint cut and converge to the same
// model a fault-free run produces — bit-identical for a crash-only schedule,
// within 1e-10 for schedules that also perturb timing. With recovery disabled
// the same schedule must surface RankFailed/TimeoutError in bounded
// wall-clock time, never a hang.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/distributed_solver.hpp"
#include "core/sequential_smo.hpp"
#include "core/trainer.hpp"
#include "data/split.hpp"
#include "data/synthetic.hpp"
#include "kernel/kernel.hpp"
#include "mpisim/fault.hpp"
#include "mpisim/spmd.hpp"

namespace {

using svmcore::CheckpointStore;
using svmcore::DistributedConfig;
using svmcore::DistributedSolver;
using svmcore::Heuristic;
using svmcore::RankCheckpoint;
using svmcore::RecoveryOptions;
using svmcore::RecoveryPolicy;
using svmcore::RecoveryReport;
using svmcore::SolverParams;
using svmcore::TrainOptions;
using svmcore::TrainResult;
using svmdata::Dataset;
using svmkernel::KernelParams;
using svmmpi::FaultInjector;
using svmmpi::FaultPlan;
using svmmpi::FaultSite;

Dataset chaos_dataset() {
  return svmdata::synthetic::gaussian_blobs(
      {.n = 160, .d = 6, .separation = 1.8, .label_noise = 0.05, .seed = 41});
}

SolverParams rbf_params() {
  SolverParams p;
  p.C = 4.0;
  p.eps = 1e-3;
  p.kernel = KernelParams::rbf_with_sigma_sq(4.0);
  return p;
}

TrainOptions ranks4(Heuristic heuristic) {
  TrainOptions options;
  options.num_ranks = 4;
  options.heuristic = heuristic;
  return options;
}

/// Total communication ops rank `rank` issues during a fault-free solve:
/// lets tests schedule crashes at a precise fraction of the run.
std::uint64_t probe_ops(const Dataset& d, const SolverParams& params, const TrainOptions& options,
                        int rank) {
  FaultInjector probe{FaultPlan{}};
  const DistributedConfig config{params, options.heuristic, options.permanent_shrink,
                                 options.openmp_gamma, options.trace_active_interval};
  svmmpi::run_spmd(
      options.num_ranks,
      [&](svmmpi::Comm& comm) {
        DistributedSolver solver(comm, d, config);
        (void)solver.solve();
      },
      options.net_model, nullptr, &probe);
  return probe.ops(rank);
}

void expect_same_model(const TrainResult& a, const TrainResult& b, double tolerance) {
  EXPECT_EQ(a.iterations, b.iterations);
  ASSERT_EQ(a.model.num_support_vectors(), b.model.num_support_vectors());
  if (tolerance == 0.0) {
    EXPECT_EQ(a.beta, b.beta);
    for (std::size_t j = 0; j < a.model.num_support_vectors(); ++j)
      EXPECT_EQ(a.model.coefficients()[j], b.model.coefficients()[j]);
  } else {
    EXPECT_NEAR(a.beta, b.beta, tolerance);
    for (std::size_t j = 0; j < a.model.num_support_vectors(); ++j)
      EXPECT_NEAR(a.model.coefficients()[j], b.model.coefficients()[j], tolerance);
  }
}

/// Dual objective recomputed from the assembled model alone:
///   W = sum_j |c_j| - 1/2 sum_{j,k} c_j c_k K(sv_j, sv_k)
/// (|c_j| = alpha_j because c_j = alpha_j * y_j and y_j^2 = 1). Lets tests
/// compare runs without access to the full alpha vector.
double model_objective(const svmcore::SvmModel& m) {
  const svmdata::CsrMatrix& sv = m.support_vectors();
  const std::vector<double>& c = m.coefficients();
  const svmkernel::Kernel kernel(m.kernel_params());
  std::vector<double> sq(c.size());
  for (std::size_t j = 0; j < c.size(); ++j)
    sq[j] = svmdata::CsrMatrix::squared_norm(sv.row(j));
  double sum_alpha = 0.0;
  double quad = 0.0;
  for (std::size_t j = 0; j < c.size(); ++j) {
    sum_alpha += std::abs(c[j]);
    for (std::size_t k = 0; k < c.size(); ++k)
      quad += c[j] * c[k] * kernel.eval(sv.row(j), sv.row(k), sq[j], sq[k]);
  }
  return sum_alpha - 0.5 * quad;
}

// --- RankCheckpoint serialization ------------------------------------------

RankCheckpoint sample_checkpoint() {
  RankCheckpoint c;
  c.stage = 2;
  c.stalls = 1;
  c.iterations = 4242;
  c.delta_counter = 17;
  c.beta_up = -0.75;
  c.beta_low = 0.5;
  c.i_up = 12;
  c.i_low = 99;
  c.shrink_passes = 3;
  c.samples_shrunk = 40;
  c.reconstructions = 2;
  c.min_active = 11;
  c.alpha = {0.0, 1.5, 4.0};
  c.gamma = {-1.0, 0.25, 2.0};
  c.shrunk = {0, 1, 0};
  c.active = {0, 2};
  return c;
}

TEST(RankCheckpointTest, SerializeDeserializeRoundTrip) {
  const RankCheckpoint original = sample_checkpoint();
  const RankCheckpoint restored = RankCheckpoint::deserialize(original.serialize());
  EXPECT_EQ(restored, original);
}

TEST(RankCheckpointTest, CorruptBuffersAreRejected) {
  const std::vector<std::byte> bytes = sample_checkpoint().serialize();

  // Truncation anywhere must throw, never read out of bounds.
  for (const std::size_t keep : {std::size_t{0}, std::size_t{3}, std::size_t{17},
                                 bytes.size() / 2, bytes.size() - 1}) {
    const std::vector<std::byte> cut(bytes.begin(), bytes.begin() + keep);
    EXPECT_THROW((void)RankCheckpoint::deserialize(cut), std::runtime_error) << keep;
  }
  // Trailing garbage.
  std::vector<std::byte> padded = bytes;
  padded.push_back(std::byte{0});
  EXPECT_THROW((void)RankCheckpoint::deserialize(padded), std::runtime_error);
  // Bad magic.
  std::vector<std::byte> wrong = bytes;
  wrong[0] = std::byte{0xFF};
  EXPECT_THROW((void)RankCheckpoint::deserialize(wrong), std::runtime_error);
  // Inconsistent array lengths (gamma shorter than alpha).
  RankCheckpoint mismatched = sample_checkpoint();
  mismatched.gamma.pop_back();
  EXPECT_THROW((void)RankCheckpoint::deserialize(mismatched.serialize()), std::runtime_error);
}

// --- CheckpointStore semantics ---------------------------------------------

TEST(CheckpointStoreTest, PinsNewestEpochPresentOnAllRanks) {
  CheckpointStore store(2);
  RankCheckpoint c = sample_checkpoint();

  EXPECT_FALSE(store.begin_restart().has_value());  // nothing saved yet

  c.iterations = 64;
  store.save(0, 64, c);
  EXPECT_FALSE(store.begin_restart().has_value());  // rank 1 never checkpointed

  store.save(1, 64, c);
  c.iterations = 128;
  store.save(0, 128, c);  // rank 0 ran ahead one boundary
  const auto epoch = store.begin_restart();
  ASSERT_TRUE(epoch.has_value());
  EXPECT_EQ(*epoch, 64u);  // newest epoch both ranks have

  const auto restored = store.restore(0);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->iterations, 64u);
  // Non-pinned epochs were discarded by begin_restart.
  EXPECT_EQ(store.epochs(0), std::vector<std::uint64_t>{64});
}

TEST(CheckpointStoreTest, RetainsOnlyTwoEpochsPerRank) {
  CheckpointStore store(1);
  RankCheckpoint c = sample_checkpoint();
  for (std::uint64_t e : {32u, 64u, 96u, 128u}) store.save(0, e, c);
  EXPECT_EQ(store.epochs(0), (std::vector<std::uint64_t>{96, 128}));
  EXPECT_EQ(store.saves(), 4u);
}

TEST(CheckpointStoreTest, FileBackedStoreSurvivesReopen) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "shrinksvm_ckpt_test";
  std::filesystem::remove_all(dir);

  RankCheckpoint c = sample_checkpoint();
  {
    CheckpointStore store(2, dir.string());
    store.save(0, 64, c);
    store.save(1, 64, c);
    store.save(0, 128, c);  // straggler epoch, only on rank 0
  }
  CheckpointStore reopened = CheckpointStore::open(2, dir.string());
  const auto epoch = reopened.begin_restart();
  ASSERT_TRUE(epoch.has_value());
  EXPECT_EQ(*epoch, 64u);
  const auto restored = reopened.restore(1);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(*restored, c);
  // begin_restart pruned the rank-0-only epoch, on disk too.
  EXPECT_FALSE(std::filesystem::exists(dir / "ckpt_r0_e128.bin"));
  EXPECT_TRUE(std::filesystem::exists(dir / "ckpt_r0_e64.bin"));
  std::filesystem::remove_all(dir);
}

// --- buddy replication & elastic repartition --------------------------------

/// Slices a consistent global solver state into rank `rank`'s checkpoint
/// under a `num_ranks`-way contiguous partition. Global scalars are the same
/// on every rank, as at a real checkpoint boundary.
RankCheckpoint slice_checkpoint(const std::vector<double>& alpha_g,
                                const std::vector<double>& gamma_g,
                                const std::vector<std::uint8_t>& shrunk_g,
                                std::uint64_t epoch, int num_ranks, int rank) {
  const svmdata::BlockRange range = svmdata::block_range(alpha_g.size(), num_ranks, rank);
  RankCheckpoint c;
  c.stage = 1;
  c.stalls = 2;
  c.iterations = epoch;
  c.delta_counter = 7;
  c.beta_up = -0.25;
  c.beta_low = 0.75;
  c.i_up = 3;
  c.i_low = 9;
  c.shrink_passes = 1;
  c.reconstructions = 1;
  c.alpha.assign(alpha_g.begin() + static_cast<std::ptrdiff_t>(range.begin),
                 alpha_g.begin() + static_cast<std::ptrdiff_t>(range.end));
  c.gamma.assign(gamma_g.begin() + static_cast<std::ptrdiff_t>(range.begin),
                 gamma_g.begin() + static_cast<std::ptrdiff_t>(range.end));
  c.shrunk.assign(shrunk_g.begin() + static_cast<std::ptrdiff_t>(range.begin),
                  shrunk_g.begin() + static_cast<std::ptrdiff_t>(range.end));
  for (std::uint32_t i = 0; i < c.alpha.size(); ++i)
    if (c.shrunk[i] == 0) c.active.push_back(i);
  // Per-rank work counters cover the local block only.
  c.samples_shrunk = static_cast<std::uint64_t>(
      std::count_if(c.shrunk.begin(), c.shrunk.end(), [](std::uint8_t s) { return s != 0; }));
  c.min_active = c.active.size();
  return c;
}

/// A 10-sample global state with non-trivial per-sample values, saved into a
/// `num_ranks`-way store at `epoch`.
struct GlobalState {
  std::vector<double> alpha;
  std::vector<double> gamma;
  std::vector<std::uint8_t> shrunk;
};

GlobalState sample_global_state() {
  GlobalState g;
  for (std::size_t i = 0; i < 10; ++i) {
    g.alpha.push_back(0.5 * static_cast<double>(i));
    g.gamma.push_back(-1.0 + 0.1 * static_cast<double>(i));
    g.shrunk.push_back(static_cast<std::uint8_t>(i % 3 == 0));
  }
  return g;
}

void save_all_ranks(CheckpointStore& store, const GlobalState& g, std::uint64_t epoch) {
  for (int r = 0; r < store.num_ranks(); ++r)
    store.save(r, epoch, slice_checkpoint(g.alpha, g.gamma, g.shrunk, epoch, store.num_ranks(), r));
}

TEST(ElasticRepartitionTest, BuddyReplicaRecoversSingleRankLossInMemory) {
  const GlobalState g = sample_global_state();
  CheckpointStore store(4);  // memory-only: no spill directory
  save_all_ranks(store, g, 64);
  save_all_ranks(store, g, 96);

  // Rank 1's process memory is gone; its newest state survives only as the
  // buddy replica mirrored into rank 2's memory.
  store.mark_rank_lost(1);
  EXPECT_TRUE(store.epochs(1).empty());

  CheckpointStore target(3);
  const auto epoch = svmcore::repartition_from_checkpoints(store, g.alpha.size(), target);
  ASSERT_TRUE(epoch.has_value());
  EXPECT_EQ(*epoch, 96u);

  const auto pinned = target.begin_restart();
  ASSERT_TRUE(pinned.has_value());
  EXPECT_EQ(*pinned, 96u);
  for (int r = 0; r < 3; ++r) {
    const auto restored = target.restore(r);
    ASSERT_TRUE(restored.has_value()) << "target rank " << r;
    // Per-sample state re-sliced along the 3-way partition matches the
    // stitched global arrays exactly.
    const RankCheckpoint expected =
        slice_checkpoint(g.alpha, g.gamma, g.shrunk, 96, /*num_ranks=*/3, r);
    EXPECT_EQ(restored->alpha, expected.alpha) << "target rank " << r;
    EXPECT_EQ(restored->gamma, expected.gamma) << "target rank " << r;
    EXPECT_EQ(restored->shrunk, expected.shrunk) << "target rank " << r;
    EXPECT_EQ(restored->active, expected.active) << "target rank " << r;
    // Global scalars carry over verbatim.
    EXPECT_EQ(restored->stage, expected.stage);
    EXPECT_EQ(restored->stalls, expected.stalls);
    EXPECT_EQ(restored->iterations, 96u);
    EXPECT_EQ(restored->delta_counter, expected.delta_counter);
    EXPECT_EQ(restored->beta_up, expected.beta_up);
    EXPECT_EQ(restored->beta_low, expected.beta_low);
    EXPECT_EQ(restored->i_up, expected.i_up);
    EXPECT_EQ(restored->i_low, expected.i_low);
    EXPECT_EQ(restored->samples_shrunk, expected.samples_shrunk);
  }
}

TEST(ElasticRepartitionTest, AdjacentDoubleLossIsUnrecoverableNonAdjacentIsNot) {
  const GlobalState g = sample_global_state();
  {
    // Adjacent pair (1, 2): rank 1's only replica lived in rank 2's memory,
    // so no fully-reachable consistent cut remains.
    CheckpointStore store(4);
    save_all_ranks(store, g, 64);
    store.mark_rank_lost(1);
    store.mark_rank_lost(2);
    CheckpointStore target(2);
    EXPECT_FALSE(svmcore::repartition_from_checkpoints(store, g.alpha.size(), target).has_value());
  }
  {
    // Non-adjacent pair (0, 2): each dead rank's replica lives in a survivor.
    CheckpointStore store(4);
    save_all_ranks(store, g, 64);
    store.mark_rank_lost(0);
    store.mark_rank_lost(2);
    CheckpointStore target(2);
    const auto epoch = svmcore::repartition_from_checkpoints(store, g.alpha.size(), target);
    ASSERT_TRUE(epoch.has_value());
    EXPECT_EQ(*epoch, 64u);
  }
  {
    // Without buddy replication, any single memory loss is unrecoverable.
    CheckpointStore store(4, /*directory=*/{}, /*buddy_replication=*/false);
    save_all_ranks(store, g, 64);
    store.mark_rank_lost(1);
    CheckpointStore target(3);
    EXPECT_FALSE(svmcore::repartition_from_checkpoints(store, g.alpha.size(), target).has_value());
  }
}

TEST(CheckpointStoreTest, TruncatedDiskCheckpointIsSkippedNotFatal) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "shrinksvm_ckpt_truncated";
  std::filesystem::remove_all(dir);

  RankCheckpoint c = sample_checkpoint();
  {
    CheckpointStore store(2, dir.string());
    for (const std::uint64_t epoch : {64u, 128u}) {
      c.iterations = epoch;
      store.save(0, epoch, c);
      store.save(1, epoch, c);
    }
  }
  // Model a torn write: rank 1's newest spill is cut short mid-file.
  std::filesystem::resize_file(dir / "ckpt_r1_e128.bin", 10);

  // open() must skip the bad file (with a warning) instead of throwing the
  // whole store away; the restart falls back to the older complete epoch.
  CheckpointStore reopened = CheckpointStore::open(2, dir.string());
  EXPECT_EQ(reopened.corrupt_skipped(), 1u);
  const auto epoch = reopened.begin_restart();
  ASSERT_TRUE(epoch.has_value());
  EXPECT_EQ(*epoch, 64u);
  const auto restored = reopened.restore(1);
  ASSERT_TRUE(restored.has_value());
  c.iterations = 64;
  EXPECT_EQ(*restored, c);
  std::filesystem::remove_all(dir);
}

// --- end-to-end chaos runs -------------------------------------------------

TEST(ChaosRecovery, CrashOnlyScheduleRecoversBitIdentically) {
  const Dataset d = chaos_dataset();
  const SolverParams params = rbf_params();
  // Multi-reconstruction heuristic: exercises the staged Algorithm 5 driver,
  // so the crash can land after reconstructions and mid-tight-phase.
  const TrainOptions options = ranks4(Heuristic::best());

  const TrainResult baseline = svmcore::train(d, params, options);
  ASSERT_TRUE(baseline.converged);

  const std::uint64_t total_ops = probe_ops(d, params, options, /*rank=*/1);
  ASSERT_GT(total_ops, 100u);

  RecoveryOptions recovery;
  recovery.fault_plan = FaultPlan{}.crash(1, total_ops / 2);
  recovery.checkpoint_interval = 32;
  RecoveryReport report;
  const TrainResult recovered =
      svmcore::train_with_recovery(d, params, options, recovery, &report);

  EXPECT_EQ(report.restarts, 1);
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_NE(report.failures[0].find("injected crash"), std::string::npos);
  ASSERT_EQ(report.restore_epochs.size(), 1u);
  EXPECT_GT(report.restore_epochs[0], 0u) << "restart should resume from a checkpoint";
  EXPECT_GT(report.checkpoints_saved, 0u);

  EXPECT_TRUE(recovered.converged);
  // Deterministic replay from a consistent cut: bit-identical model.
  expect_same_model(recovered, baseline, /*tolerance=*/0.0);
}

TEST(ChaosRecovery, CrashDuringAlgorithm4FinishPhaseRecovers) {
  const Dataset d = chaos_dataset();
  const SolverParams params = rbf_params();
  const TrainOptions options = ranks4(Heuristic::parse("Single2"));

  const TrainResult baseline = svmcore::train(d, params, options);
  const std::uint64_t total_ops = probe_ops(d, params, options, /*rank=*/2);

  // Crash late in the run — typically inside the post-reconstruction sweep,
  // exercising the stage-1 resume path.
  RecoveryOptions recovery;
  recovery.fault_plan = FaultPlan{}.crash(2, (total_ops * 9) / 10);
  recovery.checkpoint_interval = 16;
  RecoveryReport report;
  const TrainResult recovered =
      svmcore::train_with_recovery(d, params, options, recovery, &report);

  EXPECT_EQ(report.restarts, 1);
  expect_same_model(recovered, baseline, /*tolerance=*/0.0);
}

TEST(ChaosRecovery, SeededChaosScheduleStaysWithinTolerance) {
  const Dataset d = chaos_dataset();
  const SolverParams params = rbf_params();
  TrainOptions options = ranks4(Heuristic::best());
  // Drops starve a receiver forever; the pop deadline turns that into a
  // TimeoutError the retry driver can recover from.
  options.net_model.timeout_s = 0.25;

  const TrainResult baseline = svmcore::train(d, params, options);
  const std::uint64_t total_ops = probe_ops(d, params, options, /*rank=*/0);

  RecoveryOptions recovery;
  // Seeded drops and delays, plus a crash pinned mid-run so the schedule is
  // guaranteed to kill one attempt regardless of the seed.
  recovery.fault_plan =
      FaultPlan::chaos(/*seed=*/1234, options.num_ranks, /*horizon=*/total_ops,
                       /*drops=*/2, /*delays=*/3, /*with_crash=*/false, /*max_delay_s=*/1e-3)
          .crash(1, total_ops / 2);
  recovery.checkpoint_interval = 32;
  RecoveryReport report;
  const TrainResult recovered =
      svmcore::train_with_recovery(d, params, options, recovery, &report);

  EXPECT_TRUE(recovered.converged);
  EXPECT_GE(report.restarts, 1) << "the crash alone should force one restart";
  // Replay is deterministic, so even the mixed schedule reproduces the
  // fault-free model far inside the 1e-10 acceptance bound.
  expect_same_model(recovered, baseline, /*tolerance=*/1e-10);
}

TEST(ChaosRecovery, RecoveryDisabledFailsFastInsteadOfHanging) {
  const Dataset d = chaos_dataset();
  const SolverParams params = rbf_params();
  TrainOptions options = ranks4(Heuristic::best());
  options.net_model.timeout_s = 0.25;

  const std::uint64_t total_ops = probe_ops(d, params, options, /*rank=*/0);
  RecoveryOptions recovery;
  recovery.fault_plan =
      FaultPlan::chaos(1234, options.num_ranks, total_ops, 2, 3, false, 1e-3)
          .crash(1, total_ops / 2);
  recovery.max_restarts = 0;  // recovery disabled: first failure is fatal

  const auto start = std::chrono::steady_clock::now();
  bool failed_as_expected = false;
  try {
    (void)svmcore::train_with_recovery(d, params, options, recovery);
  } catch (const svmmpi::RankFailed&) {
    failed_as_expected = true;
  } catch (const svmmpi::TimeoutError&) {
    failed_as_expected = true;
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  EXPECT_TRUE(failed_as_expected)
      << "the schedule contains a crash, so the run must fail without recovery";
  EXPECT_LT(elapsed, 60.0) << "pop deadline must bound wall-clock time";
}

TEST(ChaosRecovery, ZeroIntervalReplaysFromScratch) {
  const Dataset d = chaos_dataset();
  const SolverParams params = rbf_params();
  const TrainOptions options = ranks4(Heuristic::best());

  const TrainResult baseline = svmcore::train(d, params, options);
  const std::uint64_t total_ops = probe_ops(d, params, options, /*rank=*/1);

  RecoveryOptions recovery;
  recovery.fault_plan = FaultPlan{}.crash(1, total_ops / 3);
  recovery.checkpoint_interval = 0;  // checkpointing off: restart = rerun
  RecoveryReport report;
  const TrainResult recovered =
      svmcore::train_with_recovery(d, params, options, recovery, &report);

  EXPECT_EQ(report.restarts, 1);
  ASSERT_EQ(report.restore_epochs.size(), 1u);
  EXPECT_EQ(report.restore_epochs[0], 0u);  // no checkpoint to resume from
  expect_same_model(recovered, baseline, /*tolerance=*/0.0);
}

// --- elastic shrink-world recovery -----------------------------------------

TEST(ElasticShrinkRecovery, MatchesFaultFreeModelAndReplaysFewerIterations) {
  const Dataset d = chaos_dataset();
  const SolverParams params = rbf_params();
  TrainOptions options = ranks4(Heuristic::best());
  options.net_model.timeout_s = 5.0;  // shrink recovery needs a deadline

  const TrainResult baseline = svmcore::train(d, params, options);
  ASSERT_TRUE(baseline.converged);
  const std::uint64_t total_ops = probe_ops(d, params, options, /*rank=*/1);
  ASSERT_GT(total_ops, 100u);

  // Permanent mid-solve loss of rank 1: its process memory (primary
  // checkpoints included) is gone; only the buddy replica in rank 2's memory
  // keeps a warm cut reachable. The store is memory-only on purpose.
  RecoveryOptions shrink;
  shrink.fault_plan = FaultPlan{}.die(1, total_ops / 2);
  shrink.policy = RecoveryPolicy::shrink_world;
  shrink.checkpoint_interval = 32;
  RecoveryReport shrink_report;
  const TrainResult shrunk =
      svmcore::train_with_recovery(d, params, options, shrink, &shrink_report);

  EXPECT_EQ(shrink_report.shrinks, 1);
  EXPECT_EQ(shrink_report.restarts, 0) << "shrink_world must never relaunch the world";
  EXPECT_EQ(shrink_report.ranks_lost, std::vector<int>{1});
  ASSERT_EQ(shrink_report.restore_epochs.size(), 1u);
  EXPECT_GT(shrink_report.restore_epochs[0], 0u)
      << "the buddy replica must make a warm cut reachable on a memory-only store";
  EXPECT_TRUE(shrunk.converged);

  // The resumed trajectory on 3 ranks is the same SMO trajectory: identical
  // support-vector set; coefficients/objective differ only by re-grouped
  // floating-point summation in the ring/assembly paths.
  expect_same_model(shrunk, baseline, /*tolerance=*/1e-10);
  EXPECT_NEAR(model_objective(shrunk.model), model_objective(baseline.model), 1e-10);

  // Same schedule under restart_world: the die() wiped rank 1's memory, the
  // memory-only store has no consistent cut left, and the cold world replays
  // from iteration 0.
  RecoveryOptions restart = shrink;
  restart.policy = RecoveryPolicy::restart_world;
  RecoveryReport restart_report;
  const TrainResult restarted =
      svmcore::train_with_recovery(d, params, options, restart, &restart_report);
  EXPECT_EQ(restart_report.restarts, 1);
  EXPECT_EQ(restart_report.shrinks, 0);
  ASSERT_EQ(restart_report.restore_epochs.size(), 1u);
  EXPECT_EQ(restart_report.restore_epochs[0], 0u)
      << "a cold replacement rank cannot read the dead rank's RAM";
  expect_same_model(restarted, baseline, /*tolerance=*/0.0);

  // The headline acceptance bound: in-world shrink replays strictly fewer
  // iterations than the restart path on the identical failure.
  EXPECT_GT(shrink_report.iterations_replayed, 0u);
  EXPECT_LT(shrink_report.iterations_replayed, restart_report.iterations_replayed);
}

TEST(ElasticShrinkRecovery, ShrinkThenRestartSurvivesDoubleDeath) {
  const Dataset d = chaos_dataset();
  const SolverParams params = rbf_params();
  TrainOptions options = ranks4(Heuristic::best());
  options.net_model.timeout_s = 5.0;

  const TrainResult baseline = svmcore::train(d, params, options);
  const std::uint64_t total_ops = probe_ops(d, params, options, /*rank=*/1);

  // Adjacent ranks 1 and 2 die around the same point. When both deaths land
  // in one agreed set the buddy chain is severed (rank 1's replica lived in
  // rank 2) and shrink_then_restart escalates to a full cold restart; when
  // they are detected one at a time two successive shrinks recover in-world.
  // Either way the run must finish with the fault-free model.
  RecoveryOptions recovery;
  recovery.fault_plan = FaultPlan{}.die(1, total_ops / 2).die(2, total_ops / 2);
  recovery.policy = RecoveryPolicy::shrink_then_restart;
  recovery.checkpoint_interval = 32;
  RecoveryReport report;
  const TrainResult out = svmcore::train_with_recovery(d, params, options, recovery, &report);

  EXPECT_TRUE(out.converged);
  EXPECT_EQ(report.ranks_lost, (std::vector<int>{1, 2}));
  EXPECT_GE(report.shrinks + report.restarts, 1);
  expect_same_model(out, baseline, /*tolerance=*/1e-10);
  EXPECT_NEAR(model_objective(out.model), model_objective(baseline.model), 1e-10);
}

TEST(ElasticShrinkRecovery, ShrinkPolicyRequiresDeadlineDetection) {
  const Dataset d = chaos_dataset();
  RecoveryOptions recovery;
  recovery.policy = RecoveryPolicy::shrink_world;
  TrainOptions options = ranks4(Heuristic::best());
  options.net_model.timeout_s = 0.0;  // no failure detector
  EXPECT_THROW((void)svmcore::train_with_recovery(d, rbf_params(), options, recovery),
               std::invalid_argument);
}

TEST(ChaosRecovery, ReconstructionDelayPastDeadlineNamesTheCollective) {
  const Dataset d = chaos_dataset();
  const SolverParams params = rbf_params();
  // Multi-reconstruction heuristic: mid-solve ops sit where Algorithm 3's
  // ring gradient reconstruction interleaves with the selection reductions.
  TrainOptions options = ranks4(Heuristic::best());
  options.net_model.timeout_s = 0.25;
  const std::uint64_t total_ops = probe_ops(d, params, options, /*rank=*/2);

  // Rank 2 sleeps through the deadline right at a collective rendezvous; the
  // peers stuck in that rendezvous must fail fast with an error naming it,
  // never hang.
  RecoveryOptions recovery;
  recovery.fault_plan =
      FaultPlan{}.delay(2, total_ops / 2, /*seconds=*/2.0, FaultSite::collective);
  recovery.max_restarts = 0;

  const auto start = std::chrono::steady_clock::now();
  std::string message;
  try {
    (void)svmcore::train_with_recovery(d, params, options, recovery);
    ADD_FAILURE() << "a delay past the deadline must surface TimeoutError";
  } catch (const svmmpi::TimeoutError& e) {
    message = e.what();
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  EXPECT_NE(message.find("collective rendezvous"), std::string::npos) << message;
  EXPECT_LT(elapsed, 60.0) << "deadline detection must bound wall-clock time";
}

}  // namespace
