// Checkpoint/restart fault tolerance. A seeded FaultPlan kills a rank (and
// optionally drops/delays messages) mid-solve; train_with_recovery must
// restart from the last consistent checkpoint cut and converge to the same
// model a fault-free run produces — bit-identical for a crash-only schedule,
// within 1e-10 for schedules that also perturb timing. With recovery disabled
// the same schedule must surface RankFailed/TimeoutError in bounded
// wall-clock time, never a hang.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/distributed_solver.hpp"
#include "core/sequential_smo.hpp"
#include "core/trainer.hpp"
#include "data/synthetic.hpp"
#include "mpisim/fault.hpp"
#include "mpisim/spmd.hpp"

namespace {

using svmcore::CheckpointStore;
using svmcore::DistributedConfig;
using svmcore::DistributedSolver;
using svmcore::Heuristic;
using svmcore::RankCheckpoint;
using svmcore::RecoveryOptions;
using svmcore::RecoveryReport;
using svmcore::SolverParams;
using svmcore::TrainOptions;
using svmcore::TrainResult;
using svmdata::Dataset;
using svmkernel::KernelParams;
using svmmpi::FaultInjector;
using svmmpi::FaultPlan;

Dataset chaos_dataset() {
  return svmdata::synthetic::gaussian_blobs(
      {.n = 160, .d = 6, .separation = 1.8, .label_noise = 0.05, .seed = 41});
}

SolverParams rbf_params() {
  SolverParams p;
  p.C = 4.0;
  p.eps = 1e-3;
  p.kernel = KernelParams::rbf_with_sigma_sq(4.0);
  return p;
}

TrainOptions ranks4(Heuristic heuristic) {
  TrainOptions options;
  options.num_ranks = 4;
  options.heuristic = heuristic;
  return options;
}

/// Total communication ops rank `rank` issues during a fault-free solve:
/// lets tests schedule crashes at a precise fraction of the run.
std::uint64_t probe_ops(const Dataset& d, const SolverParams& params, const TrainOptions& options,
                        int rank) {
  FaultInjector probe{FaultPlan{}};
  const DistributedConfig config{params, options.heuristic, options.permanent_shrink,
                                 options.openmp_gamma, options.trace_active_interval};
  svmmpi::run_spmd(
      options.num_ranks,
      [&](svmmpi::Comm& comm) {
        DistributedSolver solver(comm, d, config);
        (void)solver.solve();
      },
      options.net_model, nullptr, &probe);
  return probe.ops(rank);
}

void expect_same_model(const TrainResult& a, const TrainResult& b, double tolerance) {
  EXPECT_EQ(a.iterations, b.iterations);
  ASSERT_EQ(a.model.num_support_vectors(), b.model.num_support_vectors());
  if (tolerance == 0.0) {
    EXPECT_EQ(a.beta, b.beta);
    for (std::size_t j = 0; j < a.model.num_support_vectors(); ++j)
      EXPECT_EQ(a.model.coefficients()[j], b.model.coefficients()[j]);
  } else {
    EXPECT_NEAR(a.beta, b.beta, tolerance);
    for (std::size_t j = 0; j < a.model.num_support_vectors(); ++j)
      EXPECT_NEAR(a.model.coefficients()[j], b.model.coefficients()[j], tolerance);
  }
}

// --- RankCheckpoint serialization ------------------------------------------

RankCheckpoint sample_checkpoint() {
  RankCheckpoint c;
  c.stage = 2;
  c.stalls = 1;
  c.iterations = 4242;
  c.delta_counter = 17;
  c.beta_up = -0.75;
  c.beta_low = 0.5;
  c.i_up = 12;
  c.i_low = 99;
  c.shrink_passes = 3;
  c.samples_shrunk = 40;
  c.reconstructions = 2;
  c.min_active = 11;
  c.alpha = {0.0, 1.5, 4.0};
  c.gamma = {-1.0, 0.25, 2.0};
  c.shrunk = {0, 1, 0};
  c.active = {0, 2};
  return c;
}

TEST(RankCheckpointTest, SerializeDeserializeRoundTrip) {
  const RankCheckpoint original = sample_checkpoint();
  const RankCheckpoint restored = RankCheckpoint::deserialize(original.serialize());
  EXPECT_EQ(restored, original);
}

TEST(RankCheckpointTest, CorruptBuffersAreRejected) {
  const std::vector<std::byte> bytes = sample_checkpoint().serialize();

  // Truncation anywhere must throw, never read out of bounds.
  for (const std::size_t keep : {std::size_t{0}, std::size_t{3}, std::size_t{17},
                                 bytes.size() / 2, bytes.size() - 1}) {
    const std::vector<std::byte> cut(bytes.begin(), bytes.begin() + keep);
    EXPECT_THROW((void)RankCheckpoint::deserialize(cut), std::runtime_error) << keep;
  }
  // Trailing garbage.
  std::vector<std::byte> padded = bytes;
  padded.push_back(std::byte{0});
  EXPECT_THROW((void)RankCheckpoint::deserialize(padded), std::runtime_error);
  // Bad magic.
  std::vector<std::byte> wrong = bytes;
  wrong[0] = std::byte{0xFF};
  EXPECT_THROW((void)RankCheckpoint::deserialize(wrong), std::runtime_error);
  // Inconsistent array lengths (gamma shorter than alpha).
  RankCheckpoint mismatched = sample_checkpoint();
  mismatched.gamma.pop_back();
  EXPECT_THROW((void)RankCheckpoint::deserialize(mismatched.serialize()), std::runtime_error);
}

// --- CheckpointStore semantics ---------------------------------------------

TEST(CheckpointStoreTest, PinsNewestEpochPresentOnAllRanks) {
  CheckpointStore store(2);
  RankCheckpoint c = sample_checkpoint();

  EXPECT_FALSE(store.begin_restart().has_value());  // nothing saved yet

  c.iterations = 64;
  store.save(0, 64, c);
  EXPECT_FALSE(store.begin_restart().has_value());  // rank 1 never checkpointed

  store.save(1, 64, c);
  c.iterations = 128;
  store.save(0, 128, c);  // rank 0 ran ahead one boundary
  const auto epoch = store.begin_restart();
  ASSERT_TRUE(epoch.has_value());
  EXPECT_EQ(*epoch, 64u);  // newest epoch both ranks have

  const auto restored = store.restore(0);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->iterations, 64u);
  // Non-pinned epochs were discarded by begin_restart.
  EXPECT_EQ(store.epochs(0), std::vector<std::uint64_t>{64});
}

TEST(CheckpointStoreTest, RetainsOnlyTwoEpochsPerRank) {
  CheckpointStore store(1);
  RankCheckpoint c = sample_checkpoint();
  for (std::uint64_t e : {32u, 64u, 96u, 128u}) store.save(0, e, c);
  EXPECT_EQ(store.epochs(0), (std::vector<std::uint64_t>{96, 128}));
  EXPECT_EQ(store.saves(), 4u);
}

TEST(CheckpointStoreTest, FileBackedStoreSurvivesReopen) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "shrinksvm_ckpt_test";
  std::filesystem::remove_all(dir);

  RankCheckpoint c = sample_checkpoint();
  {
    CheckpointStore store(2, dir.string());
    store.save(0, 64, c);
    store.save(1, 64, c);
    store.save(0, 128, c);  // straggler epoch, only on rank 0
  }
  CheckpointStore reopened = CheckpointStore::open(2, dir.string());
  const auto epoch = reopened.begin_restart();
  ASSERT_TRUE(epoch.has_value());
  EXPECT_EQ(*epoch, 64u);
  const auto restored = reopened.restore(1);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(*restored, c);
  // begin_restart pruned the rank-0-only epoch, on disk too.
  EXPECT_FALSE(std::filesystem::exists(dir / "ckpt_r0_e128.bin"));
  EXPECT_TRUE(std::filesystem::exists(dir / "ckpt_r0_e64.bin"));
  std::filesystem::remove_all(dir);
}

// --- end-to-end chaos runs -------------------------------------------------

TEST(ChaosRecovery, CrashOnlyScheduleRecoversBitIdentically) {
  const Dataset d = chaos_dataset();
  const SolverParams params = rbf_params();
  // Multi-reconstruction heuristic: exercises the staged Algorithm 5 driver,
  // so the crash can land after reconstructions and mid-tight-phase.
  const TrainOptions options = ranks4(Heuristic::best());

  const TrainResult baseline = svmcore::train(d, params, options);
  ASSERT_TRUE(baseline.converged);

  const std::uint64_t total_ops = probe_ops(d, params, options, /*rank=*/1);
  ASSERT_GT(total_ops, 100u);

  RecoveryOptions recovery;
  recovery.fault_plan = FaultPlan{}.crash(1, total_ops / 2);
  recovery.checkpoint_interval = 32;
  RecoveryReport report;
  const TrainResult recovered =
      svmcore::train_with_recovery(d, params, options, recovery, &report);

  EXPECT_EQ(report.restarts, 1);
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_NE(report.failures[0].find("injected crash"), std::string::npos);
  ASSERT_EQ(report.restore_epochs.size(), 1u);
  EXPECT_GT(report.restore_epochs[0], 0u) << "restart should resume from a checkpoint";
  EXPECT_GT(report.checkpoints_saved, 0u);

  EXPECT_TRUE(recovered.converged);
  // Deterministic replay from a consistent cut: bit-identical model.
  expect_same_model(recovered, baseline, /*tolerance=*/0.0);
}

TEST(ChaosRecovery, CrashDuringAlgorithm4FinishPhaseRecovers) {
  const Dataset d = chaos_dataset();
  const SolverParams params = rbf_params();
  const TrainOptions options = ranks4(Heuristic::parse("Single2"));

  const TrainResult baseline = svmcore::train(d, params, options);
  const std::uint64_t total_ops = probe_ops(d, params, options, /*rank=*/2);

  // Crash late in the run — typically inside the post-reconstruction sweep,
  // exercising the stage-1 resume path.
  RecoveryOptions recovery;
  recovery.fault_plan = FaultPlan{}.crash(2, (total_ops * 9) / 10);
  recovery.checkpoint_interval = 16;
  RecoveryReport report;
  const TrainResult recovered =
      svmcore::train_with_recovery(d, params, options, recovery, &report);

  EXPECT_EQ(report.restarts, 1);
  expect_same_model(recovered, baseline, /*tolerance=*/0.0);
}

TEST(ChaosRecovery, SeededChaosScheduleStaysWithinTolerance) {
  const Dataset d = chaos_dataset();
  const SolverParams params = rbf_params();
  TrainOptions options = ranks4(Heuristic::best());
  // Drops starve a receiver forever; the pop deadline turns that into a
  // TimeoutError the retry driver can recover from.
  options.net_model.timeout_s = 0.25;

  const TrainResult baseline = svmcore::train(d, params, options);
  const std::uint64_t total_ops = probe_ops(d, params, options, /*rank=*/0);

  RecoveryOptions recovery;
  // Seeded drops and delays, plus a crash pinned mid-run so the schedule is
  // guaranteed to kill one attempt regardless of the seed.
  recovery.fault_plan =
      FaultPlan::chaos(/*seed=*/1234, options.num_ranks, /*horizon=*/total_ops,
                       /*drops=*/2, /*delays=*/3, /*with_crash=*/false, /*max_delay_s=*/1e-3)
          .crash(1, total_ops / 2);
  recovery.checkpoint_interval = 32;
  RecoveryReport report;
  const TrainResult recovered =
      svmcore::train_with_recovery(d, params, options, recovery, &report);

  EXPECT_TRUE(recovered.converged);
  EXPECT_GE(report.restarts, 1) << "the crash alone should force one restart";
  // Replay is deterministic, so even the mixed schedule reproduces the
  // fault-free model far inside the 1e-10 acceptance bound.
  expect_same_model(recovered, baseline, /*tolerance=*/1e-10);
}

TEST(ChaosRecovery, RecoveryDisabledFailsFastInsteadOfHanging) {
  const Dataset d = chaos_dataset();
  const SolverParams params = rbf_params();
  TrainOptions options = ranks4(Heuristic::best());
  options.net_model.timeout_s = 0.25;

  const std::uint64_t total_ops = probe_ops(d, params, options, /*rank=*/0);
  RecoveryOptions recovery;
  recovery.fault_plan =
      FaultPlan::chaos(1234, options.num_ranks, total_ops, 2, 3, false, 1e-3)
          .crash(1, total_ops / 2);
  recovery.max_restarts = 0;  // recovery disabled: first failure is fatal

  const auto start = std::chrono::steady_clock::now();
  bool failed_as_expected = false;
  try {
    (void)svmcore::train_with_recovery(d, params, options, recovery);
  } catch (const svmmpi::RankFailed&) {
    failed_as_expected = true;
  } catch (const svmmpi::TimeoutError&) {
    failed_as_expected = true;
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  EXPECT_TRUE(failed_as_expected)
      << "the schedule contains a crash, so the run must fail without recovery";
  EXPECT_LT(elapsed, 60.0) << "pop deadline must bound wall-clock time";
}

TEST(ChaosRecovery, ZeroIntervalReplaysFromScratch) {
  const Dataset d = chaos_dataset();
  const SolverParams params = rbf_params();
  const TrainOptions options = ranks4(Heuristic::best());

  const TrainResult baseline = svmcore::train(d, params, options);
  const std::uint64_t total_ops = probe_ops(d, params, options, /*rank=*/1);

  RecoveryOptions recovery;
  recovery.fault_plan = FaultPlan{}.crash(1, total_ops / 3);
  recovery.checkpoint_interval = 0;  // checkpointing off: restart = rerun
  RecoveryReport report;
  const TrainResult recovered =
      svmcore::train_with_recovery(d, params, options, recovery, &report);

  EXPECT_EQ(report.restarts, 1);
  ASSERT_EQ(report.restore_epochs.size(), 1u);
  EXPECT_EQ(report.restore_epochs[0], 0u);  // no checkpoint to resume from
  expect_same_model(recovered, baseline, /*tolerance=*/0.0);
}

}  // namespace
