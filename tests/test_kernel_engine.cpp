// KernelEngine: hand-computed values for every kernel type, and the bitwise
// parity guarantee between the reference merge-join backend and the fused
// dense_scatter backend. The parity is not approximate — EXPECT_EQ on
// doubles — because checkpoint/chaos recovery and the model-parity tests all
// assume the backends are interchangeable without changing a single bit.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <numeric>
#include <vector>

#include "data/synthetic.hpp"
#include "kernel/kernel_engine.hpp"

namespace {

using svmdata::CsrMatrix;
using svmdata::Dataset;
using svmdata::Feature;
using namespace svmkernel;

// Four tiny rows with known dot products:
//   r0 = (1, 0, 2, 0)    r1 = (0, 3, -1, 0)
//   r2 = (0.5, 0, 0, 4)  r3 = ()              (empty row)
CsrMatrix tiny_matrix() {
  CsrMatrix X;
  const std::vector<Feature> r0{{0, 1.0}, {2, 2.0}};
  const std::vector<Feature> r1{{1, 3.0}, {2, -1.0}};
  const std::vector<Feature> r2{{0, 0.5}, {3, 4.0}};
  const std::vector<Feature> r3{};
  X.add_row(r0);
  X.add_row(r1);
  X.add_row(r2);
  X.add_row(r3);
  return X;
}

// dot(ri, rj) for the tiny matrix, by hand.
constexpr double kDots[4][4] = {
    {5.0, -2.0, 0.5, 0.0},
    {-2.0, 10.0, 0.0, 0.0},
    {0.5, 0.0, 16.25, 0.0},
    {0.0, 0.0, 0.0, 0.0},
};

double finish(const KernelParams& p, double dot, double sq_a, double sq_b) {
  switch (p.type) {
    case KernelType::linear:
      return dot;
    case KernelType::rbf:
      return std::exp(-p.gamma * (sq_a + sq_b - 2.0 * dot));
    case KernelType::polynomial:
      return std::pow(p.gamma * dot + p.coef0, p.degree);
    case KernelType::sigmoid:
      return std::tanh(p.gamma * dot + p.coef0);
  }
  return 0.0;
}

KernelParams params_for(KernelType type) {
  KernelParams p;
  p.type = type;
  p.gamma = 0.5;
  p.coef0 = 1.0;
  p.degree = 3;
  return p;
}

struct Case {
  KernelType type;
  EngineBackend backend;
};

class EngineHandComputedP : public ::testing::TestWithParam<Case> {};

TEST_P(EngineHandComputedP, PairRowsMatchHandComputedValues) {
  const CsrMatrix X = tiny_matrix();
  const KernelParams params = params_for(GetParam().type);
  const Kernel kernel(params);
  KernelEngine engine(kernel, X, GetParam().backend);

  const auto sq = X.row_squared_norms();
  ASSERT_EQ(sq.size(), 4u);
  EXPECT_DOUBLE_EQ(sq[0], 5.0);
  EXPECT_DOUBLE_EQ(sq[1], 10.0);
  EXPECT_DOUBLE_EQ(sq[2], 16.25);
  EXPECT_DOUBLE_EQ(sq[3], 0.0);

  const std::size_t up = 0, low = 1;
  std::vector<std::uint32_t> rows(4);
  std::iota(rows.begin(), rows.end(), 0u);
  std::vector<double> k_up(4), k_low(4);
  engine.eval_pair_rows(X.row(up), sq[up], X.row(low), sq[low], rows, 0, k_up, k_low);

  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(k_up[i], finish(params, kDots[up][i], sq[up], sq[i]))
        << to_string(GetParam().backend) << " row " << i;
    EXPECT_DOUBLE_EQ(k_low[i], finish(params, kDots[low][i], sq[low], sq[i]))
        << to_string(GetParam().backend) << " row " << i;
  }
}

TEST_P(EngineHandComputedP, EvalRowsMatchHandComputedValues) {
  const CsrMatrix X = tiny_matrix();
  const KernelParams params = params_for(GetParam().type);
  const Kernel kernel(params);
  KernelEngine engine(kernel, X, GetParam().backend);

  const auto sq = X.row_squared_norms();
  std::vector<double> out(4);
  engine.eval_rows(X.row(2), sq[2], 0, 4, out);
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_DOUBLE_EQ(out[i], finish(params, kDots[2][i], sq[2], sq[i]));
}

INSTANTIATE_TEST_SUITE_P(
    AllKernelsAllBackends, EngineHandComputedP,
    ::testing::Values(Case{KernelType::linear, EngineBackend::reference},
                      Case{KernelType::linear, EngineBackend::dense_scatter},
                      Case{KernelType::rbf, EngineBackend::reference},
                      Case{KernelType::rbf, EngineBackend::dense_scatter},
                      Case{KernelType::polynomial, EngineBackend::reference},
                      Case{KernelType::polynomial, EngineBackend::dense_scatter},
                      Case{KernelType::sigmoid, EngineBackend::reference},
                      Case{KernelType::sigmoid, EngineBackend::dense_scatter}),
    [](const auto& param_info) {
      return to_string(param_info.param.type) + "_" + to_string(param_info.param.backend);
    });

// --- bitwise backend parity on realistic data -------------------------------

class EngineParityP : public ::testing::TestWithParam<KernelType> {};

Dataset parity_dataset() {
  // Sparse, high-dimensional rows: the case where the scatter buffer sees
  // plenty of zero lanes (the +-0.0 identity the parity proof leans on).
  return svmdata::synthetic::sparse_binary(
      {.n = 64, .d = 512, .nnz_per_row = 24, .pool_overlap = 0.6, .seed = 9});
}

TEST_P(EngineParityP, PairRowsBitIdenticalAcrossBackends) {
  const Dataset d = parity_dataset();
  const Kernel kernel(params_for(GetParam()));
  KernelEngine ref(kernel, d.X, EngineBackend::reference);
  KernelEngine fused(kernel, d.X, EngineBackend::dense_scatter);

  const std::size_t n = d.size();
  // A strided active list, not just 0..n-1, and a few pair choices.
  std::vector<std::uint32_t> rows;
  for (std::size_t i = 0; i < n; i += 3) rows.push_back(static_cast<std::uint32_t>(i));
  std::vector<double> a_up(rows.size()), a_low(rows.size());
  std::vector<double> b_up(rows.size()), b_low(rows.size());

  for (const auto& [up, low] : {std::pair<std::size_t, std::size_t>{0, 1},
                                {5, 63}, {17, 42}}) {
    ref.eval_pair_rows(d.X.row(up), ref.sq_norm(up), d.X.row(low), ref.sq_norm(low), rows,
                       0, a_up, a_low);
    fused.eval_pair_rows(d.X.row(up), fused.sq_norm(up), d.X.row(low), fused.sq_norm(low),
                         rows, 0, b_up, b_low, /*parallel=*/true);
    for (std::size_t k = 0; k < rows.size(); ++k) {
      EXPECT_EQ(a_up[k], b_up[k]) << "pair (" << up << "," << low << ") row " << rows[k];
      EXPECT_EQ(a_low[k], b_low[k]) << "pair (" << up << "," << low << ") row " << rows[k];
    }
  }
}

TEST_P(EngineParityP, EvalRowsAndRangeBitIdenticalAcrossBackends) {
  const Dataset d = parity_dataset();
  const Kernel kernel(params_for(GetParam()));
  KernelEngine ref(kernel, d.X, EngineBackend::reference);
  KernelEngine fused(kernel, d.X, EngineBackend::dense_scatter);

  const std::size_t n = d.size();
  std::vector<double> a(n), b(n);
  ref.eval_rows(d.X.row(7), ref.sq_norm(7), 0, n, a);
  fused.eval_rows(d.X.row(7), fused.sq_norm(7), 0, n, b, /*parallel=*/true);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(a[i], b[i]);

  // eval_pair_range == eval_pair_rows over the contiguous index list.
  std::vector<std::uint32_t> all(n);
  std::iota(all.begin(), all.end(), 0u);
  std::vector<double> ru(n), rl(n), lu(n), ll(n);
  fused.eval_pair_rows(d.X.row(3), fused.sq_norm(3), d.X.row(9), fused.sq_norm(9), all, 0,
                       ru, rl);
  fused.eval_pair_range(d.X.row(3), fused.sq_norm(3), d.X.row(9), fused.sq_norm(9), 0, n,
                        lu, ll);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(ru[i], lu[i]);
    EXPECT_EQ(rl[i], ll[i]);
  }
}

TEST_P(EngineParityP, QueryScopeBitIdenticalAndHandlesWideRemoteRows) {
  const Dataset d = parity_dataset();
  const Kernel kernel(params_for(GetParam()));
  KernelEngine ref(kernel, d.X, EngineBackend::reference);
  KernelEngine fused(kernel, d.X, EngineBackend::dense_scatter);

  // A "remote" row wider than the engine's matrix: its out-of-range feature
  // cannot intersect the query, so skipping it is exact on both backends.
  const auto cols = static_cast<std::int32_t>(d.X.cols());
  std::vector<Feature> wide{{0, 0.5}, {cols / 2, -1.25}, {cols + 10, 3.0}};
  double wide_sq = 0.0;
  for (const Feature& f : wide) wide_sq += f.value * f.value;

  ref.begin_query(d.X.row(11), ref.sq_norm(11));
  fused.begin_query(d.X.row(11), fused.sq_norm(11));
  for (std::size_t j = 0; j < d.size(); ++j) {
    EXPECT_EQ(ref.query_row(d.X.row(j), ref.sq_norm(j)),
              fused.query_row(d.X.row(j), fused.sq_norm(j)))
        << "row " << j;
  }
  EXPECT_EQ(ref.query_row(wide, wide_sq), fused.query_row(wide, wide_sq));
  ref.end_query();
  fused.end_query();
}

INSTANTIATE_TEST_SUITE_P(AllKernels, EngineParityP,
                         ::testing::Values(KernelType::linear, KernelType::rbf,
                                           KernelType::polynomial, KernelType::sigmoid),
                         [](const auto& param_info) { return to_string(param_info.param); });

// --- distributed-slice engines ----------------------------------------------

TEST(KernelEngineTest, SliceEngineMatchesFullEngineOnItsRange) {
  const Dataset d = parity_dataset();
  const Kernel kernel(params_for(KernelType::rbf));
  KernelEngine full(kernel, d.X, EngineBackend::dense_scatter);
  const std::size_t begin = 16, end = 48;
  KernelEngine slice(kernel, d.X, EngineBackend::dense_scatter, begin, end);

  for (std::size_t i = begin; i < end; ++i)
    EXPECT_EQ(slice.sq_norm(i), full.sq_norm(i));

  // rows[] carries LOCAL offsets with base = begin, as run_phase uses it.
  std::vector<std::uint32_t> local(end - begin);
  std::iota(local.begin(), local.end(), 0u);
  std::vector<double> su(local.size()), sl(local.size());
  std::vector<double> fu(d.size()), fl(d.size());
  slice.eval_pair_rows(d.X.row(0), full.sq_norm(0), d.X.row(1), full.sq_norm(1), local,
                       begin, su, sl);
  full.eval_pair_range(d.X.row(0), full.sq_norm(0), d.X.row(1), full.sq_norm(1), 0,
                       d.size(), fu, fl);
  for (std::size_t k = 0; k < local.size(); ++k) {
    EXPECT_EQ(su[k], fu[begin + k]);
    EXPECT_EQ(sl[k], fl[begin + k]);
  }
}

// --- cached float rows -------------------------------------------------------

TEST(KernelEngineTest, KRowFloatsMatchesUnscaledKernelValues) {
  const Dataset d = parity_dataset();
  const Kernel kernel(params_for(KernelType::rbf));
  KernelEngine engine(kernel, d.X, EngineBackend::cached, /*cache_budget_bytes=*/1 << 20);
  KernelEngine ref(kernel, d.X, EngineBackend::reference);

  const std::size_t n = d.size();
  const std::span<const float> row = engine.k_row_floats(5, n);
  ASSERT_EQ(row.size(), n);
  for (std::size_t j = 0; j < n; ++j) {
    const double kij = ref.eval_one(d.X.row(5), d.X.row(j), ref.sq_norm(5), ref.sq_norm(j));
    EXPECT_EQ(row[j], static_cast<float>(kij)) << "col " << j;
  }

  // A second fetch of the same row is a cache hit with identical contents.
  const std::span<const float> again = engine.k_row_floats(5, n);
  for (std::size_t j = 0; j < n; ++j) EXPECT_EQ(row[j], again[j]);
  EXPECT_GT(engine.cache_hit_rate(), 0.0);
}

TEST(KernelEngineTest, KRowFloatsAppliesRowScaleLikeLibsvm) {
  const Dataset d = parity_dataset();
  const Kernel kernel(params_for(KernelType::rbf));
  KernelEngine engine(kernel, d.X, EngineBackend::cached, 1 << 20);
  engine.set_row_scale(d.y);
  KernelEngine ref(kernel, d.X, EngineBackend::reference);

  const std::size_t n = d.size();
  const std::span<const float> row = engine.k_row_floats(3, n);
  for (std::size_t j = 0; j < n; ++j) {
    const double kij = ref.eval_one(d.X.row(3), d.X.row(j), ref.sq_norm(3), ref.sq_norm(j));
    EXPECT_EQ(row[j], static_cast<float>(d.y[3] * d.y[j] * kij)) << "col " << j;
  }
}

TEST(KernelEngineTest, RowsStayCorrectUnderEvictionPressure) {
  // Budget fits exactly one row, so every alternating fetch goes through the
  // miss -> fill -> insert -> re-lookup path with eviction in play; the pin
  // keeps each returned span valid until the next call (the generic SMO
  // contract: copy the first row of a pair before fetching the second).
  const Dataset d = parity_dataset();
  const Kernel kernel(params_for(KernelType::rbf));
  const std::size_t n = d.size();
  KernelEngine engine(kernel, d.X, EngineBackend::cached, n * sizeof(float));
  KernelEngine ref(kernel, d.X, EngineBackend::reference);

  for (const std::size_t i : {2u, 8u, 2u, 8u, 5u}) {
    const std::span<const float> row = engine.k_row_floats(i, n);
    const std::vector<float> copy(row.begin(), row.end());
    for (std::size_t j = 0; j < n; ++j) {
      const double kij =
          ref.eval_one(d.X.row(i), d.X.row(j), ref.sq_norm(i), ref.sq_norm(j));
      EXPECT_EQ(copy[j], static_cast<float>(kij)) << "row " << i << " col " << j;
    }
  }
}

// --- counters ----------------------------------------------------------------

TEST(KernelEngineTest, StatsCountBatchedWork) {
  const CsrMatrix X = tiny_matrix();
  const Kernel kernel(params_for(KernelType::rbf));
  KernelEngine engine(kernel, X, EngineBackend::dense_scatter);

  const auto sq = X.row_squared_norms();
  std::vector<std::uint32_t> rows{0, 1, 2, 3};
  std::vector<double> u(4), l(4);
  engine.eval_pair_rows(X.row(0), sq[0], X.row(1), sq[1], rows, 0, u, l);
  EXPECT_EQ(engine.stats().pair_evals, 4u);
  EXPECT_EQ(engine.stats().scatter_builds, 2u);  // one per query lane
  // r0 (2 nnz) + r1 (2) + r2 (2) + r3 (0) = 6 features streamed.
  EXPECT_EQ(engine.stats().bytes_streamed, 6 * sizeof(Feature));

  std::vector<double> out(4);
  engine.eval_rows(X.row(2), sq[2], 0, 4, out);
  EXPECT_EQ(engine.stats().single_evals, 4u);
  EXPECT_EQ(engine.stats().scatter_builds, 3u);

  // The work metric matches the unbatched code: each produced value counts
  // as one Kernel evaluation regardless of backend.
  EXPECT_EQ(engine.kernel().evaluations(), 12u);
}

TEST(KernelEngineTest, BlockRowsSimdPanelBitIdenticalToReference) {
  // The simd backend's eval_block_rows panel branch must land on exactly the
  // same bits as the reference merge-join: same finish_from_dot funnel, same
  // ascending accumulation order, f64 resident rows.
  svmdata::synthetic::BlobsParams bp;
  bp.n = 37;  // not a multiple of the panel width: exercises the tail panel
  bp.d = 12;
  bp.seed = 9;
  const Dataset data = svmdata::synthetic::gaussian_blobs(bp);
  const CsrMatrix& X = data.X;
  const std::vector<double> sq = X.row_squared_norms();

  for (const KernelType type : {KernelType::rbf, KernelType::linear}) {
    SCOPED_TRACE(to_string(type));
    const Kernel kernel(params_for(type));
    KernelEngine ref(kernel, X, EngineBackend::reference);
    KernelEngine simd(kernel, X, EngineBackend::simd, 0, RowFlavor::f64);

    const std::vector<std::span<const Feature>> block{X.row(0), X.row(5), X.row(11)};
    const std::vector<double> block_sq{sq[0], sq[5], sq[11]};
    const std::vector<double> block_coeffs{0.75, -1.25, 0.5};
    std::vector<std::uint32_t> rows(X.rows());
    std::iota(rows.begin(), rows.end(), 0u);

    std::vector<double> expect(X.rows(), 0.25), got(X.rows(), 0.25);
    ref.eval_block_rows(block, block_sq, block_coeffs, rows, 0, expect);
    simd.eval_block_rows(block, block_sq, block_coeffs, rows, 0, got);
    for (std::size_t w = 0; w < rows.size(); ++w) EXPECT_EQ(got[w], expect[w]) << "row " << w;
  }
}

TEST(KernelEngineTest, BatchPredictMatchesAccumulateRowsAcrossBackends) {
  // Serving micro-batch form: out[q] must be bitwise what a per-query
  // accumulate_rows returns, on every backend.
  svmdata::synthetic::BlobsParams bp;
  bp.n = 24;
  bp.d = 10;
  bp.seed = 4;
  const Dataset data = svmdata::synthetic::gaussian_blobs(bp);
  const CsrMatrix& X = data.X;
  const std::vector<double> sq = X.row_squared_norms();
  std::vector<double> coeffs(X.rows());
  for (std::size_t j = 0; j < coeffs.size(); ++j)
    coeffs[j] = (j % 2 == 0 ? 1.0 : -1.0) * (0.25 + 0.01 * static_cast<double>(j));

  const Kernel kernel(params_for(KernelType::rbf));
  KernelEngine ref(kernel, X, EngineBackend::reference);
  const std::vector<std::span<const Feature>> queries{X.row(1), X.row(7), X.row(23), X.row(7)};
  const std::vector<double> query_sq{sq[1], sq[7], sq[23], sq[7]};

  for (const EngineBackend backend :
       {EngineBackend::reference, EngineBackend::dense_scatter, EngineBackend::simd}) {
    SCOPED_TRACE(to_string(backend));
    KernelEngine engine(kernel, X, backend);
    std::vector<double> out(queries.size());
    engine.eval_block_rows(queries, query_sq, coeffs, out);
    for (std::size_t q = 0; q < queries.size(); ++q) {
      EXPECT_EQ(out[q], ref.accumulate_rows(queries[q], query_sq[q], coeffs)) << "query " << q;
    }
  }
}

TEST(KernelEngineTest, BackendNamesRoundTrip) {
  for (const EngineBackend b :
       {EngineBackend::reference, EngineBackend::dense_scatter, EngineBackend::cached})
    EXPECT_EQ(engine_backend_from_string(to_string(b)), b);
  EXPECT_THROW((void)engine_backend_from_string("warp_drive"), std::invalid_argument);
}

}  // namespace
