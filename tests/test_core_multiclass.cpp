#include <gtest/gtest.h>

#include <sstream>

#include "core/multiclass.hpp"
#include "data/synthetic.hpp"

namespace {

using svmcore::MulticlassDataset;
using svmcore::MulticlassModel;
using svmcore::train_one_vs_one;
using svmdata::synthetic::multiclass_blobs;

svmcore::SolverParams rbf_params() {
  svmcore::SolverParams p;
  p.C = 10.0;
  p.eps = 1e-3;
  p.kernel = svmkernel::KernelParams::rbf_with_sigma_sq(8.0);
  return p;
}

TEST(Multiclass, GeneratorProducesRequestedClasses) {
  const MulticlassDataset d =
      multiclass_blobs({.n = 400, .d = 6, .classes = 5, .separation = 4.0, .seed = 3});
  EXPECT_EQ(d.size(), 400u);
  std::set<double> labels(d.labels.begin(), d.labels.end());
  EXPECT_EQ(labels.size(), 5u);
  for (const double c : labels) {
    EXPECT_GE(c, 0.0);
    EXPECT_LT(c, 5.0);
  }
}

TEST(Multiclass, TrainsAndClassifiesSeparableClasses) {
  const MulticlassDataset train =
      multiclass_blobs({.n = 300, .d = 6, .classes = 4, .separation = 6.0, .seed = 5});
  const MulticlassModel model = train_one_vs_one(train, rbf_params());
  EXPECT_EQ(model.num_classes(), 4u);
  EXPECT_EQ(model.machines().size(), 6u);  // 4*3/2
  EXPECT_GT(model.accuracy(train), 0.98);
}

TEST(Multiclass, GeneralizesToHeldOutDraw) {
  const MulticlassDataset train =
      multiclass_blobs({.n = 300, .d = 6, .classes = 3, .separation = 5.0, .seed = 7});
  const MulticlassDataset test =
      multiclass_blobs({.n = 200, .d = 6, .classes = 3, .separation = 5.0, .seed = 7, .draw = 1});
  const MulticlassModel model = train_one_vs_one(train, rbf_params());
  EXPECT_GT(model.accuracy(test), 0.95);
}

TEST(Multiclass, TwoClassesDegenerateToBinary) {
  const MulticlassDataset train =
      multiclass_blobs({.n = 150, .d = 4, .classes = 2, .separation = 5.0, .seed = 9});
  const MulticlassModel model = train_one_vs_one(train, rbf_params());
  EXPECT_EQ(model.machines().size(), 1u);
  EXPECT_GT(model.accuracy(train), 0.98);
}

TEST(Multiclass, ShrinkingHeuristicMatchesOriginalAccuracy) {
  const MulticlassDataset train =
      multiclass_blobs({.n = 240, .d = 5, .classes = 3, .separation = 3.0, .seed = 11});
  const MulticlassModel plain = train_one_vs_one(train, rbf_params());
  svmcore::MulticlassTrainOptions options;
  options.heuristic = svmcore::Heuristic::best();
  options.num_ranks = 2;
  const MulticlassModel shrunk = train_one_vs_one(train, rbf_params(), options);
  EXPECT_NEAR(shrunk.accuracy(train), plain.accuracy(train), 0.02);
}

TEST(Multiclass, RejectsSingleClass) {
  MulticlassDataset d;
  d.X.add_row(std::vector<svmdata::Feature>{{0, 1.0}});
  d.X.add_row(std::vector<svmdata::Feature>{{0, 2.0}});
  d.labels = {3.0, 3.0};
  EXPECT_THROW((void)train_one_vs_one(d, rbf_params()), std::invalid_argument);
}

TEST(Multiclass, RejectsCountMismatch) {
  MulticlassDataset d;
  d.X.add_row(std::vector<svmdata::Feature>{{0, 1.0}});
  d.labels = {1.0, 2.0};
  EXPECT_THROW((void)train_one_vs_one(d, rbf_params()), std::invalid_argument);
}

TEST(Multiclass, NonContiguousLabelsPreserved) {
  // Labels need not be 0..k-1; e.g. {-7, 2.5, 40}.
  // Random centers can land near each other by chance; high separation and
  // a modest accuracy bar keep this robust to the draw.
  MulticlassDataset base =
      multiclass_blobs({.n = 200, .d = 4, .classes = 3, .separation = 8.0, .seed = 13});
  for (double& label : base.labels) label = label == 0.0 ? -7.0 : (label == 1.0 ? 2.5 : 40.0);
  const MulticlassModel model = train_one_vs_one(base, rbf_params());
  const auto predicted = model.predict_all(base.X);
  for (const double p : predicted) EXPECT_TRUE(p == -7.0 || p == 2.5 || p == 40.0);
  EXPECT_GT(model.accuracy(base), 0.92);
}

TEST(Multiclass, SaveLoadRoundTrip) {
  const MulticlassDataset train =
      multiclass_blobs({.n = 150, .d = 4, .classes = 3, .separation = 5.0, .seed = 15});
  const MulticlassModel model = train_one_vs_one(train, rbf_params());

  std::ostringstream out;
  model.save(out);
  std::istringstream in(out.str());
  const MulticlassModel loaded = MulticlassModel::load(in);

  EXPECT_EQ(loaded.num_classes(), model.num_classes());
  EXPECT_EQ(loaded.classes(), model.classes());
  const auto a = model.predict_all(train.X);
  const auto b = loaded.predict_all(train.X);
  EXPECT_EQ(a, b);
}

TEST(Multiclass, LoadRejectsBadMagic) {
  std::istringstream in("garbage\n");
  EXPECT_THROW((void)MulticlassModel::load(in), std::runtime_error);
}

TEST(Multiclass, ConstructorValidatesMachineCount) {
  EXPECT_THROW(MulticlassModel({0.0, 1.0, 2.0}, {}), std::invalid_argument);
}

}  // namespace
