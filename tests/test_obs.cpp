// The svmobs observability subsystem: trace-recorder semantics (disabled
// no-op, bounded drop-oldest rings, concurrent emission, span repair),
// metrics-registry semantics (canonical keys, aggregate merge rules), and
// the end-to-end contract — a traced p=4 training run must export a valid
// Chrome trace covering all four instrumentation layers plus counter
// tracks, a crash mid-solve must still flush a well-formed partial trace,
// and tracing must not change the trained model by a single bit.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/trainer.hpp"
#include "data/synthetic.hpp"
#include "mpisim/fault.hpp"
#include "obs/analyze.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "obs/validate.hpp"

namespace {

using svmcore::Heuristic;
using svmcore::RecoveryOptions;
using svmcore::SolverParams;
using svmcore::TrainOptions;
using svmcore::TrainResult;
using svmobs::MetricsRegistry;
using svmobs::ValidationResult;

/// Every test that records must leave the global recorder disabled+empty.
class ObsTest : public ::testing::Test {
 protected:
  void TearDown() override {
    svmobs::trace_disable();
    svmobs::trace_reset();
  }
};

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// --- trace recorder --------------------------------------------------------

TEST_F(ObsTest, DisabledRecorderEmitsNothing) {
  ASSERT_FALSE(svmobs::trace_enabled());
  svmobs::trace_begin("never", "test");
  svmobs::trace_counter("never", 1.0);
  svmobs::trace_end("never", "test");
  const ValidationResult result = svmobs::validate_trace(svmobs::trace_json());
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.events, 0u);
  EXPECT_EQ(svmobs::trace_dropped_events(), 0u);
}

TEST_F(ObsTest, RecordsBalancedSpansAndCounters) {
  svmobs::trace_enable();
  {
    svmobs::TraceSpan outer("outer", "test");
    svmobs::trace_counter("gauge", 42.0);
    svmobs::TraceSpan inner("inner", "test");
  }
  svmobs::trace_instant("marker", "test");
  svmobs::trace_disable();

  const ValidationResult result =
      svmobs::validate_trace(svmobs::trace_json(), {"outer", "inner"}, 1);
  EXPECT_TRUE(result.ok()) << (result.errors.empty() ? "" : result.errors.front());
  EXPECT_EQ(result.spans, 2u);
  EXPECT_EQ(result.counter_tracks, 1u);
}

TEST_F(ObsTest, OverflowDropsOldestKeepsNewestAndStaysWellFormed) {
  constexpr std::size_t kCapacity = 64;
  constexpr std::uint64_t kEmitted = 1000;
  svmobs::trace_enable(kCapacity);
  for (std::uint64_t i = 0; i < kEmitted; ++i)
    svmobs::trace_counter("seq", static_cast<double>(i));
  svmobs::trace_disable();

  EXPECT_GE(svmobs::trace_dropped_events(), kEmitted - kCapacity);
  const std::string json = svmobs::trace_json();
  const ValidationResult result = svmobs::validate_trace(json, {}, 1);
  EXPECT_TRUE(result.ok()) << (result.errors.empty() ? "" : result.errors.front());
  EXPECT_LE(result.events, kCapacity);
  EXPECT_GT(result.events, 0u);

  // Drop-oldest: the newest sample (kEmitted - 1) must have survived, and
  // every surviving value must come from the tail of the emission sequence.
  const svmobs::JsonValue doc = svmobs::parse_json(json);
  const svmobs::JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  double max_value = -1.0;
  double min_value = 1e300;
  for (const svmobs::JsonValue& event : events->array) {
    const svmobs::JsonValue* ph = event.find("ph");
    if (ph == nullptr || ph->string != "C") continue;  // skip metadata events
    const svmobs::JsonValue* args = event.find("args");
    ASSERT_NE(args, nullptr);
    const svmobs::JsonValue* value = args->find("value");
    ASSERT_NE(value, nullptr);
    max_value = std::max(max_value, value->number);
    min_value = std::min(min_value, value->number);
  }
  EXPECT_EQ(max_value, static_cast<double>(kEmitted - 1));
  EXPECT_GE(min_value, static_cast<double>(kEmitted - kCapacity));
}

TEST_F(ObsTest, SpanRepairBalancesTruncatedSpans) {
  svmobs::trace_enable();
  // An unclosed begin (crash shape) and an orphan end (eviction shape).
  svmobs::trace_begin("unclosed", "test");
  svmobs::trace_counter("tick", 1.0);
  svmobs::trace_end("orphan", "test");
  svmobs::trace_disable();

  const ValidationResult result = svmobs::validate_trace(svmobs::trace_json());
  EXPECT_TRUE(result.ok()) << (result.errors.empty() ? "" : result.errors.front());
  EXPECT_EQ(result.spans, 2u);  // both repaired into balanced pairs
}

TEST_F(ObsTest, ConcurrentEmissionFromEightRanksExportsValidTrace) {
  constexpr int kThreads = 8;
  constexpr int kEventsPerThread = 2000;
  svmobs::trace_enable();

  std::atomic<int> ready{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int rank = 0; rank < kThreads; ++rank) {
    threads.emplace_back([rank, &ready] {
      svmobs::trace_set_thread_rank(rank);
      ready.fetch_add(1);
      while (ready.load() < kThreads) std::this_thread::yield();  // maximise overlap
      for (int i = 0; i < kEventsPerThread; ++i) {
        svmobs::TraceSpan span("work", "test");
        svmobs::trace_counter("progress", static_cast<double>(i));
        if (i % 100 == 0) svmobs::trace_instant("milestone", "test");
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  svmobs::trace_disable();

  const ValidationResult result = svmobs::validate_trace(svmobs::trace_json(), {"work"}, 1);
  EXPECT_TRUE(result.ok()) << (result.errors.empty() ? "" : result.errors.front());
  EXPECT_EQ(result.tracks, static_cast<std::size_t>(kThreads));
  EXPECT_EQ(result.spans, static_cast<std::size_t>(kThreads) * kEventsPerThread);
}

// --- metrics registry ------------------------------------------------------

TEST(MetricsRegistry, CanonicalKeysAndStableHandles) {
  MetricsRegistry registry;
  svmobs::Counter& a = registry.counter("ops", {{"kind", "send"}});
  svmobs::Counter& b = registry.counter("ops", {{"kind", "send"}});
  EXPECT_EQ(&a, &b);  // same labelled series -> same handle
  a.add(3);
  b.add(2);
  EXPECT_EQ(a.value(), 5u);

  registry.gauge("depth").set(7.0);
  registry.histogram("lat_s", {0.1, 1.0}).observe(0.5);
  EXPECT_EQ(MetricsRegistry::canonical_key("ops", {{"b", "2"}, {"a", "1"}}),
            "ops{a=1,b=2}");  // labels sorted
  EXPECT_EQ(registry.counters().size(), 1u);
  EXPECT_EQ(registry.gauges().size(), 1u);
  EXPECT_EQ(registry.histograms().size(), 1u);
}

TEST(MetricsRegistry, AggregateSumsCountersMaxesGaugesMergesHistograms) {
  MetricsRegistry rank0;
  rank0.counter("iters").add(10);
  rank0.gauge("wall_s").set(1.5);
  rank0.histogram("lat", {1.0}).observe(0.5);

  MetricsRegistry rank1;
  rank1.counter("iters").add(32);
  rank1.gauge("wall_s").set(2.5);
  rank1.histogram("lat", {1.0}).observe(3.0);

  MetricsRegistry aggregate;
  aggregate.aggregate_from(rank0);
  aggregate.aggregate_from(rank1);
  EXPECT_EQ(aggregate.counter("iters").value(), 42u);
  EXPECT_EQ(aggregate.gauge("wall_s").value(), 2.5);
  const svmobs::Histogram& lat = aggregate.histogram("lat", {1.0});
  EXPECT_EQ(lat.count(), 2u);
}

TEST(MetricsRegistry, RunReportJsonValidates) {
  svmobs::RunReport report;
  report.name = "unit";
  report.info.emplace_back("ranks", "2");
  for (int rank = 0; rank < 2; ++rank) {
    MetricsRegistry registry;
    registry.counter("iters").add(10 * (rank + 1));
    registry.gauge("wall_s").set(0.25 * (rank + 1));
    registry.histogram("lat", {0.1, 1.0}).observe(0.2);
    report.ranks.push_back(std::move(registry));
  }
  report.finalize_aggregate();
  EXPECT_EQ(report.aggregate.counter("iters").value(), 30u);

  const ValidationResult result = svmobs::validate_metrics(svmobs::reports_json({report}));
  EXPECT_TRUE(result.ok()) << (result.errors.empty() ? "" : result.errors.front());
  EXPECT_EQ(result.runs, 1u);
}

// --- end-to-end through the trainer ----------------------------------------

svmdata::Dataset obs_dataset() {
  return svmdata::synthetic::gaussian_blobs(
      {.n = 240, .d = 8, .separation = 1.7, .label_noise = 0.05, .seed = 7});
}

SolverParams obs_params() {
  SolverParams p;
  p.C = 4.0;
  p.eps = 1e-3;
  p.kernel = svmkernel::KernelParams::rbf_with_sigma_sq(4.0);
  return p;
}

TEST_F(ObsTest, TracedTrainingCoversAllFourLayersAndWritesReport) {
  const std::string trace_path = temp_path("svmobs_test_trace.json");
  const std::string metrics_path = temp_path("svmobs_test_metrics.json");
  TrainOptions options;
  options.num_ranks = 4;
  options.heuristic = Heuristic::parse("Multi5pc");  // shrinks -> ring runs
  options.trace_active_interval = 25;
  options.trace_path = trace_path;
  options.metrics_path = metrics_path;

  const TrainResult result = svmcore::train(obs_dataset(), obs_params(), options);
  EXPECT_TRUE(result.converged);
  EXPECT_FALSE(result.active_trace.empty());  // field still populated
  ASSERT_EQ(result.rank_metrics.size(), 4u);
  EXPECT_EQ(result.metrics.counters().at("solver.iterations").value(),
            4 * result.iterations);  // aggregate sums the rank-invariant count

  // Layer coverage: mpisim collective, kernel-engine batch, solver phase,
  // reconstruction ring step — plus the active-set and gap counter tracks.
  const ValidationResult trace = svmobs::validate_trace(
      svmobs::read_file(trace_path),
      {"allreduce", "engine_pair_batch", "solve", "phase", "smo_batch", "ring_step",
       "reconstruction"},
      2);
  EXPECT_TRUE(trace.ok()) << (trace.errors.empty() ? "" : trace.errors.front());
  EXPECT_GE(trace.tracks, 4u);  // one track per rank (+ driver if it emitted)

  const ValidationResult metrics = svmobs::validate_metrics(svmobs::read_file(metrics_path));
  EXPECT_TRUE(metrics.ok()) << (metrics.errors.empty() ? "" : metrics.errors.front());
  EXPECT_EQ(metrics.runs, 1u);

  std::filesystem::remove(trace_path);
  std::filesystem::remove(metrics_path);
}

TEST_F(ObsTest, CrashMidSolveStillFlushesWellFormedPartialTrace) {
  const std::string trace_path = temp_path("svmobs_test_crash_trace.json");
  TrainOptions options;
  options.num_ranks = 4;
  options.heuristic = Heuristic::parse("Multi5pc");
  options.trace_path = trace_path;

  // Crash rank 1 mid-solve with recovery disabled: train_with_recovery
  // rethrows, but the trace session must still flush a balanced trace of
  // everything up to the failure.
  RecoveryOptions recovery;
  recovery.fault_plan = svmmpi::FaultPlan{}.crash(1, 400);
  recovery.max_restarts = 0;
  EXPECT_ANY_THROW(
      (void)svmcore::train_with_recovery(obs_dataset(), obs_params(), options, recovery));

  const ValidationResult result =
      svmobs::validate_trace(svmobs::read_file(trace_path), {"rank_main", "solve"});
  EXPECT_TRUE(result.ok()) << (result.errors.empty() ? "" : result.errors.front());
  EXPECT_GT(result.events, 0u);
  std::filesystem::remove(trace_path);
}

// --- flow correlation & causal analysis ------------------------------------

TEST(MetricsRegistry, HistogramPercentilesInterpolateAndSerialize) {
  svmobs::Histogram h({1.0, 2.0, 4.0});
  for (int i = 0; i < 8; ++i) h.observe(0.5);   // bucket (0,1]
  for (int i = 0; i < 2; ++i) h.observe(3.0);   // bucket (2,4]
  // p50 rank = 5 of 10, 5/8 through the first bucket -> 0.625.
  EXPECT_NEAR(h.percentile(50.0), 0.625, 1e-12);
  // p95 rank = 9.5 of 10, 1.5/2 through (2,4] -> 3.5.
  EXPECT_NEAR(h.percentile(95.0), 3.5, 1e-12);
  h.observe(100.0);  // overflow bucket reports the last finite bound
  EXPECT_EQ(h.percentile(100.0), 4.0);

  MetricsRegistry registry;
  registry.histogram("lat", {1.0}).observe(0.5);
  const std::string json = registry.json();
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p95\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

TEST(TraceAnalyze, SyntheticTraceAttributesRoundExactly) {
  // Two ranks, one round of 100ms (rank 0) / 60ms (rank 1). Rank 1 computes
  // 50ms then sends (flow 7); rank 0 computes 20ms then blocks in a recv
  // until 52ms, with the message ready at 50ms. Expected per-rank split:
  //   rank 0: wait 32ms = 30ms blocked (on rank 1) + 2ms comm; compute 68ms
  //   rank 1: compute 60ms, imbalance 40ms (round wall is 100ms)
  const std::string trace = R"({
    "otherData": {"schema": "svmobs.trace.v1"},
    "traceEvents": [
      {"name":"round","cat":"pbm","ph":"B","pid":0,"tid":0,"ts":0},
      {"name":"round_seq","ph":"C","pid":0,"tid":0,"ts":0,"args":{"value":0}},
      {"name":"recv","cat":"net","ph":"B","pid":0,"tid":0,"ts":20000},
      {"name":"msg","cat":"flow","ph":"f","bp":"e","pid":0,"tid":0,"ts":51000,"id":7},
      {"name":"recv","cat":"net","ph":"E","pid":0,"tid":0,"ts":52000},
      {"name":"round","cat":"pbm","ph":"E","pid":0,"tid":0,"ts":100000},
      {"name":"round","cat":"pbm","ph":"B","pid":1,"tid":1,"ts":0},
      {"name":"round_seq","ph":"C","pid":1,"tid":1,"ts":0,"args":{"value":0}},
      {"name":"msg","cat":"flow","ph":"s","pid":1,"tid":1,"ts":50000,"id":7},
      {"name":"round","cat":"pbm","ph":"E","pid":1,"tid":1,"ts":60000}
    ]})";

  const svmobs::TraceAnalysis analysis = svmobs::analyze_trace(trace);
  ASSERT_TRUE(analysis.ok()) << (analysis.errors.empty() ? "" : analysis.errors.front());
  ASSERT_EQ(analysis.rounds.size(), 1u);
  const svmobs::RoundAnalysis& round = analysis.rounds.front();
  EXPECT_EQ(round.seq, 0u);
  EXPECT_EQ(round.category, "pbm");
  EXPECT_NEAR(round.wall_s, 0.100, 1e-9);
  EXPECT_NEAR(round.compute_s, 0.064, 1e-9);    // mean(68ms, 60ms)
  EXPECT_NEAR(round.comm_s, 0.001, 1e-9);       // mean(2ms, 0)
  EXPECT_NEAR(round.blocked_s, 0.015, 1e-9);    // mean(30ms, 0)
  EXPECT_NEAR(round.imbalance_s, 0.020, 1e-9);  // mean(0, 40ms)
  EXPECT_NEAR(round.closure, 1.0, 1e-9);        // exact closure by construction
  EXPECT_EQ(round.straggler, 1);

  ASSERT_EQ(round.ranks.size(), 2u);
  EXPECT_NEAR(round.ranks[0].blocked_s, 0.030, 1e-9);
  EXPECT_EQ(round.ranks[0].blocked_on, 1);
  EXPECT_NEAR(round.ranks[1].imbalance_s, 0.040, 1e-9);

  // Critical path: rank 1 computes [0,50ms], hands off to rank 0 [50,100ms].
  ASSERT_EQ(round.critical_path.size(), 2u);
  EXPECT_EQ(round.critical_path[0].rank, 1);
  EXPECT_NEAR(round.critical_path[0].to_s, 0.050, 1e-9);
  EXPECT_EQ(round.critical_path[1].rank, 0);
  EXPECT_NEAR(round.critical_path[1].from_s, 0.050, 1e-9);

  ASSERT_EQ(analysis.stragglers.size(), 1u);
  EXPECT_EQ(analysis.stragglers.front().rank, 1);
  EXPECT_NEAR(analysis.stragglers.front().blocked_on_s, 0.030, 1e-9);
  EXPECT_EQ(analysis.flow_edges, 1u);
}

TEST_F(ObsTest, FlowIdsStayUniqueAcrossShrinkRecovery) {
  const std::string trace_path = temp_path("svmobs_test_flow_trace.json");
  SolverParams params = obs_params();
  params.algo = svmcore::SolverAlgo::pbm;
  TrainOptions options;
  options.num_ranks = 4;
  options.net_model.timeout_s = 5.0;
  options.trace_path = trace_path;

  // Kill rank 2 between outer rounds: the shrunk world re-runs collectives
  // and re-sends messages, so flow ids must keep advancing, never repeat.
  svmcore::RecoveryOptions recovery;
  recovery.policy = svmcore::RecoveryPolicy::shrink_world;
  recovery.checkpoint_interval = 1;
  recovery.fault_plan = svmmpi::FaultPlan{}.die(2, 9);
  svmcore::RecoveryReport report;
  const TrainResult result =
      svmcore::train_with_recovery(obs_dataset(), params, options, recovery, &report);
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(report.shrinks, 1);

  // Lenient validation still enforces flow-id uniqueness (duplicate starts
  // are an error regardless of strictness); the killed rank legitimately
  // leaves dangling flows, so strict is NOT expected to pass here.
  const ValidationResult lenient = svmobs::validate_trace(svmobs::read_file(trace_path));
  EXPECT_TRUE(lenient.ok()) << (lenient.errors.empty() ? "" : lenient.errors.front());
  EXPECT_GT(lenient.flows, 0u);
  std::filesystem::remove(trace_path);
}

TEST_F(ObsTest, InjectedDelayRankIsTopStragglerAtEightRanks) {
  const std::string trace_path = temp_path("svmobs_test_straggler_trace.json");
  SolverParams params = obs_params();
  params.algo = svmcore::SolverAlgo::pbm;
  TrainOptions options;
  options.num_ranks = 8;
  options.trace_path = trace_path;

  // 5ms delay on every collective rank 3 enters (one consumable event per
  // op): rank 3 always arrives last, so everyone else blocks on it.
  svmcore::RecoveryOptions recovery;
  for (std::uint64_t op = 1; op <= 400; ++op)
    recovery.fault_plan.delay(3, op, 0.005, svmmpi::FaultSite::collective);
  const TrainResult result =
      svmcore::train_with_recovery(obs_dataset(), params, options, recovery);
  EXPECT_TRUE(result.converged);

  const svmobs::TraceAnalysis analysis =
      svmobs::analyze_trace(svmobs::read_file(trace_path));
  ASSERT_TRUE(analysis.ok()) << (analysis.errors.empty() ? "" : analysis.errors.front());
  EXPECT_FALSE(analysis.rounds.empty());
  EXPECT_GT(analysis.flow_edges, 0u);
  ASSERT_FALSE(analysis.stragglers.empty());
  EXPECT_EQ(analysis.stragglers.front().rank, 3);
  EXPECT_GT(analysis.stragglers.front().blocked_on_s, 0.0);

  // Attribution closes on every round: compute+comm+blocked+imbalance must
  // account for the full round wall within 2%.
  for (const svmobs::RoundAnalysis& round : analysis.rounds)
    EXPECT_NEAR(round.closure, 1.0, 0.02) << "round " << round.seq;
  std::filesystem::remove(trace_path);
}

TEST_F(ObsTest, TracingProducesBitIdenticalModels) {
  const std::string trace_path = temp_path("svmobs_test_parity_trace.json");
  const svmdata::Dataset train = obs_dataset();
  TrainOptions plain;
  plain.num_ranks = 4;
  plain.heuristic = Heuristic::parse("Multi5pc");
  TrainOptions traced = plain;
  traced.trace_path = trace_path;

  const TrainResult a = svmcore::train(train, obs_params(), plain);
  const TrainResult b = svmcore::train(train, obs_params(), traced);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.beta, b.beta);
  ASSERT_EQ(a.model.num_support_vectors(), b.model.num_support_vectors());
  for (std::size_t j = 0; j < a.model.num_support_vectors(); ++j)
    EXPECT_EQ(a.model.coefficients()[j], b.model.coefficients()[j]) << "sv " << j;
  std::filesystem::remove(trace_path);
}

}  // namespace
