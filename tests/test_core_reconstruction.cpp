// Gradient-reconstruction properties (Algorithm 3). The strongest check is
// indirect but exact: after any shrinking solve completes, the FULL-dataset
// KKT gap (recomputed from scratch, all gammas rebuilt) must satisfy the
// Eq. (5) stopping criterion — which can only hold if reconstruction
// restored the gradients of falsely-eliminated samples correctly.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/objective.hpp"
#include "core/sample_block.hpp"
#include "core/trainer.hpp"
#include "data/synthetic.hpp"

namespace {

using svmcore::Heuristic;
using svmcore::PackedSamples;
using svmcore::SolverParams;
using svmcore::TrainOptions;
using svmdata::Dataset;
using svmdata::Feature;
using svmkernel::KernelParams;

SolverParams solver_params() {
  SolverParams p;
  p.C = 8.0;
  p.eps = 1e-3;
  p.kernel = KernelParams::rbf_with_sigma_sq(4.0);
  return p;
}

struct Case {
  const char* heuristic;
  int ranks;
};

class ReconstructionP : public ::testing::TestWithParam<Case> {};

TEST_P(ReconstructionP, FullDatasetKktGapHoldsAfterSolve) {
  const Dataset train = svmdata::synthetic::gaussian_blobs(
      {.n = 180, .d = 5, .separation = 1.5, .label_noise = 0.1, .seed = 61});
  const SolverParams params = solver_params();

  TrainOptions options;
  options.num_ranks = GetParam().ranks;
  options.heuristic = Heuristic::parse(GetParam().heuristic);
  const auto result = svmcore::train(train, params, options);
  ASSERT_TRUE(result.converged);

  // Recover the full alpha vector from the model: every SV coefficient is
  // alpha*y, and non-SV alphas are zero. Walk the dataset rows in order;
  // support vectors preserve dataset order in build_model.
  std::vector<double> alpha(train.size(), 0.0);
  const auto& svs = result.model.support_vectors();
  std::size_t sv_cursor = 0;
  for (std::size_t i = 0; i < train.size() && sv_cursor < svs.rows(); ++i) {
    const auto row = train.X.row(i);
    const auto sv = svs.row(sv_cursor);
    if (row.size() == sv.size() &&
        std::equal(row.begin(), row.end(), sv.begin(), [](const Feature& a, const Feature& b) {
          return a.index == b.index && a.value == b.value;
        })) {
      alpha[i] = result.model.coefficients()[sv_cursor] * train.y[i];  // alpha = coef*y, y^2=1
      ++sv_cursor;
    }
  }
  ASSERT_EQ(sv_cursor, svs.rows()) << "could not align SVs to dataset rows";

  const svmcore::KktReport report = svmcore::kkt_report(train, alpha, params);
  EXPECT_LE(report.gap, 2.0 * params.eps + 1e-6)
      << GetParam().heuristic << " p=" << GetParam().ranks;
  EXPECT_LE(report.max_alpha_bound_violation, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ReconstructionP,
                         ::testing::Values(Case{"Single2", 1}, Case{"Single2", 4},
                                           Case{"Single5pc", 3}, Case{"Multi2", 1},
                                           Case{"Multi2", 4}, Case{"Multi5pc", 2},
                                           Case{"Multi10pc", 5}, Case{"Single1000", 2}));

TEST(PackedSamplesT, PackUnpackRoundTrip) {
  PackedSamples block;
  block.add(7, 1.0, 0.5, 2.25, std::vector<Feature>{{0, 1.5}, {3, -2.0}});
  block.add(19, -1.0, 0.0, 0.0, std::vector<Feature>{});
  block.add(23, -1.0, 8.0, 1.0, std::vector<Feature>{{1, 1.0}});

  const auto bytes = block.pack();
  EXPECT_EQ(bytes.size(), block.packed_bytes());
  const PackedSamples loaded = PackedSamples::unpack(bytes);

  ASSERT_EQ(loaded.size(), 3u);
  EXPECT_EQ(loaded.global_index(0), 7);
  EXPECT_EQ(loaded.global_index(2), 23);
  EXPECT_DOUBLE_EQ(loaded.y(0), 1.0);
  EXPECT_DOUBLE_EQ(loaded.alpha(2), 8.0);
  EXPECT_DOUBLE_EQ(loaded.sq_norm(0), 2.25);
  ASSERT_EQ(loaded.row(0).size(), 2u);
  EXPECT_EQ(loaded.row(0)[1].index, 3);
  EXPECT_TRUE(loaded.row(1).empty());
  ASSERT_EQ(loaded.row(2).size(), 1u);
  EXPECT_DOUBLE_EQ(loaded.row(2)[0].value, 1.0);
}

TEST(PackedSamplesT, EmptyBlockRoundTrip) {
  const PackedSamples block;
  const PackedSamples loaded = PackedSamples::unpack(block.pack());
  EXPECT_TRUE(loaded.empty());
}

TEST(PackedSamplesT, UnpackRejectsTruncation) {
  PackedSamples block;
  block.add(1, 1.0, 0.1, 1.0, std::vector<Feature>{{0, 1.0}});
  auto bytes = block.pack();
  bytes.resize(bytes.size() - 4);
  EXPECT_THROW((void)PackedSamples::unpack(bytes), std::runtime_error);
}

TEST(PackedSamplesT, UnpackRejectsTrailingBytes) {
  PackedSamples block;
  block.add(1, 1.0, 0.1, 1.0, std::vector<Feature>{{0, 1.0}});
  auto bytes = block.pack();
  bytes.resize(bytes.size() + 8);
  EXPECT_THROW((void)PackedSamples::unpack(bytes), std::runtime_error);
}

TEST(Reconstruction, RingVolumeScalesWithAlphaSupport) {
  // Reconstruction traffic must be proportional to the alpha>0 samples, far
  // below moving the whole dataset p times.
  const Dataset train = svmdata::synthetic::gaussian_blobs(
      {.n = 300, .d = 6, .separation = 2.5, .label_noise = 0.02, .seed = 62});
  const SolverParams params = solver_params();

  TrainOptions no_shrink;
  no_shrink.num_ranks = 4;
  TrainOptions shrink;
  shrink.num_ranks = 4;
  shrink.heuristic = Heuristic::parse("Multi5pc");

  const auto base = svmcore::train(train, params, no_shrink);
  const auto shrunk = svmcore::train(train, params, shrink);
  EXPECT_GT(shrunk.reconstructions, 0u);
  // The shrinking run sends the ring blocks on top of per-iteration traffic,
  // but executes far fewer gamma updates; its total traffic stays within a
  // small multiple of the Original's.
  EXPECT_LT(shrunk.traffic.bytes_sent, 4 * base.traffic.bytes_sent + (1 << 20));
}

}  // namespace
