#include <gtest/gtest.h>

#include <vector>

#include "data/sparse.hpp"

namespace {

using svmdata::CsrMatrix;
using svmdata::Dataset;
using svmdata::Feature;

CsrMatrix small_matrix() {
  CsrMatrix m;
  m.add_row(std::vector<Feature>{{0, 1.0}, {2, 2.0}});
  m.add_row(std::vector<Feature>{{1, 3.0}});
  m.add_row(std::vector<Feature>{});  // empty row
  m.add_row(std::vector<Feature>{{0, -1.0}, {1, 1.0}, {3, 0.5}});
  return m;
}

TEST(Csr, ShapeAndNnz) {
  const CsrMatrix m = small_matrix();
  EXPECT_EQ(m.rows(), 4u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m.nonzeros(), 6u);
}

TEST(Csr, RowAccess) {
  const CsrMatrix m = small_matrix();
  const auto r0 = m.row(0);
  ASSERT_EQ(r0.size(), 2u);
  EXPECT_EQ(r0[0].index, 0);
  EXPECT_DOUBLE_EQ(r0[1].value, 2.0);
  EXPECT_TRUE(m.row(2).empty());
}

TEST(Csr, RejectsNonIncreasingIndices) {
  CsrMatrix m;
  EXPECT_THROW(m.add_row(std::vector<Feature>{{2, 1.0}, {1, 1.0}}), std::invalid_argument);
  EXPECT_THROW(m.add_row(std::vector<Feature>{{1, 1.0}, {1, 2.0}}), std::invalid_argument);
  EXPECT_THROW(m.add_row(std::vector<Feature>{{-1, 1.0}}), std::invalid_argument);
}

TEST(Csr, DotProductMergeJoin) {
  const CsrMatrix m = small_matrix();
  // row0 = (1,0,2,0), row3 = (-1,1,0,0.5): dot = -1.
  EXPECT_DOUBLE_EQ(CsrMatrix::dot(m.row(0), m.row(3)), -1.0);
  // Disjoint supports.
  EXPECT_DOUBLE_EQ(CsrMatrix::dot(m.row(0), m.row(1)), 0.0);
  // With the empty row.
  EXPECT_DOUBLE_EQ(CsrMatrix::dot(m.row(0), m.row(2)), 0.0);
  // Self dot.
  EXPECT_DOUBLE_EQ(CsrMatrix::dot(m.row(0), m.row(0)), 5.0);
}

TEST(Csr, SquaredNormAndDistance) {
  const CsrMatrix m = small_matrix();
  EXPECT_DOUBLE_EQ(CsrMatrix::squared_norm(m.row(0)), 5.0);
  EXPECT_DOUBLE_EQ(CsrMatrix::squared_norm(m.row(2)), 0.0);
  const double sq0 = CsrMatrix::squared_norm(m.row(0));
  const double sq3 = CsrMatrix::squared_norm(m.row(3));
  // ||a-b||^2 = 5 + 2.25 - 2*(-1) = 9.25
  EXPECT_DOUBLE_EQ(CsrMatrix::squared_distance(m.row(0), m.row(3), sq0, sq3), 9.25);
  // Identical rows give exactly zero (clamped).
  EXPECT_DOUBLE_EQ(CsrMatrix::squared_distance(m.row(0), m.row(0), sq0, sq0), 0.0);
}

TEST(Csr, RowSquaredNorms) {
  const CsrMatrix m = small_matrix();
  const auto norms = m.row_squared_norms();
  ASSERT_EQ(norms.size(), 4u);
  EXPECT_DOUBLE_EQ(norms[0], 5.0);
  EXPECT_DOUBLE_EQ(norms[1], 9.0);
  EXPECT_DOUBLE_EQ(norms[2], 0.0);
  EXPECT_DOUBLE_EQ(norms[3], 2.25);
}

TEST(Csr, Density) {
  const CsrMatrix m = small_matrix();
  EXPECT_DOUBLE_EQ(m.density(), 6.0 / 16.0);
  EXPECT_DOUBLE_EQ(CsrMatrix{}.density(), 0.0);
}

TEST(Csr, PayloadBytes) {
  const CsrMatrix m = small_matrix();
  EXPECT_EQ(m.payload_bytes(), 6u * sizeof(Feature));
}

TEST(DatasetT, ValidateAcceptsGoodLabels) {
  Dataset d;
  d.X.add_row(std::vector<Feature>{{0, 1.0}});
  d.X.add_row(std::vector<Feature>{{0, -1.0}});
  d.y = {1.0, -1.0};
  EXPECT_NO_THROW(d.validate());
}

TEST(DatasetT, ValidateRejectsBadLabel) {
  Dataset d;
  d.X.add_row(std::vector<Feature>{{0, 1.0}});
  d.y = {0.5};
  EXPECT_THROW(d.validate(), std::invalid_argument);
}

TEST(DatasetT, ValidateRejectsCountMismatch) {
  Dataset d;
  d.X.add_row(std::vector<Feature>{{0, 1.0}});
  d.y = {1.0, -1.0};
  EXPECT_THROW(d.validate(), std::invalid_argument);
}

TEST(DatasetT, SubsetPreservesRowsAndLabels) {
  Dataset d;
  d.X = small_matrix();
  d.y = {1.0, -1.0, 1.0, -1.0};
  const std::vector<std::size_t> pick{3, 0};
  const Dataset s = d.subset(pick);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s.y[0], -1.0);
  EXPECT_DOUBLE_EQ(s.y[1], 1.0);
  ASSERT_EQ(s.X.row(0).size(), 3u);
  EXPECT_EQ(s.X.row(0)[2].index, 3);
  EXPECT_EQ(s.X.row(1)[1].index, 2);
}

}  // namespace
