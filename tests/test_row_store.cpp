// RowStore / flavored kernel data path:
//  - flavor and backend name round-trips, with clear rejection of unknowns,
//  - f64 panels reproduce the scalar dense dot BITWISE,
//  - the AVX2 kernels match the portable 8-wide fallback bitwise for every
//    flavor (lane-per-row layout: same arithmetic, same order),
//  - the software binary16 codec is exact on representables and correctly
//    rounded elsewhere,
//  - f16/i8 quantization error is bounded,
//  - the flavored KernelRowCache charges encoded bytes and decodes
//    deterministically,
//  - training solvers refuse reduced-precision flavors,
//  - flavored prediction passes its accuracy gates end to end.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <random>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/sequential_smo.hpp"
#include "core/trainer.hpp"
#include "data/zoo.hpp"
#include "kernel/kernel_cache.hpp"
#include "kernel/kernel_engine.hpp"
#include "kernel/row_store.hpp"
#include "kernel/simd.hpp"

namespace {

using svmdata::Dataset;
using svmkernel::EngineBackend;
using svmkernel::KernelRowCache;
using svmkernel::RowFlavor;
using svmkernel::RowStore;

constexpr RowFlavor kAllFlavors[] = {RowFlavor::f64, RowFlavor::f32, RowFlavor::f16,
                                     RowFlavor::i8};
constexpr EngineBackend kAllBackends[] = {EngineBackend::reference,
                                          EngineBackend::dense_scatter, EngineBackend::cached,
                                          EngineBackend::simd};

// Restores the runtime SIMD dispatch on scope exit, whatever the test did.
struct DispatchGuard {
  ~DispatchGuard() { svmkernel::simd::set_force_portable(false); }
};

svmdata::CsrMatrix random_matrix(std::size_t n, std::size_t d, double density,
                                 std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> value(-2.0, 2.0);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  svmdata::CsrMatrix X;
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<svmdata::Feature> row;
    for (std::size_t j = 0; j < d; ++j)
      if (coin(rng) < density) row.push_back({static_cast<std::int32_t>(j), value(rng)});
    if (row.empty()) row.push_back({0, value(rng)});  // keep every row non-empty
    X.add_row(row);
  }
  return X;
}

std::vector<double> densify(const svmdata::CsrMatrix& X, std::size_t row, std::size_t d) {
  std::vector<double> dense(d, 0.0);
  for (const auto& f : X.row(row)) dense[static_cast<std::size_t>(f.index)] = f.value;
  return dense;
}

// The scalar reference for one lane of a panel sweep: a single sequential
// accumulation over ascending columns, zeros included — exactly what each
// SIMD lane computes.
double lane_dot(const std::vector<double>& q, const std::vector<double>& row) {
  double acc = 0.0;
  for (std::size_t j = 0; j < q.size(); ++j) acc += q[j] * row[j];
  return acc;
}

std::vector<double> store_dots(const RowStore& store) {
  std::vector<double> out(store.panels() * RowStore::kPanel);
  for (std::size_t p = 0; p < store.panels(); ++p)
    store.panel_dots(p, out.data() + p * RowStore::kPanel);
  out.resize(store.rows());
  return out;
}

// --- satellite: name round-trips -------------------------------------------

TEST(FlavorNames, RoundTripAllFlavors) {
  for (const RowFlavor f : kAllFlavors)
    EXPECT_EQ(svmkernel::row_flavor_from_string(svmkernel::to_string(f)), f)
        << svmkernel::to_string(f);
}

TEST(FlavorNames, AcceptsAliases) {
  EXPECT_EQ(svmkernel::row_flavor_from_string("double"), RowFlavor::f64);
  EXPECT_EQ(svmkernel::row_flavor_from_string("float"), RowFlavor::f32);
  EXPECT_EQ(svmkernel::row_flavor_from_string("half"), RowFlavor::f16);
  EXPECT_EQ(svmkernel::row_flavor_from_string("int8"), RowFlavor::i8);
}

TEST(FlavorNames, RejectsUnknownWithClearError) {
  try {
    (void)svmkernel::row_flavor_from_string("bf16");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("bf16"), std::string::npos) << e.what();
    EXPECT_NE(std::string(e.what()).find("f64|f32|f16|i8"), std::string::npos) << e.what();
  }
}

TEST(FlavorNames, ElementBytes) {
  EXPECT_EQ(svmkernel::flavor_element_bytes(RowFlavor::f64), 8u);
  EXPECT_EQ(svmkernel::flavor_element_bytes(RowFlavor::f32), 4u);
  EXPECT_EQ(svmkernel::flavor_element_bytes(RowFlavor::f16), 2u);
  EXPECT_EQ(svmkernel::flavor_element_bytes(RowFlavor::i8), 1u);
}

TEST(BackendNames, RoundTripAllBackends) {
  for (const EngineBackend b : kAllBackends)
    EXPECT_EQ(svmkernel::engine_backend_from_string(svmkernel::to_string(b)), b)
        << svmkernel::to_string(b);
}

TEST(BackendNames, RejectsUnknownWithClearError) {
  try {
    (void)svmkernel::engine_backend_from_string("gpu");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("gpu"), std::string::npos) << e.what();
  }
}

// --- f64 bit-exactness ------------------------------------------------------

TEST(RowStoreF64, PanelDotsBitwiseEqualScalarDense) {
  const std::size_t n = 37, d = 53;  // deliberately not multiples of 8
  const auto X = random_matrix(n, d, 0.6, 101);
  RowStore store(X, 0, n, RowFlavor::f64);
  ASSERT_EQ(store.rows(), n);
  ASSERT_EQ(store.panels(), (n + 7) / 8);

  const std::vector<double> q = densify(X, 3, d);
  RowStore& mut = store;
  mut.prepare_query(q);
  const std::vector<double> dots = store_dots(store);
  for (std::size_t r = 0; r < n; ++r)
    EXPECT_EQ(dots[r], lane_dot(q, densify(X, r, d))) << "row " << r;
}

TEST(RowStoreF64, SqNormsMatchCsr) {
  const auto X = random_matrix(21, 17, 0.5, 7);
  RowStore store(X, 0, 21, RowFlavor::f64);
  const auto csr_norms = X.row_squared_norms();
  for (std::size_t r = 0; r < 21; ++r) EXPECT_EQ(store.sq_norm(r), csr_norms[r]);
}

// --- AVX2 vs portable -------------------------------------------------------

TEST(SimdDispatch, Avx2MatchesPortableBitwiseAllFlavors) {
  if (!svmkernel::simd::avx2_available()) GTEST_SKIP() << "no AVX2 on this host";
  DispatchGuard guard;

  const std::size_t n = 29, d = 41;
  const auto X = random_matrix(n, d, 0.7, 23);
  const std::vector<double> qa = densify(X, 1, d);
  const std::vector<double> qb = densify(X, 11, d);

  for (const RowFlavor flavor : kAllFlavors) {
    svmkernel::simd::set_force_portable(false);
    RowStore vec_store(X, 0, n, flavor);
    EXPECT_STREQ(vec_store.ops_name(), "avx2");
    vec_store.prepare_query(qa, qb);

    svmkernel::simd::set_force_portable(true);
    RowStore por_store(X, 0, n, flavor);
    EXPECT_STREQ(por_store.ops_name(), "portable8");
    por_store.prepare_query(qa, qb);

    for (std::size_t p = 0; p < vec_store.panels(); ++p) {
      double va[RowStore::kPanel], vb[RowStore::kPanel];
      double pa[RowStore::kPanel], pb[RowStore::kPanel];
      vec_store.panel_dots(p, va, vb);
      por_store.panel_dots(p, pa, pb);
      for (std::size_t l = 0; l < RowStore::kPanel; ++l) {
        EXPECT_EQ(va[l], pa[l]) << svmkernel::to_string(flavor) << " panel " << p << " lane "
                                << l;
        EXPECT_EQ(vb[l], pb[l]) << svmkernel::to_string(flavor) << " panel " << p << " lane "
                                << l;
      }
    }
  }
}

// --- binary16 codec ---------------------------------------------------------

TEST(HalfCodec, ExactOnRepresentables) {
  using svmkernel::simd::float_to_half;
  using svmkernel::simd::half_to_float;
  for (const float v : {0.0f, 1.0f, -1.0f, 0.5f, 2.0f, -2.0f, 0.25f, 1024.0f, 65504.0f,
                        -65504.0f, 6.103515625e-05f /* min normal */}) {
    EXPECT_EQ(half_to_float(float_to_half(v)), v) << v;
  }
}

TEST(HalfCodec, RoundsToNearestWithinHalfUlp) {
  using svmkernel::simd::float_to_half;
  using svmkernel::simd::half_to_float;
  std::mt19937 rng(5);
  std::uniform_real_distribution<float> value(-100.0f, 100.0f);
  for (int i = 0; i < 10000; ++i) {
    const float v = value(rng);
    const float back = half_to_float(float_to_half(v));
    // Normal binary16 has a 10-bit mantissa: rel error <= 2^-11.
    EXPECT_LE(std::abs(back - v), std::abs(v) * (1.0f / 2048.0f) + 1e-07f) << v;
  }
}

TEST(HalfCodec, SpecialValues) {
  using svmkernel::simd::float_to_half;
  using svmkernel::simd::half_to_float;
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(half_to_float(float_to_half(inf)), inf);
  EXPECT_EQ(half_to_float(float_to_half(-inf)), -inf);
  EXPECT_TRUE(std::isnan(half_to_float(float_to_half(std::nanf("")))));
  EXPECT_EQ(half_to_float(float_to_half(1.0e6f)), inf);    // overflow -> inf
  EXPECT_EQ(half_to_float(float_to_half(1.0e-12f)), 0.0f); // underflow -> 0
  // binary16 subnormals survive the trip.
  EXPECT_EQ(half_to_float(float_to_half(5.9604644775390625e-08f)),
            5.9604644775390625e-08f);
}

// --- quantization bounds ----------------------------------------------------

TEST(RowStoreQuantized, DotErrorBounded) {
  const std::size_t n = 40, d = 64;
  const auto X = random_matrix(n, d, 0.8, 77);
  RowStore exact(X, 0, n, RowFlavor::f64);
  const std::vector<double> q = densify(X, 5, d);
  exact.prepare_query(q);
  const std::vector<double> truth = store_dots(exact);

  double q_l1 = 0.0;
  for (const double v : q) q_l1 += std::abs(v);

  const struct {
    RowFlavor flavor;
    double rel_elem;  ///< per-element quantization + accumulation error bound
  } cases[] = {// f32/f16/i8 all ACCUMULATE in binary32, so the d-term float
               // summation error (~d * 2^-24 relative) rides on top of the
               // per-element quantization error; d = 64 here.
               {RowFlavor::f32, 64.0 / (1 << 22)},
               {RowFlavor::f16, 1.0 / 1024.0},
               {RowFlavor::i8, 2.0 / 127.0}};  // scale = max|v|/127, |v| <= 2
  for (const auto& c : cases) {
    RowStore store(X, 0, n, c.flavor);
    store.prepare_query(q);
    const std::vector<double> dots = store_dots(store);
    for (std::size_t r = 0; r < n; ++r) {
      // |err| <= sum_j |q_j| * max elementwise quantization error.
      const double bound = q_l1 * c.rel_elem * 2.0 + 1e-9;
      EXPECT_NEAR(dots[r], truth[r], bound)
          << svmkernel::to_string(c.flavor) << " row " << r;
    }
  }
}

TEST(RowStoreQuantized, I8ImplicitZerosDecodeToZero) {
  // A sparse row quantized symmetrically must keep its missing features at
  // exactly 0: a query supported only on the missing coordinates dots to 0.
  svmdata::CsrMatrix X;
  const std::vector<svmdata::Feature> row0 = {{0, 1.5}, {2, -0.75}};
  const std::vector<svmdata::Feature> row1 = {{1, 2.0}, {3, 0.5}, {4, 1.0}};
  X.add_row(row0);
  X.add_row(row1);
  RowStore store(X, 0, 2, RowFlavor::i8);
  const std::vector<double> q = {0.0, 0.0, 0.0, 0.0, 0.0};
  std::vector<double> probe(5, 0.0);
  probe[1] = 3.0;  // row 0 has no feature 1
  store.prepare_query(probe);
  double out[RowStore::kPanel];
  store.panel_dots(0, out);
  EXPECT_EQ(out[0], 0.0);
  (void)q;
}

TEST(RowStoreQuantized, BytesResidentScaleWithFlavor) {
  const auto X = random_matrix(32, 48, 0.5, 3);
  const std::size_t f64_bytes = RowStore(X, 0, 32, RowFlavor::f64).bytes_resident();
  const std::size_t f32_bytes = RowStore(X, 0, 32, RowFlavor::f32).bytes_resident();
  const std::size_t f16_bytes = RowStore(X, 0, 32, RowFlavor::f16).bytes_resident();
  const std::size_t i8_bytes = RowStore(X, 0, 32, RowFlavor::i8).bytes_resident();
  EXPECT_EQ(f64_bytes, 2 * f32_bytes);
  EXPECT_EQ(f32_bytes, 2 * f16_bytes);
  // i8 carries per-row scale/offset floats on top of the 1 B/elem payload.
  EXPECT_LT(i8_bytes, f16_bytes);
  EXPECT_GE(i8_bytes, f16_bytes / 2);
}

// --- flavored row cache -----------------------------------------------------

TEST(FlavoredCache, ChargesEncodedBytes) {
  const std::size_t len = 100;
  std::vector<float> row(len, 1.25f);
  for (const auto& [flavor, per_row] :
       {std::pair{RowFlavor::f32, len * 4}, std::pair{RowFlavor::f16, len * 2},
        std::pair{RowFlavor::i8, len * 1 + sizeof(float)}}) {
    KernelRowCache cache(1 << 20, flavor);
    ASSERT_TRUE(cache.lookup(0).empty());
    cache.insert(0, row);
    EXPECT_EQ(cache.bytes_used(), per_row) << svmkernel::to_string(flavor);
    EXPECT_EQ(cache.bytes_resident(), cache.bytes_used());
  }
}

TEST(FlavoredCache, CompactFlavorHoldsMoreRowsUnderSameBudget) {
  const std::size_t len = 64;
  const std::size_t budget = len * 4 * 4;  // exactly 4 f32 rows
  std::vector<float> row(len, 0.5f);
  KernelRowCache f32_cache(budget, RowFlavor::f32);
  KernelRowCache i8_cache(budget, RowFlavor::i8);
  for (std::size_t i = 0; i < 12; ++i) {
    ASSERT_TRUE(f32_cache.lookup(i).empty());
    f32_cache.insert(i, row);
    ASSERT_TRUE(i8_cache.lookup(i).empty());
    i8_cache.insert(i, row);
  }
  EXPECT_EQ(f32_cache.entries(), 4u);
  EXPECT_GT(i8_cache.entries(), 8u);  // ~4x density (len + 4 bytes per row)
  EXPECT_LE(f32_cache.bytes_used(), budget);
  EXPECT_LE(i8_cache.bytes_used(), budget);
}

TEST(FlavoredCache, DecodeIsDeterministicAcrossHits) {
  std::mt19937 rng(11);
  std::uniform_real_distribution<float> value(-3.0f, 3.0f);
  std::vector<float> row(33);
  for (float& v : row) v = value(rng);

  for (const RowFlavor flavor : {RowFlavor::f16, RowFlavor::i8}) {
    KernelRowCache cache(1 << 20, flavor);
    ASSERT_TRUE(cache.lookup(7).empty());
    cache.insert(7, row);
    const auto first = cache.lookup(7);
    ASSERT_EQ(first.size(), row.size());
    std::vector<float> snapshot(first.begin(), first.end());
    const auto second = cache.lookup(7);
    for (std::size_t i = 0; i < row.size(); ++i)
      EXPECT_EQ(second[i], snapshot[i]) << svmkernel::to_string(flavor) << " elem " << i;
    // And the decode is close to the original.
    const float amax = 3.0f;
    const float tol = flavor == RowFlavor::f16 ? amax / 1024.0f : amax / 127.0f;
    for (std::size_t i = 0; i < row.size(); ++i)
      EXPECT_NEAR(second[i], row[i], tol) << svmkernel::to_string(flavor) << " elem " << i;
  }
}

TEST(FlavoredCache, F32FlavorIsBitExact) {
  std::vector<float> row = {1.0f, -2.5f, 3.25f, 0.0f, -0.125f};
  KernelRowCache cache(1 << 16, RowFlavor::f32);
  ASSERT_TRUE(cache.lookup(0).empty());
  cache.insert(0, row);
  const auto got = cache.lookup(0);
  ASSERT_EQ(got.size(), row.size());
  for (std::size_t i = 0; i < row.size(); ++i) EXPECT_EQ(got[i], row[i]);
}

// --- flavor policy enforcement ---------------------------------------------

TEST(FlavorPolicy, TrainingRejectsReducedPrecision) {
  const auto& entry = svmdata::zoo_entry("mushrooms");
  const Dataset train = svmdata::make_train(entry, 0.2);
  svmcore::SolverParams params;
  params.C = entry.C;
  params.kernel = svmkernel::KernelParams::rbf_with_sigma_sq(entry.sigma_sq);
  params.engine_flavor = RowFlavor::f32;
  EXPECT_THROW((void)svmcore::solve_sequential(train, params), std::invalid_argument);
}

TEST(FlavorPolicy, ScalarBackendsRejectFlavoredRows) {
  const auto X = random_matrix(10, 8, 0.9, 1);
  const svmkernel::Kernel kernel{svmkernel::KernelParams{}};
  EXPECT_THROW(svmkernel::KernelEngine(kernel, X, EngineBackend::reference, 0, 10, 0,
                                       RowFlavor::f16),
               std::invalid_argument);
  EXPECT_THROW(svmkernel::KernelEngine(kernel, X, EngineBackend::dense_scatter, 0, 10, 0,
                                       RowFlavor::i8),
               std::invalid_argument);
  // cached + flavor needs an actual budget to encode into.
  EXPECT_THROW(svmkernel::KernelEngine(kernel, X, EngineBackend::cached, 0, 10, 0,
                                       RowFlavor::f16),
               std::invalid_argument);
  // simd accepts every flavor; f64 there stays bit-exact.
  EXPECT_NO_THROW(
      svmkernel::KernelEngine(kernel, X, EngineBackend::simd, 0, 10, 0, RowFlavor::i8));
}

// --- end-to-end accuracy gates ---------------------------------------------

TEST(FlavoredPredict, AccuracyGates) {
  const auto& entry = svmdata::zoo_entry("usps");
  const Dataset train = svmdata::make_train(entry, 0.25);
  const Dataset test = svmdata::make_test(entry, 0.25);
  ASSERT_GT(test.size(), 0u);

  svmcore::SolverParams params;
  params.C = entry.C;
  params.eps = 1e-3;
  params.kernel = svmkernel::KernelParams::rbf_with_sigma_sq(entry.sigma_sq);
  svmcore::TrainOptions options;
  options.num_ranks = 2;
  const svmcore::TrainResult trained = svmcore::train(train, params, options);
  ASSERT_TRUE(trained.converged);
  const svmcore::SvmModel& model = trained.model;

  auto exact_engine = model.make_engine(EngineBackend::simd, RowFlavor::f64);
  std::vector<bool> exact_decisions(test.size());
  for (std::size_t i = 0; i < test.size(); ++i)
    exact_decisions[i] = model.decision_value(test.X.row(i), exact_engine) >= 0.0;

  const struct {
    RowFlavor flavor;
    double max_disagreement;  ///< fraction of flipped decisions vs f64
  } gates[] = {{RowFlavor::f32, 0.005}, {RowFlavor::f16, 0.01}, {RowFlavor::i8, 0.02}};
  for (const auto& gate : gates) {
    auto engine = model.make_engine(EngineBackend::simd, gate.flavor);
    std::size_t flips = 0;
    for (std::size_t i = 0; i < test.size(); ++i) {
      const bool decision = model.decision_value(test.X.row(i), engine) >= 0.0;
      if (decision != exact_decisions[i]) ++flips;
    }
    const double disagreement = static_cast<double>(flips) / static_cast<double>(test.size());
    EXPECT_LE(disagreement, gate.max_disagreement) << svmkernel::to_string(gate.flavor);
  }
}

TEST(FlavoredPredict, SimdF64MatchesDenseScatterBitwise) {
  const auto& entry = svmdata::zoo_entry("a9a");
  const Dataset train = svmdata::make_train(entry, 0.1);
  svmcore::SolverParams params;
  params.C = entry.C;
  params.kernel = svmkernel::KernelParams::rbf_with_sigma_sq(entry.sigma_sq);
  svmcore::TrainOptions options;
  options.num_ranks = 1;
  const svmcore::TrainResult trained = svmcore::train(train, params, options);
  ASSERT_TRUE(trained.converged);

  auto scalar = trained.model.make_engine(EngineBackend::dense_scatter);
  auto simd = trained.model.make_engine(EngineBackend::simd, RowFlavor::f64);
  for (std::size_t i = 0; i < train.size(); i += 7) {
    EXPECT_EQ(trained.model.decision_value(train.X.row(i), scalar),
              trained.model.decision_value(train.X.row(i), simd))
        << "sample " << i;
  }
}

}  // namespace
