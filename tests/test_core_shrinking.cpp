// Accuracy-preservation tests for the shrinking solvers (Algorithms 4/5):
// every Table II heuristic must reach the same optimum as the Original
// algorithm — same dual objective (within tolerance-induced slack), same
// test accuracy — while the permanent-shrink ablation is allowed to lose it.
#include <gtest/gtest.h>

#include "core/objective.hpp"
#include "core/sequential_smo.hpp"
#include "core/trainer.hpp"
#include "data/synthetic.hpp"

namespace {

using svmcore::Heuristic;
using svmcore::SolverParams;
using svmcore::TrainOptions;
using svmcore::TrainResult;
using svmdata::Dataset;
using svmkernel::KernelParams;

Dataset noisy_dataset() {
  // Label noise creates bound (alpha = C) support vectors, exercising the
  // I2/I3 shrink conditions, not just the easy I1/I4 ones.
  return svmdata::synthetic::gaussian_blobs(
      {.n = 220, .d = 6, .separation = 1.6, .label_noise = 0.08, .seed = 51});
}

Dataset eval_dataset() {
  // Same concept seed as noisy_dataset(), fresh sample stream, no noise.
  return svmdata::synthetic::gaussian_blobs(
      {.n = 300, .d = 6, .separation = 1.6, .label_noise = 0.0, .seed = 51, .draw = 1});
}

SolverParams solver_params() {
  SolverParams p;
  p.C = 8.0;
  p.eps = 1e-3;
  p.kernel = KernelParams::rbf_with_sigma_sq(4.0);
  return p;
}

class HeuristicP : public ::testing::TestWithParam<std::string> {};

TEST_P(HeuristicP, ReachesOriginalObjectiveAndAccuracy) {
  const Dataset train = noisy_dataset();
  const Dataset eval = eval_dataset();
  const SolverParams params = solver_params();

  TrainOptions original_options;
  original_options.num_ranks = 4;
  const TrainResult original = svmcore::train(train, params, original_options);

  TrainOptions options;
  options.num_ranks = 4;
  options.heuristic = Heuristic::parse(GetParam());
  const TrainResult shrunk = svmcore::train(train, params, options);

  ASSERT_TRUE(shrunk.converged);

  // Test accuracy parity (Table V's property).
  const double acc_original = original.model.accuracy(eval);
  const double acc_shrunk = shrunk.model.accuracy(eval);
  EXPECT_NEAR(acc_shrunk, acc_original, 0.02) << GetParam();

  // The solver's terminal bounds must satisfy the Eq. (5) optimality gap over
  // the FULL dataset (post-reconstruction), not just the shrunk subset.
  EXPECT_LE(shrunk.rank_stats[0].final_beta_up + 2 * params.eps,
            shrunk.rank_stats[0].final_beta_low + 4 * params.eps + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(AllTable2, HeuristicP,
                         ::testing::Values("Single2", "Single500", "Single1000", "Single5pc",
                                           "Single10pc", "Single50pc", "Multi2", "Multi500",
                                           "Multi1000", "Multi5pc", "Multi10pc", "Multi50pc"));

TEST(Shrinking, ShrinkingActuallyHappensForAggressiveHeuristics) {
  const Dataset train = noisy_dataset();
  TrainOptions options;
  options.num_ranks = 2;
  options.heuristic = Heuristic::parse("Multi2");
  const TrainResult r = svmcore::train(train, solver_params(), options);
  EXPECT_GT(r.samples_shrunk, 0u);
  EXPECT_GT(r.reconstructions, 0u);
}

TEST(Shrinking, ConservativeHeuristicMayNeverShrink) {
  // A threshold of 50% of N iterations can exceed the total iteration count,
  // making the run equivalent to Original (the paper's MNIST observation).
  const Dataset train = svmdata::synthetic::gaussian_blobs(
      {.n = 200, .d = 4, .separation = 3.0, .seed = 53});  // easy, few iters
  const SolverParams params = solver_params();

  TrainOptions original;
  original.num_ranks = 2;
  const TrainResult base = svmcore::train(train, params, original);

  TrainOptions worst;
  worst.num_ranks = 2;
  worst.heuristic = Heuristic::parse("Single50pc");
  const TrainResult r = svmcore::train(train, params, worst);

  if (base.iterations < train.size() / 2) {
    EXPECT_EQ(r.samples_shrunk, 0u);
    EXPECT_EQ(r.iterations, base.iterations);
    EXPECT_EQ(r.beta, base.beta);
  }
}

TEST(Shrinking, ShrinkingReducesWork) {
  // On a dataset with few support vectors, shrinking must reduce the total
  // kernel evaluations versus Original at equal rank count.
  const Dataset train = svmdata::synthetic::gaussian_blobs(
      {.n = 400, .d = 6, .separation = 2.0, .label_noise = 0.02, .seed = 54});
  const SolverParams params = solver_params();
  TrainOptions original;
  original.num_ranks = 2;
  TrainOptions best;
  best.num_ranks = 2;
  best.heuristic = Heuristic::best();
  const auto work_original = svmcore::train(train, params, original).total_kernel_evaluations;
  const auto work_best = svmcore::train(train, params, best).total_kernel_evaluations;
  EXPECT_LT(work_best, work_original);
}

TEST(Shrinking, SingleReconstructionRunsExactlyOnce) {
  const Dataset train = noisy_dataset();
  TrainOptions options;
  options.num_ranks = 2;
  options.heuristic = Heuristic::parse("Single5pc");
  const TrainResult r = svmcore::train(train, solver_params(), options);
  EXPECT_EQ(r.reconstructions, 1u);
}

TEST(Shrinking, MultiReconstructionMayRunRepeatedly) {
  const Dataset train = noisy_dataset();
  TrainOptions options;
  options.num_ranks = 2;
  options.heuristic = Heuristic::parse("Multi5pc");
  const TrainResult r = svmcore::train(train, solver_params(), options);
  EXPECT_GE(r.reconstructions, 1u);
}

TEST(Shrinking, PermanentShrinkSkipsReconstruction) {
  const Dataset train = noisy_dataset();
  TrainOptions options;
  options.num_ranks = 2;
  options.heuristic = Heuristic::parse("Multi2");
  options.permanent_shrink = true;
  const TrainResult r = svmcore::train(train, solver_params(), options);
  EXPECT_EQ(r.reconstructions, 0u);
}

TEST(Shrinking, FixedSubsequentThresholdAblationConverges) {
  const Dataset train = noisy_dataset();
  TrainOptions options;
  options.num_ranks = 2;
  options.heuristic = Heuristic::parse("Multi5pc");
  options.heuristic.fixed_subsequent_threshold = true;
  const TrainResult r = svmcore::train(train, solver_params(), options);
  EXPECT_TRUE(r.converged);
  // Separation 1.6 bounds the Bayes accuracy near Phi(0.8) ~ 0.79.
  const double acc = r.model.accuracy(eval_dataset());
  EXPECT_GT(acc, 0.68);
}

TEST(Shrinking, HeuristicResultsIdenticalAcrossRankCounts) {
  // The shrink schedule is driven by global counters, so the same heuristic
  // must produce the same iterations/shrink counts for any p.
  const Dataset train = noisy_dataset();
  const SolverParams params = solver_params();
  TrainOptions a;
  a.num_ranks = 1;
  a.heuristic = Heuristic::parse("Multi5pc");
  TrainOptions b = a;
  b.num_ranks = 4;
  const TrainResult ra = svmcore::train(train, params, a);
  const TrainResult rb = svmcore::train(train, params, b);
  EXPECT_EQ(ra.iterations, rb.iterations);
  EXPECT_EQ(ra.samples_shrunk, rb.samples_shrunk);
  EXPECT_NEAR(ra.beta, rb.beta, 1e-12);  // I0 average sums in different groupings
}

}  // namespace
