// Fault-injection substrate: deterministic FaultPlan/FaultInjector behavior,
// hang -> TimeoutError conversion (blocking receives and collective
// rendezvous), WorldAborted propagation through deferred receives, mailbox
// wildcard matching, and validation of the allgatherv wire format.
#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "mpisim/comm.hpp"
#include "mpisim/fault.hpp"
#include "mpisim/mailbox.hpp"
#include "mpisim/spmd.hpp"

namespace {

using svmmpi::Comm;
using svmmpi::FaultAction;
using svmmpi::FaultInjector;
using svmmpi::FaultPlan;
using svmmpi::FaultSite;
using svmmpi::kAnySource;
using svmmpi::kAnyTag;
using svmmpi::Mailbox;
using svmmpi::Message;
using svmmpi::NetModel;
using svmmpi::RankFailed;
using svmmpi::TimeoutError;
using svmmpi::WorldAborted;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

NetModel with_timeout(double timeout_s) {
  NetModel model;
  model.timeout_s = timeout_s;
  return model;
}

// --- FaultInjector unit behavior -------------------------------------------

TEST(FaultInjector, CrashFiresOnceAtTheScheduledOp) {
  FaultInjector injector(FaultPlan{}.crash(1, 3));
  EXPECT_EQ(injector.pending(), 1u);

  // Other ranks are unaffected.
  for (int i = 0; i < 10; ++i) (void)injector.on_op(0, FaultSite::send);

  (void)injector.on_op(1, FaultSite::send);  // op 1
  (void)injector.on_op(1, FaultSite::recv);  // op 2
  try {
    (void)injector.on_op(1, FaultSite::collective);  // op 3 -> boom
    FAIL() << "expected RankFailed";
  } catch (const RankFailed& failure) {
    EXPECT_EQ(failure.rank, 1);
    EXPECT_EQ(failure.op, 3u);
  }
  EXPECT_EQ(injector.fired(), 1u);
  EXPECT_EQ(injector.pending(), 0u);

  // Consumed: the same rank keeps going on a relaunch.
  (void)injector.on_op(1, FaultSite::send);
  EXPECT_EQ(injector.ops(1), 4u);
}

TEST(FaultInjector, CrashAtOrAfterSemanticsForSiteRestrictedEvents) {
  // Crash restricted to collectives, scheduled at op 2: ops 2..4 are sends,
  // so it must fire at the first collective afterwards (op 5).
  FaultInjector injector(FaultPlan{}.crash(0, 2, FaultSite::collective));
  (void)injector.on_op(0, FaultSite::send);
  (void)injector.on_op(0, FaultSite::send);
  (void)injector.on_op(0, FaultSite::send);
  (void)injector.on_op(0, FaultSite::send);
  EXPECT_THROW((void)injector.on_op(0, FaultSite::collective), RankFailed);
}

TEST(FaultInjector, DropAppliesToSendsOnly) {
  FaultInjector injector(FaultPlan{}.drop(0, 1));
  const FaultAction recv_action = injector.on_op(0, FaultSite::recv);
  EXPECT_FALSE(recv_action.drop);  // op 1 is a recv: drop waits for a send
  const FaultAction send_action = injector.on_op(0, FaultSite::send);
  EXPECT_TRUE(send_action.drop);
  EXPECT_FALSE(injector.on_op(0, FaultSite::send).drop);  // fires once
}

TEST(FaultInjector, DelayReportsItsDuration) {
  FaultInjector injector(FaultPlan{}.delay(2, 1, 0.25));
  const FaultAction action = injector.on_op(2, FaultSite::recv);
  EXPECT_DOUBLE_EQ(action.delay_s, 0.25);
  EXPECT_EQ(injector.fired(), 1u);
}

TEST(FaultPlan, ChaosIsDeterministicPerSeed) {
  const FaultPlan a = FaultPlan::chaos(7, 4, 1000, 3, 3, true);
  const FaultPlan b = FaultPlan::chaos(7, 4, 1000, 3, 3, true);
  ASSERT_EQ(a.events().size(), b.events().size());
  for (std::size_t i = 0; i < a.events().size(); ++i) {
    EXPECT_EQ(a.events()[i].kind, b.events()[i].kind);
    EXPECT_EQ(a.events()[i].rank, b.events()[i].rank);
    EXPECT_EQ(a.events()[i].op, b.events()[i].op);
    EXPECT_DOUBLE_EQ(a.events()[i].delay_s, b.events()[i].delay_s);
  }
  const FaultPlan c = FaultPlan::chaos(8, 4, 1000, 3, 3, true);
  bool identical = c.events().size() == a.events().size();
  if (identical) {
    for (std::size_t i = 0; i < a.events().size(); ++i)
      identical = identical && a.events()[i].rank == c.events()[i].rank &&
                  a.events()[i].op == c.events()[i].op;
  }
  EXPECT_FALSE(identical) << "different seeds should give different schedules";
}

// --- end-to-end fault behavior through run_spmd ----------------------------

TEST(FaultSpmd, InjectedCrashSurfacesAsRankFailed) {
  FaultInjector injector(FaultPlan{}.crash(1, 2));
  EXPECT_THROW(svmmpi::run_spmd(
                   2,
                   [](Comm& comm) {
                     for (int i = 0; i < 8; ++i)
                       (void)comm.allreduce(comm.rank(), svmmpi::ReduceOp::sum);
                   },
                   {}, nullptr, &injector),
               RankFailed);
  EXPECT_EQ(injector.fired(), 1u);
}

TEST(FaultSpmd, DroppedSendSuppressesExactlyOneMessage) {
  FaultInjector injector(FaultPlan{}.drop(0, 1));
  std::vector<int> received;
  svmmpi::run_spmd(
      2,
      [&](Comm& comm) {
        if (comm.rank() == 0) {
          comm.send_value(11, 1);  // op 1: dropped
          comm.send_value(22, 1);  // op 2: delivered
        } else {
          received.push_back(comm.recv_value<int>(0));
        }
      },
      {}, nullptr, &injector);
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0], 22);  // the first message silently vanished
}

TEST(FaultSpmd, DelayedOpStillDeliversCorrectly) {
  FaultInjector injector(FaultPlan{}.delay(0, 1, 0.05, FaultSite::send));
  const auto start = std::chrono::steady_clock::now();
  int received = -1;
  svmmpi::run_spmd(
      2,
      [&](Comm& comm) {
        if (comm.rank() == 0)
          comm.send_value(99, 1);
        else
          received = comm.recv_value<int>(0);
      },
      {}, nullptr, &injector);
  EXPECT_EQ(received, 99);
  EXPECT_GE(seconds_since(start), 0.05);
}

// --- hang -> TimeoutError conversion ---------------------------------------

TEST(Timeout, DeadlockedExchangeResolvesWithinTheDeadline) {
  // Both ranks receive before sending: a guaranteed deadlock under MPI
  // semantics. The pop deadline converts it into a TimeoutError instead of
  // hanging the test suite forever.
  const auto start = std::chrono::steady_clock::now();
  try {
    svmmpi::run_spmd(
        2,
        [](Comm& comm) {
          const int peer = 1 - comm.rank();
          const int got = comm.recv_value<int>(peer, /*tag=*/5);  // deadlock
          comm.send_value(got, peer, 5);
        },
        with_timeout(0.2));
    FAIL() << "expected TimeoutError";
  } catch (const TimeoutError& timeout) {
    EXPECT_GE(timeout.rank, 0);
    EXPECT_LE(timeout.rank, 1);
    EXPECT_EQ(timeout.source, 1 - timeout.rank);
    EXPECT_EQ(timeout.tag, 5);
    EXPECT_DOUBLE_EQ(timeout.deadline_s, 0.2);
  }
  EXPECT_LT(seconds_since(start), 5.0) << "timeout must bound wall-clock time";
}

TEST(Timeout, AbandonedCollectiveTimesOutInsteadOfHanging) {
  const auto start = std::chrono::steady_clock::now();
  EXPECT_THROW(svmmpi::run_spmd(
                   2,
                   [](Comm& comm) {
                     if (comm.rank() == 0) comm.barrier();  // rank 1 never joins
                   },
                   with_timeout(0.2)),
               TimeoutError);
  EXPECT_LT(seconds_since(start), 5.0);
}

TEST(Timeout, ZeroTimeoutMeansWaitForever) {
  // Sanity check that the default still blocks: a matched exchange completes
  // and no spurious timeout fires.
  std::vector<int> got(2, -1);
  svmmpi::run_spmd(2, [&](Comm& comm) {
    const int peer = 1 - comm.rank();
    if (comm.rank() == 0) {
      comm.send_value(7, peer);
      got[0] = comm.recv_value<int>(peer);
    } else {
      got[1] = comm.recv_value<int>(peer);
      comm.send_value(8, peer);
    }
  });
  EXPECT_EQ(got[0], 8);
  EXPECT_EQ(got[1], 7);
}

// --- WorldAborted propagation ----------------------------------------------

TEST(Abort, SiblingFailurePropagatesThroughIrecvWaitAll) {
  // Rank 0 parks in wait_all on receives that will never be satisfied; rank 1
  // throws. The launcher must abort the world (waking rank 0 with
  // WorldAborted) and rethrow rank 1's original error to the caller.
  try {
    svmmpi::run_spmd(2, [](Comm& comm) {
      if (comm.rank() == 0) {
        std::vector<int> a, b;
        svmmpi::Request requests[2] = {comm.irecv(a, 1, 1), comm.irecv(b, 1, 2)};
        Comm::wait_all(requests);
      } else {
        throw std::runtime_error("rank 1 exploded");
      }
    });
    FAIL() << "expected the original rank error";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "rank 1 exploded");
  }
}

// --- mailbox wildcard matching ---------------------------------------------

TEST(MailboxTryPop, WildcardsMatchAnySourceAndTag) {
  Mailbox box(/*owner_rank=*/0);
  box.push(Message{.context = 0, .source = 2, .tag = 7, .payload = {}});
  box.push(Message{.context = 0, .source = 3, .tag = 9, .payload = {}});
  box.push(Message{.context = 1, .source = 2, .tag = 7, .payload = {}});

  Message out;
  // Exact mismatch: nothing with (source=5).
  EXPECT_FALSE(box.try_pop(0, 5, kAnyTag, out));
  // Context always matches exactly, even with both wildcards.
  EXPECT_FALSE(box.try_pop(2, kAnySource, kAnyTag, out));

  // Wildcard source, exact tag.
  ASSERT_TRUE(box.try_pop(0, kAnySource, 9, out));
  EXPECT_EQ(out.source, 3);
  // Exact source, wildcard tag.
  ASSERT_TRUE(box.try_pop(0, 2, kAnyTag, out));
  EXPECT_EQ(out.tag, 7);
  // Both wildcards: the remaining context-1 message only matches context 1.
  EXPECT_FALSE(box.try_pop(0, kAnySource, kAnyTag, out));
  ASSERT_TRUE(box.try_pop(1, kAnySource, kAnyTag, out));
  EXPECT_EQ(box.pending(), 0u);
}

// --- allgatherv wire-format validation -------------------------------------

std::vector<std::byte> payload_with_count_and_sizes(std::uint64_t count,
                                                    const std::vector<std::uint64_t>& sizes,
                                                    std::size_t trailing_bytes) {
  std::vector<std::byte> bytes(sizeof(std::uint64_t) * (1 + sizes.size()) + trailing_bytes);
  std::memcpy(bytes.data(), &count, sizeof(count));
  if (!sizes.empty())
    std::memcpy(bytes.data() + sizeof(count), sizes.data(),
                sizes.size() * sizeof(std::uint64_t));
  return bytes;
}

TEST(SplitConcatenated, RejectsMalformedPayloads) {
  using svmmpi::detail::split_concatenated;
  // Too short for even the count header.
  EXPECT_THROW((void)split_concatenated<int>(std::vector<std::byte>(3)), std::runtime_error);
  // Count larger than the buffer can possibly hold.
  EXPECT_THROW((void)split_concatenated<int>(
                   payload_with_count_and_sizes(1'000'000, {}, 0)),
               std::runtime_error);
  // Declared part size overruns the buffer.
  EXPECT_THROW((void)split_concatenated<int>(payload_with_count_and_sizes(1, {64}, 8)),
               std::runtime_error);
  // Part size not a multiple of the element size.
  EXPECT_THROW((void)split_concatenated<int>(payload_with_count_and_sizes(1, {6}, 6)),
               std::runtime_error);
}

TEST(SplitConcatenated, RoundTripsThroughConcat) {
  using svmmpi::detail::concat_with_sizes;
  using svmmpi::detail::split_concatenated;
  using svmmpi::detail::to_bytes;
  const std::vector<std::vector<int>> parts{{1, 2, 3}, {}, {42}};
  std::vector<std::vector<std::byte>> byte_parts;
  for (const auto& p : parts) byte_parts.push_back(to_bytes(std::span<const int>(p)));
  const auto packed = concat_with_sizes(byte_parts);
  EXPECT_EQ(split_concatenated<int>(packed), parts);
}

}  // namespace
