#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/cli.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using svmutil::CliFlags;
using svmutil::Rng;

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIndexCoversRangeWithoutBias) {
  Rng rng(9);
  std::vector<int> counts(10, 0);
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.uniform_index(10)];
  for (const int c : counts) {
    EXPECT_GT(c, kDraws / 10 - 1000);
    EXPECT_LT(c, kDraws / 10 + 1000);
  }
}

TEST(Rng, UniformIndexZeroIsZero) {
  Rng rng(10);
  EXPECT_EQ(rng.uniform_index(0), 0u);
  EXPECT_EQ(rng.uniform_index(1), 0u);
}

TEST(Rng, NormalHasExpectedMoments) {
  Rng rng(11);
  double sum = 0.0;
  double sq = 0.0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / kDraws, 0.0, 0.02);
  EXPECT_NEAR(sq / kDraws, 1.0, 0.03);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(12);
  int heads = 0;
  for (int i = 0; i < 100000; ++i)
    if (rng.bernoulli(0.3)) ++heads;
  EXPECT_NEAR(heads / 100000.0, 0.3, 0.01);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(13);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  rng.shuffle(v);
  std::set<int> unique(v.begin(), v.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(14);
  const auto sample = rng.sample_without_replacement(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (const std::size_t s : sample) EXPECT_LT(s, 100u);
}

TEST(Rng, SampleClampedToPopulation) {
  Rng rng(15);
  EXPECT_EQ(rng.sample_without_replacement(5, 10).size(), 5u);
}

TEST(Stats, SummaryBasics) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0, 5.0};
  const auto s = svmutil::summarize(v);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.0), 1e-12);
}

TEST(Stats, MedianEvenCount) {
  const std::vector<double> v{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(svmutil::summarize(v).median, 2.5);
}

TEST(Stats, EmptySummary) {
  const auto s = svmutil::summarize(std::vector<double>{});
  EXPECT_EQ(s.count, 0u);
}

TEST(Stats, GeometricMean) {
  const std::vector<double> v{1.0, 4.0, 16.0};
  EXPECT_NEAR(svmutil::geometric_mean(v), 4.0, 1e-12);
}

TEST(Stats, RelativeError) {
  EXPECT_NEAR(svmutil::relative_error(100.0, 101.0), 1.0 / 101.0, 1e-12);
  EXPECT_DOUBLE_EQ(svmutil::relative_error(0.0, 0.0), 0.0);
}

TEST(Timer, MeasuresElapsedTime) {
  svmutil::Timer t;
  // Busy-wait ~2ms; steady_clock must register it.
  const double start = t.seconds();
  while (t.seconds() - start < 0.002) {
  }
  EXPECT_GE(t.seconds(), 0.002);
  EXPECT_GE(t.milliseconds(), 2.0);
  t.reset();
  EXPECT_LT(t.seconds(), 0.002);
}

TEST(PhaseTimer, AccumulatesIntervals) {
  svmutil::PhaseTimer phase;
  EXPECT_EQ(phase.intervals(), 0u);
  phase.start();
  phase.stop();
  phase.start();
  phase.stop();
  EXPECT_EQ(phase.intervals(), 2u);
  EXPECT_GE(phase.total_seconds(), 0.0);
  // stop() without a start is a no-op.
  phase.stop();
  EXPECT_EQ(phase.intervals(), 2u);
}

TEST(PhaseTimer, ScopedPhaseStopsOnExit) {
  svmutil::PhaseTimer phase;
  {
    svmutil::ScopedPhase guard(phase);
  }
  EXPECT_EQ(phase.intervals(), 1u);
}

TEST(Logging, LevelFiltering) {
  const auto saved = svmutil::log_level();
  svmutil::set_log_level(svmutil::LogLevel::error);
  EXPECT_EQ(svmutil::log_level(), svmutil::LogLevel::error);
  // Below-threshold logging must be a no-op (no crash, no output assertion
  // possible here, but the macro's short-circuit path is exercised).
  SVM_LOG_DEBUG << "invisible";
  SVM_LOG_WARN << "also invisible";
  svmutil::set_log_level(svmutil::LogLevel::off);
  SVM_LOG_ERROR << "dropped too";
  svmutil::set_log_level(saved);
}

TEST(Table, AlignsAndCounts) {
  svmutil::TextTable t({"a", "long-header"});
  t.add_row({"1", "2"});
  t.add_row({svmutil::TextTable::num(3.14159, 2), svmutil::TextTable::integer(42)});
  EXPECT_EQ(t.rows(), 2u);
  const std::string rendered = t.str();
  EXPECT_NE(rendered.find("long-header"), std::string::npos);
  EXPECT_NE(rendered.find("3.14"), std::string::npos);
}

TEST(Cli, ParsesFlagsAndPositional) {
  const char* argv[] = {"prog", "--alpha", "3", "--beta=x", "--flag", "pos1"};
  CliFlags flags(6, argv, {"alpha", "beta", "flag!"});
  EXPECT_EQ(flags.get_int("alpha", 0), 3);
  EXPECT_EQ(flags.get("beta", ""), "x");
  EXPECT_TRUE(flags.get_bool("flag"));
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "pos1");
}

TEST(Cli, UnknownFlagThrows) {
  const char* argv[] = {"prog", "--nope", "1"};
  EXPECT_THROW(CliFlags(3, argv, {"alpha"}), std::invalid_argument);
}

TEST(Cli, DefaultsWhenAbsent) {
  const char* argv[] = {"prog"};
  CliFlags flags(1, argv, {"alpha"});
  EXPECT_EQ(flags.get_int("alpha", 7), 7);
  EXPECT_DOUBLE_EQ(flags.get_double("alpha", 2.5), 2.5);
  EXPECT_FALSE(flags.has("alpha"));
}

}  // namespace
