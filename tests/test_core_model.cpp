#include <gtest/gtest.h>

#include <sstream>

#include "core/model.hpp"
#include "core/sequential_smo.hpp"
#include "core/trainer.hpp"
#include "data/split.hpp"
#include "data/synthetic.hpp"

namespace {

using svmcore::SvmModel;
using svmdata::Dataset;
using svmdata::Feature;
using svmkernel::KernelParams;
using svmkernel::KernelType;

SvmModel trained_model() {
  const Dataset d = svmdata::synthetic::gaussian_blobs(
      {.n = 120, .d = 5, .separation = 2.5, .seed = 31});
  svmcore::SolverParams p;
  p.C = 10.0;
  p.eps = 1e-3;
  p.kernel = KernelParams::rbf_with_sigma_sq(4.0);
  const auto r = svmcore::solve_sequential(d, p);
  return svmcore::build_model(d, r.alpha, r.beta, p.kernel);
}

TEST(Model, TrainsAndClassifiesItsOwnData) {
  const Dataset d = svmdata::synthetic::gaussian_blobs(
      {.n = 120, .d = 5, .separation = 2.5, .seed = 31});
  const SvmModel model = trained_model();
  EXPECT_GT(model.num_support_vectors(), 0u);
  EXPECT_LT(model.num_support_vectors(), d.size());  // not everything is a SV
  EXPECT_GT(model.accuracy(d), 0.97);
}

TEST(Model, GeneralizesToHeldOutDraw) {
  const Dataset test = svmdata::synthetic::gaussian_blobs(
      {.n = 200, .d = 5, .separation = 2.5, .seed = 31, .draw = 1});  // same concept, new draw
  // Separation 2.5 puts the Bayes accuracy near Phi(1.25) ~ 0.89; a model
  // fit on 120 samples should land well above chance but below that.
  EXPECT_GT(trained_model().accuracy(test), 0.78);
}

TEST(Model, DecisionValueSignMatchesPredict) {
  const Dataset d = svmdata::synthetic::gaussian_blobs(
      {.n = 50, .d = 5, .separation = 2.5, .seed = 33});
  const SvmModel model = trained_model();
  for (std::size_t i = 0; i < d.size(); ++i) {
    const double f = model.decision_value(d.X.row(i));
    EXPECT_EQ(model.predict(d.X.row(i)), f >= 0 ? 1.0 : -1.0);
  }
}

TEST(Model, PredictAllParallelMatchesSerial) {
  const Dataset d = svmdata::synthetic::gaussian_blobs(
      {.n = 64, .d = 5, .separation = 2.5, .seed = 34});
  const SvmModel model = trained_model();
  const auto serial = model.predict_all(d.X, false);
  const auto parallel = model.predict_all(d.X, true);
  EXPECT_EQ(serial, parallel);
}

TEST(Model, SaveLoadRoundTripExact) {
  const SvmModel model = trained_model();
  std::ostringstream out;
  model.save(out);
  std::istringstream in(out.str());
  const SvmModel loaded = SvmModel::load(in);

  EXPECT_EQ(loaded.num_support_vectors(), model.num_support_vectors());
  EXPECT_EQ(loaded.beta(), model.beta());
  EXPECT_EQ(loaded.kernel_params().type, model.kernel_params().type);
  EXPECT_EQ(loaded.kernel_params().gamma, model.kernel_params().gamma);
  for (std::size_t j = 0; j < model.num_support_vectors(); ++j)
    EXPECT_EQ(loaded.coefficients()[j], model.coefficients()[j]);

  // Decision values must be bitwise identical after the round trip.
  const Dataset probe = svmdata::synthetic::gaussian_blobs(
      {.n = 20, .d = 5, .separation = 2.5, .seed = 35});
  for (std::size_t i = 0; i < probe.size(); ++i)
    EXPECT_EQ(loaded.decision_value(probe.X.row(i)), model.decision_value(probe.X.row(i)));
}

TEST(Model, SaveLoadFileRoundTrip) {
  const SvmModel model = trained_model();
  const std::string path = ::testing::TempDir() + "/model.shrinksvm";
  model.save_file(path);
  const SvmModel loaded = SvmModel::load_file(path);
  EXPECT_EQ(loaded.num_support_vectors(), model.num_support_vectors());
}

TEST(Model, LoadRejectsWrongMagic) {
  std::istringstream in("not-a-model\n");
  EXPECT_THROW((void)SvmModel::load(in), std::runtime_error);
}

TEST(Model, LoadRejectsTruncatedBody) {
  const SvmModel model = trained_model();
  std::ostringstream out;
  model.save(out);
  std::string text = out.str();
  text.resize(text.size() / 2);
  std::istringstream in(text);
  EXPECT_THROW((void)SvmModel::load(in), std::runtime_error);
}

TEST(Model, CoefficientCountMismatchThrows) {
  svmdata::CsrMatrix sv;
  sv.add_row(std::vector<Feature>{{0, 1.0}});
  EXPECT_THROW(SvmModel(KernelParams{}, std::move(sv), {0.5, 0.5}, 0.0),
               std::invalid_argument);
}

TEST(Model, EmptyModelPredictsFromBetaAlone) {
  const SvmModel model(KernelParams{}, svmdata::CsrMatrix{}, {}, -1.0);
  svmdata::CsrMatrix probe;
  probe.add_row(std::vector<Feature>{{0, 1.0}});
  EXPECT_DOUBLE_EQ(model.decision_value(probe.row(0)), 1.0);  // 0 - (-1)
}

}  // namespace
