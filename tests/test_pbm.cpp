// Parallel Block Minimization solver (src/solver/pbm_solver.*):
//  - degenerate case (1 rank, 1 block) reproduces the sequential SMO bitwise
//  - the trained model reaches the same optimality gap as SMO
//  - warm-started rounds are deterministic (bitwise re-runnable) and the
//    model is partition-independent across rank counts (dense encoding)
//  - alpha-beta comm-volume accounting: each rank's TrafficStats
//    bytes_collective matches the hand-computed payload formula of the PBM
//    collective schedule at p = 2 and p = 4
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/objective.hpp"
#include "core/sequential_smo.hpp"
#include "core/trainer.hpp"
#include "data/split.hpp"
#include "data/synthetic.hpp"

namespace {

using svmcore::SolverAlgo;
using svmcore::SolverParams;
using svmcore::TrainOptions;
using svmcore::TrainResult;
using svmdata::Dataset;
using svmkernel::KernelParams;

Dataset pbm_dataset() {
  return svmdata::synthetic::gaussian_blobs(
      {.n = 160, .d = 6, .separation = 1.8, .label_noise = 0.05, .seed = 41});
}

SolverParams pbm_params() {
  SolverParams p;
  p.C = 4.0;
  p.eps = 1e-3;
  p.kernel = KernelParams::rbf_with_sigma_sq(4.0);
  p.algo = SolverAlgo::pbm;
  return p;
}

TrainOptions ranks(int n) {
  TrainOptions options;
  options.num_ranks = n;
  return options;
}

std::uint64_t rank_counter(const TrainResult& result, int rank, const char* name) {
  const auto& counters = result.rank_metrics[rank].counters();
  const auto it = counters.find(name);
  return it == counters.end() ? 0 : it->second.value();
}

TEST(PbmSolver, SingleRankSingleBlockMatchesSequentialBitwise) {
  const Dataset d = pbm_dataset();
  SolverParams params = pbm_params();
  params.pbm_blocks = 1;
  const auto sequential = svmcore::solve_sequential(d, [&] {
    SolverParams p = params;
    p.algo = SolverAlgo::smo;  // the sequential solver ignores algo; be explicit
    return p;
  }());

  const TrainResult pbm = svmcore::train(d, params, ranks(1));
  EXPECT_TRUE(pbm.converged);
  EXPECT_EQ(pbm.solver_algo, "pbm");
  // One block over [0, n): the inner solver IS the sequential solver, so
  // alpha (via the support vectors) and beta must agree bitwise.
  ASSERT_EQ(pbm.alpha.size(), sequential.alpha.size());
  for (std::size_t i = 0; i < d.size(); ++i) EXPECT_EQ(pbm.alpha[i], sequential.alpha[i]);
  EXPECT_EQ(pbm.beta, sequential.beta);
}

TEST(PbmSolver, ReachesSameOptimalityGapAsSmo) {
  const Dataset d = pbm_dataset();
  const SolverParams params = pbm_params();
  const TrainResult pbm = svmcore::train(d, params, ranks(4));
  EXPECT_TRUE(pbm.converged);

  const auto kkt = svmcore::kkt_report(d, pbm.alpha, params);
  // Same termination criterion as SMO: beta_low - beta_up <= 2*eps, plus
  // feasibility of the recovered alpha.
  EXPECT_LE(kkt.gap, 2.0 * params.eps + 1e-9);
  EXPECT_EQ(kkt.max_alpha_bound_violation, 0.0);
  EXPECT_LT(kkt.equality_residual, 1e-9);
}

TEST(PbmSolver, WarmStartedRoundsAreDeterministic) {
  const Dataset d = pbm_dataset();
  const SolverParams params = pbm_params();
  const TrainResult a = svmcore::train(d, params, ranks(4));
  const TrainResult b = svmcore::train(d, params, ranks(4));
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.beta, b.beta);
  ASSERT_EQ(a.model.num_support_vectors(), b.model.num_support_vectors());
  for (std::size_t j = 0; j < a.model.num_support_vectors(); ++j)
    EXPECT_EQ(a.model.coefficients()[j], b.model.coefficients()[j]);
}

TEST(PbmSolver, DenseEncodingIsPartitionIndependent) {
  // Fixed B = 4 blocks executed by 1, 2 and 4 ranks: the trajectory depends
  // only on the block structure, so all three must produce the identical
  // model bitwise (this is the invariant shrink-world recovery relies on).
  const Dataset d = pbm_dataset();
  SolverParams params = pbm_params();
  params.pbm_blocks = 4;
  const TrainResult p1 = svmcore::train(d, params, ranks(1));
  const TrainResult p2 = svmcore::train(d, params, ranks(2));
  const TrainResult p4 = svmcore::train(d, params, ranks(4));
  EXPECT_EQ(p1.iterations, p2.iterations);
  EXPECT_EQ(p1.iterations, p4.iterations);
  EXPECT_EQ(p1.beta, p2.beta);
  EXPECT_EQ(p1.beta, p4.beta);
  ASSERT_EQ(p1.model.num_support_vectors(), p2.model.num_support_vectors());
  ASSERT_EQ(p1.model.num_support_vectors(), p4.model.num_support_vectors());
  for (std::size_t j = 0; j < p1.model.num_support_vectors(); ++j) {
    EXPECT_EQ(p1.model.coefficients()[j], p2.model.coefficients()[j]);
    EXPECT_EQ(p1.model.coefficients()[j], p4.model.coefficients()[j]);
  }
}

TEST(PbmSolver, SparseEncodingMatchesDenseModel) {
  const Dataset d = pbm_dataset();
  SolverParams dense = pbm_params();
  dense.pbm_delta = svmcore::PbmDeltaEncoding::dense;
  SolverParams sparse = pbm_params();
  sparse.pbm_delta = svmcore::PbmDeltaEncoding::sparse;
  const TrainResult a = svmcore::train(d, dense, ranks(4));
  const TrainResult b = svmcore::train(d, sparse, ranks(4));
  // The ring regroups the cross-block sums by source rank, which perturbs
  // the line-search step and lets the trajectories drift apart — the sparse
  // run must still be a solution of the SAME quality (identical termination
  // criterion, feasible alpha) and land on a nearby model.
  EXPECT_TRUE(b.converged);
  const auto kkt = svmcore::kkt_report(d, b.alpha, sparse);
  EXPECT_LE(kkt.gap, 2.0 * sparse.eps + 1e-9);
  EXPECT_EQ(kkt.max_alpha_bound_violation, 0.0);
  EXPECT_LT(kkt.equality_residual, 1e-9);
  // Equal-quality duals can differ along near-flat directions, so compare
  // the PRIMAL objects the solver actually guarantees: the threshold and the
  // decision function over the training points.
  EXPECT_NEAR(a.beta, b.beta, 1e-2);
  for (std::size_t i = 0; i < d.size(); ++i)
    EXPECT_NEAR(a.model.decision_value(d.X.row(i)), b.model.decision_value(d.X.row(i)), 5e-2)
        << "sample " << i;
  // Sparse rounds must actually have exercised the ring.
  EXPECT_GT(rank_counter(b, 0, "pbm.sparse_rounds"), 0u);
  EXPECT_EQ(rank_counter(b, 0, "pbm.dense_rounds"), 0u);
}

TEST(PbmSolver, RejectsFewerBlocksThanRanks) {
  const Dataset d = pbm_dataset();
  SolverParams params = pbm_params();
  params.pbm_blocks = 2;
  EXPECT_THROW((void)svmcore::train(d, params, ranks(4)), std::invalid_argument);
}

// --- alpha-beta comm-volume accounting --------------------------------------

class PbmCommVolume : public ::testing::TestWithParam<int> {};

TEST_P(PbmCommVolume, BytesCollectiveMatchesHandComputedSchedule) {
  const int p = GetParam();
  const Dataset d = pbm_dataset();
  const std::size_t n = d.size();
  const SolverParams params = pbm_params();  // dense deltas, B = p
  const TrainResult result = svmcore::train(d, params, ranks(p));
  ASSERT_TRUE(result.converged);

  for (int r = 0; r < p; ++r) {
    const svmmpi::TrafficStats& t = result.rank_traffic[r];
    const std::uint64_t rounds = rank_counter(result, r, "pbm.rounds");
    const std::uint64_t dense = rank_counter(result, r, "pbm.dense_rounds");
    const std::uint64_t searches = rank_counter(result, r, "pbm.line_search_rounds");
    ASSERT_EQ(rank_counter(result, r, "pbm.sparse_rounds"), 0u);

    // PBM's collective schedule, per rank: one class-presence allreduce
    // (2 int64 = 16 B), one 24 B census allreduce per round, one dense
    // delta allgatherv per dense round charging each rank its OWN span's
    // 8 bytes/entry (spans tile [0, n), so the whole round moves 8n total
    // across ranks, not 8n per rank), one line-search allreduce of
    // 2 doubles per block (16 B per block) per multi-block round, one
    // beta-assembly allreduce of 2 doubles per block, and 2 16-byte
    // MINLOC/MAXLOC collectives per bounds refresh (loop tops + polish
    // steps). Recover the refresh count from the collective COUNT, then
    // check the BYTES identity:
    //   collectives = 1 + rounds + dense + searches + 1 + 2 * refreshes
    const std::uint64_t fixed = 2 + rounds + dense + searches;
    ASSERT_GE(t.collectives, fixed);
    ASSERT_EQ((t.collectives - fixed) % 2, 0u);
    const std::uint64_t refreshes = (t.collectives - fixed) / 2;

    const auto blocks = static_cast<std::uint64_t>(p);  // pbm_blocks defaults to p
    // B = p puts exactly one block on each rank: rank r's span is block r.
    const std::uint64_t span = svmdata::block_range(n, p, r).size();
    const std::uint64_t expected_bytes = 16 +                // class presence
                                         24 * rounds +       // delta census
                                         8 * span * dense +  // own dense slice
                                         16 * blocks * searches +  // line-search slots
                                         16 * blocks +             // beta slots
                                         32 * refreshes;           // minloc + maxloc
    EXPECT_EQ(t.bytes_collective, expected_bytes) << "rank " << r;
    // PBM never moves samples point-to-point in dense mode (no per-iteration
    // broadcast pattern): pt2pt volume must be exactly zero.
    EXPECT_EQ(t.bytes_sent, 0u) << "rank " << r;
  }
  // The schedule is SPMD-identical and p divides n here, so the spans are
  // equal and every rank charges the same volume.
  for (int r = 1; r < p; ++r)
    EXPECT_EQ(result.rank_traffic[r].bytes_collective,
              result.rank_traffic[0].bytes_collective);
}

INSTANTIATE_TEST_SUITE_P(RankCounts, PbmCommVolume, ::testing::Values(2, 4));

}  // namespace
