// Multi-tenant scheduler chaos suite. The invariants under test are the
// scheduler's contract:
//  - fault isolation: killing a rank inside job A shrinks job A per its
//    RecoveryPolicy while a concurrent job B on a disjoint gang finishes
//    with a model BIT-IDENTICAL to a scheduler-free train() of the same
//    gang size (the dead rank is invisible outside its communicator);
//  - a hung job trips the dispatcher watchdog, its gang unwinds via
//    context cancellation, the ranks return to the pool and the job is
//    requeued and completes;
//  - overload degrades gracefully: arrivals beyond the admission bound are
//    rejected, accepted jobs all complete;
//  - transient crashes retry: the rank rejoins the pool, the job requeues
//    and completes with no permanent loss recorded;
//  - fixed seeds replay deterministically: same workload, same models.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "core/distributed_solver.hpp"
#include "data/synthetic.hpp"
#include "mpisim/comm.hpp"
#include "mpisim/fault.hpp"
#include "mpisim/spmd.hpp"
#include "mpisim/world.hpp"
#include "sched/scheduler.hpp"
#include "sched/workload.hpp"

namespace {

using svmsched::JobRecord;
using svmsched::JobSpec;
using svmsched::JobState;
using svmsched::SchedulerOptions;
using svmsched::SchedulerReport;

std::shared_ptr<const svmdata::Dataset> blobs(std::uint64_t seed, std::size_t n = 240) {
  svmdata::synthetic::BlobsParams params;
  params.n = n;
  params.d = 8;
  params.separation = 2.5;
  params.seed = seed;
  return std::make_shared<const svmdata::Dataset>(svmdata::synthetic::gaussian_blobs(params));
}

SchedulerOptions base_options(int pool_ranks) {
  SchedulerOptions options;
  options.pool_ranks = pool_ranks;
  options.net_model.timeout_s = 10.0;
  options.watchdog_tick_s = 0.002;
  return options;
}

JobSpec job(int id, std::shared_ptr<const svmdata::Dataset> dataset, int ranks) {
  JobSpec spec;
  spec.id = id;
  spec.name = "job" + std::to_string(id);
  spec.ranks = ranks;
  spec.dataset = std::move(dataset);
  spec.checkpoint_interval = 16;
  return spec;
}

/// Rank-local communication-op count of `rank` for a plain p-rank solve of
/// `dataset` — op counts are deterministic and advance only inside jobs, so
/// this targets a fault at a specific fraction of a specific job's solve.
std::uint64_t probe_solve_ops(const svmdata::Dataset& dataset, int num_ranks, int rank) {
  svmmpi::FaultInjector probe{svmmpi::FaultPlan{}};
  (void)svmmpi::run_spmd(
      num_ranks,
      [&](svmmpi::Comm& comm) {
        svmcore::DistributedConfig cfg;
        svmcore::DistributedSolver solver(comm, dataset, cfg);
        (void)solver.solve();
      },
      svmmpi::NetModel{}, nullptr, &probe);
  return probe.ops(rank);
}

/// Scheduler-free reference: the model a `ranks`-gang produces for this
/// dataset (the scheduler's leader-side assembly must match it exactly).
svmcore::SvmModel reference_model(const svmdata::Dataset& dataset, int ranks) {
  svmcore::TrainOptions options;
  options.num_ranks = ranks;
  return svmcore::train(dataset, svmcore::SolverParams{}, options).model;
}

void expect_identical_models(const svmcore::SvmModel& a, const svmcore::SvmModel& b) {
  EXPECT_EQ(a.num_support_vectors(), b.num_support_vectors());
  EXPECT_EQ(a.beta(), b.beta());
  ASSERT_EQ(a.coefficients().size(), b.coefficients().size());
  for (std::size_t i = 0; i < a.coefficients().size(); ++i)
    EXPECT_EQ(a.coefficients()[i], b.coefficients()[i]) << "coefficient " << i;
}

// --- mpisim primitives the scheduler is built on --------------------------

TEST(SchedulerPrimitives, SaltedGroupContextsAreDistinctAndMemoized) {
  svmmpi::World world(4);
  const std::vector<int> group{0, 2};
  const int plain = world.context_for_group(group);
  EXPECT_EQ(plain, world.context_for_group(group));  // memoized
  const int salted = world.context_for_group(group, /*salt=*/7);
  EXPECT_NE(plain, salted);  // a salted lifetime never reuses another's context
  EXPECT_EQ(salted, world.context_for_group(group, /*salt=*/7));
}

TEST(SchedulerPrimitives, CancelContextUnblocksAWedgedReceive) {
  bool cancelled = false;
  (void)svmmpi::run_spmd(2, [&](svmmpi::Comm& comm) {
    if (comm.rank() == 0) {
      try {
        (void)comm.recv<int>(1);  // no matching send: wedged until cancel
        ADD_FAILURE() << "receive completed without a sender";
      } catch (const svmmpi::ContextCancelled& c) {
        cancelled = true;
        EXPECT_EQ(c.rank, 0);
      }
    } else {
      comm.world().cancel_context(comm.context_id());
    }
  });
  EXPECT_TRUE(cancelled);
}

TEST(SchedulerPrimitives, SplitSubsetBuildsDisjointGangsWithoutCollectives) {
  std::vector<int> sums(4, 0);
  (void)svmmpi::run_spmd(4, [&](svmmpi::Comm& comm) {
    const int ctx_even = comm.world().context_for_group({0, 2}, 1);
    const int ctx_odd = comm.world().context_for_group({1, 3}, 1);
    const bool even = comm.rank() % 2 == 0;
    svmmpi::Comm gang = comm.split_subset(even ? std::vector<int>{0, 2} : std::vector<int>{1, 3},
                                          even ? ctx_even : ctx_odd);
    EXPECT_EQ(gang.size(), 2);
    sums[comm.rank()] = gang.allreduce(comm.rank(), svmmpi::ReduceOp::sum);
  });
  EXPECT_EQ(sums[0], 0 + 2);
  EXPECT_EQ(sums[2], 0 + 2);
  EXPECT_EQ(sums[1], 1 + 3);
  EXPECT_EQ(sums[3], 1 + 3);
}

// --- scheduler end-to-end --------------------------------------------------

TEST(Scheduler, FaultFreeJobMatchesPlainTrainBitForBit) {
  const auto dataset = blobs(11);
  SchedulerOptions options = base_options(4);
  const SchedulerReport report = svmsched::run_scheduler({job(0, dataset, 4)}, options);
  ASSERT_EQ(report.completed, 1);
  const JobRecord& rec = report.jobs[0];
  ASSERT_EQ(rec.state, JobState::completed);
  EXPECT_EQ(rec.attempts, 1);
  EXPECT_EQ(rec.shrinks, 0);
  EXPECT_TRUE(rec.converged);
  expect_identical_models(rec.model, reference_model(*dataset, 4));
}

TEST(Scheduler, RankDeathShrinksOnlyTheAffectedJob) {
  const auto dataset_a = blobs(21);
  const auto dataset_b = blobs(22);
  // Rank 1's op counter advances only inside job A (gangs take the lowest
  // free ranks: A -> {0,1,2,3}, B -> {4,5,6,7}), so a plain 4-rank probe of
  // A's dataset targets the death at the middle of A's solve.
  const std::uint64_t ops = probe_solve_ops(*dataset_a, 4, 1);
  ASSERT_GT(ops, 4u);

  SchedulerOptions options = base_options(8);
  options.fault_plan.die(1, ops / 2);
  std::vector<JobSpec> jobs{job(0, dataset_a, 4), job(1, dataset_b, 4)};
  jobs[0].tenant = "tenant-a";
  jobs[1].tenant = "tenant-b";
  const SchedulerReport report = svmsched::run_scheduler(std::move(jobs), options);

  ASSERT_EQ(report.completed, 2);
  const JobRecord& a = report.jobs[0];
  const JobRecord& b = report.jobs[1];
  // Job A survived its rank loss by shrinking in-job, on its first attempt.
  EXPECT_EQ(a.state, JobState::completed);
  EXPECT_EQ(a.attempts, 1);
  EXPECT_EQ(a.shrinks, 1);
  ASSERT_EQ(a.ranks_lost.size(), 1u);
  EXPECT_EQ(a.ranks_lost[0], 1);
  // Job B never observed the death: same model as a fault-free 4-rank train.
  EXPECT_EQ(b.state, JobState::completed);
  EXPECT_EQ(b.attempts, 1);
  EXPECT_EQ(b.shrinks, 0);
  EXPECT_TRUE(b.ranks_lost.empty());
  expect_identical_models(b.model, reference_model(*dataset_b, 4));
  // The pool recorded exactly the one permanent loss.
  ASSERT_EQ(report.pool_ranks_lost.size(), 1u);
  EXPECT_EQ(report.pool_ranks_lost[0], 1);
  EXPECT_EQ(report.shrinks, 1);
}

TEST(Scheduler, WatchdogCancelsAHungJobAndRequeuesIt) {
  const auto dataset = blobs(31, 160);
  SchedulerOptions options = base_options(4);
  // A 0.8 s stall against a 0.1 s deadline, with the network timeout far
  // out of reach: only the watchdog can unwedge the gang.
  options.fault_plan.delay(1, 12, 0.8);
  std::vector<JobSpec> jobs{job(0, dataset, 4)};
  jobs[0].timeout_s = 0.1;
  const SchedulerReport report = svmsched::run_scheduler(std::move(jobs), options);

  ASSERT_EQ(report.completed, 1);
  const JobRecord& rec = report.jobs[0];
  EXPECT_EQ(rec.state, JobState::completed);
  EXPECT_EQ(rec.attempts, 2);
  EXPECT_EQ(rec.timeouts, 1);
  EXPECT_EQ(rec.requeues, 1);
  EXPECT_EQ(report.timeouts, 1);
  EXPECT_TRUE(report.pool_ranks_lost.empty());
  expect_identical_models(rec.model, reference_model(*dataset, 4));
}

TEST(Scheduler, OverloadRejectsInsteadOfQueueingUnboundedly) {
  const auto dataset = blobs(41, 120);
  SchedulerOptions options = base_options(2);
  options.queue_capacity = 2;
  std::vector<JobSpec> jobs;
  for (int i = 0; i < 8; ++i) jobs.push_back(job(i, dataset, 2));
  const SchedulerReport report = svmsched::run_scheduler(std::move(jobs), options);

  // All eight arrive before any can finish; two fit the admission queue.
  EXPECT_EQ(report.completed, 2);
  EXPECT_EQ(report.rejected, 6);
  EXPECT_EQ(report.lost, 0);
  for (const JobRecord& rec : report.jobs)
    EXPECT_TRUE(rec.state == JobState::completed || rec.state == JobState::rejected);
}

TEST(Scheduler, TransientCrashReturnsRankToPoolAndRetries) {
  const auto dataset = blobs(51);
  const std::uint64_t ops = probe_solve_ops(*dataset, 4, 2);
  SchedulerOptions options = base_options(4);
  options.fault_plan.crash(2, ops / 2);  // transient: the process relaunches
  options.backoff_base_s = 0.01;
  std::vector<JobSpec> jobs{job(0, dataset, 4)};
  const SchedulerReport report = svmsched::run_scheduler(std::move(jobs), options);

  ASSERT_EQ(report.completed, 1);
  const JobRecord& rec = report.jobs[0];
  EXPECT_EQ(rec.state, JobState::completed);
  EXPECT_EQ(rec.attempts, 2);
  EXPECT_EQ(rec.requeues, 1);
  EXPECT_EQ(rec.shrinks, 0);
  EXPECT_GT(rec.backoff_s, 0.0);
  EXPECT_TRUE(rec.ranks_lost.empty());
  EXPECT_TRUE(report.pool_ranks_lost.empty());  // the rank was NOT lost
  expect_identical_models(rec.model, reference_model(*dataset, 4));
}

TEST(Scheduler, FixedSeedWorkloadReplaysBitIdentically) {
  const auto dataset = blobs(61, 160);
  svmsched::JobDefaults defaults;
  defaults.ranks = 2;
  const auto make_jobs = [&] {
    std::vector<JobSpec> jobs = svmsched::grid_search_jobs(
        dataset, {1.0, 10.0}, {0.25, 1.0}, svmcore::SolverParams{}, defaults);
    svmsched::BurstyTrace trace;
    trace.seed = 7;
    trace.mean_gap_s = 0.002;
    svmsched::assign_bursty_arrivals(jobs, trace);
    return jobs;
  };
  SchedulerOptions options = base_options(4);
  const SchedulerReport first = svmsched::run_scheduler(make_jobs(), options);
  const SchedulerReport second = svmsched::run_scheduler(make_jobs(), options);

  ASSERT_EQ(first.completed, 4);
  ASSERT_EQ(second.completed, 4);
  for (std::size_t j = 0; j < first.jobs.size(); ++j) {
    EXPECT_EQ(first.jobs[j].state, second.jobs[j].state);
    EXPECT_EQ(first.jobs[j].iterations, second.jobs[j].iterations);
    expect_identical_models(first.jobs[j].model, second.jobs[j].model);
  }
}

TEST(Workload, OneVsOneLowersEveryPairToAJob) {
  svmdata::synthetic::MultiBlobsParams params;
  params.n = 90;
  params.classes = 3;
  const svmdata::MultiClassData data = svmdata::synthetic::multiclass_blobs(params);
  const std::vector<JobSpec> jobs = svmsched::one_vs_one_jobs(data, svmcore::SolverParams{});
  ASSERT_EQ(jobs.size(), 3u);  // 3 classes -> 3 pairs
  for (const JobSpec& spec : jobs) {
    ASSERT_NE(spec.dataset, nullptr);
    EXPECT_GT(spec.dataset->size(), 0u);
    spec.dataset->validate();  // labels correctly remapped to +/-1
  }
}

}  // namespace
