#include <gtest/gtest.h>

#include "core/pair_update.hpp"
#include "core/types.hpp"

namespace {

using svmcore::classify;
using svmcore::in_low_set;
using svmcore::in_up_set;
using svmcore::IndexSet;
using svmcore::PairResult;
using svmcore::PairState;
using svmcore::solve_pair;

TEST(Classify, AllFiveSets) {
  const double C = 2.0;
  EXPECT_EQ(classify(+1.0, 1.0, C), IndexSet::I0);
  EXPECT_EQ(classify(-1.0, 0.5, C), IndexSet::I0);
  EXPECT_EQ(classify(+1.0, 0.0, C), IndexSet::I1);
  EXPECT_EQ(classify(-1.0, C, C), IndexSet::I2);
  EXPECT_EQ(classify(+1.0, C, C), IndexSet::I3);
  EXPECT_EQ(classify(-1.0, 0.0, C), IndexSet::I4);
}

TEST(Classify, UpAndLowMembership) {
  // I_up = I0 u I1 u I2; I_low = I0 u I3 u I4 (Eq. 3).
  EXPECT_TRUE(in_up_set(IndexSet::I0));
  EXPECT_TRUE(in_up_set(IndexSet::I1));
  EXPECT_TRUE(in_up_set(IndexSet::I2));
  EXPECT_FALSE(in_up_set(IndexSet::I3));
  EXPECT_FALSE(in_up_set(IndexSet::I4));
  EXPECT_TRUE(in_low_set(IndexSet::I0));
  EXPECT_TRUE(in_low_set(IndexSet::I3));
  EXPECT_TRUE(in_low_set(IndexSet::I4));
  EXPECT_FALSE(in_low_set(IndexSet::I1));
  EXPECT_FALSE(in_low_set(IndexSet::I2));
}

TEST(PairUpdate, OppositeLabelsUnconstrainedStep) {
  // Two fresh samples, y_up=+1 (gamma=-1), y_low=-1 (gamma=+1), K_uu=K_ll=1,
  // K_ul=k. eta = 2(1-k). Step on alpha_low: y_low*(g_up-g_low)/eta =
  // -(-2)/eta = 2/eta = 1/(1-k).
  const double k = 0.5;
  const PairState s{+1.0, -1.0, 0.0, 0.0, -1.0, 1.0, 1.0, 1.0, k, /*C_up=*/10.0, /*C_low=*/10.0};
  const PairResult r = solve_pair(s);
  EXPECT_TRUE(r.progress);
  EXPECT_NEAR(r.alpha_low, 1.0 / (1.0 - k), 1e-12);
  // Equality constraint: delta_up = s * delta_low with s = y_up*y_low = -1,
  // starting from 0/0 both must move together for opposite labels.
  EXPECT_NEAR(r.alpha_up, r.alpha_low, 1e-12);
}

TEST(PairUpdate, ClipsAtUpperBound) {
  // Same geometry but tiny C: the step is clipped to C on both.
  const PairState s{+1.0, -1.0, 0.0, 0.0, -1.0, 1.0, 1.0, 1.0, 0.5, /*C_up=*/0.25, /*C_low=*/0.25};
  const PairResult r = solve_pair(s);
  EXPECT_DOUBLE_EQ(r.alpha_low, 0.25);
  EXPECT_DOUBLE_EQ(r.alpha_up, 0.25);
}

TEST(PairUpdate, ClipsAtZero) {
  // Pair that wants to move alpha_low negative: gamma_up > gamma_low would
  // never be selected, but the clip must still be sound.
  const PairState s{+1.0, +1.0, 0.5, 0.3, -1.0, 1.0, 1.0, 1.0, 0.0, /*C_up=*/1.0, /*C_low=*/1.0};
  const PairResult r = solve_pair(s);
  EXPECT_GE(r.alpha_low, 0.0);
  EXPECT_LE(r.alpha_low, 1.0);
  EXPECT_GE(r.alpha_up, 0.0);
  EXPECT_LE(r.alpha_up, 1.0);
  // Same labels: the sum is conserved.
  EXPECT_NEAR(r.alpha_up + r.alpha_low, 0.8, 1e-12);
}

TEST(PairUpdate, SameLabelsConserveSum) {
  const PairState s{+1.0, +1.0, 0.2, 0.6, -0.5, 0.7, 1.0, 1.0, 0.3, /*C_up=*/1.0, /*C_low=*/1.0};
  const PairResult r = solve_pair(s);
  EXPECT_NEAR(r.alpha_up + r.alpha_low, 0.8, 1e-12);
}

TEST(PairUpdate, OppositeLabelsConserveDifference) {
  const PairState s{+1.0, -1.0, 0.2, 0.6, -0.5, 0.7, 1.0, 1.0, 0.3, /*C_up=*/1.0, /*C_low=*/1.0};
  const PairResult r = solve_pair(s);
  EXPECT_NEAR(r.alpha_up - r.alpha_low, 0.2 - 0.6, 1e-12);
}

TEST(PairUpdate, DegenerateCurvatureRegularized) {
  // K_uu + K_ll - 2K_ul = 0 (duplicate points). The TAU regularization gives
  // a huge step which the clip bounds; no NaN, no crash.
  const PairState s{+1.0, -1.0, 0.0, 0.0, -1.0, 1.0, 1.0, 1.0, 1.0, /*C_up=*/1.0, /*C_low=*/1.0};
  const PairResult r = solve_pair(s);
  EXPECT_TRUE(std::isfinite(r.alpha_up));
  EXPECT_TRUE(std::isfinite(r.alpha_low));
  EXPECT_DOUBLE_EQ(r.alpha_low, 1.0);  // clipped to C
}

TEST(PairUpdate, NoMovementReportsNoProgress) {
  // gamma_up == gamma_low: zero step.
  const PairState s{+1.0, -1.0, 0.5, 0.5, 0.2, 0.2, 1.0, 1.0, 0.0, /*C_up=*/1.0, /*C_low=*/1.0};
  const PairResult r = solve_pair(s);
  EXPECT_FALSE(r.progress);
}

TEST(PairUpdate, SnapsToExactBounds) {
  // Values landing within 1e-12*C of a bound are snapped exactly so that
  // classify()'s exact comparisons work.
  const PairState s{+1.0, -1.0, 0.0, 1.0 - 1e-14, -3.0, 3.0, 1.0, 1.0, 0.0, /*C_up=*/1.0, /*C_low=*/1.0};
  const PairResult r = solve_pair(s);
  EXPECT_EQ(r.alpha_low, 1.0);
}

}  // namespace
