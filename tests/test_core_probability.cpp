#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"

#include "core/probability.hpp"
#include "core/trainer.hpp"
#include "data/synthetic.hpp"

namespace {

using svmcore::fit_platt;
using svmcore::PlattScaling;

TEST(Platt, SigmoidShape) {
  const PlattScaling s{-2.0, 0.0};  // A < 0: larger margin => higher P(+1)
  EXPECT_NEAR(s.probability(0.0), 0.5, 1e-12);
  EXPECT_GT(s.probability(1.0), 0.8);
  EXPECT_LT(s.probability(-1.0), 0.2);
  EXPECT_NEAR(s.probability(100.0), 1.0, 1e-9);
  EXPECT_NEAR(s.probability(-100.0), 0.0, 1e-9);
}

TEST(Platt, ProbabilitiesAreComplementaryUnderSignFlip) {
  // P_{A,B}(f) + P_{-A,-B}(f) = 1 for every f (sigmoid point symmetry).
  const PlattScaling negative_slope{-1.5, 0.3};
  const PlattScaling positive_slope{1.5, -0.3};
  for (const double f : {-3.0, -0.5, 0.0, 0.7, 4.0}) {
    const double sum = negative_slope.probability(f) + positive_slope.probability(f);
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(Platt, FitRecoversKnownSigmoid) {
  // Labels drawn deterministically from a known sigmoid; the fit should
  // recover (A, B) closely.
  const double true_A = -1.7;
  const double true_B = 0.4;
  svmutil::Rng rng(7);
  std::vector<double> decisions(4000);
  std::vector<double> labels(4000);
  const PlattScaling truth{true_A, true_B};
  for (std::size_t i = 0; i < decisions.size(); ++i) {
    decisions[i] = rng.uniform(-4.0, 4.0);
    labels[i] = rng.bernoulli(truth.probability(decisions[i])) ? 1.0 : -1.0;
  }
  const PlattScaling fitted = fit_platt(decisions, labels);
  EXPECT_NEAR(fitted.A, true_A, 0.15);
  EXPECT_NEAR(fitted.B, true_B, 0.15);
}

TEST(Platt, SeparableDataGivesSteepSigmoid) {
  std::vector<double> decisions;
  std::vector<double> labels;
  for (int i = 1; i <= 50; ++i) {
    decisions.push_back(0.5 + i * 0.05);
    labels.push_back(1.0);
    decisions.push_back(-0.5 - i * 0.05);
    labels.push_back(-1.0);
  }
  const PlattScaling s = fit_platt(decisions, labels);
  EXPECT_LT(s.A, -1.0);  // steep
  EXPECT_GT(s.probability(2.0), 0.95);
  EXPECT_LT(s.probability(-2.0), 0.05);
}

TEST(Platt, FitValidatesInput) {
  EXPECT_THROW((void)fit_platt(std::vector<double>{1.0}, std::vector<double>{1.0, -1.0}),
               std::invalid_argument);
  EXPECT_THROW((void)fit_platt(std::vector<double>{1.0}, std::vector<double>{1.0}),
               std::invalid_argument);
}

TEST(Platt, EndToEndCalibrationIsMonotoneAndDiscriminative) {
  const auto train = svmdata::synthetic::gaussian_blobs(
      {.n = 300, .d = 5, .separation = 1.8, .label_noise = 0.05, .seed = 55});
  const auto calibration = svmdata::synthetic::gaussian_blobs(
      {.n = 200, .d = 5, .separation = 1.8, .label_noise = 0.05, .seed = 55, .draw = 1});
  svmcore::SolverParams params;
  params.C = 4.0;
  params.eps = 1e-3;
  params.kernel = svmkernel::KernelParams::rbf_with_sigma_sq(4.0);
  const auto result = svmcore::train(train, params, {});
  const PlattScaling platt = fit_platt(result.model, calibration);

  // Probability must increase with the decision value...
  const auto probe = svmdata::synthetic::gaussian_blobs(
      {.n = 100, .d = 5, .separation = 1.8, .seed = 55, .draw = 2});
  double previous = -1.0;
  std::vector<std::pair<double, double>> pairs;
  for (std::size_t i = 0; i < probe.size(); ++i) {
    const double f = result.model.decision_value(probe.X.row(i));
    pairs.emplace_back(f, platt.probability(f));
  }
  std::sort(pairs.begin(), pairs.end());
  for (const auto& [f, p] : pairs) {
    EXPECT_GE(p, previous - 1e-12);
    previous = p;
  }
  // ...and separate the classes in expectation.
  double mean_p_positive = 0.0;
  double mean_p_negative = 0.0;
  std::size_t positives = 0;
  for (std::size_t i = 0; i < probe.size(); ++i) {
    const double p = platt.probability(result.model.decision_value(probe.X.row(i)));
    if (probe.y[i] > 0) {
      mean_p_positive += p;
      ++positives;
    } else {
      mean_p_negative += p;
    }
  }
  mean_p_positive /= static_cast<double>(positives);
  mean_p_negative /= static_cast<double>(probe.size() - positives);
  EXPECT_GT(mean_p_positive, mean_p_negative + 0.25);
}

}  // namespace
