// End-to-end integration: zoo datasets x solvers x rank counts, plus the
// Table V accuracy-parity property (proposed solver vs the libsvm-style
// baseline) on datasets with held-out test sets.
#include <gtest/gtest.h>

#include "baseline/libsvm_like.hpp"
#include "core/trainer.hpp"
#include "data/zoo.hpp"

namespace {

using svmcore::Heuristic;
using svmcore::SolverParams;
using svmcore::TrainOptions;
using svmdata::Dataset;
using svmdata::ZooEntry;
using svmkernel::KernelParams;

SolverParams params_for(const ZooEntry& entry) {
  SolverParams p;
  p.C = entry.C;
  p.eps = 1e-3;
  p.kernel = KernelParams::rbf_with_sigma_sq(entry.sigma_sq);
  return p;
}

struct ZooCase {
  const char* dataset;
  const char* heuristic;
  int ranks;
  double scale;
};

class ZooSweepP : public ::testing::TestWithParam<ZooCase> {};

TEST_P(ZooSweepP, TrainsAndSelfClassifies) {
  const ZooCase c = GetParam();
  const ZooEntry& entry = svmdata::zoo_entry(c.dataset);
  const Dataset train = svmdata::make_train(entry, c.scale);

  TrainOptions options;
  options.num_ranks = c.ranks;
  options.heuristic = Heuristic::parse(c.heuristic);
  const auto result = svmcore::train(train, params_for(entry), options);

  EXPECT_TRUE(result.converged) << c.dataset;
  EXPECT_GT(result.num_support_vectors(), 0u);
  // Self-classification: the RBF SVM with tuned hyper-params should fit the
  // training draw well on every zoo dataset.
  EXPECT_GT(result.model.accuracy(train), 0.85) << c.dataset;
}

INSTANTIATE_TEST_SUITE_P(
    Zoo, ZooSweepP,
    ::testing::Values(ZooCase{"a9a", "Original", 2, 0.25}, ZooCase{"a9a", "Multi5pc", 4, 0.25},
                      ZooCase{"w7a", "Single5pc", 3, 0.25}, ZooCase{"usps", "Multi5pc", 2, 0.25},
                      ZooCase{"mushrooms", "Multi2", 2, 0.5},
                      ZooCase{"codrna", "Multi10pc", 4, 0.2},
                      ZooCase{"mnist", "Single50pc", 2, 0.1},
                      ZooCase{"realsim", "Multi5pc", 4, 0.1},
                      ZooCase{"rcv1", "Multi5pc", 2, 0.15}));

class AccuracyParityP : public ::testing::TestWithParam<const char*> {};

TEST_P(AccuracyParityP, MatchesBaselineOnHeldOutData) {
  // Table V's claim: the proposed heuristics match libsvm's test accuracy.
  const ZooEntry& entry = svmdata::zoo_entry(GetParam());
  const double scale = 0.3;
  const Dataset train = svmdata::make_train(entry, scale);
  const Dataset test = svmdata::make_test(entry, scale);
  ASSERT_GT(test.size(), 0u);

  TrainOptions options;
  options.num_ranks = 4;
  options.heuristic = Heuristic::best();
  const auto ours = svmcore::train(train, params_for(entry), options);

  svmbaseline::BaselineOptions baseline_options;
  baseline_options.C = entry.C;
  baseline_options.eps = 1e-3;
  baseline_options.kernel = KernelParams::rbf_with_sigma_sq(entry.sigma_sq);
  const auto baseline = svmbaseline::solve_libsvm_like(train, baseline_options);
  const auto baseline_model =
      svmcore::build_model(train, baseline.alpha, baseline.rho, baseline_options.kernel);

  const double acc_ours = ours.model.accuracy(test);
  const double acc_baseline = baseline_model.accuracy(test);
  EXPECT_NEAR(acc_ours, acc_baseline, 0.03) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(TableV, AccuracyParityP,
                         ::testing::Values("a9a", "usps", "mnist", "codrna", "w7a"));

// Property sweep over the ENTIRE zoo at small scale: the best shrinking
// heuristic must match the Original algorithm's training accuracy on every
// dataset family (the paper's central accuracy-preservation claim).
class ZooParityP : public ::testing::TestWithParam<const char*> {};

TEST_P(ZooParityP, ShrinkingPreservesAccuracyEverywhere) {
  const ZooEntry& entry = svmdata::zoo_entry(GetParam());
  const Dataset train = svmdata::make_train(entry, 0.15);
  const SolverParams params = params_for(entry);

  TrainOptions original;
  original.num_ranks = 2;
  TrainOptions best;
  best.num_ranks = 2;
  best.heuristic = Heuristic::best();

  const auto a = svmcore::train(train, params, original);
  const auto b = svmcore::train(train, params, best);
  ASSERT_TRUE(a.converged) << GetParam();
  ASSERT_TRUE(b.converged) << GetParam();
  EXPECT_NEAR(b.model.accuracy(train), a.model.accuracy(train), 0.02) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllZooDatasets, ZooParityP,
                         ::testing::Values("higgs", "url", "forest", "realsim", "mnist",
                                           "codrna", "a9a", "w7a", "rcv1", "usps",
                                           "mushrooms"));

TEST(Integration, HiggsLikeEndToEnd) {
  // The headline workload at container scale: shrink + multi-reconstruction
  // beats Original on work while agreeing on the answer.
  const ZooEntry& entry = svmdata::zoo_entry("higgs");
  const Dataset train = svmdata::make_train(entry, 0.1);
  const SolverParams params = params_for(entry);

  TrainOptions original;
  original.num_ranks = 4;
  TrainOptions best;
  best.num_ranks = 4;
  best.heuristic = Heuristic::best();

  const auto r_original = svmcore::train(train, params, original);
  const auto r_best = svmcore::train(train, params, best);
  ASSERT_TRUE(r_original.converged);
  ASSERT_TRUE(r_best.converged);
  EXPECT_NEAR(r_best.model.accuracy(train), r_original.model.accuracy(train), 0.02);
}

TEST(Integration, UrlLikeSparseEndToEnd) {
  const ZooEntry& entry = svmdata::zoo_entry("url");
  const Dataset train = svmdata::make_train(entry, 0.1);
  TrainOptions options;
  options.num_ranks = 4;
  options.heuristic = Heuristic::best();
  const auto result = svmcore::train(train, params_for(entry), options);
  EXPECT_TRUE(result.converged);
  EXPECT_GT(result.model.accuracy(train), 0.9);
}

}  // namespace
