#include <gtest/gtest.h>

#include <set>

#include "data/split.hpp"
#include "data/synthetic.hpp"

namespace {

using namespace svmdata;

TEST(Split, FractionsAddUp) {
  const Dataset d = synthetic::gaussian_blobs({.n = 100, .d = 4, .separation = 2.0, .seed = 1});
  const TrainTestSplit s = train_test_split(d, 0.25, 7);
  EXPECT_EQ(s.test.size(), 25u);
  EXPECT_EQ(s.train.size(), 75u);
}

TEST(Split, ZeroFractionKeepsEverything) {
  const Dataset d = synthetic::gaussian_blobs({.n = 40, .d = 4, .separation = 2.0, .seed = 1});
  const TrainTestSplit s = train_test_split(d, 0.0, 7);
  EXPECT_EQ(s.train.size(), 40u);
  EXPECT_EQ(s.test.size(), 0u);
}

TEST(Split, InvalidFractionThrows) {
  const Dataset d = synthetic::gaussian_blobs({.n = 10, .d = 2, .separation = 2.0, .seed = 1});
  EXPECT_THROW((void)train_test_split(d, 1.0, 1), std::invalid_argument);
  EXPECT_THROW((void)train_test_split(d, -0.1, 1), std::invalid_argument);
}

TEST(Split, DeterministicInSeed) {
  const Dataset d = synthetic::gaussian_blobs({.n = 60, .d = 3, .separation = 2.0, .seed = 2});
  const TrainTestSplit a = train_test_split(d, 0.5, 11);
  const TrainTestSplit b = train_test_split(d, 0.5, 11);
  for (std::size_t i = 0; i < a.test.size(); ++i) EXPECT_EQ(a.test.y[i], b.test.y[i]);
}

TEST(Kfold, FoldsPartitionTheRange) {
  const auto folds = kfold_indices(103, 5, 3);
  ASSERT_EQ(folds.size(), 5u);
  std::set<std::size_t> all;
  for (const auto& fold : folds) {
    // Sizes differ by at most one: 103 = 5*20 + 3.
    EXPECT_GE(fold.size(), 20u);
    EXPECT_LE(fold.size(), 21u);
    for (const std::size_t i : fold) {
      EXPECT_TRUE(all.insert(i).second) << "duplicate index " << i;
      EXPECT_LT(i, 103u);
    }
  }
  EXPECT_EQ(all.size(), 103u);
}

TEST(Kfold, RejectsBadFoldCounts) {
  EXPECT_THROW((void)kfold_indices(10, 0, 1), std::invalid_argument);
  EXPECT_THROW((void)kfold_indices(10, 11, 1), std::invalid_argument);
}

TEST(Blocks, CoverRangeWithoutOverlap) {
  for (const std::size_t n : {1u, 7u, 16u, 1000u, 1001u}) {
    for (const int p : {1, 2, 3, 7, 16}) {
      if (static_cast<std::size_t>(p) > n) continue;
      std::size_t covered = 0;
      std::size_t previous_end = 0;
      for (int r = 0; r < p; ++r) {
        const BlockRange range = block_range(n, p, r);
        EXPECT_EQ(range.begin, previous_end);
        previous_end = range.end;
        covered += range.size();
      }
      EXPECT_EQ(previous_end, n);
      EXPECT_EQ(covered, n);
    }
  }
}

TEST(Blocks, SizesDifferByAtMostOne) {
  for (const int p : {2, 3, 5, 8}) {
    std::size_t smallest = ~0u;
    std::size_t largest = 0;
    for (int r = 0; r < p; ++r) {
      const std::size_t size = block_range(100, p, r).size();
      smallest = std::min(smallest, size);
      largest = std::max(largest, size);
    }
    EXPECT_LE(largest - smallest, 1u);
  }
}

TEST(Blocks, OwnerOfIsInverseOfBlockRange) {
  for (const std::size_t n : {5u, 64u, 999u}) {
    for (const int p : {1, 2, 4, 5}) {
      if (static_cast<std::size_t>(p) > n) continue;
      for (std::size_t i = 0; i < n; ++i) {
        const int owner = owner_of(n, p, i);
        EXPECT_TRUE(block_range(n, p, owner).contains(i))
            << "n=" << n << " p=" << p << " i=" << i;
      }
    }
  }
}

TEST(Blocks, InvalidArgumentsThrow) {
  EXPECT_THROW((void)block_range(10, 0, 0), std::invalid_argument);
  EXPECT_THROW((void)block_range(10, 2, 2), std::invalid_argument);
  EXPECT_THROW((void)owner_of(10, 2, 10), std::out_of_range);
}

}  // namespace
